// Package horovod reproduces the gradient-synchronization layer CosmoFlow
// uses: Horovod-style allreduce over MPI with tensor fusion. Gradients from
// all workers are averaged after every training step; small tensors are
// fused into a single buffer before the ring allreduce, amortizing the
// per-message latency — the optimization that makes Horovod efficient and
// that the paper's CosmoFlow runs rely on for inter-GPU communication.
package horovod

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Config tunes the synchronization layer.
type Config struct {
	// FusionThresholdBytes is the fusion buffer size; tensors are packed
	// into chunks of at most this size before each allreduce. Zero selects
	// Horovod's 64 MiB default.
	FusionThresholdBytes int64
	// CycleTime is the coordination delay charged per fusion cycle
	// (Horovod's background-thread cycle, default 1 ms in our model,
	// mirroring HOROVOD_CYCLE_TIME's default).
	CycleTime sim.Duration
}

// DefaultFusionThreshold is Horovod's default fusion buffer size.
const DefaultFusionThreshold int64 = 64 << 20

// Session is one worker's handle to the synchronization layer.
type Session struct {
	rank *mpi.Rank
	cfg  Config

	allreduces int64
	cycles     int64
	bytes      int64
}

// New returns a session for this rank.
func New(rank *mpi.Rank, cfg Config) *Session {
	if cfg.FusionThresholdBytes == 0 {
		cfg.FusionThresholdBytes = DefaultFusionThreshold
	}
	if cfg.FusionThresholdBytes < 0 {
		panic("horovod: negative fusion threshold")
	}
	if cfg.CycleTime == 0 {
		cfg.CycleTime = 1 * sim.Millisecond
	}
	return &Session{rank: rank, cfg: cfg}
}

// Rank returns the underlying MPI rank.
func (s *Session) Rank() *mpi.Rank { return s.rank }

// Size returns the number of workers.
func (s *Session) Size() int { return s.rank.Size() }

// Allreduces returns the number of tensor allreduces performed.
func (s *Session) Allreduces() int64 { return s.allreduces }

// Cycles returns the number of fusion cycles performed.
func (s *Session) Cycles() int64 { return s.cycles }

// BytesReduced returns the total gradient bytes this worker contributed.
func (s *Session) BytesReduced() int64 { return s.bytes }

// SyncBytes performs the synchronization of n gradient bytes without
// materializing them: one fusion cycle plus the ring-allreduce cost per
// fusion-buffer chunk. Performance-mode workloads use this to charge the
// true communication cost of large models cheaply.
func (s *Session) SyncBytes(n int64) {
	if n < 0 {
		panic("horovod: negative gradient size")
	}
	for n > 0 {
		chunk := n
		if chunk > s.cfg.FusionThresholdBytes {
			chunk = s.cfg.FusionThresholdBytes
		}
		s.rank.Proc().Sleep(s.cfg.CycleTime)
		s.cycles++
		s.rank.AllreduceBytes(chunk)
		s.bytes += chunk
		s.allreduces++
		n -= chunk
	}
}

// GradAllreduce averages the named gradient tensors across all workers and
// returns them in the same order. All workers must call it with tensors of
// identical shapes in identical order (the usual Horovod contract).
func (s *Session) GradAllreduce(tensors ...[]float64) [][]float64 {
	if len(tensors) == 0 {
		return nil
	}
	// Pack tensors into fusion chunks.
	maxElems := int(s.cfg.FusionThresholdBytes / 8)
	if maxElems < 1 {
		maxElems = 1
	}
	out := make([][]float64, len(tensors))
	for i := range out {
		out[i] = make([]float64, len(tensors[i]))
	}
	type span struct{ tensor, off, n int }
	var fused []float64
	var spans []span
	flush := func() {
		if len(fused) == 0 {
			return
		}
		s.rank.Proc().Sleep(s.cfg.CycleTime)
		s.cycles++
		reduced := s.rank.Allreduce(fused, mpi.OpSum)
		inv := 1 / float64(s.rank.Size())
		pos := 0
		for _, sp := range spans {
			for j := 0; j < sp.n; j++ {
				out[sp.tensor][sp.off+j] = reduced[pos+j] * inv
			}
			pos += sp.n
		}
		if pos != len(reduced) {
			panic(fmt.Sprintf("horovod: fusion bookkeeping mismatch: %d vs %d", pos, len(reduced)))
		}
		s.bytes += int64(len(fused) * 8)
		fused = fused[:0]
		spans = spans[:0]
	}
	for ti, tens := range tensors {
		s.allreduces++
		off := 0
		for off < len(tens) {
			room := maxElems - len(fused)
			if room == 0 {
				flush()
				room = maxElems
			}
			n := len(tens) - off
			if n > room {
				n = room
			}
			fused = append(fused, tens[off:off+n]...)
			spans = append(spans, span{tensor: ti, off: off, n: n})
			off += n
		}
	}
	flush()
	return out
}
