package analysis

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package time functions that read or wait on the
// host's real clock. Pure conversions and constants (time.Duration,
// time.Millisecond, ...) remain legal.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallTime flags wall-clock reads in simulated code. Every instant a
// simulation package observes must be virtual time from internal/sim —
// sim.Time carries the paper's Equations 1–3; a time.Now() sneaking into a
// model makes the regenerated tables depend on host speed. Package main
// (cmd/* and examples/*) is exempt: progress output there wraps the
// simulation rather than feeding it. Test files are exempt for the same
// reason.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "wall-clock time (time.Now etc.) in simulated code; use internal/sim virtual time",
	Run:  runWallTime,
}

func runWallTime(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := pkgLevelFunc(pass.Info, sel)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if wallClockFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(), "wall-clock time.%s in simulated code; use internal/sim virtual time", fn.Name())
			}
			return true
		})
	}
}

// pkgLevelFunc resolves sel to a package-level function (receiver-less
// *types.Func), or nil when sel is a method call, field access, or
// unresolved.
func pkgLevelFunc(info *types.Info, sel *ast.SelectorExpr) *types.Func {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	if _, isPkg := info.Uses[id].(*types.PkgName); !isPkg {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() != nil {
		return nil
	}
	return fn
}
