package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	env := NewEnv()
	if env.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", env.Now())
	}
	if got := env.Run(); got != 0 {
		t.Fatalf("Run() on empty env = %v, want 0", got)
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	env := NewEnv()
	var woke Time
	env.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		woke = p.Now()
	})
	end := env.Run()
	if want := Time(5e-3); woke != want {
		t.Errorf("woke at %v, want %v", woke, want)
	}
	if end != woke {
		t.Errorf("Run() = %v, want %v", end, woke)
	}
}

func TestSleepNegativeTreatedAsZero(t *testing.T) {
	env := NewEnv()
	env.Spawn("p", func(p *Proc) {
		p.Sleep(-1)
		if p.Now() != 0 {
			t.Errorf("negative sleep advanced clock to %v", p.Now())
		}
	})
	env.Run()
}

func TestEventOrderingFIFOAtSameInstant(t *testing.T) {
	env := NewEnv()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		env.Spawn(name, func(p *Proc) {
			p.Sleep(1 * Microsecond)
			order = append(order, name)
		})
	}
	env.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEventsDeliveredInTimeOrder(t *testing.T) {
	env := NewEnv()
	var order []int
	delays := []Duration{30 * Microsecond, 10 * Microsecond, 20 * Microsecond}
	for i, d := range delays {
		i, d := i, d
		env.Spawn("p", func(p *Proc) {
			p.Sleep(d)
			order = append(order, i)
		})
	}
	env.Run()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSpawnAtDelaysStart(t *testing.T) {
	env := NewEnv()
	var started Time
	env.SpawnAt(7*Millisecond, "late", func(p *Proc) {
		started = p.Now()
	})
	env.Run()
	if want := Time(7e-3); started != want {
		t.Errorf("started at %v, want %v", started, want)
	}
}

func TestNestedSpawnFromProcess(t *testing.T) {
	env := NewEnv()
	var childTime Time
	env.Spawn("parent", func(p *Proc) {
		p.Sleep(1 * Millisecond)
		p.Env().Spawn("child", func(c *Proc) {
			c.Sleep(2 * Millisecond)
			childTime = c.Now()
		})
	})
	env.Run()
	if want := Time(3e-3); childTime != want {
		t.Errorf("child finished at %v, want %v", childTime, want)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	env := NewEnv()
	var reached []Duration
	env.Spawn("p", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(1 * Second)
			reached = append(reached, Duration(p.Now()))
		}
	})
	got := env.RunUntil(Time(3.5))
	if got != Time(3.5) {
		t.Fatalf("RunUntil = %v, want 3.5", got)
	}
	if len(reached) != 3 {
		t.Fatalf("process ran %d steps before horizon, want 3", len(reached))
	}
	// Resume to completion.
	end := env.Run()
	if end != Time(10) || len(reached) != 10 {
		t.Fatalf("after resume: end=%v steps=%d, want 10s and 10", end, len(reached))
	}
}

func TestStepSingleEvent(t *testing.T) {
	env := NewEnv()
	n := 0
	env.Spawn("p", func(p *Proc) {
		p.Sleep(1 * Microsecond)
		n++
		p.Sleep(1 * Microsecond)
		n++
	})
	if !env.Step() { // start event
		t.Fatal("Step() = false on non-empty queue")
	}
	if n != 0 {
		t.Fatalf("n = %d after start, want 0", n)
	}
	env.Step()
	if n != 1 {
		t.Fatalf("n = %d after one sleep, want 1", n)
	}
	env.Run()
	if n != 2 {
		t.Fatalf("n = %d at end, want 2", n)
	}
	if env.Step() {
		t.Fatal("Step() = true on drained queue")
	}
}

func TestSignalFireReleasesAllWaitersInOrder(t *testing.T) {
	env := NewEnv()
	sig := NewSignal(env)
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		env.Spawn(name, func(p *Proc) {
			sig.Wait(p)
			order = append(order, name)
		})
	}
	env.Spawn("firer", func(p *Proc) {
		p.Sleep(1 * Millisecond)
		if sig.Waiters() != 3 {
			t.Errorf("Waiters() = %d, want 3", sig.Waiters())
		}
		sig.Fire()
	})
	env.Run()
	if len(order) != 3 || order[0] != "w1" || order[1] != "w2" || order[2] != "w3" {
		t.Fatalf("wake order = %v", order)
	}
	if sig.Waiters() != 0 {
		t.Errorf("Waiters() = %d after Fire, want 0", sig.Waiters())
	}
}

func TestSignalFireOne(t *testing.T) {
	env := NewEnv()
	sig := NewSignal(env)
	released := 0
	for i := 0; i < 2; i++ {
		env.Spawn("w", func(p *Proc) {
			sig.Wait(p)
			released++
		})
	}
	env.Spawn("firer", func(p *Proc) {
		p.Sleep(1 * Microsecond)
		if !sig.FireOne() {
			t.Error("FireOne() = false with waiters present")
		}
	})
	env.Run()
	if released != 1 {
		t.Fatalf("released = %d, want 1", released)
	}
	if got := env.Blocked(); len(got) != 1 {
		t.Fatalf("Blocked() = %v, want one blocked process", got)
	}
	env.Close()
}

func TestSignalFireOneEmpty(t *testing.T) {
	env := NewEnv()
	sig := NewSignal(env)
	if sig.FireOne() {
		t.Fatal("FireOne() = true with no waiters")
	}
}

func TestWaitTimeoutExpires(t *testing.T) {
	env := NewEnv()
	sig := NewSignal(env)
	var err error
	var at Time
	env.Spawn("p", func(p *Proc) {
		err = sig.WaitTimeout(p, 2*Millisecond)
		at = p.Now()
	})
	env.Run()
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if at != Time(2e-3) {
		t.Fatalf("woke at %v, want 2ms", at)
	}
	if sig.Waiters() != 0 {
		t.Fatalf("stale waiter left on signal after timeout")
	}
}

func TestWaitTimeoutSignalWins(t *testing.T) {
	env := NewEnv()
	sig := NewSignal(env)
	var err error
	var at Time
	env.Spawn("p", func(p *Proc) {
		err = sig.WaitTimeout(p, 10*Millisecond)
		at = p.Now()
	})
	env.Spawn("firer", func(p *Proc) {
		p.Sleep(1 * Millisecond)
		sig.Fire()
	})
	env.Run()
	if err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if at != Time(1e-3) {
		t.Fatalf("woke at %v, want 1ms", at)
	}
}

// A timer and a Fire landing at the same instant must wake the process
// exactly once and leave no stale wake-up that could corrupt a later park.
func TestWaitTimeoutSimultaneousFireAndTimer(t *testing.T) {
	env := NewEnv()
	sig := NewSignal(env)
	wakes := 0
	var second Time
	env.Spawn("p", func(p *Proc) {
		_ = sig.WaitTimeout(p, 1*Millisecond)
		wakes++
		p.Sleep(5 * Millisecond) // a stale wake-up would cut this short
		second = p.Now()
	})
	env.Spawn("firer", func(p *Proc) {
		p.Sleep(1 * Millisecond) // same instant as the timeout
		sig.Fire()
	})
	env.Run()
	if wakes != 1 {
		t.Fatalf("process woke %d times, want 1", wakes)
	}
	if second != Time(6e-3) {
		t.Fatalf("second sleep ended at %v, want 6ms (stale wake-up leaked)", second)
	}
}

func TestResourceSerializesExclusiveUse(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 1)
	var spans [][2]Time
	for i := 0; i < 3; i++ {
		env.Spawn("worker", func(p *Proc) {
			res.Acquire(p)
			start := p.Now()
			p.Sleep(1 * Millisecond)
			spans = append(spans, [2]Time{start, p.Now()})
			res.Release()
		})
	}
	end := env.Run()
	if end != Time(3e-3) {
		t.Fatalf("end = %v, want 3ms (serialized)", end)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i][0] < spans[j][0] })
	for i := 1; i < len(spans); i++ {
		if spans[i][0] < spans[i-1][1] {
			t.Fatalf("overlapping exclusive spans: %v", spans)
		}
	}
}

func TestResourceCapacityTwoOverlaps(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 2)
	for i := 0; i < 4; i++ {
		env.Spawn("worker", func(p *Proc) {
			res.Acquire(p)
			p.Sleep(1 * Millisecond)
			res.Release()
		})
	}
	if end := env.Run(); end != Time(2e-3) {
		t.Fatalf("end = %v, want 2ms (two at a time)", end)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 1)
	if !res.TryAcquire() {
		t.Fatal("TryAcquire on free resource = false")
	}
	if res.TryAcquire() {
		t.Fatal("TryAcquire on full resource = true")
	}
	if res.InUse() != 1 || res.Capacity() != 1 {
		t.Fatalf("InUse=%d Capacity=%d", res.InUse(), res.Capacity())
	}
	res.Release()
	if res.InUse() != 0 {
		t.Fatalf("InUse after release = %d", res.InUse())
	}
}

func TestResourceReleasePanicsWhenFree(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release of free resource did not panic")
		}
	}()
	res.Release()
}

func TestNewResourceRejectsNonPositiveCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewResource(env, 0) did not panic")
		}
	}()
	NewResource(NewEnv(), 0)
}

func TestWaitGroup(t *testing.T) {
	env := NewEnv()
	wg := NewWaitGroup(env)
	var doneAt Time
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		d := Duration(i) * Millisecond
		env.Spawn("worker", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	env.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	env.Run()
	if doneAt != Time(3e-3) {
		t.Fatalf("waiter released at %v, want 3ms", doneAt)
	}
	if wg.Count() != 0 {
		t.Fatalf("Count = %d, want 0", wg.Count())
	}
}

func TestWaitGroupWaitOnZeroReturnsImmediately(t *testing.T) {
	env := NewEnv()
	wg := NewWaitGroup(env)
	ran := false
	env.Spawn("p", func(p *Proc) {
		wg.Wait(p)
		ran = true
	})
	env.Run()
	if !ran {
		t.Fatal("Wait on zero WaitGroup blocked")
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	env := NewEnv()
	wg := NewWaitGroup(env)
	defer func() {
		if recover() == nil {
			t.Fatal("negative WaitGroup did not panic")
		}
	}()
	wg.Add(-1)
}

func TestBlockedReportsDeadlockedProcesses(t *testing.T) {
	env := NewEnv()
	sig := NewSignal(env)
	env.Spawn("stuck-b", func(p *Proc) { sig.Wait(p) })
	env.Spawn("stuck-a", func(p *Proc) { sig.Wait(p) })
	env.Run()
	got := env.Blocked()
	if len(got) != 2 || got[0] != "stuck-a" || got[1] != "stuck-b" {
		t.Fatalf("Blocked() = %v", got)
	}
	env.Close()
	if env.Live() != 0 {
		t.Fatalf("Live() after Close = %d, want 0", env.Live())
	}
}

func TestCloseUnwindsTimerParkedProcesses(t *testing.T) {
	env := NewEnv()
	env.Spawn("long", func(p *Proc) {
		p.Sleep(1 * Minute)
		t.Error("process body continued after Close")
	})
	env.RunUntil(Time(0)) // deliver the start event only
	env.Close()
	if env.Live() != 0 {
		t.Fatalf("Live() = %d after Close, want 0", env.Live())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []Time {
		env := NewEnv()
		defer env.Close()
		rng := rand.New(rand.NewSource(seed))
		res := NewResource(env, 2)
		var finishes []Time
		for i := 0; i < 50; i++ {
			d := Duration(rng.Intn(1000)+1) * Microsecond
			start := Duration(rng.Intn(1000)) * Microsecond
			env.SpawnAt(start, "w", func(p *Proc) {
				res.Acquire(p)
				p.Sleep(d)
				res.Release()
				finishes = append(finishes, p.Now())
			})
		}
		env.Run()
		return finishes
	}
	a, b := run(42), run(42)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("runs finished %d/%d processes, want 50", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0s"},
		{5 * Nanosecond, "5ns"},
		{12 * Microsecond, "12µs"},
		{3 * Millisecond, "3ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%g).String() = %q, want %q", float64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(1.5)
	if got := a.Add(500 * Millisecond); got != Time(2.0) {
		t.Errorf("Add = %v", got)
	}
	if got := Time(2.0).Sub(a); got != 500*Millisecond {
		t.Errorf("Sub = %v", got)
	}
}

// Property: for any set of sleep durations, Run ends at the maximum, and
// every process observes exactly its own duration.
func TestPropertySleepDurationsIndependent(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		env := NewEnv()
		defer env.Close()
		var maxD Duration
		ok := true
		for _, r := range raw {
			d := Duration(r) * Microsecond
			if d > maxD {
				maxD = d
			}
			env.Spawn("p", func(p *Proc) {
				p.Sleep(d)
				if p.Now() != Time(0).Add(d) {
					ok = false
				}
			})
		}
		end := env.Run()
		return ok && end == Time(0).Add(maxD)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a capacity-c resource with n unit-time jobs completes in
// ceil(n/c) time units.
func TestPropertyResourceMakespan(t *testing.T) {
	f := func(n, c uint8) bool {
		jobs := int(n%50) + 1
		cap := int(c%8) + 1
		env := NewEnv()
		defer env.Close()
		res := NewResource(env, cap)
		for i := 0; i < jobs; i++ {
			env.Spawn("w", func(p *Proc) {
				res.Acquire(p)
				p.Sleep(1 * Millisecond)
				res.Release()
			})
		}
		end := env.Run()
		want := Time(float64((jobs+cap-1)/cap) * 1e-3)
		diff := float64(end - want)
		return diff < 1e-12 && diff > -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestEventFreelistRecycles: after warm-up, the schedule→Pop→deliver cycle
// of a steadily ticking process reuses recycled events instead of
// allocating — the hot-path property BenchmarkSimEngineEvents tracks.
func TestEventFreelistRecycles(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	env.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(1 * Microsecond)
		}
	})
	for i := 0; i < 100; i++ { // warm-up: start event, freelist priming
		env.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		env.Step()
	})
	if allocs > 0 {
		t.Fatalf("steady-state Step allocates %.1f objects/op, want 0", allocs)
	}
}

// TestFreelistPreservesRacingWakeups: recycled events must not leak state
// into the timer-vs-signal race that cancelled events resolve.
func TestFreelistPreservesRacingWakeups(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	sig := NewSignal(env)
	var timedOut, fired int
	for i := 0; i < 50; i++ {
		env.Spawn("waiter", func(p *Proc) {
			for j := 0; j < 20; j++ {
				if err := sig.WaitTimeout(p, 2*Microsecond); err != nil {
					timedOut++
				} else {
					fired++
				}
			}
		})
	}
	env.Spawn("firer", func(p *Proc) {
		for j := 0; j < 10; j++ {
			p.Sleep(5 * Microsecond)
			sig.Fire()
		}
	})
	env.Run()
	if timedOut == 0 || fired == 0 {
		t.Fatalf("race did not exercise both outcomes: timeouts=%d fires=%d", timedOut, fired)
	}
	if got := timedOut + fired; got != 50*20 {
		t.Fatalf("waits completed = %d, want %d", got, 1000)
	}
}
