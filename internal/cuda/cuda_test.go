package cuda

import (
	"errors"
	"math"
	"testing"

	"repro/internal/gpu"
	"repro/internal/sim"
)

// testSpec gives round numbers and no hidden overheads.
func testSpec() gpu.Spec {
	return gpu.Spec{
		Name:            "test-gpu",
		MemoryBytes:     1 << 30,
		MemoryBandwidth: 1e12,
		PeakFLOPS:       1e12,
		H2DBandwidth:    1e9,
		D2HBandwidth:    1e9,
		DMAEngines:      2,
	}
}

// newCtx builds an env/device/context with zero call overhead for exact
// timing assertions.
func newCtx(t *testing.T) (*sim.Env, *Context) {
	t.Helper()
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	dev, err := gpu.NewDevice(env, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	return env, NewContext(dev, Config{CallOverhead: -1})
}

func TestMallocFree(t *testing.T) {
	env, ctx := newCtx(t)
	env.Spawn("host", func(p *sim.Proc) {
		ptr, err := ctx.Malloc(p, 1024)
		if err != nil {
			t.Errorf("Malloc: %v", err)
		}
		if err := ctx.Free(p, ptr); err != nil {
			t.Errorf("Free: %v", err)
		}
		if err := ctx.Free(p, ptr); err == nil {
			t.Error("double Free succeeded")
		}
	})
	env.Run()
}

func TestSynchronousMemcpyBlocksForTransfer(t *testing.T) {
	env, ctx := newCtx(t)
	var elapsed sim.Duration
	env.Spawn("host", func(p *sim.Proc) {
		ptr, _ := ctx.Malloc(p, 10_000_000)
		start := p.Now()
		if err := ctx.MemcpyH2D(p, ptr, 1_000_000); err != nil { // 1ms at 1GB/s
			t.Errorf("MemcpyH2D: %v", err)
		}
		elapsed = p.Now().Sub(start)
	})
	env.Run()
	if math.Abs(float64(elapsed-1*sim.Millisecond)) > 1e-12 {
		t.Errorf("sync memcpy took %v, want 1ms", elapsed)
	}
}

func TestMemcpyValidation(t *testing.T) {
	env, ctx := newCtx(t)
	env.Spawn("host", func(p *sim.Proc) {
		ptr, _ := ctx.Malloc(p, 100)
		if err := ctx.MemcpyH2D(p, ptr, 200); !errors.Is(err, ErrInvalidValue) {
			t.Errorf("oversize copy error = %v", err)
		}
		if err := ctx.MemcpyD2H(p, gpu.Ptr(999), 10); !errors.Is(err, ErrInvalidValue) {
			t.Errorf("bogus pointer error = %v", err)
		}
		if err := ctx.MemcpyH2D(p, ptr, -1); !errors.Is(err, ErrInvalidValue) {
			t.Errorf("negative size error = %v", err)
		}
		if _, err := ctx.MemcpyH2DAsync(p, ptr, 200, nil); !errors.Is(err, ErrInvalidValue) {
			t.Errorf("oversize async copy error = %v", err)
		}
	})
	env.Run()
}

func TestAsyncMemcpyReturnsImmediately(t *testing.T) {
	env, ctx := newCtx(t)
	env.Spawn("host", func(p *sim.Proc) {
		ptr, _ := ctx.Malloc(p, 10_000_000)
		start := p.Now()
		op, err := ctx.MemcpyH2DAsync(p, ptr, 1_000_000, nil)
		if err != nil {
			t.Fatalf("async: %v", err)
		}
		if p.Now() != start {
			t.Errorf("async memcpy blocked the host for %v", p.Now().Sub(start))
		}
		op.Wait(p)
		if got := p.Now().Sub(start); math.Abs(float64(got-1*sim.Millisecond)) > 1e-12 {
			t.Errorf("transfer completed after %v, want 1ms", got)
		}
	})
	env.Run()
}

func TestLaunchIsAsynchronous(t *testing.T) {
	env, ctx := newCtx(t)
	env.Spawn("host", func(p *sim.Proc) {
		start := p.Now()
		op := ctx.Launch(p, gpu.Fixed("k", 5*sim.Millisecond), nil)
		if p.Now() != start {
			t.Errorf("launch blocked for %v (zero-overhead config)", p.Now().Sub(start))
		}
		ctx.DeviceSynchronize(p)
		if got := p.Now().Sub(start); math.Abs(float64(got-5*sim.Millisecond)) > 1e-12 {
			t.Errorf("kernel completed after %v, want 5ms", got)
		}
		if !op.Done() {
			t.Error("op not done after device sync")
		}
	})
	env.Run()
}

func TestLaunchOverheadCharged(t *testing.T) {
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	spec := testSpec()
	spec.LaunchOverhead = 4 * sim.Microsecond
	dev, _ := gpu.NewDevice(env, spec)
	ctx := NewContext(dev, Config{CallOverhead: -1})
	env.Spawn("host", func(p *sim.Proc) {
		start := p.Now()
		ctx.Launch(p, gpu.Fixed("k", 1*sim.Millisecond), nil)
		if got := p.Now().Sub(start); math.Abs(float64(got-4*sim.Microsecond)) > 1e-12 {
			t.Errorf("launch host cost = %v, want 4µs", got)
		}
	})
	env.Run()
}

func TestCallOverheadDefaultApplied(t *testing.T) {
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	dev, _ := gpu.NewDevice(env, testSpec())
	ctx := NewContext(dev, Config{}) // default 1.5µs
	env.Spawn("host", func(p *sim.Proc) {
		start := p.Now()
		if _, err := ctx.Malloc(p, 64); err != nil {
			t.Fatal(err)
		}
		if got := p.Now().Sub(start); math.Abs(float64(got-DefaultCallOverhead)) > 1e-12 {
			t.Errorf("call overhead = %v, want %v", got, DefaultCallOverhead)
		}
	})
	env.Run()
}

func TestStreamOrderingViaContext(t *testing.T) {
	env, ctx := newCtx(t)
	env.Spawn("host", func(p *sim.Proc) {
		s := ctx.StreamCreate(p)
		ctx.Launch(p, gpu.Fixed("a", 1*sim.Millisecond), s)
		ctx.Launch(p, gpu.Fixed("b", 1*sim.Millisecond), s)
		start := p.Now()
		ctx.StreamSynchronize(p, s)
		if got := p.Now().Sub(start); math.Abs(float64(got-2*sim.Millisecond)) > 1e-12 {
			t.Errorf("stream drained after %v, want 2ms", got)
		}
		ctx.StreamDestroy(p, s)
	})
	env.Run()
	if blocked := env.Blocked(); len(blocked) != 0 {
		t.Errorf("blocked processes after stream destroy: %v", blocked)
	}
}

func TestEventsMeasureGPUTime(t *testing.T) {
	// The proxy times its compute loop with GPU-side events; the elapsed
	// time between two events brackets the enqueued work.
	env, ctx := newCtx(t)
	env.Spawn("host", func(p *sim.Proc) {
		s := ctx.StreamCreate(p)
		startEv := ctx.EventRecord(p, s)
		ctx.Launch(p, gpu.Fixed("k", 3*sim.Millisecond), s)
		endEv := ctx.EventRecord(p, s)
		ctx.EventSynchronize(p, startEv)
		ctx.EventSynchronize(p, endEv)
		d, err := ElapsedTime(startEv, endEv)
		if err != nil {
			t.Fatalf("ElapsedTime: %v", err)
		}
		if math.Abs(float64(d-3*sim.Millisecond)) > 1e-12 {
			t.Errorf("event elapsed = %v, want 3ms", d)
		}
	})
	env.Run()
}

func TestElapsedTimeRequiresSynchronizedEvents(t *testing.T) {
	env, ctx := newCtx(t)
	env.Spawn("host", func(p *sim.Proc) {
		s := ctx.StreamCreate(p)
		ctx.Launch(p, gpu.Fixed("k", 1*sim.Millisecond), s)
		e := ctx.EventRecord(p, s)
		if _, err := ElapsedTime(e, e); err == nil {
			t.Error("ElapsedTime on pending event succeeded")
		}
		if _, err := ElapsedTime(nil, nil); err == nil {
			t.Error("ElapsedTime on nil events succeeded")
		}
		ctx.DeviceSynchronize(p)
	})
	env.Run()
}

// recorder captures interposed calls.
type recorder struct {
	before, after []CallInfo
}

func (r *recorder) Before(p *sim.Proc, info CallInfo) { r.before = append(r.before, info) }
func (r *recorder) After(p *sim.Proc, info CallInfo)  { r.after = append(r.after, info) }

func TestInterposerSeesEveryCall(t *testing.T) {
	env, ctx := newCtx(t)
	rec := &recorder{}
	ctx.Interpose(rec)
	env.Spawn("host", func(p *sim.Proc) {
		ptr, _ := ctx.Malloc(p, 1024)
		ctx.MemcpyH2D(p, ptr, 1024)
		ctx.Launch(p, gpu.Fixed("k", 1*sim.Microsecond), nil)
		ctx.MemcpyD2H(p, ptr, 1024)
		ctx.DeviceSynchronize(p)
		ctx.Free(p, ptr)
	})
	env.Run()
	if len(rec.before) != 6 || len(rec.after) != 6 {
		t.Fatalf("interposer saw %d/%d calls, want 6/6", len(rec.before), len(rec.after))
	}
	classes := []CallClass{ClassMemory, ClassMemcpyH2D, ClassLaunch, ClassMemcpyD2H, ClassSync, ClassMemory}
	for i, want := range classes {
		if rec.before[i].Class != want {
			t.Errorf("call %d class = %v, want %v", i, rec.before[i].Class, want)
		}
	}
	// The 5 link-crossing calls per proxy iteration: 3 transfers + launch
	// + sync (Table/Equation 1's num_CUDAcalls).
	crossing := 0
	for _, c := range rec.before {
		if c.Class.CrossesLink() {
			crossing++
		}
	}
	if crossing != 4 { // one iteration here has 2 memcpy + launch + sync
		t.Errorf("crossing calls = %d, want 4", crossing)
	}
}

func TestInterposerAfterRunsInReverseOrder(t *testing.T) {
	env, ctx := newCtx(t)
	var order []string
	mk := func(name string) Interposer {
		return interposerFunc{
			before: func(*sim.Proc, CallInfo) { order = append(order, name+".before") },
			after:  func(*sim.Proc, CallInfo) { order = append(order, name+".after") },
		}
	}
	ctx.Interpose(mk("a"))
	ctx.Interpose(mk("b"))
	env.Spawn("host", func(p *sim.Proc) {
		ctx.Malloc(p, 64)
	})
	env.Run()
	want := []string{"a.before", "b.before", "b.after", "a.after"}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCallClassStrings(t *testing.T) {
	for c, want := range map[CallClass]string{
		ClassMemcpyH2D: "memcpy-h2d",
		ClassMemcpyD2H: "memcpy-d2h",
		ClassMemcpyD2D: "memcpy-d2d",
		ClassLaunch:    "launch",
		ClassSync:      "sync",
		ClassMemory:    "memory",
		ClassMisc:      "misc",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", int(c), c.String())
		}
	}
	if ClassMemory.CrossesLink() || ClassMisc.CrossesLink() {
		t.Error("memory/misc classes must not count as link-crossing")
	}
	if !ClassLaunch.CrossesLink() || !ClassSync.CrossesLink() {
		t.Error("launch/sync must count as link-crossing")
	}
}

type interposerFunc struct {
	before, after func(*sim.Proc, CallInfo)
}

func (f interposerFunc) Before(p *sim.Proc, i CallInfo) { f.before(p, i) }
func (f interposerFunc) After(p *sim.Proc, i CallInfo)  { f.after(p, i) }

func TestMemcpyD2DUsesDeviceBandwidth(t *testing.T) {
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	spec := testSpec() // HBM 1e12 B/s → D2D effective 5e11
	dev, _ := gpu.NewDevice(env, spec)
	ctx := NewContext(dev, Config{CallOverhead: -1})
	var elapsed sim.Duration
	env.Spawn("host", func(p *sim.Proc) {
		ptr, _ := ctx.Malloc(p, 1_000_000_000)
		start := p.Now()
		if err := ctx.MemcpyD2D(p, ptr, 1_000_000_000); err != nil { // 2ms at 5e11
			t.Errorf("MemcpyD2D: %v", err)
		}
		elapsed = p.Now().Sub(start)
	})
	env.Run()
	if math.Abs(float64(elapsed-2*sim.Millisecond)) > 1e-12 {
		t.Errorf("D2D copy took %v, want 2ms (half HBM bandwidth)", elapsed)
	}
}

func TestMemcpyD2HAsyncOverlapsHostWork(t *testing.T) {
	env, ctx := newCtx(t)
	env.Spawn("host", func(p *sim.Proc) {
		ptr, _ := ctx.Malloc(p, 2_000_000)
		op, err := ctx.MemcpyD2HAsync(p, ptr, 2_000_000, nil) // 2ms at 1GB/s
		if err != nil {
			t.Fatal(err)
		}
		p.Sleep(2 * sim.Millisecond) // host work overlapping the copy
		start := p.Now()
		op.Wait(p)
		if waited := p.Now().Sub(start); waited > sim.Nanosecond {
			t.Errorf("copy did not overlap host work; waited %v more", waited)
		}
	})
	env.Run()
}

func TestLaunchSyncBlocksForKernel(t *testing.T) {
	env, ctx := newCtx(t)
	env.Spawn("host", func(p *sim.Proc) {
		start := p.Now()
		ctx.LaunchSync(p, gpu.Fixed("k", 3*sim.Millisecond), nil)
		if got := p.Now().Sub(start); math.Abs(float64(got-3*sim.Millisecond)) > 1e-12 {
			t.Errorf("LaunchSync returned after %v, want 3ms", got)
		}
	})
	env.Run()
}
