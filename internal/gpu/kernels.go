package gpu

import (
	"fmt"

	"repro/internal/sim"
)

// Kernel describes one launch's resource demands. Execution time on a
// device is the larger of its compute and memory-traffic terms, floored at
// the device's MinKernelTime, and stretched by the warm-up model if the
// device was idle when the kernel reached the head of its queue.
type Kernel struct {
	// Name labels the kernel in traces (Figure 4 groups by this).
	Name string
	// FLOPs is the arithmetic work of the launch.
	FLOPs float64
	// Efficiency is the fraction of peak FLOPS this kernel achieves
	// (0 < Efficiency <= 1). Hand-rolled kernels sit well below peak.
	Efficiency float64
	// MemBytes is the device-memory traffic the launch generates.
	MemBytes float64
	// FixedTime, when positive, bypasses the analytic model entirely —
	// used to replay measured durations.
	FixedTime sim.Duration
}

// baseDuration returns the kernel's execution time at full boost clock on
// spec, before any warm-up stretching.
func (k Kernel) baseDuration(spec Spec) sim.Duration {
	if k.FixedTime > 0 {
		return k.FixedTime
	}
	eff := k.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	compute := sim.Duration(k.FLOPs / (spec.PeakFLOPS * eff))
	mem := sim.Duration(k.MemBytes / spec.MemoryBandwidth)
	d := compute
	if mem > d {
		d = mem
	}
	if d < spec.MinKernelTime {
		d = spec.MinKernelTime
	}
	return d
}

// String renders the kernel for debugging.
func (k Kernel) String() string {
	if k.FixedTime > 0 {
		return fmt.Sprintf("%s{fixed %v}", k.Name, k.FixedTime)
	}
	return fmt.Sprintf("%s{%.3g FLOP @ %.0f%%, %.3g B}", k.Name, k.FLOPs, k.Efficiency*100, k.MemBytes)
}

// sgemmEfficiency models how far a straightforward tiled SGEMM sits from
// peak as a function of matrix dimension: small multiplies cannot fill the
// device, large ones approach ~45 % of peak (a hand-written kernel, not
// cuBLAS — the proxy uses "a simple matrix multiplication kernel").
func sgemmEfficiency(n int) float64 {
	return 0.45 * float64(n) / (float64(n) + 1024)
}

// MatMul returns the kernel for one n×n × n×n single-precision matrix
// multiplication, the proxy application's workload.
func MatMul(n int) Kernel {
	if n <= 0 {
		panic("gpu: MatMul size must be positive")
	}
	fn := float64(n)
	return Kernel{
		Name:       "sgemm",
		FLOPs:      2 * fn * fn * fn,
		Efficiency: sgemmEfficiency(n),
		// Three operand matrices streamed once is the lower bound on
		// traffic; tiling re-reads give a small constant on top.
		MemBytes: 3 * 4 * fn * fn * 1.5,
	}
}

// MatrixBytes returns the size in bytes of one n×n float32 matrix — the
// unit the paper bins data-transfer sizes against (Table III).
func MatrixBytes(n int) int64 { return int64(n) * int64(n) * 4 }

// LJForce returns the kernel for one Lennard-Jones force evaluation over
// atoms sites with an average neighbor count per site — the dominant GPU
// kernel in the LAMMPS LJ benchmark (pair_lj_cut style).
//
// Per pair: distance (sub, mul, fma ≈ 8 flop), cutoff test, r⁻⁶/r⁻¹²
// evaluation and force accumulation ≈ 23 flop; ~31 flop total with the
// newton-off double evaluation folded into neighbors.
func LJForce(atoms int, neighbors float64) Kernel {
	if atoms <= 0 || neighbors < 0 {
		panic("gpu: invalid LJForce parameters")
	}
	fa := float64(atoms)
	return Kernel{
		Name:       "lj_force",
		FLOPs:      fa * neighbors * 31,
		Efficiency: 0.22, // irregular gather/scatter keeps LJ far from peak
		// positions read per neighbor (12 B) + force write-back.
		MemBytes: fa*neighbors*12 + fa*24,
	}
}

// NeighborBuild returns the kernel for rebuilding the neighbor list on the
// GPU (bin + traverse), LAMMPS's second-largest kernel.
func NeighborBuild(atoms int, neighbors float64) Kernel {
	fa := float64(atoms)
	return Kernel{
		Name:       "neigh_build",
		FLOPs:      fa * neighbors * 6,
		Efficiency: 0.12,
		MemBytes:   fa*neighbors*8 + fa*48,
	}
}

// Conv3D returns the kernel for one 3-D convolution layer pass over a
// batch: in channels cin, out channels cout, cubic kernel k, cubic output
// extent out (voxels per edge).
func Conv3D(batch, cin, cout, k, out int) Kernel {
	if batch <= 0 || cin <= 0 || cout <= 0 || k <= 0 || out <= 0 {
		panic("gpu: invalid Conv3D parameters")
	}
	voxels := float64(out) * float64(out) * float64(out)
	flops := 2 * float64(batch) * voxels * float64(cin) * float64(cout) * float64(k*k*k)
	return Kernel{
		Name:       fmt.Sprintf("conv3d_%dx%d", cin, cout),
		FLOPs:      flops,
		Efficiency: 0.35,
		MemBytes:   float64(batch) * voxels * float64(cin+cout) * 4,
	}
}

// Dense returns the kernel for a fully connected layer: batch×in → out.
func Dense(batch, in, out int) Kernel {
	if batch <= 0 || in <= 0 || out <= 0 {
		panic("gpu: invalid Dense parameters")
	}
	return Kernel{
		Name:       fmt.Sprintf("dense_%dx%d", in, out),
		FLOPs:      2 * float64(batch) * float64(in) * float64(out),
		Efficiency: 0.25,
		MemBytes:   float64(in)*float64(out)*4 + float64(batch)*float64(in+out)*4,
	}
}

// Pool3D returns the kernel for a 3-D max-pool pass (memory bound).
func Pool3D(batch, channels, out int) Kernel {
	voxels := float64(out * out * out)
	return Kernel{
		Name:       "maxpool3d",
		FLOPs:      float64(batch) * voxels * float64(channels) * 8,
		Efficiency: 0.10,
		MemBytes:   float64(batch) * voxels * float64(channels) * 4 * 9,
	}
}

// Elementwise returns a small pointwise kernel over n elements (bias add,
// activation, optimizer step...) — CosmoFlow launches dozens of these.
func Elementwise(name string, n int) Kernel {
	return Kernel{
		Name:       name,
		FLOPs:      float64(n) * 2,
		Efficiency: 0.08,
		MemBytes:   float64(n) * 8,
	}
}

// Prefill returns the kernel for processing tokens prompt tokens through a
// transformer of params parameters in one pass — the compute-bound phase of
// autoregressive inference. The dominant cost is the 2·params FLOPs each
// token spends in the weight GEMMs; large-tile GEMMs run near the same
// efficiency band as cuBLAS-grade SGEMM.
func Prefill(tokens int, params float64) Kernel {
	if tokens <= 0 || params <= 0 {
		panic("gpu: invalid Prefill parameters")
	}
	ft := float64(tokens)
	return Kernel{
		Name:       "llm_prefill",
		FLOPs:      2 * params * ft,
		Efficiency: 0.45,
		// Weights stream through once (2 B/param at half precision) plus
		// per-token activation traffic.
		MemBytes: 2*params + ft*4096,
	}
}

// DecodeStep returns the kernel for one autoregressive decode iteration
// over a batch of sequences: every weight is read once per step regardless
// of batch size, so the step is memory-bound at small batches (2 B/param of
// HBM traffic) and the arithmetic term 2·params·batch only catches up at
// large batch — exactly the economics that make batching worthwhile.
func DecodeStep(batch int, params float64) Kernel {
	if batch <= 0 || params <= 0 {
		panic("gpu: invalid DecodeStep parameters")
	}
	fb := float64(batch)
	return Kernel{
		Name:       "llm_decode",
		FLOPs:      2 * params * fb,
		Efficiency: 0.45,
		MemBytes:   2*params + fb*4096,
	}
}

// Fixed returns a kernel that executes for exactly d at boost clock —
// replaying a measured duration through the device's queue and warm-up
// machinery.
func Fixed(name string, d sim.Duration) Kernel {
	if d <= 0 {
		panic("gpu: Fixed kernel duration must be positive")
	}
	return Kernel{Name: name, FixedTime: d}
}
