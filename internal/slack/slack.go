// Package slack implements the paper's slack-injection method: an
// artificial delay added to every CUDA API call that requires host↔device
// communication, emulating the network latency a row-scale CDI deployment
// introduces between CPUs and disaggregated GPUs.
//
// The paper evaluates and rejects two injection mechanisms — hand-editing
// application sources (laborious, error-prone) and LD_PRELOAD shims (fail
// on statically linked binaries) — before settling on controlled injection
// inside a proxy application. This package provides the equivalent seam for
// the simulated stack: an Interposer registered on a cuda.Context delays
// the configured call classes, with optional jitter and an optional
// per-symbol filter that mimics the LD_PRELOAD comparison experiment.
package slack

import (
	"math/rand/v2"

	"repro/internal/cuda"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// jitterSalt is this package's substream salt for jitter draws (faults
// reserves everything below 0x10000; remoting holds 0x10000–0x10002,
// sched 0x10020, serve the 0x20000 block).
const jitterSalt uint64 = 0x10010

// Injector delays CUDA API calls. It implements cuda.Interposer; register
// it with Context.Interpose. The zero value injects nothing.
type Injector struct {
	amount sim.Duration
	// jitterFrac, when positive, draws each delay uniformly from
	// amount × [1-jitterFrac, 1+jitterFrac].
	jitterFrac float64
	rng        *rand.Rand

	// classes restricts injection to specific call classes; nil selects
	// every link-crossing class (the paper's method).
	classes map[cuda.CallClass]bool
	// symbols, when non-nil, restricts injection to exact API symbol names
	// (the LD_PRELOAD-style filter; incomplete coverage is precisely the
	// weakness the paper notes for that approach).
	symbols map[string]bool

	// observer, when set, is told about every injected delay (the trace
	// layer renders these as slack spans).
	observer func(name string, start, end sim.Time)

	delayedCalls  int64
	totalInjected sim.Duration
}

// Option configures an Injector.
type Option func(*Injector)

// WithJitter makes each injected delay uniform in amount×[1-f, 1+f],
// drawn from a salted PCG substream of seed so jitter draws can never
// alias another consumer of the same seed. f must be in [0, 1).
func WithJitter(f float64, seed int64) Option {
	if f < 0 || f >= 1 {
		panic("slack: jitter fraction must be in [0,1)")
	}
	return func(in *Injector) {
		in.jitterFrac = f
		in.rng = rand.New(rand.NewPCG(uint64(seed), jitterSalt))
	}
}

// WithObserver reports every injected delay to fn as a (call name, start,
// end) interval on the sim clock — the seam the trace layer uses to draw
// slack spans.
func WithObserver(fn func(name string, start, end sim.Time)) Option {
	return func(in *Injector) { in.observer = fn }
}

// WithClasses restricts injection to the listed call classes.
func WithClasses(classes ...cuda.CallClass) Option {
	return func(in *Injector) {
		in.classes = make(map[cuda.CallClass]bool, len(classes))
		for _, c := range classes {
			in.classes[c] = true
		}
	}
}

// WithSymbols restricts injection to calls whose API name is listed,
// emulating an LD_PRELOAD shim that wraps only those symbols.
func WithSymbols(names ...string) Option {
	return func(in *Injector) {
		in.symbols = make(map[string]bool, len(names))
		for _, n := range names {
			in.symbols[n] = true
		}
	}
}

// New returns an injector adding amount of slack after every link-crossing
// CUDA call, the paper's §III-C configuration.
func New(amount sim.Duration, opts ...Option) *Injector {
	if amount < 0 {
		panic("slack: negative slack amount")
	}
	in := &Injector{amount: amount}
	for _, o := range opts {
		o(in)
	}
	return in
}

// FromPath returns an injector whose slack equals the one-way latency of a
// fabric path — slack as a deployment would actually experience it.
func FromPath(p fabric.Path, opts ...Option) *Injector {
	return New(fabric.SlackForPath(p), opts...)
}

// Amount returns the configured per-call slack.
func (in *Injector) Amount() sim.Duration { return in.amount }

// SetAmount changes the per-call slack; setting 0 disables injection
// (baseline runs reuse the same wiring).
func (in *Injector) SetAmount(d sim.Duration) {
	if d < 0 {
		panic("slack: negative slack amount")
	}
	in.amount = d
}

// DelayedCalls returns how many calls have been delayed — the
// num_CUDAcalls term of Equation 1.
func (in *Injector) DelayedCalls() int64 { return in.delayedCalls }

// TotalInjected returns the cumulative injected delay — the
// num_CUDAcalls × Slack_call term of Equation 1 (they differ from
// DelayedCalls×Amount only under jitter).
func (in *Injector) TotalInjected() sim.Duration { return in.totalInjected }

// Reset zeroes the call counters (between baseline and slack runs).
func (in *Injector) Reset() {
	in.delayedCalls = 0
	in.totalInjected = 0
}

// applies reports whether this call should be delayed.
func (in *Injector) applies(info cuda.CallInfo) bool {
	if in.amount <= 0 {
		return false
	}
	if in.symbols != nil && !in.symbols[info.Name] {
		return false
	}
	if in.classes != nil {
		return in.classes[info.Class]
	}
	return info.Class.CrossesLink()
}

// Before implements cuda.Interposer; slack is injected after calls (the
// paper inserts the sleep "after every CUDA API call"), so Before is a
// no-op.
func (in *Injector) Before(p *sim.Proc, info cuda.CallInfo) {}

// After injects the delay.
func (in *Injector) After(p *sim.Proc, info cuda.CallInfo) {
	if !in.applies(info) {
		return
	}
	d := in.amount
	if in.jitterFrac > 0 {
		u := 1 + in.jitterFrac*(2*in.rng.Float64()-1)
		d = sim.Duration(float64(d) * u)
	}
	start := p.Now()
	p.Sleep(d)
	in.delayedCalls++
	in.totalInjected += d
	if in.observer != nil {
		in.observer(info.Name, start, p.Now())
	}
}

var _ cuda.Interposer = (*Injector)(nil)
