// Corpus for the seededrand analyzer over math/rand/v2: the global draws
// are just as unseeded as v1's, while the PCG/ChaCha8 constructors build
// explicit streams and must stay clean.
package corpus

import randv2 "math/rand/v2"

func globalStateV2() int {
	x := randv2.IntN(10) // want
	f := randv2.Float64() // want
	return x + int(f)
}

// saltedSubstream is the faults-package idiom: one seed, per-concern salts,
// every draw traceable to (seed, salt).
func saltedSubstream(seed uint64, salt uint64) float64 {
	rng := randv2.New(randv2.NewPCG(seed, salt))
	return rng.Float64()
}

func chachaStream(key [32]byte) uint64 {
	return randv2.New(randv2.NewChaCha8(key)).Uint64()
}
