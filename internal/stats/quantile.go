package stats

import (
	"fmt"
	"math"
	"sort"
)

// Quantiles returns the q-th quantiles (each q in [0, 1]) of xs using the
// same linear interpolation between order statistics as Percentile, but
// sorting a copy of xs exactly once — the right shape for SLO reporting,
// where one latency population is read at p50/p95/p99/p99.9 together.
// Quantiles(xs, []float64{0.5})[0] equals Percentile(xs, 50). The result
// has one entry per q; every entry is NaN for an empty xs.
func Quantiles(xs []float64, qs []float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, q := range qs {
		if q < 0 || q > 1 {
			panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
		}
		if len(s) == 1 {
			out[i] = s[0]
			continue
		}
		rank := q * float64(len(s)-1)
		lo := int(math.Floor(rank))
		hi := int(math.Ceil(rank))
		if lo == hi {
			out[i] = s[lo]
			continue
		}
		frac := rank - float64(lo)
		out[i] = s[lo]*(1-frac) + s[hi]*frac
	}
	return out
}

// LatencyHist is an HDR-histogram-style latency recorder: values are
// counted into bins with fixed logarithmically spaced edges, so recording
// is O(log bins) with no retained samples, and quantiles are read back as
// the upper edge of the bin where the cumulative count crosses the rank —
// a conservative (never-underestimating) estimate whose relative error is
// bounded by the bin width. Because the edges are fixed at construction
// rather than derived from the data, two histograms built from the same
// stream are bit-identical regardless of merge or arrival order.
//
// Samples below the lowest edge are clamped into the first bin and samples
// above the highest edge into the last (HDR convention: saturate, don't
// drop), while Min/Max track the exact extremes seen.
type LatencyHist struct {
	edges  []float64
	counts []int64
	n      int64
	min    float64
	max    float64
}

// NewLatencyHist builds an empty histogram with bins-per-decade fixed log
// edges covering [lo, hi]; lo must be positive and hi > lo. The total bin
// count is perDecade × the (fractional) number of decades, rounded up.
func NewLatencyHist(lo, hi float64, perDecade int) *LatencyHist {
	if lo <= 0 || hi <= lo || perDecade < 1 {
		panic("stats: invalid NewLatencyHist parameters")
	}
	decades := math.Log10(hi / lo)
	n := int(math.Ceil(decades * float64(perDecade)))
	if n < 1 {
		n = 1
	}
	return &LatencyHist{
		edges:  LogEdges(lo, hi, n),
		counts: make([]int64, n),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Add records one sample.
func (h *LatencyHist) Add(x float64) {
	h.n++
	if x < h.min {
		h.min = x
	}
	if x > h.max {
		h.max = x
	}
	n := len(h.counts)
	switch {
	case x < h.edges[0]:
		h.counts[0]++
	case x >= h.edges[n]:
		h.counts[n-1]++
	default:
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if x >= h.edges[mid+1] {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		h.counts[lo]++
	}
}

// Count returns the number of recorded samples.
func (h *LatencyHist) Count() int64 { return h.n }

// Min returns the exact smallest recorded sample (NaN when empty).
func (h *LatencyHist) Min() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.min
}

// Max returns the exact largest recorded sample (NaN when empty).
func (h *LatencyHist) Max() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.max
}

// Quantile returns an upper bound on the q-th quantile (q in [0, 1]): the
// upper edge of the first bin at which the cumulative count reaches
// ceil(q·n), capped at the exact observed maximum so the estimate never
// exceeds a value that was actually recorded. NaN when empty.
func (h *LatencyHist) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	if h.n == 0 {
		return math.NaN()
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return math.Min(h.edges[i+1], h.max)
		}
	}
	return h.max
}

// CountAtOrBelow returns how many recorded samples fell in bins whose
// upper edge is <= limit — the histogram's estimate of "requests that met
// a deadline of limit". Because in-bin positions are unknown, a bin is
// counted only when all of it is at or below the limit, so the result
// never overstates compliance.
func (h *LatencyHist) CountAtOrBelow(limit float64) int64 {
	var cum int64
	for i, c := range h.counts {
		if h.edges[i+1] <= limit {
			cum += c
		}
	}
	return cum
}

// Edges returns the histogram's bin edges (shared slice; do not modify).
func (h *LatencyHist) Edges() []float64 { return h.edges }

// Counts returns the per-bin counts (shared slice; do not modify).
func (h *LatencyHist) Counts() []int64 { return h.counts }
