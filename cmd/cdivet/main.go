// Command cdivet runs the determinism-invariant static-analysis suite
// (internal/analysis) over the repository.
//
//	cdivet ./...                  # whole module (the CI gate)
//	cdivet ./internal/sim         # one package
//	cdivet -rules maporder ./...  # a subset of rules
//	cdivet -json ./... > out.json # machine-readable findings
//	cdivet -list                  # describe every rule
//
// Exit status: 0 clean, 1 findings, 2 usage or load error. Suppress an
// intentional violation in source with a justified directive on, or
// directly above, the line:
//
//	//cdivet:allow <rule> <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	rules := flag.String("rules", "", "comma-separated rule subset (default: all)")
	list := flag.Bool("list", false, "list rules and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	cfg := analysis.Config{Patterns: flag.Args()}
	if len(cfg.Patterns) == 0 {
		cfg.Patterns = []string{"./..."}
	}
	if *rules != "" {
		as, err := analysis.ByName(*rules)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Analyzers = as
	}

	findings, err := analysis.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else if err := analysis.WriteText(os.Stdout, findings); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "cdivet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}
