// Package serve is an online inference-serving subsystem over the
// disaggregated GPU pool: a seeded open-loop request generator, an
// admission queue with pluggable batching policies (no-batch, fixed,
// continuous), and a slack-aware placer that maps tenants onto
// compose.System GPUs reached over fabric paths — optionally through the
// fault-tolerant remoting transport so fault schedules apply.
//
// The paper asks whether row-scale slack is tolerable for batch HPC jobs;
// this package asks the same question for the latency-sensitive serving
// load a production pool actually carries, where per-call slack lands on
// every request's critical path instead of being amortized by queue depth.
// Everything is deterministic: arrivals and token lengths come from salted
// math/rand/v2 PCG substreams, execution happens on the sim clock, and a
// sweep renders byte-identically under any worker count.
package serve

import (
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/sim"
)

// Stream salts for seed-derived substreams (see faults.Substream; faults
// reserves everything below 0x10000 and remoting uses 0x10000–0x10002).
// serve owns the 0x20000 block: one arrival and one token-length stream
// per tenant index.
const (
	saltArrival uint64 = 0x20000 // + tenant index
	saltTokens  uint64 = 0x21000 // + tenant index
)

// maxTenants bounds tenant count so the per-tenant salt blocks never
// overlap.
const maxTenants = 0x1000

// Tenant is one traffic source sharing the pool.
type Tenant struct {
	// Name labels the tenant in reports.
	Name string
	// Rate is the mean request arrival rate in requests/second. Arrivals
	// are open-loop Poisson: the next request is generated regardless of
	// whether earlier ones have completed.
	Rate float64
	// MeanPromptTokens and MeanOutputTokens parameterize the (exponential)
	// token-length draws.
	MeanPromptTokens int
	MeanOutputTokens int
	// SLO is the per-request latency objective; completions within it
	// count toward goodput.
	SLO sim.Duration
	// Priority orders tenants under degraded capacity: when the admission
	// gate must shed, higher values degrade first. Zero (the default) is
	// the most protected class; negative priorities are invalid.
	Priority int
}

func (t Tenant) validate() error {
	if t.Name == "" {
		return fmt.Errorf("serve: tenant with empty name")
	}
	if t.Priority < 0 {
		return fmt.Errorf("serve: tenant %s priority %d must be >= 0", t.Name, t.Priority)
	}
	if t.Rate <= 0 {
		return fmt.Errorf("serve: tenant %s rate %g must be positive", t.Name, t.Rate)
	}
	if t.MeanPromptTokens < 1 || t.MeanOutputTokens < 1 {
		return fmt.Errorf("serve: tenant %s token means must be >= 1", t.Name)
	}
	if t.SLO <= 0 {
		return fmt.Errorf("serve: tenant %s SLO must be positive", t.Name)
	}
	return nil
}

// Request is one inference request in the generated schedule.
type Request struct {
	// ID is the request's position in global arrival order.
	ID int
	// Tenant indexes into the tenant list the schedule was built from.
	Tenant int
	// Arrival is when the request enters the admission queue.
	Arrival sim.Time
	// PromptTokens is the prompt length processed by the prefill pass;
	// OutputTokens is the number of autoregressive decode steps.
	PromptTokens int
	OutputTokens int
}

// Generate builds the open-loop request schedule for a serving window:
// per-tenant Poisson arrivals with exponential token-length draws, each
// tenant on its own pair of salted PCG substreams so adding a tenant (or
// reordering the slice) never perturbs another tenant's schedule. The
// result is sorted by arrival time (ties broken by tenant index, then
// per-tenant sequence) with IDs assigned in that order — the same bytes
// for the same (tenants, window, seed) on every run and worker count.
func Generate(tenants []Tenant, window sim.Duration, seed int64) ([]Request, error) {
	if window <= 0 {
		return nil, fmt.Errorf("serve: window %v must be positive", window)
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("serve: no tenants")
	}
	if len(tenants) > maxTenants {
		return nil, fmt.Errorf("serve: %d tenants exceeds the salt block (%d)", len(tenants), maxTenants)
	}
	type keyed struct {
		req Request
		seq int
	}
	// Expected schedule size is sum(rate·window); preallocate with a seat
	// per tenant of headroom (capped — a mis-sized config should not
	// reserve gigabytes up front).
	var expect float64
	for _, t := range tenants {
		if t.Rate > 0 {
			expect += t.Rate * float64(window)
		}
	}
	if expect > 1<<20 {
		expect = 1 << 20
	}
	all := make([]keyed, 0, int(expect)+len(tenants))
	end := sim.Time(0).Add(window)
	for ti, t := range tenants {
		if err := t.validate(); err != nil {
			return nil, err
		}
		arr := faults.Substream(seed, saltArrival+uint64(ti))
		tok := faults.Substream(seed, saltTokens+uint64(ti))
		now := sim.Time(0)
		for seq := 0; ; seq++ {
			now = now.Add(sim.Duration(arr.ExpFloat64() / t.Rate))
			if now.Sub(end) >= 0 {
				break
			}
			all = append(all, keyed{
				req: Request{
					Tenant:       ti,
					Arrival:      now,
					PromptTokens: drawTokens(tok.ExpFloat64(), t.MeanPromptTokens),
					OutputTokens: drawTokens(tok.ExpFloat64(), t.MeanOutputTokens),
				},
				seq: seq,
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.req.Arrival < b.req.Arrival {
			return true
		}
		if b.req.Arrival < a.req.Arrival {
			return false
		}
		if a.req.Tenant != b.req.Tenant {
			return a.req.Tenant < b.req.Tenant
		}
		return a.seq < b.seq
	})
	reqs := make([]Request, len(all))
	for i, k := range all {
		k.req.ID = i
		reqs[i] = k.req
	}
	return reqs, nil
}

// drawTokens turns a unit-mean exponential draw into a token count with
// mean roughly the configured mean, floored at one token and capped at
// 4× the mean so a single tail draw cannot dominate a serving window.
func drawTokens(u float64, mean int) int {
	n := 1 + int(u*float64(mean))
	if cap := 4 * mean; n > cap {
		n = cap
	}
	return n
}
