// Package experiments regenerates every table and figure in the paper's
// evaluation section from the simulated stack. Each experiment returns
// structured results plus a rendered, paper-style text block; cmd/reproduce
// prints them and the top-level benchmarks time them.
//
// Paper reference values are embedded so each run reports measured-vs-paper
// side by side (EXPERIMENTS.md records a full run).
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/cosmoflow"
	"repro/internal/gpu"
	"repro/internal/lammps"
	"repro/internal/model"
	"repro/internal/proxy"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options scales experiment cost. The zero value selects paper-faithful
// parameters (slow); Quick returns a configuration that preserves shapes
// at a fraction of the cost.
type Options struct {
	// LAMMPSSteps is the MD step count per measurement (paper: 5000).
	LAMMPSSteps int
	// ProxyIters overrides the proxy's 30-second loop sizing (paper: 0).
	ProxyIters int
	// CosmoEpochs and CosmoSamples shrink the training runs (paper: 5
	// epochs × 1024 samples).
	CosmoEpochs  int
	CosmoSamples int
	// ServeWindow is the serving experiment's measurement window (paper
	// convention: 5 s of open-loop arrivals).
	ServeWindow sim.Duration
	// Jobs bounds the worker pool every sweep fans its independent
	// configuration points across (cmd/reproduce's -j flag). Each point
	// owns a private sim.Env and results merge in input order, so output
	// is byte-identical for every value: 1 recovers the exact serial
	// path, 0 selects GOMAXPROCS.
	Jobs int
}

// Quick returns reduced-cost options that preserve every reported shape.
func Quick() Options {
	return Options{LAMMPSSteps: 40, ProxyIters: 20, CosmoEpochs: 1, CosmoSamples: 32,
		ServeWindow: 500 * sim.Millisecond}
}

// Paper returns paper-faithful options (expensive).
func Paper() Options {
	return Options{LAMMPSSteps: 5000, ProxyIters: 0, CosmoEpochs: 5, CosmoSamples: 1024,
		ServeWindow: 5 * sim.Second}
}

func (o Options) withDefaults() Options {
	p := Paper()
	if o.LAMMPSSteps == 0 {
		o.LAMMPSSteps = p.LAMMPSSteps
	}
	if o.CosmoEpochs == 0 {
		o.CosmoEpochs = p.CosmoEpochs
	}
	if o.CosmoSamples == 0 {
		o.CosmoSamples = p.CosmoSamples
	}
	if o.ServeWindow == 0 {
		o.ServeWindow = p.ServeWindow
	}
	return o
}

// --- Table I ---

// Table1Row is one LAMMPS box-size baseline.
type Table1Row struct {
	BoxSize      int
	Atoms        int
	Measured     sim.Duration // extrapolated to 5000 steps
	PaperSeconds float64
}

// Table1 regenerates Table I: LAMMPS box-size baselines at 1 process × 1
// thread.
func Table1(o Options) ([]Table1Row, error) {
	o = o.withDefaults()
	paper := map[int]float64{20: 5.473, 60: 66.523, 80: 160.703, 100: 312.185, 120: 541.452}
	boxes := []int{20, 60, 80, 100, 120}
	return runner.Map(o.Jobs, len(boxes), func(i int) (Table1Row, error) {
		box := boxes[i]
		r, err := lammps.RunPerf(lammps.PerfConfig{BoxSize: box, Steps: o.LAMMPSSteps})
		if err != nil {
			return Table1Row{}, err
		}
		return Table1Row{
			BoxSize:      box,
			Atoms:        r.Atoms,
			Measured:     r.FullRuntime,
			PaperSeconds: paper[box],
		}, nil
	})
}

// RenderTable1 formats Table I.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: LAMMPS box-size baselines (1 proc × 1 thread, 5000 steps)\n")
	fmt.Fprintf(&b, "%-10s %-12s %-14s %-14s %-8s\n", "box", "atoms", "measured[s]", "paper[s]", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %-12d %-14.3f %-14.3f %-8.2f\n",
			r.BoxSize, r.Atoms, r.Measured.Seconds(), r.PaperSeconds,
			r.Measured.Seconds()/r.PaperSeconds)
	}
	return b.String()
}

// --- Figure 2 ---

// Figure2Series is one box size's normalized strong-scaling curve.
type Figure2Series struct {
	BoxSize    int
	Procs      []int
	Normalized []float64
}

// Figure2 regenerates the strong-scaling curves (normalized to 1 process).
func Figure2(o Options) ([]Figure2Series, error) {
	o = o.withDefaults()
	procs := []int{1, 2, 4, 8, 12, 16, 20, 24}
	boxes := []int{20, 60, 80, 100, 120}
	// Fan the full box × procs grid out as independent points, then
	// normalize each box's row against its p=1 entry during the ordered
	// merge.
	times, err := runner.Map(o.Jobs, len(boxes)*len(procs), func(i int) (sim.Duration, error) {
		box, p := boxes[i/len(procs)], procs[i%len(procs)]
		r, err := lammps.RunPerf(lammps.PerfConfig{BoxSize: box, Procs: p, Steps: o.LAMMPSSteps})
		if err != nil {
			return 0, err
		}
		return r.StepTime, nil
	})
	if err != nil {
		return nil, err
	}
	var out []Figure2Series
	for bi, box := range boxes {
		s := Figure2Series{BoxSize: box, Procs: procs}
		base := times[bi*len(procs)] // procs[0] == 1
		for pi := range procs {
			s.Normalized = append(s.Normalized, float64(times[bi*len(procs)+pi])/float64(base))
		}
		out = append(out, s)
	}
	return out, nil
}

// RenderFigure2 formats the strong-scaling grid.
func RenderFigure2(series []Figure2Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: LAMMPS strong scaling (runtime normalized to 1 process)\n")
	fmt.Fprintf(&b, "paper anchors: box 60 −17.2%% at 8 procs; box 120 −55.6%% at 24\n")
	if len(series) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-8s", "box")
	for _, p := range series[0].Procs {
		fmt.Fprintf(&b, "%8s", fmt.Sprintf("p=%d", p))
	}
	fmt.Fprintln(&b)
	for _, s := range series {
		fmt.Fprintf(&b, "%-8d", s.BoxSize)
		for _, n := range s.Normalized {
			fmt.Fprintf(&b, "%8.3f", n)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// --- OpenMP thread scaling (§IV-A text) ---

// ThreadRow is one thread-scaling measurement.
type ThreadRow struct {
	BoxSize  int
	Procs    int
	Threads  int
	StepTime sim.Duration
	// VsOneThread normalizes to the same box/procs at 1 thread.
	VsOneThread float64
	// VsOneCore normalizes to 1 proc × 1 thread.
	VsOneCore float64
}

// ThreadScaling regenerates the §IV-A OpenMP results: threads 1..6 at 8
// processes, plus the box-200 full-node comparison.
func ThreadScaling(o Options) ([]ThreadRow, error) {
	o = o.withDefaults()
	// Box 200: 24 cores (12p×2t) vs 48 cores (24p×2t).
	steps200 := o.LAMMPSSteps
	if steps200 > 100 {
		steps200 = 100 // 32M atoms: keep the event count sane
	}
	threads := []int{1, 2, 4, 6}
	cfgs := []lammps.PerfConfig{
		{BoxSize: 120, Steps: o.LAMMPSSteps}, // the 1-core baseline
		{BoxSize: 200, Procs: 12, Threads: 2, Steps: steps200},
		{BoxSize: 200, Procs: 24, Threads: 2, Steps: steps200},
	}
	for _, t := range threads {
		cfgs = append(cfgs, lammps.PerfConfig{BoxSize: 120, Procs: 8, Threads: t, Steps: o.LAMMPSSteps})
	}
	res, err := runner.Map(o.Jobs, len(cfgs), func(i int) (lammps.PerfResult, error) {
		return lammps.RunPerf(cfgs[i])
	})
	if err != nil {
		return nil, err
	}
	oneCore, r24, r48, threadRes := res[0], res[1], res[2], res[3:]
	oneThread := threadRes[0].StepTime // threads[0] == 1
	var rows []ThreadRow
	for i, t := range threads {
		rows = append(rows, ThreadRow{
			BoxSize: 120, Procs: 8, Threads: t, StepTime: threadRes[i].StepTime,
			VsOneThread: float64(threadRes[i].StepTime) / float64(oneThread),
			VsOneCore:   float64(threadRes[i].StepTime) / float64(oneCore.StepTime),
		})
	}
	rows = append(rows,
		ThreadRow{BoxSize: 200, Procs: 12, Threads: 2, StepTime: r24.StepTime, VsOneThread: 1},
		ThreadRow{BoxSize: 200, Procs: 24, Threads: 2, StepTime: r48.StepTime,
			VsOneThread: float64(r48.StepTime) / float64(r24.StepTime)},
	)
	return rows, nil
}

// RenderThreadScaling formats the thread results.
func RenderThreadScaling(rows []ThreadRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "OpenMP thread scaling (§IV-A)\n")
	fmt.Fprintf(&b, "paper anchors: box 120 @ 8p: −52.3%% at 6 threads (−76.4%% vs 1 core); box 200: −24.3%% at 48 vs 24 cores\n")
	fmt.Fprintf(&b, "%-8s %-6s %-8s %-12s %-12s %-12s\n", "box", "procs", "threads", "step", "vs 1 thread", "vs 1 core")
	for _, r := range rows {
		core := "-"
		if r.VsOneCore > 0 {
			core = fmt.Sprintf("%.3f", r.VsOneCore)
		}
		fmt.Fprintf(&b, "%-8d %-6d %-8d %-12v %-12.3f %-12s\n",
			r.BoxSize, r.Procs, r.Threads, r.StepTime, r.VsOneThread, core)
	}
	return b.String()
}

// --- CosmoFlow CPU affinity (§IV-A) ---

// CPUAffinityRow is one cores-vs-runtime measurement.
type CPUAffinityRow struct {
	Cores   int
	Runtime sim.Duration
}

// CosmoFlowCPU regenerates the CosmoFlow core-affinity result.
func CosmoFlowCPU(o Options) ([]CPUAffinityRow, error) {
	o = o.withDefaults()
	cores := []int{1, 2, 4, 8}
	return runner.Map(o.Jobs, len(cores), func(i int) (CPUAffinityRow, error) {
		r, err := cosmoflow.RunPerf(cosmoflow.PerfConfig{
			Cores: cores[i], Epochs: o.CosmoEpochs,
			TrainSamples: o.CosmoSamples, ValSamples: o.CosmoSamples / 2,
		})
		if err != nil {
			return CPUAffinityRow{}, err
		}
		return CPUAffinityRow{Cores: cores[i], Runtime: r.Runtime}, nil
	})
}

// RenderCosmoFlowCPU formats the affinity results.
func RenderCosmoFlowCPU(rows []CPUAffinityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CosmoFlow CPU affinity (§IV-A): paper — needs exactly 2 cores, no benefit beyond\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "cores=%d: %v\n", r.Cores, r.Runtime)
	}
	return b.String()
}

// --- Table II ---

// Table2Row is one proxy matrix-size baseline.
type Table2Row struct {
	MatrixSize int
	MatrixMiB  float64
	KernelTime sim.Duration
	Iters      int
	LoopTime   sim.Duration
}

// Table2 regenerates the proxy baselines. With paper-faithful sizing
// (ProxyIters 0) the iteration counts show the paper's [5, 1000] clamps.
func Table2(o Options) ([]Table2Row, error) {
	sizes := proxy.PaperSizes()
	return runner.Map(o.Jobs, len(sizes), func(i int) (Table2Row, error) {
		n := sizes[i]
		r, err := proxy.Run(proxy.Config{MatrixSize: n, Iters: o.ProxyIters})
		if err != nil {
			return Table2Row{}, err
		}
		return Table2Row{
			MatrixSize: n,
			MatrixMiB:  float64(gpu.MatrixBytes(n)) / (1 << 20),
			KernelTime: r.KernelTime,
			Iters:      r.Iters,
			LoopTime:   r.LoopTime,
		}, nil
	})
}

// RenderTable2 formats Table II.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: proxy matrix-size data\n")
	fmt.Fprintf(&b, "%-12s %-12s %-14s %-8s %-14s\n", "matrix", "MiB", "kernel", "N", "loop")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12d %-12.0f %-14v %-8d %-14v\n",
			r.MatrixSize, r.MatrixMiB, r.KernelTime, r.Iters, r.LoopTime)
	}
	return b.String()
}

// --- Figure 3 ---

// Figure3 regenerates the slack sweep for the requested thread counts.
func Figure3(o Options, threads []int) ([]proxy.SweepPoint, error) {
	if len(threads) == 0 {
		threads = proxy.PaperThreads()
	}
	slacks := []sim.Duration{
		1 * sim.Microsecond, 10 * sim.Microsecond, 100 * sim.Microsecond,
		1 * sim.Millisecond, 10 * sim.Millisecond,
	}
	sizes := proxy.PaperSizes()
	if o.ProxyIters > 0 {
		// Quick mode: 2^15 multiplies seconds-long kernels; skip it and
		// keep the three sizes that show every trend.
		sizes = sizes[:3]
	}
	return proxy.SweepParallel(sizes, threads, slacks, o.ProxyIters, o.Jobs)
}

// RenderFigure3 formats the sweep as one grid per thread count.
func RenderFigure3(pts []proxy.SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: proxy normalized corrected runtime under slack\n")
	fmt.Fprintf(&b, "paper anchors: 2^13 first penalized (≈+10%%) at 10ms; 2^15 unaffected to 1s\n")
	byThread := map[int]map[int]map[sim.Duration]float64{}
	var threads, sizes []int
	var slacks []sim.Duration
	seenT, seenN, seenS := map[int]bool{}, map[int]bool{}, map[sim.Duration]bool{}
	for _, pt := range pts {
		if byThread[pt.Threads] == nil {
			byThread[pt.Threads] = map[int]map[sim.Duration]float64{}
		}
		if byThread[pt.Threads][pt.MatrixSize] == nil {
			byThread[pt.Threads][pt.MatrixSize] = map[sim.Duration]float64{}
		}
		byThread[pt.Threads][pt.MatrixSize][pt.Slack] = 1 + pt.Penalty
		if !seenT[pt.Threads] {
			seenT[pt.Threads] = true
			threads = append(threads, pt.Threads)
		}
		if !seenN[pt.MatrixSize] {
			seenN[pt.MatrixSize] = true
			sizes = append(sizes, pt.MatrixSize)
		}
		if !seenS[pt.Slack] {
			seenS[pt.Slack] = true
			slacks = append(slacks, pt.Slack)
		}
	}
	for _, th := range threads {
		fmt.Fprintf(&b, "\n%d thread(s):\n%-10s", th, "slack")
		for _, n := range sizes {
			fmt.Fprintf(&b, "%10d", n)
		}
		fmt.Fprintln(&b)
		for _, sl := range slacks {
			fmt.Fprintf(&b, "%-10v", sl)
			for _, n := range sizes {
				if v, ok := byThread[th][n][sl]; ok {
					fmt.Fprintf(&b, "%10.4f", v)
				} else {
					fmt.Fprintf(&b, "%10s", "-")
				}
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}

// --- Traces for Figures 4-5 and Tables III-IV ---

// Traces captures the two applications' profiling runs at the paper's
// configurations (LAMMPS 8×1 box 120; CosmoFlow batch 4).
type Traces struct {
	LAMMPS    *trace.Trace
	CosmoFlow *trace.Trace
}

// CollectTraces profiles both applications, each in its own simulation.
func CollectTraces(o Options) (Traces, error) {
	o = o.withDefaults()
	var tr Traces
	err := runner.Go(o.Jobs,
		func() error {
			lr, err := lammps.RunPerf(lammps.PerfConfig{BoxSize: 120, Procs: 8, Steps: o.LAMMPSSteps, Record: true})
			if err != nil {
				return err
			}
			tr.LAMMPS = lr.Trace
			return nil
		},
		func() error {
			cr, err := cosmoflow.RunPerf(cosmoflow.PerfConfig{
				Epochs: o.CosmoEpochs, TrainSamples: o.CosmoSamples, ValSamples: o.CosmoSamples / 2,
				Record: true,
			})
			if err != nil {
				return err
			}
			tr.CosmoFlow = cr.Trace
			return nil
		},
	)
	if err != nil {
		return Traces{}, err
	}
	return tr, nil
}

// RenderFigure4 formats the kernel-duration violins (top five kernels plus
// the total, per application).
func RenderFigure4(tr Traces) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: kernel-duration distributions (violin summaries)\n")
	for _, app := range []*trace.Trace{tr.LAMMPS, tr.CosmoFlow} {
		fmt.Fprintf(&b, "\n%s (%d kernels):\n", app.Label, len(app.Kernels))
		for _, g := range app.TopKernels(5) {
			s := stats.Summarize(g.Durations)
			fmt.Fprintf(&b, "  %-24s n=%-6d min=%-10s med=%-10s max=%-10s total=%v\n",
				g.Name, g.Count,
				sim.Duration(s.Min).String(), sim.Duration(s.Median).String(),
				sim.Duration(s.Max).String(), g.Total)
		}
		all := stats.Summarize(app.KernelDurations())
		fmt.Fprintf(&b, "  %-24s n=%-6d min=%-10s med=%-10s max=%-10s total=%v\n",
			"Total", all.N,
			sim.Duration(all.Min).String(), sim.Duration(all.Median).String(),
			sim.Duration(all.Max).String(), app.KernelTime())
		top5 := app.TopKernels(5)
		var t5 sim.Duration
		for _, g := range top5 {
			t5 += g.Total
		}
		fmt.Fprintf(&b, "  top-5 share of kernel time: %.1f%% (paper: 49.9%% for CosmoFlow)\n",
			100*float64(t5)/float64(app.KernelTime()))
	}
	return b.String()
}

// RenderFigure5 formats the memcpy-size violins.
func RenderFigure5(tr Traces) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: memcpy size distributions\n")
	for _, app := range []*trace.Trace{tr.LAMMPS, tr.CosmoFlow} {
		sizes := app.MemcpySizes()
		s := stats.Summarize(sizes)
		fmt.Fprintf(&b, "\n%s: n=%d mean=%.2f MiB min=%.3f MiB max=%.0f MiB\n",
			app.Label, s.N, s.Mean/(1<<20), s.Min/(1<<20), s.Max/(1<<20))
		v := stats.NewViolin(sizes, 10, true)
		b.WriteString(v.Render(36))
	}
	return b.String()
}

// Table3Row is one application's transfer-size binning: counts per MiB
// bin exactly as the paper presents them (bins 1, 16, 256, 4096 MiB plus
// overflow — the footprints of the proxy's matrix sizes).
type Table3Row struct {
	App     string
	Counts  []int // len(TableIIIBinsMiB)+1, last is overflow
	MeanMiB float64
	Total   int
}

// TableIIIBinsMiB are the paper's transfer-size bin thresholds.
var TableIIIBinsMiB = []float64{1, 16, 256, 4096}

// Table3 regenerates the transfer-size binning. (The prediction model's
// rounding to matrix-size equivalents lives in internal/model; this table
// is the paper's plain histogram presentation.)
func Table3(tr Traces, _ *model.Surface) []Table3Row {
	thresholds := make([]float64, len(TableIIIBinsMiB))
	for i, m := range TableIIIBinsMiB {
		thresholds[i] = m * (1 << 20)
	}
	var rows []Table3Row
	for _, app := range []*trace.Trace{tr.LAMMPS, tr.CosmoFlow} {
		sizes := app.MemcpySizes()
		rows = append(rows, Table3Row{
			App:     app.Label,
			Counts:  stats.BinByThresholds(sizes, thresholds),
			MeanMiB: stats.Mean(sizes) / (1 << 20),
			Total:   len(sizes),
		})
	}
	return rows
}

// RenderTable3 formats the binning table.
func RenderTable3(rows []Table3Row, _ *model.Surface) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: transfer-size binning in MiB\n")
	fmt.Fprintf(&b, "paper: LAMMPS 2264/42016/40008/0/0 mean 16.85; CosmoFlow 8186/668/335/640/1\n")
	fmt.Fprintf(&b, "%-22s", "app")
	for _, m := range TableIIIBinsMiB {
		fmt.Fprintf(&b, "%10s", fmt.Sprintf("≤%.0f", m))
	}
	fmt.Fprintf(&b, "%10s %10s %10s\n", ">4096", "total", "mean MiB")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s", r.App)
		for _, c := range r.Counts {
			fmt.Fprintf(&b, "%10d", c)
		}
		fmt.Fprintf(&b, "%10d %10.2f\n", r.Total, r.MeanMiB)
	}
	return b.String()
}

// Table4Block is one application's prediction sweep.
type Table4Block struct {
	App         string
	Predictions []model.Prediction
}

// Table4 regenerates the slack-penalty predictions for both applications.
func Table4(o Options, tr Traces) ([]Table4Block, *model.Surface, error) {
	study, err := core.NewStudy(core.StudyConfig{
		Sizes:   []int{1 << 9, 1 << 11, 1 << 13},
		Threads: []int{1, 4, 8},
		Iters:   o.ProxyIters,
		Jobs:    o.Jobs,
	})
	if err != nil {
		return nil, nil, err
	}
	apps := []struct {
		tr  *trace.Trace
		par int
	}{{tr.LAMMPS, 8}, {tr.CosmoFlow, 4}}
	blocks, err := runner.Map(o.Jobs, len(apps), func(i int) (Table4Block, error) {
		app := model.ProfileFromTrace(apps[i].tr, apps[i].par)
		preds, err := study.Predict(app)
		if err != nil {
			return Table4Block{}, err
		}
		return Table4Block{App: apps[i].tr.Label, Predictions: preds}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return blocks, study.Surface, nil
}

// RenderTable4 formats the prediction table and the headline check.
func RenderTable4(blocks []Table4Block) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV: total slack penalty (lower/upper), fraction of runtime\n")
	fmt.Fprintf(&b, "paper headline: both apps pessimistically < 1%% at 100µs\n")
	for _, blk := range blocks {
		fmt.Fprintf(&b, "\n%s:\n%-10s %-12s %-12s\n", blk.App, "slack", "lower", "upper")
		for _, p := range blk.Predictions {
			fmt.Fprintf(&b, "%-10v %-12.5f %-12.5f\n", p.Slack, p.Lower, p.Upper)
			if p.Slack == 100*sim.Microsecond {
				verdict := "VIABLE"
				if p.Upper >= 0.01 {
					verdict = "NOT VIABLE"
				}
				fmt.Fprintf(&b, "%-10s ↳ headline check at 100µs: %s (upper %.4f%%)\n",
					"", verdict, p.Upper*100)
			}
		}
	}
	return b.String()
}

// ValidationResult is the §IV-D self-validation outcome.
type ValidationResult struct {
	MatrixSize int
	Threads    int
	Slack      sim.Duration
	Measured   float64
	Lower      float64
	Upper      float64
}

// Validate reruns the model self-validation: the proxy predicts its own
// penalty from its own trace.
func Validate(o Options) (ValidationResult, error) {
	study, err := core.NewStudy(core.StudyConfig{
		Sizes:   []int{1 << 9, 1 << 11, 1 << 13},
		Threads: []int{1},
		Iters:   o.ProxyIters,
		Jobs:    o.Jobs,
	})
	if err != nil {
		return ValidationResult{}, err
	}
	const (
		size  = 1 << 11
		slack = 1 * sim.Millisecond
	)
	var (
		app       model.AppProfile
		base, run proxy.Result
	)
	err = runner.Go(o.Jobs,
		func() (err error) {
			app, _, err = study.Profile(core.ProxyWorkload{Config: proxy.Config{
				MatrixSize: size, Threads: 1, Iters: o.ProxyIters,
			}})
			return err
		},
		func() (err error) {
			base, err = proxy.Run(proxy.Config{MatrixSize: size, Threads: 1, Iters: o.ProxyIters})
			return err
		},
		func() (err error) {
			run, err = proxy.Run(proxy.Config{MatrixSize: size, Threads: 1, Iters: o.ProxyIters, Slack: slack})
			return err
		},
	)
	if err != nil {
		return ValidationResult{}, err
	}
	pred, err := study.Surface.Predict(app, slack)
	if err != nil {
		return ValidationResult{}, err
	}
	return ValidationResult{
		MatrixSize: size, Threads: 1, Slack: slack,
		Measured: proxy.Penalty(base, run),
		Lower:    pred.Lower, Upper: pred.Upper,
	}, nil
}

// RenderValidation formats the self-validation.
func RenderValidation(v ValidationResult) string {
	return fmt.Sprintf(
		"Model self-validation (§IV-D): proxy 2^%d × %d thread at %v slack\n"+
			"measured penalty %.5f; predicted lower %.5f, upper %.5f\n"+
			"paper: lower within 0.005 of actual (single-threaded); upper severely pessimistic\n",
		log2(v.MatrixSize), v.Threads, v.Slack, v.Measured, v.Lower, v.Upper)
}

// Compose regenerates the Discussion scheduling comparison.
func Compose() (compose.Comparison, error) { return compose.PaperScenario() }

// RenderCompose formats it.
func RenderCompose(c compose.Comparison) string {
	return "Discussion §V scheduling scenario (40 GPUs, 20 CPU nodes):\n" + c.Render()
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}
