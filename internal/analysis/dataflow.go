package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the module-wide dataflow layer under the taint analyzer.
//
// The abstraction is deliberately coarse — one taint value per named object,
// flow-sensitivity approximated by replaying each body in source order —
// because the property being checked is coarse too: does a value whose
// identity depends on map iteration order, the wall clock, or unseeded
// randomness ever reach a result-emitting sink? Three engineering choices
// keep the rule quiet on correct code:
//
//   - Sorting launders order taint: sort.Strings(keys) (and friends) erases
//     the taint a map range put on keys, so the repo's collect-sort-range
//     idiom is clean by construction rather than by suppression.
//   - Commutative accumulation is exempt: integer `+=` over a map range is
//     order-independent. Float accumulation is NOT exempt — float addition
//     does not associate, so summing map values in map order genuinely
//     changes the last ulp from run to run.
//   - Map writes are exempt: m2[k] = v inside a map range produces the same
//     map contents in any order.
//
// Error values never carry taint: error paths are fail-stop, not
// result-emitting, and exempting them keeps fmt.Errorf wrapping quiet.

// taintVal tracks why a value is nondeterministic (reason) and which of the
// enclosing function's parameters flow into it (a bitset, used to compute
// transitive sink parameters and param-to-return flow).
type taintVal struct {
	reason string
	params uint64
}

func (t taintVal) empty() bool { return t.reason == "" && t.params == 0 }

func mergeTaint(a, b taintVal) taintVal {
	out := a
	if out.reason == "" {
		out.reason = b.reason
	}
	out.params |= b.params
	return out
}

// funcState is the per-function abstract state during one analysis pass.
type funcState struct {
	g     *callGraph
	node  *funcNode
	info  *types.Info
	taint map[types.Object]taintVal

	// Set during summary passes:
	returnsTaint string
	retParams    uint64
	sinkParams   uint64

	// Non-nil only during the reporting pass.
	report func(pos token.Pos, reason, sink string)
}

// analyzeFunc replays the function body (twice, to pick up loop-carried
// taint) and returns the updated summary triple.
func analyzeFunc(g *callGraph, n *funcNode, report func(pos token.Pos, reason, sink string)) (string, uint64, uint64) {
	st := &funcState{g: g, node: n, info: n.pkg.Info, taint: map[types.Object]taintVal{}}
	if sig, ok := n.obj.Type().(*types.Signature); ok && sig.Params() != nil {
		params := sig.Params()
		for i := 0; i < params.Len() && i < 64; i++ {
			st.taint[params.At(i)] = taintVal{params: 1 << i}
		}
	}
	st.walk()
	if report != nil {
		st.report = report
		st.walk()
	} else {
		st.walk()
	}
	return st.returnsTaint, st.retParams, st.sinkParams
}

// walk replays the body in source order, updating the taint map and (in the
// reporting pass) emitting sink findings.
func (st *funcState) walk() {
	ast.Inspect(st.node.decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.AssignStmt:
			st.assign(node)
		case *ast.GenDecl:
			st.genDecl(node)
		case *ast.RangeStmt:
			st.rangeStmt(node)
		case *ast.ExprStmt:
			if call, ok := node.X.(*ast.CallExpr); ok {
				st.killIfSorted(call)
			}
		case *ast.ReturnStmt:
			for _, r := range node.Results {
				t := st.exprTaint(r)
				if t.reason != "" && st.returnsTaint == "" {
					st.returnsTaint = t.reason
				}
				st.retParams |= t.params
			}
		case *ast.CallExpr:
			st.checkSink(node)
		case *ast.SendStmt:
			if t := st.exprTaint(node.Value); t.reason != "" && st.report != nil {
				st.report(node.Arrow, t.reason, "channel send")
			} else {
				st.sinkParams |= t.params
			}
		}
		return true
	})
}

// assign propagates taint across one assignment statement.
func (st *funcState) assign(a *ast.AssignStmt) {
	if a.Tok != token.ASSIGN && a.Tok != token.DEFINE {
		// Compound assignment (+=, *=, ...): commutative over integers, so
		// integer accumulation in a map range stays clean; float and string
		// accumulation keep taint (non-associative rounding, concatenation
		// order).
		if len(a.Lhs) != 1 || len(a.Rhs) != 1 {
			return
		}
		if isIntegerOrBool(st.info, a.Lhs[0]) {
			return
		}
		t := st.exprTaint(a.Rhs[0])
		if !t.empty() {
			st.taintLHS(a.Lhs[0], t, false)
		}
		return
	}
	if len(a.Lhs) == len(a.Rhs) {
		for i, lhs := range a.Lhs {
			st.taintLHS(lhs, st.exprTaint(a.Rhs[i]), true)
		}
		return
	}
	// x, y := f(): every lhs inherits the call's taint.
	if len(a.Rhs) == 1 {
		t := st.exprTaint(a.Rhs[0])
		for _, lhs := range a.Lhs {
			st.taintLHS(lhs, t, true)
		}
	}
}

func (st *funcState) genDecl(d *ast.GenDecl) {
	if d.Tok != token.VAR {
		return
	}
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) == 0 {
			continue
		}
		for i, name := range vs.Names {
			var t taintVal
			if len(vs.Values) == len(vs.Names) {
				t = st.exprTaint(vs.Values[i])
			} else {
				t = st.exprTaint(vs.Values[0])
			}
			if obj := st.info.Defs[name]; obj != nil && !t.empty() {
				st.taint[obj] = mergeTaint(st.taint[obj], t)
			}
		}
	}
}

// taintLHS writes taint into an assignment target. Plain identifier targets
// take a strong update (assigning a clean value clears old taint); writes
// through fields, slice indices, and pointers taint the root object weakly.
// Map-index writes are exempt: filling a map under map-range iteration
// yields identical contents in any order.
func (st *funcState) taintLHS(lhs ast.Expr, t taintVal, strong bool) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := st.info.Defs[lhs]
		if obj == nil {
			obj = st.info.Uses[lhs]
		}
		if obj == nil {
			return
		}
		if isErrorType(st.info, lhs) {
			return
		}
		if strong {
			if t.empty() {
				delete(st.taint, obj)
			} else {
				st.taint[obj] = t
			}
		} else if !t.empty() {
			st.taint[obj] = mergeTaint(st.taint[obj], t)
		}
	case *ast.IndexExpr:
		tv, ok := st.info.Types[lhs.X]
		if ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				return
			}
		}
		t = mergeTaint(t, st.exprTaint(lhs.Index))
		if !t.empty() {
			st.weakTaintRoot(lhs.X, t)
		}
	case *ast.SelectorExpr:
		if !t.empty() {
			st.weakTaintRoot(lhs.X, t)
		}
	case *ast.StarExpr:
		if !t.empty() {
			st.weakTaintRoot(lhs.X, t)
		}
	}
}

// weakTaintRoot merges taint into the root identifier of an lvalue chain.
func (st *funcState) weakTaintRoot(e ast.Expr, t taintVal) {
	if obj := rootObject(st.info, e); obj != nil {
		st.taint[obj] = mergeTaint(st.taint[obj], t)
	}
}

// rootObject strips selectors, indexing, derefs, and parens down to the
// base identifier's object.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// rangeStmt taints the iteration variables of a map range with the order
// reason; ranging a tainted slice passes that taint to the element.
func (st *funcState) rangeStmt(r *ast.RangeStmt) {
	tv, ok := st.info.Types[r.X]
	if !ok {
		return
	}
	xt := st.exprTaint(r.X)
	if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
		xt = mergeTaint(taintVal{reason: "map iteration order"}, xt)
	} else if xt.empty() {
		return
	}
	if r.Tok == token.DEFINE || r.Tok == token.ASSIGN {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			st.taintLHS(r.Key, xt, false)
		}
		if r.Value != nil {
			st.taintLHS(r.Value, xt, false)
		}
		// For a tainted non-map, only the element (Value) is data-derived;
		// the integer index stays clean.
	}
}

// killIfSorted erases taint from the argument of an in-place sort: after
// sort.Strings(keys) the slice's order no longer encodes map order.
func (st *funcState) killIfSorted(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	fn := pkgLevelFunc(st.info, sel)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Sort", "Stable", "Slice", "SliceStable":
		default:
			return
		}
	case "slices":
		if !strings.HasPrefix(fn.Name(), "Sort") {
			return
		}
	default:
		return
	}
	if obj := rootObject(st.info, call.Args[0]); obj != nil {
		delete(st.taint, obj)
	}
}

// exprTaint evaluates the taint of an expression bottom-up.
func (st *funcState) exprTaint(e ast.Expr) taintVal {
	if e == nil {
		return taintVal{}
	}
	if isErrorType(st.info, e) {
		return taintVal{}
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := st.info.Uses[e]; obj != nil {
			return st.taint[obj]
		}
		return taintVal{}
	case *ast.ParenExpr:
		return st.exprTaint(e.X)
	case *ast.CallExpr:
		return st.callTaint(e)
	case *ast.BinaryExpr:
		return mergeTaint(st.exprTaint(e.X), st.exprTaint(e.Y))
	case *ast.UnaryExpr:
		return st.exprTaint(e.X)
	case *ast.StarExpr:
		return st.exprTaint(e.X)
	case *ast.IndexExpr:
		return mergeTaint(st.exprTaint(e.X), st.exprTaint(e.Index))
	case *ast.SliceExpr:
		return st.exprTaint(e.X)
	case *ast.SelectorExpr:
		// Package-qualified names carry no local taint.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := st.info.Uses[id].(*types.PkgName); isPkg {
				return taintVal{}
			}
		}
		return st.exprTaint(e.X)
	case *ast.TypeAssertExpr:
		return st.exprTaint(e.X)
	case *ast.CompositeLit:
		var t taintVal
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			t = mergeTaint(t, st.exprTaint(el))
		}
		return t
	}
	return taintVal{}
}

// callTaint evaluates a call: sources (wall clock, global rand), summarized
// module callees, laundering sorts, and data-through propagation for
// everything else.
func (st *funcState) callTaint(call *ast.CallExpr) taintVal {
	// Type conversion: taint of the operand.
	if tv, ok := st.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return st.exprTaint(call.Args[0])
		}
		return taintVal{}
	}

	argsTaint := func() taintVal {
		var t taintVal
		for _, a := range call.Args {
			t = mergeTaint(t, st.exprTaint(a))
		}
		return t
	}

	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		// Builtins: len/cap/make/new never carry order; append and the
		// rest pass data through.
		if obj := st.info.Uses[fun]; obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				switch fun.Name {
				case "len", "cap", "make", "new":
					return taintVal{}
				default:
					return argsTaint()
				}
			}
		}
	case *ast.SelectorExpr:
		if fn := pkgLevelFunc(st.info, fun); fn != nil && fn.Pkg() != nil {
			if reason := intrinsicSource(fn); reason != "" {
				return taintVal{reason: reason}
			}
			// slices.Sorted / slices.Compact etc. that return a sorted copy
			// launder order taint.
			if fn.Pkg().Path() == "slices" && strings.HasPrefix(fn.Name(), "Sorted") {
				return taintVal{}
			}
		}
	}

	// Module-internal callee with a summary: trust it.
	if callee := st.g.calleeOf(st.info, call); callee != nil {
		t := taintVal{}
		if callee.returnsTaint != "" {
			reason := callee.returnsTaint
			if !strings.Contains(reason, "via ") {
				reason += " (via " + callee.obj.Pkg().Name() + "." + callee.obj.Name() + ")"
			}
			t.reason = reason
		}
		// Param-to-return flow: args feeding returned params pass taint.
		for i, a := range call.Args {
			if i < 64 && callee.retParamBit(i) {
				t = mergeTaint(t, st.exprTaint(a))
			}
		}
		return t
	}

	// Unknown (stdlib or dynamic) call: conservative data-through, including
	// the receiver of a method call (t.Unix() is as tainted as t).
	t := argsTaint()
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		t = mergeTaint(t, st.exprTaint(sel.X))
	}
	return t
}

// checkSink reports (in the reporting pass) a tainted argument reaching a
// result-emitting sink, and accumulates sink parameters during summary
// passes.
func (st *funcState) checkSink(call *ast.CallExpr) {
	sink, argAt := sinkOf(st.g, st.info, call)
	if sink == "" {
		return
	}
	for i, a := range call.Args {
		if argAt != nil && !argAt(i) {
			continue
		}
		t := st.exprTaint(a)
		if t.reason != "" {
			if st.report != nil {
				st.report(call.Pos(), t.reason, sink)
			}
			return
		}
		st.sinkParams |= t.params
	}
}

// sinkOf classifies a call as a result-emitting sink. The returned argAt
// filter restricts which argument positions count (nil = all).
func sinkOf(g *callGraph, info *types.Info, call *ast.CallExpr) (string, func(int) bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if callee := g.calleeOf(info, call); callee != nil {
			return moduleSink(callee)
		}
	case *ast.SelectorExpr:
		if fn := pkgLevelFunc(info, fun); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			n := fn.Name()
			if strings.HasPrefix(n, "Print") || strings.HasPrefix(n, "Fprint") {
				return "fmt." + n, nil
			}
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				name := fn.Name()
				if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Encode") ||
					strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
					return "method " + name, nil
				}
				if pkg := fn.Pkg(); pkg != nil && strings.HasSuffix(pkg.Path(), "/internal/sim") {
					switch name {
					case "Spawn", "SpawnAt", "Sleep":
						return "sim event scheduling (" + name + ")", nil
					}
				}
			}
		}
		if callee := g.calleeOf(info, call); callee != nil {
			return moduleSink(callee)
		}
	}
	return "", nil
}

// moduleSink exposes a module function's sink parameters as a sink.
func moduleSink(callee *funcNode) (string, func(int) bool) {
	any := false
	for _, s := range callee.sinkParams {
		if s {
			any = true
			break
		}
	}
	if !any {
		return "", nil
	}
	name := callee.obj.Pkg().Name() + "." + callee.obj.Name()
	return name + " (emits its argument)", func(i int) bool {
		return i < len(callee.sinkParams) && callee.sinkParams[i]
	}
}

// retParamBit reports whether parameter i flows to the callee's return.
func (n *funcNode) retParamBit(i int) bool {
	return n.retParams&(1<<uint(i)) != 0
}

// intrinsicSource classifies stdlib calls that mint nondeterminism.
func intrinsicSource(fn *types.Func) string {
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			return "wall-clock time"
		}
	case "math/rand", "math/rand/v2":
		if !seededRandAllowed[fn.Name()] {
			return "unseeded global randomness"
		}
	}
	return ""
}

func isIntegerOrBool(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

func isErrorType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
