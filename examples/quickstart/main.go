// Quickstart: calibrate the methodology with a proxy sweep, profile a
// workload, and ask the headline question — can this application live
// 20 km away from its GPUs?
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"

	cdi "repro"
)

func main() {
	iters := flag.Int("iters", 20, "proxy loop iterations (0 = paper-faithful 30s sizing; slow)")
	flag.Parse()

	fmt.Println("== calibrating: sweeping the slack proxy ==")
	study, err := cdi.NewStudy(cdi.StudyConfig{
		Sizes:   []int{1 << 9, 1 << 11, 1 << 13},
		Threads: []int{1, 4, 8},
		Iters:   *iters,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("surface built from %d sweep points over sizes %v\n\n",
		len(study.Points), study.Surface.Sizes())

	fmt.Println("== profiling: mini-LAMMPS, 8 ranks, box 60 ==")
	app, tr, err := study.Profile(cdi.LAMMPSWorkload{
		Config: cdi.LAMMPSConfig{BoxSize: 60, Procs: 8, Steps: 50},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d kernels, %d transfers over %v\n",
		len(tr.Kernels), len(tr.Copies), tr.Runtime())
	fmt.Printf("kernel runtime fraction: %.1f%%   memcpy fraction: %.1f%%\n\n",
		app.KernelFraction*100, app.MemcpyFraction*100)

	fmt.Println("== predicting: slack penalty bounds (Table IV style) ==")
	preds, err := study.Predict(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %-12s %-12s\n", "slack", "lower", "upper")
	for _, p := range preds {
		fmt.Printf("%-10v %-12.5f %-12.5f\n", p.Slack, p.Lower, p.Upper)
	}
	fmt.Println()

	verdict, err := study.Assess(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== verdict at %v of slack (%.0f km of fibre) ==\n", verdict.Slack, verdict.ReachKm)
	fmt.Printf("pessimistic penalty: %.3f%%  →  viable: %v\n",
		verdict.Prediction.Upper*100, verdict.Viable)
}
