package corpus

import "testing"

// BenchmarkIterate is a hot root. The b.N loop is a harness loop — callees
// reached only through it are hot but not per-iteration — while the batch
// loop below is a genuine application loop, so perBatch is per-iteration.
func BenchmarkIterate(b *testing.B) {
	items := []int{1, 2, 3}
	for i := 0; i < b.N; i++ {
		runOnce(items)
	}
	for _, n := range items {
		_ = n
		perBatch(items)
	}
}
