package remoting

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/sim"
)

// firstFlapSeed scans seeds for a flap schedule whose first outage starts
// after t=0 and is followed by at least 2 ms of healthy link — room for
// the breaker timeline to play out without the next window interfering.
// The scan uses its own injector, so the transport under test draws the
// identical (unperturbed) schedule from the same config.
func firstFlapSeed(t *testing.T, outage sim.Duration) (seed int64, start, end sim.Time) {
	t.Helper()
	for s := int64(1); s < 200; s++ {
		cfg := faults.Config{Seed: s, FlapEvery: 50 * sim.Millisecond, FlapOutage: outage}
		in, err := faults.NewInjector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var probe sim.Time
		var S, E sim.Time
		found := false
		for probe.Sub(sim.Time(0)) < sim.Second {
			probe = probe.Add(20 * sim.Microsecond)
			if down, until := in.LinkDown(probe); down {
				E = until
				S = until.Add(-outage)
				found = true
				break
			}
		}
		if !found || S.Sub(sim.Time(0)) < 100*sim.Microsecond {
			continue
		}
		clear := true
		for q := E.Add(sim.Microsecond); q.Sub(E) < 2*sim.Millisecond; q = q.Add(20 * sim.Microsecond) {
			if down, _ := in.LinkDown(q); down {
				clear = false
				break
			}
		}
		if clear {
			return s, S, E
		}
	}
	t.Fatal("no seed produced an isolated first flap window")
	return 0, 0, 0
}

// breakerPolicy is timed so that, for a call issued at the start of a
// flap outage, two attempts (72 µs each, 10 µs backoff between) trip the
// breaker at +154 µs and the half-open probe goes out at +454 µs.
func breakerPolicy() faults.Policy {
	return faults.Policy{
		CallTimeout:      50 * sim.Microsecond,
		MaxRetries:       10,
		BackoffBase:      10 * sim.Microsecond,
		JitterFrac:       -1, // normalized to zero: exact timings
		BreakerThreshold: 2,
		BreakerCooldown:  300 * sim.Microsecond,
		FailoverPenalty:  100 * sim.Microsecond,
	}
}

// breakerRun issues a single Malloc at the first flap window's start and
// returns the transport for stats inspection.
func breakerRun(t *testing.T, outage sim.Duration) *Resilient {
	t.Helper()
	seed, start, _ := firstFlapSeed(t, outage)
	env := sim.NewEnv()
	defer env.Close()
	r, err := NewResilient(env, gpu.A100(), ResilientConfig{
		Config: Config{Path: mustPathForSlack(t, 10*sim.Microsecond), Seed: seed},
		Faults: faults.Config{Seed: seed, FlapEvery: 50 * sim.Millisecond, FlapOutage: outage},
		Policy: breakerPolicy(), Standbys: 1, DisableLocalFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var callErr error
	env.Spawn("host", func(p *sim.Proc) {
		// Land just inside the window (float rounding could place the
		// computed start a hair before it).
		p.Sleep(start.Add(2 * sim.Microsecond).Sub(p.Now()))
		_, callErr = r.Malloc(p, 1<<20)
	})
	env.Run()
	if callErr != nil {
		t.Fatalf("call failed: %v", callErr)
	}
	return r
}

func TestBreakerHalfOpenCloses(t *testing.T) {
	// A 250 µs outage ends during the breaker cooldown: the half-open
	// probe finds the link healthy, the breaker closes on the same server,
	// and no failover is paid.
	r := breakerRun(t, 250*sim.Microsecond)
	st := r.Stats()
	if st.BreakerTrips != 1 || st.HalfOpenProbes != 1 || st.HalfOpenRecoveries != 1 {
		t.Errorf("trips/probes/recoveries = %d/%d/%d, want 1/1/1",
			st.BreakerTrips, st.HalfOpenProbes, st.HalfOpenRecoveries)
	}
	if st.Failovers != 0 {
		t.Errorf("half-open recovery still paid %d failover(s)", st.Failovers)
	}
	if r.ActiveServer() != 0 {
		t.Errorf("active server %d after recovery, want 0", r.ActiveServer())
	}
}

func TestBreakerHalfOpenReopens(t *testing.T) {
	// A 500 µs outage is still up when the probe goes out at +454 µs; the
	// window ends at +500 µs while the probe is waiting on its deadline —
	// too late: the request was already lost, the breaker re-opens, and
	// the call fails over to the standby.
	r := breakerRun(t, 500*sim.Microsecond)
	st := r.Stats()
	if st.BreakerTrips != 1 || st.HalfOpenProbes != 1 || st.HalfOpenRecoveries != 0 {
		t.Errorf("trips/probes/recoveries = %d/%d/%d, want 1/1/0",
			st.BreakerTrips, st.HalfOpenProbes, st.HalfOpenRecoveries)
	}
	if st.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", st.Failovers)
	}
	if r.ActiveServer() != 1 {
		t.Errorf("active server %d after re-open, want 1", r.ActiveServer())
	}
}

func TestDrainMigratesAndReadmitRestores(t *testing.T) {
	// Policy-triggered drain rides the same DMA-replay path as failover:
	// the handle table moves to the standby, the drained server stays
	// readmittable, and a readmitted server is reachable again through the
	// circular rotation scan.
	env := sim.NewEnv()
	defer env.Close()
	r, err := NewResilient(env, gpu.A100(), ResilientConfig{
		Config:   Config{Path: mustPathForSlack(t, 10*sim.Microsecond), Seed: 5},
		Standbys: 1, DisableLocalFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	matBytes := gpu.MatrixBytes(64)
	kernel := gpu.MatMul(64)
	env.Spawn("host", func(p *sim.Proc) {
		var bufs [3]gpu.Ptr
		for i := range bufs {
			h, err := r.Malloc(p, matBytes)
			if err != nil {
				t.Errorf("malloc: %v", err)
				return
			}
			bufs[i] = h
		}
		if _, err := r.RunProxyIteration(p, bufs[0], bufs[1], bufs[2], matBytes, kernel); err != nil {
			t.Errorf("pre-drain iteration: %v", err)
			return
		}
		if err := r.Drain(p, 0); err != nil {
			t.Errorf("drain(0): %v", err)
			return
		}
		if got := r.ActiveServer(); got != 1 {
			t.Errorf("active after drain = %d, want 1", got)
		}
		if r.Live(0) {
			t.Error("drained server still reports live")
		}
		if _, err := r.RunProxyIteration(p, bufs[0], bufs[1], bufs[2], matBytes, kernel); err != nil {
			t.Errorf("post-drain iteration: %v", err)
			return
		}
		// Draining the last live server must be refused, not executed.
		if err := r.Drain(p, 1); err == nil || !strings.Contains(err.Error(), "no live peer") {
			t.Errorf("draining the last live server: err = %v", err)
		}
		if err := r.Readmit(0); err != nil {
			t.Errorf("readmit(0): %v", err)
			return
		}
		if !r.Live(0) {
			t.Error("readmitted server not live")
		}
		// Now server 1 can drain back onto the readmitted 0 — the circular
		// scan reaches a lower index, which crash failover never needs.
		if err := r.Drain(p, 1); err != nil {
			t.Errorf("drain(1): %v", err)
			return
		}
		if got := r.ActiveServer(); got != 0 {
			t.Errorf("active after second drain = %d, want 0", got)
		}
		if _, err := r.RunProxyIteration(p, bufs[0], bufs[1], bufs[2], matBytes, kernel); err != nil {
			t.Errorf("iteration on readmitted server: %v", err)
		}
	})
	env.Run()
	st := r.Stats()
	if st.Migrations != 2 || st.Readmissions != 1 || st.Failovers != 0 {
		t.Errorf("migrations/readmissions/failovers = %d/%d/%d, want 2/1/0",
			st.Migrations, st.Readmissions, st.Failovers)
	}
	if st.ReuploadBytes != 2*3*matBytes {
		t.Errorf("reupload bytes = %d, want %d (3 handles × 2 migrations)", st.ReuploadBytes, 2*3*matBytes)
	}
}

func TestDrainStandbyRemovesFromRotation(t *testing.T) {
	// A drained standby has no state to move, but failover must skip it.
	env := sim.NewEnv()
	defer env.Close()
	r, err := NewResilient(env, gpu.A100(), ResilientConfig{
		Config:   Config{Path: mustPathForSlack(t, 10*sim.Microsecond), Seed: 6},
		Standbys: 2, DisableLocalFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Spawn("host", func(p *sim.Proc) {
		if err := r.Drain(p, 1); err != nil {
			t.Errorf("drain standby: %v", err)
			return
		}
		if got := r.ActiveServer(); got != 0 {
			t.Errorf("draining a standby moved the executor to %d", got)
		}
		if got := r.nextLive(0); got != 2 {
			t.Errorf("nextLive(0) = %d, want 2 (standby 1 is drained)", got)
		}
	})
	env.Run()
	if st := r.Stats(); st.Migrations != 0 {
		t.Errorf("standby drain migrated state: %+v", st)
	}
}
