package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// event is a scheduled wake-up for a parked process (or a start for a
// freshly spawned one).
type event struct {
	at   Time
	seq  uint64 // FIFO tie-break for simultaneous events
	proc *Proc
	// cancelled events stay in the heap but are skipped when popped; this is
	// how racing wake-ups (timeout vs signal) resolve without heap surgery.
	cancelled bool
	// kind distinguishes why the process wakes, so racing wake-ups can
	// report which one won.
	kind wakeKind
}

type wakeKind uint8

const (
	wakeTimer wakeKind = iota
	wakeSignal
	wakeStart
)

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//cdivet:allow floateq exact tie-break: events at bit-identical times fall through to the seq FIFO order; an epsilon would merge distinct instants
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Env is a simulation environment: a virtual clock plus the event queue and
// process bookkeeping that drive it. The zero value is not usable; create
// environments with NewEnv.
//
// Env is not safe for concurrent use from multiple goroutines the caller
// owns; the engine's determinism comes precisely from running exactly one
// process at a time.
type Env struct {
	now    Time
	queue  eventHeap
	seq    uint64
	park   chan *Proc // the running process announces it has yielded
	nprocs int        // live (started, not finished) processes
	closed bool

	// parked tracks every process currently blocked on a Signal (not a
	// timer), so deadlocks can be reported and Close can unwind goroutines.
	parked map[*Proc]struct{}

	// free recycles consumed events. The hot loop of every simulation is
	// schedule→Pop→deliver; without a freelist each cycle allocates one
	// event, which dominates the engine's allocation profile
	// (BenchmarkSimEngineEvents). An event is recycled only once it has
	// left both the heap and its process's waits list.
	free []*event
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	//cdivet:allow escape one environment per simulation run, built at setup
	return &Env{park: make(chan *Proc), parked: make(map[*Proc]struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// schedule enqueues a wake-up event for p and registers it with the
// process, so that delivering any one of a process's outstanding wake-ups
// cancels the others.
func (e *Env) schedule(at Time, p *Proc, kind wakeKind) *event {
	if at < e.now {
		at = e.now
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = event{at: at, seq: e.seq, proc: p, kind: kind}
	} else {
		//cdivet:allow escape freelist miss: steady state recycles events, growth is bounded by concurrent wake-ups
		ev = &event{at: at, seq: e.seq, proc: p, kind: kind}
	}
	heap.Push(&e.queue, ev)
	p.waits = append(p.waits, ev)
	return ev
}

// recycle returns a consumed event to the freelist. The caller must hold
// the only remaining reference: the event is off the heap and no process
// waits list contains it.
func (e *Env) recycle(ev *event) {
	ev.proc = nil
	e.free = append(e.free, ev)
}

// deliver hands control to the process woken by ev and waits until it
// yields again. All other outstanding wake-ups for that process are
// cancelled first: a process wakes exactly once per park.
func (e *Env) deliver(ev *event) {
	p := ev.proc
	for _, o := range p.waits {
		if o != ev {
			o.cancelled = true
		}
	}
	p.waits = p.waits[:0]
	delete(e.parked, p)
	p.resume <- ev.kind
	<-e.park
}

// Spawn creates a process running fn and schedules it to start at the
// current virtual time. fn receives the process handle, through which all
// blocking primitives are reached. Spawn may be called before Run or from
// inside a running process.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(0, name, fn)
}

// SpawnAt is Spawn with a start delay.
func (e *Env) SpawnAt(delay Duration, name string, fn func(p *Proc)) *Proc {
	if e.closed {
		panic("sim: Spawn on closed Env")
	}
	if delay < 0 {
		panic("sim: negative spawn delay")
	}
	//cdivet:allow escape one handle and resume channel per spawned process, at spawn time not per iteration
	p := &Proc{env: e, name: name, resume: make(chan wakeKind)}
	p.waits = p.waitsBuf[:0]
	e.nprocs++
	go func() {
		defer func() {
			r := recover()
			if r != nil && r != errAborted {
				// Re-panic application errors on the scheduler's stack
				// would be nicer, but surfacing them here keeps the trace.
				panic(r)
			}
			p.finished = true
			e.nprocs--
			e.park <- p
		}()
		<-p.resume
		if p.aborted {
			return
		}
		fn(p)
	}()
	e.schedule(e.now.Add(delay), p, wakeStart)
	return p
}

// Run drives the simulation until no runnable events remain, then returns
// the final virtual time. Processes still blocked on Signals at that point
// constitute a deadlock; query them with Blocked.
func (e *Env) Run() Time {
	return e.RunUntil(Time(math.Inf(1)))
}

// RunUntil drives the simulation until the event queue is exhausted or the
// next event lies beyond horizon. The clock never advances past horizon.
func (e *Env) RunUntil(horizon Time) Time {
	if e.closed {
		panic("sim: RunUntil on closed Env")
	}
	for len(e.queue) > 0 {
		// Peek before popping: an event beyond the horizon stays in place
		// for a later RunUntil call instead of paying a pop + re-push
		// (two O(log n) sift passes) just to look at its timestamp.
		ev := e.queue[0]
		if ev.cancelled {
			heap.Pop(&e.queue)
			e.recycle(ev)
			continue
		}
		if ev.at > horizon {
			if e.now < horizon {
				e.now = horizon
			}
			return e.now
		}
		heap.Pop(&e.queue)
		e.now = ev.at
		e.deliver(ev)
		e.recycle(ev)
	}
	return e.now
}

// Step runs a single event and reports whether one was available.
func (e *Env) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.deliver(ev)
		e.recycle(ev)
		return true
	}
	return false
}

// Blocked returns the names of processes parked on Signals with no pending
// wake-up — the processes that would deadlock if Run returned now. The
// result is sorted for stable test output.
func (e *Env) Blocked() []string {
	names := make([]string, 0, len(e.parked))
	//cdivet:allow maporder keys are collected unordered and sorted on the next line
	for p := range e.parked {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return names
}

// Live returns the number of processes that have started but not finished.
func (e *Env) Live() int { return e.nprocs }

// Close unwinds every parked process goroutine and marks the environment
// unusable. It must not be called from inside a process. Close is safe to
// call after Run; environments that ran to completion with no blocked
// processes have nothing to unwind.
func (e *Env) Close() {
	if e.closed {
		return
	}
	e.closed = true
	// Unwind processes parked on signals.
	//cdivet:allow maporder teardown after results are final: aborted processes run no model code, so unwind order is unobservable
	for p := range e.parked {
		for _, o := range p.waits {
			o.cancelled = true
		}
		p.waits = nil
		p.aborted = true
		p.resume <- wakeSignal
		<-e.park
	}
	//cdivet:allow escape teardown: Close runs once per environment
	e.parked = map[*Proc]struct{}{}
	// Unwind processes parked on timers (or not yet started).
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		ev.proc.aborted = true
		e.deliver(ev)
		e.recycle(ev)
	}
}

// String summarizes the environment state for debugging.
func (e *Env) String() string {
	return fmt.Sprintf("sim.Env{now: %v, queued: %d, live: %d, blocked: %d}",
		e.now, len(e.queue), e.nprocs, len(e.parked))
}
