package cdi

// The repo-wide determinism lint gate: running the cdivet suite is part of
// tier-1 testing, so `go test ./...` fails the moment any package breaks a
// determinism invariant (wall-clock reads, global rand, bare goroutines,
// order-dependent map iteration, exact float comparison, dropped errors).
// The same suite is available interactively as `go run ./cmd/cdivet ./...`.

import (
	"testing"

	"repro/internal/analysis"
)

func TestDeterminismInvariants(t *testing.T) {
	findings, err := analysis.Run(analysis.Config{Dir: ".", Patterns: []string{"./..."}})
	if err != nil {
		t.Fatalf("cdivet suite failed to run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("fix the violation or, if the pattern is intentionally safe, add `//cdivet:allow <rule> <reason>` on or above the line")
	}
}
