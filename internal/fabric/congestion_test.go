package fabric

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestSharedLinkUncontendedMatchesNominal(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	link, err := NewSharedLink(env, 10*sim.Microsecond, 1e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	var got sim.Duration
	env.Spawn("host", func(p *sim.Proc) {
		got = link.Transfer(p, 1_000_000) // 10µs + 1ms
	})
	env.Run()
	want := 10*sim.Microsecond + 1*sim.Millisecond
	if math.Abs(float64(got-want)) > 1e-12 {
		t.Errorf("transfer = %v, want %v", got, want)
	}
	if link.MeanQueueing() != 0 {
		t.Errorf("queueing = %v on idle link", link.MeanQueueing())
	}
	if link.Transfers() != 1 {
		t.Errorf("transfers = %d", link.Transfers())
	}
}

func TestSharedLinkSerializesContenders(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	link, err := NewSharedLink(env, 0, 1e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		env.Spawn("host", func(p *sim.Proc) {
			link.Transfer(p, 1_000_000) // 1ms each
		})
	}
	end := env.Run()
	if math.Abs(float64(end)-3e-3) > 1e-12 {
		t.Errorf("3 transfers finished at %v, want 3ms (serialized)", end)
	}
	if link.MeanQueueing() <= 0 {
		t.Error("no queueing recorded under contention")
	}
	if u := link.Utilization(); math.Abs(u-1.0) > 1e-9 {
		t.Errorf("utilization = %v, want 1.0", u)
	}
}

func TestSharedLinkLanesAllowOverlap(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	link, err := NewSharedLink(env, 0, 1e9, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		env.Spawn("host", func(p *sim.Proc) {
			link.Transfer(p, 1_000_000)
		})
	}
	if end := env.Run(); math.Abs(float64(end)-1e-3) > 1e-12 {
		t.Errorf("2 transfers on 2 lanes finished at %v, want 1ms", end)
	}
}

func TestSharedLinkValidation(t *testing.T) {
	if _, err := NewSharedLink(sim.NewEnv(), 0, 0, 1); err == nil {
		t.Fatal("invalid link accepted")
	}
	if _, err := NewSharedLink(sim.NewEnv(), -sim.Microsecond, 1e9, 1); err == nil {
		t.Fatal("negative latency accepted")
	}
	if _, err := NewSharedLink(sim.NewEnv(), 0, 1e9, 0); err == nil {
		t.Fatal("zero lanes accepted")
	}
}

func TestCongestionSweepInflatesWithLoad(t *testing.T) {
	pts, err := CongestionSweep(
		[]int{1, 4, 16},
		1<<20,             // 1 MiB messages
		1*sim.Millisecond, // think time
		1*sim.Microsecond, // latency
		23e9,              // HDR-class bandwidth
		30,                // transfers per host
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// One host: the paper's assumption holds exactly.
	if pts[0].SlackInflation > 1.0001 {
		t.Errorf("single-host inflation = %v, want ≈ 1", pts[0].SlackInflation)
	}
	// Inflation and utilization must grow with host count.
	for i := 1; i < len(pts); i++ {
		if pts[i].SlackInflation < pts[i-1].SlackInflation {
			t.Errorf("inflation not monotone: %+v", pts)
		}
		if pts[i].Utilization < pts[i-1].Utilization {
			t.Errorf("utilization not monotone: %+v", pts)
		}
	}
	// 16 hosts × (1MiB / 23GB/s ≈ 46µs) per ~1ms cycle ≈ 70% utilization:
	// queueing must be visible by then.
	if pts[2].SlackInflation < 1.05 {
		t.Errorf("16-host inflation = %v, want noticeable queueing", pts[2].SlackInflation)
	}
}

func TestCongestionSweepValidation(t *testing.T) {
	if _, err := CongestionSweep([]int{1}, 0, 0, 0, 1e9, 1); err == nil {
		t.Error("zero message size accepted")
	}
	if _, err := CongestionSweep([]int{0}, 1, 0, 0, 1e9, 1); err == nil {
		t.Error("zero hosts accepted")
	}
}
