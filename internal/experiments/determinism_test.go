package experiments

// End-to-end determinism regression: the property every cdivet analyzer
// exists to protect. Rendering the same experiments twice from fresh
// simulation state must produce byte-identical text — the in-process
// equivalent of running `reproduce -exp table4` and `-exp compose` twice
// with the same seed. Any wall-clock read, global-rand draw, or map-order
// dependence anywhere under CollectTraces/Table4/Compose breaks this.

import "testing"

func renderTable4Once(t *testing.T) string {
	t.Helper()
	o := Quick()
	traces, err := CollectTraces(o)
	if err != nil {
		t.Fatal(err)
	}
	blocks, _, err := Table4(o, traces)
	if err != nil {
		t.Fatal(err)
	}
	return RenderTable4(blocks)
}

func TestTable4ByteIdentical(t *testing.T) {
	first := renderTable4Once(t)
	second := renderTable4Once(t)
	if first != second {
		t.Fatalf("two identically seeded table4 runs diverged\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	if first == "" {
		t.Fatal("table4 rendered empty")
	}
}

func TestComposeByteIdentical(t *testing.T) {
	render := func() string {
		c, err := Compose()
		if err != nil {
			t.Fatal(err)
		}
		return RenderCompose(c)
	}
	first := render()
	second := render()
	if first != second {
		t.Fatalf("two compose runs diverged\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	if first == "" {
		t.Fatal("compose rendered empty")
	}
}
