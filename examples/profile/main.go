// Profile: the full methodology end-to-end for both production workloads —
// proxy sweep, NSys-style traces, kernel/memcpy distributions (Figures
// 4-5), Table III binning, and the Table IV penalty predictions.
//
//	go run ./examples/profile [-iters 20]
package main

import (
	"flag"
	"fmt"
	"log"

	cdi "repro"
	"repro/internal/stats"
)

func main() {
	iters := flag.Int("iters", 20, "proxy loop iterations for the calibration sweep")
	flag.Parse()

	study, err := cdi.NewStudy(cdi.StudyConfig{
		Sizes:   []int{1 << 9, 1 << 11, 1 << 13},
		Threads: []int{1, 4, 8},
		Iters:   *iters,
	})
	if err != nil {
		log.Fatal(err)
	}

	workloads := []cdi.Workload{
		cdi.LAMMPSWorkload{Config: cdi.LAMMPSConfig{BoxSize: 120, Procs: 8, Steps: 40}},
		cdi.CosmoFlowWorkload{Config: cdi.CosmoFlowConfig{
			Epochs: 1, TrainSamples: 32, ValSamples: 16, InputSide: 128,
		}},
	}

	for _, w := range workloads {
		app, tr, err := study.Profile(w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("==== %s ====\n", w.Name())
		fmt.Printf("runtime %v: kernel %.1f%%, memcpy %.1f%%, %d streams\n",
			tr.Runtime(), app.KernelFraction*100, app.MemcpyFraction*100, tr.Streams())

		fmt.Println("\n-- Figure 4: kernel durations (top 5 by total time) --")
		for _, g := range tr.TopKernels(5) {
			s := stats.Summarize(g.Durations)
			fmt.Printf("%-22s n=%-6d med=%-10s total=%v\n",
				g.Name, g.Count, cdi.Duration(s.Median).String(), g.Total)
		}
		all := stats.NewViolin(tr.KernelDurations(), 16, true)
		fmt.Println("all kernels (log-scale density, seconds):")
		fmt.Print(all.Render(40))

		fmt.Println("-- Figure 5: memcpy sizes --")
		v := stats.NewViolin(tr.MemcpySizes(), 12, true)
		fmt.Printf("n=%d mean=%.2f MiB\n", v.Summary.N, v.Summary.Mean/(1<<20))
		fmt.Print(v.Render(40))

		fmt.Println("-- Table III: transfer-size binning (matrix-size equivalents) --")
		b := study.Surface.BinTransferSizes(app.TransferBytes)
		for _, size := range study.Surface.Sizes() {
			fmt.Printf("  ≤ %5d MiB: %6d (rounded down) / %6d (rounded up)\n",
				int(float64(size)*float64(size)*4/(1<<20)), b.RoundedDown[size], b.RoundedUp[size])
		}

		fmt.Println("\n-- Table IV: predicted slack penalty --")
		preds, err := study.Predict(app)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-12s %-12s\n", "slack", "lower", "upper")
		for _, p := range preds {
			fmt.Printf("%-10v %-12.5f %-12.5f\n", p.Slack, p.Lower, p.Upper)
		}

		verdict, err := study.Assess(app)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nheadline: %.3f%% pessimistic penalty at %v (%.0f km) → viable=%v\n\n",
			verdict.Prediction.Upper*100, verdict.Slack, verdict.ReachKm, verdict.Viable)
	}
}
