package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/serve"
	"repro/internal/sim"
)

// servingOpts shrinks the window so the grid stays cheap in tests.
func servingOpts() Options {
	o := Quick()
	o.ServeWindow = 200 * sim.Millisecond
	return o
}

func TestServingByteIdenticalAcrossWorkers(t *testing.T) {
	run := func(jobs int) string {
		o := servingOpts()
		o.Jobs = jobs
		rows, err := Serving(o)
		if err != nil {
			t.Fatal(err)
		}
		return RenderServing(rows)
	}
	serial := run(1)
	parallel := run(8)
	if serial != parallel {
		t.Fatalf("serving sweep differs between -j 1 and -j 8:\n--- j1 ---\n%s--- j8 ---\n%s", serial, parallel)
	}
}

// TestServingZeroSlackArmIsNodeLocalBaseline runs the zero-slack cell and
// an explicitly injector-free node-local baseline on the same schedule
// and demands identical reports: the regression gate that the sweep's
// baseline arm measures exactly what a non-disaggregated deployment
// would.
func TestServingZeroSlackArmIsNodeLocalBaseline(t *testing.T) {
	const window = 200 * sim.Millisecond
	for _, pol := range servingPolicies {
		got, err := servingCell(pol, 0, 1, window, servingSeed(1))
		if err != nil {
			t.Fatal(err)
		}

		tenants := servingTenants(1)
		reqs, err := serve.Generate(tenants, window, servingSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		env := sim.NewEnv()
		dev, err := gpu.NewDevice(env, gpu.A100())
		if err != nil {
			env.Close()
			t.Fatal(err)
		}
		ctx := cuda.NewContext(dev, cuda.Config{}) // no interposer at all
		eng, err := serve.Start(env, serve.NewLocal(ctx), serve.Config{Policy: pol, Tenants: tenants}, reqs)
		if err != nil {
			env.Close()
			t.Fatal(err)
		}
		env.Run()
		if err := eng.Err(); err != nil {
			env.Close()
			t.Fatal(err)
		}
		want := eng.Metrics().Report(window)
		env.Close()

		if got != want {
			t.Errorf("%v: zero-slack arm %+v != node-local baseline %+v", pol, got, want)
		}
	}
}

func TestServingP99MonotoneInSlack(t *testing.T) {
	rows, err := Serving(servingOpts())
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		pol  serve.Policy
		load float64
	}
	last := map[key]sim.Duration{}
	seen := map[key]sim.Duration{}
	// Rows iterate slack in ascending grid order within each (policy,
	// load) group.
	for _, r := range rows {
		k := key{r.Policy, r.Load}
		if prev, ok := last[k]; ok {
			if r.Report.P99 < prev {
				t.Errorf("%v load %g: p99 %v at slack %v below %v at smaller slack",
					r.Policy, r.Load, r.Report.P99, r.Slack, prev)
			}
		}
		last[k] = r.Report.P99
		seen[k] = r.Report.P99
	}
	if len(seen) != len(servingPolicies)*len(servingLoads) {
		t.Fatalf("saw %d (policy, load) groups, want %d", len(seen), len(servingPolicies)*len(servingLoads))
	}
}

func TestServingTraceValidAndStable(t *testing.T) {
	write := func() []byte {
		var buf bytes.Buffer
		if err := WriteServingTrace(servingOpts(), &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := write()
	if !json.Valid(first) {
		t.Fatal("serving trace is not valid JSON")
	}
	var events []map[string]any
	if err := json.Unmarshal(first, &events); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("serving trace is empty")
	}
	// The trace must carry all three layers: host API calls (pid 0),
	// device activity (pid 1) and application spans (pid 2) including
	// request, batch and slack categories.
	pids := map[float64]bool{}
	cats := map[string]bool{}
	for _, ev := range events {
		pids[ev["pid"].(float64)] = true
		cats[ev["cat"].(string)] = true
	}
	for _, pid := range []float64{0, 1, 2} {
		if !pids[pid] {
			t.Errorf("trace has no events on pid %g", pid)
		}
	}
	for _, cat := range []string{"request", "batch", "slack", "kernel"} {
		if !cats[cat] {
			t.Errorf("trace has no %q events", cat)
		}
	}
	second := write()
	if !bytes.Equal(first, second) {
		t.Fatal("serving trace bytes differ across identical runs")
	}
}
