package remoting

import (
	"errors"
	"testing"

	"repro/internal/cuda"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/sim"
)

// runResilientLoop allocates three matrices and runs n proxy iterations
// through r, returning the per-iteration durations and the first error.
func runResilientLoop(env *sim.Env, r *Resilient, n, matrixSize int) ([]sim.Duration, error) {
	matBytes := gpu.MatrixBytes(matrixSize)
	kernel := gpu.MatMul(matrixSize)
	var durs []sim.Duration
	var runErr error
	env.Spawn("host", func(p *sim.Proc) {
		var bufs [3]gpu.Ptr
		for i := range bufs {
			h, err := r.Malloc(p, matBytes)
			if err != nil {
				runErr = err
				return
			}
			bufs[i] = h
		}
		for i := 0; i < n; i++ {
			d, err := r.RunProxyIteration(p, bufs[0], bufs[1], bufs[2], matBytes, kernel)
			if err != nil {
				runErr = err
				return
			}
			durs = append(durs, d)
		}
	})
	env.Run()
	return durs, runErr
}

func TestResilientZeroFaultsMatchesRemote(t *testing.T) {
	// With no faults configured, the resilient transport must replay a
	// plain Remote run bit for bit: same path, same seed, same noise
	// stream, identical per-iteration durations.
	cfg := Config{Path: mustPathForSlack(t, 50*sim.Microsecond), NoiseFraction: 0.3, Seed: 7}

	env := sim.NewEnv()
	defer env.Close()
	dev, err := gpu.NewDevice(env, gpu.A100())
	if err != nil {
		t.Fatal(err)
	}
	rem := New(dev, cfg)
	matBytes := gpu.MatrixBytes(64)
	kernel := gpu.MatMul(64)
	var want []sim.Duration
	env.Spawn("host", func(p *sim.Proc) {
		a, _ := rem.Malloc(p, matBytes)
		bm, _ := rem.Malloc(p, matBytes)
		c, _ := rem.Malloc(p, matBytes)
		for i := 0; i < 20; i++ {
			d, err := rem.RunProxyIteration(p, a, bm, c, matBytes, kernel)
			if err != nil {
				t.Error(err)
				return
			}
			want = append(want, d)
		}
	})
	env.Run()

	renv := sim.NewEnv()
	defer renv.Close()
	res, err := NewResilient(renv, gpu.A100(), ResilientConfig{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	got, err := runResilientLoop(renv, res, 20, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("iteration count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iteration %d: resilient %v != remote %v", i, got[i], want[i])
		}
	}
	st := res.Stats()
	if st.Retries != 0 || st.Timeouts != 0 || st.Failovers != 0 || st.Degraded {
		t.Errorf("zero-fault run recorded resilience activity: %+v", st)
	}
}

func TestResilientDeterministicReplay(t *testing.T) {
	run := func() ([]sim.Duration, Stats) {
		env := sim.NewEnv()
		defer env.Close()
		r, err := NewResilient(env, gpu.A100(), ResilientConfig{
			Config:   Config{Path: mustPathForSlack(t, 100*sim.Microsecond), NoiseFraction: 0.2, Seed: 3},
			Faults:   faults.AtIntensity(2, 3),
			Standbys: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		durs, err := runResilientLoop(env, r, 30, 64)
		if err != nil {
			t.Fatal(err)
		}
		return durs, r.Stats()
	}
	d1, s1 := run()
	d2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ across replays: %+v vs %+v", s1, s2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("iteration %d differs across replays: %v vs %v", i, d1[i], d2[i])
		}
	}
}

func TestResilientFailoverOnCrash(t *testing.T) {
	// Crash the primary early in the run (seed 5 places the crash at
	// ~0.165×CrashAfter ≈ 825µs, after the mallocs but well before the
	// loop ends); the transport must fail over to the standby, replay
	// device state as DMA uploads, and finish.
	env := sim.NewEnv()
	defer env.Close()
	r, err := NewResilient(env, gpu.A100(), ResilientConfig{
		Config:   Config{Path: mustPathForSlack(t, 50*sim.Microsecond), Seed: 5},
		Faults:   faults.Config{Seed: 5, CrashAfter: 5 * sim.Millisecond},
		Standbys: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runResilientLoop(env, r, 10, 64); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Failovers < 1 {
		t.Fatalf("no failover despite early crash: %+v", st)
	}
	if st.ReuploadBytes < 3*gpu.MatrixBytes(64) {
		t.Errorf("state re-upload bytes = %d, want ≥ %d", st.ReuploadBytes, 3*gpu.MatrixBytes(64))
	}
	if st.Timeouts < 1 {
		t.Errorf("crash produced no timeouts: %+v", st)
	}
}

func TestResilientDegradesToLocal(t *testing.T) {
	// With no standby and a crashed primary, the transport must degrade
	// gracefully to node-local execution and keep serving calls.
	env := sim.NewEnv()
	defer env.Close()
	r, err := NewResilient(env, gpu.A100(), ResilientConfig{
		Config: Config{Path: mustPathForSlack(t, 50*sim.Microsecond), Seed: 9},
		Faults: faults.Config{Seed: 9, CrashAfter: 50 * sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	durs, err := runResilientLoop(env, r, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Degraded() {
		t.Fatalf("transport not degraded after losing only server: %+v", r.Stats())
	}
	// Degraded iterations run node-local: no network crossing, so they
	// must be far cheaper than the remoted round trips.
	last := durs[len(durs)-1]
	if last >= 100*sim.Microsecond {
		t.Errorf("degraded iteration took %v, want < one round trip", last)
	}
}

func TestResilientExhaustedFailsFast(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	r, err := NewResilient(env, gpu.A100(), ResilientConfig{
		Config:               Config{Path: mustPathForSlack(t, 50*sim.Microsecond), Seed: 1},
		Faults:               faults.Config{Seed: 1, CrashAfter: 50 * sim.Microsecond},
		DisableLocalFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var first, second error
	var firstAt, secondAt sim.Time
	env.Spawn("host", func(p *sim.Proc) {
		_, first = r.Malloc(p, 1024)
		firstAt = p.Now()
		_, second = r.Malloc(p, 1024)
		secondAt = p.Now()
	})
	env.Run()
	if !errors.Is(first, cuda.ErrDeviceLost) {
		t.Fatalf("first call error = %v, want ErrDeviceLost", first)
	}
	if !errors.Is(second, cuda.ErrDeviceLost) {
		t.Fatalf("second call error = %v, want ErrDeviceLost", second)
	}
	if secondAt != firstAt {
		t.Errorf("exhausted transport did not fail fast: %v vs %v", secondAt, firstAt)
	}
}

func TestResilientMallocFreeIdempotentUnderLoss(t *testing.T) {
	// Heavy packet loss forces retries of malloc and free. Request-id
	// dedup must keep them idempotent: every handle frees cleanly and the
	// allocator balances.
	env := sim.NewEnv()
	defer env.Close()
	r, err := NewResilient(env, gpu.A100(), ResilientConfig{
		Config:   Config{Path: mustPathForSlack(t, 20*sim.Microsecond), Seed: 11},
		Faults:   faults.Config{Seed: 11, DropProbability: 0.4},
		Standbys: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var runErr error
	env.Spawn("host", func(p *sim.Proc) {
		for round := 0; round < 8; round++ {
			var hs []gpu.Ptr
			for i := 0; i < 4; i++ {
				h, err := r.Malloc(p, 1<<20)
				if err != nil {
					runErr = err
					return
				}
				hs = append(hs, h)
			}
			for _, h := range hs {
				if err := r.Free(p, h); err != nil {
					runErr = err
					return
				}
			}
		}
	})
	env.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	st := r.Stats()
	if st.Retries == 0 {
		t.Errorf("drop probability 0.4 produced no retries: %+v", st)
	}
}

func TestComparePerArmStreamsIndependent(t *testing.T) {
	// The injected arm draws jitter from its own substream: doubling the
	// remote arm's draw count (more iterations) must not change the
	// injected arm's per-iteration distribution for the shared prefix.
	cfg := Config{Path: mustPathForSlack(t, 50*sim.Microsecond), NoiseFraction: 0.3, Seed: 42}
	a, err := Compare(32, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compare(32, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("Compare not deterministic: %+v vs %+v", a, b)
	}
	if a.InjectedMean <= 0 || a.InjectedStddev < 0 {
		t.Errorf("injected arm not measured: %+v", a)
	}
	// The injected arm tracks the nominal slack tightly (that is the whole
	// point of controlled injection): its mean must sit within jitter
	// range of remoted mean's ballpark but with its own independent value.
	if a.InjectedMean == a.RemotedMean {
		t.Errorf("arms suspiciously identical: %+v", a)
	}
}
