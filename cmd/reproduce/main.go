// Command reproduce regenerates the paper's tables and figures from the
// simulated stack and prints them with the paper's reference values.
//
//	reproduce -exp all            # everything, quick parameters
//	reproduce -exp table4         # one experiment
//	reproduce -exp figure2 -paper # paper-faithful parameters (slow)
//
// Paper experiments: table1 figure2 threads cfcpu table2 figure3 figure4
// figure5 table3 table4 validate compose.
// Extensions: appvalidate congestion remoting weak reach throughput coupling preload scales.
// "all" runs everything.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (or comma list)")
	paper := flag.Bool("paper", false, "paper-faithful parameters (slow: full 5000-step runs, 30s proxy loops)")
	flag.Parse()

	opts := experiments.Quick()
	if *paper {
		opts = experiments.Paper()
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ran := 0

	section := func(id string) bool {
		if all || want[id] {
			fmt.Printf("\n======== %s ========\n", id)
			ran++
			return true
		}
		return false
	}

	if section("table1") {
		rows, err := experiments.Table1(opts)
		check(err)
		fmt.Print(experiments.RenderTable1(rows))
	}
	if section("figure2") {
		series, err := experiments.Figure2(opts)
		check(err)
		fmt.Print(experiments.RenderFigure2(series))
	}
	if section("threads") {
		rows, err := experiments.ThreadScaling(opts)
		check(err)
		fmt.Print(experiments.RenderThreadScaling(rows))
	}
	if section("cfcpu") {
		rows, err := experiments.CosmoFlowCPU(opts)
		check(err)
		fmt.Print(experiments.RenderCosmoFlowCPU(rows))
	}
	if section("table2") {
		rows, err := experiments.Table2(opts)
		check(err)
		fmt.Print(experiments.RenderTable2(rows))
	}
	if section("figure3") {
		pts, err := experiments.Figure3(opts, nil)
		check(err)
		fmt.Print(experiments.RenderFigure3(pts))
	}
	if all || want["figure4"] || want["figure5"] || want["table3"] || want["table4"] {
		traces, err := experiments.CollectTraces(opts)
		check(err)
		if section("figure4") {
			fmt.Print(experiments.RenderFigure4(traces))
		}
		if section("figure5") {
			fmt.Print(experiments.RenderFigure5(traces))
		}
		if all || want["table3"] || want["table4"] {
			blocks, surface, err := experiments.Table4(opts, traces)
			check(err)
			if section("table3") {
				rows := experiments.Table3(traces, surface)
				fmt.Print(experiments.RenderTable3(rows, surface))
			}
			if section("table4") {
				fmt.Print(experiments.RenderTable4(blocks))
			}
		}
	}
	if section("validate") {
		v, err := experiments.Validate(opts)
		check(err)
		fmt.Print(experiments.RenderValidation(v))
	}
	if section("compose") {
		c, err := experiments.Compose()
		check(err)
		fmt.Print(experiments.RenderCompose(c))
	}
	if section("appvalidate") {
		rows, err := experiments.AppSlackValidation(opts, nil)
		check(err)
		fmt.Print(experiments.RenderAppValidation(rows))
	}
	if section("scales") {
		rows, err := experiments.DeploymentScales(opts)
		check(err)
		fmt.Print(experiments.RenderDeploymentScales(rows))
	}
	if section("preload") {
		rows, err := experiments.PreloadComparison(opts)
		check(err)
		fmt.Print(experiments.RenderPreload(rows))
	}
	if section("congestion") {
		pts, err := experiments.Congestion()
		check(err)
		fmt.Print(experiments.RenderCongestion(pts))
	}
	if section("remoting") {
		results, err := experiments.RemotingComparison(opts)
		check(err)
		fmt.Print(experiments.RenderRemoting(results))
	}
	if section("weak") {
		rows, err := experiments.WeakScaling(opts)
		check(err)
		fmt.Print(experiments.RenderWeakScaling(rows))
	}
	if section("coupling") {
		rows, err := experiments.ChassisCoupling(opts)
		check(err)
		fmt.Print(experiments.RenderChassisCoupling(rows))
	}
	if section("throughput") {
		rows, err := experiments.Throughput()
		check(err)
		fmt.Print(experiments.RenderThroughput(rows))
	}
	if section("reach") {
		traces, err := experiments.CollectTraces(opts)
		check(err)
		rows, err := experiments.Reach(opts, traces)
		check(err)
		fmt.Print(experiments.RenderReach(rows))
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
