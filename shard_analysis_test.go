package cdi

// Self-checks and seeded-bug regressions for the shard-era analyzers. The
// self-checks hold every shard-threaded package to zero unbaselined
// shardsafety/waitgraph findings — ownership violations in the measured
// core cannot hide behind a frozen baseline entry, only behind an inline
// justified directive. The seeded tests prove the analyzers actually catch
// the failure classes they exist for, by planting each bug in a scratch
// copy of the module and demanding a finding.

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// shardPackages is every package the sharded engine threads domain keys
// through, plus the engine itself.
var shardPackages = []string{
	"./internal/sim",
	"./internal/gpu",
	"./internal/mpi",
	"./internal/proxy",
	"./internal/fabric",
	"./internal/remoting",
	"./internal/serve",
	"./internal/health",
	"./internal/pool",
}

func runShardSelfCheck(t *testing.T, rule string) {
	t.Helper()
	as, err := analysis.ByName(rule)
	if err != nil {
		t.Fatalf("resolve analyzer: %v", err)
	}
	findings, err := analysis.Run(analysis.Config{
		Patterns:  shardPackages,
		Analyzers: as,
	})
	if err != nil {
		t.Fatalf("%s self-check failed to run: %v", rule, err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("the shard-threaded packages are kept clean without a baseline: fix the violation or justify it with an inline `//cdivet:allow %s <reason>`", rule)
	}
}

func TestShardSafetySelfCheck(t *testing.T) { runShardSelfCheck(t, "shardsafety") }

func TestWaitGraphSelfCheck(t *testing.T) { runShardSelfCheck(t, "waitgraph") }

// TestPoolSelfCheck holds the pool scheduler alone to zero unbaselined
// findings across the three analyzers its design leans on: shardsafety
// (the single-writer mailbox discipline), waitgraph (the wake signal is
// always fireable), and hotpath (the placement path stays allocation-
// lean). The repo-wide self-checks above cover the first two; this one
// exists so a pool-only regression fails with the package's name on it.
func TestPoolSelfCheck(t *testing.T) {
	for _, rule := range []string{"shardsafety", "waitgraph", "hotpath"} {
		as, err := analysis.ByName(rule)
		if err != nil {
			t.Fatalf("resolve analyzer: %v", err)
		}
		findings, err := analysis.Run(analysis.Config{
			Patterns:  []string{"./internal/pool"},
			Analyzers: as,
		})
		if err != nil {
			t.Fatalf("%s over internal/pool failed to run: %v", rule, err)
		}
		for _, f := range findings {
			t.Errorf("%s: %s", rule, f)
		}
	}
}

// copyModuleForPlant clones the module's base sources (no tests, no
// testdata) into a scratch dir the seeded-bug tests can mutate freely.
func copyModuleForPlant(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != "." && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if name != "go.mod" && (!strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go")) {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		dst := filepath.Join(root, path)
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		return os.WriteFile(dst, src, 0o644)
	})
	if err != nil {
		t.Fatalf("copy module: %v", err)
	}
	return root
}

// plant rewrites one occurrence of old to new in file, failing if the
// pattern is gone (the plant site moved — update the test).
func plant(t *testing.T, file, old, new string) {
	t.Helper()
	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatalf("read plant site: %v", err)
	}
	if !strings.Contains(string(src), old) {
		t.Fatalf("plant pattern %q not found in %s", old, file)
	}
	out := strings.Replace(string(src), old, new, 1)
	if err := os.WriteFile(file, []byte(out), 0o644); err != nil {
		t.Fatalf("write plant: %v", err)
	}
}

// runPlanted loads the scratch module and runs one analyzer over it.
func runPlanted(t *testing.T, root, rule string) []analysis.Finding {
	t.Helper()
	as, err := analysis.ByName(rule)
	if err != nil {
		t.Fatalf("resolve analyzer: %v", err)
	}
	m, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatalf("load planted module: %v", err)
	}
	findings, err := analysis.RunModule(m, analysis.Config{Analyzers: as})
	if err != nil {
		t.Fatalf("run planted module: %v", err)
	}
	return findings
}

// TestShardSafetySeededBug moves the serving engine's arrivals proc off the
// engine shard onto the default domain — the cross-shard mutation PR 7's
// threading deliberately avoids — and demands shardsafety catch the
// admission-queue write.
func TestShardSafetySeededBug(t *testing.T) {
	if testing.Short() {
		t.Skip("module copy + full typecheck; skipped in -short")
	}
	root := copyModuleForPlant(t)
	plant(t, filepath.Join(root, "internal", "serve", "engine.go"),
		`shard.Spawn("serve-arrivals"`, `env.Spawn("serve-arrivals"`)
	findings := runPlanted(t, root, "shardsafety")
	for _, f := range findings {
		if strings.Contains(f.Message, "serve.(Engine).queue") && strings.Contains(f.Message, "default") {
			return
		}
	}
	t.Fatalf("planted cross-shard queue write not caught; findings: %v", findings)
}

// TestWaitGraphSeededBug deletes the fire half of the engine's admission
// handshake: the batcher then waits on a Signal nothing ever fires, the
// deterministic-deadlock class waitgraph exists to catch.
func TestWaitGraphSeededBug(t *testing.T) {
	if testing.Short() {
		t.Skip("module copy + full typecheck; skipped in -short")
	}
	root := copyModuleForPlant(t)
	plant(t, filepath.Join(root, "internal", "serve", "engine.go"),
		"e.more.Fire()", "p.Yield()")
	findings := runPlanted(t, root, "waitgraph")
	for _, f := range findings {
		if strings.Contains(f.Message, "never fired") && strings.Contains(f.Message, "more") {
			return
		}
	}
	t.Fatalf("planted never-fired Signal not caught; findings: %v", findings)
}
