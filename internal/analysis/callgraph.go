package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// funcNode is one module function (or method) with a body, as seen by the
// module-wide dataflow layer. Test files are excluded: the dataflow rules
// gate model code, and tests assert on their own output by design.
type funcNode struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	file *ast.File

	// callees are the module-internal functions this body calls, in source
	// order (deduplicated), so fixpoint iteration stays deterministic.
	callees []*funcNode

	// Dataflow summaries, computed to fixpoint by the analyzers.
	returnsTaint string // non-empty: why any result is nondeterministic
	retParams    uint64 // bitset: parameter flows to a return value
	sinkParams   []bool // parameter flows to a result-emitting sink inside
	mayWait      bool   // body may block on a simulated wait point
}

// callGraph indexes every module function with a body and its
// module-internal call edges. Nodes are ordered (package path, file,
// declaration position) so iteration is deterministic.
type callGraph struct {
	module *Module
	nodes  []*funcNode
	byObj  map[*types.Func]*funcNode
}

// callGraphFor returns the module's call graph, built once and shared by
// every module-wide analyzer in the run: the graph is pure derived data,
// and rebuilding it per analyzer dominated cdivet's own benchmark.
func callGraphFor(m *Module) *callGraph {
	if m.cg == nil {
		m.cg = buildCallGraph(m)
	}
	return m.cg
}

// buildCallGraph walks the base files of every package. It resolves call
// expressions through each package's type info; calls through function
// values or interfaces have no static callee and simply contribute no edge
// (the dataflow layer is deliberately a may-analysis over static calls).
func buildCallGraph(m *Module) *callGraph {
	g := &callGraph{module: m, byObj: map[*types.Func]*funcNode{}}
	for _, p := range m.Packages {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &funcNode{obj: obj, decl: fd, pkg: p, file: f}
				if params := obj.Type().(*types.Signature).Params(); params != nil {
					n.sinkParams = make([]bool, params.Len())
				}
				g.nodes = append(g.nodes, n)
				g.byObj[obj] = n
			}
		}
	}
	for _, n := range g.nodes {
		seen := map[*funcNode]bool{}
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := g.calleeOf(n.pkg.Info, call); callee != nil && !seen[callee] {
				seen[callee] = true
				n.callees = append(n.callees, callee)
			}
			return true
		})
	}
	return g
}

// calleeOf resolves a call expression to a module funcNode, or nil for
// stdlib calls, dynamic calls, conversions, and builtins.
func (g *callGraph) calleeOf(info *types.Info, call *ast.CallExpr) *funcNode {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return g.byObj[fn]
}

// simWaitPoint reports whether call blocks the calling process on simulated
// virtual time: a method named Sleep/Yield/Wait/WaitTimeout/Acquire whose
// receiver type lives in internal/sim (Proc, Signal, Resource, WaitGroup).
func simWaitPoint(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	if pkg := fn.Pkg(); pkg == nil || !strings.HasSuffix(pkg.Path(), "/internal/sim") {
		return "", false
	}
	switch fn.Name() {
	case "Sleep", "Yield", "Wait", "WaitTimeout", "Acquire":
		recv := sig.Recv().Type().String()
		if i := strings.LastIndexByte(recv, '.'); i >= 0 {
			recv = "sim." + recv[i+1:]
		}
		return recv + "." + fn.Name(), true
	}
	return "", false
}

// computeMayWait propagates "may block on a simulated wait point" up the
// call graph to fixpoint. Direct waits are sim blocking methods and channel
// operations (send, receive, select) in the body.
func (g *callGraph) computeMayWait() {
	for _, n := range g.nodes {
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.CallExpr:
				if _, ok := simWaitPoint(n.pkg.Info, node); ok {
					n.mayWait = true
				}
			case *ast.SendStmt, *ast.SelectStmt:
				n.mayWait = true
			case *ast.UnaryExpr:
				if node.Op.String() == "<-" {
					n.mayWait = true
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.nodes {
			if n.mayWait {
				continue
			}
			for _, c := range n.callees {
				if c.mayWait {
					n.mayWait = true
					changed = true
					break
				}
			}
		}
	}
}
