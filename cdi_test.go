package cdi

// Integration tests exercising the public API end to end — the same flows
// the README and examples advertise.
import (
	"bytes"
	"math"
	"testing"
)

func TestPublicQuickstartFlow(t *testing.T) {
	study, err := NewStudy(StudyConfig{
		Sizes:   []int{1 << 9, 1 << 11},
		Threads: []int{1, 8},
		Iters:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	app, tr, err := study.Profile(LAMMPSWorkload{
		Config: LAMMPSConfig{BoxSize: 60, Procs: 8, Steps: 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Runtime() <= 0 {
		t.Fatal("empty trace")
	}
	verdict, err := study.Assess(app)
	if err != nil {
		t.Fatal(err)
	}
	if verdict.ReachKm != 20 {
		t.Errorf("reach = %v km", verdict.ReachKm)
	}
	if !verdict.Viable {
		t.Errorf("LAMMPS not viable at 100µs: %+v", verdict.Prediction)
	}
}

func TestPublicProxyFlow(t *testing.T) {
	base, err := RunProxy(ProxyConfig{MatrixSize: 1 << 11, Iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunProxy(ProxyConfig{MatrixSize: 1 << 11, Iters: 10, Slack: 10 * Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if p := ProxyPenalty(base, run); p <= 0 {
		t.Errorf("penalty at 10ms = %v, want positive", p)
	}
	// Equation 1 through the public surface.
	if got := NoSlackTime(10*Second, 100, 10*Millisecond); got != 9*Second {
		t.Errorf("NoSlackTime = %v", got)
	}
}

func TestPublicWorkloadRuns(t *testing.T) {
	lr, err := RunLAMMPS(LAMMPSConfig{BoxSize: 20, Procs: 2, Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if lr.Atoms != LAMMPSAtoms(20) || lr.Atoms != 32000 {
		t.Errorf("atoms = %d", lr.Atoms)
	}
	cr, err := RunCosmoFlow(CosmoFlowConfig{
		Epochs: 1, TrainSamples: 16, ValSamples: 8, InputSide: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cr.TrainSteps != 4 {
		t.Errorf("train steps = %d", cr.TrainSteps)
	}
}

func TestPublicFabricConversions(t *testing.T) {
	if got := DistanceForSlack(100 * Microsecond); got != 20 {
		t.Errorf("DistanceForSlack(100µs) = %v km", got)
	}
	if got := SlackForDistance(20); math.Abs(float64(got-100*Microsecond)) > 1e-15 {
		t.Errorf("SlackForDistance(20km) = %v", got)
	}
	row := FabricPreset(RowScale, 0)
	if row.Latency() <= 0 {
		t.Error("row-scale preset has no latency")
	}
	if NodeLocal.String() != "node-local" || ClusterScale.String() != "cluster-scale" {
		t.Error("scale names wrong")
	}
}

func TestPublicComposeFlow(t *testing.T) {
	cmp, err := PaperScenario()
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.CDI) != 2 || !cmp.CDI[1].Granted {
		t.Fatalf("scenario = %+v", cmp)
	}
	trad, err := NewTraditionalSystem(2, 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := trad.Alloc(ComposeRequest{Name: "j", Cores: 48, GPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.TrappedGPUs != 3 {
		t.Errorf("trapped = %d", a.TrappedGPUs)
	}
	row, err := NewCDISystem(2, 24, 1, 4, FabricPreset(RowScale, 0))
	if err != nil {
		t.Fatal(err)
	}
	ar, err := row.Alloc(ComposeRequest{Name: "j", Cores: 48, GPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ar.TrappedGPUs != 0 || ar.Slack <= 0 {
		t.Errorf("CDI alloc = %+v", ar)
	}
}

func TestPublicTraceProfile(t *testing.T) {
	r, err := RunLAMMPS(LAMMPSConfig{BoxSize: 20, Procs: 2, Steps: 10, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	app := ProfileFromTrace(r.Trace, 2)
	if app.Parallelism != 2 || len(app.KernelDurations) == 0 {
		t.Errorf("profile = %+v", app)
	}
}

func TestPublicA100Spec(t *testing.T) {
	spec := A100()
	if spec.MemoryBytes != 40*(1<<30) {
		t.Errorf("A100 memory = %d", spec.MemoryBytes)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicBatchFlow(t *testing.T) {
	jobs := WorkloadMix(20, 24, 1)
	cmp, err := CompareBatch(jobs, 8, 24, 2, Backfill)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.CDI.Makespan <= 0 || cmp.Traditional.Makespan <= 0 {
		t.Fatalf("degenerate makespans: %+v", cmp)
	}
	sys, err := NewTraditionalSystem(4, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBatch(sys, jobs[:5], FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 5 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
}

func TestPublicSweepPersistence(t *testing.T) {
	pts, err := ProxySweep([]int{512, 2048}, []int{1}, []Duration{1 * Microsecond, 1 * Millisecond}, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSweep(&buf, pts); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSweep(&buf)
	if err != nil {
		t.Fatal(err)
	}
	study, err := NewStudyFromSweep(loaded, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The rebuilt surface answers exactly like one built from the
	// original points.
	direct, err := BuildSurface(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, slack := range []Duration{1 * Microsecond, 1 * Millisecond} {
		a, err := study.Surface.Penalty(512, 1, slack)
		if err != nil {
			t.Fatal(err)
		}
		b, err := direct.Penalty(512, 1, slack)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("rebuilt surface diverges at %v: %v vs %v", slack, a, b)
		}
	}
}
