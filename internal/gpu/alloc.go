package gpu

import (
	"errors"
	"fmt"
)

// Ptr is an opaque device-memory handle. The zero Ptr is the null pointer.
type Ptr uint64

// ErrOutOfMemory is returned by Malloc when the request exceeds the free
// device memory.
var ErrOutOfMemory = errors.New("gpu: out of device memory")

// ErrBadPointer is returned by Free (and size queries) for handles that
// were never allocated or were already freed.
var ErrBadPointer = errors.New("gpu: invalid device pointer")

// allocator tracks device-memory occupancy. Fragmentation is not modelled:
// the study only needs capacity enforcement (the paper excludes the 2^15
// matrix at ≥4 threads because 3×4 GiB per thread overflows 40 GiB).
type allocator struct {
	capacity int64
	used     int64
	sizes    map[Ptr]int64
	next     Ptr
}

func newAllocator(capacity int64) *allocator {
	//cdivet:allow escape constructed once per device at setup, not per iteration
	return &allocator{capacity: capacity, sizes: make(map[Ptr]int64)}
}

func (a *allocator) malloc(n int64) (Ptr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("gpu: Malloc of %d bytes", n)
	}
	if a.used+n > a.capacity {
		return 0, fmt.Errorf("%w: want %d, free %d", ErrOutOfMemory, n, a.capacity-a.used)
	}
	a.next++
	p := a.next
	a.sizes[p] = n
	a.used += n
	return p, nil
}

func (a *allocator) free(p Ptr) error {
	n, ok := a.sizes[p]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrBadPointer, uint64(p))
	}
	delete(a.sizes, p)
	a.used -= n
	return nil
}

func (a *allocator) size(p Ptr) (int64, error) {
	n, ok := a.sizes[p]
	if !ok {
		return 0, fmt.Errorf("%w: %#x", ErrBadPointer, uint64(p))
	}
	return n, nil
}
