// Package corpus holds mechanically fixable violations: cdivet -fix must
// rewrite this file into the committed golden, and the result must
// re-analyze clean.
package corpus

import (
	"fmt"
	"math/rand"
)

// EmitAll prints every entry of the table in map order.
func EmitAll(table map[string]int) {
	for name, count := range table {
		fmt.Println(name, count)
	}
}

// Jitter draws from the global stream even though a seeded one is in scope.
func Jitter(r *rand.Rand) int {
	return r.Intn(3) + rand.Intn(3)
}
