// Package core orchestrates the paper's end-to-end methodology for
// assessing row-scale CDI viability:
//
//  1. sweep the slack proxy across matrix sizes, thread counts and slack
//     values to build a response Surface (§IV-B, Figure 3);
//  2. profile a production application with the NSys-style tracer to
//     extract its kernel and data-movement characteristics (§IV-C,
//     Figures 4-5);
//  3. cross-analyse the profile against the surface with Equations 2-3 to
//     predict the application's slack penalty (§IV-D, Table IV);
//  4. translate tolerable slack into physical reach (the 100 µs ≈ 20 km
//     conclusion).
//
// The method runs entirely in software on the simulated node — exactly the
// portability property the paper claims for prospective CDI adopters.
package core

import (
	"fmt"

	"repro/internal/cosmoflow"
	"repro/internal/fabric"
	"repro/internal/lammps"
	"repro/internal/model"
	"repro/internal/proxy"
	"repro/internal/sim"
	"repro/internal/trace"
)

// StudyConfig controls the proxy sweep that calibrates a Study.
type StudyConfig struct {
	// Sizes are the proxy matrix sizes (nil = the paper's 2^9..2^15).
	Sizes []int
	// Threads are the submitter counts to sweep (nil = 1,2,4,8).
	Threads []int
	// Slacks are the injected values (nil = 1µs..10ms decades).
	Slacks []sim.Duration
	// Iters overrides the proxy's 30-second loop sizing when positive;
	// the paper-faithful zero value makes sweeps expensive, so tools and
	// tests usually set a small count.
	Iters int
	// Jobs bounds the worker pool the calibrating sweep fans out across
	// (0 = GOMAXPROCS, 1 = serial). Every worker owns a private
	// simulation and results merge in grid order, so the surface is
	// byte-identical for every value.
	Jobs int
}

func (c StudyConfig) withDefaults() StudyConfig {
	if c.Sizes == nil {
		c.Sizes = proxy.PaperSizes()
	}
	if c.Threads == nil {
		c.Threads = proxy.PaperThreads()
	}
	if c.Slacks == nil {
		c.Slacks = model.PaperSlacks()
	}
	return c
}

// Study is a calibrated instance of the methodology.
type Study struct {
	cfg     StudyConfig
	Surface *model.Surface
	Points  []proxy.SweepPoint
}

// NewStudy runs the proxy sweep and builds the response surface.
func NewStudy(cfg StudyConfig) (*Study, error) {
	cfg = cfg.withDefaults()
	pts, err := proxy.SweepParallel(cfg.Sizes, cfg.Threads, cfg.Slacks, cfg.Iters, cfg.Jobs)
	if err != nil {
		return nil, fmt.Errorf("core: proxy sweep: %w", err)
	}
	return NewStudyFromSweep(pts, cfg.Slacks)
}

// NewStudyFromSweep builds a Study from previously collected (typically
// saved and reloaded) sweep points — the adopter workflow of calibrating
// once and profiling many workloads. slacks selects the prediction grid
// (nil = the paper's Table IV values).
func NewStudyFromSweep(pts []proxy.SweepPoint, slacks []sim.Duration) (*Study, error) {
	surface, err := model.BuildSurface(pts)
	if err != nil {
		return nil, fmt.Errorf("core: building surface: %w", err)
	}
	cfg := StudyConfig{Slacks: slacks}.withDefaults()
	return &Study{cfg: cfg, Surface: surface, Points: pts}, nil
}

// Workload is an application the methodology can profile: anything able
// to produce a trace and state its effective kernel-submission
// parallelism.
type Workload interface {
	// Name labels the workload in reports.
	Name() string
	// Trace runs the workload under the tracer and returns the recording.
	Trace() (*trace.Trace, error)
	// Parallelism is the effective number of parallel kernel submitters
	// the paper's comparison uses (8 for LAMMPS's profiled config, 4 for
	// CosmoFlow's launch-sequence equivalence).
	Parallelism() int
}

// LAMMPSWorkload profiles the mini-LAMMPS at the paper's configuration
// (8 processes × 1 thread, box 120) unless overridden.
type LAMMPSWorkload struct {
	Config lammps.PerfConfig
}

// Name implements Workload.
func (w LAMMPSWorkload) Name() string { return "lammps" }

// Parallelism implements Workload: the profiled run uses 8 ranks.
func (w LAMMPSWorkload) Parallelism() int {
	if w.Config.Procs > 0 {
		return w.Config.Procs
	}
	return 8
}

// Trace implements Workload.
func (w LAMMPSWorkload) Trace() (*trace.Trace, error) {
	cfg := w.Config
	if cfg.BoxSize == 0 {
		cfg.BoxSize = 120
	}
	if cfg.Procs == 0 {
		cfg.Procs = 8
	}
	cfg.Record = true
	res, err := lammps.RunPerf(cfg)
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
}

// CosmoFlowWorkload profiles the mini-CosmoFlow at batch size 4.
type CosmoFlowWorkload struct {
	Config cosmoflow.PerfConfig
}

// Name implements Workload.
func (w CosmoFlowWorkload) Name() string { return "cosmoflow" }

// Parallelism implements Workload: kernel launches take ~1/7 of each
// sequence, which the paper treats as an effective parallelism of 4.
func (w CosmoFlowWorkload) Parallelism() int { return 4 }

// Trace implements Workload.
func (w CosmoFlowWorkload) Trace() (*trace.Trace, error) {
	cfg := w.Config
	cfg.Record = true
	res, err := cosmoflow.RunPerf(cfg)
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
}

// ProxyWorkload profiles the proxy itself — the §IV-D self-validation.
type ProxyWorkload struct {
	Config proxy.Config
}

// Name implements Workload.
func (w ProxyWorkload) Name() string {
	return fmt.Sprintf("proxy-n%d-t%d", w.Config.MatrixSize, w.Config.Threads)
}

// Parallelism implements Workload.
func (w ProxyWorkload) Parallelism() int {
	if w.Config.Threads > 0 {
		return w.Config.Threads
	}
	return 1
}

// Trace implements Workload.
func (w ProxyWorkload) Trace() (*trace.Trace, error) {
	cfg := w.Config
	cfg.Record = true
	res, err := proxy.Run(cfg)
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
}

// Profile runs a workload under the tracer and extracts its AppProfile.
func (s *Study) Profile(w Workload) (model.AppProfile, *trace.Trace, error) {
	tr, err := w.Trace()
	if err != nil {
		return model.AppProfile{}, nil, fmt.Errorf("core: tracing %s: %w", w.Name(), err)
	}
	app := model.ProfileFromTrace(tr, w.Parallelism())
	app.Label = w.Name()
	return app, tr, nil
}

// Predict evaluates the application's slack penalty bounds across the
// study's slack values — one Table IV block.
func (s *Study) Predict(app model.AppProfile) ([]model.Prediction, error) {
	return s.Surface.PredictSweep(app, s.cfg.Slacks)
}

// MaxTolerableSlack returns the largest slack (on a 1 µs .. 1 s log grid)
// whose pessimistic (upper-bound) predicted penalty stays within budget
// (e.g. 0.01 for the paper's 1 % bar), and the corresponding fibre reach.
func (s *Study) MaxTolerableSlack(app model.AppProfile, budget float64) (sim.Duration, float64, error) {
	if budget <= 0 {
		return 0, 0, fmt.Errorf("core: non-positive budget %v", budget)
	}
	grid := []sim.Duration{
		1 * sim.Microsecond, 2 * sim.Microsecond, 5 * sim.Microsecond,
		10 * sim.Microsecond, 20 * sim.Microsecond, 50 * sim.Microsecond,
		100 * sim.Microsecond, 200 * sim.Microsecond, 500 * sim.Microsecond,
		1 * sim.Millisecond, 2 * sim.Millisecond, 5 * sim.Millisecond,
		10 * sim.Millisecond, 100 * sim.Millisecond, 1 * sim.Second,
	}
	var best sim.Duration
	for _, sl := range grid {
		pred, err := s.Surface.Predict(app, sl)
		if err != nil {
			return 0, 0, err
		}
		if pred.Upper <= budget {
			best = sl
		} else {
			break
		}
	}
	return best, fabric.DistanceForDelay(best), nil
}

// Verdict summarizes one application's CDI viability at a slack value.
type Verdict struct {
	App        string
	Slack      sim.Duration
	Prediction model.Prediction
	// ReachKm is the fibre distance the slack corresponds to.
	ReachKm float64
	// Viable is true when even the pessimistic bound stays under 1 %.
	Viable bool
}

// Assess produces the paper's headline check for one application: the
// penalty bounds at 100 µs of slack (≈ 20 km of fibre) against the 1% bar.
func (s *Study) Assess(app model.AppProfile) (Verdict, error) {
	const slack = 100 * sim.Microsecond
	pred, err := s.Surface.Predict(app, slack)
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{
		App:        app.Label,
		Slack:      slack,
		Prediction: pred,
		ReachKm:    fabric.DistanceForDelay(slack),
		Viable:     pred.Upper < 0.01,
	}, nil
}
