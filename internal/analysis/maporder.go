package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"strconv"
	"strings"
)

// MapOrder flags range statements over maps whose body has order-dependent
// effects: appending to a slice, writing output, sending on a channel, or
// posting simulator events. Go randomizes map iteration order on purpose,
// so any such loop emits results in a different order every run — the exact
// failure mode that would corrupt regenerated tables while every unit test
// of the underlying math still passes. Order-independent bodies
// (accumulating a sum, filling another map, counting) are fine. Collect the
// keys, sort them, and range over the sorted slice instead.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration with order-dependent effects; sort the keys first",
	Run:  runMapOrder,
}

// orderDependentCall classifies callee names whose invocation inside a map
// range makes iteration order observable.
func orderDependentCall(name string) string {
	switch {
	case strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
		strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Encode"):
		return "writes output"
	case name == "Spawn" || name == "SpawnAt" || name == "Fire" || name == "Launch" || name == "schedule":
		return "posts simulator events"
	}
	return ""
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if reason := mapOrderEffect(rng.Body); reason != "" {
				pass.ReportFixf(rng.Pos(), maporderFix(pass, f, rng),
					"map iteration order is random and this body %s; sort the keys and range over the sorted slice", reason)
			}
			return true
		})
	}
}

// maporderFix rewrites an eligible map range into the repo's sorted-keys
// idiom:
//
//	keys := make([]K, 0, len(m))
//	for k := range m { //cdivet:allow maporder keys are collected unordered and sorted on the next line
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)
//	for _, k := range keys {
//		v := m[k]
//		...
//
// Eligible means: the key is a plain := ident, the key type is string, int,
// or float64 (the types sort has a dedicated helper for), and the map
// expression is a side-effect-free ident/selector chain so repeating it in
// len() and the index lookup is safe. Anything fancier gets a nil fix and
// stays a report-only finding.
func maporderFix(pass *Pass, file *ast.File, rng *ast.RangeStmt) *Fix {
	if rng.Tok != token.DEFINE {
		return nil
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" || !sideEffectFree(rng.X) {
		return nil
	}
	mt, ok := pass.Info.Types[rng.X].Type.Underlying().(*types.Map)
	if !ok {
		return nil
	}
	b, ok := mt.Key().Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	var sortFn, keyType string
	switch b.Kind() {
	case types.String:
		sortFn, keyType = "sort.Strings", "string"
	case types.Int:
		sortFn, keyType = "sort.Ints", "int"
	case types.Float64:
		sortFn, keyType = "sort.Float64s", "float64"
	default:
		return nil
	}

	// Pick a slice name that shadows nothing visible at the loop.
	name := ""
	scope := pass.Pkg.Scope().Innermost(rng.Pos())
	for _, cand := range []string{"keys", "sortedKeys"} {
		var obj types.Object
		if scope != nil {
			_, obj = scope.LookupParent(cand, rng.Pos())
		}
		if obj == nil {
			name = cand
			break
		}
	}
	if name == "" {
		return nil
	}

	fset := pass.Fset
	src, err := os.ReadFile(fset.Position(rng.Pos()).Filename)
	if err != nil {
		return nil
	}
	pos := fset.Position(rng.Pos())
	tf := fset.File(rng.Pos())
	lineStart := tf.Offset(tf.LineStart(pos.Line))
	indent := string(src[lineStart:pos.Offset])
	if strings.TrimSpace(indent) != "" {
		return nil // `for` shares its line with other code; don't guess layout
	}
	mapText := string(src[fset.Position(rng.X.Pos()).Offset:fset.Position(rng.X.End()).Offset])

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s := make([]%s, 0, len(%s))\n", name, keyType, mapText)
	fmt.Fprintf(&sb, "%sfor %s := range %s { //cdivet:allow maporder keys are collected unordered and sorted on the next line\n", indent, key.Name, mapText)
	fmt.Fprintf(&sb, "%s\t%s = append(%s, %s)\n", indent, name, name, key.Name)
	fmt.Fprintf(&sb, "%s}\n", indent)
	fmt.Fprintf(&sb, "%s%s(%s)\n", indent, sortFn, name)
	fmt.Fprintf(&sb, "%sfor _, %s := range %s {", indent, key.Name, name)
	if v, ok := rng.Value.(*ast.Ident); ok && v.Name != "_" {
		fmt.Fprintf(&sb, "\n%s\t%s := %s[%s]", indent, v.Name, mapText, key.Name)
	}

	fix := &Fix{
		Message: "collect the keys, sort them, and range over the sorted slice",
		Edits: []TextEdit{{
			File:   pos.Filename,
			Offset: pos.Offset,
			End:    fset.Position(rng.Body.Lbrace).Offset + 1,
			Text:   sb.String(),
		}},
	}
	if imp := importEdit(fset, file, "sort"); imp != nil {
		fix.Edits = append(fix.Edits, *imp)
	} else if !importsPackage(file, "sort") {
		return nil
	}
	return fix
}

// sideEffectFree reports whether repeating the expression is safe: a bare
// identifier or a selector chain of identifiers (no calls, no indexing).
func sideEffectFree(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return sideEffectFree(e.X)
	}
	return false
}

// importsPackage reports whether the file already imports path.
func importsPackage(f *ast.File, path string) bool {
	for _, spec := range f.Imports {
		if p, err := strconv.Unquote(spec.Path.Value); err == nil && p == path {
			return true
		}
	}
	return false
}

// importEdit returns a TextEdit adding `path` to the file's parenthesized
// import block in sorted position, or nil when the import already exists or
// the file has no parenthesized block to extend (nil, false case is
// distinguished by importsPackage at the caller).
func importEdit(fset *token.FileSet, f *ast.File, path string) *TextEdit {
	if importsPackage(f, path) {
		return nil
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Lparen.IsValid() {
			continue
		}
		for _, spec := range gd.Specs {
			is := spec.(*ast.ImportSpec)
			p, err := strconv.Unquote(is.Path.Value)
			if err != nil || p < path {
				continue
			}
			off := fset.Position(is.Pos()).Offset
			return &TextEdit{File: fset.Position(is.Pos()).Filename, Offset: off, End: off, Text: strconv.Quote(path) + "\n\t"}
		}
		off := fset.Position(gd.Rparen).Offset
		return &TextEdit{File: fset.Position(gd.Rparen).Filename, Offset: off, End: off, Text: "\t" + strconv.Quote(path) + "\n"}
	}
	return nil
}

// mapOrderEffect scans a map-range body for the first order-dependent
// effect and names it ("" when the body is order-independent).
func mapOrderEffect(body *ast.BlockStmt) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			reason = "sends on a channel"
			return false
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" {
					reason = "appends to a slice"
					return false
				}
			case *ast.SelectorExpr:
				if r := orderDependentCall(fun.Sel.Name); r != "" {
					reason = r
					return false
				}
			}
		}
		return true
	})
	return reason
}
