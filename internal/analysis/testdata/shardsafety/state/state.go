// Package state is the cross-package half of the shardsafety corpus: its
// annotated state is written from procs spawned in the corpus root.
package state

import sim "repro/internal/corpus/internal/sim"

// Tank owns a level on its own domain.
type Tank struct {
	//cdivet:shard(corpus.tank)
	Shard *sim.Shard
	//cdivet:shard(corpus.tank)
	Level int
}

// Fill runs on the owning domain when spawned through Tank.Shard: clean.
func (t *Tank) Fill(p *sim.Proc) {
	t.Level++
}

// Drain is the helper a foreign-domain proc calls cross-package.
func (t *Tank) Drain() {
	t.Level-- // want
}
