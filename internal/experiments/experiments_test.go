package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// tiny keeps experiment tests fast while preserving structure.
func tiny() Options {
	return Options{LAMMPSSteps: 10, ProxyIters: 10, CosmoEpochs: 1, CosmoSamples: 16}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	p := Paper()
	if o.LAMMPSSteps != p.LAMMPSSteps || o.CosmoEpochs != p.CosmoEpochs {
		t.Errorf("defaults = %+v", o)
	}
	q := Quick()
	if q.LAMMPSSteps >= p.LAMMPSSteps {
		t.Error("Quick not quicker than Paper")
	}
}

func TestTable1StructureAndShape(t *testing.T) {
	rows, err := Table1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Measured <= rows[i-1].Measured {
			t.Errorf("runtimes not increasing with box size: %+v", rows)
		}
	}
	out := RenderTable1(rows)
	for _, want := range []string{"Table I", "box", "541.452"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	o := tiny()
	series, err := Figure2(o)
	if err != nil {
		t.Fatal(err)
	}
	byBox := map[int]Figure2Series{}
	for _, s := range series {
		byBox[s.BoxSize] = s
	}
	// Box 20 degrades at 24 ranks; box 120 improves.
	last := len(byBox[20].Normalized) - 1
	if byBox[20].Normalized[last] < 2 {
		t.Errorf("box 20 at 24 procs = %v, want degradation", byBox[20].Normalized[last])
	}
	if byBox[120].Normalized[last] > 0.7 {
		t.Errorf("box 120 at 24 procs = %v, want improvement", byBox[120].Normalized[last])
	}
	if !strings.Contains(RenderFigure2(series), "Figure 2") {
		t.Error("render missing title")
	}
}

func TestThreadScalingShape(t *testing.T) {
	rows, err := ThreadScaling(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// First four rows: box 120 at 8 procs, threads 1..6 — improving.
	if rows[3].VsOneThread >= rows[0].VsOneThread {
		t.Errorf("6 threads (%v) not better than 1 (%v)", rows[3].VsOneThread, rows[0].VsOneThread)
	}
	if !strings.Contains(RenderThreadScaling(rows), "box") {
		t.Error("render empty")
	}
}

func TestCosmoFlowCPUShape(t *testing.T) {
	rows, err := CosmoFlowCPU(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Runtime <= rows[1].Runtime {
		t.Errorf("1 core (%v) not slower than 2 (%v)", rows[0].Runtime, rows[1].Runtime)
	}
	if rows[2].Runtime != rows[1].Runtime || rows[3].Runtime != rows[1].Runtime {
		t.Errorf("extra cores changed runtime: %+v", rows)
	}
	if RenderCosmoFlowCPU(rows) == "" {
		t.Error("render empty")
	}
}

func TestTable2Structure(t *testing.T) {
	rows, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	wantMiB := []float64{1, 16, 256, 4096}
	for i, r := range rows {
		if r.MatrixMiB != wantMiB[i] {
			t.Errorf("row %d MiB = %v", i, r.MatrixMiB)
		}
		if r.KernelTime <= 0 || r.LoopTime <= 0 {
			t.Errorf("row %d has zero timings: %+v", i, r)
		}
	}
	if !strings.Contains(RenderTable2(rows), "Table II") {
		t.Error("render missing title")
	}
}

func TestFigure3ShapeAndRender(t *testing.T) {
	pts, err := Figure3(tiny(), []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	// At 10ms slack, the 1-thread 512 penalty exceeds the 8192 one.
	var p512, p8192 float64
	for _, pt := range pts {
		if pt.Threads == 1 && pt.Slack == 10*sim.Millisecond {
			switch pt.MatrixSize {
			case 512:
				p512 = pt.Penalty
			case 8192:
				p8192 = pt.Penalty
			}
		}
	}
	if p512 <= p8192 {
		t.Errorf("512 penalty %v <= 8192 penalty %v", p512, p8192)
	}
	out := RenderFigure3(pts)
	if !strings.Contains(out, "1 thread(s)") || !strings.Contains(out, "8 thread(s)") {
		t.Errorf("render missing thread blocks:\n%s", out)
	}
}

func TestTracesAndDownstreamTables(t *testing.T) {
	tr, err := CollectTraces(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if tr.LAMMPS == nil || tr.CosmoFlow == nil {
		t.Fatal("missing traces")
	}
	f4 := RenderFigure4(tr)
	if !strings.Contains(f4, "lammps") || !strings.Contains(f4, "cosmoflow") {
		t.Errorf("figure 4 missing apps:\n%s", f4)
	}
	if !strings.Contains(RenderFigure5(tr), "MiB") {
		t.Error("figure 5 missing sizes")
	}
	blocks, surface, err := Table4(tiny(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	rows := Table3(tr, surface)
	if len(rows) != 2 {
		t.Fatalf("table3 rows = %d", len(rows))
	}
	for _, r := range rows {
		total := 0
		for _, c := range r.Counts {
			total += c
		}
		if total != r.Total {
			t.Errorf("%s bin counts %d != total %d", r.App, total, r.Total)
		}
	}
	if !strings.Contains(RenderTable3(rows, surface), "Table III") {
		t.Error("table 3 render missing title")
	}
	out := RenderTable4(blocks)
	if !strings.Contains(out, "headline check") {
		t.Errorf("table 4 render missing headline:\n%s", out)
	}
	// The paper's headline: both apps viable at 100µs.
	for _, blk := range blocks {
		for _, p := range blk.Predictions {
			if p.Slack == 100*sim.Microsecond && p.Upper >= 0.01 {
				t.Errorf("%s upper at 100µs = %v, want < 1%%", blk.App, p.Upper)
			}
		}
	}
}

func TestValidateBoundsBracketMeasurement(t *testing.T) {
	v, err := Validate(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if v.Lower > v.Upper {
		t.Errorf("bounds inverted: %+v", v)
	}
	// The proxy predicting itself: lower should track the measurement.
	if diff := v.Lower - v.Measured; diff > 0.05 || diff < -0.05 {
		t.Errorf("lower %v vs measured %v", v.Lower, v.Measured)
	}
	if RenderValidation(v) == "" {
		t.Error("render empty")
	}
}

func TestComposeExperiment(t *testing.T) {
	c, err := Compose()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderCompose(c), "Discussion") {
		t.Error("render missing title")
	}
}

// --- Extensions ---

func TestAppSlackValidation(t *testing.T) {
	rows, err := AppSlackValidation(tiny(), []sim.Duration{100 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // lammps + cosmoflow
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Measured < 0 {
			t.Errorf("%s: negative measured penalty %v", r.App, r.Measured)
		}
		// At 100µs the model says ~0 penalty; the in-situ measurement
		// should agree within a couple of percent of runtime.
		if r.Measured > 0.05 {
			t.Errorf("%s: measured penalty at 100µs = %v, want small", r.App, r.Measured)
		}
	}
	if RenderAppValidation(rows) == "" {
		t.Error("render empty")
	}
}

func TestCongestionExperiment(t *testing.T) {
	pts, err := Congestion(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].SlackInflation > 1.01 {
		t.Errorf("single-host inflation = %v", pts[0].SlackInflation)
	}
	if pts[len(pts)-1].SlackInflation <= pts[0].SlackInflation {
		t.Error("no inflation growth under load")
	}
	if RenderCongestion(pts) == "" {
		t.Error("render empty")
	}
}

func TestRemotingExperiment(t *testing.T) {
	results, err := RemotingComparison(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[1].RemotedStddev <= results[0].RemotedStddev {
		t.Error("noise did not raise variance")
	}
	if RenderRemoting(results) == "" {
		t.Error("render empty")
	}
}

func TestWeakScalingShape(t *testing.T) {
	rows, err := WeakScaling(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Atoms per rank constant across the sweep.
	for _, r := range rows[1:] {
		if r.AtomsPerRank != rows[0].AtomsPerRank {
			t.Errorf("atoms/rank drifted: %+v", rows)
		}
	}
	if rows[0].Efficiency != 1 {
		t.Errorf("base efficiency = %v", rows[0].Efficiency)
	}
	if RenderWeakScaling(rows) == "" {
		t.Error("render empty")
	}
}

func TestReachShape(t *testing.T) {
	tr, err := CollectTraces(tiny())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Reach(tiny(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 { // 2 apps × 7 distances
		t.Fatalf("rows = %d", len(rows))
	}
	// Penalty upper bound non-decreasing with distance per app.
	for i := 1; i < 7; i++ {
		if rows[i].Upper < rows[i-1].Upper-1e-12 {
			t.Errorf("penalty not monotone in distance: %+v", rows[:7])
		}
	}
	// 20 km must be within the 1% budget (the headline).
	for _, r := range rows {
		if r.Km == 20 && !r.Within1 {
			t.Errorf("%s not viable at 20km: %+v", r.App, r)
		}
	}
	if RenderReach(rows) == "" {
		t.Error("render empty")
	}
}

func TestProxyKernelMeans(t *testing.T) {
	means, err := ProxyKernelMeans(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(means) != 3 {
		t.Fatalf("means = %v", means)
	}
	if means[2048] <= means[512] {
		t.Error("kernel means not increasing with size")
	}
}

func TestThroughputExperiment(t *testing.T) {
	rows, err := Throughput(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Arch != "traditional" || rows[1].Arch != "cdi" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[1].Makespan >= rows[0].Makespan {
		t.Errorf("CDI makespan %v not below traditional %v", rows[1].Makespan, rows[0].Makespan)
	}
	if RenderThroughput(rows) == "" {
		t.Error("render empty")
	}
}

func TestChassisCouplingOrdering(t *testing.T) {
	rows, err := ChassisCoupling(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Tighter coupling must never be slower: nvlink ≤ intra ≤ inter.
	if rows[0].Runtime > rows[1].Runtime || rows[1].Runtime > rows[2].Runtime {
		t.Errorf("coupling ordering violated: %+v", rows)
	}
	if RenderChassisCoupling(rows) == "" {
		t.Error("render empty")
	}
}

func TestPreloadComparison(t *testing.T) {
	rows, err := PreloadComparison(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	full, shim := rows[0], rows[1]
	// The shim wraps only 3 of the 5 crossing calls per iteration.
	if shim.DelayedCalls*5 != full.DelayedCalls*3 {
		t.Errorf("coverage mismatch: full %d vs shim %d (want 5:3)", full.DelayedCalls, shim.DelayedCalls)
	}
	// §IV-D: "the results generally agreed" — same starvation trend, both
	// positive, same order of magnitude.
	if full.Penalty <= 0 || shim.Penalty <= 0 {
		t.Errorf("penalties = %v / %v, want both positive", full.Penalty, shim.Penalty)
	}
	ratio := shim.Penalty / full.Penalty
	if ratio < 0.3 || ratio > 1.5 {
		t.Errorf("shim/full penalty ratio = %v, want general agreement", ratio)
	}
	if RenderPreload(rows) == "" {
		t.Error("render empty")
	}
}

func TestDeploymentScales(t *testing.T) {
	rows, err := DeploymentScales(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Overhead != 0 {
		t.Errorf("node-local overhead = %v", rows[0].Overhead)
	}
	// Overheads grow with scale but stay tiny up to row scale (~µs slack).
	for i := 1; i < len(rows); i++ {
		if rows[i].Runtime < rows[i-1].Runtime {
			t.Errorf("runtime not monotone in scale: %+v", rows)
		}
	}
	if rows[2].Overhead > 0.01 {
		t.Errorf("row-scale overhead = %v, want < 1%% (the paper's viability claim)", rows[2].Overhead)
	}
	if RenderDeploymentScales(rows) == "" {
		t.Error("render empty")
	}
}
