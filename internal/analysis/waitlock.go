package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WaitLock flags a sync.Mutex or sync.RWMutex held across a simulated wait
// point in model code. When a process parks on Proc.Sleep / Signal.Wait /
// a channel handoff while holding a real lock, any other process that
// touches the same lock blocks the *host* goroutine instead of parking in
// virtual time — the scheduler's single-owner handoff deadlocks (the parked
// owner can only be resumed by the scheduler the blocked goroutine is
// starving), and even when it survives, wake-up order now depends on the Go
// runtime rather than the event heap. The analysis is module-wide: a call
// to a function that transitively reaches a wait point (per the call graph)
// counts as waiting. Package main and internal/sim itself (whose channel
// handoffs ARE the engine) are exempt.
var WaitLock = &Analyzer{
	Name:      "waitlock",
	Doc:       "sync.Mutex/RWMutex held across a simulated wait point (Proc.Sleep, Signal.Wait, channel handoff)",
	RunModule: runWaitLock,
}

func runWaitLock(mp *ModulePass) {
	g := callGraphFor(mp.Module)
	g.computeMayWait()

	for _, n := range g.nodes {
		if n.pkg.Name == "main" || strings.HasSuffix(n.pkg.Path, "/internal/sim") {
			continue
		}
		checkWaitLock(mp, g, n)
	}
}

// lockSpan is one critical section: from the Lock/RLock call to the first
// matching Unlock on the same lock object (or the end of the function for
// deferred unlocks).
type lockSpan struct {
	key      string // canonical receiver chain, e.g. "s.mu"
	name     string // Lock or RLock
	lockPos  token.Pos
	from, to token.Pos
}

func checkWaitLock(mp *ModulePass, g *callGraph, n *funcNode) {
	info := n.pkg.Info
	body := n.decl.Body

	var spans []lockSpan
	ast.Inspect(body, func(node ast.Node) bool {
		// defer mu.Unlock() holds to the end of the function; handled by
		// matching below (no explicit Unlock call position inside body).
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, lname := range []string{"Lock", "RLock"} {
			if key, ok := syncMutexRecv(info, call, lname); ok {
				spans = append(spans, lockSpan{key: key, name: lname, lockPos: call.Pos(), from: call.End(), to: body.End()})
			}
		}
		return true
	})
	if len(spans) == 0 {
		return
	}

	// Close each span at the first non-deferred Unlock/RUnlock of the same
	// object after the Lock.
	ast.Inspect(body, func(node ast.Node) bool {
		if _, isDefer := node.(*ast.DeferStmt); isDefer {
			return false // a deferred unlock runs at return; span stays open
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		for i := range spans {
			uname := "Unlock"
			if spans[i].name == "RLock" {
				uname = "RUnlock"
			}
			if key, ok := syncMutexRecv(info, call, uname); ok && key == spans[i].key && call.Pos() > spans[i].from && call.Pos() < spans[i].to {
				spans[i].to = call.Pos()
			}
		}
		return true
	})

	// Any wait point inside a span is a finding.
	ast.Inspect(body, func(node ast.Node) bool {
		var pos token.Pos
		var what string
		switch node := node.(type) {
		case *ast.CallExpr:
			if w, ok := simWaitPoint(info, node); ok {
				pos, what = node.Pos(), w
			} else if callee := g.calleeOf(info, node); callee != nil && callee.mayWait {
				pos, what = node.Pos(), callee.obj.Pkg().Name()+"."+callee.obj.Name()+" (reaches a wait point)"
			}
		case *ast.SendStmt:
			pos, what = node.Arrow, "channel send"
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				pos, what = node.Pos(), "channel receive"
			}
		case *ast.SelectStmt:
			pos, what = node.Pos(), "select"
		case *ast.FuncLit:
			return false // a literal's body runs elsewhere (or is its own node)
		}
		if what == "" {
			return true
		}
		for _, s := range spans {
			if pos > s.from && pos < s.to {
				lockLine := mp.Module.Fset.Position(s.lockPos).Line
				mp.Reportf(pos, "%s while holding sync.%s acquired on line %d: a parked process holding a real lock starves the scheduler; release the lock before waiting or use sim primitives", what, s.name, lockLine)
				return true
			}
		}
		return true
	})
}

// syncMutexRecv reports whether call is x.<name>() resolving to
// sync.Mutex/sync.RWMutex, returning a canonical key for the receiver chain
// (same chain → same key) so Lock and Unlock sites pair up.
func syncMutexRecv(info *types.Info, call *ast.CallExpr, name string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return "", false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return "", false
	}
	if pkg := s.Obj().Pkg(); pkg == nil || pkg.Path() != "sync" {
		return "", false
	}
	recv := s.Recv().String()
	if !strings.Contains(recv, "sync.Mutex") && !strings.Contains(recv, "sync.RWMutex") {
		return "", false
	}
	key := lockExprKey(info, sel.X)
	return key, key != ""
}

// lockExprKey canonicalizes a lock receiver expression: the root
// identifier's object identity plus the field path, so s.mu in one
// statement keys identically to s.mu in another. Receivers with calls or
// indexing in the chain get no key (we cannot prove two mentions alias).
func lockExprKey(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return ""
		}
		return fmt.Sprintf("%p", obj)
	case *ast.SelectorExpr:
		base := lockExprKey(info, e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.StarExpr:
		return lockExprKey(info, e.X)
	}
	return ""
}
