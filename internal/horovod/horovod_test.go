package horovod

import (
	"math"
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
)

func runWorkers(t *testing.T, size int, cfg Config, fn func(s *Session)) {
	t.Helper()
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	w := mpi.NewWorld(env, size, mpi.IntraNode())
	w.SpawnAll(func(r *mpi.Rank) {
		fn(New(r, cfg))
	})
	env.Run()
	if blocked := env.Blocked(); len(blocked) != 0 {
		t.Fatalf("deadlocked workers: %v", blocked)
	}
}

func TestGradAllreduceAverages(t *testing.T) {
	results := make([][][]float64, 4)
	runWorkers(t, 4, Config{}, func(s *Session) {
		rank := float64(s.Rank().Rank())
		g1 := []float64{rank, rank * 2}
		g2 := []float64{10 * rank}
		results[s.Rank().Rank()] = s.GradAllreduce(g1, g2)
	})
	// Average of ranks 0..3 = 1.5.
	for rank, got := range results {
		if len(got) != 2 {
			t.Fatalf("rank %d tensors = %d", rank, len(got))
		}
		if math.Abs(got[0][0]-1.5) > 1e-12 || math.Abs(got[0][1]-3.0) > 1e-12 {
			t.Errorf("rank %d g1 = %v", rank, got[0])
		}
		if math.Abs(got[1][0]-15) > 1e-12 {
			t.Errorf("rank %d g2 = %v", rank, got[1])
		}
	}
}

func TestGradAllreduceDoesNotMutateInputs(t *testing.T) {
	runWorkers(t, 2, Config{}, func(s *Session) {
		g := []float64{float64(s.Rank().Rank())}
		s.GradAllreduce(g)
		if g[0] != float64(s.Rank().Rank()) {
			t.Errorf("input gradient mutated: %v", g)
		}
	})
}

func TestFusionPacksSmallTensors(t *testing.T) {
	runWorkers(t, 2, Config{}, func(s *Session) {
		// 10 tiny tensors must fuse into a single cycle under the 64 MiB
		// default threshold.
		tensors := make([][]float64, 10)
		for i := range tensors {
			tensors[i] = []float64{1, 2, 3}
		}
		s.GradAllreduce(tensors...)
		if s.Cycles() != 1 {
			t.Errorf("cycles = %d, want 1 (fusion)", s.Cycles())
		}
		if s.Allreduces() != 10 {
			t.Errorf("allreduces = %d, want 10", s.Allreduces())
		}
	})
}

func TestFusionSplitsLargeTensors(t *testing.T) {
	runWorkers(t, 2, Config{FusionThresholdBytes: 800}, func(s *Session) { // 100 elems
		big := make([]float64, 250)
		for i := range big {
			big[i] = float64(i)
		}
		out := s.GradAllreduce(big)
		if s.Cycles() != 3 {
			t.Errorf("cycles = %d, want 3 (250 elems / 100 per buffer)", s.Cycles())
		}
		for i, v := range out[0] {
			if math.Abs(v-float64(i)) > 1e-12 { // both ranks equal → average = value
				t.Fatalf("element %d = %v, want %v", i, v, float64(i))
				return
			}
		}
		if s.BytesReduced() != 2000 {
			t.Errorf("BytesReduced = %d, want 2000", s.BytesReduced())
		}
	})
}

func TestCycleTimeCharged(t *testing.T) {
	var elapsed sim.Duration
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	w := mpi.NewWorld(env, 2, mpi.CostModel{})
	w.SpawnAll(func(r *mpi.Rank) {
		s := New(r, Config{CycleTime: 5 * sim.Millisecond})
		start := r.Proc().Now()
		s.GradAllreduce([]float64{1})
		if r.Rank() == 0 {
			elapsed = r.Proc().Now().Sub(start)
		}
	})
	env.Run()
	if elapsed < 5*sim.Millisecond {
		t.Errorf("elapsed = %v, want >= 5ms cycle time", elapsed)
	}
}

func TestEmptyCallReturnsNil(t *testing.T) {
	runWorkers(t, 2, Config{}, func(s *Session) {
		if out := s.GradAllreduce(); out != nil {
			t.Errorf("empty call = %v", out)
		}
	})
}

func TestNegativeFusionThresholdPanics(t *testing.T) {
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	w := mpi.NewWorld(env, 1, mpi.CostModel{})
	w.SpawnAll(func(r *mpi.Rank) {
		defer func() {
			if recover() == nil {
				t.Error("negative threshold accepted")
			}
		}()
		New(r, Config{FusionThresholdBytes: -1})
	})
	env.Run()
}

func TestSyncBytesChargesRingCost(t *testing.T) {
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	w := mpi.NewWorld(env, 4, mpi.CostModel{Alpha: 1 * sim.Microsecond, Beta: 1e9})
	var elapsed sim.Duration
	w.SpawnAll(func(r *mpi.Rank) {
		s := New(r, Config{CycleTime: 1 * sim.Millisecond, FusionThresholdBytes: 1 << 20})
		start := r.Proc().Now()
		s.SyncBytes(3 << 20) // three fusion chunks
		if r.Rank() == 0 {
			elapsed = r.Proc().Now().Sub(start)
			if s.Cycles() != 3 {
				t.Errorf("cycles = %d, want 3", s.Cycles())
			}
			if s.BytesReduced() != 3<<20 {
				t.Errorf("bytes = %d", s.BytesReduced())
			}
		}
	})
	env.Run()
	// 3 cycles × (1ms cycle + ring cost of 1MiB on 4 ranks).
	ring := sim.Duration(6) * (1*sim.Microsecond + sim.Duration(float64(1<<20)/4/1e9))
	want := 3 * (1*sim.Millisecond + ring)
	if diff := float64(elapsed - want); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("elapsed = %v, want %v", elapsed, want)
	}
}

func TestSyncBytesZeroAndNegative(t *testing.T) {
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	w := mpi.NewWorld(env, 1, mpi.CostModel{})
	w.SpawnAll(func(r *mpi.Rank) {
		s := New(r, Config{})
		s.SyncBytes(0) // no-op
		if s.Cycles() != 0 {
			t.Errorf("cycles = %d after zero-byte sync", s.Cycles())
		}
		defer func() {
			if recover() == nil {
				t.Error("negative size accepted")
			}
		}()
		s.SyncBytes(-1)
	})
	env.Run()
}

func TestSessionAccessors(t *testing.T) {
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	w := mpi.NewWorld(env, 3, mpi.CostModel{})
	w.SpawnAll(func(r *mpi.Rank) {
		s := New(r, Config{})
		if s.Size() != 3 || s.Rank() != r {
			t.Error("accessors wrong")
		}
	})
	env.Run()
}
