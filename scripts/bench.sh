#!/usr/bin/env bash
# bench.sh — run the table/figure benchmarks with -benchmem and record the
# results as machine-readable JSON, one file per invocation:
#
#   scripts/bench.sh                 # full run -> BENCH_<n>.json (n auto-increments)
#   scripts/bench.sh -bench Sim      # restrict the benchmark pattern
#   scripts/bench.sh --smoke         # 1-iteration sanity pass used by check.sh;
#                                    # validates the pipeline, writes nothing
#
# Each BENCH_<n>.json is an object with host metadata plus one entry per
# benchmark: {name, ns_per_op, bytes_per_op, allocs_per_op}. The sequence of
# files is the repo's perf trajectory: compare allocs_per_op of BenchmarkSim*
# across files to see the effect of engine changes (stdlib toolchain only —
# the parse is plain awk, no external JSON tools).
set -euo pipefail
cd "$(dirname "$0")/.."

pattern='.'
benchtime=''
smoke=0
while [ $# -gt 0 ]; do
    case "$1" in
        --smoke)
            smoke=1
            pattern='BenchmarkSimEngineEvents'
            benchtime='1x'
            ;;
        -bench)
            shift
            pattern="$1"
            ;;
        -benchtime)
            shift
            benchtime="$1"
            ;;
        *)
            echo "bench.sh: unknown argument $1" >&2
            exit 2
            ;;
    esac
    shift
done

raw="$(mktemp)"
if [ "$smoke" = 1 ]; then
    out="$(mktemp)"
    trap 'rm -f "$raw" "$out"' EXIT
else
    trap 'rm -f "$raw"' EXIT
    n=1
    while [ -e "BENCH_${n}.json" ]; do
        n=$((n + 1))
    done
    out="BENCH_${n}.json"
fi

args=(-run '^$' -bench "$pattern" -benchmem)
if [ -n "$benchtime" ]; then
    args+=(-benchtime "$benchtime")
fi
echo "== go test ${args[*]} ." >&2
go test "${args[@]}" . | tee "$raw" >&2

# Benchmark lines look like:
#   BenchmarkSimEngineEvents-4   123456   987 ns/op   0 B/op   0 allocs/op
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v goos="$(go env GOOS)" -v goarch="$(go env GOARCH)" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"benchmarks\": [", date, goos, goarch
    count = 0
}
/^Benchmark/ && /ns\/op/ {
    name = $1
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "B/op")      bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (bytes == "") bytes = 0
    if (allocs == "") allocs = 0
    if (count++) printf ","
    printf "\n    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bytes, allocs
}
END {
    if (count == 0) { print "bench.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf "\n  ]\n}\n"
}' "$raw" > "$out"

if [ "$smoke" = 1 ]; then
    # The smoke pass only proves the run+parse pipeline: the file must be
    # non-empty, syntactically sane, and contain the engine benchmark.
    grep -q '"name": "BenchmarkSimEngineEvents' "$out"
    grep -q '"allocs_per_op":' "$out"
    echo "bench.sh --smoke: pipeline ok" >&2
else
    echo "bench.sh: wrote $out ($(grep -c '"name"' "$out") benchmarks)" >&2
fi
