package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"strconv"
	"strings"
)

// Hotpath flags per-iteration allocation patterns in functions reachable
// from the benchmark call graph and the configured steady-state roots:
// string concatenation and fmt.Sprintf/fmt.Errorf in iteration bodies,
// append into a loop-grown local slice with no capacity hint, and boxing
// into interface{}/any (variadic ...any calls and implicit interface
// conversions of non-pointer values). Heap allocations proper (make, new,
// composite literals) belong to the escape rule, which can tell
// stack-allocatable sites apart.
//
// A finding requires loop context: the site sits inside a lexical for/range
// loop, or the function itself is only entered from inside one (the looped
// bit propagates along call edges). Benchmark harness loops (`for i < b.N`,
// `for b.Loop()`) are not loop context — they wrap complete runs, not
// iterations.
var Hotpath = &Analyzer{
	Name:      "hotpath",
	Doc:       "per-iteration allocation patterns (Sprintf, string +, bare append, interface boxing) in benchmark-reachable code",
	RunModule: runHotpath,
}

func runHotpath(mp *ModulePass) {
	g := callGraphFor(mp.Module)
	h := computeHotness(g)
	for _, n := range g.nodes {
		hf := h.fns[n]
		if hf == nil || analysisExempt(n) {
			continue
		}
		checkHotFunc(mp, n, hf)
	}
}

// checkHotFunc scans one hot function body for allocation patterns.
func checkHotFunc(mp *ModulePass, n *funcNode, hf *hotFunc) {
	info := n.pkg.Info
	// skipConcat suppresses the operands of an already-reported string
	// concatenation chain, so a+b+c is one finding, not two.
	skipConcat := map[ast.Expr]bool{}
	panics := panicArgRanges(info, n.decl.Body)
	returns := returnRanges(n.decl.Body)
	hot := func(pos token.Pos) bool {
		return (hf.looped || inLoop(hf.loops, pos)) && !inRanges(panics, pos)
	}

	checkAppendCap(mp, n, hf)

	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			checkHotCall(mp, n, hf, info, node, hot, returns)
		case *ast.BinaryExpr:
			if node.Op != token.ADD || skipConcat[node] || !hot(node.OpPos) {
				return true
			}
			tv, ok := info.Types[node]
			if !ok || !isString(tv.Type) || tv.Value != nil {
				return true // not a string, or fully constant-folded
			}
			if concatPreformatted(info, node) {
				return true
			}
			for _, sub := range []ast.Expr{node.X, node.Y} {
				if b, ok := ast.Unparen(sub).(*ast.BinaryExpr); ok && b.Op == token.ADD {
					skipConcat[b] = true
				}
			}
			mp.Reportf(node.OpPos,
				"string concatenation allocates every iteration on a hot path (%s); build once outside the loop or use a cached/preformatted value", hf.root)
		case *ast.AssignStmt:
			if node.Tok != token.ADD_ASSIGN || len(node.Lhs) != 1 || !hot(node.TokPos) {
				return true
			}
			if tv, ok := info.Types[node.Lhs[0]]; ok && isString(tv.Type) {
				mp.Reportf(node.TokPos,
					"string += reallocates the whole string every iteration on a hot path (%s); use a strings.Builder or restructure", hf.root)
			}
		}
		return true
	})
}

// checkHotCall flags fmt.Sprintf/fmt.Errorf and interface-boxing call
// patterns at a hot call site. fmt.Errorf inside a return statement is the
// idiomatic cold failure path and stays quiet.
func checkHotCall(mp *ModulePass, n *funcNode, hf *hotFunc, info *types.Info, call *ast.CallExpr, hot func(token.Pos) bool, returns []posRange) {
	if !hot(call.Pos()) {
		return
	}

	// Conversion to an interface type boxes its operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if atv, ok := info.Types[call.Args[0]]; ok && !isPointerLike(atv.Type) && !types.IsInterface(atv.Type) {
				mp.Reportf(call.Pos(),
					"conversion to %s boxes a %s on a hot path (%s); keep the concrete type or hoist the conversion",
					types.TypeString(tv.Type, shortQualifier), atv.Type.String(), hf.root)
			}
		}
		return
	}

	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if fn, ok := calledFunc(info, call); ok {
		if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" && sel != nil {
			switch fn.Name() {
			case "Sprintf":
				fix := sprintfFix(mp, n, call)
				mp.ReportFixf(call.Pos(), fix,
					"fmt.Sprintf allocates (format parse + result) every iteration on a hot path (%s); use strconv or plain concatenation of preformatted parts", hf.root)
				return
			case "Errorf":
				if inRanges(returns, call.Pos()) {
					return // `return fmt.Errorf(...)`: cold failure path
				}
				mp.Reportf(call.Pos(),
					"fmt.Errorf allocates every iteration on a hot path (%s); hoist a sentinel error or build it lazily on the failure branch", hf.root)
				return
			}
		}

		// Variadic ...any parameter: every non-interface, non-pointer-like
		// argument is boxed into an interface at the call.
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Variadic() && call.Ellipsis == token.NoPos {
			last := sig.Params().Len() - 1
			if last >= 0 {
				slice, ok := sig.Params().At(last).Type().(*types.Slice)
				if ok && types.IsInterface(slice.Elem()) {
					boxed := 0
					for i := last; i < len(call.Args); i++ {
						atv, ok := info.Types[call.Args[i]]
						if ok && !types.IsInterface(atv.Type) && !isPointerLike(atv.Type) && atv.Value == nil {
							boxed++
						}
					}
					if boxed > 0 {
						mp.Reportf(call.Pos(),
							"call boxes %d value(s) into a variadic %s parameter every iteration on a hot path (%s); use a concrete-typed helper or hoist the call",
							boxed, types.TypeString(slice.Elem(), shortQualifier), hf.root)
					}
				}
			}
		}
	}
}

// checkAppendCap reports loop-grown local slices declared with no capacity
// hint: `var x []T` / `x := []T{}` / `x := make([]T, 0)` followed by
// `x = append(x, ...)` inside a loop that does not contain the declaration.
// The fix rewrites the declaration to `make([]T, 0, bound)` when a safe
// bound is evident from the loop shape; `var x []T` declarations stay
// report-only (rewriting nil to an empty slice changes encoding/json
// output).
func checkAppendCap(mp *ModulePass, n *funcNode, hf *hotFunc) {
	info := n.pkg.Info

	type tracked struct {
		obj     types.Object
		stmt    ast.Stmt
		rhs     ast.Expr // nil for `var x []T`
		appends []*ast.CallExpr
		escapes bool // address taken / reassigned — be conservative
	}
	vars := map[types.Object]*tracked{}
	var order []*tracked // declaration order, for deterministic reporting

	// Pass 1: find candidate declarations of local nil/empty slices.
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.AssignStmt:
			if node.Tok != token.DEFINE || len(node.Lhs) != 1 || len(node.Rhs) != 1 {
				return true
			}
			id, ok := node.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Defs[id]
			if obj == nil || !isSlice(obj.Type()) {
				return true
			}
			if emptySliceExpr(info, node.Rhs[0]) {
				t := &tracked{obj: obj, stmt: node, rhs: node.Rhs[0]}
				vars[obj] = t
				order = append(order, t)
			}
		case *ast.DeclStmt:
			gd, ok := node.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 || len(vs.Names) != 1 {
					continue
				}
				obj := info.Defs[vs.Names[0]]
				if obj != nil && isSlice(obj.Type()) {
					t := &tracked{obj: obj, stmt: node}
					vars[obj] = t
					order = append(order, t)
				}
			}
		}
		return true
	})
	if len(vars) == 0 {
		return
	}

	// Pass 2: collect appends and disqualifying uses.
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.AssignStmt:
			// x = append(x, ...) keeps the var tracked; any other
			// reassignment disqualifies it.
			for i, lhs := range node.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				t := vars[info.Uses[id]]
				if t == nil {
					continue
				}
				if node.Tok == token.ASSIGN && i < len(node.Rhs) {
					if call := appendToSame(info, node.Rhs[i], t.obj); call != nil {
						t.appends = append(t.appends, call)
						continue
					}
				}
				if node.Tok != token.DEFINE {
					t.escapes = true
				}
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if id, ok := ast.Unparen(node.X).(*ast.Ident); ok {
					if t := vars[info.Uses[id]]; t != nil {
						t.escapes = true
					}
				}
			}
		}
		return true
	})

	// Report: every append inside a loop whose body excludes the decl.
	for _, t := range order {
		if t.escapes || len(t.appends) == 0 {
			continue
		}
		var growLoop *loopInfo
		grown := false
		uniform := true
		for _, call := range t.appends {
			for i := range hf.loops {
				l := &hf.loops[i]
				if l.body.Pos() <= call.Pos() && call.Pos() <= l.body.End() &&
					!(l.body.Pos() <= t.stmt.Pos() && t.stmt.Pos() <= l.body.End()) {
					grown = true
					if growLoop == nil {
						growLoop = l
					} else if growLoop != l {
						uniform = false
					}
				}
			}
		}
		if !grown {
			continue
		}
		var fix *Fix
		if uniform && t.rhs != nil {
			fix = appendCapFix(mp, n, t.rhs, growLoop)
		}
		mp.ReportFixf(t.stmt.Pos(), fix,
			"slice %s is grown by append inside a loop with no capacity hint on a hot path (%s); preallocate with make(cap) or reuse a buffer across iterations",
			t.obj.Name(), hf.root)
	}
}

// appendToSame returns the append call if rhs is `append(x, ...)` where x
// denotes obj.
func appendToSame(info *types.Info, rhs ast.Expr, obj types.Object) *ast.CallExpr {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) < 2 {
		return nil
	}
	if bi, ok := info.Uses[fn].(*types.Builtin); !ok || bi.Name() != "append" {
		return nil
	}
	arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || info.Uses[arg0] != obj {
		return nil
	}
	return call
}

// appendCapFix rewrites an empty-slice declaration RHS to a
// capacity-hinted make when the growing loop has an evident trip-count
// bound: `for range X` / `for _, v := range X` gives len(X) (X
// side-effect-free), `for i := 0; i < N; i++` gives N (N a side-effect-free
// expression or constant).
func appendCapFix(mp *ModulePass, n *funcNode, rhs ast.Expr, loop *loopInfo) *Fix {
	bound := loopBound(mp.Module.Fset, n, loop)
	if bound == "" {
		return nil
	}
	elem := sliceElemText(mp.Module.Fset, n, rhs)
	if elem == "" {
		return nil
	}
	fset := mp.Module.Fset
	pos := fset.Position(rhs.Pos())
	end := fset.Position(rhs.End())
	return &Fix{
		Message: fmt.Sprintf("preallocate: make([]%s, 0, %s)", elem, bound),
		Edits: []TextEdit{{
			File:   pos.Filename,
			Offset: pos.Offset,
			End:    end.Offset,
			Text:   fmt.Sprintf("make([]%s, 0, %s)", elem, bound),
		}},
	}
}

// loopBound extracts a safe capacity expression from a loop header, or "".
func loopBound(fset *token.FileSet, n *funcNode, loop *loopInfo) string {
	src := sourceOf(fset, loop.node.Pos())
	if src == nil {
		return ""
	}
	exprText := func(e ast.Expr) string {
		return string(src[fset.Position(e.Pos()).Offset:fset.Position(e.End()).Offset])
	}
	switch l := loop.node.(type) {
	case *ast.RangeStmt:
		if !sideEffectFree(l.X) {
			return ""
		}
		if tv, ok := n.pkg.Info.Types[l.X]; ok {
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Array, *types.Map:
				return "len(" + exprText(l.X) + ")"
			}
			if p, ok := tv.Type.Underlying().(*types.Pointer); ok {
				if _, ok := p.Elem().Underlying().(*types.Array); ok {
					return "len(" + exprText(l.X) + ")"
				}
			}
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				return exprText(l.X)
			}
		}
		return ""
	case *ast.ForStmt:
		// for i := 0; i < N; i++
		cond, ok := l.Cond.(*ast.BinaryExpr)
		if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
			return ""
		}
		if !sideEffectFreeOrLen(cond.Y) {
			return ""
		}
		init, ok := l.Init.(*ast.AssignStmt)
		if !ok || len(init.Rhs) != 1 {
			return ""
		}
		if lit, ok := ast.Unparen(init.Rhs[0]).(*ast.BasicLit); !ok || lit.Value != "0" {
			return ""
		}
		if cond.Op == token.LEQ {
			return exprText(cond.Y) + "+1"
		}
		return exprText(cond.Y)
	}
	return ""
}

// sideEffectFreeOrLen extends sideEffectFree with len(expr) of a
// side-effect-free expression.
func sideEffectFreeOrLen(e ast.Expr) bool {
	if sideEffectFree(e) {
		return true
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" && len(call.Args) == 1 {
			return sideEffectFree(call.Args[0])
		}
	}
	if _, ok := ast.Unparen(e).(*ast.BasicLit); ok {
		return true
	}
	return false
}

// sliceElemText renders the element type of an empty-slice expression for
// use in a make() rewrite: []T{} gives T verbatim; make([]T, 0) likewise.
func sliceElemText(fset *token.FileSet, n *funcNode, rhs ast.Expr) string {
	src := sourceOf(fset, rhs.Pos())
	if src == nil {
		return ""
	}
	text := func(e ast.Expr) string {
		return string(src[fset.Position(e.Pos()).Offset:fset.Position(e.End()).Offset])
	}
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CompositeLit:
		if at, ok := e.Type.(*ast.ArrayType); ok && at.Len == nil {
			return text(at.Elt)
		}
	case *ast.CallExpr:
		if len(e.Args) >= 1 {
			if at, ok := ast.Unparen(e.Args[0]).(*ast.ArrayType); ok && at.Len == nil {
				return text(at.Elt)
			}
		}
	}
	return ""
}

// emptySliceExpr reports whether e is `[]T{}` or `make([]T, 0)` — an empty
// slice with no capacity hint.
func emptySliceExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		at, ok := e.Type.(*ast.ArrayType)
		return ok && at.Len == nil && len(e.Elts) == 0
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok || id.Name != "make" || len(e.Args) != 2 {
			return false
		}
		if bi, ok := info.Uses[id].(*types.Builtin); !ok || bi.Name() != "make" {
			return false
		}
		lit, ok := ast.Unparen(e.Args[1]).(*ast.BasicLit)
		return ok && lit.Value == "0"
	}
	return false
}

// sprintfFix rewrites simple fmt.Sprintf calls to strconv/concatenation:
// a constant format with exactly one verb and a matching simple argument.
// Covered: %d with int/int64, %s with string, %q with string (strconv.Quote),
// %v where the argument is already a string. Anything else returns nil and
// the finding stays report-only.
func sprintfFix(mp *ModulePass, n *funcNode, call *ast.CallExpr) *Fix {
	if len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return nil
	}
	info := n.pkg.Info
	ftv, ok := info.Types[call.Args[0]]
	if !ok || ftv.Value == nil || ftv.Value.Kind() != constant.String {
		return nil
	}
	format := constant.StringVal(ftv.Value)
	if strings.Count(format, "%") != 1 {
		return nil
	}
	i := strings.IndexByte(format, '%')
	if i+1 >= len(format) {
		return nil
	}
	verb := format[i+1]
	prefix, suffix := format[:i], format[i+2:]
	if strings.ContainsAny(prefix+suffix, "%") {
		return nil
	}

	atv, ok := info.Types[call.Args[1]]
	if !ok {
		return nil
	}
	b, _ := atv.Type.Underlying().(*types.Basic)

	fset := mp.Module.Fset
	src := sourceOf(fset, call.Pos())
	if src == nil {
		return nil
	}
	argText := string(src[fset.Position(call.Args[1].Pos()).Offset:fset.Position(call.Args[1].End()).Offset])
	argIsSimple := sideEffectFree(call.Args[1])
	wrap := func(s string) string {
		if argIsSimple {
			return s
		}
		return "(" + s + ")"
	}

	var core string
	needStrconv := false
	switch {
	case verb == 'd' && b != nil && b.Kind() == types.Int:
		core = "strconv.Itoa(" + argText + ")"
		needStrconv = true
	case verb == 'd' && b != nil && b.Kind() == types.Int64:
		core = "strconv.FormatInt(" + argText + ", 10)"
		needStrconv = true
	case (verb == 's' || verb == 'v') && b != nil && b.Kind() == types.String:
		core = wrap(argText)
	case verb == 'q' && b != nil && b.Kind() == types.String:
		core = "strconv.Quote(" + argText + ")"
		needStrconv = true
	default:
		return nil
	}

	repl := core
	if prefix != "" {
		repl = strconv.Quote(prefix) + " + " + repl
	}
	if suffix != "" {
		repl = repl + " + " + strconv.Quote(suffix)
	}

	pos := fset.Position(call.Pos())
	end := fset.Position(call.End())
	fix := &Fix{
		Message: "replace fmt.Sprintf with " + strings.SplitN(core, "(", 2)[0] + "-based formatting",
		Edits: []TextEdit{{
			File:   pos.Filename,
			Offset: pos.Offset,
			End:    end.Offset,
			Text:   repl,
		}},
	}
	if needStrconv {
		if imp := importEdit(fset, n.file, "strconv"); imp != nil {
			fix.Edits = append(fix.Edits, *imp)
		} else if !importsPackage(n.file, "strconv") {
			return nil
		}
	}
	// If this call is the file's only use of fmt, drop the import so the
	// fixed file still compiles. With other fmt uses the import stays.
	if fmtUses(info, n.file) == 1 {
		if del := removeImportEdit(fset, n.file, "fmt"); del != nil {
			fix.Edits = append(fix.Edits, *del)
		} else {
			return nil // lone import declaration; removal would need layout surgery
		}
	}
	return fix
}

// fmtUses counts identifier uses resolving into package fmt within file.
func fmtUses(info *types.Info, file *ast.File) int {
	count := 0
	ast.Inspect(file, func(node ast.Node) bool {
		sel, ok := node.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				count++
			}
		}
		return true
	})
	return count
}

// removeImportEdit deletes the import spec line for path from a
// parenthesized import block with at least two specs; it returns nil
// otherwise (deleting a whole single-import declaration is layout surgery
// this fix does not attempt).
func removeImportEdit(fset *token.FileSet, f *ast.File, path string) *TextEdit {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Lparen.IsValid() || len(gd.Specs) < 2 {
			continue
		}
		for _, spec := range gd.Specs {
			is := spec.(*ast.ImportSpec)
			p, err := strconv.Unquote(is.Path.Value)
			if err != nil || p != path {
				continue
			}
			tf := fset.File(is.Pos())
			pos := fset.Position(is.Pos())
			lineStart := tf.Offset(tf.LineStart(pos.Line))
			endOffset := fset.Position(is.End()).Offset
			// Consume the trailing newline so no blank line is left.
			if pos.Line < tf.LineCount() {
				endOffset = tf.Offset(tf.LineStart(pos.Line + 1))
			}
			return &TextEdit{File: pos.Filename, Offset: lineStart, End: endOffset, Text: ""}
		}
	}
	return nil
}

// sourceOf reads the source file containing pos (nil on error). Fix
// construction is a cold path; reading per fix keeps the loader simple.
func sourceOf(fset *token.FileSet, pos token.Pos) []byte {
	src, err := os.ReadFile(fset.Position(pos).Filename)
	if err != nil {
		return nil
	}
	return src
}

// calledFunc resolves the called *types.Func of a call expression (static
// calls only).
// concatPreformatted reports whether every leaf of a concatenation chain is
// a constant or a direct strconv call — the shape the sprintf fix produces
// ("concatenation of preformatted parts"). It costs one allocation and no
// format parse, so re-flagging it would make the suggested fix circular.
func concatPreformatted(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.ADD {
		return concatPreformatted(info, b.X) && concatPreformatted(info, b.Y)
	}
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return true
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := calledFunc(info, call)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "strconv"
}

func calledFunc(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	return fn, ok
}

// isPointerLike reports whether boxing a value of type t into an interface
// allocates nothing beyond the interface word: pointers, channels, maps,
// functions, and unsafe.Pointer are single-word and the runtime stores them
// directly.
func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// shortQualifier renders package-qualified type names with the package base
// name only.
func shortQualifier(p *types.Package) string { return p.Name() }
