package health

import (
	"fmt"
	"math/rand/v2"
	"strconv"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/sim"
)

// Stream salts owned by the health control plane (see the salt ownership
// block in internal/faults/faults.go: faults holds the low range,
// remoting 0x10000+, serve 0x20000+, health 0x30000+). Per-server
// offsets keep every heartbeat stream independent, and none of these
// streams is shared with the transport, so monitoring never perturbs the
// fault schedule the workload draws.
const (
	saltBeatJitter uint64 = 0x30000 // + server id: heartbeat period jitter
	saltBeatDrop   uint64 = 0x31000 // + server id: heartbeat loss coin
)

// heartbeatBytes is the wire size of one heartbeat message; it only
// matters for the (tiny) serialization charge on the fabric path.
const heartbeatBytes = 64

// State is a pool-registry server state.
type State uint8

const (
	// Healthy servers are in rotation and beating on time.
	Healthy State = iota
	// Suspect servers have exceeded the suspicion threshold but could not
	// yet be drained (no live peer, or the pool refused).
	Suspect
	// Draining servers are suspected and have had their handle table
	// migrated to a healthy peer; they are out of rotation.
	Draining
	// Dead servers exceeded the death threshold; the detector history is
	// discarded so a reboot is judged afresh.
	Dead
	// Recovered servers have resumed beating after suspicion or death and
	// are accumulating clean beats before readmission.
	Recovered
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Draining:
		return "draining"
	case Dead:
		return "dead"
	case Recovered:
		return "recovered"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Transition is one registry state change, recorded in order.
type Transition struct {
	Server   int
	From, To State
	At       sim.Time
}

// Registry tracks the control plane's view of every server. The states
// and the transition log belong to the health shard; the degraded count
// is a plain published scalar the serving admission gate reads from its
// own shard — a read-only cross-domain observation, deliberately left
// outside the shard annotation (the engine only samples it, and the
// global event order makes the sample deterministic).
type Registry struct {
	//cdivet:shard(health.plane)
	states []State
	//cdivet:shard(health.plane)
	log []Transition

	degraded int // servers not currently Healthy
}

func newRegistry(n int) *Registry {
	return &Registry{states: make([]State, n)}
}

// set transitions server i to state s, recording the change.
func (r *Registry) set(i int, s State, at sim.Time) {
	from := r.states[i]
	if from == s {
		return
	}
	r.states[i] = s
	r.log = append(r.log, Transition{Server: i, From: from, To: s, At: at})
	if from == Healthy {
		r.degraded++
	}
	if s == Healthy {
		r.degraded--
	}
}

// StateOf returns the current state of server i.
func (r *Registry) StateOf(i int) State { return r.states[i] }

// Log returns the recorded transitions in order.
func (r *Registry) Log() []Transition { return r.log }

// Degraded reports whether any server is currently not Healthy. The
// serving admission gate uses it as the capacity signal that arms load
// shedding.
func (r *Registry) Degraded() bool { return r.degraded > 0 }

// Pool is what the controller needs from the serving pool: rotation
// facts plus the two policy actions. *remoting.Resilient satisfies it.
type Pool interface {
	// Servers is the pool size (primary + standbys).
	Servers() int
	// ActiveServer is the index currently executing calls.
	ActiveServer() int
	// Live reports whether server i is in rotation (not dead or drained).
	Live(i int) bool
	// Drain takes server i out of rotation, migrating its handle table to
	// a live peer; it is an error when no live peer remains.
	Drain(p *sim.Proc, server int) error
	// Readmit returns a drained or dead server to rotation as a blank
	// standby.
	Readmit(server int) error
}

// Config tunes the control plane. The zero value takes defaults for
// every knob except Horizon, which is required.
type Config struct {
	// Seed roots the beat-jitter and beat-loss substreams.
	Seed int64
	// Interval is the heartbeat period. Default 250 µs.
	Interval sim.Duration
	// JitterFrac widens each beat period by a uniform ±fraction, drawn
	// per server from a seeded stream, so beats from different servers do
	// not stay phase-locked. Default 0.1; negative disables jitter.
	JitterFrac float64
	// Window is the detector's inter-arrival sample window. Default 16.
	Window int
	// SuspectPhi is the φ threshold at which a server is suspected and
	// drained. Default 1.5 (≈3% chance the silence is benign).
	SuspectPhi float64
	// DeadPhi is the φ threshold at which a suspected server is declared
	// dead and its detector history discarded. Default 4. Must exceed
	// SuspectPhi.
	DeadPhi float64
	// RecoverBeats is how many consecutive clean evaluator ticks a
	// recovered server must survive before readmission. Default 3.
	RecoverBeats int
	// Horizon stops the monitor: heartbeat and evaluator processes exit
	// at this sim time, letting Env.Run drain. Required.
	Horizon sim.Duration
	// Path is the fabric path heartbeats traverse; its latency and
	// serialization delay beat arrival. The zero Path is a valid
	// zero-latency path.
	Path fabric.Path
	// DropProbability is the chance a heartbeat is lost in transit, drawn
	// from health's own substream so the transport's fault draws are
	// untouched. Zero inherits the injector's message-drop probability;
	// negative disables heartbeat loss.
	DropProbability float64
}

func (c Config) withDefaults(inj *faults.Injector) Config {
	if c.Interval == 0 {
		c.Interval = 250 * sim.Microsecond
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.1
	}
	if c.JitterFrac < 0 {
		c.JitterFrac = 0
	}
	if c.Window == 0 {
		c.Window = 16
	}
	if c.SuspectPhi == 0 {
		c.SuspectPhi = 1.5
	}
	if c.DeadPhi == 0 {
		c.DeadPhi = 4
	}
	if c.RecoverBeats == 0 {
		c.RecoverBeats = 3
	}
	if c.DropProbability == 0 && inj != nil {
		c.DropProbability = inj.Config().DropProbability
	}
	if c.DropProbability < 0 {
		c.DropProbability = 0
	}
	return c
}

func (c Config) validate() error {
	if c.Interval <= 0 {
		return fmt.Errorf("health: non-positive heartbeat interval %v", c.Interval)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("health: monitoring horizon is required")
	}
	if c.SuspectPhi <= 0 || c.DeadPhi <= c.SuspectPhi {
		return fmt.Errorf("health: need 0 < SuspectPhi (%g) < DeadPhi (%g)", c.SuspectPhi, c.DeadPhi)
	}
	if c.RecoverBeats < 1 {
		return fmt.Errorf("health: RecoverBeats %d < 1", c.RecoverBeats)
	}
	if c.DropProbability >= 1 {
		return fmt.Errorf("health: heartbeat drop probability %g >= 1", c.DropProbability)
	}
	if err := c.Path.Validate(); err != nil {
		return fmt.Errorf("health: %w", err)
	}
	return nil
}

// Stats aggregates what the control plane observed and did.
type Stats struct {
	// Beats counts heartbeats delivered; DroppedBeats counts beats lost
	// to link outages, server crashes, or the loss coin.
	Beats        int64
	DroppedBeats int64
	// Suspicions counts Healthy→Suspect transitions; FalseSuspicions the
	// subset raised while the server was not actually inside a crash
	// outage (jitter or beat loss alone crossed the threshold).
	Suspicions      int64
	FalseSuspicions int64
	// Drains, Deaths, Recoveries and Readmissions count the matching
	// registry transitions the controller drove.
	Drains       int64
	Deaths       int64
	Recoveries   int64
	Readmissions int64
	// DetectionCount/DetectionTotal/DetectionMax summarize true-positive
	// detection latency: outage start → suspicion, scored against the
	// injector's own schedule.
	DetectionCount int64
	DetectionTotal sim.Duration
	DetectionMax   sim.Duration
}

// MeanDetection returns the mean true-positive detection latency, or 0
// when nothing was detected.
func (s Stats) MeanDetection() sim.Duration {
	if s.DetectionCount == 0 {
		return 0
	}
	return s.DetectionTotal / sim.Duration(s.DetectionCount)
}

// Controller runs the control plane: one heartbeat process per server
// plus one evaluator, all on a dedicated shard. Heartbeats consult the
// fault injector read-only (link state, server state) and draw loss and
// jitter from health-owned substreams; the evaluator walks the registry
// state machine and calls Drain/Readmit on the pool.
type Controller struct {
	pool Pool
	inj  *faults.Injector
	cfg  Config
	reg  *Registry

	//cdivet:shard(health.plane)
	det []*Detector
	//cdivet:shard(health.plane)
	clean []int // consecutive clean evaluator ticks per Recovered server
	//cdivet:shard(health.plane)
	suspectedAt []sim.Time // when the current suspicion episode began
	//cdivet:shard(health.plane)
	stats Stats

	start sim.Time
}

// Start launches the control plane against pool, reading fault state
// from inj (which may be nil for a fault-free pool). Monitoring stops at
// cfg.Horizon. The controller's processes live on their own shard, so a
// run in which they never act is event-for-event identical, from the
// workload's point of view, to a run without them.
func Start(env *sim.Env, pool Pool, inj *faults.Injector, cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults(inj)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := pool.Servers()
	if n < 1 {
		return nil, fmt.Errorf("health: pool has no servers")
	}
	c := &Controller{
		pool:        pool,
		inj:         inj,
		cfg:         cfg,
		reg:         newRegistry(n),
		det:         make([]*Detector, n),
		clean:       make([]int, n),
		suspectedAt: make([]sim.Time, n),
		start:       env.Now(),
	}
	for i := range c.det {
		c.det[i] = NewDetector(cfg.Window, cfg.Interval)
	}
	shard := env.NewShard() //cdivet:shard(health.plane)
	for i := 0; i < n; i++ {
		shard.Spawn("health-beat-"+strconv.Itoa(i), func(p *sim.Proc) { c.heartbeat(p, i) })
	}
	shard.Spawn("health-eval", c.evaluate)
	return c, nil
}

// Registry returns the controller's pool registry.
func (c *Controller) Registry() *Registry { return c.reg }

// Degraded reports whether the pool currently has a non-healthy server;
// it is the capacity signal the serving admission gate samples.
func (c *Controller) Degraded() bool { return c.reg.Degraded() }

// Stats returns a snapshot of the control plane's counters.
func (c *Controller) Stats() Stats { return c.stats }

// horizonLeft returns how much monitoring time remains at now.
func (c *Controller) horizonLeft(now sim.Time) sim.Duration {
	return c.start.Add(c.cfg.Horizon).Sub(now)
}

// heartbeat emits server i's beat stream until the horizon. A beat is
// lost when the fabric link is down, when the server is crashed, or when
// the loss coin says so; a stalled server delivers late (the beat waits
// out the stall). Delivered beats feed the detector after the path's
// transfer time.
func (c *Controller) heartbeat(p *sim.Proc, i int) {
	jitter := faults.Substream(c.cfg.Seed, saltBeatJitter+uint64(i))
	var drop *rand.Rand
	if c.cfg.DropProbability > 0 {
		drop = faults.Substream(c.cfg.Seed, saltBeatDrop+uint64(i))
	}
	for {
		period := c.cfg.Interval
		if c.cfg.JitterFrac > 0 {
			period = sim.Duration(float64(period) * (1 + c.cfg.JitterFrac*(2*jitter.Float64()-1)))
		}
		if period > c.horizonLeft(p.Now()) {
			return
		}
		p.Sleep(period)
		now := p.Now()
		if c.inj != nil {
			if down, _ := c.inj.LinkDown(now); down {
				c.stats.DroppedBeats++
				continue
			}
			state, until := c.inj.Server(i).StateAt(now)
			switch state {
			case faults.Crashed:
				c.stats.DroppedBeats++
				continue
			case faults.Stalled:
				if wait := until.Sub(now); wait > 0 {
					p.Sleep(wait)
				}
			}
		}
		if drop != nil && drop.Float64() < c.cfg.DropProbability {
			c.stats.DroppedBeats++
			continue
		}
		if d := c.cfg.Path.TransferTime(heartbeatBytes); d > 0 {
			p.Sleep(d)
		}
		c.stats.Beats++
		c.det[i].Observe(p.Now())
	}
}

// evaluate ticks the registry state machine once per heartbeat interval
// until the horizon.
func (c *Controller) evaluate(p *sim.Proc) {
	for {
		if c.cfg.Interval > c.horizonLeft(p.Now()) {
			return
		}
		p.Sleep(c.cfg.Interval)
		now := p.Now()
		for i := range c.det {
			c.step(p, i, now)
		}
	}
}

// step advances server i's state machine at time now.
//
//	Healthy   --φ≥suspect--> Suspect (score detection, try to drain)
//	Suspect   --drained----> Draining
//	Suspect/Draining --φ≥dead--> Dead (detector reset)
//	Suspect/Draining --beat------> Recovered
//	Dead      --beat-------> Recovered
//	Recovered --clean×N----> Healthy (readmit)
//	Recovered --φ≥suspect--> Dead (relapse)
func (c *Controller) step(p *sim.Proc, i int, now sim.Time) {
	phi := c.det[i].Phi(now)
	switch c.reg.StateOf(i) {
	case Healthy:
		if phi < c.cfg.SuspectPhi {
			return
		}
		c.suspect(i, now)
		c.drain(p, i, now)
	case Suspect:
		if c.beatSince(i, c.suspectedAt[i]) {
			c.recover(i, now)
			return
		}
		if phi >= c.cfg.DeadPhi {
			c.die(i, now)
			return
		}
		c.drain(p, i, now) // retry: a peer may have come back
	case Draining:
		if c.beatSince(i, c.suspectedAt[i]) {
			c.recover(i, now)
			return
		}
		if phi >= c.cfg.DeadPhi {
			c.die(i, now)
		}
	case Dead:
		if c.beatSince(i, c.suspectedAt[i]) {
			c.recover(i, now)
		}
	case Recovered:
		if phi >= c.cfg.SuspectPhi {
			c.stats.Deaths++
			c.clean[i] = 0
			c.det[i].Reset()
			c.reg.set(i, Dead, now)
			return
		}
		c.clean[i]++
		if c.clean[i] < c.cfg.RecoverBeats {
			return
		}
		if c.pool.Live(i) {
			// Never drained (no live peer at the time): nothing to readmit.
			c.reg.set(i, Healthy, now)
			return
		}
		if c.pool.Readmit(i) == nil {
			c.stats.Readmissions++
			c.reg.set(i, Healthy, now)
		}
	}
}

// suspect records a new suspicion episode and scores detection latency
// against the injector's own outage schedule.
func (c *Controller) suspect(i int, now sim.Time) {
	c.stats.Suspicions++
	c.suspectedAt[i] = now
	c.reg.set(i, Suspect, now)
	if c.inj == nil {
		c.stats.FalseSuspicions++
		return
	}
	if start, _, down := c.inj.Server(i).OutageAt(now); down {
		lat := now.Sub(start)
		c.stats.DetectionCount++
		c.stats.DetectionTotal += lat
		if lat > c.stats.DetectionMax {
			c.stats.DetectionMax = lat
		}
	} else {
		c.stats.FalseSuspicions++
	}
}

// drain tries to take a suspected server out of rotation; on success the
// server moves to Draining. Failure (no live peer, pool degraded) leaves
// it Suspect for a retry on the next tick.
func (c *Controller) drain(p *sim.Proc, i int, now sim.Time) {
	if err := c.pool.Drain(p, i); err != nil {
		return
	}
	c.stats.Drains++
	c.reg.set(i, Draining, now)
}

// die declares server i dead and discards its detector history, so the
// rebooted server's beat stream is judged against the prior.
func (c *Controller) die(i int, now sim.Time) {
	c.stats.Deaths++
	c.det[i].Reset()
	c.reg.set(i, Dead, now)
}

// recover marks a beat-resuming server Recovered and starts its clean
// streak.
func (c *Controller) recover(i int, now sim.Time) {
	c.stats.Recoveries++
	c.clean[i] = 0
	c.reg.set(i, Recovered, now)
}

// beatSince reports whether server i has delivered a beat after t.
func (c *Controller) beatSince(i int, t sim.Time) bool {
	last, ok := c.det[i].Last()
	return ok && last.Sub(t) > 0
}
