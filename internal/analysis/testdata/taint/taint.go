// Package corpus exercises the cross-package taint rule: nondeterministic
// values minted in the producer subpackage (or locally) are reported only
// where they reach a result-emitting sink.
package corpus

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/corpus/producer"
)

// EmitArbitrary publishes a map-order-dependent value produced one package
// away — the case the per-file maporder rule provably misses.
func EmitArbitrary(m map[string]int) {
	k := producer.ArbitraryKey(m)
	fmt.Println(k) // want
}

// EmitFloatSum publishes an order-sensitive float accumulation.
func EmitFloatSum(m map[string]float64) {
	fmt.Println(producer.FloatSum(m)) // want
}

// EmitSorted is clean: the producer sorted before returning.
func EmitSorted(m map[string]int) {
	for _, k := range producer.SortedKeys(m) {
		fmt.Println(k)
	}
}

// EmitCount is clean: integer accumulation is commutative.
func EmitCount(m map[string]int) {
	fmt.Println(producer.Count(m))
}

// EmitLocalRange publishes a key straight out of a local map walk.
func EmitLocalRange(m map[int]bool) {
	for k := range m {
		fmt.Println(k) // want
	}
}

// EmitWallClock publishes a wall-clock read through a local variable and a
// method call on it.
func EmitWallClock() {
	t := time.Now()
	fmt.Println(t.Unix()) // want
}

// EmitGlobalRand publishes a draw from the shared global stream.
func EmitGlobalRand() {
	fmt.Println(rand.Intn(10)) // want
}

// EmitSeededRand is clean: an explicit stream is deterministic under its
// seed.
func EmitSeededRand() {
	r := rand.New(rand.NewSource(1))
	fmt.Println(r.Intn(10))
}

// FillMap is clean: writing m2[k] under a map range yields the same map
// contents in any order.
func FillMap(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v
	}
	return out
}

// EmitLen is clean: len() of a map carries no order.
func EmitLen(m map[string]int) {
	fmt.Println(len(m))
}

// ReassignClean is clean: a strong update with a deterministic value clears
// the taint before the sink.
func ReassignClean(m map[string]int) {
	k := producer.ArbitraryKey(m)
	k = "fixed"
	fmt.Println(k)
}
