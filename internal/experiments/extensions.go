package experiments

// Extensions beyond the paper's published evaluation: experiments the
// paper describes as future work or as assumptions, runnable here because
// the whole stack is simulated.
//
//   - AppSlackValidation injects slack directly into the production
//     workloads and compares the measured penalty against the model's
//     prediction — the validation the paper defers to "once CDI hardware
//     is available".
//   - Congestion stresses the "network channel congestion is a non-issue"
//     assumption with a shared chassis uplink.
//   - Remoting quantifies why rCUDA-style forwarding was rejected as the
//     measurement instrument.
//   - WeakScaling exercises the paper's claim that the single-GPU ratio
//     study "can inform weak scaling".
//   - Reach turns the penalty model into a distance budget per application.

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cosmoflow"
	"repro/internal/cuda"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/lammps"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/proxy"
	"repro/internal/remoting"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/slack"
	"repro/internal/trace"
)

// AppValidationRow compares measured vs predicted penalty for one app at
// one slack value.
type AppValidationRow struct {
	App      string
	Slack    sim.Duration
	Measured float64
	Lower    float64
	Upper    float64
}

// AppSlackValidation runs LAMMPS with slack injected on every rank's CUDA
// calls, applies Equation 1 to the measured runtime, and compares the
// residual against the model's prediction from the zero-slack trace.
func AppSlackValidation(o Options, slacks []sim.Duration) ([]AppValidationRow, error) {
	o = o.withDefaults()
	if len(slacks) == 0 {
		slacks = []sim.Duration{100 * sim.Microsecond, 10 * sim.Millisecond}
	}
	lcfg := lammps.PerfConfig{BoxSize: 60, Procs: 8, Steps: o.LAMMPSSteps}
	lcfg.Record = true
	ccfg := cosmoflow.PerfConfig{
		Epochs: o.CosmoEpochs, TrainSamples: o.CosmoSamples, ValSamples: o.CosmoSamples / 2,
	}
	ccfg.Record = true

	// Calibration and the two zero-slack baselines are independent.
	var (
		study *core.Study
		lbase lammps.PerfResult
		cbase cosmoflow.PerfResult
	)
	err := runner.Go(o.Jobs,
		func() error {
			var err error
			study, err = core.NewStudy(core.StudyConfig{
				Sizes:   []int{1 << 9, 1 << 11, 1 << 13},
				Threads: []int{1, 4, 8},
				Iters:   o.ProxyIters,
				Jobs:    1, // inner grid stays serial; the outer pool owns the parallelism
			})
			return err
		},
		func() error {
			var err error
			lbase, err = lammps.RunPerf(lcfg)
			return err
		},
		func() error {
			var err error
			cbase, err = cosmoflow.RunPerf(ccfg)
			return err
		},
	)
	if err != nil {
		return nil, err
	}
	lapp := model.ProfileFromTrace(lbase.Trace, lcfg.Procs)
	capp := model.ProfileFromTrace(cbase.Trace, 4)

	// One point per (app, slack): LAMMPS carries its slack share on every
	// rank's serial path for Equation 1; CosmoFlow's single worker puts
	// every delayed call on one serial path.
	return runner.Map(o.Jobs, 2*len(slacks), func(i int) (AppValidationRow, error) {
		sl := slacks[i%len(slacks)]
		if i < len(slacks) {
			runCfg := lcfg
			runCfg.Record = false
			runCfg.Slack = sl
			run, err := lammps.RunPerf(runCfg)
			if err != nil {
				return AppValidationRow{}, err
			}
			perRank := run.DelayedCalls / int64(lcfg.Procs)
			corrected := model.NoSlackTime(run.Runtime, perRank, sl)
			measured := float64(corrected)/float64(lbase.Runtime) - 1
			if measured < 0 {
				measured = 0
			}
			pred, err := study.Surface.Predict(lapp, sl)
			if err != nil {
				return AppValidationRow{}, err
			}
			return AppValidationRow{
				App: "lammps", Slack: sl,
				Measured: measured, Lower: pred.Lower, Upper: pred.Upper,
			}, nil
		}
		runCfg := ccfg
		runCfg.Record = false
		runCfg.Slack = sl
		run, err := cosmoflow.RunPerf(runCfg)
		if err != nil {
			return AppValidationRow{}, err
		}
		corrected := model.NoSlackTime(run.Runtime, run.DelayedCalls, sl)
		measured := float64(corrected)/float64(cbase.Runtime) - 1
		if measured < 0 {
			measured = 0
		}
		pred, err := study.Surface.Predict(capp, sl)
		if err != nil {
			return AppValidationRow{}, err
		}
		return AppValidationRow{
			App: "cosmoflow", Slack: sl,
			Measured: measured, Lower: pred.Lower, Upper: pred.Upper,
		}, nil
	})
}

// RenderAppValidation formats the in-situ validation.
func RenderAppValidation(rows []AppValidationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "In-situ slack validation (extension of §IV-D / future work):\n")
	fmt.Fprintf(&b, "slack injected directly into every rank's CUDA calls, Equation 1 applied\n")
	fmt.Fprintf(&b, "%-10s %-10s %-12s %-12s %-12s\n", "app", "slack", "measured", "pred lower", "pred upper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-10v %-12.5f %-12.5f %-12.5f\n",
			r.App, r.Slack, r.Measured, r.Lower, r.Upper)
	}
	return b.String()
}

// Congestion sweeps host count on a shared chassis uplink.
func Congestion(o Options) ([]fabric.CongestionPoint, error) {
	return fabric.CongestionSweepParallel(
		[]int{1, 2, 4, 8, 16, 32},
		10<<20,            // 10 MiB position/force-sized transfers
		2*sim.Millisecond, // per-step think time
		1*sim.Microsecond,
		23e9,
		40,
		o.Jobs,
	)
}

// RenderCongestion formats the sweep.
func RenderCongestion(pts []fabric.CongestionPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chassis-uplink congestion (tests the paper's \"congestion is a non-issue\" assumption):\n")
	fmt.Fprintf(&b, "%-8s %-14s %-16s %-16s\n", "hosts", "utilization", "mean queueing", "slack inflation")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-8d %-14.3f %-16v %-16.3f\n",
			p.Hosts, p.Utilization, p.MeanQueueing, p.SlackInflation)
	}
	return b.String()
}

// RemotingComparison contrasts controlled injection with rCUDA-style
// forwarding at row scale, with and without network noise.
func RemotingComparison(o Options) ([]remoting.CompareResult, error) {
	iters := o.ProxyIters
	if iters <= 0 {
		iters = 50
	}
	noises := []float64{0, 0.3}
	return runner.Map(o.Jobs, len(noises), func(i int) (remoting.CompareResult, error) {
		return remoting.Compare(2048, iters, remoting.Config{
			Path:          fabric.Preset(fabric.RowScale, 0),
			NoiseFraction: noises[i],
			Seed:          42,
		})
	})
}

// RenderRemoting formats the comparison.
func RenderRemoting(results []remoting.CompareResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "API remoting vs controlled injection (why §III-B rejects rCUDA-style tools):\n")
	fmt.Fprintf(&b, "%-8s %-14s %-16s %-16s %-16s %-16s %-16s\n",
		"noise", "nominal slack", "mean call delay", "remoted mean", "remoted stddev", "injected mean", "injected stddev")
	noise := []string{"off", "±30%"}
	for i, r := range results {
		fmt.Fprintf(&b, "%-8s %-14v %-16v %-16v %-16v %-16v %-16v\n",
			noise[i], r.NominalSlack, r.MeanCallDelay, r.RemotedMean, r.RemotedStddev,
			r.InjectedMean, r.InjectedStddev)
	}
	b.WriteString("the remoted per-call delay drifts with payload and noise; the injected arm stays controlled.\n")
	return b.String()
}

// WeakScalingRow is one weak-scaling measurement: atoms per rank held
// constant while ranks grow.
type WeakScalingRow struct {
	BoxSize      int
	Procs        int
	AtomsPerRank int
	StepTime     sim.Duration
	// Efficiency is stepTime(1 rank) / stepTime(P ranks): 1.0 = perfect.
	Efficiency float64
}

// WeakScaling grows the box with the rank count (box ∝ P^(1/3)) so each
// rank keeps ≈ 256k atoms — the weak-scaling reading the paper says its
// ratio study informs.
func WeakScaling(o Options) ([]WeakScalingRow, error) {
	o = o.withDefaults()
	shapes := []struct{ box, procs int }{
		{40, 1}, {80, 8}, {120, 27},
	}
	rows, err := runner.Map(o.Jobs, len(shapes), func(i int) (WeakScalingRow, error) {
		s := shapes[i]
		r, err := lammps.RunPerf(lammps.PerfConfig{BoxSize: s.box, Procs: s.procs, Steps: o.LAMMPSSteps})
		if err != nil {
			return WeakScalingRow{}, err
		}
		return WeakScalingRow{
			BoxSize:      s.box,
			Procs:        s.procs,
			AtomsPerRank: r.Atoms / s.procs,
			StepTime:     r.StepTime,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	// shapes[0] is the single-rank reference, so efficiency is a pure
	// post-pass over the merged rows.
	base := rows[0].StepTime
	for i := range rows {
		rows[i].Efficiency = float64(base) / float64(rows[i].StepTime)
	}
	return rows, nil
}

// RenderWeakScaling formats the weak-scaling table.
func RenderWeakScaling(rows []WeakScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "LAMMPS weak scaling (≈256k atoms per rank):\n")
	fmt.Fprintf(&b, "%-8s %-8s %-14s %-12s %-12s\n", "box", "procs", "atoms/rank", "step", "efficiency")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %-8d %-14d %-12v %-12.3f\n",
			r.BoxSize, r.Procs, r.AtomsPerRank, r.StepTime, r.Efficiency)
	}
	return b.String()
}

// ReachRow is one distance-budget evaluation.
type ReachRow struct {
	App     string
	Km      float64
	Slack   sim.Duration
	Upper   float64
	Within1 bool
}

// Reach evaluates both applications' pessimistic penalty as a function of
// fibre distance — the cluster-scale question the conclusions raise.
func Reach(o Options, tr Traces) ([]ReachRow, error) {
	blocks := []struct {
		tr  *trace.Trace
		par int
	}{{tr.LAMMPS, 8}, {tr.CosmoFlow, 4}}
	study, err := core.NewStudy(core.StudyConfig{
		Sizes:   []int{1 << 9, 1 << 11, 1 << 13},
		Threads: []int{1, 4, 8},
		Iters:   o.ProxyIters,
		Jobs:    o.Jobs,
	})
	if err != nil {
		return nil, err
	}
	kms := []float64{0.05, 1, 5, 20, 100, 500, 2000}
	apps := make([]model.AppProfile, len(blocks))
	for i, blk := range blocks {
		apps[i] = model.ProfileFromTrace(blk.tr, blk.par)
	}
	// Predictions over the (app, km) grid are independent surface reads.
	return runner.Map(o.Jobs, len(blocks)*len(kms), func(i int) (ReachRow, error) {
		blk, km := blocks[i/len(kms)], kms[i%len(kms)]
		slack := fabric.PropagationDelay(km)
		pred, err := study.Surface.Predict(apps[i/len(kms)], slack)
		if err != nil {
			return ReachRow{}, err
		}
		return ReachRow{
			App: blk.tr.Label, Km: km, Slack: slack,
			Upper: pred.Upper, Within1: pred.Upper < 0.01,
		}, nil
	})
}

// RenderReach formats the distance budget.
func RenderReach(rows []ReachRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Distance budget (conclusions: 100µs ⇒ 20km before other effects):\n")
	fmt.Fprintf(&b, "%-12s %-10s %-10s %-12s %-8s\n", "app", "km", "slack", "upper", "<1%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-10g %-10v %-12.5f %-8v\n",
			r.App, r.Km, r.Slack, r.Upper, r.Within1)
	}
	return b.String()
}

// ProxyKernelMeans exposes per-size in-loop kernel durations for docs and
// debugging of the binning tolerance.
func ProxyKernelMeans(o Options) (map[int]sim.Duration, error) {
	sizes := proxy.PaperSizes()[:3]
	means, err := runner.Map(o.Jobs, len(sizes), func(i int) (sim.Duration, error) {
		r, err := proxy.Run(proxy.Config{MatrixSize: sizes[i], Iters: o.ProxyIters, Record: true})
		if err != nil {
			return 0, err
		}
		durs := r.Trace.KernelDurations()
		var sum float64
		for _, d := range durs {
			sum += d
		}
		return sim.Duration(sum / float64(len(durs))), nil
	})
	if err != nil {
		return nil, err
	}
	out := map[int]sim.Duration{}
	for i, n := range sizes {
		out[n] = means[i]
	}
	return out, nil
}

// ThroughputRow aggregates one architecture's batch-scheduling outcome.
type ThroughputRow struct {
	Arch        string
	Makespan    sim.Duration
	MeanWait    sim.Duration
	GPUEnergyWh float64
}

// Throughput schedules the same mixed job stream (CPU-dominant,
// GPU-dominant, balanced — the paper's framing) on equal-hardware
// traditional and CDI machines and aggregates over several seeds — the
// introduction's job-throughput and energy claims, quantified.
func Throughput(o Options) ([]ThroughputRow, error) {
	const seeds = 5
	cmps, err := runner.Map(o.Jobs, seeds, func(i int) (sched.Comparison, error) {
		seed := int64(i + 1)
		jobs := sched.WorkloadMix(40, 24, seed)
		return sched.Compare(jobs, 8, 24, 2, sched.Backfill)
	})
	if err != nil {
		return nil, err
	}
	// Accumulate in seed order so the float sums are bit-identical to the
	// serial loop regardless of which worker finished first.
	var trad, cdi ThroughputRow
	trad.Arch, cdi.Arch = "traditional", "cdi"
	for _, cmp := range cmps {
		trad.Makespan += cmp.Traditional.Makespan / seeds
		cdi.Makespan += cmp.CDI.Makespan / seeds
		trad.MeanWait += cmp.Traditional.MeanWait / seeds
		cdi.MeanWait += cmp.CDI.MeanWait / seeds
		trad.GPUEnergyWh += cmp.Traditional.GPUEnergyWh / seeds
		cdi.GPUEnergyWh += cmp.CDI.GPUEnergyWh / seeds
	}
	return []ThroughputRow{trad, cdi}, nil
}

// RenderThroughput formats the batch comparison.
func RenderThroughput(rows []ThroughputRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Batch throughput on a mixed queue (introduction's efficiency claims, 5-seed mean):\n")
	fmt.Fprintf(&b, "%-14s %-14s %-14s %-14s\n", "architecture", "makespan", "mean wait", "GPU energy")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-14v %-14v %-10.1f Wh\n", r.Arch, r.Makespan, r.MeanWait, r.GPUEnergyWh)
	}
	return b.String()
}

// CouplingRow is one interconnect choice's multi-GPU training outcome.
type CouplingRow struct {
	Interconnect string
	GPUs         int
	Runtime      sim.Duration
	StepTime     sim.Duration
}

// ChassisCoupling runs multi-GPU CosmoFlow with the gradient allreduce on
// three interconnects — NVLink-coupled chassis, intra-node shared memory,
// and inter-node network — quantifying the Discussion's claim that a CDI
// chassis "can greatly increase the performance of CPU asynchronous
// operations such as GPU-to-GPU collective operations".
func ChassisCoupling(o Options) ([]CouplingRow, error) {
	o = o.withDefaults()
	const gpus = 4
	cases := []struct {
		name string
		cost mpi.CostModel
	}{
		{"nvlink-chassis", mpi.NVLink()},
		{"intra-node", mpi.IntraNode()},
		{"inter-node", mpi.InterNode()},
	}
	return runner.Map(o.Jobs, len(cases), func(i int) (CouplingRow, error) {
		c := cases[i]
		r, err := cosmoflow.RunPerf(cosmoflow.PerfConfig{
			GPUs: gpus, Epochs: o.CosmoEpochs,
			TrainSamples: o.CosmoSamples * gpus, ValSamples: o.CosmoSamples,
			Interconnect: c.cost,
		})
		if err != nil {
			return CouplingRow{}, err
		}
		return CouplingRow{
			Interconnect: c.name, GPUs: gpus,
			Runtime: r.Runtime, StepTime: r.StepTime,
		}, nil
	})
}

// RenderChassisCoupling formats the comparison.
func RenderChassisCoupling(rows []CouplingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "GPU-to-GPU coupling (Discussion: chassis-coupled collectives are faster):\n")
	fmt.Fprintf(&b, "%-16s %-6s %-12s %-12s\n", "interconnect", "gpus", "runtime", "step")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-6d %-12v %-12v\n", r.Interconnect, r.GPUs, r.Runtime, r.StepTime)
	}
	return b.String()
}

// PreloadRow compares full injection against an LD_PRELOAD-style shim.
type PreloadRow struct {
	Coverage     string
	DelayedCalls int64
	Penalty      float64
}

// PreloadComparison reproduces §IV-D's aside: "preliminary tests were also
// done with the LD_PRELOAD method ... the results generally agreed", while
// §III-B warns that "complete confidence in coverage of API calls is
// difficult". A shim wrapping only the memcpy symbols misses launch and
// synchronize calls; the comparison quantifies both the agreement and the
// under-injection.
func PreloadComparison(o Options) ([]PreloadRow, error) {
	iters := o.ProxyIters
	if iters <= 0 {
		iters = 30
	}
	const (
		size  = 1 << 11
		slack = 1 * sim.Millisecond
	)
	var base, full, partial proxy.Result
	err := runner.Go(o.Jobs,
		func() error {
			var err error
			base, err = proxy.Run(proxy.Config{MatrixSize: size, Iters: iters})
			return err
		},
		func() error {
			var err error
			full, err = proxy.Run(proxy.Config{MatrixSize: size, Iters: iters, Slack: slack})
			return err
		},
		func() error {
			var err error
			partial, err = runPreloadProxy(size, iters, slack)
			return err
		},
	)
	if err != nil {
		return nil, err
	}
	return []PreloadRow{
		{Coverage: "all-calls", DelayedCalls: full.DelayedCalls, Penalty: proxy.Penalty(base, full)},
		{Coverage: "memcpy-only", DelayedCalls: partial.DelayedCalls, Penalty: proxy.Penalty(base, partial)},
	}, nil
}

// runPreloadProxy reruns the proxy loop with an LD_PRELOAD-style injector
// that only wraps the synchronous memcpy symbols.
func runPreloadProxy(size, iters int, sl sim.Duration) (proxy.Result, error) {
	// The proxy package owns the loop; emulate the shim by restricting the
	// injector's symbols via the slack package's own filter through a
	// custom run. The proxy's injector is internal, so run the equivalent
	// loop here through the public pieces.
	env := sim.NewEnv()
	defer env.Close()
	dev, err := gpu.NewDevice(env, gpu.A100())
	if err != nil {
		return proxy.Result{}, err
	}
	ctx := cuda.NewContext(dev, cuda.Config{})
	inj := slack.New(sl, slack.WithSymbols("cudaMemcpy(HtoD)", "cudaMemcpy(DtoH)"))
	ctx.Interpose(inj)

	res := proxy.Result{MatrixSize: size, Threads: 1, Slack: sl, Iters: iters}
	matBytes := gpu.MatrixBytes(size)
	kernel := gpu.MatMul(size)
	var runErr error
	env.Spawn("omp0", func(p *sim.Proc) {
		a, _ := ctx.Malloc(p, matBytes)
		b, _ := ctx.Malloc(p, matBytes)
		c, _ := ctx.Malloc(p, matBytes)
		start := p.Now()
		for i := 0; i < iters; i++ {
			if err := ctx.MemcpyH2D(p, a, matBytes); err != nil {
				runErr = err
				return
			}
			if err := ctx.MemcpyH2D(p, b, matBytes); err != nil {
				runErr = err
				return
			}
			ctx.LaunchSync(p, kernel, nil)
			ctx.DeviceSynchronize(p)
			if err := ctx.MemcpyD2H(p, c, matBytes); err != nil {
				runErr = err
				return
			}
		}
		res.LoopTime = p.Now().Sub(start)
	})
	env.Run()
	if runErr != nil {
		return proxy.Result{}, runErr
	}
	res.DelayedCalls = inj.DelayedCalls()
	// Equation 1 with the shim's actual coverage (3 calls/iteration).
	res.CorrectedTime = res.LoopTime - sim.Duration(res.DelayedCalls)*sl
	return res, nil
}

// RenderPreload formats the comparison.
func RenderPreload(rows []PreloadRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "LD_PRELOAD-style shim vs full injection (§III-B / §IV-D):\n")
	fmt.Fprintf(&b, "%-14s %-14s %-10s\n", "coverage", "delayed calls", "penalty")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-14d %-10.5f\n", r.Coverage, r.DelayedCalls, r.Penalty)
	}
	b.WriteString("the shim misses launch/sync symbols: fewer injections, same residual trend.\n")
	return b.String()
}

// ScaleRow is one deployment scale's end-to-end outcome.
type ScaleRow struct {
	Scale   fabric.Scale
	Slack   sim.Duration
	Runtime sim.Duration
	// Overhead is runtime/node-local − 1: everything the deployment adds,
	// direct network delay included (the paper's Equation 1 would remove
	// the direct part; here we show the raw, user-visible cost).
	Overhead float64
}

// DeploymentScales runs LAMMPS end to end under each composition scale's
// actual slack (node-local, rack, row, cluster at 20 km) — the whole study
// compressed to one table: what a user would experience moving the same
// job further from its GPU.
func DeploymentScales(o Options) ([]ScaleRow, error) {
	o = o.withDefaults()
	cases := []struct {
		scale fabric.Scale
		km    float64
	}{
		{fabric.NodeLocal, 0},
		{fabric.RackScale, 0},
		{fabric.RowScale, 0},
		{fabric.ClusterScale, 20},
	}
	rows, err := runner.Map(o.Jobs, len(cases), func(i int) (ScaleRow, error) {
		c := cases[i]
		slackAmt := fabric.SlackForPath(fabric.Preset(c.scale, c.km))
		r, err := lammps.RunPerf(lammps.PerfConfig{
			BoxSize: 60, Procs: 8, Steps: o.LAMMPSSteps, Slack: slackAmt,
		})
		if err != nil {
			return ScaleRow{}, err
		}
		return ScaleRow{
			Scale:   c.scale,
			Slack:   slackAmt,
			Runtime: r.Runtime,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	// cases[0] is node-local, so the overhead column is a post-pass against
	// the merged first row.
	base := rows[0].Runtime
	for i := range rows {
		rows[i].Overhead = float64(rows[i].Runtime)/float64(base) - 1
	}
	return rows, nil
}

// RenderDeploymentScales formats the table.
func RenderDeploymentScales(rows []ScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "LAMMPS under each deployment scale's slack (box 60, 8 ranks; raw user-visible cost):\n")
	fmt.Fprintf(&b, "%-16s %-12s %-12s %-10s\n", "scale", "slack", "runtime", "overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16v %-12v %-12v %+.3f%%\n", r.Scale, r.Slack, r.Runtime, r.Overhead*100)
	}
	return b.String()
}
