package cdi_test

import (
	"fmt"

	cdi "repro"
)

// The full methodology in four lines: calibrate, profile, assess.
func Example() {
	study, err := cdi.NewStudy(cdi.StudyConfig{
		Sizes:   []int{1 << 9, 1 << 11},
		Threads: []int{1, 8},
		Iters:   10, // tiny calibration for the example; omit for full runs
	})
	if err != nil {
		panic(err)
	}
	app, _, err := study.Profile(cdi.LAMMPSWorkload{
		Config: cdi.LAMMPSConfig{BoxSize: 60, Procs: 8, Steps: 10},
	})
	if err != nil {
		panic(err)
	}
	verdict, err := study.Assess(app)
	if err != nil {
		panic(err)
	}
	fmt.Printf("viable at %v (%.0f km): %v\n", verdict.Slack, verdict.ReachKm, verdict.Viable)
	// Output: viable at 100µs (20 km): true
}

// Slack corresponds to physical distance: the paper's headline conversion.
func ExampleDistanceForSlack() {
	km := cdi.DistanceForSlack(100 * cdi.Microsecond)
	fmt.Printf("100µs of slack ≈ %.0f km of fibre\n", km)
	// Output: 100µs of slack ≈ 20 km of fibre
}

// The slack proxy measures how much a workload shape suffers under
// injected delay (Equation 1 removes the direct delay first).
func ExampleRunProxy() {
	base, err := cdi.RunProxy(cdi.ProxyConfig{MatrixSize: 1 << 11, Iters: 10})
	if err != nil {
		panic(err)
	}
	run, err := cdi.RunProxy(cdi.ProxyConfig{MatrixSize: 1 << 11, Iters: 10, Slack: 10 * cdi.Millisecond})
	if err != nil {
		panic(err)
	}
	fmt.Printf("starved: %v\n", cdi.ProxyPenalty(base, run) > 0.5)
	// Output: starved: true
}

// Composing resources to a job's exact ratio leaves no trapped GPUs.
func ExampleNewCDISystem() {
	sys, err := cdi.NewCDISystem(4, 12, 1, 4, cdi.FabricPreset(cdi.RowScale, 0))
	if err != nil {
		panic(err)
	}
	alloc, err := sys.Alloc(cdi.ComposeRequest{Name: "lammps", Cores: 48, GPUs: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("trapped GPUs: %d, free for others: %d\n", alloc.TrappedGPUs, sys.FreeGPUs())
	// Output: trapped GPUs: 0, free for others: 3
}
