// Package cosmoflow implements a miniature of the CosmoFlow benchmark the
// paper profiles: a 3-D convolutional network that regresses cosmological
// parameters from voxelized dark-matter density volumes, trained with
// data-parallel workers synchronized by Horovod-style allreduce.
//
// Like the LAMMPS mini-app it has two modes: numeric (this file and
// net.go — real conv3d/pool/dense forward and backward passes on the CPU,
// validated by finite-difference gradient checks) and performance
// (perf.go — the same training loop driven through the simulated
// CUDA/GPU/Horovod substrates with cost models, reproducing the paper's
// trace and CPU-affinity experiments).
package cosmoflow

import (
	"fmt"
	"math/rand"
)

// Tensor is a dense 4-D array in [channel][depth][height][width] layout.
type Tensor struct {
	C, D, H, W int
	Data       []float64
}

// NewTensor allocates a zero tensor of the given shape.
func NewTensor(c, d, h, w int) *Tensor {
	if c <= 0 || d <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("cosmoflow: invalid tensor shape %d×%d×%d×%d", c, d, h, w))
	}
	return &Tensor{C: c, D: d, H: h, W: w, Data: make([]float64, c*d*h*w)}
}

// Len returns the element count.
func (t *Tensor) Len() int { return len(t.Data) }

// idx returns the flat index of (c, z, y, x).
func (t *Tensor) idx(c, z, y, x int) int {
	return ((c*t.D+z)*t.H+y)*t.W + x
}

// At returns the element at (c, z, y, x).
func (t *Tensor) At(c, z, y, x int) float64 { return t.Data[t.idx(c, z, y, x)] }

// Set stores v at (c, z, y, x).
func (t *Tensor) Set(c, z, y, x int, v float64) { t.Data[t.idx(c, z, y, x)] = v }

// atPadded returns the element at (c, z, y, x) or 0 outside the volume
// (zero padding).
func (t *Tensor) atPadded(c, z, y, x int) float64 {
	if z < 0 || z >= t.D || y < 0 || y >= t.H || x < 0 || x >= t.W {
		return 0
	}
	return t.Data[t.idx(c, z, y, x)]
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := NewTensor(t.C, t.D, t.H, t.W)
	copy(out.Data, t.Data)
	return out
}

// Fill sets every element from the generator.
func (t *Tensor) Fill(f func() float64) {
	for i := range t.Data {
		t.Data[i] = f()
	}
}

// SameShape reports whether u has the same shape as t.
func (t *Tensor) SameShape(u *Tensor) bool {
	return t.C == u.C && t.D == u.D && t.H == u.H && t.W == u.W
}

// RandomVolume generates a synthetic "universe": smoothed Gaussian noise,
// a stand-in for the N-body density volumes of the CosmoFlow dataset.
func RandomVolume(c, side int, rng *rand.Rand) *Tensor {
	t := NewTensor(c, side, side, side)
	t.Fill(rng.NormFloat64)
	return t
}
