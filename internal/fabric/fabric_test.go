package fabric

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPropagationDelayHeadlineConversion(t *testing.T) {
	// The paper: 100 µs of slack ⇒ 20 km of fibre.
	if got := PropagationDelay(20); math.Abs(float64(got-100*sim.Microsecond)) > 1e-15 {
		t.Errorf("PropagationDelay(20km) = %v, want 100µs", got)
	}
	if got := DistanceForDelay(100 * sim.Microsecond); math.Abs(got-20) > 1e-9 {
		t.Errorf("DistanceForDelay(100µs) = %v km, want 20", got)
	}
}

func TestPropagationRoundTripInverse(t *testing.T) {
	f := func(raw uint32) bool {
		km := float64(raw%100000) / 10
		d := PropagationDelay(km)
		return math.Abs(DistanceForDelay(d)-km) < 1e-9*(km+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValidatedConstructorPath(t *testing.T) {
	// Constructors return recoverable errors on invalid input...
	if _, err := PathForSlack(-1); err == nil {
		t.Error("PathForSlack(-1) accepted")
	}
	if _, err := NewPath(Hop{Name: "bad", Latency: -sim.Microsecond}); err == nil {
		t.Error("NewPath with negative latency accepted")
	}
	if _, err := NewPath(Hop{Name: "bad", Bandwidth: -1}); err == nil {
		t.Error("NewPath with negative bandwidth accepted")
	}
	if p, err := NewPath(Hop{Name: "ok", Latency: sim.Microsecond, Bandwidth: 1e9}); err != nil || len(p.Hops) != 1 {
		t.Errorf("valid path rejected: %v", err)
	}
	// ...while the scalar converters are total: negative inputs clamp.
	if got := PropagationDelay(-1); got != 0 {
		t.Errorf("PropagationDelay(-1) = %v, want 0", got)
	}
	if got := DistanceForDelay(-1); got != 0 {
		t.Errorf("DistanceForDelay(-1) = %v, want 0", got)
	}
	if got := (Path{}).TransferTime(-1); got != 0 {
		t.Errorf("TransferTime(-1) = %v, want 0", got)
	}
}


func TestPathLatencySumsHops(t *testing.T) {
	p := Path{Hops: []Hop{
		{Name: "a", Latency: 1 * sim.Microsecond},
		{Name: "b", Latency: 2 * sim.Microsecond},
	}}
	if got := p.Latency(); got != 3*sim.Microsecond {
		t.Errorf("Latency = %v", got)
	}
	if got := p.RoundTrip(); got != 6*sim.Microsecond {
		t.Errorf("RoundTrip = %v", got)
	}
}

func TestTransferTimeAddsSerialization(t *testing.T) {
	p := Path{Hops: []Hop{
		{Name: "nic", Latency: 1 * sim.Microsecond, Bandwidth: 1e9}, // 1 GB/s
		{Name: "wire", Latency: 1 * sim.Microsecond},
	}}
	// 1 MB at 1 GB/s = 1 ms serialization + 2 µs latency.
	got := p.TransferTime(1_000_000)
	want := 1*sim.Millisecond + 2*sim.Microsecond
	if math.Abs(float64(got-want)) > 1e-12 {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
	// Zero payload reduces to pure latency.
	if got := p.TransferTime(0); got != p.Latency() {
		t.Errorf("TransferTime(0) = %v, want %v", got, p.Latency())
	}
}

func TestScaleStrings(t *testing.T) {
	cases := map[Scale]string{
		NodeLocal:    "node-local",
		RackScale:    "rack-scale",
		RowScale:     "row-scale",
		ClusterScale: "cluster-scale",
		Scale(99):    "Scale(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestPresetSlackOrdering(t *testing.T) {
	// Slack must strictly grow with scale.
	node := SlackForPath(Preset(NodeLocal, 0))
	rack := SlackForPath(Preset(RackScale, 0))
	row := SlackForPath(Preset(RowScale, 0))
	cluster := SlackForPath(Preset(ClusterScale, 0))
	if node != 0 {
		t.Errorf("node-local slack = %v, want 0", node)
	}
	if !(rack > node && row > rack && cluster > row) {
		t.Errorf("slack ordering violated: %v %v %v %v", node, rack, row, cluster)
	}
}

func TestPresetRowScaleMagnitude(t *testing.T) {
	// The paper cites ~1 µs half-round-trip for modern HPC networks; the
	// row-scale preset at default distance must land in that regime
	// (0.5–5 µs one way).
	slack := SlackForPath(Preset(RowScale, 0))
	if slack < 500*sim.Nanosecond || slack > 5*sim.Microsecond {
		t.Errorf("row-scale slack = %v, want O(1µs)", slack)
	}
}

func TestPresetDistanceDominatesAtClusterScale(t *testing.T) {
	near := SlackForPath(Preset(ClusterScale, 0.5))
	far := SlackForPath(Preset(ClusterScale, 20))
	if far-near < 90*sim.Microsecond {
		t.Errorf("20km vs 0.5km adds only %v, want ≈97.5µs", far-near)
	}
}

func TestPresetUnknownScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown scale did not panic")
		}
	}()
	Preset(Scale(42), 0)
}

func TestPathForSlack(t *testing.T) {
	zero, err := PathForSlack(0)
	if err != nil || len(zero.Hops) != 0 {
		t.Errorf("PathForSlack(0) = %v, %v", zero, err)
	}
	if got := SlackForPath(zero); got != 0 {
		t.Errorf("zero slack path latency = %v", got)
	}
	for _, want := range []sim.Duration{1 * sim.Microsecond, 100 * sim.Microsecond, 10 * sim.Millisecond} {
		p, err := PathForSlack(want)
		if err != nil {
			t.Fatal(err)
		}
		if got := SlackForPath(p); got != want {
			t.Errorf("PathForSlack(%v) latency = %v", want, got)
		}
	}
}

func TestPathString(t *testing.T) {
	p := Preset(RowScale, 0)
	s := p.String()
	if s == "" || s == "path[]" {
		t.Errorf("String = %q", s)
	}
	if Preset(NodeLocal, 0).String() != "path[]" {
		t.Errorf("empty path String = %q", Preset(NodeLocal, 0).String())
	}
}

// Property: TransferTime is monotone non-decreasing in payload size.
func TestPropertyTransferMonotone(t *testing.T) {
	p := Preset(RowScale, 1)
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return p.TransferTime(x) <= p.TransferTime(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
