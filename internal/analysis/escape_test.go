package analysis

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestEscapeGcflagsCrossValidation pins the heuristic escape classifier to
// the real compiler: every allocation site in testdata/escape/gcm is
// classified by both, and the verdicts must agree line by line. The corpus
// is built from shapes where the heuristic is exact (no calls to
// non-builtin functions, no method values); if a future edit to the
// classifier drifts on any of them, this test names the line.
func TestEscapeGcflagsCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a package with the external go tool")
	}
	gcmDir := filepath.Join("testdata", "escape", "gcm")
	m, err := LoadDirAs(gcmDir, "gcmtest")
	if err != nil {
		t.Fatal(err)
	}
	sites := escapeSitesInModule(m)
	if len(sites) != 9 {
		t.Fatalf("gcm corpus has %d allocation sites, want 9 — keep it in sync with this test", len(sites))
	}

	// Compile a copy of the corpus as its own module and collect the
	// compiler's escape diagnostics.
	tmp := t.TempDir()
	src, err := os.ReadFile(filepath.Join(gcmDir, "gcm.go"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, "gcm.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte("module gcmtest\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "build", "-gcflags=-m=2", "./...")
	cmd.Dir = tmp
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build -gcflags=-m=2 failed: %v\n%s", err, out)
	}

	// Diagnostics look like "./gcm.go:24:7: &item{...} escapes to heap".
	// "moved to heap: x" lines concern variables, not allocation sites, and
	// are ignored.
	escapeLines := map[int]bool{}
	noEscapeLines := map[int]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		parts := strings.SplitN(line, ":", 4)
		if len(parts) < 4 || !strings.HasSuffix(parts[0], "gcm.go") {
			continue
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		switch {
		case strings.Contains(parts[3], "escapes to heap"):
			escapeLines[n] = true
		case strings.Contains(parts[3], "does not escape"):
			noEscapeLines[n] = true
		}
	}
	if len(escapeLines)+len(noEscapeLines) == 0 {
		t.Fatalf("no escape diagnostics parsed from compiler output:\n%s", out)
	}

	for _, s := range sites {
		id := fmt.Sprintf("%s:%d (%s)", filepath.Base(s.file), s.line, s.desc)
		compiler, ok := "", false
		switch {
		case escapeLines[s.line]:
			compiler, ok = "escapes to heap", true
		case noEscapeLines[s.line]:
			compiler, ok = "does not escape", true
		}
		if !ok {
			t.Errorf("%s: no compiler diagnostic on this line\n%s", id, out)
			continue
		}
		heuristic := "does not escape"
		if s.escapes {
			heuristic = "escapes to heap (" + s.reason + ")"
		}
		if s.escapes != (compiler == "escapes to heap") {
			t.Errorf("%s: heuristic says %q, compiler says %q", id, heuristic, compiler)
		}
	}
}
