package sim

import "errors"

// errAborted is the panic value used to unwind process goroutines when the
// environment is closed. It never escapes the package.
var errAborted = errors.New("sim: process aborted by Env.Close")

// ErrTimeout is returned by the *Timeout wait variants when the deadline
// fires before the awaited condition.
var ErrTimeout = errors.New("sim: wait timed out")

// Proc is the handle a simulated process uses to interact with virtual
// time. A Proc is only valid inside the function passed to Env.Spawn and
// must not be shared between process functions.
type Proc struct {
	env      *Env
	shard    *Shard // owns the queue this process's wake-ups land in
	name     string
	resume   chan struct{}
	wake     wakeKind // why the last resume happened, set before the handoff
	waits    []*event // outstanding wake-ups while parked
	finished bool
	aborted  bool
	// sigParked mirrors membership in env.parked, so the wake path can skip
	// the map delete — a measurable cost per event — for the overwhelmingly
	// common timer wake-ups that were never in the map.
	sigParked bool

	// waitsBuf backs waits inline: a process has at most two outstanding
	// wake-ups in every blocking primitive the package offers (a timer
	// racing a signal in WaitTimeout), so the common case never allocates
	// a separate waits array.
	waitsBuf [2]*event
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Env returns the environment that owns this process.
func (p *Proc) Env() *Env { return p.env }

// Shard returns the event domain the process was spawned into.
func (p *Proc) Shard() *Shard { return p.shard }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// yield parks the process until its next wake-up and returns the wake kind.
// Inside Run/RunUntil this is the baton handoff: the yielding goroutine
// dispatches the next event itself, so a process whose own wake-up is next
// continues with no channel operation at all, and a switch to another
// process costs a single send. Outside the direct path (Step, Close) the
// baton goes back to the driver goroutine, which delivers the next wake-up.
func (p *Proc) yield() wakeKind {
	e := p.env
	if e.direct {
		if e.dispatch(p) {
			return p.wake
		}
	} else {
		e.park <- struct{}{}
	}
	<-p.resume
	if p.aborted {
		panic(errAborted)
	}
	return p.wake
}

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero (the process still yields, preserving event ordering).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.env.schedule(p.env.now.Add(d), p, wakeTimer)
	p.yield()
}

// Yield gives other processes scheduled at the current instant a chance to
// run, without advancing the clock relative to them.
func (p *Proc) Yield() { p.Sleep(0) }

// Signal is a broadcast condition in virtual time: processes Wait on it and
// are all released by Fire. Signals are reusable — Fire releases the current
// waiters and leaves the signal ready for new ones.
//
// A Signal must only be touched from inside running processes (or before
// Env.Run starts), never from other goroutines.
type Signal struct {
	env     *Env
	waiters []*Proc
	// wbuf backs waiters inline while there are at most two: per-operation
	// completion signals (gpu.Op) almost always see exactly one waiter, and
	// without the buffer each such wait would allocate a one-element slice.
	wbuf [2]*Proc
}

// NewSignal returns a Signal bound to env.
func NewSignal(env *Env) *Signal {
	//cdivet:allow escape signals are created when their owning structure is built, not per iteration
	s := &Signal{env: env}
	s.waiters = s.wbuf[:0]
	return s
}

// Bind associates a zero-value Signal with env. It exists so Signals can be
// embedded in slab-allocated structures (per-operation completion signals on
// device queues) instead of paying one allocation each via NewSignal. Bind
// must run before the first Wait; rebinding an idle Signal to the same env
// is a no-op.
func (s *Signal) Bind(env *Env) {
	s.env = env
	if s.waiters == nil {
		s.waiters = s.wbuf[:0]
	}
}

// remove drops p from the waiter list if present.
func (s *Signal) remove(p *Proc) {
	for i, w := range s.waiters {
		if w == p {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// Wait parks the process until the next Fire.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.env.parked[p] = struct{}{}
	p.sigParked = true
	p.yield()
}

// WaitTimeout parks the process until the next Fire or until d elapses,
// whichever comes first. It returns nil if the signal fired and ErrTimeout
// if the deadline won.
func (s *Signal) WaitTimeout(p *Proc, d Duration) error {
	s.waiters = append(s.waiters, p)
	p.env.parked[p] = struct{}{}
	p.sigParked = true
	p.env.schedule(p.env.now.Add(d), p, wakeTimer)
	if p.yield() == wakeTimer {
		// The deadline won; we are no longer a live waiter. (If Fire ran in
		// the same instant after the timer delivered, it already dropped us.)
		s.remove(p)
		return ErrTimeout
	}
	return nil
}

// Fire releases every current waiter at the present instant, in the order
// they began waiting. It is a no-op with no waiters.
func (s *Signal) Fire() {
	// Keep the backing array: signals on steady-state paths (stream
	// arrival/drain, batcher wake-ups) cycle Wait/Fire every iteration, and
	// dropping the array here would make each of those Waits reallocate.
	// No process runs while this loop schedules wake-ups, so the slice
	// cannot be appended to mid-iteration.
	waiters := s.waiters
	s.waiters = s.waiters[:0]
	for _, p := range waiters {
		if p.sigParked {
			delete(s.env.parked, p)
			p.sigParked = false
		}
		s.env.schedule(s.env.now, p, wakeSignal)
	}
}

// FireOne releases only the longest-waiting process, if any, and reports
// whether one was released.
func (s *Signal) FireOne() bool {
	if len(s.waiters) == 0 {
		return false
	}
	p := s.waiters[0]
	copy(s.waiters, s.waiters[1:])
	s.waiters = s.waiters[:len(s.waiters)-1]
	if p.sigParked {
		delete(s.env.parked, p)
		p.sigParked = false
	}
	s.env.schedule(s.env.now, p, wakeSignal)
	return true
}

// Waiters returns the number of processes currently waiting.
func (s *Signal) Waiters() int { return len(s.waiters) }

// Resource is a counting semaphore in virtual time with FIFO granting, the
// building block for modelling exclusive or capacity-limited hardware
// (DMA engines, PCIe lanes, CPU cores).
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	queue    *Signal
}

// NewResource returns a Resource with the given capacity (> 0).
func NewResource(env *Env, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: Resource capacity must be positive")
	}
	//cdivet:allow escape one resource per modeled engine, built at setup
	return &Resource{env: env, capacity: capacity, queue: NewSignal(env)}
}

// Acquire blocks the process until a unit of capacity is available, then
// claims it.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.capacity {
		r.queue.Wait(p)
	}
	r.inUse++
}

// TryAcquire claims a unit if one is free, without blocking; it reports
// whether the claim succeeded.
func (r *Resource) TryAcquire() bool {
	if r.inUse >= r.capacity {
		return false
	}
	r.inUse++
	return true
}

// Release returns a unit of capacity and wakes one waiter.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of un-acquired Resource")
	}
	r.inUse--
	r.queue.FireOne()
}

// InUse returns the number of claimed units.
func (r *Resource) InUse() int { return r.inUse }

// Capacity returns the total capacity.
func (r *Resource) Capacity() int { return r.capacity }

// WaitGroup counts outstanding work in virtual time; Wait parks until the
// count returns to zero.
type WaitGroup struct {
	env   *Env
	count int
	done  *Signal
}

// NewWaitGroup returns a WaitGroup bound to env.
func NewWaitGroup(env *Env) *WaitGroup {
	//cdivet:allow escape one waitgroup per modeled device, built at setup
	return &WaitGroup{env: env, done: NewSignal(env)}
}

// Add adjusts the counter by delta, which may be negative. A counter that
// reaches zero releases all current waiters; a negative counter panics.
func (w *WaitGroup) Add(delta int) {
	w.count += delta
	if w.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.count == 0 {
		w.done.Fire()
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait parks the process until the counter is zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.count > 0 {
		w.done.Wait(p)
	}
}

// Count returns the current counter value.
func (w *WaitGroup) Count() int { return w.count }
