package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// BareGo flags go statements in simulation packages outside internal/sim.
// The engine's determinism rests on single-owner handoff: exactly one
// process runs at a time, and only the sim scheduler may create goroutines
// (sim.Env.SpawnAt) because only it sequences their wake-ups through the
// event heap. A bare goroutine anywhere else in the model reintroduces real
// concurrency — and with it scheduling nondeterminism — behind the
// engine's back. Package main and test files may use goroutines; they sit
// outside the simulated world.
//
// One shape is exempt: a structured sync.WaitGroup worker pool. A
// `go func() { ... }()` whose literal calls Done on a sync.WaitGroup that
// the enclosing function Waits on after the go statement cannot outlive its
// caller, so any nondeterminism it could introduce is confined to the span
// before the join — the shape internal/runner uses to fan sweeps out while
// keeping results ordered. Pools built from named functions (the Done call
// is out of sight) or whose Wait is missing or on a different WaitGroup are
// still flagged.
var BareGo = &Analyzer{
	Name: "barego",
	Doc:  "go statement in a simulation package outside internal/sim breaks single-owner handoff (sync.WaitGroup-joined pools are structured and exempt)",
	Run:  runBareGo,
}

func runBareGo(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return
	}
	if pass.Path == "repro/internal/sim" || strings.HasSuffix(pass.Path, "/internal/sim") {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		// Track the enclosing-node stack so a go statement can find the
		// function body it must be joined in.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if g, ok := n.(*ast.GoStmt); ok && !structuredPool(pass, g, stack) {
				pass.Reportf(g.Pos(), "bare goroutine outside internal/sim; spawn simulated processes via sim.Env, or join the goroutine through a sync.WaitGroup Done/Wait pair in the spawning function")
			}
			return true
		})
	}
}

// structuredPool reports whether g is a sync.WaitGroup-joined pool worker:
// a function literal that calls Done on a sync.WaitGroup which the nearest
// enclosing function Waits on after the go statement. stack is the
// ancestor chain ending at g.
func structuredPool(pass *Pass, g *ast.GoStmt, stack []ast.Node) bool {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		// go worker(&wg): the Done call is in another function, so the
		// join is not locally checkable; stay conservative.
		return false
	}
	wg := doneTarget(pass, lit)
	if wg == nil {
		return false
	}
	// The literal itself is a child of g, so walking ancestors from just
	// below g finds the true enclosing function.
	for i := len(stack) - 2; i >= 0; i-- {
		var body *ast.BlockStmt
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			continue
		}
		return waitsAfter(pass, body, g, wg)
	}
	return false
}

// doneTarget returns the object of the sync.WaitGroup a pool worker calls
// Done on (deferred or not), or nil if the literal has no such call.
func doneTarget(pass *Pass, lit *ast.FuncLit) types.Object {
	var wg types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if wg != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if obj := syncWaitGroupRecv(pass, call, "Done"); obj != nil {
				wg = obj
				return false
			}
		}
		return true
	})
	return wg
}

// waitsAfter reports whether body calls Wait on wg at a position after the
// go statement — the join that bounds the worker's lifetime.
func waitsAfter(pass *Pass, body *ast.BlockStmt, g *ast.GoStmt, wg types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < g.End() {
			return true
		}
		if syncWaitGroupRecv(pass, call, "Wait") == wg {
			found = true
			return false
		}
		return true
	})
	return found
}

// syncWaitGroupRecv returns the receiver variable's object when call is
// `x.name()` with x an identifier whose method resolves to package sync —
// which distinguishes sync.WaitGroup from the simulated sim.WaitGroup.
// Non-identifier receivers (fields, calls) return nil: the analyzer stays
// conservative where it cannot match Done and Wait to the same variable.
func syncWaitGroupRecv(pass *Pass, call *ast.CallExpr, name string) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	s, ok := pass.Info.Selections[sel]
	if !ok {
		return nil
	}
	if pkg := s.Obj().Pkg(); pkg == nil || pkg.Path() != "sync" {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.Info.Uses[id]
}
