package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// A baseline lets a new analyzer land strict-for-new-code: known findings
// are recorded once (cdivet -write-baseline) and suppressed on later runs
// (cdivet -baseline), so the gate only fails on findings introduced after
// the baseline was cut. Entries are keyed by (rule, module-relative file,
// message) — deliberately NOT by line, so unrelated edits above a baselined
// finding don't resurrect it. Identical findings are counted: if a file
// gains a second copy of a baselined finding, the new copy still fails.
type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

type Baseline struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

func baselineKey(rule, relFile, message string) string {
	return rule + "\x00" + relFile + "\x00" + message
}

// NewBaseline records the given findings relative to the module root.
func NewBaseline(findings []Finding, root string) *Baseline {
	counts := map[string]*BaselineEntry{}
	var order []string
	for _, f := range findings {
		rel := relURI(root, f.File)
		k := baselineKey(f.Rule, rel, f.Message)
		if e, ok := counts[k]; ok {
			e.Count++
			continue
		}
		counts[k] = &BaselineEntry{Rule: f.Rule, File: rel, Message: f.Message, Count: 1}
		order = append(order, k)
	}
	b := &Baseline{Version: 1}
	for _, k := range order {
		b.Entries = append(b.Entries, *counts[k])
	}
	return b
}

// WriteBaseline saves the baseline as indented JSON.
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("analysis: baseline %s has unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// Filter drops findings covered by the baseline (respecting counts) and
// returns the survivors plus the number suppressed.
func (b *Baseline) Filter(findings []Finding, root string) ([]Finding, int) {
	budget := map[string]int{}
	for _, e := range b.Entries {
		c := e.Count
		if c <= 0 {
			c = 1
		}
		budget[baselineKey(e.Rule, filepath.ToSlash(e.File), e.Message)] += c
	}
	var kept []Finding
	suppressed := 0
	for _, f := range findings {
		k := baselineKey(f.Rule, relURI(root, f.File), f.Message)
		if budget[k] > 0 {
			budget[k]--
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	return kept, suppressed
}

// Prune shrinks the baseline to what the given findings still justify:
// entries with no live match are dropped, and entries whose count exceeds
// the live occurrence count are trimmed down to it. It returns the new
// baseline plus the entries removed outright and the entries whose counts
// were reduced (with Count set to the amount trimmed). Unlike re-cutting
// with -write-baseline, pruning can only shrink the debt — it never
// absorbs new findings.
func (b *Baseline) Prune(findings []Finding, root string) (pruned *Baseline, removed, trimmed []BaselineEntry) {
	live := map[string]int{}
	for _, f := range findings {
		live[baselineKey(f.Rule, relURI(root, f.File), f.Message)]++
	}
	pruned = &Baseline{Version: b.Version}
	out := pruned
	for _, e := range b.Entries {
		k := baselineKey(e.Rule, filepath.ToSlash(e.File), e.Message)
		c := e.Count
		if c <= 0 {
			c = 1
		}
		n := live[k]
		live[k] = 0 // duplicate entries for one key must not double-claim
		switch {
		case n == 0:
			removed = append(removed, e)
		case n < c:
			kept := e
			kept.Count = n
			out.Entries = append(out.Entries, kept)
			cut := e
			cut.Count = c - n
			trimmed = append(trimmed, cut)
		default:
			out.Entries = append(out.Entries, e)
		}
	}
	return out, removed, trimmed
}

// Stale returns baseline entries that no longer match any finding — the
// signal to re-cut or hand-prune the baseline file.
func (b *Baseline) Stale(findings []Finding, root string) []BaselineEntry {
	live := map[string]int{}
	for _, f := range findings {
		live[baselineKey(f.Rule, relURI(root, f.File), f.Message)]++
	}
	var stale []BaselineEntry
	for _, e := range b.Entries {
		if live[baselineKey(e.Rule, filepath.ToSlash(e.File), e.Message)] == 0 {
			stale = append(stale, e)
		}
	}
	return stale
}
