package faults

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/cuda"
	"repro/internal/sim"
)

// Policy is the client-side resilience discipline applied per call:
// deadline, bounded retries with exponential backoff and seeded jitter,
// a consecutive-timeout circuit breaker, and failover cost. It is shared
// by the resilient remoting transport (package remoting) and the
// application-level CallInjector below, so the proxy and the real
// applications see the same arithmetic.
type Policy struct {
	// CallTimeout is the per-attempt deadline beyond the nominal response
	// time; an attempt whose response is not in by then counts as a
	// timeout.
	CallTimeout sim.Duration
	// MaxRetries bounds retries per call (after the first attempt) before
	// failing over.
	MaxRetries int
	// BackoffBase and BackoffFactor shape the exponential backoff before
	// retry k: base × factor^(k−1).
	BackoffBase   sim.Duration
	BackoffFactor float64
	// JitterFrac widens each backoff by a uniform ±fraction drawn from a
	// seeded stream, de-synchronizing retry storms deterministically.
	JitterFrac float64
	// BreakerThreshold trips the circuit breaker after this many
	// consecutive timeouts.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped (open) breaker waits before
	// letting one half-open probe attempt through. A probe that succeeds
	// closes the breaker on the same server — transient fault windows that
	// end during the cooldown cost no failover — while a probe that fails
	// re-opens it and forces failover. Zero takes the default
	// (4 × CallTimeout); negative means probe immediately with no pause.
	// The application-level CallInjector ignores it and keeps the
	// trip-straight-to-failover discipline.
	BreakerCooldown sim.Duration
	// FailoverPenalty is the control-plane cost of re-attaching to a
	// standby (or degrading to node-local execution): discovery,
	// handshake, context re-creation. State re-upload is charged
	// separately by the transport as DMA replays.
	FailoverPenalty sim.Duration
}

// WithDefaults fills unset (zero) fields with the defaults used across
// the resilience experiments; negative durations mean "disabled" and are
// normalized to zero.
func (p Policy) WithDefaults() Policy {
	if p.CallTimeout == 0 {
		p.CallTimeout = 200 * sim.Microsecond
	}
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	if p.BackoffBase == 0 {
		p.BackoffBase = 20 * sim.Microsecond
	}
	if p.BackoffFactor == 0 {
		p.BackoffFactor = 2
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = 0.1
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = 4
	}
	if p.BreakerCooldown == 0 {
		p.BreakerCooldown = 4 * p.CallTimeout
	}
	if p.FailoverPenalty == 0 {
		p.FailoverPenalty = 5 * sim.Millisecond
	}
	for _, d := range []*sim.Duration{&p.CallTimeout, &p.BackoffBase, &p.FailoverPenalty, &p.BreakerCooldown} {
		if *d < 0 {
			*d = 0
		}
	}
	if p.JitterFrac < 0 {
		p.JitterFrac = 0
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	return p
}

// Backoff returns the deterministic pause before retry k (k ≥ 1).
func (p Policy) Backoff(k int, jitter *rand.Rand) sim.Duration {
	d := float64(p.BackoffBase)
	for i := 1; i < k; i++ {
		d *= p.BackoffFactor
	}
	if p.JitterFrac > 0 && jitter != nil {
		d *= 1 + p.JitterFrac*(2*jitter.Float64()-1)
	}
	return sim.Duration(d)
}

// CallStats aggregates what the resilience policy did to a run's calls.
type CallStats struct {
	// Calls counts link-crossing calls seen while remote execution was
	// still live (degraded node-local calls are not counted).
	Calls int64
	// FaultedCalls counts calls that experienced any fault delay at all.
	FaultedCalls int64
	// Retries, Timeouts and Failovers count policy actions; BreakerTrips
	// counts failovers forced by the circuit breaker.
	Retries      int64
	Timeouts     int64
	Failovers    int64
	BreakerTrips int64
	// FaultDelay is the total extra time faults added on top of nominal
	// slack.
	FaultDelay sim.Duration
	// DegradedToLocal records that every remote died and the workload
	// fell back to node-local execution.
	DegradedToLocal bool
}

// CallInjector is a cuda.Interposer that models, at the injection seam the
// paper's method uses, what a resilient remoting transport adds to each
// link-crossing call under a fault schedule: stall waits, lost-message
// timeouts, retries with exponential backoff, circuit-breaker failover to
// standbys, and eventual degradation to node-local execution.
//
// It complements slack.Injector rather than replacing it: the slack
// injector keeps charging the nominal per-call slack (so Equation 1
// applies unchanged), while the CallInjector charges only the
// fault-induced excess. At zero fault intensity it therefore adds exactly
// nothing and the run reproduces the fault-free measurement bit for bit.
//
// One CallInjector is shared by all ranks of a run — they share one
// host↔chassis fabric — which is safe because the simulation executes one
// process at a time.
type CallInjector struct {
	inj      *Injector
	pol      Policy
	jitter   *rand.Rand
	standbys int

	active         int
	degraded       bool
	consecTimeouts int
	stats          CallStats
}

// NewCallInjector builds the interposer: cfg is the fault schedule, pol
// the retry/failover policy (zero fields take defaults), standbys the
// number of standby GPU servers available for failover.
func NewCallInjector(cfg Config, pol Policy, standbys int) (*CallInjector, error) {
	if standbys < 0 {
		return nil, fmt.Errorf("faults: negative standby count %d", standbys)
	}
	inj, err := NewInjector(cfg)
	if err != nil {
		return nil, err
	}
	return &CallInjector{
		inj:      inj,
		pol:      pol.WithDefaults(),
		jitter:   Substream(cfg.Seed, saltJitter),
		standbys: standbys,
	}, nil
}

// saltJitter seeds the backoff-jitter stream (see the salt block in
// faults.go).
const saltJitter uint64 = 0x04

// Stats returns a snapshot of the policy actions so far.
func (f *CallInjector) Stats() CallStats { return f.stats }

// Injector exposes the underlying fault injector (for counters).
func (f *CallInjector) Injector() *Injector { return f.inj }

// Before implements cuda.Interposer.
func (f *CallInjector) Before(p *sim.Proc, info cuda.CallInfo) {}

// After implements cuda.Interposer: it walks the call through the
// resilience policy, sleeping for whatever fault handling would have
// added beyond the nominal slack.
func (f *CallInjector) After(p *sim.Proc, info cuda.CallInfo) {
	if f.degraded || !info.Class.CrossesLink() || !f.inj.cfg.Enabled() {
		return
	}
	f.stats.Calls++
	start := p.Now()
	retries := 0
	for {
		if f.attempt(p) {
			f.consecTimeouts = 0
			break
		}
		f.stats.Timeouts++
		f.consecTimeouts++
		tripped := f.pol.BreakerThreshold > 0 && f.consecTimeouts >= f.pol.BreakerThreshold
		if tripped || retries >= f.pol.MaxRetries {
			if tripped {
				f.stats.BreakerTrips++
			}
			f.failover(p)
			if f.degraded {
				break
			}
			retries = 0
			continue
		}
		retries++
		f.stats.Retries++
		p.Sleep(f.pol.Backoff(retries, f.jitter))
	}
	if d := p.Now().Sub(start); d > 0 {
		f.stats.FaultedCalls++
		f.stats.FaultDelay += d
	}
}

// attempt plays one request/response exchange against the fault schedule,
// sleeping for any survivable delay. It reports whether a response beat
// the deadline; a failed attempt has already slept the full deadline.
func (f *CallInjector) attempt(p *sim.Proc) bool {
	now := p.Now()
	if down, _ := f.inj.LinkDown(now); down {
		p.Sleep(f.pol.CallTimeout)
		return false
	}
	if f.inj.DropsMessage() { // request lost
		p.Sleep(f.pol.CallTimeout)
		return false
	}
	var stallWait sim.Duration
	state, until := f.inj.Server(f.active).StateAt(now)
	switch state {
	case Crashed:
		p.Sleep(f.pol.CallTimeout)
		return false
	case Stalled:
		stallWait = until.Sub(now)
		if stallWait > f.pol.CallTimeout {
			p.Sleep(f.pol.CallTimeout)
			return false
		}
		p.Sleep(stallWait)
	}
	if f.inj.DropsMessage() { // response lost
		p.Sleep(f.pol.CallTimeout - stallWait)
		return false
	}
	return true
}

// failover re-attaches to the next standby, or degrades to node-local
// execution once none remain; either way the control-plane penalty is
// paid here (the transport-level twin additionally replays device state).
func (f *CallInjector) failover(p *sim.Proc) {
	f.stats.Failovers++
	f.consecTimeouts = 0
	p.Sleep(f.pol.FailoverPenalty)
	if f.active < f.standbys {
		f.active++
		return
	}
	f.degraded = true
	f.stats.DegradedToLocal = true
}
