// Package sim is a corpus stand-in exposing the blocking primitives the
// waitlock rule recognizes. The package itself is exempt — its channel
// handoffs ARE the engine.
package sim

// Duration is a span of virtual time in float64 seconds.
type Duration float64

// Proc is a minimal process handle.
type Proc struct{}

// Sleep parks the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {}

// Signal is a minimal broadcast primitive.
type Signal struct{}

// Wait parks the process until the signal fires.
func (s *Signal) Wait(p *Proc) {}
