package slack

import (
	"math"
	"testing"

	"repro/internal/cuda"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/sim"
)

func testSpec() gpu.Spec {
	return gpu.Spec{
		Name:            "test-gpu",
		MemoryBytes:     1 << 30,
		MemoryBandwidth: 1e12,
		PeakFLOPS:       1e12,
		H2DBandwidth:    1e9,
		D2HBandwidth:    1e9,
		DMAEngines:      2,
	}
}

// runProxyIteration performs the proxy's 5-call iteration (2 H2D copies,
// kernel launch, device sync, 1 D2H copy... the paper counts 3 transfers +
// launch + sync = 5) and returns the elapsed host time.
func runProxyIteration(t *testing.T, in *Injector) sim.Duration {
	t.Helper()
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	dev, err := gpu.NewDevice(env, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx := cuda.NewContext(dev, cuda.Config{CallOverhead: -1})
	if in != nil {
		ctx.Interpose(in)
	}
	var elapsed sim.Duration
	env.Spawn("host", func(p *sim.Proc) {
		a, _ := ctx.Malloc(p, 1000)
		b, _ := ctx.Malloc(p, 1000)
		c, _ := ctx.Malloc(p, 1000)
		start := p.Now()
		ctx.MemcpyH2D(p, a, 1000)
		ctx.MemcpyH2D(p, b, 1000)
		ctx.LaunchSync(p, gpu.Fixed("sgemm", 1*sim.Millisecond), nil)
		ctx.DeviceSynchronize(p)
		ctx.MemcpyD2H(p, c, 1000)
		elapsed = p.Now().Sub(start)
	})
	env.Run()
	return elapsed
}

func TestInjectorAddsExactlyPerCallSlack(t *testing.T) {
	base := runProxyIteration(t, nil)
	in := New(100 * sim.Microsecond)
	with := runProxyIteration(t, in)
	if in.DelayedCalls() != 5 {
		t.Fatalf("DelayedCalls = %d, want 5 (3 memcpy + launch + sync)", in.DelayedCalls())
	}
	wantExtra := 5 * 100 * sim.Microsecond
	if got := with - base; math.Abs(float64(got-wantExtra)) > 1e-12 {
		t.Errorf("slack added %v, want %v", got, wantExtra)
	}
	if got := in.TotalInjected(); math.Abs(float64(got-wantExtra)) > 1e-12 {
		t.Errorf("TotalInjected = %v, want %v", got, wantExtra)
	}
}

func TestZeroAmountInjectsNothing(t *testing.T) {
	in := New(0)
	base := runProxyIteration(t, nil)
	with := runProxyIteration(t, in)
	if with != base {
		t.Errorf("zero-slack run took %v vs baseline %v", with, base)
	}
	if in.DelayedCalls() != 0 {
		t.Errorf("DelayedCalls = %d", in.DelayedCalls())
	}
}

func TestMemoryCallsNotDelayed(t *testing.T) {
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	dev, _ := gpu.NewDevice(env, testSpec())
	ctx := cuda.NewContext(dev, cuda.Config{CallOverhead: -1})
	in := New(1 * sim.Millisecond)
	ctx.Interpose(in)
	env.Spawn("host", func(p *sim.Proc) {
		start := p.Now()
		ptr, _ := ctx.Malloc(p, 100)
		ctx.Free(p, ptr)
		if p.Now() != start {
			t.Errorf("malloc/free delayed by %v", p.Now().Sub(start))
		}
	})
	env.Run()
	if in.DelayedCalls() != 0 {
		t.Errorf("DelayedCalls = %d for memory-only calls", in.DelayedCalls())
	}
}

func TestWithClassesRestriction(t *testing.T) {
	in := New(1*sim.Millisecond, WithClasses(cuda.ClassLaunch))
	runProxyIteration(t, in)
	if in.DelayedCalls() != 1 {
		t.Errorf("DelayedCalls = %d, want 1 (launch only)", in.DelayedCalls())
	}
}

func TestWithSymbolsLDPreloadStyle(t *testing.T) {
	// A shim that only wraps the synchronous memcpy symbols misses the
	// launch and sync calls — the coverage gap the paper warns about.
	in := New(1*sim.Millisecond, WithSymbols("cudaMemcpy(HtoD)", "cudaMemcpy(DtoH)"))
	runProxyIteration(t, in)
	if in.DelayedCalls() != 3 {
		t.Errorf("DelayedCalls = %d, want 3 (memcpy symbols only)", in.DelayedCalls())
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	run := func() (int64, sim.Duration) {
		in := New(100*sim.Microsecond, WithJitter(0.2, 7))
		runProxyIteration(t, in)
		return in.DelayedCalls(), in.TotalInjected()
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Errorf("jittered runs diverged: %d/%v vs %d/%v", c1, t1, c2, t2)
	}
	// Bounds: 5 calls × 100µs × [0.8, 1.2].
	lo, hi := 5*80*sim.Microsecond, 5*120*sim.Microsecond
	if t1 < lo || t1 > hi {
		t.Errorf("TotalInjected = %v outside [%v, %v]", t1, lo, hi)
	}
	if t1 == 5*100*sim.Microsecond {
		t.Error("jitter had no effect")
	}
}

func TestFromPathUsesOneWayLatency(t *testing.T) {
	p, err := fabric.PathForSlack(42 * sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	in := FromPath(p)
	if in.Amount() != 42*sim.Microsecond {
		t.Errorf("Amount = %v", in.Amount())
	}
	row := FromPath(fabric.Preset(fabric.RowScale, 0))
	if row.Amount() <= 0 {
		t.Error("row-scale path produced zero slack")
	}
}

func TestSetAmountAndReset(t *testing.T) {
	in := New(1 * sim.Microsecond)
	runProxyIteration(t, in)
	if in.DelayedCalls() == 0 {
		t.Fatal("no calls delayed")
	}
	in.Reset()
	if in.DelayedCalls() != 0 || in.TotalInjected() != 0 {
		t.Error("Reset did not zero counters")
	}
	in.SetAmount(0)
	runProxyIteration(t, in)
	if in.DelayedCalls() != 0 {
		t.Error("disabled injector delayed calls")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative amount": func() { New(-1) },
		"negative set":    func() { New(0).SetAmount(-1) },
		"jitter >= 1":     func() { New(1, WithJitter(1, 0)) },
		"jitter < 0":      func() { New(1, WithJitter(-0.1, 0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
