package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/serve"
	"repro/internal/sim"
)

// churnOpts shrinks the window so the grid stays cheap in tests; the
// churn process still fits several outages per server inside it.
func churnOpts() Options {
	o := Quick()
	o.ServeWindow = 300 * sim.Millisecond
	return o
}

func TestChurnByteIdenticalAcrossWorkers(t *testing.T) {
	run := func(jobs int) []ChurnRow {
		o := churnOpts()
		o.Jobs = jobs
		rows, err := Churn(o)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("churn sweep differs between -j 1 and -j 8:\n--- j1 ---\n%s--- j8 ---\n%s",
			RenderChurn(serial), RenderChurn(parallel))
	}
}

// TestChurnZeroChurnReproducesServing demands the sweep's fault-free
// corner equal the serving experiment's continuous-batching rows
// exactly: same cell function, same seeds, same reports.
func TestChurnZeroChurnReproducesServing(t *testing.T) {
	o := churnOpts()
	churnRows, err := Churn(o)
	if err != nil {
		t.Fatal(err)
	}
	servingRows, err := Serving(o)
	if err != nil {
		t.Fatal(err)
	}
	matched := 0
	for _, cr := range churnRows {
		if cr.Arm != "serving" {
			continue
		}
		found := false
		for _, sr := range servingRows {
			if sr.Policy == serve.Continuous && sr.Slack == cr.Slack && sr.Load == cr.Load {
				found = true
				if sr.Report != cr.Report {
					t.Errorf("zero-churn cell (slack %v, load %g) diverges from serving sweep:\nchurn:   %+v\nserving: %+v",
						cr.Slack, cr.Load, cr.Report, sr.Report)
				}
			}
		}
		if !found {
			t.Errorf("zero-churn cell (slack %v, load %g) has no serving-sweep counterpart", cr.Slack, cr.Load)
		}
		matched++
	}
	if want := len(churnSlacks) * len(servingLoads); matched != want {
		t.Fatalf("found %d zero-churn rows, want %d", matched, want)
	}
}

// TestChurnManagedDominatesBaseline is the headline regression gate: in
// every faulty cell the managed arm's resilience-aware goodput strictly
// exceeds the detect-nothing baseline's, the control plane actually
// detected and migrated (quickly — well under the call-timeout path the
// baseline is stuck with), and recovered servers were readmitted.
func TestChurnManagedDominatesBaseline(t *testing.T) {
	rows, err := Churn(churnOpts())
	if err != nil {
		t.Fatal(err)
	}
	type cell struct {
		slack     sim.Duration
		load      float64
		intensity float64
	}
	baselines := map[cell]ChurnRow{}
	managed := map[cell]ChurnRow{}
	for _, r := range rows {
		c := cell{r.Slack, r.Load, r.Intensity}
		switch r.Arm {
		case "baseline":
			baselines[c] = r
		case "managed":
			managed[c] = r
		}
	}
	want := len(churnSlacks) * len(servingLoads) * (len(churnIntensities) - 1)
	if len(baselines) != want || len(managed) != want {
		t.Fatalf("got %d baseline / %d managed cells, want %d each", len(baselines), len(managed), want)
	}
	for c, b := range baselines {
		m, ok := managed[c]
		if !ok {
			t.Fatalf("cell %+v has a baseline but no managed arm", c)
		}
		if m.Report.Goodput <= b.Report.Goodput {
			t.Errorf("cell %+v: managed goodput %.1f does not dominate baseline %.1f",
				c, m.Report.Goodput, b.Report.Goodput)
		}
		if m.Suspicions == 0 || m.Migrations == 0 || m.Readmissions == 0 {
			t.Errorf("cell %+v: control plane idle (suspicions %d, migrations %d, readmissions %d)",
				c, m.Suspicions, m.Migrations, m.Readmissions)
		}
		if m.Detection <= 0 || m.Detection >= churnPolicy().CallTimeout {
			t.Errorf("cell %+v: detection latency %v outside (0, call timeout)", c, m.Detection)
		}
		if b.Suspicions != 0 || b.Migrations != 0 {
			t.Errorf("cell %+v: baseline arm ran a control plane (suspicions %d, migrations %d)",
				c, b.Suspicions, b.Migrations)
		}
	}
}

// TestChurnControlPlaneTransparentWithoutFaults runs the same fault-free
// pool cell with and without the control plane (heartbeats, evaluator,
// armed admission gate) and demands identical reports: monitoring a
// healthy pool must not perturb the workload at all.
func TestChurnControlPlaneTransparentWithoutFaults(t *testing.T) {
	const window = 300 * sim.Millisecond
	off, err := churnCell(100*sim.Microsecond, 1, 0, window, 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	on, err := churnCell(100*sim.Microsecond, 1, 0, window, 1, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if on.Report != off.Report {
		t.Errorf("control plane perturbs a fault-free run:\non:  %+v\noff: %+v", on.Report, off.Report)
	}
	if on.Suspicions != 0 || on.Migrations != 0 || on.Readmissions != 0 {
		t.Errorf("fault-free control plane acted: suspicions %d, migrations %d, readmissions %d",
			on.Suspicions, on.Migrations, on.Readmissions)
	}
	if on.Exhausted || off.Exhausted {
		t.Error("fault-free pool cell exhausted")
	}
}

func TestChurnFaultLogAndTrace(t *testing.T) {
	logText := ChurnFaultLog(churnOpts())
	for _, wantSub := range []string{"churn intensity 0.5", "churn intensity 1", "crash outages"} {
		if !strings.Contains(logText, wantSub) {
			t.Errorf("fault log missing %q:\n%s", wantSub, logText)
		}
	}
	var buf bytes.Buffer
	if err := WriteChurnTrace(churnOpts(), &buf); err != nil {
		t.Fatalf("WriteChurnTrace: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("churn trace is not valid JSON")
	}
	for _, wantSub := range []string{`"health"`, `"draining"`} {
		if !strings.Contains(buf.String(), wantSub) {
			t.Errorf("churn trace missing %s spans", wantSub)
		}
	}
}
