package remoting

import (
	"math"
	"testing"

	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/sim"
)

func mustPathForSlack(t *testing.T, d sim.Duration) fabric.Path {
	t.Helper()
	p, err := fabric.PathForSlack(d)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testSpec() gpu.Spec {
	return gpu.Spec{
		Name:            "test-gpu",
		MemoryBytes:     1 << 30,
		MemoryBandwidth: 1e12,
		PeakFLOPS:       1e12,
		H2DBandwidth:    1e9,
		D2HBandwidth:    1e9,
		DMAEngines:      2,
	}
}

func TestEveryCallCrossesTheNetworkTwice(t *testing.T) {
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	dev, _ := gpu.NewDevice(env, testSpec())
	path, err := fabric.PathForSlack(50 * sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	r := New(dev, Config{Path: path, ServerOverhead: -1})
	env.Spawn("host", func(p *sim.Proc) {
		ptr, err := r.Malloc(p, 1000)
		if err != nil {
			t.Errorf("Malloc: %v", err)
		}
		r.Free(p, ptr)
	})
	env.Run()
	if r.Calls() != 2 {
		t.Fatalf("Calls = %d, want 2", r.Calls())
	}
	// Two calls × two crossings × 50µs.
	want := 4 * 50 * sim.Microsecond
	if math.Abs(float64(r.NetworkTime()-want)) > 1e-12 {
		t.Errorf("NetworkTime = %v, want %v", r.NetworkTime(), want)
	}
	if got := r.MeanCallDelay(); math.Abs(float64(got-100*sim.Microsecond)) > 1e-12 {
		t.Errorf("MeanCallDelay = %v, want 100µs (two crossings)", got)
	}
}

func TestPayloadRidesTheWire(t *testing.T) {
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	dev, _ := gpu.NewDevice(env, testSpec())
	// 1 GB/s path: a 1 MB payload adds ~1ms per crossing on top of latency.
	path := fabric.Path{Hops: []fabric.Hop{{Name: "net", Latency: 10 * sim.Microsecond, Bandwidth: 1e9}}}
	r := New(dev, Config{Path: path, ServerOverhead: -1})
	var h2d, d2h sim.Duration
	env.Spawn("host", func(p *sim.Proc) {
		ptr, _ := r.Malloc(p, 1_000_000)
		start := p.Now()
		r.MemcpyH2D(p, ptr, 1_000_000)
		h2d = p.Now().Sub(start)
		start = p.Now()
		r.MemcpyD2H(p, ptr, 1_000_000)
		d2h = p.Now().Sub(start)
	})
	env.Run()
	// H2D: request carries 1MB (1ms + 10µs) + device copy (1ms) +
	// response (10µs) ≈ 2.02ms. Same arithmetic for D2H.
	for name, got := range map[string]sim.Duration{"h2d": h2d, "d2h": d2h} {
		if got < 2*sim.Millisecond || got > 2.2*sim.Millisecond {
			t.Errorf("%s remote copy = %v, want ≈ 2.02ms", name, got)
		}
	}
}

func TestNoiseMakesDelaysVary(t *testing.T) {
	cfg := Config{
		Path:          mustPathForSlack(t, 100*sim.Microsecond),
		NoiseFraction: 0.3,
		Seed:          11,
	}
	res, err := Compare(512, 30, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemotedStddev <= 0 {
		t.Error("no variance despite network noise")
	}
	// Without noise the iteration durations collapse to a point (matmul
	// warm-up aside) — the "granular control" the paper wants.
	clean, err := Compare(512, 30, Config{Path: cfg.Path})
	if err != nil {
		t.Fatal(err)
	}
	if clean.RemotedStddev >= res.RemotedStddev {
		t.Errorf("noiseless stddev %v >= noisy %v", clean.RemotedStddev, res.RemotedStddev)
	}
}

func TestMeanCallDelayDriftsFromNominal(t *testing.T) {
	// The paper's complaint: the delay a remoting layer induces is not
	// the nominal latency — serialization adds a payload-dependent term.
	cfg := Config{Path: fabric.Preset(fabric.RowScale, 0)}
	res, err := Compare(2048, 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanCallDelay <= res.NominalSlack {
		t.Errorf("mean call delay %v not above nominal slack %v (payload serialization)",
			res.MeanCallDelay, res.NominalSlack)
	}
}

func TestCompareValidation(t *testing.T) {
	if _, err := Compare(0, 10, Config{}); err == nil {
		t.Error("zero matrix accepted")
	}
	if _, err := Compare(512, 0, Config{}); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestInvalidNoisePanics(t *testing.T) {
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	dev, _ := gpu.NewDevice(env, testSpec())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(dev, Config{NoiseFraction: 1.5})
}

func TestDeterministicWithSeed(t *testing.T) {
	cfg := Config{Path: mustPathForSlack(t, 10*sim.Microsecond), NoiseFraction: 0.2, Seed: 3}
	a, err := Compare(512, 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compare(512, 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.RemotedMean != b.RemotedMean || a.RemotedStddev != b.RemotedStddev {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
