package compose

import (
	"fmt"
	"strings"

	"repro/internal/fabric"
)

// JobOutcome reports how one request fared on one architecture.
type JobOutcome struct {
	Request
	Granted    bool
	Allocation *Allocation
	// CoreToGPU is the effective cores-per-GPU ratio the job received
	// (0 when it holds no GPUs).
	CoreToGPU float64
}

// Comparison is the side-by-side result of scheduling the same job set on
// a traditional system and a CDI system with equal total resources.
type Comparison struct {
	Jobs        []Request
	Traditional []JobOutcome
	CDI         []JobOutcome

	TraditionalTrappedGPUs int
	CDITrappedGPUs         int
	TraditionalPowerW      float64
	CDIPowerW              float64
}

// CompareArchitectures schedules jobs on both a traditional machine
// (nodes × coresPerNode cores and gpusPerNode GPUs) and a CDI machine with
// the same totals (the GPUs pooled into chassis reached at the given
// scale), then reports outcomes, trapped resources, and power.
func CompareArchitectures(jobs []Request, nodes, coresPerNode, gpusPerNode, gpusPerChassis int, scale fabric.Scale) (Comparison, error) {
	trad, err := NewTraditional(nodes, coresPerNode, gpusPerNode)
	if err != nil {
		return Comparison{}, err
	}
	totalGPUs := nodes * gpusPerNode
	if gpusPerChassis <= 0 {
		gpusPerChassis = totalGPUs
	}
	chassis := ceilDiv(totalGPUs, gpusPerChassis)
	cdi, err := NewCDI(nodes, coresPerNode, chassis, gpusPerChassis, fabric.Preset(scale, 0))
	if err != nil {
		return Comparison{}, err
	}

	cmp := Comparison{Jobs: jobs}
	run := func(s *System) []JobOutcome {
		var out []JobOutcome
		for _, j := range jobs {
			o := JobOutcome{Request: j}
			a, err := s.Alloc(j)
			if err == nil {
				o.Granted = true
				o.Allocation = a
				if j.GPUs > 0 {
					o.CoreToGPU = float64(a.NodesUsed*s.coresPerNode) / float64(j.GPUs)
				}
			}
			out = append(out, o)
		}
		return out
	}
	cmp.Traditional = run(trad)
	cmp.CDI = run(cdi)
	_, cmp.TraditionalTrappedGPUs = trad.Trapped()
	_, cmp.CDITrappedGPUs = cdi.Trapped()
	pm := DefaultPower()
	cmp.TraditionalPowerW = trad.GPUPowerDraw(pm)
	cmp.CDIPowerW = cdi.GPUPowerDraw(pm)
	return cmp, nil
}

// PaperScenario reproduces the Discussion (§V) example: 20 CPU nodes of 24
// cores, 40 GPUs (2 per node under the traditional architecture), with
// LAMMPS and CosmoFlow each asking for 20 GPUs — CosmoFlow with its
// minimal 4-core CPU need, LAMMPS with its appetite for every core it can
// get.
func PaperScenario() (Comparison, error) {
	jobs := []Request{
		{Name: "cosmoflow", Cores: 4, GPUs: 20},
		{Name: "lammps", Cores: 16 * 24, GPUs: 20, FlexCores: true},
	}
	return CompareArchitectures(jobs, 20, 24, 2, 20, fabric.RowScale)
}

// Render formats the comparison as a table.
func (c Comparison) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-14s %-8s %-10s %-10s %-12s\n", "job", "architecture", "granted", "nodes", "gpus", "cores/gpu")
	row := func(arch string, o JobOutcome) {
		nodes, gpus := "-", "-"
		ratio := "-"
		if o.Granted {
			nodes = fmt.Sprintf("%d", o.Allocation.NodesUsed)
			gpus = fmt.Sprintf("%d", o.Allocation.GPUsGranted)
			if o.CoreToGPU > 0 {
				ratio = fmt.Sprintf("%.1f", o.CoreToGPU)
			}
		}
		fmt.Fprintf(&b, "%-12s %-14s %-8v %-10s %-10s %-12s\n", o.Name, arch, o.Granted, nodes, gpus, ratio)
	}
	for _, o := range c.Traditional {
		row("traditional", o)
	}
	for _, o := range c.CDI {
		row("cdi", o)
	}
	fmt.Fprintf(&b, "trapped GPUs: traditional=%d cdi=%d\n", c.TraditionalTrappedGPUs, c.CDITrappedGPUs)
	fmt.Fprintf(&b, "GPU power:    traditional=%.0fW cdi=%.0fW\n", c.TraditionalPowerW, c.CDIPowerW)
	return b.String()
}
