// Command slackprof applies the paper's methodology to one workload: it
// calibrates a proxy response surface, traces the workload, prints its CDI
// profile (kernel/memcpy characteristics), and predicts its slack penalty
// across the Table IV slack values.
//
//	slackprof -workload lammps -box 120 -procs 8
//	slackprof -workload cosmoflow -epochs 1 -samples 32
//	slackprof -workload proxy -size 2048 -threads 4
//	slackprof -workload lammps -trace /tmp/lammps.json   # dump the trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	cdi "repro"
	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	workload := flag.String("workload", "lammps", "lammps | cosmoflow | proxy")
	box := flag.Int("box", 120, "lammps box size")
	procs := flag.Int("procs", 8, "lammps MPI ranks")
	steps := flag.Int("steps", 40, "lammps MD steps")
	epochs := flag.Int("epochs", 1, "cosmoflow epochs")
	samples := flag.Int("samples", 32, "cosmoflow training samples")
	size := flag.Int("size", 2048, "proxy matrix size")
	threads := flag.Int("threads", 1, "proxy threads")
	iters := flag.Int("iters", 20, "proxy iterations (calibration and proxy workload)")
	traceOut := flag.String("trace", "", "write the trace as JSON to this path")
	chromeOut := flag.String("chrome", "", "write the trace in Chrome Trace Event Format (chrome://tracing, Perfetto)")
	budget := flag.Float64("budget", 0.01, "penalty budget for the reach estimate")
	sweepIn := flag.String("sweep", "", "load a saved calibration sweep (proxysweep -json) instead of re-running it")
	flag.Parse()

	var w cdi.Workload
	switch *workload {
	case "lammps":
		w = cdi.LAMMPSWorkload{Config: cdi.LAMMPSConfig{BoxSize: *box, Procs: *procs, Steps: *steps}}
	case "cosmoflow":
		w = cdi.CosmoFlowWorkload{Config: cdi.CosmoFlowConfig{
			Epochs: *epochs, TrainSamples: *samples, ValSamples: *samples / 2,
		}}
	case "proxy":
		w = core.ProxyWorkload{Config: cdi.ProxyConfig{
			MatrixSize: *size, Threads: *threads, Iters: *iters,
		}}
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}

	var study *cdi.Study
	var err error
	if *sweepIn != "" {
		fmt.Printf("loading calibration sweep from %s...\n", *sweepIn)
		f, err := os.Open(*sweepIn)
		if err != nil {
			log.Fatal(err)
		}
		pts, err := cdi.ReadSweep(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		study, err = cdi.NewStudyFromSweep(pts, nil)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Println("calibrating proxy response surface...")
		study, err = cdi.NewStudy(cdi.StudyConfig{
			Sizes:   []int{1 << 9, 1 << 11, 1 << 13},
			Threads: []int{1, 4, 8},
			Iters:   *iters,
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("tracing %s...\n\n", w.Name())
	app, tr, err := study.Profile(w)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("==== CDI profile: %s ====\n", app.Label)
	fmt.Printf("runtime:           %v\n", tr.Runtime())
	fmt.Printf("kernel fraction:   %.2f%% (%d launches)\n", app.KernelFraction*100, len(app.KernelDurations))
	fmt.Printf("memcpy fraction:   %.2f%% (%d transfers)\n", app.MemcpyFraction*100, len(app.TransferBytes))
	fmt.Printf("parallel streams:  %d (effective parallelism %d)\n", tr.Streams(), app.Parallelism)
	ks := stats.Summarize(app.KernelDurations)
	fmt.Printf("kernel durations:  med %v, max %v\n", cdi.Duration(ks.Median), cdi.Duration(ks.Max))
	ms := stats.Summarize(app.TransferBytes)
	fmt.Printf("transfer sizes:    med %.2f MiB, mean %.2f MiB\n\n", ms.Median/(1<<20), ms.Mean/(1<<20))

	fmt.Println("==== predicted slack penalty (Table IV) ====")
	preds, err := study.Predict(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %-12s %-12s\n", "slack", "lower", "upper")
	for _, p := range preds {
		fmt.Printf("%-10v %-12.5f %-12.5f\n", p.Slack, p.Lower, p.Upper)
	}

	slack, km, err := study.MaxTolerableSlack(app, *budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmax slack within %.1f%% budget: %v  →  %.1f km of fibre\n",
		*budget*100, slack, km)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := tr.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
	if *chromeOut != "" {
		f, err := os.Create(*chromeOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := tr.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("chrome trace written to %s (open in chrome://tracing or Perfetto)\n", *chromeOut)
	}
}
