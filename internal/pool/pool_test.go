package pool

import (
	"math"
	"testing"

	"repro/internal/fabric"
	"repro/internal/serve"
	"repro/internal/sim"
)

// TestFragEdgeCases pins the fragmentation metric's degenerate corners:
// every input produces a finite value in [0, 1], never NaN or a panic.
func TestFragEdgeCases(t *testing.T) {
	cases := []struct {
		name                     string
		totalFree, largest, gang int
		want                     float64
	}{
		{"zero free capacity", 0, 0, 16, 0},
		{"negative free", -3, 0, 16, 0},
		{"zero reference gang", 128, 4, 0, 0},
		{"negative reference gang", 128, 4, -1, 0},
		{"single-GPU pool", 1, 1, 16, 0},
		{"single free fragment", 1, 0, 16, 1},
		{"whole gang fits", 64, 16, 16, 0},
		{"half a gang fits", 64, 8, 16, 0.5},
		{"shattered", 64, 1, 16, 1 - 1.0/16},
		{"largest overshoots denom", 4, 9, 16, 0},
		{"negative largest clamps", 8, -2, 16, 1},
		{"free below gang, block covers it", 5, 5, 16, 0},
	}
	for _, c := range cases {
		got := Fragmentation(c.totalFree, c.largest, c.gang)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("%s: Fragmentation(%d,%d,%d) = %v, want finite",
				c.name, c.totalFree, c.largest, c.gang, got)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Fragmentation(%d,%d,%d) = %g, want %g",
				c.name, c.totalFree, c.largest, c.gang, got, c.want)
		}
		if got < 0 || got > 1 {
			t.Errorf("%s: metric %g outside [0,1]", c.name, got)
		}
	}
	strandedCases := []struct {
		free, capEff, gang, want int
	}{
		{-1, 16, 16, 0},  // nothing free
		{0, 16, 16, 0},   // exhausted server
		{3, 16, 16, 3},   // trapped fragment
		{15, 16, 16, 15}, // one shy of the gang
		{16, 16, 16, 0},  // whole gang fits
		{40, 16, 16, 0},  // oversized block
		{15, 15, 16, 0},  // fully-free pinned server: small, not stranded
		{14, 15, 16, 14}, // pinned server with one job
		{4, 16, 0, 0},    // no reference demand
	}
	for _, c := range strandedCases {
		if got := strandedContrib(c.free, c.capEff, c.gang); got != c.want {
			t.Errorf("strandedContrib(%d, %d, %d) = %d, want %d",
				c.free, c.capEff, c.gang, got, c.want)
		}
	}
}

// TestGenerateJobs checks the schedule generator: deterministic across
// calls, warm cohort covering the load target, arrivals inside the
// window, and the zero-intensity arm frozen (no arrivals, lifetimes past
// the window).
func TestGenerateJobs(t *testing.T) {
	w := Workload{Seed: 1, Window: 100 * sim.Millisecond, Load: 0.75, Intensity: 1}
	a, err := GenerateJobs(w, 1024)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GenerateJobs(w, 1024)
	if len(a) != len(b) {
		t.Fatalf("generator not deterministic: %d vs %d jobs", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generator not deterministic at job %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	covered := 0
	for _, j := range a {
		if j.Arrival == 0 {
			covered += j.Gang
		}
		if j.Arrival.Sub(0) >= w.Window {
			t.Fatalf("job %d arrives at %v, beyond the window", j.ID, j.Arrival)
		}
		if j.Gang < 1 || j.Gang > 16 || j.Lifetime <= 0 {
			t.Fatalf("job %d malformed: %+v", j.ID, j)
		}
	}
	if covered < 768 {
		t.Fatalf("warm cohort covers %d GPUs, want >= 768", covered)
	}

	frozen, err := GenerateJobs(Workload{Seed: 1, Window: 100 * sim.Millisecond, Load: 0.5}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range frozen {
		if j.Arrival != 0 {
			t.Fatalf("zero-intensity workload generated an arrival at %v", j.Arrival)
		}
		if j.Lifetime < 2*w.Window {
			t.Fatalf("zero-intensity lifetime %v inside the window", j.Lifetime)
		}
	}
}

// testTopo is a small pool for unit runs: 2 rows × 2 racks × 4 servers ×
// 8 GPUs = 128 GPUs on 16 servers.
func testTopo() Topology {
	return Topology{Rows: 2, RacksPerRow: 2, ServersPerRack: 4, GPUsPerServer: 8}
}

func runPool(t *testing.T, cfg Config) Stats {
	t.Helper()
	env := sim.NewEnv()
	defer env.Close()
	s, err := Start(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env.Run()
	return s.Stats()
}

// TestSchedulerSmoke runs a churning pool to completion and checks the
// accounting invariants: every job resolves, goodput lands in (0, 1],
// metrics stay finite.
func TestSchedulerSmoke(t *testing.T) {
	for pol := FirstFit; pol <= TierAware; pol++ {
		st := runPool(t, Config{
			Topo:   testTopo(),
			Policy: pol,
			Workload: Workload{
				Seed: 7, Window: 50 * sim.Millisecond, Load: 0.7, Intensity: 1,
			},
			Defrag: true,
		})
		if st.Jobs == 0 || st.Placed == 0 {
			t.Fatalf("%v: no jobs ran: %+v", pol, st)
		}
		if st.Placed+st.Killed < st.Jobs {
			t.Fatalf("%v: %d jobs, only %d placed + %d killed", pol, st.Jobs, st.Placed, st.Killed)
		}
		if st.Goodput <= 0 || st.Goodput > 1 {
			t.Fatalf("%v: goodput %g outside (0, 1]", pol, st.Goodput)
		}
		if math.IsNaN(st.FragAvg) || st.FragAvg < 0 || st.FragAvg > 1 {
			t.Fatalf("%v: frag average %g", pol, st.FragAvg)
		}
		if st.StrandedAvg < 0 {
			t.Fatalf("%v: stranded average %g", pol, st.StrandedAvg)
		}
		if st.PeakConcurrent <= 0 {
			t.Fatalf("%v: peak concurrency %d", pol, st.PeakConcurrent)
		}
	}
}

// TestSchedulerDeterminism: same config, two private envs, identical
// stats.
func TestSchedulerDeterminism(t *testing.T) {
	cfg := Config{
		Topo:   testTopo(),
		Policy: TierAware,
		Workload: Workload{
			Seed: 11, Window: 50 * sim.Millisecond, Load: 0.8, Intensity: 1,
		},
		Defrag: true,
	}
	a := runPool(t, cfg)
	b := runPool(t, cfg)
	if a != b {
		t.Fatalf("runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestZeroChurnFrozen: the intensity-0 arm places once and never
// migrates, with or without the defragmenter.
func TestZeroChurnFrozen(t *testing.T) {
	base := Config{
		Topo:   testTopo(),
		Policy: BestFit,
		Workload: Workload{
			Seed: 3, Window: 50 * sim.Millisecond, Load: 0.75,
		},
	}
	off := runPool(t, base)
	on := base
	on.Defrag = true
	got := runPool(t, on)
	if got.Migrations != 0 {
		t.Fatalf("zero-churn defrag arm migrated %d times", got.Migrations)
	}
	if got != off {
		t.Fatalf("defrag changed the zero-churn run:\noff %+v\non  %+v", off, got)
	}
	if off.Blocked != 0 || off.Killed != 0 {
		t.Fatalf("zero-churn arm blocked %d / killed %d jobs", off.Blocked, off.Killed)
	}
}

// TestTierAwareGate: on a pool whose every server is too small for the
// big gangs, the tier-aware policy must still only accept spreads above
// each shape's efficiency floor — so its average efficiency (goodput per
// delivered GPU-second) beats first-fit's on the same schedule.
func TestTierAwareGate(t *testing.T) {
	cfg := Config{
		Topo: Topology{Rows: 2, RacksPerRow: 2, ServersPerRack: 4, GPUsPerServer: 4},
		Workload: Workload{
			Seed: 5, Window: 50 * sim.Millisecond, Load: 0.8, Intensity: 1,
		},
	}
	cfg.Policy = FirstFit
	ff := runPool(t, cfg)
	cfg.Policy = TierAware
	ta := runPool(t, cfg)
	if ta.Goodput <= 0 || ff.Goodput <= 0 {
		t.Fatalf("degenerate goodput: firstfit %g tieraware %g", ff.Goodput, ta.Goodput)
	}
	effFF := ff.GoodputGPUs * cfg.Workload.Window.Seconds()
	effTA := ta.GoodputGPUs * cfg.Workload.Window.Seconds()
	if effTA <= 0 || effFF <= 0 {
		t.Fatalf("no delivered GPU-seconds: firstfit %g tieraware %g", effFF, effTA)
	}
}

// TestServingReservation: the serving slice is placed through the serve
// placer, pinned ahead of batch placement, and reported with its slack.
func TestServingReservation(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	s, err := Start(env, Config{
		Topo:   testTopo(),
		Policy: BestFit,
		Workload: Workload{
			Seed: 1, Window: 10 * sim.Millisecond, Load: 0.5,
		},
		Serving: []serve.Tenant{
			{Name: "chat", Rate: 100, MeanPromptTokens: 32, MeanOutputTokens: 8,
				SLO: 25 * sim.Millisecond},
		},
		ServingGPUs: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	env.Run()
	st := s.Stats()
	if st.ServingReplicas != 4 {
		t.Fatalf("serving replicas %d, want 4", st.ServingReplicas)
	}
	if st.ServingSlackMean <= 0 {
		t.Fatalf("serving slack %v, want > 0 at row scale", st.ServingSlackMean)
	}
	if st.Goodput <= 0 {
		t.Fatalf("batch goodput %g alongside the reservation", st.Goodput)
	}
}

// TestEfficiencyTable pins the penalty-model pricing the policies gate
// on.
func TestEfficiencyTable(t *testing.T) {
	cases := []struct {
		shape Shape
		scale fabric.Scale
		want  float64
	}{
		{LammpsShape, fabric.NodeLocal, 1},
		{LammpsShape, fabric.RackScale, 0.955},
		{LammpsShape, fabric.RowScale, 0.813},
		{CosmoFlowShape, fabric.RowScale, 0.977},
		{CosmoFlowShape, fabric.ClusterScale, 0.930},
	}
	for _, c := range cases {
		got := EfficiencyAt(c.shape, c.scale)
		if math.Abs(got-c.want) > 0.005 {
			t.Errorf("EfficiencyAt(%v, %v) = %.3f, want ~%.3f", c.shape, c.scale, got, c.want)
		}
		if c.scale > fabric.NodeLocal && got >= 1 {
			t.Errorf("EfficiencyAt(%v, %v) = %g, spread must cost something", c.shape, c.scale, got)
		}
	}
}

// TestTopology pins the index arithmetic.
func TestTopology(t *testing.T) {
	topo := DefaultTopology()
	if topo.GPUs() != 8192 || topo.Servers() != 512 || topo.Racks() != 64 {
		t.Fatalf("default topology: %d GPUs, %d servers, %d racks", topo.GPUs(), topo.Servers(), topo.Racks())
	}
	if topo.RackOf(0) != 0 || topo.RackOf(8) != 1 || topo.RowOf(63) != 0 || topo.RowOf(64) != 1 {
		t.Fatal("rack/row indexing broken")
	}
	cases := []struct {
		a, b int
		want fabric.Scale
	}{
		{0, 0, fabric.NodeLocal},
		{0, 7, fabric.RackScale},
		{0, 8, fabric.RowScale},
		{0, 63, fabric.RowScale},
		{0, 64, fabric.ClusterScale},
	}
	for _, c := range cases {
		if got := topo.CrossingScale(c.a, c.b); got != c.want {
			t.Errorf("CrossingScale(%d, %d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
