// Corpus for the floateq analyzer: exact floating-point comparison.
// Lines marked "// want" must produce exactly one finding.
package corpus

type seconds float64

func comparesComputed(a, b float64) bool {
	return a == b // want
}

func notEqualFloat32(a, b float32) bool {
	return a != b // want
}

func namedFloatTypes(a, b seconds) bool {
	return a == b // want
}

func suppressedCompare(a, b float64) bool {
	//cdivet:allow floateq corpus: demonstrates a justified suppression
	return a == b
}

const threshold = 1.5

// constantGuards compare against compile-time constants — deterministic by
// construction, and the usual way to guard division.
func constantGuards(x float64) float64 {
	if x == 0 {
		return 0
	}
	if x == threshold {
		return 1
	}
	return 1 / x
}

// intComparisonsAreFine: the rule is about floats only.
func intComparisonsAreFine(a, b int) bool { return a == b }
