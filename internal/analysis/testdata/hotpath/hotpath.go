// Package corpus exercises the hotpath analyzer: per-iteration allocation
// patterns in functions reachable from hot roots (benchmarks, configured
// steady-state methods, //cdivet:hotpath directives).
package corpus

import (
	"fmt"
	"strconv"
)

// hotLoop is an explicit hot root; each per-iteration allocation pattern
// inside its lexical loops is flagged.
//
//cdivet:hotpath
func hotLoop(items []int, names []string) []string {
	prefix := "n-"
	out := make([]string, 0, len(items)) // capacity-hinted: no finding
	for _, it := range items {
		s := fmt.Sprintf("item-%d", it) // want
		t := prefix + s                 // want
		u := "it-" + strconv.Itoa(it)   // preformatted parts (the sprintf fix's own output): no finding
		msg := u
		msg += t // want
		out = append(out, msg)
		logf("x", it) // want
	}
	for range names {
		err := fmt.Errorf("bad element") // want
		_ = err
	}
	return out
}

// logf has a variadic any parameter: non-pointer concrete arguments box at
// every hot call site.
func logf(f string, args ...any) { _, _ = f, args }

// appendGrow grows a loop-local slice with no capacity hint; the finding
// lands on the declaration and carries a make(cap) fix.
//
//cdivet:hotpath
func appendGrow(items []int) []int {
	grown := []int{} // want
	for _, it := range items {
		grown = append(grown, it)
	}
	return grown
}

// perIterScratch declares the slice inside the loop that appends to it, so
// it is not grown across iterations — no hotpath finding (the per-iteration
// allocation itself is the escape rule's business).
//
//cdivet:hotpath
func perIterScratch(items []int) int {
	last := 0
	for range items {
		scratch := []int{}
		scratch = append(scratch, last)
		last = scratch[0] + 1
	}
	return last
}

// runOnce is reached from BenchmarkIterate's harness loop only: the
// harness loop is not loop context, so its top-level body stays quiet and
// only its own lexical loop is hot.
func runOnce(items []int) string {
	head := fmt.Sprintf("run-%d", len(items)) // harness-only context: no finding
	s := head
	for _, it := range items {
		s = s + strconv.Itoa(it) // want
	}
	return s
}

// perBatch is called from inside an application-level loop of the
// benchmark, so its whole body is per-iteration.
func perBatch(items []int) string {
	return fmt.Sprintf("batch-%d", len(items)) // want
}

// suppressed shows a justified suppression covering the findings on the
// next line.
//
//cdivet:hotpath
func suppressed(items []int) string {
	s := ""
	for _, it := range items {
		//cdivet:allow hotpath drain path runs once per shutdown, not per iteration
		s += fmt.Sprintf("%d", it)
	}
	return s
}

// coldHelper is reachable from no root: identical patterns, no findings.
func coldHelper(items []int) string {
	s := ""
	for _, it := range items {
		s += fmt.Sprintf("%d", it)
	}
	return s
}
