package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags statement-position calls in internal, cmd, and examples
// packages whose error result vanishes. A swallowed error in a persistence
// or rendering path turns a failed write into a silently truncated artifact
// — worse than a crash for a reproduction whose whole output is regenerated
// files; in a cmd/ entry point it additionally turns a failed run into exit
// status 0. The rule covers plain expression statements only: `_ =` is
// visible intent, and `defer f.Close()` is conventional cleanup. Calls to
// fmt's print family and to the never-failing bytes.Buffer /
// strings.Builder writers are exempt.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "silently discarded error return in an internal, cmd, or examples package",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	p := pass.Path + "/"
	if !strings.Contains(p, "/internal/") && !strings.Contains(p, "/cmd/") && !strings.Contains(p, "/examples/") {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, drops := dropsError(pass.Info, call); drops {
				pass.Reportf(call.Pos(), "%s returns an error that is silently discarded; handle it or assign to _ explicitly", name)
			}
			return true
		})
	}
}

// dropsError reports whether call discards an error-typed result, naming
// the callee for the diagnostic.
func dropsError(info *types.Info, call *ast.CallExpr) (string, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return "", false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return "", false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return "", false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return "", false
	}

	name := "call"
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
		if fn, ok := info.Uses[fun].(*types.Func); ok && exemptErrDrop(fn) {
			return "", false
		}
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if exemptErrDrop(fn) {
				return "", false
			}
			name = fn.FullName()
		}
	}
	return name, true
}

// exemptErrDrop lists callees whose dropped error is conventional: fmt's
// print family (errors only on broken writers, and the repo's uses target
// stdout) and the in-memory writers that document they never fail.
func exemptErrDrop(fn *types.Func) bool {
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fn.Type().(*types.Signature).Recv() == nil {
		n := fn.Name()
		return strings.HasPrefix(n, "Print") || strings.HasPrefix(n, "Fprint")
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type().String()
		return strings.Contains(t, "strings.Builder") || strings.Contains(t, "bytes.Buffer")
	}
	return false
}
