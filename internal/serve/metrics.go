package serve

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// Metrics is the raw measurement record of one (or several merged)
// serving engines. Slices are in completion order, which is deterministic.
type Metrics struct {
	// Requests is the offered load; Completed counts requests served.
	Requests  int
	Completed int
	// Latencies holds each completed request's arrival→completion latency
	// in seconds, in completion order.
	Latencies []float64
	// SLOMet counts completed requests that finished within their
	// tenant's SLO.
	SLOMet int
	// Shed counts requests the admission gate dropped (queue wait past
	// SLO, or backpressure overflow); ShedByTenant breaks the count down
	// by tenant index. Shed requests are not failures — the gate gave
	// their device time to requests that could still meet their SLOs.
	Shed         int
	ShedByTenant []int
	// BatchSizes records the decode batch width of every executed
	// iteration; QueueDepths records the admission-queue depth observed at
	// the start of each iteration.
	BatchSizes  []float64
	QueueDepths []float64
	// Hist accumulates the same latencies into an HDR-style fixed-edge
	// log histogram (1 µs – 1000 s, 8 bins/decade) for constant-space
	// aggregation across engines and windows.
	Hist *stats.LatencyHist
}

// newMetrics returns an empty record.
func newMetrics() *Metrics {
	return &Metrics{Hist: stats.NewLatencyHist(1e-6, 1e3, 8)}
}

// record registers one completed request.
func (m *Metrics) record(latency sim.Duration, slo sim.Duration) {
	m.Completed++
	m.Latencies = append(m.Latencies, latency.Seconds())
	m.Hist.Add(latency.Seconds())
	if latency <= slo {
		m.SLOMet++
	}
}

// shed registers one shed request against its tenant.
func (m *Metrics) shed(tenant int) {
	m.Shed++
	for len(m.ShedByTenant) <= tenant {
		m.ShedByTenant = append(m.ShedByTenant, 0)
	}
	m.ShedByTenant[tenant]++
}

// Merge folds other engines' metrics into m (for multi-replica pools).
// Slices concatenate in argument order, so merging is deterministic as
// long as the caller passes replicas in a fixed order.
func (m *Metrics) Merge(others ...*Metrics) {
	for _, o := range others {
		m.Requests += o.Requests
		m.Completed += o.Completed
		m.SLOMet += o.SLOMet
		m.Shed += o.Shed
		for ti, n := range o.ShedByTenant {
			for len(m.ShedByTenant) <= ti {
				m.ShedByTenant = append(m.ShedByTenant, 0)
			}
			m.ShedByTenant[ti] += n
		}
		m.Latencies = append(m.Latencies, o.Latencies...)
		m.BatchSizes = append(m.BatchSizes, o.BatchSizes...)
		m.QueueDepths = append(m.QueueDepths, o.QueueDepths...)
		for _, l := range o.Latencies {
			m.Hist.Add(l)
		}
	}
}

// Report is the SLO-grade summary of a serving window.
type Report struct {
	Requests  int
	Completed int
	// Shed counts admission-gate drops; Failed is what remains — offered
	// but neither completed nor deliberately shed (the engine died, or
	// the window closed mid-flight). ShedRate is Shed over Requests.
	Shed     int
	Failed   int
	ShedRate float64
	// Latency quantiles over completed requests.
	P50, P95, P99, P999 sim.Duration
	// SLOAttainment is the fraction of offered requests that completed
	// within their tenant's SLO; Goodput is the same count expressed as a
	// rate over the serving window (requests/second).
	SLOAttainment float64
	Goodput       float64
	// Batch-size and queue-depth distribution summaries.
	MeanBatch float64
	MaxBatch  float64
	MeanQueue float64
	MaxQueue  float64
}

// Report summarizes the metrics for a window of the given length.
func (m *Metrics) Report(window sim.Duration) Report {
	qs := stats.Quantiles(m.Latencies, []float64{0.50, 0.95, 0.99, 0.999})
	r := Report{
		Requests:  m.Requests,
		Completed: m.Completed,
		Shed:      m.Shed,
		Failed:    m.Requests - m.Completed - m.Shed,
		P50:       sim.Duration(qs[0]),
		P95:       sim.Duration(qs[1]),
		P99:       sim.Duration(qs[2]),
		P999:      sim.Duration(qs[3]),
	}
	if m.Requests > 0 {
		r.SLOAttainment = float64(m.SLOMet) / float64(m.Requests)
		r.ShedRate = float64(m.Shed) / float64(m.Requests)
	}
	if window > 0 {
		r.Goodput = float64(m.SLOMet) / window.Seconds()
	}
	if len(m.BatchSizes) > 0 {
		r.MeanBatch = stats.Mean(m.BatchSizes)
		r.MaxBatch = stats.Max(m.BatchSizes)
	}
	if len(m.QueueDepths) > 0 {
		r.MeanQueue = stats.Mean(m.QueueDepths)
		r.MaxQueue = stats.Max(m.QueueDepths)
	}
	return r
}
