// Corpus for the barego analyzer: goroutines outside internal/sim. The
// corpus loads under a synthetic repro/internal/... path so the rule is in
// scope. Lines marked "// want" must produce exactly one finding.
package corpus

func bareGoroutines(ch chan int) {
	go func() { ch <- 1 }() // want
	go helper(ch)           // want
}

func helper(ch chan int) { ch <- 2 }

func suppressedGoroutine(ch chan int) {
	//cdivet:allow barego corpus: demonstrates a justified suppression
	go helper(ch)
}

// closuresAreFine: only the go keyword creates scheduler-owned
// concurrency; plain function values stay on the caller's stack.
func closuresAreFine(ch chan int) {
	f := func() { ch <- 3 }
	f()
}
