package sim

import (
	"math"
	"math/bits"
)

// This file implements the sharded event-queue layer behind Env's clock.
//
// Events are partitioned by *shard* — a spawn-time domain key (a device, a
// node, an OpenMP thread) — and each shard owns an independent queue
// optimized for the near-term schedule/cancel traffic that dominates every
// workload in this repository. The clock drains the shards through an
// ordered merge keyed on (time, seq): seq is a single global counter
// assigned at schedule time, so the merged delivery order is *identical* to
// the order a single global queue would produce, regardless of how procs
// are distributed across shards. Sharding is therefore a pure data-structure
// change: experiment outputs are byte-identical with one shard or fifty.
//
// Each shard queue is a ladder-style hierarchy with three levels:
//
//	ring — a timing wheel of wheelBuckets buckets, wheelTick wide each,
//	       covering the window [now, now+wheelSpan). Insertion is O(1):
//	       compute the bucket index, prepend to an intrusive chain.
//	cur  — a small binary heap holding the events of the lowest occupied
//	       tick(s), staged out of the ring when the merge first needs them.
//	       Same-instant bursts (Signal.Fire fan-out) land here in O(log k)
//	       of the burst size, not O(log n) of the whole simulation.
//	far  — a binary heap for events beyond the wheel window (open-loop
//	       arrival schedules, multi-second sleeps). These never migrate:
//	       the merge simply compares the far head against the staged head,
//	       so there is no cascade cost when the window advances.
//
// Cancellation stays O(1) and lazy: a cancelled event keeps its slot and is
// discarded when it surfaces, exactly as the previous global heap did.

const (
	// wheelBuckets is the timing-wheel size; must be a power of two.
	wheelBuckets = 256
	wheelMask    = wheelBuckets - 1
	// wheelTick is the bucket granularity. One microsecond matches the
	// event spacing of the kernel/DMA/slack paths that produce nearly all
	// schedule traffic; events further than wheelSpan out fall to `far`.
	wheelTick = float64(Microsecond)
	// invWheelTick converts a Time in seconds to a wheel tick index.
	invWheelTick = 1.0 / wheelTick
)

// tickOf quantizes an absolute time to its wheel tick. Monotone in t, so
// tick order never contradicts time order.
func tickOf(t Time) int64 { return int64(float64(t) * invWheelTick) }

// mathInf is +Inf without importing math twice at every use site.
var mathInf = math.Inf(1)

// evLess is the engine's total event order: time first, then the global
// schedule sequence as FIFO tie-break.
func evLess(a, b *event) bool {
	//cdivet:allow floateq exact tie-break: events at bit-identical times fall through to the seq FIFO order; an epsilon would merge distinct instants
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventHeap is a hand-rolled binary min-heap ordered by evLess. The
// container/heap interface would force an `any` conversion and dynamic
// dispatch on the hottest queue path; these two loops are the whole of
// what the engine needs.
type eventHeap []*event

func (h *eventHeap) pushEv(ev *event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !evLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) popMin() *event {
	s := *h
	n := len(s) - 1
	min := s[0]
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	*h = s
	// Sift the moved element down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && evLess(s[l], s[least]) {
			least = l
		}
		if r < n && evLess(s[r], s[least]) {
			least = r
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return min
}

// shardQueue is one shard's pending-event store.
type shardQueue struct {
	ring      []*event // wheelBuckets bucket chains; nil until first near push
	occ       [wheelBuckets / 64]uint64
	ringCount int
	cur       eventHeap // staged lowest-tick events, ready for the merge
	far       eventHeap // events beyond the wheel window

	// head caches the queue's (possibly cancelled) minimum between merge
	// scans; pops and head-displacing pushes invalidate it.
	head      *event
	headFar   bool
	headValid bool
	// dirty means the queue sits in the environment's merge refresh list
	// (Env.dirty); the flag keeps it there at most once.
	dirty bool

	// curBuf/farBuf seed the heaps' first few entries in place: most shards
	// (an OpenMP thread, a congestion host) hold one or two pending events,
	// and without the inline capacity every such shard would pay heap-growth
	// allocations during topology warm-up.
	curBuf [4]*event
	farBuf [4]*event
}

func (q *shardQueue) empty() bool {
	return q.ringCount == 0 && len(q.cur) == 0 && len(q.far) == 0
}

// push inserts ev into s's queue. cursor is the wheel tick of the current
// clock; all live events satisfy tick >= cursor, so the window test against
// the insertion cursor stays valid as the clock advances.
func (s *Shard) push(ev *event, cursor int64) {
	q := &s.q
	// A push can only displace the cached minimum if it sorts before it;
	// keeping the cache valid otherwise spares the merge a refresh of this
	// shard (steady-state wake-ups land behind the head far more often
	// than in front of it).
	if !q.headValid || q.head == nil || evLess(ev, q.head) {
		q.headValid = false
	}
	t := tickOf(ev.at)
	if t-cursor >= wheelBuckets {
		if q.far == nil {
			q.far = q.farBuf[:0]
		}
		q.far.pushEv(ev)
		return
	}
	if q.ring == nil {
		q.ring = s.env.newRing()
	}
	idx := t & wheelMask
	ev.link = q.ring[idx]
	q.ring[idx] = ev
	q.occ[idx>>6] |= 1 << (idx & 63)
	q.ringCount++
}

// firstOccupiedTick returns the lowest tick with a non-empty ring bucket.
// Bucket indices wrap, but because every live tick lies in
// [cursor, cursor+wheelBuckets), index order starting at cursor&mask IS
// tick order.
func (q *shardQueue) firstOccupiedTick(cursor int64) (int64, bool) {
	if q.ringCount == 0 {
		return 0, false
	}
	start := int(cursor) & wheelMask
	// Bits at or above start first; the fifth pass revisits the starting
	// word unmasked to pick up wrapped bits below start.
	w := start >> 6
	word := q.occ[w] &^ ((1 << (start & 63)) - 1)
	for i := 0; i <= len(q.occ); i++ {
		if word != 0 {
			idx := (w&3)<<6 + bits.TrailingZeros64(word)
			off := idx - start
			if off < 0 {
				off += wheelBuckets
			}
			return cursor + int64(off), true
		}
		w++
		word = q.occ[w&3]
	}
	return 0, false
}

// stage moves bucket tick's chain into the cur heap and clears its bit.
func (q *shardQueue) stage(tick int64) {
	idx := tick & wheelMask
	ev := q.ring[idx]
	q.ring[idx] = nil
	q.occ[idx>>6] &^= 1 << (idx & 63)
	if q.cur == nil {
		q.cur = q.curBuf[:0]
	}
	for ev != nil {
		next := ev.link
		ev.link = nil
		q.cur.pushEv(ev)
		q.ringCount--
		ev = next
	}
}

// peek returns the queue's minimum event (which may be cancelled) without
// removing it, staging ring buckets as needed. cursor is tickOf(now).
func (q *shardQueue) peek(cursor int64) *event {
	if q.headValid {
		return q.head
	}
	// Stage every ring bucket that could precede (or interleave with) the
	// staged minimum: bucket ticks strictly below tickOf(cur-min) hold
	// strictly earlier events; an equal tick can interleave by seq.
	for q.ringCount > 0 {
		fb, ok := q.firstOccupiedTick(cursor)
		if !ok {
			break
		}
		if len(q.cur) > 0 && fb > tickOf(q.cur[0].at) {
			break
		}
		q.stage(fb)
	}
	q.head, q.headFar = nil, false
	if len(q.cur) > 0 {
		q.head = q.cur[0]
	}
	if len(q.far) > 0 && (q.head == nil || evLess(q.far[0], q.head)) {
		q.head, q.headFar = q.far[0], true
	}
	q.headValid = true
	return q.head
}

// popHead removes the event peek returned. Callers must have called peek
// (with the same cursor) since the last mutation.
func (q *shardQueue) popHead() *event {
	var ev *event
	if q.headFar {
		ev = q.far.popMin()
	} else {
		ev = q.cur.popMin()
	}
	q.headValid = false
	return ev
}

// Shard is an event domain within an Env: processes spawned on a shard keep
// their wake-up events in that shard's queue. Shards change nothing about
// delivery order — the clock merges all shards by (time, seq) — they only
// bound the queue each schedule/cancel touches, which is what lets
// thousands of concurrent processes coexist without fighting one structure.
type Shard struct {
	env *Env
	id  int
	q   shardQueue
}

// NewShard creates an additional event domain. Processes that model one
// hardware domain (a device, a node, a submitter thread) should share a
// shard; unrelated domains should get their own.
func (e *Env) NewShard() *Shard {
	if len(e.shardSlab) == 0 {
		//cdivet:allow escape shards are slab-allocated in chunks at topology setup, one chunk per 8 domains
		e.shardSlab = make([]Shard, 8)
	}
	s := &e.shardSlab[0]
	e.shardSlab = e.shardSlab[1:]
	s.env, s.id = e, len(e.shards)
	e.shards = append(e.shards, s)
	e.heads = append(e.heads, headKey{at: mathInf, seq: ^uint64(0)})
	e.mergeRebuild()
	// Mirror entries are only maintained while the merge runs multi-shard,
	// so force a refresh of every queue when the topology grows.
	for _, sh := range e.shards {
		e.markDirty(sh)
	}
	return s
}

// Env returns the environment that owns the shard.
func (s *Shard) Env() *Env { return s.env }

// ID returns the shard's creation index; shard 0 is the environment's
// default domain.
func (s *Shard) ID() int { return s.id }

// Spawn creates a process in this shard running fn, starting at the
// current virtual time.
func (s *Shard) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.SpawnAt(0, name, fn)
}

// SpawnAt is Spawn with a start delay.
func (s *Shard) SpawnAt(delay Duration, name string, fn func(p *Proc)) *Proc {
	return s.env.spawnAt(s, delay, name, fn)
}
