package serve

import (
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/remoting"
	"repro/internal/sim"
)

// Transport is the engine's seam onto a GPU: either a cuda.Context whose
// calls a slack.Injector delays (the paper's controlled-injection method),
// or the fault-tolerant remoting transport, under which every submission
// round-trips the fabric and the fault schedule applies.
type Transport interface {
	Malloc(p *sim.Proc, n int64) (gpu.Ptr, error)
	Free(p *sim.Proc, h gpu.Ptr) error
	MemcpyH2D(p *sim.Proc, h gpu.Ptr, n int64) error
	MemcpyD2H(p *sim.Proc, h gpu.Ptr, n int64) error
	// RunKernels submits ks in order and returns when all have completed.
	RunKernels(p *sim.Proc, ks []gpu.Kernel) error
}

// Local drives a node-attached (or slack-injected) GPU through a
// cuda.Context, submitting kernel sequences asynchronously on a dedicated
// stream and synchronizing once per sequence — the batcher's submission
// pattern on a healthy pool.
type Local struct {
	ctx    *cuda.Context
	stream *gpu.Stream
}

// NewLocal wraps ctx in a Transport. The dedicated stream is created
// lazily on first kernel submission (stream creation is itself an API
// call that needs a sim proc).
func NewLocal(ctx *cuda.Context) *Local { return &Local{ctx: ctx} }

// Context exposes the underlying context (for interposer registration).
func (l *Local) Context() *cuda.Context { return l.ctx }

func (l *Local) Malloc(p *sim.Proc, n int64) (gpu.Ptr, error) { return l.ctx.Malloc(p, n) }
func (l *Local) Free(p *sim.Proc, h gpu.Ptr) error            { return l.ctx.Free(p, h) }
func (l *Local) MemcpyH2D(p *sim.Proc, h gpu.Ptr, n int64) error {
	return l.ctx.MemcpyH2D(p, h, n)
}
func (l *Local) MemcpyD2H(p *sim.Proc, h gpu.Ptr, n int64) error {
	return l.ctx.MemcpyD2H(p, h, n)
}

func (l *Local) RunKernels(p *sim.Proc, ks []gpu.Kernel) error {
	if l.stream == nil {
		l.stream = l.ctx.StreamCreate(p)
	}
	for _, k := range ks {
		l.ctx.Launch(p, k, l.stream)
	}
	l.ctx.StreamSynchronize(p, l.stream)
	return nil
}

// Remote drives a GPU through the fault-tolerant remoting transport.
// Every kernel submission is a synchronous round trip (the rCUDA model),
// so the path's latency — and any faults on it — sit on the batcher's
// critical path.
type Remote struct {
	r *remoting.Resilient
}

// NewRemote wraps a resilient transport.
func NewRemote(r *remoting.Resilient) *Remote { return &Remote{r: r} }

// Resilient exposes the underlying transport (for stats).
func (r *Remote) Resilient() *remoting.Resilient { return r.r }

func (r *Remote) Malloc(p *sim.Proc, n int64) (gpu.Ptr, error) { return r.r.Malloc(p, n) }
func (r *Remote) Free(p *sim.Proc, h gpu.Ptr) error            { return r.r.Free(p, h) }
func (r *Remote) MemcpyH2D(p *sim.Proc, h gpu.Ptr, n int64) error {
	return r.r.MemcpyH2D(p, h, n)
}
func (r *Remote) MemcpyD2H(p *sim.Proc, h gpu.Ptr, n int64) error {
	return r.r.MemcpyD2H(p, h, n)
}

func (r *Remote) RunKernels(p *sim.Proc, ks []gpu.Kernel) error {
	for _, k := range ks {
		if err := r.r.LaunchSync(p, k); err != nil {
			return err
		}
	}
	return r.r.DeviceSynchronize(p)
}

var (
	_ Transport = (*Local)(nil)
	_ Transport = (*Remote)(nil)
)
