package cosmoflow

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is one differentiable stage of the network. Forward consumes the
// previous activation; Backward consumes the loss gradient w.r.t. the
// layer output and returns the gradient w.r.t. its input, accumulating
// parameter gradients internally.
type Layer interface {
	Forward(x *Tensor) *Tensor
	Backward(dout *Tensor) *Tensor
	// Params returns parameter/gradient slice pairs for the optimizer and
	// the Horovod allreduce (nil for parameter-free layers).
	Params() []ParamGrad
	Name() string
}

// ParamGrad pairs a parameter vector with its gradient accumulator.
type ParamGrad struct {
	Param []float64
	Grad  []float64
}

// Conv3D is a 3-D convolution with kernel size K, stride 1 and zero
// padding K/2 ("same").
type Conv3D struct {
	Cin, Cout, K int
	// W is [cout][cin][kz][ky][kx] flattened; B is per-output-channel bias.
	W, B   []float64
	dW, dB []float64
	x      *Tensor // saved input for backward
}

// NewConv3D builds a conv layer with He-initialized weights.
func NewConv3D(cin, cout, k int, rng *rand.Rand) *Conv3D {
	if k%2 == 0 {
		panic("cosmoflow: conv kernel must be odd for same padding")
	}
	n := cout * cin * k * k * k
	c := &Conv3D{
		Cin: cin, Cout: cout, K: k,
		W: make([]float64, n), B: make([]float64, cout),
		dW: make([]float64, n), dB: make([]float64, cout),
	}
	std := math.Sqrt(2 / float64(cin*k*k*k))
	for i := range c.W {
		c.W[i] = rng.NormFloat64() * std
	}
	return c
}

// Name implements Layer.
func (c *Conv3D) Name() string { return fmt.Sprintf("conv3d_%dx%d", c.Cin, c.Cout) }

// widx returns the flat weight index.
func (c *Conv3D) widx(co, ci, kz, ky, kx int) int {
	return (((co*c.Cin+ci)*c.K+kz)*c.K+ky)*c.K + kx
}

// Forward implements Layer.
func (c *Conv3D) Forward(x *Tensor) *Tensor {
	if x.C != c.Cin {
		panic(fmt.Sprintf("cosmoflow: conv input channels %d, want %d", x.C, c.Cin))
	}
	c.x = x
	out := NewTensor(c.Cout, x.D, x.H, x.W)
	p := c.K / 2
	for co := 0; co < c.Cout; co++ {
		for z := 0; z < x.D; z++ {
			for y := 0; y < x.H; y++ {
				for xx := 0; xx < x.W; xx++ {
					sum := c.B[co]
					for ci := 0; ci < c.Cin; ci++ {
						for kz := 0; kz < c.K; kz++ {
							for ky := 0; ky < c.K; ky++ {
								for kx := 0; kx < c.K; kx++ {
									v := x.atPadded(ci, z+kz-p, y+ky-p, xx+kx-p)
									if v != 0 {
										sum += v * c.W[c.widx(co, ci, kz, ky, kx)]
									}
								}
							}
						}
					}
					out.Set(co, z, y, xx, sum)
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv3D) Backward(dout *Tensor) *Tensor {
	x := c.x
	dx := NewTensor(x.C, x.D, x.H, x.W)
	p := c.K / 2
	for co := 0; co < c.Cout; co++ {
		for z := 0; z < x.D; z++ {
			for y := 0; y < x.H; y++ {
				for xx := 0; xx < x.W; xx++ {
					g := dout.At(co, z, y, xx)
					if g == 0 {
						continue
					}
					c.dB[co] += g
					for ci := 0; ci < c.Cin; ci++ {
						for kz := 0; kz < c.K; kz++ {
							iz := z + kz - p
							if iz < 0 || iz >= x.D {
								continue
							}
							for ky := 0; ky < c.K; ky++ {
								iy := y + ky - p
								if iy < 0 || iy >= x.H {
									continue
								}
								for kx := 0; kx < c.K; kx++ {
									ix := xx + kx - p
									if ix < 0 || ix >= x.W {
										continue
									}
									wi := c.widx(co, ci, kz, ky, kx)
									c.dW[wi] += g * x.At(ci, iz, iy, ix)
									dx.Data[dx.idx(ci, iz, iy, ix)] += g * c.W[wi]
								}
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv3D) Params() []ParamGrad {
	return []ParamGrad{{c.W, c.dW}, {c.B, c.dB}}
}

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Forward implements Layer.
func (r *ReLU) Forward(x *Tensor) *Tensor {
	out := x.Clone()
	r.mask = make([]bool, len(x.Data))
	for i, v := range x.Data {
		if v <= 0 {
			out.Data[i] = 0
		} else {
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(dout *Tensor) *Tensor {
	dx := dout.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []ParamGrad { return nil }

// MaxPool3D is a 2×2×2 stride-2 max pool.
type MaxPool3D struct {
	argmax []int
	inC    int
	inD    int
	inH    int
	inW    int
}

// Name implements Layer.
func (m *MaxPool3D) Name() string { return "maxpool3d" }

// Forward implements Layer.
func (m *MaxPool3D) Forward(x *Tensor) *Tensor {
	if x.D%2 != 0 || x.H%2 != 0 || x.W%2 != 0 {
		panic("cosmoflow: pool input extents must be even")
	}
	m.inC, m.inD, m.inH, m.inW = x.C, x.D, x.H, x.W
	out := NewTensor(x.C, x.D/2, x.H/2, x.W/2)
	m.argmax = make([]int, out.Len())
	for c := 0; c < x.C; c++ {
		for z := 0; z < out.D; z++ {
			for y := 0; y < out.H; y++ {
				for xx := 0; xx < out.W; xx++ {
					// Initialize from the first window element so the pool
					// stays well-defined even for NaN activations.
					bi := x.idx(c, 2*z, 2*y, 2*xx)
					best := x.Data[bi]
					for dz := 0; dz < 2; dz++ {
						for dy := 0; dy < 2; dy++ {
							for dx := 0; dx < 2; dx++ {
								i := x.idx(c, 2*z+dz, 2*y+dy, 2*xx+dx)
								if x.Data[i] > best {
									best = x.Data[i]
									bi = i
								}
							}
						}
					}
					oi := out.idx(c, z, y, xx)
					out.Data[oi] = best
					m.argmax[oi] = bi
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool3D) Backward(dout *Tensor) *Tensor {
	dx := NewTensor(m.inC, m.inD, m.inH, m.inW)
	for oi, g := range dout.Data {
		dx.Data[m.argmax[oi]] += g
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool3D) Params() []ParamGrad { return nil }

// Dense is a fully connected layer over the flattened input tensor.
type Dense struct {
	In, Out int
	W, B    []float64
	dW, dB  []float64
	x       *Tensor
}

// NewDense builds a dense layer with He-initialized weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		W: make([]float64, in*out), B: make([]float64, out),
		dW: make([]float64, in*out), dB: make([]float64, out),
	}
	std := math.Sqrt(2 / float64(in))
	for i := range d.W {
		d.W[i] = rng.NormFloat64() * std
	}
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense_%dx%d", d.In, d.Out) }

// Forward implements Layer. The input is flattened; output has shape
// [Out]×1×1×1.
func (d *Dense) Forward(x *Tensor) *Tensor {
	if x.Len() != d.In {
		panic(fmt.Sprintf("cosmoflow: dense input %d, want %d", x.Len(), d.In))
	}
	d.x = x
	out := NewTensor(d.Out, 1, 1, 1)
	for o := 0; o < d.Out; o++ {
		sum := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, v := range x.Data {
			sum += row[i] * v
		}
		out.Data[o] = sum
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(dout *Tensor) *Tensor {
	dx := NewTensor(d.x.C, d.x.D, d.x.H, d.x.W)
	for o := 0; o < d.Out; o++ {
		g := dout.Data[o]
		if g == 0 {
			continue
		}
		d.dB[o] += g
		row := d.W[o*d.In : (o+1)*d.In]
		drow := d.dW[o*d.In : (o+1)*d.In]
		for i, v := range d.x.Data {
			drow[i] += g * v
			dx.Data[i] += g * row[i]
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []ParamGrad {
	return []ParamGrad{{d.W, d.dW}, {d.B, d.dB}}
}

// Network is an ordered stack of layers.
type Network struct {
	Layers []Layer
}

// NewNetwork builds a small CosmoFlow-shaped model for a cubic input of
// the given side and channel count: conv/pool blocks down to a 4³ volume,
// then two dense layers regressing nParams cosmological parameters.
func NewNetwork(side, channels, nParams int, rng *rand.Rand) *Network {
	if side < 8 || side&(side-1) != 0 {
		panic("cosmoflow: input side must be a power of two ≥ 8")
	}
	n := &Network{}
	cin := channels
	cout := 16
	for s := side; s > 4; s /= 2 {
		n.Layers = append(n.Layers, NewConv3D(cin, cout, 3, rng), &ReLU{}, &MaxPool3D{})
		cin = cout
		if cout < 256 {
			cout *= 2
		}
	}
	flat := cin * 4 * 4 * 4
	n.Layers = append(n.Layers, NewDense(flat, 64, rng), &ReLU{}, NewDense(64, nParams, rng))
	return n
}

// Forward runs the full stack.
func (n *Network) Forward(x *Tensor) *Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates the output gradient through the stack.
func (n *Network) Backward(dout *Tensor) *Tensor {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dout = n.Layers[i].Backward(dout)
	}
	return dout
}

// Params returns all parameter/gradient pairs in layer order.
func (n *Network) Params() []ParamGrad {
	var out []ParamGrad
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ParamCount returns the total number of trainable parameters.
func (n *Network) ParamCount() int {
	total := 0
	for _, pg := range n.Params() {
		total += len(pg.Param)
	}
	return total
}

// ZeroGrads clears all gradient accumulators.
func (n *Network) ZeroGrads() {
	for _, pg := range n.Params() {
		for i := range pg.Grad {
			pg.Grad[i] = 0
		}
	}
}

// SGDStep applies one vanilla gradient-descent update.
func (n *Network) SGDStep(lr float64) {
	for _, pg := range n.Params() {
		for i := range pg.Param {
			pg.Param[i] -= lr * pg.Grad[i]
		}
	}
}

// MSELoss returns ½‖pred−target‖²/n and the gradient w.r.t. pred.
func MSELoss(pred, target *Tensor) (float64, *Tensor) {
	if !pred.SameShape(target) {
		panic("cosmoflow: loss shape mismatch")
	}
	grad := NewTensor(pred.C, pred.D, pred.H, pred.W)
	var loss float64
	inv := 1 / float64(pred.Len())
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += d * d * inv / 2
		grad.Data[i] = d * inv
	}
	return loss, grad
}
