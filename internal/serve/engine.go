package serve

import (
	"fmt"
	"strconv"

	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Policy selects how the admission queue is drained onto the GPU.
type Policy int

const (
	// NoBatch serves requests FCFS one at a time: prefill, then every
	// decode step at batch width one.
	NoBatch Policy = iota
	// FixedBatch takes up to MaxBatch queued requests and runs the whole
	// batch to completion: every member decodes for as many steps as the
	// longest output in the batch, and all complete together — classic
	// static batching with its head-of-line penalty.
	FixedBatch
	// Continuous re-admits from the queue between decode iterations:
	// finished sequences leave the batch immediately and new requests
	// join it without waiting for the batch to drain (iteration-level
	// scheduling, the vLLM/Orca discipline).
	Continuous
)

// String names the policy for reports.
func (p Policy) String() string {
	switch p {
	case NoBatch:
		return "nobatch"
	case FixedBatch:
		return "fixed"
	case Continuous:
		return "continuous"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Model describes the served model: parameter count drives the prefill and
// decode kernel costs, BytesPerToken the host↔device traffic per token
// (token ids in, sampled ids out — serving transfers are tiny, which is
// exactly why per-call latency, not bandwidth, dominates its slack
// sensitivity).
type Model struct {
	Name          string
	Params        float64
	BytesPerToken int64
}

// DefaultModel is a 100M-parameter transformer: decode steps land in the
// hundreds of microseconds on the A100 model, the regime where row-scale
// slack is a material fraction of every iteration.
func DefaultModel() Model {
	return Model{Name: "transformer-100m", Params: 1e8, BytesPerToken: 4}
}

// Config shapes one serving engine (one GPU replica).
type Config struct {
	// Policy is the batching discipline; MaxBatch caps the decode batch
	// width for FixedBatch and Continuous (default 8).
	Policy   Policy
	MaxBatch int
	// Model is the served model; a zero Model takes DefaultModel.
	Model Model
	// Tenants is the tenant table requests index into (for SLO lookup).
	Tenants []Tenant
	// Admission tunes deadline-aware load shedding under degraded
	// capacity; the zero value disables it.
	Admission Admission
	// RecordSpans collects request and batch spans for Chrome-trace
	// export (off by default: spans allocate).
	RecordSpans bool
}

func (c *Config) withDefaults() error {
	switch c.Policy {
	case NoBatch, FixedBatch, Continuous:
	default:
		return fmt.Errorf("serve: unknown policy %v", c.Policy)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.Model.Params <= 0 {
		c.Model = DefaultModel()
	}
	if c.Model.BytesPerToken <= 0 {
		return fmt.Errorf("serve: model %q has no BytesPerToken", c.Model.Name)
	}
	if len(c.Tenants) == 0 {
		return fmt.Errorf("serve: config has no tenants")
	}
	return nil
}

// workspaceBytes is the device allocation a replica holds for activations
// and KV state; transfers stage through it.
const workspaceBytes = 64 << 20

// pending is one request waiting in, or admitted from, the queue.
type pending struct {
	req       Request
	remaining int  // decode steps left
	shed      bool // shed by backpressure while queued; pop discards it
}

// Engine serves one replica's request stream: an arrival process feeds the
// admission queue on the sim clock and a batcher process drains it through
// the Transport according to the configured policy. Both run as sim procs;
// results are valid after env.Run() returns.
type Engine struct {
	env   *sim.Env
	tr    Transport
	cfg   Config
	total int

	// The admission queue and completion count live on the engine's own
	// event domain: only the arrivals and batcher procs touch them.
	//cdivet:shard(serve.engine)
	queue []*pending
	// qhead: queue[:qhead] is served; the array is reused once drained.
	//cdivet:shard(serve.engine)
	qhead int
	// depth counts live (unserved, unshed) queued requests; backpressure
	// marks victims shed in place and pop discards them lazily.
	//cdivet:shard(serve.engine)
	depth int
	more  *sim.Signal
	//cdivet:shard(serve.engine)
	completed int

	// ks and batchBuf are per-step scratch reused across iterations, and
	// pendSlab batch-allocates pending records (never recycled — the
	// queue and active batch hold pointers into it). Together they keep
	// the steady-state batching loop allocation-free.
	ks       []gpu.Kernel
	batchBuf []*pending
	pendSlab []pending

	m     *Metrics
	spans []trace.AppSpan
	err   error

	// workspace is the replica's device allocation; transfers stage
	// through it.
	workspace gpu.Ptr
}

// Start validates the configuration and spawns the engine's arrival and
// batcher processes on env. The caller runs the simulation (env.Run) and
// then reads Err, Metrics and Spans.
func Start(env *sim.Env, tr Transport, cfg Config, reqs []Request) (*Engine, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	for _, r := range reqs {
		if r.Tenant < 0 || r.Tenant >= len(cfg.Tenants) {
			return nil, fmt.Errorf("serve: request %d names tenant %d of %d", r.ID, r.Tenant, len(cfg.Tenants))
		}
		if r.PromptTokens < 1 || r.OutputTokens < 1 {
			return nil, fmt.Errorf("serve: request %d has empty prompt or output", r.ID)
		}
	}
	e := &Engine{
		env:   env,
		tr:    tr,
		cfg:   cfg,
		total: len(reqs),
		more:  sim.NewSignal(env),
		m:     newMetrics(),
	}
	e.m.Requests = len(reqs)
	if cfg.Admission.enabled() {
		e.m.ShedByTenant = make([]int, len(cfg.Tenants))
	}
	// The engine is one event domain: the arrival clock and the batcher
	// share a shard, separate from the device shards the transport uses.
	shard := env.NewShard() //cdivet:shard(serve.engine)
	shard.Spawn("serve-arrivals", func(p *sim.Proc) { e.arrivals(p, reqs) })
	shard.Spawn("serve-batcher", e.batcher)
	return e, nil
}

// Err returns the first transport error the engine hit (nil on success).
func (e *Engine) Err() error { return e.err }

// Metrics returns the engine's measurement record.
func (e *Engine) Metrics() *Metrics { return e.m }

// Spans returns the recorded serving spans (empty unless RecordSpans).
func (e *Engine) Spans() []trace.AppSpan { return e.spans }

// Completed returns how many requests have finished.
func (e *Engine) Completed() int { return e.completed }

// arrivals delivers the pre-generated schedule into the admission queue.
// Every arrival fires the signal — even one shed at the door — so the
// batcher re-checks its completion condition.
func (e *Engine) arrivals(p *sim.Proc, reqs []Request) {
	for _, r := range reqs {
		if d := r.Arrival.Sub(p.Now()); d > 0 {
			p.Sleep(d)
		}
		e.enqueue(e.newPending(r))
		e.more.Fire()
	}
}

// enqueue admits one request, applying queue-cap backpressure while the
// admission gate is armed: a full queue sheds its lowest-priority member
// (ties: latest arrival), or the incoming request itself when nothing
// queued ranks below it.
func (e *Engine) enqueue(pd *pending) {
	a := e.cfg.Admission
	if a.MaxQueue > 0 && e.depth >= a.MaxQueue && a.armed() {
		vi, vp := -1, 0
		for i := len(e.queue) - 1; i >= e.qhead; i-- {
			q := e.queue[i]
			if q.shed {
				continue
			}
			if p := e.cfg.Tenants[q.req.Tenant].Priority; vi == -1 || p > vp {
				vi, vp = i, p
			}
		}
		if vi == -1 || e.cfg.Tenants[pd.req.Tenant].Priority >= vp {
			e.m.shed(pd.req.Tenant)
			return
		}
		e.queue[vi].shed = true
		e.depth--
		e.m.shed(e.queue[vi].req.Tenant)
	}
	e.queue = append(e.queue, pd)
	e.depth++
}

// newPending hands out a pending record from the engine's slab.
func (e *Engine) newPending(r Request) *pending {
	if len(e.pendSlab) == 0 {
		//cdivet:allow escape slab refill: one amortized allocation per 64 requests
		e.pendSlab = make([]pending, 64)
	}
	pd := &e.pendSlab[0]
	e.pendSlab = e.pendSlab[1:]
	pd.req, pd.remaining = r, r.OutputTokens
	return pd
}

// qlen returns the number of live (unserved, unshed) queued requests.
func (e *Engine) qlen() int { return e.depth }

// batcher drains the queue until every request has completed or been
// shed.
func (e *Engine) batcher(p *sim.Proc) {
	in, err := e.tr.Malloc(p, workspaceBytes)
	if err != nil {
		e.err = err
		return
	}
	e.workspace = in
	for e.completed+e.m.Shed < e.total {
		if e.qlen() == 0 {
			e.more.Wait(p)
			continue
		}
		switch e.cfg.Policy {
		case NoBatch:
			err = e.stepNoBatch(p)
		case FixedBatch:
			err = e.stepFixed(p)
		default: // Continuous; withDefaults rejected anything else
			err = e.stepContinuous(p)
		}
		if err != nil {
			e.err = err
			return
		}
	}
	if err := e.tr.Free(p, in); err != nil {
		e.err = err
	}
}

// pop removes and returns the live queue head, discarding entries shed
// by backpressure and rewinding onto the same backing array once the
// queue drains. The caller guarantees qlen() > 0.
func (e *Engine) pop() *pending {
	for {
		r := e.queue[e.qhead]
		e.queue[e.qhead] = nil
		e.qhead++
		if e.qhead == len(e.queue) {
			e.queue = e.queue[:0]
			e.qhead = 0
		}
		if r.shed {
			continue
		}
		e.depth--
		return r
	}
}

// take pops live requests, shedding any whose queue wait alone already
// blew the tenant's SLO while the admission gate is armed. It returns
// nil once the queue is empty (everything left was shed or expired).
func (e *Engine) take(p *sim.Proc) *pending {
	a := e.cfg.Admission
	for e.qlen() > 0 {
		r := e.pop()
		if a.ShedExpired && p.Now().Sub(r.req.Arrival) > e.cfg.Tenants[r.req.Tenant].SLO && a.armed() {
			e.m.shed(r.req.Tenant)
			continue
		}
		return r
	}
	return nil
}

// finish moves the request's output back to the host and records its
// latency against the owning tenant's SLO.
func (e *Engine) finish(p *sim.Proc, r *pending) error {
	if err := e.tr.MemcpyD2H(p, e.workspace, int64(r.req.OutputTokens)*e.cfg.Model.BytesPerToken); err != nil {
		return err
	}
	done := p.Now()
	e.m.record(done.Sub(r.req.Arrival), e.cfg.Tenants[r.req.Tenant].SLO)
	e.completed++
	if e.cfg.RecordSpans {
		e.spans = append(e.spans, trace.AppSpan{
			//cdivet:allow hotpath spans are opt-in (RecordSpans) and inherently allocate; off on measured paths
			Name:  "req " + strconv.Itoa(r.req.ID) + " (" + e.cfg.Tenants[r.req.Tenant].Name + ")",
			Cat:   "request",
			Track: r.req.Tenant,
			Start: r.req.Arrival,
			End:   done,
		})
	}
	return nil
}

// admit stages the request's prompt onto the device and returns its
// prefill kernel.
func (e *Engine) admit(p *sim.Proc, r *pending) (gpu.Kernel, error) {
	n := int64(r.req.PromptTokens) * e.cfg.Model.BytesPerToken
	if err := e.tr.MemcpyH2D(p, e.workspace, n); err != nil {
		return gpu.Kernel{}, err
	}
	return gpu.Prefill(r.req.PromptTokens, e.cfg.Model.Params), nil
}

// batchSpan records one batch execution span.
func (e *Engine) batchSpan(kind string, n int, start, end sim.Time) {
	if e.cfg.RecordSpans {
		e.spans = append(e.spans, trace.AppSpan{
			//cdivet:allow hotpath spans are opt-in (RecordSpans) and inherently allocate; off on measured paths
			Name:  kind + " n=" + strconv.Itoa(n),
			Cat:   "batch",
			Track: batchTrack,
			Start: start,
			End:   end,
		})
	}
}

// batchTrack is the span track batches render on (above the per-tenant
// request tracks).
const batchTrack = -1

// stepNoBatch serves exactly one request FCFS.
func (e *Engine) stepNoBatch(p *sim.Proc) error {
	e.m.QueueDepths = append(e.m.QueueDepths, float64(e.qlen()))
	r := e.take(p)
	if r == nil {
		return nil
	}
	start := p.Now()
	prefill, err := e.admit(p, r)
	if err != nil {
		return err
	}
	ks := append(e.ks[:0], prefill)
	for i := 0; i < r.remaining; i++ {
		ks = append(ks, gpu.DecodeStep(1, e.cfg.Model.Params))
	}
	e.ks = ks[:0]
	if err := e.tr.RunKernels(p, ks); err != nil {
		return err
	}
	for i := 0; i < r.remaining; i++ {
		e.m.BatchSizes = append(e.m.BatchSizes, 1)
	}
	r.remaining = 0
	if err := e.finish(p, r); err != nil {
		return err
	}
	e.batchSpan("nobatch", 1, start, p.Now())
	return nil
}

// stepFixed serves one static batch to completion.
func (e *Engine) stepFixed(p *sim.Proc) error {
	e.m.QueueDepths = append(e.m.QueueDepths, float64(e.qlen()))
	batch := e.batchBuf[:0]
	for len(batch) < e.cfg.MaxBatch && e.qlen() > 0 {
		r := e.take(p)
		if r == nil {
			break
		}
		batch = append(batch, r)
	}
	e.batchBuf = batch
	if len(batch) == 0 {
		return nil
	}
	start := p.Now()
	ks := e.ks[:0]
	steps := 0
	for _, r := range batch {
		prefill, err := e.admit(p, r)
		if err != nil {
			return err
		}
		ks = append(ks, prefill)
		if r.remaining > steps {
			steps = r.remaining
		}
	}
	// Static batching pads every sequence to the longest: the batch holds
	// the device for steps iterations at full width.
	for i := 0; i < steps; i++ {
		ks = append(ks, gpu.DecodeStep(len(batch), e.cfg.Model.Params))
	}
	e.ks = ks[:0]
	if err := e.tr.RunKernels(p, ks); err != nil {
		return err
	}
	for i := 0; i < steps; i++ {
		e.m.BatchSizes = append(e.m.BatchSizes, float64(len(batch)))
	}
	for _, r := range batch {
		r.remaining = 0
		if err := e.finish(p, r); err != nil {
			return err
		}
	}
	e.batchSpan("fixed", len(batch), start, p.Now())
	return nil
}

// stepContinuous runs iteration-level scheduling until the active batch
// and the queue are both empty, admitting new requests between decode
// iterations.
func (e *Engine) stepContinuous(p *sim.Proc) error {
	active := e.batchBuf[:0]
	for {
		e.m.QueueDepths = append(e.m.QueueDepths, float64(e.qlen()))
		start := p.Now()
		ks := e.ks[:0]
		for len(active) < e.cfg.MaxBatch && e.qlen() > 0 {
			r := e.take(p)
			if r == nil {
				break
			}
			prefill, err := e.admit(p, r)
			if err != nil {
				return err
			}
			ks = append(ks, prefill)
			active = append(active, r)
		}
		if len(active) == 0 {
			e.batchBuf = active
			return nil
		}
		width := len(active)
		ks = append(ks, gpu.DecodeStep(width, e.cfg.Model.Params))
		e.ks = ks[:0]
		if err := e.tr.RunKernels(p, ks); err != nil {
			return err
		}
		e.m.BatchSizes = append(e.m.BatchSizes, float64(width))
		keep := active[:0]
		for _, r := range active {
			r.remaining--
			if r.remaining <= 0 {
				if err := e.finish(p, r); err != nil {
					return err
				}
				continue
			}
			keep = append(keep, r)
		}
		e.batchSpan("iter", width, start, p.Now())
		active = keep
	}
}
