// Package runner executes independent sweep points across a bounded worker
// pool while preserving the exact observable behavior of a serial loop.
//
// Every experiment in this repository is a sweep over independent
// configurations, each of which builds and runs its own private sim.Env.
// The engine's determinism rests on single-owner handoff *within* one Env;
// it says nothing about two Envs living on different OS threads, so whole
// points can fan out across cores as long as three properties hold:
//
//  1. one Env per point — a closure never touches another point's
//     simulation state;
//  2. ordered merge — results are stored by input index, so output is
//     byte-identical to the serial loop regardless of completion order;
//  3. deterministic failure — when points fail, the error (or panic)
//     reported is the one the serial loop would have hit first, i.e. the
//     lowest-index one, not whichever goroutine lost the race.
//
// The pool itself is structured concurrency in the sync.WaitGroup sense:
// every worker goroutine is joined before Map or Go returns, so no
// simulation work ever outlives the call that spawned it. The cdivet
// barego analyzer recognizes exactly this shape.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Jobs normalizes a worker-count knob: non-positive values select
// GOMAXPROCS (use every core), anything else is returned unchanged.
func Jobs(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// capturedPanic preserves a worker panic (value and stack) so it can be
// re-raised on the caller's goroutine after the pool is joined.
type capturedPanic struct {
	value any
	stack []byte
}

func (c *capturedPanic) repanic() {
	panic(fmt.Sprintf("runner: worker panic: %v\n%s", c.value, c.stack))
}

// Map runs fn(i) for every i in [0, n) and returns the results in input
// order. workers bounds the number of concurrently running points
// (non-positive = GOMAXPROCS); workers == 1 runs everything inline on the
// calling goroutine — the exact serial path, stopping at the first error.
//
// In parallel mode every point runs to completion even if another point
// has already failed: errors are deterministic per point (each owns its
// own simulation), so always returning the lowest-index error keeps the
// call's outcome independent of goroutine scheduling. A panicking point
// likewise does not tear down the process from a worker stack; the
// lowest-index panic is re-raised on the caller's goroutine.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative point count %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	workers = Jobs(workers)
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	errs := make([]error, n)
	panics := make([]*capturedPanic, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runPoint(i, fn, results, errs, panics)
			}
		}()
	}
	wg.Wait()

	for _, p := range panics {
		if p != nil {
			p.repanic()
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runPoint executes one point, converting a panic into a captured record
// so the pool can keep draining and the caller can re-raise
// deterministically.
func runPoint[T any](i int, fn func(int) (T, error), results []T, errs []error, panics []*capturedPanic) {
	defer func() {
		if r := recover(); r != nil {
			panics[i] = &capturedPanic{value: r, stack: stack()}
		}
	}()
	results[i], errs[i] = fn(i)
}

// Go runs heterogeneous closures concurrently — each one unit of work
// writing its own captured variables — and joins them all before
// returning. workers bounds concurrency exactly as in Map; the returned
// error (or re-raised panic) is the lowest-index one.
func Go(workers int, fns ...func() error) error {
	_, err := Map(workers, len(fns), func(i int) (struct{}, error) {
		return struct{}{}, fns[i]()
	})
	return err
}

// stack returns the current goroutine's stack, bounded so a deep
// simulation stack cannot balloon a captured panic.
func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}
