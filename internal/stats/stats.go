// Package stats provides the statistical toolkit the evaluation harness
// needs: summary statistics, percentiles, histograms, Gaussian-KDE "violin"
// summaries (Figures 4 and 5 of the paper), binning, and the interpolation
// used to build slack-response surfaces.
//
// Everything operates on plain []float64 and is deterministic.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sum returns the sum of xs (0 for an empty slice).
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs; it returns NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN for fewer than
// two samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// Stddev returns the unbiased sample standard deviation of xs.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs; NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs; NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between order statistics (the "exclusive" convention used
// by numpy's default). xs need not be sorted. NaN for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary holds the descriptive statistics reported throughout the
// evaluation tables.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Sum    float64
}

// Summarize computes a Summary of xs. An empty input yields a zero-count
// summary with NaN statistics.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Stddev: Stddev(xs),
		Min:    Min(xs),
		Q1:     Percentile(xs, 25),
		Median: Median(xs),
		Q3:     Percentile(xs, 75),
		Max:    Max(xs),
		Sum:    Sum(xs),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g",
		s.N, s.Mean, s.Stddev, s.Min, s.Q1, s.Median, s.Q3, s.Max)
}

// Normalize returns xs scaled so that ref maps to 1. It panics if ref is
// zero.
func Normalize(xs []float64, ref float64) []float64 {
	if ref == 0 {
		panic("stats: Normalize by zero reference")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / ref
	}
	return out
}

// RelativeChange returns (now-base)/base, the signed fractional change the
// paper reports as percentage runtime decreases/increases.
func RelativeChange(base, now float64) float64 {
	if base == 0 {
		return math.NaN()
	}
	return (now - base) / base
}

// ApproxEqual reports whether a and b agree to within tol, measured
// relative to the larger magnitude once that exceeds 1 (so tol acts as an
// absolute tolerance near zero and a relative one for large values). It is
// the approved comparison for computed floating-point quantities — exact
// ==/!= between computed floats is rejected repo-wide by cdivet's floateq
// rule, because two mathematically equal results reached along different
// code paths routinely differ in the final ulp. NaN equals nothing,
// matching IEEE-754.
func ApproxEqual(a, b, tol float64) bool {
	if tol < 0 {
		panic("stats: negative ApproxEqual tolerance")
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	scale := 1.0
	if m := math.Max(math.Abs(a), math.Abs(b)); m > scale {
		scale = m
	}
	return math.Abs(a-b) <= tol*scale
}
