// The waitgraph corpus: sim.Signal wait/fire patterns — deterministic
// deadlocks, lost wakes, unbound use, and timeout-free wait cycles.
package corpus

import sim "repro/internal/corpus/internal/sim"

// neverFired: the signal has a waiter but no Fire anywhere in the module.
func neverFired(env *sim.Env) {
	ready := sim.NewSignal(env)
	env.Spawn("stuck", func(p *sim.Proc) {
		ready.Wait(p) // want
	})
}

// deadWake: fired, but nothing ever waits.
func deadWake(env *sim.Env) {
	done := sim.NewSignal(env)
	env.Spawn("talker", func(p *sim.Proc) {
		done.Fire() // want
	})
}

// paired is the repo discipline: a guard-looped wait with a matching fire.
// Clean.
func paired(env *sim.Env) {
	work := sim.NewSignal(env)
	n := 0
	env.Spawn("consumer", func(p *sim.Proc) {
		for n == 0 {
			work.Wait(p)
		}
	})
	env.Spawn("producer", func(p *sim.Proc) {
		n++
		work.Fire()
	})
}

// lostWake fires before spawning the unguarded waiter: the wake lands
// before the waiter exists.
func lostWake(env *sim.Env) {
	torch := sim.NewSignal(env)
	env.Spawn("igniter", func(p *sim.Proc) {
		torch.Fire() // want
		p.Shard().Spawn("late", func(cp *sim.Proc) {
			torch.Wait(cp)
		})
	})
}

// beacon embeds a value-type Signal, which must be Bind-ed before use.
type beacon struct {
	pulse sim.Signal
}

// unbound uses the embedded signal without ever calling Bind.
func unbound(env *sim.Env, b *beacon) {
	env.Spawn("watcher", func(p *sim.Proc) {
		b.pulse.Wait(p) // want
	})
	env.Spawn("pulser", func(p *sim.Proc) {
		b.pulse.Fire()
	})
}

// lamp is the bound counterpart: same shape plus Bind — clean.
type lamp struct {
	glow sim.Signal
}

func bound(env *sim.Env, l *lamp) {
	l.glow.Bind(env)
	cond := 0
	env.Spawn("dim", func(p *sim.Proc) {
		for cond == 0 {
			l.glow.Wait(p)
		}
	})
	env.Spawn("lighter", func(p *sim.Proc) {
		cond = 1
		l.glow.Fire()
	})
}

// cycle: two procs each wait (plain Wait, no guard loop, no timeout) on a
// signal fired only by the other — a deterministic deadlock, reported once
// at the earliest wait.
func cycle(env *sim.Env) {
	left := sim.NewSignal(env)
	right := sim.NewSignal(env)
	env.Spawn("pingproc", func(p *sim.Proc) {
		left.Wait(p) // want
		right.Fire()
	})
	env.Spawn("pongproc", func(p *sim.Proc) {
		right.Wait(p)
		left.Fire()
	})
}

// timeoutBreaks: the same shape with a WaitTimeout on one side contributes
// no cycle edge. Clean.
func timeoutBreaks(env *sim.Env) {
	c := sim.NewSignal(env)
	d := sim.NewSignal(env)
	env.Spawn("one", func(p *sim.Proc) {
		c.Wait(p)
		d.Fire()
	})
	env.Spawn("two", func(p *sim.Proc) {
		d.WaitTimeout(p, 5)
		c.Fire()
	})
}

// escaped: a signal handed to a helper aliases through the parameter, so
// both the local and the parameter drop out of the checks. Clean.
func escaped(env *sim.Env) {
	e := sim.NewSignal(env)
	env.Spawn("waiter", func(p *sim.Proc) {
		parkOn(e, p)
	})
}

func parkOn(s *sim.Signal, p *sim.Proc) {
	s.Wait(p)
}

// suppressed records a justified exception: no finding.
func suppressed(env *sim.Env) {
	quiet := sim.NewSignal(env)
	env.Spawn("mute", func(p *sim.Proc) {
		//cdivet:allow waitgraph corpus case: the firing side lives outside this module
		quiet.Wait(p)
	})
}
