// Package trace is the study's stand-in for NVIDIA NSight Systems: it
// records every kernel execution, memory transfer, and CUDA API call an
// application performs, and provides the analyses the paper extracts from
// NSys traces — kernel-duration distributions (Figure 4), memcpy-size
// distributions (Figure 5), runtime fractions (Equation 2), and the
// transfer-size binning of Table III.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/sim"
)

// APICall records one CUDA API invocation observed by the recorder.
type APICall struct {
	Name  string
	Class cuda.CallClass
	Bytes int64
	Begin sim.Time
	End   sim.Time
}

// AppSpan is one logical interval on an application-defined track —
// subsystems above the CUDA layer (request lifetimes, batches, injected
// slack) annotate the recording with these. They render on their own
// process row in the Chrome export, alongside the host-API and device
// rows. (Span, by contrast, is a device busy interval.)
type AppSpan struct {
	Name  string
	Cat   string
	Track int
	Start sim.Time
	End   sim.Time
}

// Trace is a completed recording.
type Trace struct {
	// Label names the traced workload ("lammps", "cosmoflow", "proxy-2^13").
	Label   string
	Started sim.Time
	Ended   sim.Time
	Kernels []gpu.KernelEvent
	Copies  []gpu.CopyEvent
	Calls   []APICall
	// AppSpans holds application-level intervals recorded outside the
	// CUDA interposer seam (may be empty).
	AppSpans []AppSpan
}

// Recorder captures device and API events. Register it on each device with
// Device.Listen and on each context with Context.Interpose, bracket the
// region of interest with Start/Stop, then call Trace for the result.
type Recorder struct {
	label     string
	recording bool
	started   sim.Time
	ended     sim.Time
	kernels   []gpu.KernelEvent
	copies    []gpu.CopyEvent
	calls     []APICall
	// begins stacks Before timestamps per host process: processes park
	// inside call bodies, so calls from different threads interleave.
	begins map[*sim.Proc][]sim.Time
}

// NewRecorder returns an idle recorder for the labelled workload.
func NewRecorder(label string) *Recorder {
	return &Recorder{label: label, begins: make(map[*sim.Proc][]sim.Time)}
}

// Start begins recording at the current time of env.
func (r *Recorder) Start(env *sim.Env) {
	r.recording = true
	r.started = env.Now()
}

// Stop ends recording at the current time of env.
func (r *Recorder) Stop(env *sim.Env) {
	r.recording = false
	r.ended = env.Now()
}

// Recording reports whether events are currently captured.
func (r *Recorder) Recording() bool { return r.recording }

// OnKernel implements gpu.Listener.
func (r *Recorder) OnKernel(ev gpu.KernelEvent) {
	if r.recording {
		r.kernels = append(r.kernels, ev)
	}
}

// OnCopy implements gpu.Listener.
func (r *Recorder) OnCopy(ev gpu.CopyEvent) {
	if r.recording {
		r.copies = append(r.copies, ev)
	}
}

// Before implements cuda.Interposer.
func (r *Recorder) Before(p *sim.Proc, info cuda.CallInfo) {
	if r.recording {
		r.begins[p] = append(r.begins[p], p.Now())
	}
}

// After implements cuda.Interposer.
func (r *Recorder) After(p *sim.Proc, info cuda.CallInfo) {
	stack := r.begins[p]
	if !r.recording || len(stack) == 0 {
		return
	}
	begin := stack[len(stack)-1]
	r.begins[p] = stack[:len(stack)-1]
	r.calls = append(r.calls, APICall{
		Name:  info.Name,
		Class: info.Class,
		Bytes: info.Bytes,
		Begin: begin,
		End:   p.Now(),
	})
}

// Trace returns the completed recording.
func (r *Recorder) Trace() *Trace {
	return &Trace{
		Label:   r.label,
		Started: r.started,
		Ended:   r.ended,
		Kernels: r.kernels,
		Copies:  r.copies,
		Calls:   r.calls,
	}
}

var (
	_ gpu.Listener    = (*Recorder)(nil)
	_ cuda.Interposer = (*Recorder)(nil)
)

// Runtime returns the wall-clock (virtual) span of the recording.
func (t *Trace) Runtime() sim.Duration { return t.Ended.Sub(t.Started) }

// KernelDurations returns every kernel's execution time in seconds.
func (t *Trace) KernelDurations() []float64 {
	out := make([]float64, len(t.Kernels))
	for i, k := range t.Kernels {
		out[i] = float64(k.Duration())
	}
	return out
}

// KernelDurationsByName groups kernel durations (seconds) by kernel name.
func (t *Trace) KernelDurationsByName() map[string][]float64 {
	out := make(map[string][]float64)
	for _, k := range t.Kernels {
		out[k.Name] = append(out[k.Name], float64(k.Duration()))
	}
	return out
}

// MemcpySizes returns transfer sizes in bytes for the given directions
// (no directions selects all).
func (t *Trace) MemcpySizes(dirs ...gpu.Direction) []float64 {
	want := map[gpu.Direction]bool{}
	for _, d := range dirs {
		want[d] = true
	}
	var out []float64
	for _, c := range t.Copies {
		if len(want) == 0 || want[c.Dir] {
			out = append(out, float64(c.Bytes))
		}
	}
	return out
}

// KernelGroup summarizes one kernel name's executions.
type KernelGroup struct {
	Name      string
	Count     int
	Total     sim.Duration
	Durations []float64 // seconds
}

// TopKernels returns the k kernel groups with the largest total execution
// time, descending (Figure 4 shows the top five for CosmoFlow). k <= 0
// returns all groups.
func (t *Trace) TopKernels(k int) []KernelGroup {
	byName := map[string]*KernelGroup{}
	var order []string
	for _, ev := range t.Kernels {
		g, ok := byName[ev.Name]
		if !ok {
			g = &KernelGroup{Name: ev.Name}
			byName[ev.Name] = g
			order = append(order, ev.Name)
		}
		g.Count++
		g.Total += ev.Duration()
		g.Durations = append(g.Durations, float64(ev.Duration()))
	}
	groups := make([]KernelGroup, 0, len(order))
	for _, name := range order {
		groups = append(groups, *byName[name])
	}
	sort.SliceStable(groups, func(i, j int) bool { return groups[i].Total > groups[j].Total })
	if k > 0 && k < len(groups) {
		groups = groups[:k]
	}
	return groups
}

// KernelTime returns the total kernel execution time.
func (t *Trace) KernelTime() sim.Duration {
	var d sim.Duration
	for _, k := range t.Kernels {
		d += k.Duration()
	}
	return d
}

// MemcpyTime returns the total transfer execution time. Transfers on
// separate DMA engines can overlap, so treating the sum as occupied wall
// time is pessimistic — consistent with the paper's worst-case framing.
func (t *Trace) MemcpyTime() sim.Duration {
	var d sim.Duration
	for _, c := range t.Copies {
		d += c.Duration()
	}
	return d
}

// KernelFraction returns %Runtime_Kernel of Equation 2: the fraction of
// the recorded runtime spent executing kernels.
func (t *Trace) KernelFraction() float64 {
	rt := t.Runtime()
	if rt <= 0 {
		return 0
	}
	return float64(t.KernelTime()) / float64(rt)
}

// MemcpyFraction returns %Runtime_Memory of Equation 2.
func (t *Trace) MemcpyFraction() float64 {
	rt := t.Runtime()
	if rt <= 0 {
		return 0
	}
	return float64(t.MemcpyTime()) / float64(rt)
}

// CallCount returns the number of recorded API calls in the given class
// (any class if none given).
func (t *Trace) CallCount(classes ...cuda.CallClass) int {
	if len(classes) == 0 {
		return len(t.Calls)
	}
	want := map[cuda.CallClass]bool{}
	for _, c := range classes {
		want[c] = true
	}
	n := 0
	for _, c := range t.Calls {
		if want[c.Class] {
			n++
		}
	}
	return n
}

// LinkCrossingCalls returns the number of calls the slack model delays —
// Equation 1's num_CUDAcalls for this trace.
func (t *Trace) LinkCrossingCalls() int {
	n := 0
	for _, c := range t.Calls {
		if c.Class.CrossesLink() {
			n++
		}
	}
	return n
}

// Streams returns the distinct device streams that executed work, an
// indicator of kernel-submission parallelism.
func (t *Trace) Streams() int {
	seen := map[int]bool{}
	for _, k := range t.Kernels {
		seen[k.Stream] = true
	}
	for _, c := range t.Copies {
		seen[c.Stream] = true
	}
	return len(seen)
}

// WriteJSON serializes the trace.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadJSON deserializes a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decoding: %w", err)
	}
	return &t, nil
}
