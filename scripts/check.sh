#!/usr/bin/env bash
# check.sh — the full CI gate: build, vet, race-enabled tests, and the
# determinism-invariant lint suite (cmd/cdivet). Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

# Dedicated uncached pass over the fault-injection / resilient-transport /
# resilience-experiment tests: these are the suites guarding the
# byte-determinism of the fault schedule, so they must run fresh even when
# the package-wide run above was cached.
echo "== go test -race -count=1 (resilience)"
go test -race -count=1 -run 'Resilien|Fault|WaitTimeout' \
  ./internal/faults/ ./internal/remoting/ ./internal/sim/ ./internal/experiments/

# The pool control plane and the churn sweep guard the other half of that
# determinism story: zero-churn cells must reproduce the serving sweep
# byte for byte and a fault-free control plane must be invisible. Uncached
# and race-enabled for the same reason as above.
echo "== go test -race -count=1 (health control plane + churn)"
go test -race -count=1 ./internal/health/
go test -race -count=1 -run 'TestChurn' ./internal/experiments/

# The pool scheduler's acceptance gates, uncached and race-enabled: the
# zero-churn defrag arm must be a byte-level no-op, the defrag arm must
# strictly reduce stranded capacity without regressing goodput, and the
# whole sweep must render byte-identically at every worker count.
echo "== go test -race -count=1 (pool scheduler + sweep)"
go test -race -count=1 ./internal/pool/
go test -race -count=1 -run 'TestPool' ./internal/experiments/ .

echo "== cdivet ./... (baseline: cdivet_baseline.json)"
go run ./cmd/cdivet -sarif cdivet.sarif -baseline cdivet_baseline.json ./...

echo "== cdivet -directives ./..."
go run ./cmd/cdivet -directives ./...

echo "== reproduce -exp serving smoke (-j byte-identity + trace)"
serving_trace="$(mktemp)"
serving_j1="$(go run ./cmd/reproduce -exp serving -j 1)"
serving_j8="$(go run ./cmd/reproduce -exp serving -j 8 -trace "$serving_trace")"
if [ "$serving_j1" != "${serving_j8%$'\n'wrote serving trace*}" ]; then
  echo "serving output differs between -j 1 and -j 8" >&2
  exit 1
fi
[ -s "$serving_trace" ] || { echo "serving trace file is empty" >&2; exit 1; }
rm -f "$serving_trace"

echo "== reproduce -exp churn smoke (-j byte-identity)"
churn_j1="$(go run ./cmd/reproduce -exp churn -j 1)"
churn_j8="$(go run ./cmd/reproduce -exp churn -j 8)"
if [ "$churn_j1" != "$churn_j8" ]; then
  echo "churn output differs between -j 1 and -j 8" >&2
  exit 1
fi

echo "== reproduce -exp pool smoke (-j byte-identity)"
pool_j1="$(go run ./cmd/reproduce -exp pool -j 1)"
pool_j8="$(go run ./cmd/reproduce -exp pool -j 8)"
if [ "$pool_j1" != "$pool_j8" ]; then
  echo "pool output differs between -j 1 and -j 8" >&2
  exit 1
fi

# Coverage-guided fuzz smoke of the sharded merge-order invariant. The
# recorded seeds always run as part of `go test` above; the search itself
# is opt-in locally (CI always runs its own 10s pass).
if [ "${CDI_FUZZ:-0}" = "1" ]; then
  echo "== fuzz smoke (FuzzShardedMergeOrder, 10s)"
  go test ./internal/sim -run xxx -fuzz FuzzShardedMergeOrder -fuzztime=10s
fi

echo "== bench.sh --smoke"
scripts/bench.sh --smoke

# Perf trajectory gate: diff the two most recent full benchmark recordings.
# Fails the build on a ns/op or allocs/op regression between them (see
# bench.sh for tolerances); the table also lands in bench_gate.txt for CI to
# archive. Skipped until two recordings exist.
echo "== bench.sh --gate (perf trajectory)"
if [ -e BENCH_2.json ]; then
  GATE_REPORT=bench_gate.txt scripts/bench.sh --gate
else
  echo "   fewer than two BENCH_<n>.json recordings; gate skipped"
fi

echo "check.sh: all gates green"
