package experiments

// The resilience experiment: the paper's slack study assumes a fabric
// that never fails. This sweep asks what its Table IV numbers look like
// on a fabric that drops packets, flaps links, and loses GPU servers —
// with the transport recovering via deterministic timeouts, retries and
// failover — and reports the availability-adjusted slack penalty next to
// the fault-free value for the proxy and both production applications.

import (
	"fmt"
	"strings"

	"repro/internal/cosmoflow"
	"repro/internal/cuda"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/lammps"
	"repro/internal/model"
	"repro/internal/remoting"
	"repro/internal/runner"
	"repro/internal/sim"
)

// ResilienceRow is one (application, slack, fault intensity) measurement.
type ResilienceRow struct {
	App       string
	Slack     sim.Duration
	Intensity float64
	// Penalty is the availability-adjusted slack penalty: Equation 1
	// removes only the nominal per-call slack, so timeout waits, retries
	// and failover re-uploads remain inside it.
	Penalty float64
	// FaultFree is the same cell's penalty at zero fault intensity — the
	// fault-free Table IV-style number the adjusted value sits next to.
	FaultFree float64
	// Policy action counts for the run.
	Retries   int64
	Timeouts  int64
	Failovers int64
	// Degraded records that every remote died and the run finished on
	// node-local execution.
	Degraded bool
}

// resilienceSlacks and resilienceIntensities define the sweep grid:
// the paper's headline 100µs row-scale slack and the 10ms extreme,
// crossed with no faults, a moderate schedule and an aggressive one.
var (
	resilienceSlacks      = []sim.Duration{100 * sim.Microsecond, 10 * sim.Millisecond}
	resilienceIntensities = []float64{0, 1, 4}
)

// Resilience sweeps fault intensity × slack for the proxy (driven through
// the fault-tolerant remoting transport) and for LAMMPS and CosmoFlow
// (driven through the fault interposer on every rank's CUDA calls). Every
// fault is drawn from a seeded schedule, so the sweep is byte-identical
// across runs and worker counts.
func Resilience(o Options) ([]ResilienceRow, error) {
	o = o.withDefaults()
	iters := o.ProxyIters
	if iters <= 0 {
		iters = 30
	}
	lcfg := lammps.PerfConfig{BoxSize: 40, Procs: 4, Steps: o.LAMMPSSteps}
	ccfg := cosmoflow.PerfConfig{
		Epochs: o.CosmoEpochs, TrainSamples: o.CosmoSamples, ValSamples: o.CosmoSamples / 2,
	}

	// Fault-free zero-slack baselines, one per application.
	var (
		pbase sim.Duration
		lbase lammps.PerfResult
		cbase cosmoflow.PerfResult
	)
	err := runner.Go(o.Jobs,
		func() error {
			var err error
			pbase, err = localProxyLoop(iters)
			return err
		},
		func() error {
			var err error
			lbase, err = lammps.RunPerf(lcfg)
			return err
		},
		func() error {
			var err error
			cbase, err = cosmoflow.RunPerf(ccfg)
			return err
		},
	)
	if err != nil {
		return nil, err
	}

	apps := []string{"proxy", "lammps", "cosmoflow"}
	cells := len(apps) * len(resilienceSlacks) * len(resilienceIntensities)
	rows, err := runner.Map(o.Jobs, cells, func(i int) (ResilienceRow, error) {
		app := apps[i/(len(resilienceSlacks)*len(resilienceIntensities))]
		sl := resilienceSlacks[(i/len(resilienceIntensities))%len(resilienceSlacks)]
		intensity := resilienceIntensities[i%len(resilienceIntensities)]
		// Every cell gets its own seed so schedules differ across the grid
		// while staying fixed across runs.
		seed := int64(31 + i)
		switch app {
		case "proxy":
			return resilientProxyCell(iters, sl, intensity, seed, pbase)
		case "lammps":
			runCfg := lcfg
			runCfg.Slack = sl
			ci, err := faults.NewCallInjector(faults.AtIntensity(intensity, seed), faults.Policy{}, 1)
			if err != nil {
				return ResilienceRow{}, err
			}
			runCfg.Faults = ci
			run, err := lammps.RunPerf(runCfg)
			if err != nil {
				return ResilienceRow{}, err
			}
			// Same Equation-1 accounting as AppSlackValidation: each rank
			// carries its slack share on its serial path.
			perRank := run.DelayedCalls / int64(runCfg.Procs)
			return resilienceAppRow(app, sl, intensity, run.Runtime, perRank, lbase.Runtime, ci.Stats()), nil
		default:
			runCfg := ccfg
			runCfg.Slack = sl
			ci, err := faults.NewCallInjector(faults.AtIntensity(intensity, seed), faults.Policy{}, 1)
			if err != nil {
				return ResilienceRow{}, err
			}
			runCfg.Faults = ci
			run, err := cosmoflow.RunPerf(runCfg)
			if err != nil {
				return ResilienceRow{}, err
			}
			return resilienceAppRow(app, sl, intensity, run.Runtime, run.DelayedCalls, cbase.Runtime, ci.Stats()), nil
		}
	})
	if err != nil {
		return nil, err
	}
	// FaultFree column: each (app, slack) group's intensity-0 penalty.
	zero := map[[2]string]float64{}
	for _, r := range rows {
		if r.Intensity == 0 {
			zero[[2]string{r.App, r.Slack.String()}] = r.Penalty
		}
	}
	for i := range rows {
		rows[i].FaultFree = zero[[2]string{rows[i].App, rows[i].Slack.String()}]
	}
	return rows, nil
}

// resilienceAppRow applies availability-adjusted Equation 1 to one
// application run.
func resilienceAppRow(app string, sl sim.Duration, intensity float64, runtime sim.Duration, calls int64, baseline sim.Duration, st faults.CallStats) ResilienceRow {
	return ResilienceRow{
		App: app, Slack: sl, Intensity: intensity,
		Penalty:   model.AvailabilityAdjustedPenalty(runtime, calls, sl, baseline),
		Retries:   st.Retries,
		Timeouts:  st.Timeouts,
		Failovers: st.Failovers,
		Degraded:  st.DegradedToLocal,
	}
}

// resilientProxyCell runs the proxy loop through the fault-tolerant
// remoting transport over a path whose one-way latency equals the slack.
func resilientProxyCell(iters int, sl sim.Duration, intensity float64, seed int64, baseline sim.Duration) (ResilienceRow, error) {
	path, err := fabric.PathForSlack(sl)
	if err != nil {
		return ResilienceRow{}, err
	}
	env := sim.NewEnv()
	defer env.Close()
	r, err := remoting.NewResilient(env, gpu.A100(), remoting.ResilientConfig{
		Config: remoting.Config{Path: path, Seed: seed},
		Faults: faults.AtIntensity(intensity, seed),
		// The call deadline must exceed the slowest call's service time or
		// healthy calls would be treated as lost. The binding term is the
		// starvation warm-up a long-idle GPU charges its next kernel
		// (WarmupRate × WarmupSaturation ≈ 81 ms on the A100 model), which
		// a 10 ms path provokes on every iteration.
		Policy:   faults.Policy{CallTimeout: 100 * sim.Millisecond},
		Standbys: 1,
	})
	if err != nil {
		return ResilienceRow{}, err
	}
	const size = 1 << 11
	matBytes := gpu.MatrixBytes(size)
	kernel := gpu.MatMul(size)
	var loop sim.Duration
	var calls int64
	var runErr error
	env.Spawn("host", func(p *sim.Proc) {
		var bufs [3]gpu.Ptr
		for i := range bufs {
			h, err := r.Malloc(p, matBytes)
			if err != nil {
				runErr = err
				return
			}
			bufs[i] = h
		}
		before := r.Stats().Calls
		start := p.Now()
		for i := 0; i < iters; i++ {
			if _, err := r.RunProxyIteration(p, bufs[0], bufs[1], bufs[2], matBytes, kernel); err != nil {
				runErr = err
				return
			}
		}
		loop = p.Now().Sub(start)
		calls = r.Stats().Calls - before
	})
	env.Run()
	if runErr != nil {
		return ResilienceRow{}, runErr
	}
	// The nominal per-call slack a remoted call pays: request + response
	// crossing plus the server's dispatch overhead.
	perCall := path.RoundTrip() + 2*sim.Microsecond
	st := r.Stats()
	return ResilienceRow{
		App: "proxy", Slack: sl, Intensity: intensity,
		Penalty:   model.AvailabilityAdjustedPenalty(loop, calls, perCall, baseline),
		Retries:   st.Retries,
		Timeouts:  st.Timeouts,
		Failovers: st.Failovers,
		Degraded:  st.Degraded,
	}, nil
}

// localProxyLoop times iters fault-free node-local proxy iterations — the
// baseline the remoted penalties are expressed against.
func localProxyLoop(iters int) (sim.Duration, error) {
	env := sim.NewEnv()
	defer env.Close()
	dev, err := gpu.NewDevice(env, gpu.A100())
	if err != nil {
		return 0, err
	}
	ctx := cuda.NewContext(dev, cuda.Config{})
	const size = 1 << 11
	matBytes := gpu.MatrixBytes(size)
	kernel := gpu.MatMul(size)
	var loop sim.Duration
	var runErr error
	env.Spawn("host", func(p *sim.Proc) {
		var bufs [3]gpu.Ptr
		for i := range bufs {
			ptr, err := ctx.Malloc(p, matBytes)
			if err != nil {
				runErr = err
				return
			}
			bufs[i] = ptr
		}
		start := p.Now()
		for i := 0; i < iters; i++ {
			if err := ctx.MemcpyH2D(p, bufs[0], matBytes); err != nil {
				runErr = err
				return
			}
			if err := ctx.MemcpyH2D(p, bufs[1], matBytes); err != nil {
				runErr = err
				return
			}
			ctx.LaunchSync(p, kernel, nil)
			ctx.DeviceSynchronize(p)
			if err := ctx.MemcpyD2H(p, bufs[2], matBytes); err != nil {
				runErr = err
				return
			}
		}
		loop = p.Now().Sub(start)
	})
	env.Run()
	return loop, runErr
}

// RenderResilience formats the sweep.
func RenderResilience(rows []ResilienceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Availability-adjusted slack penalty under deterministic fault injection:\n")
	fmt.Fprintf(&b, "(Equation 1 removes nominal slack only; timeout/retry/failover waits stay in)\n")
	fmt.Fprintf(&b, "%-10s %-10s %-10s %-12s %-12s %-8s %-9s %-10s %-9s\n",
		"app", "slack", "intensity", "penalty", "fault-free", "retries", "timeouts", "failovers", "degraded")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-10v %-10g %-12.5f %-12.5f %-8d %-9d %-10d %-9v\n",
			r.App, r.Slack, r.Intensity, r.Penalty, r.FaultFree,
			r.Retries, r.Timeouts, r.Failovers, r.Degraded)
	}
	b.WriteString("zero intensity reproduces the fault-free penalty exactly; faults add availability cost on top.\n")
	return b.String()
}
