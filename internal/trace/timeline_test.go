package trace

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/sim"
)

// traceWithPattern builds a trace from explicit kernel launches with a
// known timing pattern: k1 at [0,1ms], idle, k2 at [3ms,4ms].
func traceWithPattern(t *testing.T) *Trace {
	t.Helper()
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	dev, _ := gpu.NewDevice(env, testSpec())
	ctx := cuda.NewContext(dev, cuda.Config{CallOverhead: -1})
	rec := NewRecorder("pattern")
	dev.Listen(rec)
	rec.Start(env)
	env.Spawn("host", func(p *sim.Proc) {
		ctx.LaunchSync(p, gpu.Fixed("k1", 1*sim.Millisecond), nil)
		p.Sleep(2 * sim.Millisecond)
		ctx.LaunchSync(p, gpu.Fixed("k2", 1*sim.Millisecond), nil)
	})
	env.Run()
	rec.Stop(env)
	return rec.Trace()
}

func TestComputeSpansMerged(t *testing.T) {
	tr := traceWithPattern(t)
	spans := tr.ComputeSpans()
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	if math.Abs(float64(spans[0].Duration()-1*sim.Millisecond)) > 1e-12 {
		t.Errorf("span 0 = %v", spans[0])
	}
}

func TestComputeGapsBetweenKernels(t *testing.T) {
	tr := traceWithPattern(t)
	gaps := tr.ComputeGaps()
	// One 2ms gap between the kernels; no leading gap (k1 starts at 0)
	// and no trailing gap (recording stops at k2's end).
	if len(gaps) != 1 {
		t.Fatalf("gaps = %v", gaps)
	}
	if math.Abs(float64(gaps[0].Duration()-2*sim.Millisecond)) > 1e-12 {
		t.Errorf("gap = %v, want 2ms", gaps[0].Duration())
	}
	durs := tr.GapDurations()
	if len(durs) != 1 || math.Abs(durs[0]-2e-3) > 1e-12 {
		t.Errorf("GapDurations = %v", durs)
	}
	if lg := tr.LongestGap(); math.Abs(float64(lg.Duration()-2*sim.Millisecond)) > 1e-12 {
		t.Errorf("LongestGap = %v", lg)
	}
}

func TestComputeUtilization(t *testing.T) {
	tr := traceWithPattern(t)
	// 2ms busy over 4ms runtime.
	if got := tr.ComputeUtilization(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("utilization = %v, want 0.5", got)
	}
}

func TestUtilizationEmptyTrace(t *testing.T) {
	tr := &Trace{}
	if tr.ComputeUtilization() != 0 {
		t.Error("nonzero utilization on empty trace")
	}
	if len(tr.ComputeGaps()) != 0 {
		t.Error("gaps on empty trace")
	}
	if tr.LongestGap().Duration() != 0 {
		t.Error("longest gap on empty trace")
	}
}

func TestWarmupTotalAggregates(t *testing.T) {
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	spec := testSpec()
	spec.WarmupRate = 0.5
	spec.WarmupSaturation = 1 * sim.Second
	dev, _ := gpu.NewDevice(env, spec)
	ctx := cuda.NewContext(dev, cuda.Config{CallOverhead: -1})
	rec := NewRecorder("warm")
	dev.Listen(rec)
	rec.Start(env)
	env.Spawn("host", func(p *sim.Proc) {
		ctx.LaunchSync(p, gpu.Fixed("k1", 1*sim.Millisecond), nil)
		p.Sleep(10 * sim.Millisecond)
		ctx.LaunchSync(p, gpu.Fixed("k2", 1*sim.Millisecond), nil)
	})
	env.Run()
	rec.Stop(env)
	tr := rec.Trace()
	want := 5 * sim.Millisecond // 0.5 × 10ms gap, charged to k2
	if got := tr.WarmupTotal(); math.Abs(float64(got-want)) > 1e-12 {
		t.Errorf("WarmupTotal = %v, want %v", got, want)
	}
}

func TestGapsGrowUnderSlackInTraces(t *testing.T) {
	// End-to-end: the mechanism the model reads off traces — injected
	// slack widens compute gaps.
	run := func(slack sim.Duration) float64 {
		env := sim.NewEnv()
		defer env.Close()
		dev, _ := gpu.NewDevice(env, testSpec())
		ctx := cuda.NewContext(dev, cuda.Config{CallOverhead: -1})
		rec := NewRecorder("gaps")
		dev.Listen(rec)
		rec.Start(env)
		env.Spawn("host", func(p *sim.Proc) {
			for i := 0; i < 5; i++ {
				ctx.LaunchSync(p, gpu.Fixed("k", 1*sim.Millisecond), nil)
				p.Sleep(slack)
			}
		})
		env.Run()
		rec.Stop(env)
		var total float64
		for _, g := range rec.Trace().GapDurations() {
			total += g
		}
		return total
	}
	if g0, g1 := run(0), run(500*sim.Microsecond); g1 <= g0 {
		t.Errorf("gaps did not grow under slack: %v vs %v", g0, g1)
	}
}

// Property: busy spans plus idle gaps exactly partition the recorded
// runtime for any synthetic kernel layout.
func TestPropertySpansAndGapsPartitionRuntime(t *testing.T) {
	f := func(raw []uint8) bool {
		tr := &Trace{Started: 0}
		cursor := sim.Time(0)
		for _, r := range raw {
			gap := sim.Duration(r%7) * sim.Millisecond
			dur := sim.Duration(r%5+1) * sim.Millisecond
			start := cursor.Add(gap)
			end := start.Add(dur)
			tr.Kernels = append(tr.Kernels, gpu.KernelEvent{Name: "k", Start: start, End: end})
			cursor = end
		}
		tr.Ended = cursor.Add(sim.Duration(len(raw)%3) * sim.Millisecond)
		var busy, idle sim.Duration
		for _, s := range tr.ComputeSpans() {
			busy += s.Duration()
		}
		for _, g := range tr.ComputeGaps() {
			idle += g.Duration()
		}
		diff := float64(busy + idle - tr.Runtime())
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
