package experiments

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/pool"
)

// poolPair finds the defrag-off twin of an on-arm row.
func poolPair(rows []PoolRow, r PoolRow) *PoolRow {
	for i := range rows {
		o := &rows[i]
		if o.Policy == r.Policy && o.Churn == r.Churn && o.Faulty == r.Faulty && !o.Defrag {
			return o
		}
	}
	return nil
}

// TestPoolProperties runs the full sweep once and holds it to the
// experiment's contract:
//
//   - scale: every main-grid cell sustains >= 2000 concurrent gangs on
//     >= 512 GPUs, and the failure cells keep the pool at >= 512 GPUs;
//   - the zero-churn defrag arm is a no-op: not one migration, and
//     byte-for-byte the stats of its off twin;
//   - in every nonzero-churn cell the defrag arm strictly reduces
//     stranded capacity and never regresses goodput;
//   - accounting closes: every generated job is placed or killed.
func TestPoolProperties(t *testing.T) {
	if poolTopology().GPUs() < 512 || poolFaultTopology().GPUs() < 512 {
		t.Fatalf("pool topologies below the 512-GPU floor: %d / %d",
			poolTopology().GPUs(), poolFaultTopology().GPUs())
	}
	o := Quick()
	o.Jobs = 8
	rows, err := Pool(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("sweep produced %d rows, want 20", len(rows))
	}
	for _, r := range rows {
		st := r.Stats
		if st.Placed+st.Killed < st.Jobs {
			t.Errorf("%v churn=%g defrag=%v faulty=%v: %d jobs but only %d placed + %d killed",
				r.Policy, r.Churn, r.Defrag, r.Faulty, st.Jobs, st.Placed, st.Killed)
		}
		if !r.Faulty && st.PeakConcurrent < 2000 {
			t.Errorf("%v churn=%g: peak concurrency %d < 2000", r.Policy, r.Churn, st.PeakConcurrent)
		}
		if st.Goodput <= 0 || st.Goodput > 1 {
			t.Errorf("%v churn=%g defrag=%v faulty=%v: goodput %g outside (0, 1]",
				r.Policy, r.Churn, r.Defrag, r.Faulty, st.Goodput)
		}
		if !r.Defrag {
			if st.Migrations != 0 {
				t.Errorf("%v churn=%g faulty=%v: defrag-off arm ran %d consolidation migrations",
					r.Policy, r.Churn, r.Faulty, st.Migrations)
			}
			continue
		}
		off := poolPair(rows, r)
		if off == nil {
			t.Fatalf("%v churn=%g faulty=%v: no defrag-off twin", r.Policy, r.Churn, r.Faulty)
		}
		if r.Churn == 0 {
			if st.Migrations != 0 {
				t.Errorf("%v zero-churn: %d spurious migrations", r.Policy, st.Migrations)
			}
			if st != off.Stats {
				t.Errorf("%v zero-churn: defrag changed the run:\noff %+v\non  %+v",
					r.Policy, off.Stats, st)
			}
			continue
		}
		if st.StrandedAvg >= off.Stats.StrandedAvg {
			t.Errorf("%v churn=%g faulty=%v: defrag stranded %.3f, off arm %.3f — not a strict reduction",
				r.Policy, r.Churn, r.Faulty, st.StrandedAvg, off.Stats.StrandedAvg)
		}
		if st.Goodput < off.Stats.Goodput {
			t.Errorf("%v churn=%g faulty=%v: defrag goodput %.9f regressed below %.9f",
				r.Policy, r.Churn, r.Faulty, st.Goodput, off.Stats.Goodput)
		}
		if st.Migrations == 0 {
			t.Errorf("%v churn=%g faulty=%v: churning defrag arm never migrated", r.Policy, r.Churn, r.Faulty)
		}
	}
	// The failure cells must exercise the health integration: drains
	// happened and the drained allocations moved through the migration
	// machinery.
	for _, r := range rows {
		if !r.Faulty {
			continue
		}
		if r.Stats.Drains == 0 || r.Health.Drains == 0 {
			t.Errorf("failure cell defrag=%v: no drains (pool %d, health %d)",
				r.Defrag, r.Stats.Drains, r.Health.Drains)
		}
		if r.Stats.DrainMigrations == 0 {
			t.Errorf("failure cell defrag=%v: drains re-placed nothing", r.Defrag)
		}
		if r.Stats.Readmissions == 0 {
			t.Errorf("failure cell defrag=%v: no server returned to rotation", r.Defrag)
		}
	}
}

// TestPoolWorkerEquivalence: the rendered sweep is byte-identical
// between serial and parallel execution.
func TestPoolWorkerEquivalence(t *testing.T) {
	o1 := Quick()
	o1.Jobs = 1
	r1, err := Pool(o1)
	if err != nil {
		t.Fatal(err)
	}
	o8 := Quick()
	o8.Jobs = 8
	r8, err := Pool(o8)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := RenderPool(r1), RenderPool(r8); a != b {
		t.Fatalf("-j 1 and -j 8 renders diverge:\n%s\nvs\n%s", a, b)
	}
}

// TestPoolShapePricing pins the shapes' tier admissibility under the
// paper's penalty model — the gate the tier-aware policy applies.
func TestPoolShapePricing(t *testing.T) {
	type adm struct {
		shape pool.Shape
		scale fabric.Scale
		ok    bool
	}
	// lammps (2e5 calls/s, floor 0.90): rack only. cosmoflow (2e4,
	// floor 0.95): up to row.
	cases := []adm{
		{pool.LammpsShape, fabric.RackScale, true},
		{pool.LammpsShape, fabric.RowScale, false},
		{pool.LammpsShape, fabric.ClusterScale, false},
		{pool.CosmoFlowShape, fabric.RackScale, true},
		{pool.CosmoFlowShape, fabric.RowScale, true},
		{pool.CosmoFlowShape, fabric.ClusterScale, false},
	}
	for _, c := range cases {
		eff := pool.EfficiencyAt(c.shape, c.scale)
		if got := eff >= c.shape.MinEfficiency(); got != c.ok {
			t.Errorf("%v at %v: eff %.4f vs floor %.2f, admissible=%v, want %v",
				c.shape, c.scale, eff, c.shape.MinEfficiency(), got, c.ok)
		}
	}
}
