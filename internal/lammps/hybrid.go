package lammps

import (
	"fmt"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/slack"
)

// HybridConfig runs the numeric MD engine through the simulated GPU: the
// physics is computed for real (on the host, standing in for the device's
// arithmetic) while every offload step is charged through the
// CUDA/device/slack stack in virtual time. This couples correctness and
// timing in one run: slack cannot change trajectories, only the clock —
// which HybridResult lets tests verify directly.
type HybridConfig struct {
	// BoxSize is the numeric system size (small: real O(N²·steps) work).
	BoxSize int
	// Steps to integrate.
	Steps int
	// Seed for initial velocities.
	Seed int64
	// Slack injected after every link-crossing CUDA call.
	Slack sim.Duration
	// Spec selects the device (zero value = gpu.A100()).
	Spec gpu.Spec
}

// HybridResult reports a hybrid run.
type HybridResult struct {
	// System is the final numeric state (positions, velocities, energy).
	System *System
	// Runtime is the virtual wall time of the stepping loop.
	Runtime sim.Duration
	// Energy is the final total energy (for conservation checks).
	Energy float64
	// DelayedCalls counts slack-delayed API calls.
	DelayedCalls int64
}

// RunHybrid integrates a real LJ system with every force evaluation
// offloaded through the simulated device.
func RunHybrid(cfg HybridConfig) (HybridResult, error) {
	if cfg.BoxSize <= 0 || cfg.Steps <= 0 {
		return HybridResult{}, fmt.Errorf("lammps: invalid hybrid shape box=%d steps=%d", cfg.BoxSize, cfg.Steps)
	}
	if cfg.Slack < 0 {
		return HybridResult{}, fmt.Errorf("lammps: negative slack %v", cfg.Slack)
	}
	if cfg.Spec.Name == "" {
		cfg.Spec = gpu.A100()
	}

	env := sim.NewEnv()
	defer env.Close()
	dev, err := gpu.NewDevice(env, cfg.Spec)
	if err != nil {
		return HybridResult{}, err
	}
	ctx := cuda.NewContext(dev, cuda.Config{})
	inj := slack.New(cfg.Slack)
	ctx.Interpose(inj)

	system := NewSystem(cfg.BoxSize, cfg.Seed)
	posBytes := int64(system.N) * PosBytesPerAtom
	forceBytes := int64(system.N) * ForceBytesPerAtom

	res := HybridResult{System: system}
	var runErr error
	env.Spawn("md", func(p *sim.Proc) {
		dPos, err := ctx.Malloc(p, posBytes)
		if err != nil {
			runErr = err
			return
		}
		dForce, err := ctx.Malloc(p, forceBytes)
		if err != nil {
			runErr = err
			return
		}
		start := p.Now()
		for step := 0; step < cfg.Steps; step++ {
			// The numeric half-kick + drift happens "on the host".
			dt := system.Timestep
			half := dt / 2
			for i := range system.Pos {
				system.Vel[i] = system.Vel[i].Add(system.Force[i].Scale(half))
				system.Pos[i] = system.Pos[i].Add(system.Vel[i].Scale(dt))
				system.Pos[i] = Vec3{system.wrap(system.Pos[i].X), system.wrap(system.Pos[i].Y), system.wrap(system.Pos[i].Z)}
			}
			system.buildCells()

			// Offload the force evaluation: ship positions, run the kernel
			// (the real arithmetic happens here, standing in for the
			// device), ship forces back — all charged in virtual time.
			if err := ctx.MemcpyH2D(p, dPos, posBytes); err != nil {
				runErr = err
				return
			}
			ctx.LaunchSync(p, ljForceKernel(system.N), nil)
			system.ComputeForces()
			if err := ctx.MemcpyD2H(p, dForce, forceBytes); err != nil {
				runErr = err
				return
			}

			for i := range system.Vel {
				system.Vel[i] = system.Vel[i].Add(system.Force[i].Scale(half))
			}
			system.StepsRun++
		}
		res.Runtime = p.Now().Sub(start)
		ctx.MustFree(p, dPos)
		ctx.MustFree(p, dForce)
	})
	env.Run()
	if runErr != nil {
		return HybridResult{}, runErr
	}
	res.Energy = system.TotalEnergy()
	res.DelayedCalls = inj.DelayedCalls()
	return res, nil
}
