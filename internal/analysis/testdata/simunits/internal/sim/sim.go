// Package sim is a corpus stand-in for the real engine: just enough of the
// Duration API for the simunits rule to type-check against. The package
// itself is exempt from the rule — defining units from raw literals is its
// job.
package sim

// Duration is a span of virtual time in float64 seconds.
type Duration float64

const (
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
)

// Micros returns d expressed in microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e-6 }

// Millis returns d expressed in milliseconds.
func (d Duration) Millis() float64 { return float64(d) / 1e-3 }

// Proc is a minimal process handle with the blocking method the corpus
// schedules against.
type Proc struct{}

// Sleep parks the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {}
