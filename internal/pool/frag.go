package pool

// Fragmentation accounting. The pool's free state is a per-server free
// count plus rack/row aggregates; the two derived numbers the experiment
// reports are:
//
//   - Fragmentation: how far the pool is from placing its reference gang
//     on one server. With L = the largest single-server free block and
//     F = total free GPUs, frag = 1 − L/min(F, refGang): 0 when a full
//     reference gang fits locally (or when the pool is simply out of
//     capacity), approaching 1 when plenty of GPUs are free but every
//     block is shattered.
//   - Stranded capacity: free GPUs on servers whose free block is smaller
//     than the reference gang — capacity that is powered and free but
//     cannot serve a standard gang without crossing a boundary and paying
//     slack.
//
// Both are total functions. The guards below mirror the
// AvailabilityAdjustedPenalty +Inf guard from the model package: degenerate
// pools (zero free capacity, a single-GPU pool) produce well-defined
// values, never NaN or a division by zero.

// Fragmentation returns the metric for a pool with totalFree free GPUs
// whose largest single-server free block is `largest`, scored against a
// reference gang of refGang GPUs.
//
// Edge cases, by design:
//   - totalFree == 0 (or negative): 0 — an empty free list is exhausted,
//     not fragmented.
//   - refGang <= 0: 0 — no reference demand, nothing to strand against.
//   - a single-GPU pool (totalFree == largest == 1): 0 — the one free
//     device is the largest placeable gang.
func Fragmentation(totalFree, largest, refGang int) float64 {
	if totalFree <= 0 || refGang <= 0 {
		return 0
	}
	denom := totalFree
	if refGang < denom {
		denom = refGang
	}
	if largest > denom {
		largest = denom
	}
	if largest < 0 {
		largest = 0
	}
	return 1 - float64(largest)/float64(denom)
}

// strandedContrib returns a server's contribution to stranded capacity:
// its whole free block when that block is a genuine fragment — smaller
// than the reference gang AND trapped beside running occupancy (free <
// capEff, the server's capacity net of pinned serving replicas). A
// fully-free server is never stranded, however small: there is nothing
// on it to consolidate away, so migration cannot reclaim it.
func strandedContrib(free, capEff, refGang int) int {
	if free > 0 && free < refGang && free < capEff {
		return free
	}
	return 0
}
