package cosmoflow

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// --- Numeric mode ---

func TestTensorIndexing(t *testing.T) {
	x := NewTensor(2, 3, 4, 5)
	if x.Len() != 120 {
		t.Fatalf("Len = %d", x.Len())
	}
	x.Set(1, 2, 3, 4, 7.5)
	if got := x.At(1, 2, 3, 4); got != 7.5 {
		t.Errorf("At = %v", got)
	}
	if got := x.atPadded(0, -1, 0, 0); got != 0 {
		t.Errorf("atPadded outside = %v", got)
	}
	c := x.Clone()
	c.Data[0] = 99
	if x.Data[0] == 99 {
		t.Error("Clone aliases")
	}
	if !x.SameShape(c) {
		t.Error("SameShape false for clone")
	}
}

func TestTensorInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTensor(0, 1, 1, 1)
}

func TestConvForwardIdentityKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv3D(1, 1, 3, rng)
	// Identity kernel: centre weight 1, rest 0, no bias.
	for i := range c.W {
		c.W[i] = 0
	}
	c.W[c.widx(0, 0, 1, 1, 1)] = 1
	c.B[0] = 0
	x := RandomVolume(1, 4, rng)
	y := c.Forward(x)
	for i := range x.Data {
		if math.Abs(y.Data[i]-x.Data[i]) > 1e-12 {
			t.Fatalf("identity conv altered element %d", i)
		}
	}
}

// numGrad estimates dLoss/dv by central differences.
func numGrad(f func() float64, v *float64) float64 {
	const h = 1e-5
	old := *v
	*v = old + h
	up := f()
	*v = old - h
	down := f()
	*v = old
	return (up - down) / (2 * h)
}

func TestConvGradientsMatchFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	conv := NewConv3D(2, 3, 3, rng)
	x := RandomVolume(2, 4, rng)
	target := RandomVolume(3, 4, rng)
	loss := func() float64 {
		l, _ := MSELoss(conv.Forward(x), target)
		return l
	}
	// Analytic gradients.
	_, g := MSELoss(conv.Forward(x), target)
	for i := range conv.dW {
		conv.dW[i] = 0
	}
	for i := range conv.dB {
		conv.dB[i] = 0
	}
	dx := conv.Backward(g)
	// Spot-check a handful of weight, bias and input gradients.
	for _, wi := range []int{0, 7, 31, len(conv.W) - 1} {
		want := numGrad(loss, &conv.W[wi])
		if math.Abs(conv.dW[wi]-want) > 1e-6*(math.Abs(want)+1) {
			t.Errorf("dW[%d] = %v, finite diff %v", wi, conv.dW[wi], want)
		}
	}
	want := numGrad(loss, &conv.B[1])
	if math.Abs(conv.dB[1]-want) > 1e-6*(math.Abs(want)+1) {
		t.Errorf("dB[1] = %v, finite diff %v", conv.dB[1], want)
	}
	for _, xi := range []int{0, 17, x.Len() - 1} {
		want := numGrad(loss, &x.Data[xi])
		if math.Abs(dx.Data[xi]-want) > 1e-6*(math.Abs(want)+1) {
			t.Errorf("dx[%d] = %v, finite diff %v", xi, dx.Data[xi], want)
		}
	}
}

func TestDenseGradientsMatchFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDense(8, 3, rng)
	x := NewTensor(8, 1, 1, 1)
	x.Fill(rng.NormFloat64)
	target := NewTensor(3, 1, 1, 1)
	target.Fill(rng.NormFloat64)
	loss := func() float64 {
		l, _ := MSELoss(d.Forward(x), target)
		return l
	}
	_, g := MSELoss(d.Forward(x), target)
	for i := range d.dW {
		d.dW[i] = 0
	}
	for i := range d.dB {
		d.dB[i] = 0
	}
	dx := d.Backward(g)
	for _, wi := range []int{0, 11, 23} {
		want := numGrad(loss, &d.W[wi])
		if math.Abs(d.dW[wi]-want) > 1e-6*(math.Abs(want)+1) {
			t.Errorf("dW[%d] = %v, finite diff %v", wi, d.dW[wi], want)
		}
	}
	for xi := 0; xi < 8; xi++ {
		want := numGrad(loss, &x.Data[xi])
		if math.Abs(dx.Data[xi]-want) > 1e-6*(math.Abs(want)+1) {
			t.Errorf("dx[%d] = %v, finite diff %v", xi, dx.Data[xi], want)
		}
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	x := NewTensor(1, 1, 1, 4)
	copy(x.Data, []float64{-1, 0, 2, -3})
	y := r.Forward(x)
	want := []float64{0, 0, 2, 0}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("relu = %v", y.Data)
		}
	}
	g := NewTensor(1, 1, 1, 4)
	copy(g.Data, []float64{1, 1, 1, 1})
	dx := r.Backward(g)
	wantG := []float64{0, 0, 1, 0}
	for i := range wantG {
		if dx.Data[i] != wantG[i] {
			t.Fatalf("relu grad = %v", dx.Data)
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	m := &MaxPool3D{}
	x := NewTensor(1, 2, 2, 2)
	copy(x.Data, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	y := m.Forward(x)
	if y.Len() != 1 || y.Data[0] != 8 {
		t.Fatalf("pool = %v", y.Data)
	}
	g := NewTensor(1, 1, 1, 1)
	g.Data[0] = 5
	dx := m.Backward(g)
	for i, v := range dx.Data {
		want := 0.0
		if i == 7 {
			want = 5
		}
		if v != want {
			t.Fatalf("pool grad = %v", dx.Data)
		}
	}
}

func TestMaxPoolOddExtentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for odd pool input")
		}
	}()
	(&MaxPool3D{}).Forward(NewTensor(1, 3, 2, 2))
}

func TestNetworkShapesAndParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := NewNetwork(16, 2, 4, rng)
	x := RandomVolume(2, 16, rng)
	y := n.Forward(x)
	if y.C != 4 || y.D != 1 || y.H != 1 || y.W != 1 {
		t.Fatalf("output shape %dx%dx%dx%d", y.C, y.D, y.H, y.W)
	}
	if n.ParamCount() <= 0 {
		t.Error("no parameters")
	}
	// 16 → pool → 8 → pool (two conv blocks to reach 4).
	if len(n.Layers) != 2*3+3 {
		t.Errorf("layers = %d", len(n.Layers))
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := NewNetwork(8, 1, 2, rng)
	// A fixed input-target pair: the network must overfit it quickly.
	x := RandomVolume(1, 8, rng)
	target := NewTensor(2, 1, 1, 1)
	target.Data[0], target.Data[1] = 0.5, -0.25
	first, _ := MSELoss(n.Forward(x), target)
	var last float64
	for i := 0; i < 60; i++ {
		n.ZeroGrads()
		pred := n.Forward(x)
		loss, g := MSELoss(pred, target)
		n.Backward(g)
		n.SGDStep(0.005)
		last = loss
	}
	if last >= first/2 {
		t.Errorf("loss %v → %v; SGD failed to reduce it", first, last)
	}
}

func TestMSELossShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MSELoss(NewTensor(1, 1, 1, 1), NewTensor(2, 1, 1, 1))
}

// --- Performance mode ---

// fastPerf is a small config for tests.
func fastPerf() PerfConfig {
	return PerfConfig{
		GPUs: 1, BatchSize: 4, Epochs: 1,
		TrainSamples: 32, ValSamples: 16,
		InputSide: 32, Cores: 8,
	}
}

func TestPerfValidation(t *testing.T) {
	bad := fastPerf()
	bad.InputSide = 24 // not a power of two
	if _, err := RunPerf(bad); err == nil {
		t.Error("invalid input side accepted")
	}
	bad = fastPerf()
	bad.Slack = -1
	if _, err := RunPerf(bad); err == nil {
		t.Error("negative slack accepted")
	}
	bad = fastPerf()
	bad.TrainSamples = 1
	bad.GPUs = 2
	if _, err := RunPerf(bad); err == nil {
		t.Error("insufficient samples accepted")
	}
}

func TestPerfRunsAndReports(t *testing.T) {
	r, err := RunPerf(fastPerf())
	if err != nil {
		t.Fatal(err)
	}
	if r.TrainSteps != 8 {
		t.Errorf("TrainSteps = %d, want 8", r.TrainSteps)
	}
	if r.Runtime <= 0 || r.StepTime <= 0 {
		t.Errorf("runtime %v steptime %v", r.Runtime, r.StepTime)
	}
	if r.ParamBytes <= 0 {
		t.Error("no parameter bytes")
	}
	if r.GPUUtilization <= 0 || r.GPUUtilization > 1 {
		t.Errorf("utilization = %v", r.GPUUtilization)
	}
}

func TestPerfCPUAffinityMatchesPaper(t *testing.T) {
	// §IV-A: CosmoFlow needs 2 cores; more processes/threads give nothing.
	cfg := fastPerf()
	times := map[int]sim.Duration{}
	for _, cores := range []int{1, 2, 4, 8} {
		cfg.Cores = cores
		r, err := RunPerf(cfg)
		if err != nil {
			t.Fatal(err)
		}
		times[cores] = r.Runtime
	}
	if times[1] <= times[2] {
		t.Errorf("1 core (%v) not slower than 2 (%v)", times[1], times[2])
	}
	if times[4] != times[2] || times[8] != times[2] {
		t.Errorf("extra cores changed runtime: 2=%v 4=%v 8=%v", times[2], times[4], times[8])
	}
}

func TestPerfTraceHasManyKernelKinds(t *testing.T) {
	cfg := fastPerf()
	cfg.Record = true
	r, err := RunPerf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace == nil {
		t.Fatal("no trace")
	}
	kinds := r.Trace.KernelDurationsByName()
	// CosmoFlow "executes dozens of different" kernels; our mini version
	// must at least show a rich mix (conv fwd/dgrad/wgrad per block,
	// elementwise, pool, dense).
	if len(kinds) < 10 {
		t.Errorf("distinct kernel names = %d, want ≥ 10", len(kinds))
	}
	top := r.Trace.TopKernels(5)
	var topTime, total sim.Duration
	for _, g := range top {
		topTime += g.Total
	}
	total = r.Trace.KernelTime()
	frac := float64(topTime) / float64(total)
	// Paper: top five kernels ≈ 49.9% of CosmoFlow's kernel time. Our mix
	// is narrower, but the top five must not be the whole story.
	if frac <= 0.3 || frac > 0.98 {
		t.Errorf("top-5 kernel fraction = %.3f", frac)
	}
	// Input copies land in the large-transfer bins; loss readbacks are
	// tiny — the bimodal Figure 5 shape.
	sizes := r.Trace.MemcpySizes()
	var small, large int
	for _, s := range sizes {
		if s <= 64<<10 {
			small++
		}
		if s >= 1<<20 { // batch input volumes (2 MiB at the test's 32³ input)
			large++
		}
	}
	if small == 0 || large == 0 {
		t.Errorf("memcpy size mix: %d small, %d large", small, large)
	}
}

func TestPerfSlackDelaysCalls(t *testing.T) {
	cfg := fastPerf()
	cfg.Slack = 10 * sim.Microsecond
	r, err := RunPerf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.DelayedCalls == 0 {
		t.Error("no delayed calls under slack")
	}
	base, err := RunPerf(fastPerf())
	if err != nil {
		t.Fatal(err)
	}
	if r.Runtime <= base.Runtime {
		t.Errorf("slack run %v not slower than baseline %v", r.Runtime, base.Runtime)
	}
}

func TestPerfDataParallelScaling(t *testing.T) {
	// More GPUs split the same dataset: runtime must drop, though not
	// perfectly (allreduce + loader overheads).
	cfg := fastPerf()
	cfg.TrainSamples = 64
	one, err := RunPerf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.GPUs = 4
	four, err := RunPerf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(one.Runtime) / float64(four.Runtime)
	if speedup < 1.5 || speedup > 4.5 {
		t.Errorf("4-GPU speedup = %.2f, want meaningful but sublinear-ish", speedup)
	}
}

func TestPerfDeterminism(t *testing.T) {
	run := func() sim.Duration {
		r, err := RunPerf(fastPerf())
		if err != nil {
			t.Fatal(err)
		}
		return r.Runtime
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestParamBytesScale(t *testing.T) {
	// The 128³ model must be megabytes of parameters (CosmoFlow ≈ a few M
	// params), and grow with depth.
	small := paramBytes(32, 4)
	big := paramBytes(128, 4)
	if big <= small {
		t.Errorf("paramBytes not growing: %d vs %d", big, small)
	}
	if big < 1<<20 || big > 1<<30 {
		t.Errorf("paramBytes(128) = %d, want megabytes", big)
	}
}

// --- Dataset and trainer (numeric pipeline) ---

func TestDatasetDeterministicAndShaped(t *testing.T) {
	a := NewDataset(4, 1, 8, 4, 7)
	b := NewDataset(4, 1, 8, 4, 7)
	if len(a.Samples) != 4 {
		t.Fatalf("samples = %d", len(a.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i].Volume.Len() != 512 || a.Samples[i].Target.Len() != 4 {
			t.Fatalf("sample %d shapes wrong", i)
		}
		for j := range a.Samples[i].Volume.Data {
			if a.Samples[i].Volume.Data[j] != b.Samples[i].Volume.Data[j] {
				t.Fatal("dataset nondeterministic")
			}
		}
	}
}

func TestDatasetTargetsInfluenceVolumes(t *testing.T) {
	// Two samples with different θ must produce different volumes beyond
	// the noise floor (the task is learnable).
	ds := NewDataset(8, 1, 8, 4, 1)
	var maxDiff float64
	for i := 1; i < len(ds.Samples); i++ {
		var d float64
		for j := range ds.Samples[0].Volume.Data {
			v := ds.Samples[i].Volume.Data[j] - ds.Samples[0].Volume.Data[j]
			d += v * v
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff < 1 {
		t.Errorf("volumes nearly identical across targets: %v", maxDiff)
	}
}

func TestDatasetSplit(t *testing.T) {
	ds := NewDataset(10, 1, 8, 2, 3)
	train, val := ds.Split(0.8)
	if len(train.Samples) != 8 || len(val.Samples) != 2 {
		t.Fatalf("split = %d/%d", len(train.Samples), len(val.Samples))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid split accepted")
		}
	}()
	ds.Split(1.5)
}

func TestTrainerLearnsSyntheticTask(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := NewDataset(12, 1, 8, 2, 5)
	train, val := ds.Split(0.75)
	tr := &Trainer{Net: NewNetwork(8, 1, 2, rng), LR: 0.01, Clip: 1}
	before := tr.Evaluate(val)
	var last float64
	for e := 0; e < 8; e++ {
		last = tr.TrainEpoch(train)
	}
	after := tr.Evaluate(val)
	if last <= 0 {
		t.Fatalf("train loss = %v", last)
	}
	if after >= before {
		t.Errorf("validation loss did not improve: %v → %v", before, after)
	}
}

func TestDatasetInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewDataset(0, 1, 8, 2, 1)
}
