package stats

import (
	"math"
	"testing"
)

func TestQuantilesHandComputed(t *testing.T) {
	// Unsorted on purpose: Quantiles must sort a copy.
	xs := []float64{40, 10, 30, 20}
	qs := []float64{0, 0.25, 0.5, 0.75, 1}
	// Linear interpolation between order statistics of {10,20,30,40}:
	// rank = q*(n-1) = q*3.
	want := []float64{10, 17.5, 25, 32.5, 40}
	got := Quantiles(xs, qs)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("Quantiles[%d] (q=%v) = %v, want %v", i, qs[i], got[i], want[i])
		}
	}
	// The input must be untouched.
	if xs[0] != 40 || xs[1] != 10 || xs[2] != 30 || xs[3] != 20 {
		t.Errorf("Quantiles mutated its input: %v", xs)
	}
}

func TestQuantilesMatchesPercentile(t *testing.T) {
	xs := []float64{3.5, -1, 7, 0, 2, 2, 9.25}
	for _, p := range []float64{0, 10, 25, 50, 75, 90, 99, 100} {
		got := Quantiles(xs, []float64{p / 100})[0]
		want := Percentile(xs, p)
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("Quantiles(q=%v) = %v, Percentile(p=%v) = %v", p/100, got, p, want)
		}
	}
}

func TestQuantilesEdgeCases(t *testing.T) {
	for _, q := range Quantiles(nil, []float64{0, 0.5, 1}) {
		if !math.IsNaN(q) {
			t.Errorf("empty input should give NaN, got %v", q)
		}
	}
	got := Quantiles([]float64{42}, []float64{0, 0.5, 1})
	for i, g := range got {
		if g != 42 {
			t.Errorf("single-element quantile %d = %v, want 42", i, g)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range quantile should panic")
		}
	}()
	Quantiles([]float64{1, 2}, []float64{1.5})
}

func TestLatencyHistHandComputed(t *testing.T) {
	// One bin per decade over [1µs, 1ms] in seconds: 3 bins with edges at
	// (approximately) 1e-6, 1e-5, 1e-4, 1e-3.
	h := NewLatencyHist(1e-6, 1e-3, 1)
	if len(h.Counts()) != 3 {
		t.Fatalf("bins = %d, want 3", len(h.Counts()))
	}
	for _, x := range []float64{2e-6, 5e-6, 3e-5, 2e-4, 5e-7, 5e-3} {
		h.Add(x)
	}
	// 5e-7 clamps into the first bin, 5e-3 into the last.
	wantCounts := []int64{3, 1, 2}
	for i, c := range h.Counts() {
		if c != wantCounts[i] {
			t.Errorf("bin %d count = %d, want %d", i, c, wantCounts[i])
		}
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if h.Min() != 5e-7 || h.Max() != 5e-3 {
		t.Errorf("Min/Max = %v/%v, want 5e-7/5e-3", h.Min(), h.Max())
	}

	// rank(0.5) = ceil(0.5*6) = 3, reached in bin 0 → upper edge ≈ 1e-5.
	if got := h.Quantile(0.5); !almostEqual(got, 1e-5, 1e-18) {
		t.Errorf("Quantile(0.5) = %v, want ~1e-5", got)
	}
	// rank(0.6) = ceil(3.6) = 4, reached in bin 1 → upper edge ≈ 1e-4.
	if got := h.Quantile(0.6); !almostEqual(got, 1e-4, 1e-17) {
		t.Errorf("Quantile(0.6) = %v, want ~1e-4", got)
	}
	// rank(1) = 6, reached in the saturated last bin → capped at its upper
	// edge (the true max 5e-3 lies above the histogram's range).
	if got := h.Quantile(1); !almostEqual(got, 1e-3, 1e-16) {
		t.Errorf("Quantile(1) = %v, want ~1e-3", got)
	}

	// Bins wholly at or below 2e-4: bins 0 and 1 → 3+1 samples.
	if got := h.CountAtOrBelow(2e-4); got != 4 {
		t.Errorf("CountAtOrBelow(2e-4) = %d, want 4", got)
	}
}

func TestLatencyHistQuantileNeverExceedsMax(t *testing.T) {
	// When the population maximum sits inside the crossing bin, the
	// estimate is capped at the exact max rather than the bin edge.
	h := NewLatencyHist(1e-6, 1, 4)
	h.Add(3e-3)
	h.Add(4e-3)
	if got := h.Quantile(0.99); got > 4e-3 {
		t.Errorf("Quantile(0.99) = %v exceeds max 4e-3", got)
	}
	if got := h.Quantile(0); got <= 0 || got > 4e-3 {
		t.Errorf("Quantile(0) = %v out of (0, max]", got)
	}
}

func TestLatencyHistEmpty(t *testing.T) {
	h := NewLatencyHist(1e-6, 1, 8)
	if !math.IsNaN(h.Quantile(0.5)) || !math.IsNaN(h.Min()) || !math.IsNaN(h.Max()) {
		t.Error("empty histogram should report NaN quantile/min/max")
	}
	if h.Count() != 0 || h.CountAtOrBelow(1) != 0 {
		t.Error("empty histogram should count zero")
	}
}

func TestLatencyHistDeterministicAcrossOrder(t *testing.T) {
	xs := []float64{2e-6, 5e-4, 3e-5, 2e-4, 7e-6, 9e-5}
	a := NewLatencyHist(1e-6, 1e-3, 4)
	b := NewLatencyHist(1e-6, 1e-3, 4)
	for _, x := range xs {
		a.Add(x)
	}
	for i := len(xs) - 1; i >= 0; i-- {
		b.Add(xs[i])
	}
	for i := range a.Counts() {
		if a.Counts()[i] != b.Counts()[i] {
			t.Fatalf("bin %d differs across insertion order: %d vs %d", i, a.Counts()[i], b.Counts()[i])
		}
	}
	if a.Quantile(0.99) != b.Quantile(0.99) {
		t.Error("quantile differs across insertion order")
	}
}
