// Package gpu models a data-centre GPU as a discrete-event device: stream
// queues, DMA engines, a memory allocator, kernel cost models, and — the
// piece this study hinges on — a work-starvation model that charges a
// warm-up penalty to kernels arriving after the device has sat idle.
//
// The paper measures GPU behaviour on an NVIDIA A100 SXM4 40 GiB; the
// default Spec is calibrated to that part. Absolute times are analytic
// estimates, not measurements, but the mechanisms that produce the paper's
// trends (latency hiding through queued work, starvation when the host
// cannot feed the device) are modelled directly.
package gpu

import "repro/internal/sim"

// Spec describes the performance envelope of a simulated GPU.
type Spec struct {
	// Name identifies the part, e.g. "A100-SXM4-40GB".
	Name string

	// MemoryBytes is the device memory capacity.
	MemoryBytes int64
	// MemoryBandwidth is the device (HBM) bandwidth in bytes/second.
	MemoryBandwidth float64

	// PeakFLOPS is the peak single-precision throughput at boost clock.
	PeakFLOPS float64

	// H2DBandwidth and D2HBandwidth are host↔device copy bandwidths in
	// bytes/second (PCIe Gen4 x16 class by default).
	H2DBandwidth float64
	D2HBandwidth float64
	// CopyLatency is the fixed per-copy setup latency (descriptor ring,
	// doorbell, small-transfer floor).
	CopyLatency sim.Duration

	// LaunchOverhead is the host-visible cost of pushing one kernel launch
	// through the driver. When the stream already holds queued work the
	// device hides it; after an idle period it appears on the critical path.
	LaunchOverhead sim.Duration
	// MinKernelTime is the floor on any kernel's execution time (grid
	// scheduling, instruction fetch).
	MinKernelTime sim.Duration

	// WarmupRate and WarmupSaturation parameterize the starvation model:
	// a kernel that begins after the compute engine has been idle for g
	// seconds executes WarmupRate*min(g, WarmupSaturation) slower than the
	// same kernel launched back-to-back. Physically this aggregates boost-
	// clock decay, cache cooling, and lost pipelining — the effects the
	// paper's Discussion attributes the slack penalty to.
	WarmupRate       float64
	WarmupSaturation sim.Duration

	// DMAEngines is the number of concurrent copy engines (A100 exposes
	// one per direction to a host).
	DMAEngines int

	// ContextSwitch is the cost charged when consecutive kernels arrive
	// from different streams (distinct CUDA contexts in the workloads:
	// each MPI rank drives the device through its own context). Without
	// MPS, time-slicing an oversubscribed device between processes costs
	// hundreds of microseconds per switch; this is the dominant reason
	// small LAMMPS boxes degrade under many ranks (Figure 2, box 20).
	// Zero (the A100 preset) disables the charge.
	ContextSwitch sim.Duration
}

// A100 returns the default specification, calibrated to the A100 SXM4
// 40 GiB parts in DRAC Narval nodes used by the paper.
//
// PeakFLOPS reflects non-TensorCore FP32; kernel cost models apply a
// size-dependent efficiency on top, so small matrix multiplies land in the
// hundreds of microseconds and 32768² multiplies take seconds, matching the
// proxy's observed regime (N clamps at both ends of [5, 1000] across the
// paper's matrix sweep).
func A100() Spec {
	return Spec{
		Name:             "A100-SXM4-40GB",
		MemoryBytes:      40 * (1 << 30),
		MemoryBandwidth:  1.555e12,
		PeakFLOPS:        19.5e12,
		H2DBandwidth:     24e9,
		D2HBandwidth:     24e9,
		CopyLatency:      8 * sim.Microsecond,
		LaunchOverhead:   4 * sim.Microsecond,
		MinKernelTime:    3 * sim.Microsecond,
		WarmupRate:       0.27,
		WarmupSaturation: 300 * sim.Millisecond,
		DMAEngines:       2,
	}
}

// Validate reports whether the spec is internally consistent.
func (s Spec) Validate() error {
	switch {
	case s.MemoryBytes <= 0:
		return specErr("MemoryBytes must be positive")
	case s.MemoryBandwidth <= 0:
		return specErr("MemoryBandwidth must be positive")
	case s.PeakFLOPS <= 0:
		return specErr("PeakFLOPS must be positive")
	case s.H2DBandwidth <= 0 || s.D2HBandwidth <= 0:
		return specErr("copy bandwidths must be positive")
	case s.CopyLatency < 0 || s.LaunchOverhead < 0 || s.MinKernelTime < 0:
		return specErr("latencies must be non-negative")
	case s.WarmupRate < 0 || s.WarmupSaturation < 0:
		return specErr("warm-up parameters must be non-negative")
	case s.ContextSwitch < 0:
		return specErr("ContextSwitch must be non-negative")
	case s.DMAEngines <= 0:
		return specErr("DMAEngines must be positive")
	}
	return nil
}

type specErr string

func (e specErr) Error() string { return "gpu: invalid spec: " + string(e) }
