// Command cdivet runs the determinism-invariant static-analysis suite
// (internal/analysis) over the repository.
//
//	cdivet ./...                   # whole module (the CI gate)
//	cdivet ./internal/sim          # one package
//	cdivet -rules maporder ./...   # a subset of rules
//	cdivet -json ./... > out.json  # machine-readable findings
//	cdivet -sarif out.sarif ./...  # also write SARIF 2.1.0 for code scanning
//	cdivet -fix ./...              # apply suggested fixes in place
//	cdivet -fix -diff ./...        # print the fixes as a unified diff instead
//	cdivet -baseline b.json ./...  # suppress findings recorded in b.json
//	cdivet -write-baseline b.json  # record current findings as the baseline
//	cdivet -prune-baseline b.json  # shrink b.json to what findings still justify
//	cdivet -directives ./...       # inventory //cdivet:allow directives
//	cdivet -list                   # describe every rule
//
// Exit status: 0 clean, 1 findings (or, with -directives, malformed/stale
// directives), 2 usage or load error. Suppress an intentional violation in
// source with a justified directive on, or directly above, the line:
//
//	//cdivet:allow <rule> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	rules := flag.String("rules", "", "comma-separated rule subset (default: all)")
	list := flag.Bool("list", false, "list rules and exit")
	fix := flag.Bool("fix", false, "apply suggested fixes to the source files")
	diff := flag.Bool("diff", false, "with -fix, print a unified diff instead of writing files")
	sarifPath := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	baselinePath := flag.String("baseline", "", "suppress findings recorded in this baseline file")
	writeBaseline := flag.String("write-baseline", "", "record current findings to this file and exit 0")
	pruneBaseline := flag.String("prune-baseline", "", "drop baseline entries the current findings no longer justify and rewrite the file")
	directives := flag.Bool("directives", false, "inventory //cdivet:allow directives; exit 1 on malformed or stale ones")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *diff && !*fix {
		fmt.Fprintln(os.Stderr, "cdivet: -diff requires -fix")
		os.Exit(2)
	}

	cfg := analysis.Config{Patterns: flag.Args()}
	if len(cfg.Patterns) == 0 {
		cfg.Patterns = []string{"./..."}
	}
	if *rules != "" {
		as, err := analysis.ByName(*rules)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Analyzers = as
	}

	m, err := analysis.LoadModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *directives {
		os.Exit(runDirectives(m, cfg))
	}

	findings, err := analysis.RunModule(m, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *writeBaseline != "" {
		b := analysis.NewBaseline(findings, m.Root)
		if err := analysis.WriteBaseline(*writeBaseline, b); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "cdivet: baselined %d finding(s) in %s\n", len(findings), *writeBaseline)
		return
	}
	if *pruneBaseline != "" {
		b, err := analysis.ReadBaseline(*pruneBaseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		pruned, removed, trimmed := b.Prune(findings, m.Root)
		for _, e := range removed {
			fmt.Fprintf(os.Stderr, "cdivet: pruned: %s %s %q\n", e.Rule, e.File, e.Message)
		}
		for _, e := range trimmed {
			fmt.Fprintf(os.Stderr, "cdivet: trimmed %d of: %s %s %q\n", e.Count, e.Rule, e.File, e.Message)
		}
		if len(removed) == 0 && len(trimmed) == 0 {
			fmt.Fprintf(os.Stderr, "cdivet: baseline %s already minimal\n", *pruneBaseline)
			return
		}
		if err := analysis.WriteBaseline(*pruneBaseline, pruned); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "cdivet: rewrote %s with %d entries\n", *pruneBaseline, len(pruned.Entries))
		return
	}
	if *baselinePath != "" {
		b, err := analysis.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		var suppressed int
		if stale := b.Stale(findings, m.Root); len(stale) > 0 {
			for _, e := range stale {
				fmt.Fprintf(os.Stderr, "cdivet: baseline entry no longer matches: %s %s %q\n", e.Rule, e.File, e.Message)
			}
		}
		findings, suppressed = b.Filter(findings, m.Root)
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "cdivet: %d finding(s) suppressed by baseline\n", suppressed)
		}
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err == nil {
			err = analysis.WriteSARIF(f, findings, m.Root)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if *fix {
		os.Exit(runFix(findings))
	}

	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else if err := analysis.WriteText(os.Stdout, findings); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "cdivet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// runFix applies (or, with -diff, renders) every fix the findings carry and
// reports what had no fix. Exit 1 when unfixable findings remain, so
// `cdivet -fix && cdivet` converges to the same gate as plain cdivet.
func runFix(findings []analysis.Finding) int {
	diff := flag.Lookup("diff").Value.String() == "true"
	res, err := analysis.ApplyFixes(findings)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	files := make([]string, 0, len(res.Fixed))
	for file := range res.Fixed { //cdivet:allow maporder keys are collected unordered and sorted on the next line
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		if diff {
			old, err := os.ReadFile(file)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			rel := relToWd(file)
			fmt.Print(analysis.UnifiedDiff(rel, rel, old, res.Fixed[file]))
		} else if err := os.WriteFile(file, res.Fixed[file], 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	verb := "applied"
	if diff {
		verb = "rendered"
	}
	fmt.Fprintf(os.Stderr, "cdivet: %s %d fix(es) across %d file(s)\n", verb, res.Applied, len(files))
	if len(res.Skipped) > 0 {
		fmt.Fprintf(os.Stderr, "cdivet: %d fix(es) skipped (conflicts); re-run -fix to apply\n", len(res.Skipped))
	}
	unfixed := 0
	for _, f := range findings {
		if f.Fix == nil || len(f.Fix.Edits) == 0 {
			fmt.Printf("%s: [%s] %s (no automatic fix)\n", f.Pos, f.Rule, f.Message)
			unfixed++
		}
	}
	if unfixed > 0 || len(res.Skipped) > 0 {
		return 1
	}
	return 0
}

// runDirectives prints every //cdivet:allow directive with its rule, age in
// commits (how many commits HEAD is ahead of the directive's introduction,
// per git blame; "-" when git is unavailable), status, and reason. Exit 1
// when any directive is malformed or stale.
func runDirectives(m *analysis.Module, cfg analysis.Config) int {
	infos, err := analysis.Inventory(m, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	bad := 0
	for _, d := range infos {
		status := "ok"
		switch {
		case d.Bad != "":
			status, bad = "MALFORMED", bad+1
		case d.Stale:
			status, bad = "STALE", bad+1
		}
		rule := d.Rule
		if rule == "" {
			rule = "?"
		}
		fmt.Printf("%s:%d\t%s\tage=%s\t%s\t%s\n",
			relToWd(d.Pos.Filename), d.Pos.Line, rule, directiveAge(m.Root, d.Pos.Filename, d.Pos.Line), status, d.Reason)
	}
	fmt.Fprintf(os.Stderr, "cdivet: %d directive(s), %d problem(s)\n", len(infos), bad)
	if bad > 0 {
		return 1
	}
	return 0
}

// directiveAge asks git how many commits HEAD is ahead of the commit that
// introduced the directive's line. Uncommitted lines age "0"; any git
// failure (no repo, shallow clone) degrades to "-" rather than failing the
// inventory.
func directiveAge(root, file string, line int) string {
	blame, err := exec.Command("git", "-C", root, "blame", "--porcelain",
		"-L", fmt.Sprintf("%d,%d", line, line), "--", file).Output()
	if err != nil {
		return "-"
	}
	fields := strings.Fields(string(blame))
	if len(fields) == 0 {
		return "-"
	}
	sha := fields[0]
	if strings.HasPrefix(sha, "0000000") {
		return "0" // uncommitted
	}
	count, err := exec.Command("git", "-C", root, "rev-list", "--count", sha+"..HEAD").Output()
	if err != nil {
		return "-"
	}
	return strings.TrimSpace(string(count))
}

// relToWd shortens an absolute path to be relative to the working directory
// when possible, keeping output copy-pasteable.
func relToWd(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
