package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMapOrderedResults: results land in input order for every worker
// count, regardless of completion order.
func TestMapOrderedResults(t *testing.T) {
	const n = 100
	for _, workers := range []int{0, 1, 2, 7, 16, 200} {
		got, err := Map(workers, n, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d", workers, i, v)
			}
		}
	}
}

// TestMapSerialParallelIdentical: the parallel path produces byte-identical
// merged output to the serial path.
func TestMapSerialParallelIdentical(t *testing.T) {
	run := func(workers int) string {
		rows, err := Map(workers, 25, func(i int) (string, error) {
			return fmt.Sprintf("row %02d = %d\n", i, i*7%13), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return strings.Join(rows, "")
	}
	serial := run(1)
	for _, workers := range []int{2, 8} {
		if p := run(workers); p != serial {
			t.Fatalf("workers=%d diverged from serial:\n%s\nvs\n%s", workers, p, serial)
		}
	}
}

// TestMapLowestIndexError: whichever goroutine finishes first, the error
// returned is the lowest-index one.
func TestMapLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for trial := 0; trial < 20; trial++ {
		_, err := Map(8, 16, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errLow
			case 12:
				return 0, errHigh
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: err = %v, want %v", trial, err, errLow)
		}
	}
}

// TestMapSerialStopsAtFirstError: workers == 1 recovers the exact serial
// semantics — points after the failing one never run.
func TestMapSerialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	_, err := Map(1, 10, func(i int) (int, error) {
		ran = append(ran, i)
		if i == 4 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 5 {
		t.Fatalf("serial path ran %v after the error", ran)
	}
}

// TestMapBoundsWorkers: concurrent point executions never exceed the
// requested worker count.
func TestMapBoundsWorkers(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	_, err := Map(workers, 50, func(i int) (int, error) {
		cur := inFlight.Add(1)
		mu.Lock()
		if cur > peak.Load() {
			peak.Store(cur)
		}
		mu.Unlock()
		defer inFlight.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

// TestMapPanicPropagates: a panicking point surfaces on the caller's
// goroutine with the point's stack, for both serial and parallel pools.
func TestMapPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if workers > 1 && !strings.Contains(fmt.Sprint(r), "kaboom") {
					t.Fatalf("workers=%d: panic %v lost the point's value", workers, r)
				}
			}()
			_, _ = Map(workers, 8, func(i int) (int, error) {
				if i == 5 {
					panic("kaboom")
				}
				return i, nil
			})
		}()
	}
}

// TestMapEdgeCases: zero points, negative counts, more workers than work.
func TestMapEdgeCases(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return i, nil })
	if err != nil || got != nil {
		t.Fatalf("n=0: %v, %v", got, err)
	}
	if _, err := Map(4, -1, func(i int) (int, error) { return i, nil }); err == nil {
		t.Fatal("negative count accepted")
	}
	one, err := Map(64, 1, func(i int) (int, error) { return 42, nil })
	if err != nil || len(one) != 1 || one[0] != 42 {
		t.Fatalf("n=1: %v, %v", one, err)
	}
}

// TestGo: heterogeneous closures run and join; the lowest-index error wins.
func TestGo(t *testing.T) {
	var a, b int
	if err := Go(0, func() error { a = 1; return nil }, func() error { b = 2; return nil }); err != nil {
		t.Fatal(err)
	}
	if a != 1 || b != 2 {
		t.Fatalf("closures did not run: a=%d b=%d", a, b)
	}
	e1, e2 := errors.New("first"), errors.New("second")
	err := Go(2, func() error { return e1 }, func() error { return e2 })
	if !errors.Is(err, e1) {
		t.Fatalf("err = %v, want %v", err, e1)
	}
}

// TestJobs: the knob normalization contract Map and the -j flag share.
func TestJobs(t *testing.T) {
	if Jobs(3) != 3 {
		t.Fatal("positive values must pass through")
	}
	if Jobs(0) < 1 || Jobs(-2) < 1 {
		t.Fatal("non-positive values must select at least one worker")
	}
}
