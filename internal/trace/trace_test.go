package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/sim"
)

func testSpec() gpu.Spec {
	return gpu.Spec{
		Name:            "test-gpu",
		MemoryBytes:     1 << 30,
		MemoryBandwidth: 1e12,
		PeakFLOPS:       1e12,
		H2DBandwidth:    1e9,
		D2HBandwidth:    1e9,
		DMAEngines:      2,
	}
}

// record runs fn on a traced context and returns the trace.
func record(t *testing.T, fn func(p *sim.Proc, ctx *cuda.Context)) *Trace {
	t.Helper()
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	dev, err := gpu.NewDevice(env, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx := cuda.NewContext(dev, cuda.Config{CallOverhead: -1})
	rec := NewRecorder("test")
	dev.Listen(rec)
	ctx.Interpose(rec)
	rec.Start(env)
	env.Spawn("host", func(p *sim.Proc) { fn(p, ctx) })
	env.Run()
	rec.Stop(env)
	return rec.Trace()
}

func TestRecorderCapturesKernelsCopiesCalls(t *testing.T) {
	tr := record(t, func(p *sim.Proc, ctx *cuda.Context) {
		ptr, _ := ctx.Malloc(p, 1<<20)
		ctx.MemcpyH2D(p, ptr, 1<<20)
		ctx.LaunchSync(p, gpu.Fixed("sgemm", 2*sim.Millisecond), nil)
		ctx.MemcpyD2H(p, ptr, 1<<20)
	})
	if len(tr.Kernels) != 1 {
		t.Fatalf("kernels = %d, want 1", len(tr.Kernels))
	}
	if len(tr.Copies) != 2 {
		t.Fatalf("copies = %d, want 2", len(tr.Copies))
	}
	if len(tr.Calls) != 4 {
		t.Fatalf("calls = %d, want 4 (malloc + 2 memcpy + launch)", len(tr.Calls))
	}
	if tr.Kernels[0].Name != "sgemm" {
		t.Errorf("kernel name = %q", tr.Kernels[0].Name)
	}
	if got := tr.Kernels[0].Duration(); math.Abs(float64(got-2*sim.Millisecond)) > 1e-12 {
		t.Errorf("kernel duration = %v", got)
	}
}

func TestRecorderRespectsStartStop(t *testing.T) {
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	dev, _ := gpu.NewDevice(env, testSpec())
	ctx := cuda.NewContext(dev, cuda.Config{CallOverhead: -1})
	rec := NewRecorder("gated")
	dev.Listen(rec)
	ctx.Interpose(rec)
	env.Spawn("host", func(p *sim.Proc) {
		// Not recording yet: warm-up work must be excluded.
		ctx.LaunchSync(p, gpu.Fixed("warmup", 1*sim.Millisecond), nil)
		rec.Start(p.Env())
		ctx.LaunchSync(p, gpu.Fixed("measured", 1*sim.Millisecond), nil)
		rec.Stop(p.Env())
		ctx.LaunchSync(p, gpu.Fixed("cooldown", 1*sim.Millisecond), nil)
	})
	env.Run()
	tr := rec.Trace()
	if len(tr.Kernels) != 1 || tr.Kernels[0].Name != "measured" {
		t.Fatalf("recorded kernels: %v", tr.Kernels)
	}
	if got := tr.Runtime(); math.Abs(float64(got-1*sim.Millisecond)) > 1e-9 {
		t.Errorf("runtime = %v, want ~1ms", got)
	}
}

func TestKernelDurationAnalyses(t *testing.T) {
	tr := record(t, func(p *sim.Proc, ctx *cuda.Context) {
		for i := 0; i < 3; i++ {
			ctx.LaunchSync(p, gpu.Fixed("big", 10*sim.Millisecond), nil)
		}
		for i := 0; i < 5; i++ {
			ctx.LaunchSync(p, gpu.Fixed("small", 1*sim.Millisecond), nil)
		}
	})
	ds := tr.KernelDurations()
	if len(ds) != 8 {
		t.Fatalf("durations = %d", len(ds))
	}
	byName := tr.KernelDurationsByName()
	if len(byName["big"]) != 3 || len(byName["small"]) != 5 {
		t.Fatalf("byName = %v", byName)
	}
	top := tr.TopKernels(1)
	if len(top) != 1 || top[0].Name != "big" || top[0].Count != 3 {
		t.Fatalf("TopKernels(1) = %+v", top)
	}
	all := tr.TopKernels(0)
	if len(all) != 2 || all[0].Name != "big" || all[1].Name != "small" {
		t.Fatalf("TopKernels(0) = %+v", all)
	}
	if got := tr.KernelTime(); math.Abs(float64(got-35*sim.Millisecond)) > 1e-9 {
		t.Errorf("KernelTime = %v, want 35ms", got)
	}
}

func TestMemcpyAnalyses(t *testing.T) {
	tr := record(t, func(p *sim.Proc, ctx *cuda.Context) {
		ptr, _ := ctx.Malloc(p, 4<<20)
		ctx.MemcpyH2D(p, ptr, 1<<20)
		ctx.MemcpyH2D(p, ptr, 2<<20)
		ctx.MemcpyD2H(p, ptr, 4<<20)
	})
	if got := tr.MemcpySizes(); len(got) != 3 {
		t.Fatalf("all sizes = %v", got)
	}
	h2d := tr.MemcpySizes(gpu.H2D)
	if len(h2d) != 2 || h2d[0] != float64(1<<20) || h2d[1] != float64(2<<20) {
		t.Fatalf("h2d sizes = %v", h2d)
	}
	d2h := tr.MemcpySizes(gpu.D2H)
	if len(d2h) != 1 || d2h[0] != float64(4<<20) {
		t.Fatalf("d2h sizes = %v", d2h)
	}
	if tr.MemcpyTime() <= 0 {
		t.Error("MemcpyTime not positive")
	}
}

func TestRuntimeFractionsSumSensibly(t *testing.T) {
	// Kernel 8ms + copies ~2ms over a 10ms recording: fractions must
	// reflect the split and sum to ~1 with no host-only time.
	tr := record(t, func(p *sim.Proc, ctx *cuda.Context) {
		ptr, _ := ctx.Malloc(p, 2_000_000)
		ctx.MemcpyH2D(p, ptr, 2_000_000) // 2ms at 1 GB/s
		ctx.LaunchSync(p, gpu.Fixed("k", 8*sim.Millisecond), nil)
	})
	kf, mf := tr.KernelFraction(), tr.MemcpyFraction()
	if math.Abs(kf-0.8) > 0.01 {
		t.Errorf("KernelFraction = %v, want ~0.8", kf)
	}
	if math.Abs(mf-0.2) > 0.01 {
		t.Errorf("MemcpyFraction = %v, want ~0.2", mf)
	}
}

func TestFractionsZeroOnEmptyTrace(t *testing.T) {
	tr := &Trace{}
	if tr.KernelFraction() != 0 || tr.MemcpyFraction() != 0 {
		t.Error("fractions on empty trace not zero")
	}
}

func TestCallCountsAndLinkCrossing(t *testing.T) {
	tr := record(t, func(p *sim.Proc, ctx *cuda.Context) {
		a, _ := ctx.Malloc(p, 1000)
		b, _ := ctx.Malloc(p, 1000)
		c, _ := ctx.Malloc(p, 1000)
		// One proxy iteration: 3 transfers + launch + sync = 5 crossing.
		ctx.MemcpyH2D(p, a, 1000)
		ctx.MemcpyH2D(p, b, 1000)
		ctx.LaunchSync(p, gpu.Fixed("sgemm", 1*sim.Millisecond), nil)
		ctx.DeviceSynchronize(p)
		ctx.MemcpyD2H(p, c, 1000)
	})
	if got := tr.LinkCrossingCalls(); got != 5 {
		t.Errorf("LinkCrossingCalls = %d, want 5", got)
	}
	if got := tr.CallCount(cuda.ClassMemory); got != 3 {
		t.Errorf("memory calls = %d, want 3", got)
	}
	if got := tr.CallCount(); got != 8 {
		t.Errorf("total calls = %d, want 8", got)
	}
}

func TestInterleavedThreadsCallTimesCorrect(t *testing.T) {
	// Two host threads with in-flight synchronous calls: each recorded
	// call's duration must match its own transfer, not its neighbour's.
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	dev, _ := gpu.NewDevice(env, testSpec())
	ctx := cuda.NewContext(dev, cuda.Config{CallOverhead: -1})
	rec := NewRecorder("threads")
	dev.Listen(rec)
	ctx.Interpose(rec)
	rec.Start(env)
	for i := 0; i < 2; i++ {
		env.Spawn("thread", func(p *sim.Proc) {
			ptr, _ := ctx.Malloc(p, 1_000_000)
			ctx.MemcpyH2D(p, ptr, 1_000_000) // 1ms each, overlapping engines
		})
	}
	env.Run()
	rec.Stop(env)
	tr := rec.Trace()
	for _, c := range tr.Calls {
		if c.Class != cuda.ClassMemcpyH2D {
			continue
		}
		if got := c.End.Sub(c.Begin); got < 1*sim.Millisecond-sim.Nanosecond {
			t.Errorf("call %s duration %v, want >= 1ms", c.Name, got)
		}
	}
}

func TestStreams(t *testing.T) {
	env := sim.NewEnv()
	t.Cleanup(env.Close)
	dev, _ := gpu.NewDevice(env, testSpec())
	ctx := cuda.NewContext(dev, cuda.Config{CallOverhead: -1})
	rec := NewRecorder("streams")
	dev.Listen(rec)
	rec.Start(env)
	env.Spawn("host", func(p *sim.Proc) {
		s1 := ctx.StreamCreate(p)
		s2 := ctx.StreamCreate(p)
		ctx.Launch(p, gpu.Fixed("a", 1*sim.Millisecond), s1)
		ctx.Launch(p, gpu.Fixed("b", 1*sim.Millisecond), s2)
		ctx.DeviceSynchronize(p)
	})
	env.Run()
	rec.Stop(env)
	if got := rec.Trace().Streams(); got != 2 {
		t.Errorf("Streams = %d, want 2", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := record(t, func(p *sim.Proc, ctx *cuda.Context) {
		ptr, _ := ctx.Malloc(p, 1000)
		ctx.MemcpyH2D(p, ptr, 1000)
		ctx.LaunchSync(p, gpu.Fixed("k", 1*sim.Millisecond), nil)
	})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != tr.Label || len(got.Kernels) != len(tr.Kernels) ||
		len(got.Copies) != len(tr.Copies) || len(got.Calls) != len(tr.Calls) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, tr)
	}
	if got.Kernels[0].Name != "k" {
		t.Errorf("kernel name lost: %q", got.Kernels[0].Name)
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := record(t, func(p *sim.Proc, ctx *cuda.Context) {
		ptr, _ := ctx.Malloc(p, 1<<20)
		ctx.MemcpyH2D(p, ptr, 1<<20)
		ctx.LaunchSync(p, gpu.Fixed("sgemm", 1*sim.Millisecond), nil)
	})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	// 3 API calls + 1 kernel + 1 copy.
	if len(events) != 5 {
		t.Fatalf("events = %d, want 5", len(events))
	}
	kinds := map[string]int{}
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Errorf("event phase = %v, want X", ev["ph"])
		}
		kinds[ev["cat"].(string)]++
		if ev["dur"].(float64) < 0 {
			t.Errorf("negative duration: %+v", ev)
		}
	}
	if kinds["kernel"] != 1 || kinds["memcpy"] != 1 {
		t.Errorf("categories = %v", kinds)
	}
}
