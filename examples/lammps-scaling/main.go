// LAMMPS strong scaling: reproduce the shape of the paper's Figure 2 —
// normalized runtime of the Lennard-Jones benchmark at fixed problem size
// as MPI ranks scale from 1 to 24 on one (simulated) GPU node.
//
//	go run ./examples/lammps-scaling [-steps 40] [-boxes 20,60,120]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	cdi "repro"
)

func main() {
	steps := flag.Int("steps", 40, "MD steps per measurement (paper uses 5000)")
	boxes := flag.String("boxes", "20,60,120", "comma-separated box sizes")
	threads := flag.Bool("threads", false, "also run the OpenMP thread sweep at 8 ranks")
	flag.Parse()

	var boxSizes []int
	for _, f := range strings.Split(*boxes, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatalf("bad box size %q: %v", f, err)
		}
		boxSizes = append(boxSizes, b)
	}

	procs := []int{1, 2, 4, 8, 12, 16, 20, 24}
	fmt.Println("== Figure 2: strong scaling, normalized to 1 process ==")
	fmt.Printf("%-8s", "box")
	for _, p := range procs {
		fmt.Printf("%8s", fmt.Sprintf("p=%d", p))
	}
	fmt.Println()
	for _, box := range boxSizes {
		fmt.Printf("%-8d", box)
		var base cdi.Duration
		for _, p := range procs {
			r, err := cdi.RunLAMMPS(cdi.LAMMPSConfig{BoxSize: box, Procs: p, Steps: *steps})
			if err != nil {
				log.Fatal(err)
			}
			if p == 1 {
				base = r.StepTime
				fmt.Printf("%8.3f", 1.0)
				continue
			}
			fmt.Printf("%8.3f", float64(r.StepTime)/float64(base))
		}
		fmt.Printf("   (atoms: %d)\n", cdi.LAMMPSAtoms(box))
	}

	if *threads {
		fmt.Println("\n== OpenMP thread scaling at 8 ranks (box 120) ==")
		var base cdi.Duration
		for _, t := range []int{1, 2, 4, 6} {
			r, err := cdi.RunLAMMPS(cdi.LAMMPSConfig{BoxSize: 120, Procs: 8, Threads: t, Steps: *steps})
			if err != nil {
				log.Fatal(err)
			}
			if t == 1 {
				base = r.StepTime
			}
			fmt.Printf("threads=%d: step %v  (%.3f× the 1-thread case)\n",
				t, r.StepTime, float64(r.StepTime)/float64(base))
		}
	}
}
