package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestSumMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Sum(xs); got != 10 {
		t.Errorf("Sum = %v", got)
	}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if Sum(nil) != 0 {
		t.Error("Sum(nil) should be 0")
	}
}

func TestVarianceStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := Stddev(xs); !almostEqual(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("Stddev = %v", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of one sample should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Errorf("Min=%v Max=%v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40}, {40, 29},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("Percentile single = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for p=101")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 || s.Sum != 15 {
		t.Errorf("Summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles = %v, %v", s.Q1, s.Q3)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 6}, 2)
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Errorf("Normalize = %v", out)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Normalize by zero did not panic")
		}
	}()
	Normalize([]float64{1}, 0)
}

func TestRelativeChange(t *testing.T) {
	if got := RelativeChange(100, 44.4); !almostEqual(got, -0.556, 1e-9) {
		t.Errorf("RelativeChange = %v", got)
	}
	if !math.IsNaN(RelativeChange(0, 1)) {
		t.Error("RelativeChange with zero base should be NaN")
	}
}

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1.5, 2.5, 2.5, 3}, []float64{0, 1, 2, 3})
	want := []int{1, 1, 3} // 3 == top edge lands in last bin
	for i := range want {
		if h.Counts[i] != want[i] {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram([]float64{-1, 0, 5, 10}, []float64{0, 1, 2})
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under=%d Over=%d", h.Under, h.Over)
	}
	if h.Total() != 1 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.String() == "" {
		t.Error("empty String()")
	}
}

func TestHistogramInvalidEdgesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-increasing edges")
		}
	}()
	NewHistogram(nil, []float64{1, 1})
}

func TestLinearEdges(t *testing.T) {
	e := LinearEdges(0, 10, 5)
	if len(e) != 6 || e[0] != 0 || e[5] != 10 || e[2] != 4 {
		t.Errorf("LinearEdges = %v", e)
	}
}

func TestLogEdges(t *testing.T) {
	e := LogEdges(1, 1000, 3)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if !almostEqual(e[i], want[i], 1e-9) {
			t.Errorf("LogEdges = %v, want %v", e, want)
		}
	}
}

func TestBinByThresholds(t *testing.T) {
	// Mirrors Table III: MiB thresholds 1, 16, 256, 4096 plus overflow.
	xs := []float64{0.5, 1, 2, 16, 100, 256, 1000, 5000}
	counts := BinByThresholds(xs, []float64{1, 16, 256, 4096})
	want := []int{2, 2, 2, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func TestBinByThresholdsPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unsorted thresholds")
		}
	}()
	BinByThresholds(nil, []float64{2, 1})
}

func TestKDEIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	grid := LinearEdges(-6, 6, 600)
	dens := KDE(xs, grid, 0)
	integral := 0.0
	for i := 1; i < len(grid); i++ {
		integral += (dens[i] + dens[i-1]) / 2 * (grid[i] - grid[i-1])
	}
	if !almostEqual(integral, 1, 0.02) {
		t.Errorf("KDE integral = %v, want ~1", integral)
	}
}

func TestKDEPeakNearMode(t *testing.T) {
	xs := []float64{5, 5.1, 4.9, 5.05, 4.95, 5}
	grid := LinearEdges(0, 10, 100)
	dens := KDE(xs, grid, 0)
	best := 0
	for i := range dens {
		if dens[i] > dens[best] {
			best = i
		}
	}
	if math.Abs(grid[best]-5) > 0.3 {
		t.Errorf("KDE peak at %v, want near 5", grid[best])
	}
}

func TestKDEEmptyInput(t *testing.T) {
	dens := KDE(nil, []float64{0, 1}, 0)
	if dens[0] != 0 || dens[1] != 0 {
		t.Errorf("KDE(nil) = %v", dens)
	}
}

func TestViolinLogScale(t *testing.T) {
	// Durations spanning orders of magnitude.
	xs := []float64{1e-6, 2e-6, 1e-5, 1e-4, 1e-4, 2e-4}
	v := NewViolin(xs, 50, true)
	if v.Summary.N != 6 {
		t.Errorf("N = %d", v.Summary.N)
	}
	if len(v.Grid) != 50 || len(v.Density) != 50 {
		t.Errorf("grid/density lengths %d/%d", len(v.Grid), len(v.Density))
	}
	if !v.LogScale {
		t.Error("LogScale not set")
	}
	if v.Render(30) == "" {
		t.Error("empty Render")
	}
}

func TestViolinDegenerateSpike(t *testing.T) {
	v := NewViolin([]float64{3, 3, 3}, 50, false)
	if len(v.Grid) != 1 || v.Density[0] != 1 {
		t.Errorf("degenerate violin = %+v", v)
	}
}

func TestViolinEmpty(t *testing.T) {
	v := NewViolin(nil, 50, false)
	if len(v.Grid) != 0 {
		t.Errorf("empty violin has grid %v", v.Grid)
	}
	if v.Render(10) != "(empty)\n" {
		t.Errorf("Render = %q", v.Render(10))
	}
}

func TestInterpolatorLinear(t *testing.T) {
	in, err := NewInterpolator([]float64{0, 10}, []float64{0, 100}, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.At(5); got != 50 {
		t.Errorf("At(5) = %v", got)
	}
	if got := in.At(-1); got != 0 {
		t.Errorf("At(-1) = %v (want clamp)", got)
	}
	if got := in.At(20); got != 100 {
		t.Errorf("At(20) = %v (want clamp)", got)
	}
}

func TestInterpolatorSortsKnots(t *testing.T) {
	in, err := NewInterpolator([]float64{10, 0}, []float64{100, 0}, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.At(5); got != 50 {
		t.Errorf("At(5) = %v", got)
	}
	xs, ys := in.Knots()
	if xs[0] != 0 || ys[0] != 0 || xs[1] != 10 || ys[1] != 100 {
		t.Errorf("Knots = %v %v", xs, ys)
	}
}

func TestInterpolatorLogX(t *testing.T) {
	// y linear in log(x): y = log10(x)
	in, err := NewInterpolator([]float64{1, 100}, []float64{0, 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.At(10); !almostEqual(got, 1, 1e-12) {
		t.Errorf("At(10) = %v, want 1", got)
	}
	if got := in.At(0); got != 0 {
		t.Errorf("At(0) = %v (want low clamp)", got)
	}
}

func TestInterpolatorErrors(t *testing.T) {
	if _, err := NewInterpolator([]float64{1}, []float64{1, 2}, false); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewInterpolator(nil, nil, false); err == nil {
		t.Error("empty knots accepted")
	}
	if _, err := NewInterpolator([]float64{1, 1}, []float64{1, 2}, false); err == nil {
		t.Error("duplicate knots accepted")
	}
	if _, err := NewInterpolator([]float64{-1, 1}, []float64{1, 2}, true); err == nil {
		t.Error("non-positive x accepted for logX")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []float64, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		a, b := float64(p1%101), float64(p2%101)
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(raw, a), Percentile(raw, b)
		return pa <= pb && pa >= Min(raw) && pb <= Max(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram bins plus under/over account for every sample.
func TestPropertyHistogramConservation(t *testing.T) {
	f := func(raw []float64) bool {
		clean := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		h := NewHistogram(clean, []float64{-100, -10, 0, 10, 100})
		return h.Total()+h.Under+h.Over == len(clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: BinByThresholds conserves counts.
func TestPropertyBinConservation(t *testing.T) {
	f := func(raw []float64) bool {
		clean := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) {
				clean = append(clean, x)
			}
		}
		counts := BinByThresholds(clean, []float64{1, 16, 256, 4096})
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == len(clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: interpolation at a knot returns the knot value; between knots
// stays within the [min, max] of the two bracketing values.
func TestPropertyInterpolatorWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 2
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) + rng.Float64()*0.5
			ys[i] = rng.Float64() * 100
		}
		in, err := NewInterpolator(xs, ys, false)
		if err != nil {
			return false
		}
		for i := range xs {
			if !almostEqual(in.At(xs[i]), ys[i], 1e-9) {
				return false
			}
		}
		for k := 0; k < 20; k++ {
			x := xs[0] + rng.Float64()*(xs[n-1]-xs[0])
			y := in.At(x)
			if y < Min(ys)-1e-9 || y > Max(ys)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{0, 0, 0, true},
		{1, 1 + 1e-12, 1e-9, true},             // relative agreement at scale 1
		{1e12, 1e12 * (1 + 1e-12), 1e-9, true}, // relative agreement at large scale
		{1e12, 1.01e12, 1e-9, false},
		{0, 1e-12, 1e-9, true}, // absolute tolerance near zero
		{0, 1e-3, 1e-9, false},
		{math.NaN(), math.NaN(), 1, false},
		{math.NaN(), 0, 1, false},
		{math.Inf(1), math.Inf(1), 1e-9, true},
		{math.Inf(1), math.Inf(-1), 1e-9, false},
		{math.Inf(1), 1e300, 1e-9, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEqual(%g, %g, %g) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestApproxEqualNegativeTolerancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative tolerance")
		}
	}()
	ApproxEqual(1, 1, -1e-9)
}
