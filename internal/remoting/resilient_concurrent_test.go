package remoting

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/sim"
)

// streamResult is one client stream's outcome: when each of its rounds
// completed on the sim clock, and the first error it hit.
type streamResult struct {
	rounds []sim.Time
	err    error
}

// runConcurrentStreams drives procs client processes against one shared
// Resilient, each holding its own device buffer of bufBytes and running
// rounds of free/re-malloc + H2D + kernel + D2H — the sustained
// interleaved-call shape a serving batcher produces, not one-shot calls.
// Request ids from different streams interleave arbitrarily at the
// endpoint, which is exactly what the dedup table must survive.
func runConcurrentStreams(t *testing.T, rc ResilientConfig, procs, rounds int, bufBytes int64) ([]streamResult, Stats) {
	t.Helper()
	env := sim.NewEnv()
	defer env.Close()
	r, err := NewResilient(env, gpu.A100(), rc)
	if err != nil {
		t.Fatal(err)
	}
	kernel := gpu.MatMul(64)
	results := make([]streamResult, procs)
	for i := 0; i < procs; i++ {
		i := i
		env.Spawn("client", func(p *sim.Proc) {
			res := &results[i]
			// Stagger starts so streams are genuinely interleaved rather
			// than lock-stepped.
			p.Sleep(sim.Duration(i) * 100 * sim.Microsecond)
			buf, err := r.Malloc(p, bufBytes)
			if err != nil {
				res.err = err
				return
			}
			for round := 0; round < rounds; round++ {
				if err := r.MemcpyH2D(p, buf, 1<<20); err != nil {
					res.err = err
					return
				}
				if err := r.LaunchSync(p, kernel); err != nil {
					res.err = err
					return
				}
				if err := r.MemcpyD2H(p, buf, 1<<20); err != nil {
					res.err = err
					return
				}
				// Churn the allocation every round: a lost Free or a
				// double-executed Malloc retry would wedge the tight
				// memory budget below.
				if err := r.Free(p, buf); err != nil {
					res.err = err
					return
				}
				buf, err = r.Malloc(p, bufBytes)
				if err != nil {
					res.err = err
					return
				}
				res.rounds = append(res.rounds, p.Now())
			}
			if err := r.Free(p, buf); err != nil {
				res.err = err
			}
		})
	}
	env.Run()
	return results, r.Stats()
}

// TestResilientConcurrentStreamsDedupUnderLoss proves request-id dedup
// holds when many outstanding calls interleave: four streams together
// allocate the device's entire memory, and every round frees and
// re-allocates each stream's quarter. Under 30% message loss every
// Malloc and Free retries routinely; if a retried Malloc whose first
// attempt actually executed were re-executed instead of replayed from
// the dedup table, the duplicate allocation would leak a quarter of
// device memory and the next round's Malloc would fail with
// ErrOutOfMemory. Completing all rounds on a zero-headroom budget is
// therefore a behavioral proof of exactly-once semantics.
func TestResilientConcurrentStreamsDedupUnderLoss(t *testing.T) {
	const procs, rounds = 4, 8
	bufBytes := gpu.A100().MemoryBytes / procs
	// Generous retries and an effectively disabled breaker pin the run to
	// the primary endpoint: every lost response is resolved by dedup
	// replay on the same server, so the exact-fill budget is meaningful.
	// (Failover behavior under concurrency has its own test below.)
	rc := ResilientConfig{
		Config:   Config{Path: mustPathForSlack(t, 20*sim.Microsecond), Seed: 11},
		Faults:   faults.Config{Seed: 11, DropProbability: 0.3},
		Policy:   faults.Policy{CallTimeout: 200 * sim.Millisecond, MaxRetries: 25, BreakerThreshold: 1 << 30},
		Standbys: 2,
	}
	results, st := runConcurrentStreams(t, rc, procs, rounds, bufBytes)
	for i, res := range results {
		if res.err != nil {
			t.Fatalf("stream %d: %v", i, res.err)
		}
		if len(res.rounds) != rounds {
			t.Fatalf("stream %d completed %d of %d rounds", i, len(res.rounds), rounds)
		}
	}
	if st.Retries == 0 {
		t.Error("30% loss produced no retries; faults not exercised")
	}
	// 4 streams × (1 + 8×5 + 1) calls each, counted once per logical call
	// no matter how many attempts each took: the counter itself checks
	// that interleaved retries were not double-counted as new calls.
	wantCalls := int64(procs * (1 + rounds*5 + 1))
	if st.Calls != wantCalls {
		t.Errorf("Calls = %d, want %d logical calls", st.Calls, wantCalls)
	}
}

// TestResilientConcurrentStreamsDeterministic replays the concurrent
// workload twice and demands bit-identical per-stream completion times
// and stats: resilience bookkeeping must stay deterministic even with
// many outstanding calls in flight.
func TestResilientConcurrentStreamsDeterministic(t *testing.T) {
	rc := ResilientConfig{
		Config:   Config{Path: mustPathForSlack(t, 50*sim.Microsecond), NoiseFraction: 0.2, Seed: 5},
		Faults:   faults.Config{Seed: 5, DropProbability: 0.25},
		Policy:   faults.Policy{CallTimeout: 200 * sim.Millisecond, MaxRetries: 25, BreakerThreshold: 1 << 30},
		Standbys: 2,
	}
	r1, s1 := runConcurrentStreams(t, rc, 3, 6, 1<<30)
	r2, s2 := runConcurrentStreams(t, rc, 3, 6, 1<<30)
	if s1 != s2 {
		t.Fatalf("stats differ across replays: %+v vs %+v", s1, s2)
	}
	for i := range r1 {
		if r1[i].err != nil || r2[i].err != nil {
			t.Fatalf("stream %d errored: %v / %v", i, r1[i].err, r2[i].err)
		}
		if len(r1[i].rounds) != len(r2[i].rounds) {
			t.Fatalf("stream %d round counts differ: %d vs %d", i, len(r1[i].rounds), len(r2[i].rounds))
		}
		for j := range r1[i].rounds {
			if r1[i].rounds[j] != r2[i].rounds[j] {
				t.Fatalf("stream %d round %d: %v vs %v", i, j, r1[i].rounds[j], r2[i].rounds[j])
			}
		}
	}
}

// TestResilientConcurrentStreamsBreaker drives the streams into a server
// that stalls for far longer than the call timeout allows: consecutive
// timeouts across the interleaved calls must trip the breaker and fail
// the whole pipeline over (eventually to the node-local device), and
// every stream must still finish.
func TestResilientConcurrentStreamsBreaker(t *testing.T) {
	rc := ResilientConfig{
		Config: Config{Path: mustPathForSlack(t, 20*sim.Microsecond), Seed: 17},
		Faults: faults.Config{
			Seed:       17,
			StallEvery: 1 * sim.Millisecond,
			StallFor:   10 * sim.Second,
		},
		Policy: faults.Policy{
			CallTimeout:      200 * sim.Millisecond,
			MaxRetries:       1,
			BreakerThreshold: 2,
		},
		Standbys: 1,
	}
	results, st := runConcurrentStreams(t, rc, 3, 4, 1<<28)
	for i, res := range results {
		if res.err != nil {
			t.Fatalf("stream %d: %v", i, res.err)
		}
	}
	if st.Timeouts == 0 {
		t.Error("10s stalls against a 200ms timeout produced no timeouts")
	}
	if st.BreakerTrips == 0 {
		t.Error("consecutive timeouts never tripped the breaker")
	}
	if st.Failovers == 0 {
		t.Error("breaker trips never drove a failover")
	}
}
