// Corpus for the seededrand analyzer: global math/rand state.
// Lines marked "// want" must produce exactly one finding.
package corpus

import "math/rand"

func globalState() int {
	x := rand.Intn(10)                 // want
	f := rand.Float64()                // want
	rand.Shuffle(3, func(i, j int) {}) // want
	return x + int(f)
}

func suppressedGlobal() int {
	//cdivet:allow seededrand corpus: demonstrates a justified suppression
	return rand.Int()
}

// explicitStream is the sanctioned idiom: every random draw traceable to a
// seed.
func explicitStream(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
