package remoting

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/cuda"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/sim"
)

// Stream salts for seed-derived substreams (see faults.Substream; the
// faults package reserves everything below 0x10000).
const (
	// saltNoise seeds network-traversal noise. Remote and Resilient share
	// it so a zero-fault Resilient replays a Remote run bit for bit.
	saltNoise uint64 = 0x10000
	// saltInjectedArm seeds the controlled-injection arm of Compare.
	saltInjectedArm uint64 = 0x10001
	// saltRetryJitter seeds the resilient transport's backoff jitter.
	saltRetryJitter uint64 = 0x10002
)

// ResilientConfig shapes the fault-tolerant transport: the base remoting
// config plus a fault schedule, a retry/failover policy, and the standby
// topology.
type ResilientConfig struct {
	Config
	// Faults is the deterministic fault schedule the transport runs under.
	Faults faults.Config
	// Policy is the retry/failover discipline; zero fields take defaults.
	Policy faults.Policy
	// Standbys is the number of standby GPU servers provisioned for
	// failover (0 = none).
	Standbys int
	// DisableLocalFallback turns off graceful degradation to node-local
	// execution; with it set, exhausting every remote is a hard error.
	DisableLocalFallback bool
}

// Stats aggregates what the resilience machinery did during a run.
type Stats struct {
	// Calls counts logical API calls issued through the transport.
	Calls int64
	// Retries, Timeouts, Failovers and BreakerTrips count policy actions;
	// a trip opens the breaker but no longer implies a failover (see the
	// half-open counters below).
	Retries      int64
	Timeouts     int64
	Failovers    int64
	BreakerTrips int64
	// HalfOpenProbes counts the single attempts let through after a
	// breaker cooldown; HalfOpenRecoveries counts probes that succeeded
	// and closed the breaker on the same server (no failover paid).
	HalfOpenProbes     int64
	HalfOpenRecoveries int64
	// Migrations counts policy-triggered drains that moved the handle
	// table to a peer (crash-triggered failovers count under Failovers);
	// Readmissions counts drained or dead servers returned to duty.
	Migrations   int64
	Readmissions int64
	// ReuploadBytes is the device state replayed onto a new server (or the
	// local device) as DMA transfers during failover.
	ReuploadBytes int64
	// Degraded records that every remote died and the transport fell back
	// to node-local execution.
	Degraded bool
}

// execResult is what a server-side call body produces.
type execResult struct {
	ptr gpu.Ptr
	err error
}

// endpoint is one GPU server (or the node-local fallback device).
type endpoint struct {
	dev *gpu.Device
	ctx *cuda.Context
	srv *faults.Server // nil for the node-local device
	// done replays completed non-idempotent requests by id: a retried
	// malloc/free whose response was lost must not execute twice.
	done map[uint64]execResult
	// phys maps the transport's virtual handles to this server's pointers.
	phys map[gpu.Ptr]gpu.Ptr
	dead bool
	// drained marks a server taken out of rotation by policy (the pool
	// control plane's Drain); unlike dead it is reversible via Readmit.
	drained bool
}

// Resilient is a fault-tolerant remoting transport: per-call deadlines on
// sim.Signal.WaitTimeout, bounded retries with deterministic exponential
// backoff and seeded jitter, idempotence-aware replay (memcpy/launch
// re-execute; malloc/free deduplicate by request id), a consecutive-
// timeout circuit breaker, failover to standby GPU servers with state
// re-upload modeled as DMA replays, and graceful degradation to
// node-local execution when no remote survives.
//
// Memory handles returned by Malloc are virtual: they survive failover,
// being re-bound to the new server's allocations during state re-upload.
type Resilient struct {
	env  *sim.Env
	cfg  ResilientConfig
	pol  faults.Policy
	inj  *faults.Injector
	spec gpu.Spec // endpoint device spec, kept so Readmit can rebuild one

	eps    []*endpoint // 0 = primary, 1.. = standbys
	active int
	local  *endpoint // node-local fallback (nil when disabled)

	noise  *rand.Rand
	jitter *rand.Rand

	nextHandle gpu.Ptr
	table      *HandleTable // live virtual handles in allocation order
	nextReq    uint64

	consecTimeouts int
	degraded       bool
	exhausted      error // set once no executor remains; fails calls fast
	stats          Stats
}

// NewResilient builds the transport with a primary server, cfg.Standbys
// standby servers, and (unless disabled) a node-local fallback device, all
// of the given spec.
func NewResilient(env *sim.Env, spec gpu.Spec, cfg ResilientConfig) (*Resilient, error) {
	if err := cfg.Path.Validate(); err != nil {
		return nil, err
	}
	if cfg.NoiseFraction < 0 || cfg.NoiseFraction >= 1 {
		return nil, fmt.Errorf("remoting: noise fraction %g outside [0, 1)", cfg.NoiseFraction)
	}
	if cfg.Standbys < 0 {
		return nil, fmt.Errorf("remoting: negative standby count %d", cfg.Standbys)
	}
	if cfg.ServerOverhead == 0 {
		cfg.ServerOverhead = 2 * sim.Microsecond
	}
	inj, err := faults.NewInjector(cfg.Faults)
	if err != nil {
		return nil, err
	}
	r := &Resilient{
		env:    env,
		cfg:    cfg,
		pol:    cfg.Policy.WithDefaults(),
		inj:    inj,
		spec:   spec,
		noise:  faults.Substream(cfg.Seed, saltNoise),
		jitter: faults.Substream(cfg.Seed, saltRetryJitter),
		table:  NewHandleTable(),
	}
	for i := 0; i <= cfg.Standbys; i++ {
		dev, err := gpu.NewDevice(env, spec)
		if err != nil {
			return nil, err
		}
		r.eps = append(r.eps, &endpoint{
			dev:  dev,
			ctx:  cuda.NewContext(dev, cuda.Config{}),
			srv:  inj.Server(i),
			done: map[uint64]execResult{},
			phys: map[gpu.Ptr]gpu.Ptr{},
		})
	}
	if !cfg.DisableLocalFallback {
		dev, err := gpu.NewDevice(env, spec)
		if err != nil {
			return nil, err
		}
		r.local = &endpoint{
			dev:  dev,
			ctx:  cuda.NewContext(dev, cuda.Config{}),
			phys: map[gpu.Ptr]gpu.Ptr{},
		}
	}
	return r, nil
}

// Stats returns a snapshot of the resilience counters.
func (r *Resilient) Stats() Stats { return r.stats }

// Degraded reports whether the transport has fallen back to node-local
// execution.
func (r *Resilient) Degraded() bool { return r.degraded }

// ActiveServer returns the index of the GPU server currently serving
// calls (meaningless once Degraded).
func (r *Resilient) ActiveServer() int { return r.active }

// Servers returns how many GPU servers the transport was provisioned
// with (primary plus standbys).
func (r *Resilient) Servers() int { return len(r.eps) }

// Live reports whether server i is currently in rotation (neither dead
// nor drained).
func (r *Resilient) Live(i int) bool {
	return i >= 0 && i < len(r.eps) && !r.eps[i].dead && !r.eps[i].drained
}

// Injector exposes the transport's fault injector, so a control plane
// monitoring the same pool consults the identical schedule.
func (r *Resilient) Injector() *faults.Injector { return r.inj }

// transfer returns one network crossing's duration for n payload bytes,
// applying the degraded-bandwidth factor to the serialization term and
// the seeded noise multiplier to the whole crossing.
func (r *Resilient) transfer(n int64, bwFactor float64) sim.Duration {
	lat := r.cfg.Path.Latency()
	d := r.cfg.Path.TransferTime(n)
	if bwFactor > 0 && bwFactor < 1 {
		d = lat + sim.Duration(float64(d-lat)/bwFactor)
	}
	if r.cfg.NoiseFraction > 0 {
		d = sim.Duration(float64(d) * (1 + r.cfg.NoiseFraction*(2*r.noise.Float64()-1)))
	}
	return d
}

// deadline returns the per-attempt deadline for a call shape: the nominal
// round trip (with worst-case noise) plus the policy's timeout allowance.
func (r *Resilient) deadline(reqBytes, respBytes int64) sim.Duration {
	rtt := r.cfg.Path.TransferTime(reqBytes) + r.cfg.Path.TransferTime(respBytes)
	if r.cfg.ServerOverhead > 0 {
		rtt += r.cfg.ServerOverhead
	}
	return sim.Duration(float64(rtt)*(1+r.cfg.NoiseFraction)) + r.pol.CallTimeout
}

// callSpec describes one API call to the retry machinery.
type callSpec struct {
	name                string
	reqBytes, respBytes int64
	// dedup marks calls that must not execute twice (malloc/free): a
	// retry replays the recorded result instead of re-running exec.
	dedup bool
	exec  func(sp *sim.Proc, ep *endpoint) execResult
}

// call drives one API call through deadlines, retries, the breaker, and
// failover. The returned error is a transport-level failure (no executor
// left); API-level errors ride in execResult.err.
func (r *Resilient) call(p *sim.Proc, cs callSpec) (execResult, error) {
	if r.exhausted != nil {
		return execResult{}, r.exhausted // breaker open: fail fast
	}
	r.stats.Calls++
	if r.degraded {
		return cs.exec(p, r.local), nil
	}
	reqID := r.nextReq
	r.nextReq++
	retries := 0
	for {
		res, ok := r.attempt(p, r.eps[r.active], reqID, cs)
		if ok {
			r.consecTimeouts = 0
			return res, nil
		}
		r.stats.Timeouts++
		r.consecTimeouts++
		tripped := r.pol.BreakerThreshold > 0 && r.consecTimeouts >= r.pol.BreakerThreshold
		if tripped {
			// Breaker open: cool down, then let a single half-open probe
			// through. A success means the fault window ended during the
			// cooldown — close the breaker on the same server and pay no
			// failover; a failure re-opens it for good.
			r.stats.BreakerTrips++
			r.consecTimeouts = 0
			if r.pol.BreakerCooldown > 0 {
				p.Sleep(r.pol.BreakerCooldown)
			}
			r.stats.HalfOpenProbes++
			if res, ok = r.attempt(p, r.eps[r.active], reqID, cs); ok {
				r.stats.HalfOpenRecoveries++
				return res, nil
			}
			r.stats.Timeouts++
		}
		if tripped || retries >= r.pol.MaxRetries {
			if err := r.failover(p); err != nil {
				r.exhausted = err
				return execResult{}, err
			}
			if r.degraded {
				return cs.exec(p, r.local), nil
			}
			retries = 0
			continue
		}
		retries++
		r.stats.Retries++
		p.Sleep(r.pol.Backoff(retries, r.jitter))
	}
}

// attempt plays one request/response exchange: the request crosses the
// fabric (unless the link is down or the packet is lost), a server
// process executes the body after any stall, and the response crosses
// back. The host waits on a per-attempt signal with a deadline — the
// sim.Signal.WaitTimeout the whole transport is built on. A response that
// arrives after the deadline fires into an abandoned signal, which is a
// no-op; the dedup cache keeps such orphaned executions idempotent.
func (r *Resilient) attempt(p *sim.Proc, ep *endpoint, reqID uint64, cs callSpec) (execResult, bool) {
	now := p.Now()
	lost := false
	if down, _ := r.inj.LinkDown(now); down {
		lost = true
	}
	if !lost && r.inj.DropsMessage() {
		lost = true // request lost in transit
	}
	done := sim.NewSignal(r.env)
	var res execResult
	if !lost {
		reqTransfer := r.transfer(cs.reqBytes, r.inj.BandwidthFactor(now))
		// Server bodies run in the endpoint device's event domain: each
		// GPU server's request traffic shares that server's queue.
		ep.dev.Shard().Spawn(fmt.Sprintf("rsrv-%s-%d", cs.name, reqID), func(sp *sim.Proc) {
			sp.Sleep(reqTransfer)
			if ep.srv != nil {
				switch state, until := ep.srv.StateAt(sp.Now()); state {
				case faults.Crashed:
					ep.dev.MarkLost() // device-lost error surface
					return            // no response, ever
				case faults.Stalled:
					sp.Sleep(until.Sub(sp.Now()))
				}
			}
			if r.cfg.ServerOverhead > 0 {
				sp.Sleep(r.cfg.ServerOverhead)
			}
			out, seen := ep.done[reqID]
			if !seen {
				out = cs.exec(sp, ep)
				if cs.dedup {
					ep.done[reqID] = out
				}
			}
			respLost := false
			if down, _ := r.inj.LinkDown(sp.Now()); down {
				respLost = true
			}
			if !respLost && r.inj.DropsMessage() {
				respLost = true
			}
			sp.Sleep(r.transfer(cs.respBytes, r.inj.BandwidthFactor(sp.Now())))
			if respLost {
				return
			}
			res = out
			done.Fire()
		})
	}
	if err := done.WaitTimeout(p, r.deadline(cs.reqBytes, cs.respBytes)); err != nil {
		return execResult{}, false
	}
	return res, true
}

// failover abandons the active server (marking its device lost), picks
// the next live standby — or degrades to node-local execution — and
// replays all live device state onto the new executor: a control-plane
// re-attach penalty plus one malloc + DMA H2D per allocation.
func (r *Resilient) failover(p *sim.Proc) error {
	r.stats.Failovers++
	r.consecTimeouts = 0
	cur := r.eps[r.active]
	cur.dead = true
	cur.dev.MarkLost()

	next := r.nextLive(r.active)
	if next >= 0 {
		r.active = next
		return r.migrate(p, r.eps[next], true)
	}
	if r.local == nil {
		return fmt.Errorf("remoting: no standby left after %d failovers: %w",
			r.stats.Failovers, cuda.ErrDeviceLost)
	}
	r.degraded = true
	r.stats.Degraded = true
	return r.migrate(p, r.local, false)
}

// nextLive returns the index of the next endpoint in rotation after
// `from` (circular, so a readmitted low-index server is reachable again),
// or -1 when none is live.
func (r *Resilient) nextLive(from int) int {
	n := len(r.eps)
	for k := 1; k <= n; k++ {
		i := (from + k) % n
		if i != from && !r.eps[i].dead && !r.eps[i].drained {
			return i
		}
	}
	return -1
}

// Drain takes a server out of rotation by policy rather than crash — the
// pool control plane's reaction to a suspect heartbeat. If the server is
// the active executor, its handle table is live-migrated to the next live
// peer over the same DMA-replay path failover uses; the executor switch
// happens after the migration completes, so calls issued meanwhile still
// target the old server (and failover reactively if it is truly gone).
// Unlike failover the drained server's device is not marked lost: Readmit
// can return it to duty. Draining a standby only removes it from the
// failover candidate set; draining the last live server is refused.
func (r *Resilient) Drain(p *sim.Proc, server int) error {
	if server < 0 || server >= len(r.eps) {
		return fmt.Errorf("remoting: drain of unknown server %d", server)
	}
	if r.degraded || r.exhausted != nil {
		return fmt.Errorf("remoting: drain with no remote pool live")
	}
	ep := r.eps[server]
	if ep.dead || ep.drained {
		return nil
	}
	if server != r.active {
		ep.drained = true
		return nil
	}
	next := r.nextLive(server)
	if next < 0 {
		return fmt.Errorf("remoting: no live peer to drain server %d onto", server)
	}
	ep.drained = true
	r.stats.Migrations++
	if err := r.migrate(p, r.eps[next], true); err != nil {
		return err
	}
	if r.active == server {
		// The breaker may have failed the caller over on its own while the
		// migration was in flight; only switch if it has not.
		r.active = next
	}
	return nil
}

// Readmit returns a previously drained or dead server to standby duty as
// a blank replacement — a rebooted host or a fresh part swapped into the
// chassis: a new device and context, an empty handle table, the same
// fault-schedule identity. The transport's virtual handles keep the host
// the source of truth, so the next migration onto it re-uploads whatever
// it needs. Once the transport is exhausted or degraded to node-local,
// readmission is refused (the run has already failed over for good).
func (r *Resilient) Readmit(server int) error {
	if server < 0 || server >= len(r.eps) {
		return fmt.Errorf("remoting: readmit of unknown server %d", server)
	}
	if r.exhausted != nil || r.degraded {
		return fmt.Errorf("remoting: readmit after the pool was exhausted")
	}
	ep := r.eps[server]
	if !ep.dead && !ep.drained {
		return nil
	}
	if server == r.active {
		return fmt.Errorf("remoting: server %d is active and cannot be readmitted", server)
	}
	dev, err := gpu.NewDevice(r.env, r.spec)
	if err != nil {
		return err
	}
	ep.dev = dev
	ep.ctx = cuda.NewContext(dev, cuda.Config{})
	clear(ep.done)
	clear(ep.phys)
	ep.dead, ep.drained = false, false
	r.stats.Readmissions++
	return nil
}

// migrate re-attaches on ep and re-uploads every live allocation as a DMA
// replay. Remote targets additionally pay the network transfer for the
// payload; the node-local fallback only pays the PCIe copy.
func (r *Resilient) migrate(p *sim.Proc, ep *endpoint, overNetwork bool) error {
	if r.pol.FailoverPenalty > 0 {
		p.Sleep(r.pol.FailoverPenalty)
	}
	return r.table.Each(func(h gpu.Ptr, size int64) error {
		ptr, err := ep.ctx.Malloc(p, size)
		if err != nil {
			return fmt.Errorf("remoting: state re-upload: %w", err)
		}
		ep.phys[h] = ptr
		if overNetwork {
			p.Sleep(r.transfer(size, 1))
		}
		if err := ep.ctx.MemcpyH2D(p, ptr, size); err != nil {
			return fmt.Errorf("remoting: state re-upload: %w", err)
		}
		r.stats.ReuploadBytes += size
		return nil
	})
}

// Malloc forwards cudaMalloc and returns a failover-stable virtual handle.
func (r *Resilient) Malloc(p *sim.Proc, n int64) (gpu.Ptr, error) {
	r.nextHandle++
	h := r.nextHandle
	res, err := r.call(p, callSpec{
		name: "malloc", reqBytes: 64, respBytes: 64, dedup: true,
		exec: func(sp *sim.Proc, ep *endpoint) execResult {
			ptr, err := ep.ctx.Malloc(sp, n)
			if err == nil {
				ep.phys[h] = ptr
			}
			return execResult{ptr: ptr, err: err}
		},
	})
	if err != nil {
		return 0, err
	}
	if res.err != nil {
		return 0, res.err
	}
	r.table.Add(h, n)
	return h, nil
}

// Free forwards cudaFree. A retried free whose first execution succeeded
// is treated as success (idempotent by request-id dedup).
func (r *Resilient) Free(p *sim.Proc, h gpu.Ptr) error {
	res, err := r.call(p, callSpec{
		name: "free", reqBytes: 64, respBytes: 64, dedup: true,
		exec: func(sp *sim.Proc, ep *endpoint) execResult {
			ptr, ok := ep.phys[h]
			if !ok {
				return execResult{err: fmt.Errorf("%w: unknown handle %d", cuda.ErrInvalidValue, h)}
			}
			delete(ep.phys, h)
			return execResult{err: ep.ctx.Free(sp, ptr)}
		},
	})
	if err != nil {
		return err
	}
	if res.err != nil {
		return res.err
	}
	r.table.Remove(h)
	return nil
}

// MemcpyH2D forwards a host-to-device copy; the payload rides the
// request. Copies are idempotent and simply re-execute on retry.
func (r *Resilient) MemcpyH2D(p *sim.Proc, h gpu.Ptr, n int64) error {
	res, err := r.call(p, callSpec{
		name: "h2d", reqBytes: 64 + n, respBytes: 64,
		exec: func(sp *sim.Proc, ep *endpoint) execResult {
			return execResult{err: ep.ctx.MemcpyH2D(sp, ep.phys[h], n)}
		},
	})
	if err != nil {
		return err
	}
	return res.err
}

// MemcpyD2H forwards a device-to-host copy; the payload rides the
// response.
func (r *Resilient) MemcpyD2H(p *sim.Proc, h gpu.Ptr, n int64) error {
	res, err := r.call(p, callSpec{
		name: "d2h", reqBytes: 64, respBytes: 64 + n,
		exec: func(sp *sim.Proc, ep *endpoint) execResult {
			return execResult{err: ep.ctx.MemcpyD2H(sp, ep.phys[h], n)}
		},
	})
	if err != nil {
		return err
	}
	return res.err
}

// LaunchSync forwards a blocking kernel launch (idempotent: re-executes
// on retry).
func (r *Resilient) LaunchSync(p *sim.Proc, k gpu.Kernel) error {
	_, err := r.call(p, callSpec{
		name: "launch", reqBytes: 256, respBytes: 64,
		exec: func(sp *sim.Proc, ep *endpoint) execResult {
			ep.ctx.LaunchSync(sp, k, nil)
			return execResult{}
		},
	})
	return err
}

// DeviceSynchronize forwards cudaDeviceSynchronize.
func (r *Resilient) DeviceSynchronize(p *sim.Proc) error {
	_, err := r.call(p, callSpec{
		name: "sync", reqBytes: 64, respBytes: 64,
		exec: func(sp *sim.Proc, ep *endpoint) execResult {
			ep.ctx.DeviceSynchronize(sp)
			return execResult{}
		},
	})
	return err
}

// RunProxyIteration executes one proxy-style compute iteration (copy A,
// copy B, kernel, sync, copy C) and returns the host-observed duration —
// the same loop Remote.RunProxyIteration runs, now fault-tolerant.
func (r *Resilient) RunProxyIteration(p *sim.Proc, a, bm, c gpu.Ptr, matBytes int64, k gpu.Kernel) (sim.Duration, error) {
	start := p.Now()
	if err := r.MemcpyH2D(p, a, matBytes); err != nil {
		return 0, err
	}
	if err := r.MemcpyH2D(p, bm, matBytes); err != nil {
		return 0, err
	}
	if err := r.LaunchSync(p, k); err != nil {
		return 0, err
	}
	if err := r.DeviceSynchronize(p); err != nil {
		return 0, err
	}
	if err := r.MemcpyD2H(p, c, matBytes); err != nil {
		return 0, err
	}
	return p.Now().Sub(start), nil
}
