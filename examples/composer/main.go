// Composer: the Discussion (§V) scheduling example — 20 CPU nodes and 40
// GPUs, with LAMMPS and CosmoFlow each wanting 20 GPUs — scheduled on a
// traditional node architecture versus a row-scale CDI machine.
//
//	go run ./examples/composer
package main

import (
	"fmt"
	"log"

	cdi "repro"
)

func main() {
	cmp, err := cdi.PaperScenario()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Discussion §V: 20 nodes × 24 cores, 40 GPUs, two jobs wanting 20 GPUs each ==")
	fmt.Print(cmp.Render())

	fmt.Println("\n== trapped-resource accounting on a half-loaded machine ==")
	trad, err := cdi.NewTraditionalSystem(8, 12, 1)
	if err != nil {
		log.Fatal(err)
	}
	row, err := cdi.NewCDISystem(8, 12, 1, 8, cdi.FabricPreset(cdi.RowScale, 0))
	if err != nil {
		log.Fatal(err)
	}
	job := cdi.ComposeRequest{Name: "cpu-heavy", Cores: 96, GPUs: 1}
	at, err := trad.Alloc(job)
	if err != nil {
		log.Fatal(err)
	}
	ar, err := row.Alloc(job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traditional: %d nodes, %d GPUs granted, %d trapped\n",
		at.NodesUsed, at.GPUsGranted, at.TrappedGPUs)
	fmt.Printf("cdi:         %d nodes, %d GPUs granted, %d trapped, slack %v\n",
		ar.NodesUsed, ar.GPUsGranted, ar.TrappedGPUs, ar.Slack)
	fmt.Printf("free GPUs for other jobs: traditional %d vs cdi %d\n",
		trad.FreeGPUs(), row.FreeGPUs())

	fmt.Println("\n== slack by deployment scale ==")
	for _, s := range []cdi.Scale{cdi.NodeLocal, cdi.RackScale, cdi.RowScale, cdi.ClusterScale} {
		p := cdi.FabricPreset(s, 0)
		fmt.Printf("%-14s slack %v\n", s, p.Latency())
	}
	fmt.Printf("\n100µs of slack reaches %.0f km of fibre — the paper's headline.\n",
		cdi.DistanceForSlack(100*cdi.Microsecond))
}
