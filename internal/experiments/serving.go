package experiments

// The serving experiment: the paper studies throughput-oriented HPC
// applications, where slack hides inside long kernels. Online inference
// serving is the opposite regime — per-request transfers are tiny, decode
// kernels run for microseconds, and users judge the system by tail
// latency against an SLO, not by runtime. This sweep asks how much
// row-scale slack a multi-tenant serving stack can absorb at a given
// offered load before p99 and goodput give way, and how much of the
// damage each batching discipline buys back.

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/runner"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/slack"
	"repro/internal/trace"
)

// ServingRow is one (policy, slack, load) measurement of the sweep.
type ServingRow struct {
	Policy serve.Policy
	Slack  sim.Duration
	// Load scales every tenant's offered arrival rate (1 = the reference
	// mix below).
	Load float64
	// Report is the SLO-grade summary of the window.
	Report serve.Report
}

// The sweep grid: zero slack (the node-local baseline arm), the paper's
// headline 100 µs row-scale figure, and a 1 ms extreme, crossed with two
// offered loads and all three batching disciplines.
var (
	servingSlacks   = []sim.Duration{0, 100 * sim.Microsecond, 1 * sim.Millisecond}
	servingLoads    = []float64{0.5, 1}
	servingPolicies = []serve.Policy{serve.NoBatch, serve.FixedBatch, serve.Continuous}
)

// servingTenants is the reference tenant mix at the given load multiplier:
// an interactive chat tenant with a tight SLO and a batch-API tenant with
// a loose one, sharing the same GPU.
func servingTenants(load float64) []serve.Tenant {
	return []serve.Tenant{
		{Name: "chat", Rate: 100 * load, MeanPromptTokens: 32, MeanOutputTokens: 8,
			SLO: 25 * sim.Millisecond},
		{Name: "batchapi", Rate: 60 * load, MeanPromptTokens: 64, MeanOutputTokens: 12,
			SLO: 200 * sim.Millisecond},
	}
}

// servingSeed fixes the workload seed per load level, so every (policy,
// slack) cell at the same load serves the identical request schedule and
// the columns are directly comparable.
func servingSeed(loadIdx int) int64 { return int64(41 + loadIdx) }

// Serving sweeps batching policy × slack × offered load over one serving
// window of open-loop Poisson arrivals. Every cell owns a private sim.Env
// and a fixed seed, so the sweep is byte-identical across runs and worker
// counts; the zero-slack arm injects nothing and therefore reproduces the
// node-local baseline exactly.
func Serving(o Options) ([]ServingRow, error) {
	o = o.withDefaults()
	cells := len(servingPolicies) * len(servingSlacks) * len(servingLoads)
	return runner.Map(o.Jobs, cells, func(i int) (ServingRow, error) {
		pol := servingPolicies[i/(len(servingSlacks)*len(servingLoads))]
		sl := servingSlacks[(i/len(servingLoads))%len(servingSlacks)]
		loadIdx := i % len(servingLoads)
		load := servingLoads[loadIdx]
		rep, err := servingCell(pol, sl, load, o.ServeWindow, servingSeed(loadIdx))
		if err != nil {
			return ServingRow{}, err
		}
		return ServingRow{Policy: pol, Slack: sl, Load: load, Report: rep}, nil
	})
}

// servingCell runs one serving window on a single node-local GPU with the
// given per-call slack injected — the paper's method applied to the
// serving stack.
func servingCell(pol serve.Policy, sl sim.Duration, load float64, window sim.Duration, seed int64) (serve.Report, error) {
	tenants := servingTenants(load)
	reqs, err := serve.Generate(tenants, window, seed)
	if err != nil {
		return serve.Report{}, err
	}
	env := sim.NewEnv()
	defer env.Close()
	dev, err := gpu.NewDevice(env, gpu.A100())
	if err != nil {
		return serve.Report{}, err
	}
	ctx := cuda.NewContext(dev, cuda.Config{})
	ctx.Interpose(slack.New(sl))
	eng, err := serve.Start(env, serve.NewLocal(ctx), serve.Config{Policy: pol, Tenants: tenants}, reqs)
	if err != nil {
		return serve.Report{}, err
	}
	env.Run()
	if err := eng.Err(); err != nil {
		return serve.Report{}, err
	}
	return eng.Metrics().Report(window), nil
}

// slackTrack is the application-span track slack intervals render on in
// the Chrome trace (tenant requests occupy tracks 0.., batches -1).
const slackTrack = 1000

// WriteServingTrace replays one representative serving window — the
// continuous batcher at load 1 under the paper's 100 µs row-scale slack —
// with the trace recorder attached, and writes the Chrome trace JSON:
// API calls (pid 0), kernels and DMA (pid 1), and application spans
// (pid 2: per-tenant request lifetimes, batch iterations, and every
// injected slack interval).
func WriteServingTrace(o Options, w io.Writer) error {
	o = o.withDefaults()
	tenants := servingTenants(1)
	reqs, err := serve.Generate(tenants, o.ServeWindow, servingSeed(1))
	if err != nil {
		return err
	}
	env := sim.NewEnv()
	defer env.Close()
	dev, err := gpu.NewDevice(env, gpu.A100())
	if err != nil {
		return err
	}
	ctx := cuda.NewContext(dev, cuda.Config{})
	rec := trace.NewRecorder("serving-continuous-100us")
	dev.Listen(rec)
	ctx.Interpose(rec)
	var slackSpans []trace.AppSpan
	inj := slack.New(100*sim.Microsecond, slack.WithObserver(func(name string, start, end sim.Time) {
		if rec.Recording() {
			slackSpans = append(slackSpans, trace.AppSpan{
				Name: name, Cat: "slack", Track: slackTrack, Start: start, End: end,
			})
		}
	}))
	ctx.Interpose(inj)
	eng, err := serve.Start(env, serve.NewLocal(ctx),
		serve.Config{Policy: serve.Continuous, Tenants: tenants, RecordSpans: true}, reqs)
	if err != nil {
		return err
	}
	rec.Start(env)
	env.Run()
	rec.Stop(env)
	if err := eng.Err(); err != nil {
		return err
	}
	tr := rec.Trace()
	tr.AppSpans = append(append(tr.AppSpans, eng.Spans()...), slackSpans...)
	return tr.WriteChromeTrace(w)
}

// RenderServing formats the sweep.
func RenderServing(rows []ServingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-tenant serving under injected slack (open-loop Poisson arrivals):\n")
	fmt.Fprintf(&b, "(goodput = completions within the owning tenant's SLO, per second of window)\n")
	fmt.Fprintf(&b, "%-11s %-8s %-5s %-5s %-11s %-11s %-11s %-8s %-9s %-7s %-7s\n",
		"policy", "slack", "load", "req", "p50", "p99", "p99.9", "slo-att", "goodput", "batch", "queue")
	for _, r := range rows {
		rep := r.Report
		fmt.Fprintf(&b, "%-11s %-8v %-5.2g %-5d %-11v %-11v %-11v %-8.3f %-9.1f %-7.2f %-7.2f\n",
			r.Policy, r.Slack, r.Load, rep.Requests,
			rep.P50, rep.P99, rep.P999,
			rep.SLOAttainment, rep.Goodput, rep.MeanBatch, rep.MeanQueue)
	}
	b.WriteString("zero slack is the node-local arm; continuous batching holds goodput longest as slack grows.\n")
	return b.String()
}
