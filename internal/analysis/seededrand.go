package analysis

import (
	"go/ast"
	"go/types"
)

// seededRandAllowed are the math/rand and math/rand/v2 package-level names
// that construct explicit streams — the only sanctioned way to get
// randomness here, e.g. internal/sched/sched.go's
// rand.New(rand.NewSource(seed)) idiom and internal/faults' salted
// rand.New(rand.NewPCG(seed, salt)) substreams.
var seededRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// SeededRand flags the global math/rand functions (rand.Intn, rand.Float64,
// rand.Seed, ...). They draw from a process-wide shared source, so any two
// call sites — or any change in call order — perturb each other's streams
// and every seeded run stops being reproducible. Methods on an explicit
// *rand.Rand are fine everywhere, including tests.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "global math/rand state; use an explicit rand.New(rand.NewSource(seed)) stream",
	Run:  runSeededRand,
}

func runSeededRand(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := pkgLevelFunc(pass.Info, sel)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if !seededRandAllowed[fn.Name()] {
				pass.ReportFixf(sel.Pos(), seededRandFix(pass, sel, fn),
					"global rand.%s shares hidden state across call sites; use an explicit rand.New(rand.NewSource(seed)) stream", fn.Name())
			}
			return true
		})
	}
}

// seededRandFix substitutes an in-scope *rand.Rand stream for the global:
// rand.Intn(n) becomes rng.Intn(n) when a variable rng of type *rand.Rand is
// visible at the call and the global function exists as a Rand method.
// Scopes are searched innermost-out and names within a scope in sorted
// order, so the substitution is deterministic. No stream in scope means no
// fix — inventing one would need a seed we cannot guess.
func seededRandFix(pass *Pass, sel *ast.SelectorExpr, fn *types.Func) *Fix {
	if !randMethod[fn.Name()] {
		return nil
	}
	scope := pass.Pkg.Scope().Innermost(sel.Pos())
	var stream string
	for s := scope; s != nil && stream == ""; s = s.Parent() {
		for _, nm := range s.Names() { // Names() is sorted: deterministic pick
			obj := s.Lookup(nm)
			v, ok := obj.(*types.Var)
			if !ok || (s.Parent() != nil && v.Pos() >= sel.Pos()) {
				continue // not declared yet at the call site (package scope exempt)
			}
			if ptr, ok := v.Type().(*types.Pointer); ok {
				if named, ok := ptr.Elem().(*types.Named); ok &&
					named.Obj().Name() == "Rand" && named.Obj().Pkg() != nil &&
					(named.Obj().Pkg().Path() == "math/rand" || named.Obj().Pkg().Path() == "math/rand/v2") {
					stream = nm
					break
				}
			}
		}
	}
	if stream == "" {
		return nil
	}
	pos := pass.Fset.Position(sel.X.Pos())
	return &Fix{
		Message: "draw from the seeded stream " + stream,
		Edits: []TextEdit{{
			File:   pos.Filename,
			Offset: pos.Offset,
			End:    pass.Fset.Position(sel.X.End()).Offset,
			Text:   stream,
		}},
	}
}

// randMethod lists the global math/rand functions that also exist as
// methods on *rand.Rand, i.e. the calls the stream substitution can rewrite
// textually.
var randMethod = map[string]bool{
	"ExpFloat64": true, "Float32": true, "Float64": true, "Int": true,
	"Int31": true, "Int31n": true, "Int63": true, "Int63n": true,
	"Intn": true, "NormFloat64": true, "Perm": true, "Seed": true,
	"Shuffle": true, "Uint32": true, "Uint64": true,
}
