package sched

import (
	"testing"

	"repro/internal/compose"
	"repro/internal/sim"
)

func mustTraditional(t *testing.T, nodes, cores, gpus int) *compose.System {
	t.Helper()
	s, err := compose.NewTraditional(nodes, cores, gpus)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSingleJobRunsImmediately(t *testing.T) {
	s := mustTraditional(t, 2, 24, 2)
	jobs := []Job{{
		Name: "a", Arrival: 0, Duration: 1 * sim.Minute,
		Req: compose.Request{Name: "a", Cores: 24, GPUs: 1},
	}}
	res, err := Run(s, jobs, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Wait != 0 {
		t.Errorf("wait = %v", res.Jobs[0].Wait)
	}
	if res.Makespan != 1*sim.Minute {
		t.Errorf("makespan = %v", res.Makespan)
	}
	if res.Rejected != 0 {
		t.Errorf("rejected = %d", res.Rejected)
	}
	if res.GPUEnergyWh <= 0 {
		t.Errorf("energy = %v", res.GPUEnergyWh)
	}
}

func TestQueueingWhenFull(t *testing.T) {
	s := mustTraditional(t, 1, 24, 1)
	req := compose.Request{Cores: 24}
	jobs := []Job{
		{Name: "a", Arrival: 0, Duration: 10 * sim.Minute, Req: named(req, "a")},
		{Name: "b", Arrival: 0, Duration: 10 * sim.Minute, Req: named(req, "b")},
	}
	res, err := Run(s, jobs, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 20*sim.Minute {
		t.Errorf("makespan = %v, want 20m (serialized)", res.Makespan)
	}
	if res.MaxWait != 10*sim.Minute {
		t.Errorf("max wait = %v", res.MaxWait)
	}
	if res.MeanWait != 5*sim.Minute {
		t.Errorf("mean wait = %v", res.MeanWait)
	}
}

func TestFCFSHeadOfLineBlocking(t *testing.T) {
	// Machine: 2 nodes. Job a holds 1 node; job b wants 2 (blocked);
	// job c wants 1 and COULD run, but FCFS keeps it behind b.
	s := mustTraditional(t, 2, 8, 0)
	jobs := []Job{
		{Name: "a", Arrival: 0, Duration: 10 * sim.Minute, Req: compose.Request{Name: "a", Cores: 8}},
		{Name: "b", Arrival: sim.Time(60), Duration: 10 * sim.Minute, Req: compose.Request{Name: "b", Cores: 16}},
		{Name: "c", Arrival: sim.Time(120), Duration: 1 * sim.Minute, Req: compose.Request{Name: "c", Cores: 8}},
	}
	fcfs, err := Run(s, jobs, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	var cF, cB JobStats
	for _, j := range fcfs.Jobs {
		if j.Name == "c" {
			cF = j
		}
	}
	s2 := mustTraditional(t, 2, 8, 0)
	back, err := Run(s2, jobs, Backfill)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range back.Jobs {
		if j.Name == "c" {
			cB = j
		}
	}
	if cB.Started >= cF.Started {
		t.Errorf("backfill did not start c earlier: %v vs %v", cB.Started, cF.Started)
	}
	if back.Makespan > fcfs.Makespan {
		t.Errorf("backfill makespan %v worse than FCFS %v", back.Makespan, fcfs.Makespan)
	}
}

func TestImpossibleJobRejected(t *testing.T) {
	s := mustTraditional(t, 1, 8, 1)
	jobs := []Job{
		{Name: "huge", Arrival: 0, Duration: 1 * sim.Minute, Req: compose.Request{Name: "huge", Cores: 1000}},
		{Name: "ok", Arrival: 0, Duration: 1 * sim.Minute, Req: compose.Request{Name: "ok", Cores: 8}},
	}
	res, err := Run(s, jobs, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 1 {
		t.Fatalf("rejected = %d", res.Rejected)
	}
	for _, j := range res.Jobs {
		if j.Name == "huge" && !j.Rejected {
			t.Error("huge job not marked rejected")
		}
		if j.Name == "ok" && j.Rejected {
			t.Error("ok job rejected")
		}
	}
}

func TestJobValidation(t *testing.T) {
	s := mustTraditional(t, 1, 8, 0)
	if _, err := Run(s, []Job{{Name: "x", Duration: 0, Req: compose.Request{Cores: 1}}}, FCFS); err == nil {
		t.Error("zero-duration job accepted")
	}
	if _, err := Run(s, []Job{{Name: "x", Arrival: -1, Duration: 1, Req: compose.Request{Cores: 1}}}, FCFS); err == nil {
		t.Error("negative arrival accepted")
	}
}

func TestWorkloadMixDeterministicAndValid(t *testing.T) {
	a := WorkloadMix(30, 24, 7)
	b := WorkloadMix(30, 24, 7)
	if len(a) != 30 {
		t.Fatalf("jobs = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("mix nondeterministic")
		}
		if err := a[i].validate(); err != nil {
			t.Fatal(err)
		}
		if a[i].Req.Cores <= 0 && a[i].Req.GPUs <= 0 {
			t.Fatalf("empty request in mix: %+v", a[i])
		}
	}
}

func TestCompareCDIWinsOnMixedWorkload(t *testing.T) {
	// The paper's system-level claims: composable allocation completes
	// mixed queues sooner and queues jobs for less time, because GPUs are
	// never trapped behind CPU-dominant jobs. Individual job streams are
	// noisy (packing order effects), so assert on the aggregate over
	// several seeds.
	var tradSpan, cdiSpan, tradWait, cdiWait sim.Duration
	for seed := int64(1); seed <= 5; seed++ {
		jobs := WorkloadMix(40, 24, seed)
		cmp, err := Compare(jobs, 8, 24, 2, Backfill)
		if err != nil {
			t.Fatal(err)
		}
		tradSpan += cmp.Traditional.Makespan
		cdiSpan += cmp.CDI.Makespan
		tradWait += cmp.Traditional.MeanWait
		cdiWait += cmp.CDI.MeanWait
		if cmp.CDI.Rejected > cmp.Traditional.Rejected {
			t.Errorf("seed %d: CDI rejected more jobs: %d vs %d",
				seed, cmp.CDI.Rejected, cmp.Traditional.Rejected)
		}
	}
	if cdiSpan >= tradSpan {
		t.Errorf("aggregate CDI makespan %v not below traditional %v", cdiSpan, tradSpan)
	}
	if cdiWait >= tradWait {
		t.Errorf("aggregate CDI wait %v not below traditional %v", cdiWait, tradWait)
	}
}

func TestEnergyAccountingFavorsCDIUnderPartialLoad(t *testing.T) {
	// One small GPU job on a big machine: traditional pays idle watts on
	// every other GPU for the whole run; CDI powers them off.
	jobs := []Job{{
		Name: "j", Arrival: 0, Duration: 1 * sim.Minute,
		Req: compose.Request{Name: "j", Cores: 4, GPUs: 1},
	}}
	cmp, err := Compare(jobs, 8, 24, 2, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.CDI.GPUEnergyWh >= cmp.Traditional.GPUEnergyWh {
		t.Errorf("CDI energy %v not below traditional %v",
			cmp.CDI.GPUEnergyWh, cmp.Traditional.GPUEnergyWh)
	}
}

func TestPolicyString(t *testing.T) {
	if FCFS.String() != "fcfs" || Backfill.String() != "backfill" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy empty")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	jobs := WorkloadMix(25, 24, 11)
	run := func() Result {
		s := mustTraditional(t, 6, 24, 2)
		r, err := Run(s, jobs, Backfill)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.MeanWait != b.MeanWait {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func named(r compose.Request, name string) compose.Request {
	r.Name = name
	return r
}
