package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
)

// Config selects what to analyze.
type Config struct {
	// Dir is any directory inside the target module (default ".").
	Dir string
	// Patterns restrict the packages analyzed ("./..." when empty).
	Patterns []string
	// Analyzers defaults to the full suite (All).
	Analyzers []*Analyzer
}

// Run loads the module containing cfg.Dir and applies the analyzer suite to
// every matching package, returning suppression-filtered findings in stable
// (file, line, col, rule) order.
func Run(cfg Config) ([]Finding, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	m, err := LoadModule(dir)
	if err != nil {
		return nil, err
	}
	return RunModule(m, cfg)
}

// RunModule applies the suite to an already loaded module.
func RunModule(m *Module, cfg Config) ([]Finding, error) {
	analyzers := cfg.Analyzers
	if len(analyzers) == 0 {
		analyzers = All()
	}

	var findings []Finding
	runPass := func(p *Package, files []*ast.File, tpkg *types.Package, info *types.Info) {
		if len(files) == 0 || tpkg == nil {
			return
		}
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     m.Fset,
				Files:    files,
				Path:     p.Path,
				Pkg:      tpkg,
				Info:     info,
				findings: &findings,
			}
			a.Run(pass)
		}
	}

	var dirFiles []*ast.File
	matchedDirs := map[string]bool{}
	matched := 0
	for _, p := range m.Packages {
		if !m.Match(p, cfg.Patterns) {
			continue
		}
		matched++
		matchedDirs[p.Dir] = true
		runPass(p, p.Files, p.Types, p.Info)
		runPass(p, p.TestFiles, p.TestTypes, p.TestInfo)
		runPass(p, p.XTestFiles, p.XTypes, p.XInfo)
		dirFiles = append(dirFiles, p.Files...)
		dirFiles = append(dirFiles, p.TestFiles...)
		dirFiles = append(dirFiles, p.XTestFiles...)
	}

	if matched == 0 {
		return nil, fmt.Errorf("analysis: no packages match %v; a typo here would silently gate nothing", cfg.Patterns)
	}

	// Module-wide analyzers see every package (cross-package dataflow needs
	// the full call graph); their findings are then filtered to the matched
	// packages so `cdivet ./internal/sim` reports on internal/sim only.
	var moduleFindings []Finding
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{Analyzer: a, Module: m, findings: &moduleFindings}
		a.RunModule(mp)
	}
	for _, f := range moduleFindings {
		if matchedDirs[filepath.Dir(f.File)] {
			findings = append(findings, f)
		}
	}

	enabled := map[string]bool{}
	for _, a := range analyzers {
		enabled[a.Name] = true
	}
	dirs := parseDirectives(m.Fset, dirFiles)
	findings = applySuppression(m.Fset, findings, dirs, enabled)
	sortFindings(findings)
	return findings, nil
}
