package experiments

// The pool experiment: the serving and churn sweeps measure one
// composed server; this sweep runs the whole datacenter pool. A
// topology of rows × racks × servers × GPUs takes thousands of
// concurrent gang allocations under seeded open-loop churn, placed by
// three policies (first-fit, best-fit, tier-aware), each swept with the
// defragmenter off and on. The defrag arm must pay for itself in the
// table: strictly lower stranded capacity in every churning cell, never
// at the cost of goodput. Two extra cells rerun the tier-aware middle
// churn point on a smaller pool with crash faults and the health
// control plane attached, so drained servers' allocations re-place
// through the same migration machinery the defragmenter uses.

import (
	"fmt"
	"strings"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/pool"
	"repro/internal/runner"
	"repro/internal/sim"
)

// PoolRow is one (policy, churn, defrag[, faults]) measurement.
type PoolRow struct {
	Policy pool.Policy
	Churn  float64
	Defrag bool
	// Faulty marks the failure cells: the small topology with the crash
	// injector and the health control plane attached.
	Faulty bool
	Stats  pool.Stats
	// Health carries the control plane's counters in the faulty cells.
	Health health.Stats
}

// The churn axis: 0 freezes the pool after one placement (the no-churn
// control that must never migrate), 0.5 and 1 scale turnover at constant
// offered load.
var poolChurns = []float64{0, 0.5, 1}

const (
	// poolLoad is the target fraction of batch GPUs concurrently
	// allocated; on the default 8192-GPU topology it sustains about three
	// thousand concurrent gangs. It is deliberately high: near capacity,
	// whole-server holes are scarce enough that consolidation decides
	// whether a drained server's gangs re-place into minted holes or
	// scatter wide — which is what lets the defrag arm win goodput in the
	// failure cells instead of merely paying the concentration cost of a
	// bigger blast radius.
	poolLoad = 0.95
	// poolServingGPUs is the serving reservation carved out through the
	// serve placer before batch placement.
	poolServingGPUs = 16
	// poolFaultOutage/poolFaultGap shape the failure cells' crash
	// process: 100 ms outages separated by 5 s mean gaps per server.
	poolFaultOutage = 100 * sim.Millisecond
	poolFaultGap    = 5 * sim.Second
)

// poolSeed fixes the workload seed per churn level, so every (policy,
// defrag) arm at the same churn places the identical job schedule and
// the columns are directly comparable. The fault and health seeds are
// fixed too: both failure cells face one outage schedule.
func poolSeed(churnIdx int) int64 { return int64(9001 + churnIdx) }

const (
	poolFaultSeed  int64 = 9101
	poolHealthSeed int64 = 9201
)

// poolTopology is the main grid's pool: 8×8×8×16 = 8192 GPUs on 512
// servers. poolFaultTopology is the failure cells' smaller pool —
// 2×4×8×8 = 512 GPUs on 64 servers — kept small so a 100 ms outage is a
// meaningful fraction of the pool, not noise.
func poolTopology() pool.Topology { return pool.DefaultTopology() }

func poolFaultTopology() pool.Topology {
	return pool.Topology{Rows: 2, RacksPerRow: 4, ServersPerRack: 8, GPUsPerServer: 8}
}

// poolHealth is the failure cells' control plane: rack-scale heartbeat
// path, 1 ms beats, monitoring for twice the window so the job tail
// stays covered.
func poolHealth(window sim.Duration) health.Config {
	return health.Config{
		Seed:     poolHealthSeed,
		Interval: sim.Millisecond,
		Horizon:  2 * window,
		Path:     fabric.Preset(fabric.RackScale, 0),
	}
}

// poolJob names one cell of the sweep.
type poolJob struct {
	polIdx, churnIdx int
	defrag           bool
	faulty           bool
}

// poolJobs flattens the grid in deterministic order: the full policy ×
// churn × defrag cross, then the tier-aware failure pair.
func poolJobs() []poolJob {
	var jobs []poolJob
	for pi := pool.FirstFit; pi <= pool.TierAware; pi++ {
		for ci := range poolChurns {
			for _, df := range []bool{false, true} {
				jobs = append(jobs, poolJob{int(pi), ci, df, false})
			}
		}
	}
	for _, df := range []bool{false, true} {
		jobs = append(jobs, poolJob{int(pool.TierAware), 1, df, true})
	}
	return jobs
}

// Pool sweeps placement policy × churn intensity × defragmentation over
// the pool window, plus the two failure cells. Every cell owns a
// private sim.Env and fixed seeds, so the sweep is byte-identical across
// runs and worker counts.
func Pool(o Options) ([]PoolRow, error) {
	o = o.withDefaults()
	jobs := poolJobs()
	return runner.Map(o.Jobs, len(jobs), func(i int) (PoolRow, error) {
		return poolCell(jobs[i], o.ServeWindow)
	})
}

// poolCell runs one pool configuration to completion.
func poolCell(j poolJob, window sim.Duration) (PoolRow, error) {
	topo := poolTopology()
	if j.faulty {
		topo = poolFaultTopology()
	}
	env := sim.NewEnv()
	defer env.Close()
	sched, err := pool.Start(env, pool.Config{
		Topo:   topo,
		Policy: pool.Policy(j.polIdx),
		Workload: pool.Workload{
			Seed:      poolSeed(j.churnIdx),
			Window:    window,
			Load:      poolLoad,
			Intensity: poolChurns[j.churnIdx],
		},
		Defrag:      j.defrag,
		Serving:     servingTenants(1),
		ServingGPUs: poolServingGPUs,
	})
	if err != nil {
		return PoolRow{}, err
	}
	var ctl *health.Controller
	if j.faulty {
		inj, err := faults.NewInjector(faults.Config{
			Seed:       poolFaultSeed,
			CrashAfter: poolFaultGap,
			CrashFor:   poolFaultOutage,
		})
		if err != nil {
			return PoolRow{}, err
		}
		ctl, err = health.Start(env, sched, inj, poolHealth(window))
		if err != nil {
			return PoolRow{}, err
		}
	}
	env.Run()
	row := PoolRow{
		Policy: pool.Policy(j.polIdx),
		Churn:  poolChurns[j.churnIdx],
		Defrag: j.defrag,
		Faulty: j.faulty,
		Stats:  sched.Stats(),
	}
	if ctl != nil {
		row.Health = ctl.Stats()
	}
	return row, nil
}

// RenderPool formats the sweep.
func RenderPool(rows []PoolRow) string {
	var b strings.Builder
	topo := poolTopology()
	ft := poolFaultTopology()
	fmt.Fprintf(&b, "Pool scheduling under churn (%d GPUs: %d rows x %d racks x %d servers x %d GPUs; load %.2g):\n",
		topo.GPUs(), topo.Rows, topo.RacksPerRow, topo.ServersPerRack, topo.GPUsPerServer, poolLoad)
	fmt.Fprintf(&b, "(frag = 1 - largest block/reference gang, time-averaged; stranded = free GPUs on sub-gang fragments;\n")
	fmt.Fprintf(&b, " goodput = efficiency-weighted GPU-seconds delivered over batch capacity)\n")
	fmt.Fprintf(&b, "%-10s %-5s %-6s %-6s %-5s %-9s %-6s %-9s %-8s %-5s %-8s %-6s %-6s %-7s\n",
		"policy", "churn", "defrag", "jobs", "peak", "placelat", "frag", "stranded", "strw", "migr", "mib", "drain", "kill", "goodput")
	for _, r := range rows {
		if r.Faulty {
			continue
		}
		b.WriteString(renderPoolRow(r))
	}
	fmt.Fprintf(&b, "failure cells (%d GPUs on %d servers, crash faults %v/%v, health plane attached):\n",
		ft.GPUs(), ft.Servers(), poolFaultOutage, poolFaultGap)
	for _, r := range rows {
		if !r.Faulty {
			continue
		}
		b.WriteString(renderPoolRow(r))
		fmt.Fprintf(&b, "  health: %d suspicions, %d drains, %d readmissions, mean detection %v\n",
			r.Health.Suspicions, r.Health.Drains, r.Health.Readmissions, r.Health.MeanDetection())
	}
	b.WriteString("the defrag arm must strand strictly less than its off twin in every nonzero-churn cell,\n")
	b.WriteString("never regress goodput, and leave the zero-churn placement untouched (no migrations).\n")
	return b.String()
}

func renderPoolRow(r PoolRow) string {
	st := r.Stats
	df := "off"
	if r.Defrag {
		df = "on"
	}
	return fmt.Sprintf("%-10s %-5.2g %-6s %-6d %-5d %-9v %-6.3f %-9.1f %-8.0f %-5d %-8.1f %-6d %-6d %-7.3f\n",
		r.Policy, r.Churn, df, st.Jobs, st.PeakConcurrent, st.PlaceLatencyMean,
		st.FragAvg, st.StrandedAvg, st.StrandedPowerW, st.Migrations+st.DrainMigrations,
		float64(st.MigrationBytes)/(1<<20), st.Drains, st.Killed, st.Goodput)
}
