package proxy

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteSweepJSON serializes sweep points so an expensive calibration can
// be performed once and reused across profiling sessions (the workflow a
// prospective CDI adopter would follow: sweep on their hardware overnight,
// then profile workloads against the saved surface).
func WriteSweepJSON(w io.Writer, pts []SweepPoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pts)
}

// ReadSweepJSON deserializes sweep points written by WriteSweepJSON.
func ReadSweepJSON(r io.Reader) ([]SweepPoint, error) {
	var pts []SweepPoint
	if err := json.NewDecoder(r).Decode(&pts); err != nil {
		return nil, fmt.Errorf("proxy: decoding sweep: %w", err)
	}
	for i, pt := range pts {
		if pt.MatrixSize <= 0 || pt.Threads <= 0 || pt.Slack <= 0 {
			return nil, fmt.Errorf("proxy: sweep point %d invalid: %+v", i, pt)
		}
	}
	return pts, nil
}
