// Package gcm is the gcflags cross-validation corpus: every allocation
// site here is classified both by the package's heuristic escape analysis
// and by the real compiler (go build -gcflags=-m=2), and
// TestEscapeGcflagsCrossValidation asserts the verdicts agree line by
// line. The shapes deliberately avoid calls to non-builtin functions and
// method values, where the heuristic is conservative and the compiler is
// smarter; those gaps are covered by the corpus in the parent directory
// instead.
package gcm

type item struct {
	id   int
	next *item
}

var (
	sinkItems []*item
	sinkMap   map[string]int
	sinkCh    chan *item
)

func storedGlobal() {
	p := &item{id: 1} // escapes: appended into a global slice
	sinkItems = append(sinkItems, p)
}

func returned() *item {
	return &item{id: 2} // escapes: returned
}

func localField() int {
	p := &item{id: 3} // does not escape: only a field read
	return p.id
}

func localSum(n int) int {
	s := make([]int, 8) // does not escape: indexed locally
	t := 0
	for i := range s {
		s[i] = i * n
		t += s[i]
	}
	return t
}

func returnedSlice(n int) []int {
	return make([]int, n) // escapes: returned
}

func globalMap() {
	sinkMap = map[string]int{"a": 1} // escapes: stored to a global
}

func sent() {
	sinkCh <- &item{id: 4} // escapes: sent on a channel
}

func captured() func() int {
	p := &item{id: 5} // escapes: captured by the returned closure
	return func() int { return p.id }
}

func localNew() int {
	p := new(int) // does not escape: dereferenced locally
	*p = 7
	return *p
}
