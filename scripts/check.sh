#!/usr/bin/env bash
# check.sh — the full CI gate: build, vet, race-enabled tests, and the
# determinism-invariant lint suite (cmd/cdivet). Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== cdivet ./..."
go run ./cmd/cdivet -sarif cdivet.sarif ./...

echo "== cdivet -directives ./..."
go run ./cmd/cdivet -directives ./...

echo "== bench.sh --smoke"
scripts/bench.sh --smoke

echo "check.sh: all gates green"
