package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package plus its test files. Test
// files are type-checked in separate variants (mirroring how go test
// compiles them) so their extra imports never perturb the base import
// graph.
type Package struct {
	Path string // import path, e.g. "repro/internal/sim"
	Dir  string
	Name string

	Files      []*ast.File // non-test files
	TestFiles  []*ast.File // in-package _test.go files
	XTestFiles []*ast.File // external (package foo_test) files

	Types *types.Package
	Info  *types.Info // covers Files

	// Test-variant results; nil when the package has no such files.
	TestTypes *types.Package
	TestInfo  *types.Info
	XTypes    *types.Package
	XInfo     *types.Info
}

// Module is a fully loaded module tree sharing one FileSet.
type Module struct {
	Root     string // absolute directory containing go.mod
	Path     string // module path from go.mod
	Fset     *token.FileSet
	Packages []*Package // in deterministic (path) order

	// cg and shardCtx memoize the module-wide structures the dataflow
	// analyzers share, built on first use (callGraphFor, shardContextFor).
	// Module analysis is sequential, so plain fields suffice.
	cg       *callGraph
	shardCtx *shardContext
}

// LoadModule parses and type-checks every package of the module containing
// dir. Directories named testdata, hidden directories, and underscore
// directories are skipped, exactly as the go tool does.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	m := &Module{Root: root, Path: modPath, Fset: token.NewFileSet()}

	var dirs []string
	err = filepath.Walk(root, func(p string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() {
			return nil
		}
		base := fi.Name()
		if p != root && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walking %s: %w", root, err)
	}
	sort.Strings(dirs)

	for _, d := range dirs {
		pkg, err := m.parseDir(d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			m.Packages = append(m.Packages, pkg)
		}
	}
	if err := m.typecheck(); err != nil {
		return nil, err
	}
	return m, nil
}

// findModule walks upward from dir to the enclosing go.mod.
func findModule(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module directive in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

// parseDir parses one directory into a Package skeleton (no types yet);
// it returns nil when the directory holds no Go files.
func (m *Module) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	pkgPath := m.Path
	if rel != "." {
		pkgPath = m.Path + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{Path: pkgPath, Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		switch {
		case strings.HasSuffix(name, "_test.go") && strings.HasSuffix(f.Name.Name, "_test"):
			pkg.XTestFiles = append(pkg.XTestFiles, f)
		case strings.HasSuffix(name, "_test.go"):
			pkg.TestFiles = append(pkg.TestFiles, f)
		default:
			pkg.Name = f.Name.Name
			pkg.Files = append(pkg.Files, f)
		}
	}
	if len(pkg.Files)+len(pkg.TestFiles)+len(pkg.XTestFiles) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// moduleImporter resolves module-internal import paths from the loaded set
// and everything else (the standard library) through the source importer,
// which compiles type information from GOROOT/src — modern toolchains ship
// no pre-built export data.
type moduleImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := mi.local[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle or unchecked package %q", path)
		}
		return p, nil
	}
	return mi.std.Import(path)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// typecheck type-checks all packages: base variants in dependency order,
// then test variants against the completed base map.
func (m *Module) typecheck() error {
	byPath := map[string]*Package{}
	for _, p := range m.Packages {
		byPath[p.Path] = p
	}

	// Topological order over module-internal imports of base files.
	order, err := m.topoSort(byPath)
	if err != nil {
		return err
	}

	local := map[string]*types.Package{}
	imp := &moduleImporter{local: local, std: importer.ForCompiler(m.Fset, "source", nil)}

	check := func(path string, files []*ast.File) (*types.Package, *types.Info, error) {
		info := newInfo()
		cfg := types.Config{Importer: imp}
		tpkg, err := cfg.Check(path, m.Fset, files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
		}
		return tpkg, info, nil
	}

	for _, p := range order {
		if len(p.Files) == 0 {
			continue
		}
		tpkg, info, err := check(p.Path, p.Files)
		if err != nil {
			return err
		}
		p.Types, p.Info = tpkg, info
		local[p.Path] = tpkg
	}

	// Test variants: base files + in-package test files re-checked together
	// (their extra imports resolve against the completed base map), and the
	// external test package checked on its own.
	for _, p := range m.Packages {
		if len(p.TestFiles) > 0 {
			files := append(append([]*ast.File{}, p.Files...), p.TestFiles...)
			tpkg, info, err := check(p.Path, files)
			if err != nil {
				return err
			}
			p.TestTypes, p.TestInfo = tpkg, info
		}
		if len(p.XTestFiles) > 0 {
			tpkg, info, err := check(p.Path+"_test", p.XTestFiles)
			if err != nil {
				return err
			}
			p.XTypes, p.XInfo = tpkg, info
		}
	}
	return nil
}

// topoSort orders packages so every module-internal dependency of a
// package's base files precedes it.
func (m *Module) topoSort(byPath map[string]*Package) ([]*Package, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := map[*Package]int{}
	var order []*Package
	var visit func(p *Package, chain []string) error
	visit = func(p *Package, chain []string) error {
		switch state[p] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("analysis: import cycle: %s -> %s", strings.Join(chain, " -> "), p.Path)
		}
		state[p] = grey
		for _, f := range p.Files {
			for _, spec := range f.Imports {
				path, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if dep, ok := byPath[path]; ok {
					if err := visit(dep, append(chain, p.Path)); err != nil {
						return err
					}
				}
			}
		}
		state[p] = black
		order = append(order, p)
		return nil
	}
	for _, p := range m.Packages {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// LoadDirAs parses and type-checks a directory tree as a standalone module
// rooted at the given synthetic import path. It is how the testdata corpora
// are loaded: corpus files import only the standard library (or each other,
// via the synthetic path), and the synthetic path lets a corpus exercise
// path-scoped rules (e.g. a "repro/internal/..." path for barego and
// errdrop). Subdirectories become subpackages — "<asPath>/<rel>" — so a
// corpus can model cross-package dataflow.
func LoadDirAs(dir, asPath string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	m := &Module{Root: abs, Path: asPath, Fset: token.NewFileSet()}

	var dirs []string
	err = filepath.Walk(abs, func(p string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() {
			return nil
		}
		base := fi.Name()
		if p != abs && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walking %s: %w", abs, err)
	}
	sort.Strings(dirs)

	for _, d := range dirs {
		pkg, err := m.parseDir(d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			m.Packages = append(m.Packages, pkg)
		}
	}
	if len(m.Packages) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	if err := m.typecheck(); err != nil {
		return nil, err
	}
	return m, nil
}

// Match reports whether the package path matches any of the patterns,
// interpreted relative to the module: "./..." matches everything, a
// trailing "/..." matches a subtree, anything else matches one package.
// Patterns may be given as import paths or as ./-prefixed directories.
func (m *Module) Match(p *Package, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(p.Path, m.Path), "/")
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || pat == "" && rel == "" {
			return true
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if rel == sub || strings.HasPrefix(rel, sub+"/") || p.Path == sub || strings.HasPrefix(p.Path, sub+"/") {
				return true
			}
			continue
		}
		if rel == pat || p.Path == pat {
			return true
		}
	}
	return false
}
