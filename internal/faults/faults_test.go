package faults

import (
	"strings"
	"testing"

	"repro/internal/cuda"
	"repro/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{DropProbability: -0.1},
		{DropProbability: 1},
		{FlapEvery: -sim.Millisecond},
		{FlapEvery: sim.Millisecond}, // zero outage
		{StallEvery: sim.Millisecond},
		{DegradeEvery: sim.Millisecond, DegradeFor: sim.Microsecond, DegradeFactor: 1.5},
		{DegradeEvery: sim.Millisecond, DegradeFor: sim.Microsecond},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d (%+v) accepted", i, c)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	if (Config{}).Enabled() {
		t.Error("zero config reports Enabled")
	}
	if !AtIntensity(1, 7).Enabled() {
		t.Error("intensity 1 reports disabled")
	}
	if err := AtIntensity(3, 7).Validate(); err != nil {
		t.Errorf("AtIntensity(3) invalid: %v", err)
	}
	if AtIntensity(0, 7).Enabled() {
		t.Error("intensity 0 injects faults")
	}
}

func TestSubstreamIsolation(t *testing.T) {
	// Draw heavily from one substream; its sibling must be unaffected.
	a1, b1 := Substream(42, 1), Substream(42, 2)
	for i := 0; i < 100; i++ {
		a1.Float64()
	}
	tail := []float64{b1.Float64(), b1.Float64(), b1.Float64()}

	b2 := Substream(42, 2)
	for i, want := range tail {
		if got := b2.Float64(); got != want {
			t.Fatalf("draw %d: %v != %v — sibling stream was perturbed", i, got, want)
		}
	}
	if Substream(42, 1).Float64() == Substream(42, 2).Float64() {
		t.Error("different salts produced identical first draws")
	}
	if SubSeed(42, 1) < 0 || SubSeed(42, 1) != SubSeed(42, 1) {
		t.Error("SubSeed not deterministic and non-negative")
	}
}

func TestWindowsSchedule(t *testing.T) {
	w := newWindows(Substream(7, saltFlap), 10*sim.Millisecond, sim.Millisecond)
	// Replay the same schedule with a fresh generator: decisions must
	// agree at every probe.
	w2 := newWindows(Substream(7, saltFlap), 10*sim.Millisecond, sim.Millisecond)
	downs := 0
	var t0 sim.Time
	for i := 0; i < 10000; i++ {
		t0 = t0.Add(37 * sim.Microsecond)
		d1, u1 := w.at(t0)
		d2, u2 := w2.at(t0)
		if d1 != d2 || u1 != u2 {
			t.Fatalf("probe %d at %v: (%v,%v) != (%v,%v)", i, t0, d1, u1, d2, u2)
		}
		if d1 {
			downs++
			if u1.Sub(t0) > sim.Millisecond {
				t.Fatalf("outage end %v more than one window beyond probe %v", u1, t0)
			}
		}
	}
	// ≈370ms of probes against a ~11ms cycle: expect roughly 1/11 down.
	if downs == 0 || downs == 10000 {
		t.Fatalf("degenerate schedule: %d/10000 probes down", downs)
	}
}

func TestServerScheduleIsolation(t *testing.T) {
	// Server 0's schedule must not depend on whether server 1 exists.
	cfg := Config{Seed: 3, StallEvery: 5 * sim.Millisecond, StallFor: 500 * sim.Microsecond, CrashAfter: sim.Second}
	solo, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pair.Server(1) // materialize the standby first
	var at sim.Time
	for i := 0; i < 2000; i++ {
		at = at.Add(113 * sim.Microsecond)
		s1, u1 := solo.Server(0).StateAt(at)
		s2, u2 := pair.Server(0).StateAt(at)
		if s1 != s2 || u1 != u2 {
			t.Fatalf("probe at %v: (%v,%v) != (%v,%v)", at, s1, u1, s2, u2)
		}
	}
	c0, ok0 := solo.Server(0).CrashTime()
	c1, ok1 := pair.Server(1).CrashTime()
	if !ok0 || !ok1 {
		t.Fatal("CrashAfter set but no crash time drawn")
	}
	if c0 == c1 {
		t.Error("primary and standby drew the same crash time")
	}
}

func TestInjectorCountersAndDrops(t *testing.T) {
	cfg := Config{Seed: 9, DropProbability: 0.5}
	in, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	for i := 0; i < 1000; i++ {
		if in.DropsMessage() {
			drops++
		}
	}
	if c := in.Counters(); c.Drops != int64(drops) || drops < 400 || drops > 600 {
		t.Fatalf("drops = %d, counter = %d", drops, c.Drops)
	}
	// Disabled loss must not consume the stream or count anything.
	off, _ := NewInjector(Config{Seed: 9})
	for i := 0; i < 10; i++ {
		if off.DropsMessage() {
			t.Fatal("fault-free injector dropped a message")
		}
	}
	if off.Counters() != (Counters{}) {
		t.Fatalf("fault-free counters = %+v", off.Counters())
	}
}

// runCallInjector drives n link-crossing calls through a CallInjector on
// a fresh simulation and returns the total virtual time consumed.
func runCallInjector(t *testing.T, ci *CallInjector, n int) sim.Duration {
	t.Helper()
	env := sim.NewEnv()
	defer env.Close()
	var total sim.Duration
	env.Spawn("host", func(p *sim.Proc) {
		info := cuda.CallInfo{Name: "cudaLaunchKernelSync:k", Class: cuda.ClassLaunch}
		start := p.Now()
		for i := 0; i < n; i++ {
			if ci != nil {
				ci.Before(p, info)
			}
			p.Sleep(10 * sim.Microsecond) // the call body
			if ci != nil {
				ci.After(p, info)
			}
		}
		total = p.Now().Sub(start)
	})
	env.Run()
	return total
}

func TestCallInjectorZeroIntensityAddsNothing(t *testing.T) {
	ci, err := NewCallInjector(AtIntensity(0, 5), Policy{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := runCallInjector(t, ci, 50)
	if want := runCallInjector(t, nil, 50); got != want {
		t.Fatalf("fault-free run took %v, want exactly %v (the bare loop)", got, want)
	}
	if s := ci.Stats(); s != (CallStats{}) {
		t.Fatalf("fault-free stats = %+v", s)
	}
}

func TestCallInjectorRetriesThenDegrades(t *testing.T) {
	// A near-certain loss rate forces timeouts, retries, breaker trips,
	// failover through the single standby, and finally local degradation.
	cfg := Config{Seed: 11, DropProbability: 0.95}
	ci, err := NewCallInjector(cfg, Policy{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	d1 := runCallInjector(t, ci, 20)
	s := ci.Stats()
	if s.Timeouts == 0 || s.Retries == 0 {
		t.Fatalf("no retries under 95%% loss: %+v", s)
	}
	if s.Failovers < 2 || !s.DegradedToLocal {
		t.Fatalf("expected failover through standby then degradation: %+v", s)
	}
	if s.FaultDelay <= 0 || d1 <= 20*10*sim.Microsecond {
		t.Fatalf("fault delay unaccounted: total %v, stats %+v", d1, s)
	}

	// Byte-determinism: an identical schedule replays identically.
	ci2, _ := NewCallInjector(cfg, Policy{}, 1)
	if d2 := runCallInjector(t, ci2, 20); d2 != d1 {
		t.Fatalf("replay diverged: %v != %v", d2, d1)
	}
	if s2 := ci2.Stats(); s2 != s {
		t.Fatalf("replay stats diverged: %+v != %+v", s2, s)
	}
}

func TestPolicyBackoffGrowsAndJitters(t *testing.T) {
	p := Policy{}.WithDefaults()
	if p.Backoff(2, nil) <= p.Backoff(1, nil) {
		t.Error("backoff not growing")
	}
	j1, j2 := Substream(1, 1), Substream(1, 1)
	if p.Backoff(1, j1) != p.Backoff(1, j2) {
		t.Error("jittered backoff not deterministic for equal streams")
	}
	if p.Backoff(1, j1) == p.Backoff(1, nil) {
		t.Error("jitter had no effect")
	}
}

func TestCrashChurnWindows(t *testing.T) {
	if err := (Config{CrashFor: sim.Millisecond}).Validate(); err == nil {
		t.Error("CrashFor without CrashAfter accepted")
	}
	cfg := Config{Seed: 11, CrashAfter: 20 * sim.Millisecond, CrashFor: 2 * sim.Millisecond}
	in, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := in.Server(0)
	if _, ok := srv.CrashTime(); ok {
		t.Error("churn crashes report a permanent crash time")
	}
	// Replay the schedule: churn crashes must recur (down then up again)
	// and OutageAt must bracket every down probe.
	probe, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	psrv := probe.Server(0)
	var at sim.Time
	transitions, downs := 0, 0
	wasDown := false
	for i := 0; i < 20000; i++ {
		at = at.Add(53 * sim.Microsecond)
		state, until := srv.StateAt(at)
		start, end, down := psrv.OutageAt(at)
		if (state == Crashed) != down {
			t.Fatalf("at %v: StateAt=%v but OutageAt down=%v", at, state, down)
		}
		if down {
			downs++
			if at < start || at >= end || end != until {
				t.Fatalf("at %v: outage [%v,%v) does not bracket probe (until %v)", at, start, end, until)
			}
			if d := end.Sub(start) - cfg.CrashFor; d > sim.Nanosecond || d < -sim.Nanosecond {
				t.Fatalf("outage length %v != CrashFor %v", end.Sub(start), cfg.CrashFor)
			}
		}
		if down != wasDown {
			transitions++
			wasDown = down
		}
	}
	if transitions < 4 {
		t.Fatalf("churn crashes did not recur: %d transitions, %d down probes", transitions, downs)
	}
}

func TestPermanentCrashOutageAt(t *testing.T) {
	cfg := Config{Seed: 5, CrashAfter: 10 * sim.Millisecond}
	in, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := in.Server(0)
	crashAt, ok := srv.CrashTime()
	if !ok {
		t.Fatal("no crash drawn")
	}
	if _, _, down := srv.OutageAt(crashAt.Add(-sim.Microsecond)); down {
		t.Error("down before the crash instant")
	}
	start, end, down := srv.OutageAt(crashAt.Add(sim.Microsecond))
	if !down || start != crashAt || end != 0 {
		t.Errorf("permanent outage = (%v, %v, %v); want (%v, 0, true)", start, end, down, crashAt)
	}
}

func TestDescribeMatchesInjector(t *testing.T) {
	cfg := Config{
		Seed:            21,
		DropProbability: 0.1,
		FlapEvery:       8 * sim.Millisecond, FlapOutage: 300 * sim.Microsecond,
		StallEvery: 6 * sim.Millisecond, StallFor: 200 * sim.Microsecond,
		CrashAfter: 15 * sim.Millisecond, CrashFor: 2 * sim.Millisecond,
		DegradeEvery: 10 * sim.Millisecond, DegradeFor: 400 * sim.Microsecond,
		DegradeFactor: 0.5,
	}
	horizon := 50 * sim.Millisecond
	out := cfg.Describe(2, horizon)
	for _, want := range []string{"drop", "link flaps", "degraded bandwidth", "server 0", "server 1", "crash outages"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe output missing %q:\n%s", want, out)
		}
	}
	if out != cfg.Describe(2, horizon) {
		t.Error("Describe is not deterministic")
	}
	// Describing must not perturb a live injector: a fresh injector probed
	// after Describe agrees with one probed without it.
	in, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = cfg.Describe(2, horizon)
	ref, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var at sim.Time
	for i := 0; i < 3000; i++ {
		at = at.Add(71 * sim.Microsecond)
		d1, u1 := in.LinkDown(at)
		d2, u2 := ref.LinkDown(at)
		if d1 != d2 || u1 != u2 {
			t.Fatalf("at %v: described injector diverged", at)
		}
	}
	// Permanent-crash rendering names the crash instant.
	perm := Config{Seed: 4, CrashAfter: sim.Millisecond}
	if !strings.Contains(perm.Describe(1, sim.Second), "permanent") {
		t.Error("permanent crash not described")
	}
	if !strings.Contains((Config{}).Describe(1, sim.Second), "fault-free") {
		t.Error("fault-free schedule not described")
	}
}
