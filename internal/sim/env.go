package sim

import (
	"fmt"
	"math"
	"sort"
)

// event is a scheduled wake-up for a parked process (or a start for a
// freshly spawned one).
type event struct {
	at   Time
	seq  uint64 // FIFO tie-break for simultaneous events
	proc *Proc
	link *event // intrusive timing-wheel bucket chain
	// cancelled events stay queued but are skipped when they surface; this
	// is how racing wake-ups (timeout vs signal) resolve without queue
	// surgery.
	cancelled bool
	// kind distinguishes why the process wakes, so racing wake-ups can
	// report which one won.
	kind wakeKind
}

type wakeKind uint8

const (
	wakeTimer wakeKind = iota
	wakeSignal
	wakeStart
)

// Env is a simulation environment: a virtual clock plus the sharded event
// queues and process bookkeeping that drive it. The zero value is not
// usable; create environments with NewEnv.
//
// Env is not safe for concurrent use from multiple goroutines the caller
// owns; the engine's determinism comes precisely from running exactly one
// process at a time.
//
// # Scheduling core
//
// Pending events live in per-shard queues (see Shard) drained through an
// ordered merge on (time, seq). Control transfer uses a baton scheme: the
// scheduler loop runs on whichever goroutine is yielding. When a process
// parks, it pops the next event itself — if that event is its own wake-up
// it simply continues (no handoff at all); if it belongs to another process
// it resumes that process directly (one channel operation instead of the
// classic resume/park round-trip through a central scheduler goroutine).
// The driver goroutine that called Run only regains control when the run
// segment ends. Step and Close fall back to the central-handoff path, which
// delivers exactly one wake-up per exchange.
type Env struct {
	now    Time
	seq    uint64
	shards []*Shard
	shard0 Shard // default domain, embedded to keep NewEnv to one allocation

	// The ordered merge over shard queues is a tournament tree. heads
	// mirrors each shard's queue head as a flat (time, seq) array (+Inf =
	// empty shard); merge is a winner tree over mergeCap leaves whose root,
	// merge[1], always indexes the shard holding the globally earliest
	// event. dirty lists the shards whose mirror entry is stale — a queue
	// lands there at most once (guarded by its dirty flag) when a push or
	// pop drops its cached head — and next() replays only their leaf-to-
	// root paths: O(log shards) per event. The first version of this merge
	// rescanned every shard head per event, which profiling measured at a
	// quarter of the LAMMPS strong-scaling renderer's cycles once worlds
	// grew to one shard per rank.
	heads    []headKey
	merge    []int32
	mergeCap int
	dirty    []int32

	horizon Time // current run's clock bound (+Inf outside RunUntil)
	// direct enables the baton fast path; Step and Close clear it so every
	// wake-up is delivered from the driver goroutine.
	direct  bool
	park    chan struct{} // a yielding process hands the run back to the driver
	nprocs  int           // live (started, not finished) processes
	pending int           // queued events across all shards, cancelled included
	closed  bool

	// parked tracks every process currently blocked on a Signal (not a
	// timer), so deadlocks can be reported and Close can unwind goroutines.
	parked map[*Proc]struct{}

	// free recycles consumed events, and slab batch-allocates fresh ones in
	// 64-event chunks. The hot loop of every simulation is
	// schedule→pop→deliver; without reuse each cycle would allocate one
	// event, which dominated the engine's allocation profile
	// (BenchmarkSimEngineEvents). An event is recycled only once it has
	// left both its queue and its process's waits list.
	free []*event
	slab []event

	// shardSlab batch-allocates Shard structs in 8-shard chunks: topologies
	// mint shards in groups (one per rank, per host, per OpenMP thread), and
	// sweeps pay that setup once per point, so it shows up in allocs/op.
	// ringSlab does the same for the shards' timing-wheel bucket arrays,
	// carved wheelBuckets at a time on first near-term push.
	shardSlab []Shard
	ringSlab  []*event
}

// newRing carves one timing wheel's bucket array from the ring slab.
func (e *Env) newRing() []*event {
	if len(e.ringSlab) < wheelBuckets {
		//cdivet:allow escape wheels are slab-allocated four at a time, on a shard's first near-term event
		e.ringSlab = make([]*event, 4*wheelBuckets)
	}
	r := e.ringSlab[:wheelBuckets:wheelBuckets]
	e.ringSlab = e.ringSlab[wheelBuckets:]
	return r
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	//cdivet:allow escape one environment per simulation run, built at setup
	e := &Env{park: make(chan struct{}), parked: make(map[*Proc]struct{})}
	e.shard0.env = e
	e.shards = append(e.shards, &e.shard0)
	e.heads = append(e.heads, headKey{at: math.Inf(1), seq: ^uint64(0)})
	e.horizon = Time(math.Inf(1))
	return e
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// newEvent returns a zeroed event from the freelist or the slab.
func (e *Env) newEvent() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	if len(e.slab) == 0 {
		//cdivet:allow escape freelist miss: one amortized allocation per 64 events, bounded by concurrent wake-ups
		e.slab = make([]event, 64)
	}
	ev := &e.slab[0]
	e.slab = e.slab[1:]
	return ev
}

// schedule enqueues a wake-up event for p on p's shard and registers it
// with the process, so that delivering any one of a process's outstanding
// wake-ups cancels the others.
func (e *Env) schedule(at Time, p *Proc, kind wakeKind) *event {
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev := e.newEvent()
	ev.at, ev.seq, ev.proc, ev.kind = at, e.seq, p, kind
	ev.cancelled = false
	s := p.shard
	s.push(ev, tickOf(e.now))
	if !s.q.headValid {
		e.markDirty(s)
	}
	e.pending++
	p.waits = append(p.waits, ev)
	return ev
}

// markDirty queues s for a merge-mirror refresh on the next event pop. The
// per-queue flag keeps each shard in the list at most once.
func (e *Env) markDirty(s *Shard) {
	if !s.q.dirty {
		s.q.dirty = true
		e.dirty = append(e.dirty, int32(s.id))
	}
}

// headKey is one shard's mirror entry: its queue head's (time, seq), or
// (+Inf, maxuint) for an empty shard. Packing both into one struct keeps a
// tournament comparison inside a single cache line per shard.
type headKey struct {
	at  float64
	seq uint64
}

// headLess orders shard mirror entries like evLess orders events. Two
// non-empty shards can never tie (seq is globally unique), and the Inf/Inf
// tie for empty shards resolves to "not less", which keeps replay stable.
func (e *Env) headLess(a, b int32) bool {
	x, y := &e.heads[a], &e.heads[b]
	//cdivet:allow floateq exact tie-break mirroring evLess: equal times fall through to the seq comparison
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

// mergeReplay recomputes the tournament path from shard i's leaf to the
// root after its mirror entry changed.
func (e *Env) mergeReplay(i int) {
	m := e.merge
	for n := (e.mergeCap + i) >> 1; n >= 1; n >>= 1 {
		l, r := m[2*n], m[2*n+1]
		if e.headLess(r, l) {
			m[n] = r
		} else {
			m[n] = l
		}
	}
}

// mergeRebuild resizes the tournament tree to the current shard count,
// padding the mirror with empty-shard sentinels up to the next power of
// two. It runs on shard creation (topology setup), not per event.
func (e *Env) mergeRebuild() {
	c := 1
	for c < len(e.shards) {
		c <<= 1
	}
	e.mergeCap = c
	for len(e.heads) < c {
		e.heads = append(e.heads, headKey{at: math.Inf(1), seq: ^uint64(0)})
	}
	if cap(e.merge) >= 2*c {
		e.merge = e.merge[:2*c]
	} else {
		//cdivet:allow escape reallocated only when the shard count crosses a power of two, at topology setup
		e.merge = make([]int32, 2*c)
	}
	// Pre-size the dirty list for the worst case (every shard stale) so
	// markDirty never grows it on the event path.
	if cap(e.dirty) < c {
		//cdivet:allow escape same power-of-two growth schedule as the tree itself
		nd := make([]int32, len(e.dirty), c)
		copy(nd, e.dirty)
		e.dirty = nd
	}
	for i := 0; i < c; i++ {
		e.merge[c+i] = int32(i)
	}
	for n := c - 1; n >= 1; n-- {
		l, r := e.merge[2*n], e.merge[2*n+1]
		if e.headLess(r, l) {
			e.merge[n] = r
		} else {
			e.merge[n] = l
		}
	}
}

// recycle returns a consumed event to the freelist. The caller must hold
// the only remaining reference: the event is off its queue and no process
// waits list contains it.
func (e *Env) recycle(ev *event) {
	ev.proc = nil
	ev.link = nil
	e.free = append(e.free, ev)
}

// next pops the earliest live event at or before the horizon, merging the
// shard queues by (time, seq). It returns nil when the run segment is over:
// either every queue is empty, or the earliest live event lies beyond the
// horizon (in which case the clock advances to the horizon, matching the
// contract of RunUntil).
func (e *Env) next() *event {
	cursor := tickOf(e.now)
	for {
		var bestEv *event
		var best *Shard
		if len(e.shards) == 1 {
			bestEv = e.shard0.q.peek(cursor)
			best = &e.shard0
		} else {
			// Refresh stale mirror entries and replay their tournament
			// paths; the root then indexes the shard whose head the single
			// global queue would have surfaced (seq is globally unique, so
			// the (time, seq) order is total).
			if len(e.dirty) > 0 {
				for _, id := range e.dirty {
					s := e.shards[id]
					s.q.dirty = false
					if ev := s.q.peek(cursor); ev != nil {
						e.heads[id] = headKey{at: float64(ev.at), seq: ev.seq}
					} else {
						e.heads[id] = headKey{at: math.Inf(1), seq: ^uint64(0)}
					}
					e.mergeReplay(int(id))
				}
				e.dirty = e.dirty[:0]
			}
			root := e.merge[1]
			if !math.IsInf(e.heads[root].at, 1) {
				best = e.shards[root]
				bestEv = best.q.head
			}
		}
		if bestEv == nil {
			return nil
		}
		if bestEv.cancelled {
			best.q.popHead()
			e.markDirty(best)
			e.pending--
			e.recycle(bestEv)
			continue
		}
		if bestEv.at > e.horizon {
			if e.now < e.horizon {
				e.now = e.horizon
			}
			return nil
		}
		best.q.popHead()
		e.markDirty(best)
		e.pending--
		return bestEv
	}
}

// wake consumes ev: it cancels the process's rival wake-ups, clears its
// parked registration, advances the clock, and records the wake kind. The
// caller transfers control to the returned process (or is it).
func (e *Env) wake(ev *event) *Proc {
	p := ev.proc
	for _, o := range p.waits {
		if o != ev {
			o.cancelled = true
		}
	}
	p.waits = p.waits[:0]
	if p.sigParked {
		delete(e.parked, p)
		p.sigParked = false
	}
	e.now = ev.at
	p.wake = ev.kind
	e.recycle(ev)
	return p
}

// dispatch advances the simulation from a yielding process's goroutine: it
// pops the next event and either continues inline (the event is self's own
// wake-up — the zero-handoff fast path), resumes the winning process
// directly, or hands the baton back to the driver when the segment is over.
// It reports whether self was woken inline; otherwise self must block on
// its resume channel.
func (e *Env) dispatch(self *Proc) bool {
	ev := e.next()
	if ev == nil {
		e.park <- struct{}{}
		return false
	}
	q := e.wake(ev)
	if q == self {
		return true
	}
	q.resume <- struct{}{}
	return false
}

// Spawn creates a process in the default shard running fn and schedules it
// to start at the current virtual time. fn receives the process handle,
// through which all blocking primitives are reached. Spawn may be called
// before Run or from inside a running process. Processes modelling distinct
// hardware domains should be spawned through per-domain shards (NewShard)
// instead, which bounds the queue each of their wake-ups touches.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.spawnAt(&e.shard0, 0, name, fn)
}

// SpawnAt is Spawn with a start delay.
func (e *Env) SpawnAt(delay Duration, name string, fn func(p *Proc)) *Proc {
	return e.spawnAt(&e.shard0, delay, name, fn)
}

func (e *Env) spawnAt(s *Shard, delay Duration, name string, fn func(p *Proc)) *Proc {
	if e.closed {
		panic("sim: Spawn on closed Env")
	}
	if delay < 0 {
		panic("sim: negative spawn delay")
	}
	//cdivet:allow escape one handle and resume channel per spawned process, at spawn time not per iteration
	p := &Proc{env: e, shard: s, name: name, resume: make(chan struct{})}
	p.waits = p.waitsBuf[:0]
	e.nprocs++
	go func() {
		defer func() {
			r := recover()
			if r != nil && r != errAborted {
				// Re-panicking application errors on the scheduler's stack
				// would be nicer, but surfacing them here keeps the trace.
				panic(r)
			}
			p.finished = true
			e.nprocs--
			if !e.direct {
				e.park <- struct{}{}
				return
			}
			// Baton mode: the dying goroutine keeps the scheduler loop
			// going. A finished process has no pending wake-ups, so the
			// next event always belongs to someone else (or ends the run).
			ev := e.next()
			if ev == nil {
				e.park <- struct{}{}
				return
			}
			e.wake(ev).resume <- struct{}{}
		}()
		<-p.resume
		if p.aborted {
			return
		}
		fn(p)
	}()
	e.schedule(e.now.Add(delay), p, wakeStart)
	return p
}

// Run drives the simulation until no runnable events remain, then returns
// the final virtual time. Processes still blocked on Signals at that point
// constitute a deadlock; query them with Blocked.
func (e *Env) Run() Time {
	return e.RunUntil(Time(math.Inf(1)))
}

// RunUntil drives the simulation until the event queues are exhausted or
// the next event lies beyond horizon. The clock never advances past
// horizon. Within the run, wake-ups are delivered via the baton fast path:
// control flows process-to-process without bouncing through this
// goroutine, which only resumes when the segment ends.
func (e *Env) RunUntil(horizon Time) Time {
	if e.closed {
		panic("sim: RunUntil on closed Env")
	}
	e.horizon = horizon
	e.direct = true
	ev := e.next()
	if ev == nil {
		e.direct = false
		return e.now
	}
	e.wake(ev).resume <- struct{}{}
	<-e.park
	e.direct = false
	return e.now
}

// Step runs a single event and reports whether one was available. Unlike
// RunUntil, the woken process hands control straight back after one
// wake-up, so Step always pays the full driver round-trip.
func (e *Env) Step() bool {
	e.horizon = Time(math.Inf(1))
	e.direct = false
	ev := e.next()
	if ev == nil {
		return false
	}
	e.wake(ev).resume <- struct{}{}
	<-e.park
	return true
}

// Blocked returns the names of processes parked on Signals with no pending
// wake-up — the processes that would deadlock if Run returned now. The
// result is sorted for stable test output.
func (e *Env) Blocked() []string {
	names := make([]string, 0, len(e.parked))
	//cdivet:allow maporder keys are collected unordered and sorted on the next line
	for p := range e.parked {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return names
}

// Live returns the number of processes that have started but not finished.
func (e *Env) Live() int { return e.nprocs }

// Close unwinds every parked process goroutine and marks the environment
// unusable. It must not be called from inside a process. Close is safe to
// call after Run; environments that ran to completion with no blocked
// processes have nothing to unwind.
func (e *Env) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.direct = false
	e.horizon = Time(math.Inf(1))
	// Unwind processes parked on signals.
	//cdivet:allow maporder teardown after results are final: aborted processes run no model code, so unwind order is unobservable
	for p := range e.parked {
		for _, o := range p.waits {
			o.cancelled = true
		}
		p.waits = nil
		p.aborted = true
		p.resume <- struct{}{}
		<-e.park
	}
	//cdivet:allow escape teardown: Close runs once per environment
	e.parked = map[*Proc]struct{}{}
	// Unwind processes parked on timers (or not yet started), including
	// wake-ups still sitting in wheel buckets or far heaps.
	for {
		ev := e.next()
		if ev == nil {
			return
		}
		p := e.wake(ev)
		p.aborted = true
		p.resume <- struct{}{}
		<-e.park
	}
}

// String summarizes the environment state for debugging.
func (e *Env) String() string {
	return fmt.Sprintf("sim.Env{now: %v, queued: %d, live: %d, blocked: %d, shards: %d}",
		e.now, e.pending, e.nprocs, len(e.parked), len(e.shards))
}
