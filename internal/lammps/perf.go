package lammps

import (
	"fmt"
	"math"

	"repro/internal/cuda"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/slack"
	"repro/internal/trace"
)

// Cost-model constants, calibrated so that single-process runs reproduce
// the paper's Table I baselines (box 20..120 between 1.09 and 108 ms/step)
// and strong scaling reproduces Figure 2's shapes. See DESIGN.md.
const (
	// CPUPerAtom is the rank- and thread-parallel host work per atom per
	// step (integration, neighbor maintenance, buffer packing).
	CPUPerAtom = 9.2 * sim.Nanosecond
	// SerialPerAtom is host work replicated on every rank and parallel
	// only across its threads (global bookkeeping, reductions).
	SerialPerAtom = 1.0 * sim.Nanosecond
	// StepFixed is the per-step fixed serial cost (timestepping
	// bookkeeping, output, driver overhead).
	StepFixed = 500 * sim.Microsecond
	// CtxSwitch is the GPU context-switch cost between ranks sharing the
	// device without MPS.
	CtxSwitch = 850 * sim.Microsecond

	// PosBytesPerAtom is the per-step host-to-device position transfer.
	PosBytesPerAtom = 12
	// ForceBytesPerAtom is the per-step device-to-host force (+energy/
	// virial) transfer.
	ForceBytesPerAtom = 24
	// HaloBytesPerAtom is the wire size of one exchanged ghost atom.
	HaloBytesPerAtom = 32
	// NeighborsHalf is the average half-neighbor-list length at the
	// benchmark density (full count ≈ 55).
	NeighborsHalf = 27
	// DefaultRebuildEvery is the neighbor-list rebuild period in steps.
	DefaultRebuildEvery = 10
	// CellMetaBytes is the small host-to-device cell/bin metadata copy
	// accompanying each rebuild.
	CellMetaBytes = 512 << 10
	// DefaultSteps is the paper's run length for all analyses.
	DefaultSteps = 5000
)

// PerfConfig describes one performance-mode run.
type PerfConfig struct {
	// BoxSize in the paper's units (box 20 = 32 000 atoms).
	BoxSize int
	// Procs is the number of MPI ranks sharing the node's GPU.
	Procs int
	// Threads is the OpenMP thread count per rank.
	Threads int
	// Steps is the number of MD steps (0 selects DefaultSteps).
	Steps int
	// RebuildEvery is the neighbor rebuild period (0 selects the default).
	RebuildEvery int
	// Spec selects the GPU; the zero value selects gpu.A100() with the
	// calibrated multi-process context-switch cost.
	Spec gpu.Spec
	// Slack is injected after every link-crossing CUDA call on every rank
	// (0 = none) — used to validate the proxy-based predictions directly.
	Slack sim.Duration
	// Faults, when non-nil, charges deterministic fault-recovery delays
	// (timeouts, retries, failover) after link-crossing calls on every
	// rank; the caller keeps the pointer and reads its Stats afterwards.
	Faults *faults.CallInjector
	// Record attaches an NSys-style recorder.
	Record bool
}

func (c PerfConfig) withDefaults() PerfConfig {
	if c.Procs == 0 {
		c.Procs = 1
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.Steps == 0 {
		c.Steps = DefaultSteps
	}
	if c.RebuildEvery == 0 {
		c.RebuildEvery = DefaultRebuildEvery
	}
	if c.Spec.Name == "" {
		c.Spec = gpu.A100()
		c.Spec.ContextSwitch = CtxSwitch
	}
	return c
}

func (c PerfConfig) validate() error {
	if c.BoxSize <= 0 {
		return fmt.Errorf("lammps: box size %d", c.BoxSize)
	}
	if c.Procs < 1 || c.Threads < 1 || c.Steps < 1 || c.RebuildEvery < 1 {
		return fmt.Errorf("lammps: invalid run shape procs=%d threads=%d steps=%d rebuild=%d",
			c.Procs, c.Threads, c.Steps, c.RebuildEvery)
	}
	if c.Slack < 0 {
		return fmt.Errorf("lammps: negative slack %v", c.Slack)
	}
	return nil
}

// PerfResult reports one performance-mode run.
type PerfResult struct {
	BoxSize int
	Atoms   int
	Procs   int
	Threads int
	Steps   int

	// Runtime is the measured wall (virtual) time of the stepping loop.
	Runtime sim.Duration
	// StepTime is Runtime / Steps.
	StepTime sim.Duration
	// FullRuntime extrapolates to the paper's 5000-step runs (Table I).
	FullRuntime sim.Duration
	// GPUUtilization is compute-engine busy time over the loop.
	GPUUtilization float64
	// CtxSwitches counts device context switches during the loop.
	CtxSwitches int64
	// DelayedCalls counts slack-delayed CUDA calls (with Slack > 0).
	DelayedCalls int64
	// Trace is the recording when Record was set.
	Trace *trace.Trace
}

// RunPerf executes one LAMMPS performance-mode run: Procs MPI ranks, each
// stepping its sub-domain, offloading the force kernel to the shared GPU
// and exchanging halos with its neighbors.
func RunPerf(cfg PerfConfig) (PerfResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return PerfResult{}, err
	}
	atoms := Atoms(cfg.BoxSize)
	perRank := atoms / cfg.Procs
	if perRank < 1 {
		return PerfResult{}, fmt.Errorf("lammps: %d ranks for %d atoms", cfg.Procs, atoms)
	}

	env := sim.NewEnv()
	defer env.Close()
	dev, err := gpu.NewDevice(env, cfg.Spec)
	if err != nil {
		return PerfResult{}, err
	}

	var rec *trace.Recorder
	if cfg.Record {
		rec = trace.NewRecorder(fmt.Sprintf("lammps-box%d-p%d-t%d", cfg.BoxSize, cfg.Procs, cfg.Threads))
		dev.Listen(rec)
	}

	// One CUDA context (and so one default stream) per rank: separate
	// processes in production, which is what makes the device pay context
	// switches between ranks.
	ctxs := make([]*cuda.Context, cfg.Procs)
	injs := make([]*slack.Injector, cfg.Procs)
	for i := range ctxs {
		ctxs[i] = cuda.NewContext(dev, cuda.Config{})
		if rec != nil {
			ctxs[i].Interpose(rec)
		}
		injs[i] = slack.New(cfg.Slack)
		ctxs[i].Interpose(injs[i])
		if cfg.Faults != nil {
			ctxs[i].Interpose(cfg.Faults)
		}
	}

	world := mpi.NewWorld(env, cfg.Procs, mpi.IntraNode())

	// Device buffers per rank: positions+forces resident, sized once.
	posBytes := int64(perRank) * PosBytesPerAtom
	forceBytes := int64(perRank) * ForceBytesPerAtom
	haloAtoms := haloCount(perRank)
	haloBytes := int64(haloAtoms) * HaloBytesPerAtom

	cpuWork := sim.Duration(float64(CPUPerAtom) * float64(perRank) / float64(cfg.Threads))
	serialWork := sim.Duration(float64(SerialPerAtom) * float64(atoms) / float64(cfg.Threads))

	var rankErr error
	world.SpawnAll(func(r *mpi.Rank) {
		p := r.Proc()
		ctx := ctxs[r.Rank()]
		dPos, err := ctx.Malloc(p, posBytes+haloBytes)
		if err != nil {
			rankErr = err
			return
		}
		dForce, err := ctx.Malloc(p, forceBytes)
		if err != nil {
			rankErr = err
			return
		}
		dNeigh, err := ctx.Malloc(p, int64(perRank)*NeighborsHalf*4+CellMetaBytes)
		if err != nil {
			rankErr = err
			return
		}

		for step := 0; step < cfg.Steps; step++ {
			// Host: integration and neighbor maintenance (thread-parallel),
			// then replicated bookkeeping.
			p.Sleep(cpuWork)
			p.Sleep(serialWork)

			// Halo exchange with the six face neighbors (ring pairs per
			// dimension in this 1-D decomposition of the rank space).
			if r.Size() > 1 {
				per := haloBytes / 6
				for dim := 0; dim < 3; dim++ {
					up := (r.Rank() + 1) % r.Size()
					down := (r.Rank() - 1 + r.Size()) % r.Size()
					r.Sendrecv(up, 100+dim, per, nil, down, 100+dim)
					r.Sendrecv(down, 200+dim, per, nil, up, 200+dim)
				}
			}

			// GPU offload: positions over, force kernel, forces back.
			if err := ctx.MemcpyH2D(p, dPos, posBytes); err != nil {
				rankErr = err
				return
			}
			if step%cfg.RebuildEvery == 0 {
				if err := ctx.MemcpyH2D(p, dNeigh, CellMetaBytes); err != nil {
					rankErr = err
					return
				}
				ctx.LaunchSync(p, gpu.NeighborBuild(perRank, NeighborsHalf), nil)
			}
			ctx.LaunchSync(p, ljForceKernel(perRank), nil)
			if err := ctx.MemcpyD2H(p, dForce, forceBytes); err != nil {
				rankErr = err
				return
			}

			// Fixed serial step cost (replicated; overlaps across ranks).
			p.Sleep(StepFixed)
			r.Barrier()
		}
		ctx.MustFree(p, dPos)
		ctx.MustFree(p, dForce)
		ctx.MustFree(p, dNeigh)
	})

	if rec != nil {
		rec.Start(env)
	}
	start := env.Now()
	env.Run()
	if rankErr != nil {
		return PerfResult{}, rankErr
	}
	runtime := env.Now().Sub(start)
	if rec != nil {
		rec.Stop(env)
	}

	res := PerfResult{
		BoxSize:        cfg.BoxSize,
		Atoms:          atoms,
		Procs:          cfg.Procs,
		Threads:        cfg.Threads,
		Steps:          cfg.Steps,
		Runtime:        runtime,
		StepTime:       runtime / sim.Duration(cfg.Steps),
		FullRuntime:    runtime / sim.Duration(cfg.Steps) * sim.Duration(DefaultSteps),
		GPUUtilization: float64(dev.Counters().ComputeBusy) / float64(runtime),
		CtxSwitches:    dev.Counters().CtxSwitches,
	}
	for _, in := range injs {
		res.DelayedCalls += in.DelayedCalls()
	}
	if rec != nil {
		res.Trace = rec.Trace()
	}
	return res, nil
}

// ljForceKernel returns the per-rank LJ force kernel with the device
// efficiency degrading for small sub-domains (under-filled SMs) — the
// effect that flattens strong scaling for small boxes.
func ljForceKernel(atomsPerRank int) gpu.Kernel {
	k := gpu.LJForce(atomsPerRank, NeighborsHalf)
	k.Efficiency = 0.22 * float64(atomsPerRank) / (float64(atomsPerRank) + 50000)
	return k
}

// haloCount estimates the ghost atoms a rank of n owned atoms exchanges
// per step: the six domain faces, one cutoff deep.
func haloCount(n int) int {
	c := math.Cbrt(float64(n))
	return int(6 * 1.2 * c * c)
}
