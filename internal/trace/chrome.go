package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry in the Chrome Trace Event Format ("X" complete
// events), the JSON array form loadable by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports the recording in Chrome Trace Event Format so
// it can be inspected in chrome://tracing or Perfetto — the visual
// counterpart of the NSys timelines the paper reads. Kernels and copies
// appear as complete events on per-stream tracks; API calls on a host
// track (pid 0 = host, pid 1 = device, pid 2 = application spans).
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	var events []chromeEvent
	toUs := func(x float64) float64 { return x * 1e6 }

	for _, c := range t.Calls {
		events = append(events, chromeEvent{
			Name: c.Name,
			Cat:  "api," + c.Class.String(),
			Ph:   "X",
			Ts:   toUs(float64(c.Begin)),
			Dur:  toUs(float64(c.End - c.Begin)),
			Pid:  0,
			Tid:  0,
			Args: map[string]any{"bytes": c.Bytes},
		})
	}
	for _, k := range t.Kernels {
		events = append(events, chromeEvent{
			Name: k.Name,
			Cat:  "kernel",
			Ph:   "X",
			Ts:   toUs(float64(k.Start)),
			Dur:  toUs(float64(k.End - k.Start)),
			Pid:  1,
			Tid:  k.Stream,
			Args: map[string]any{
				"warmup_us":  toUs(float64(k.Warmup)),
				"idlegap_us": toUs(float64(k.IdleGap)),
			},
		})
	}
	for _, c := range t.Copies {
		events = append(events, chromeEvent{
			Name: "memcpy " + c.Dir.String(),
			Cat:  "memcpy",
			Ph:   "X",
			Ts:   toUs(float64(c.Start)),
			Dur:  toUs(float64(c.End - c.Start)),
			Pid:  1,
			Tid:  1000 + c.Stream, // copy tracks below the kernel tracks
			Args: map[string]any{"bytes": c.Bytes},
		})
	}

	for _, s := range t.AppSpans {
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			Ts:   toUs(float64(s.Start)),
			Dur:  toUs(float64(s.End - s.Start)),
			Pid:  2,
			Tid:  s.Track,
		})
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(events); err != nil {
		return fmt.Errorf("trace: encoding chrome trace: %w", err)
	}
	return nil
}
