package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyTree clones a corpus directory (including subpackages) into a
// scratch dir, skipping underscore-prefixed entries such as _golden.
func copyTree(t *testing.T, src string) string {
	t.Helper()
	tmp := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if rel == "." {
			return nil
		}
		if strings.HasPrefix(filepath.Base(rel), "_") {
			if info.IsDir() {
				return filepath.SkipDir
			}
			return nil
		}
		dst := filepath.Join(tmp, rel)
		if info.IsDir() {
			return os.MkdirAll(dst, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(dst, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return tmp
}

// TestShardSafetyFixGolden: the directive-insertion fix for the
// mutate-then-fire handoff must produce byte-identical output to the
// committed golden, and the fixed file must silence exactly that finding
// (the corpus's other findings are deliberate and fixless).
func TestShardSafetyFixGolden(t *testing.T) {
	tmp := copyTree(t, filepath.Join("testdata", "shardsafety"))
	m, err := LoadDirAs(tmp, corpusPath)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunModule(m, Config{Analyzers: []*Analyzer{ShardSafety}})
	if err != nil {
		t.Fatal(err)
	}
	fixable := 0
	for _, f := range findings {
		if f.Fix != nil {
			fixable++
		}
	}
	if fixable != 1 {
		t.Fatalf("want exactly 1 fixable handoff finding, got %d of %d total", fixable, len(findings))
	}
	res, err := ApplyFixes(findings)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || len(res.Fixed) != 1 {
		t.Fatalf("want 1 applied fix in 1 file, got %d in %d", res.Applied, len(res.Fixed))
	}
	for _, file := range sortedFiles(res.Fixed) {
		if err := os.WriteFile(file, res.Fixed[file], 0o644); err != nil {
			t.Fatal(err)
		}
		compareGolden(t, filepath.Join("testdata", "shardsafety", "_golden", filepath.Base(file)+".golden"), res.Fixed[file])
	}

	m, err = LoadDirAs(tmp, corpusPath)
	if err != nil {
		t.Fatalf("fixed corpus no longer loads: %v", err)
	}
	after, err := RunModule(m, Config{Analyzers: []*Analyzer{ShardSafety}})
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(findings)-1 {
		t.Errorf("fixed corpus reports %d findings, want %d", len(after), len(findings)-1)
	}
	for _, f := range after {
		if f.Fix != nil {
			t.Errorf("fixed corpus still reports a fixable finding: %s", f)
		}
	}
}

// TestShardAnnotationMalformed: broken //cdivet:shard directives are
// findings, not silent no-ops — an annotation that quietly parses to
// nothing would disable the very checking it was written to enable.
func TestShardAnnotationMalformed(t *testing.T) {
	tmp := t.TempDir()
	src := `package corpus

type widget struct {
	count int //cdivet:shard()
}

//cdivet:shard(two words)
type gadget struct {
	depth int
}
`
	if err := os.WriteFile(filepath.Join(tmp, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadDirAs(tmp, corpusPath)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunModule(m, Config{Analyzers: []*Analyzer{ShardSafety}})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("want 2 malformed-annotation findings, got %d: %v", len(findings), findings)
	}
	for _, f := range findings {
		if !strings.Contains(f.Message, "malformed shard annotation") {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}
