// Command proxysweep runs the slack proxy grid and emits CSV — the raw
// data behind Figure 3 and the response surfaces, ready for plotting.
//
//	proxysweep -iters 20 > sweep.csv
//	proxysweep -sizes 512,2048 -threads 1,8 -slacks 1us,100us,10ms
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	cdi "repro"
)

func main() {
	sizesFlag := flag.String("sizes", "512,2048,8192", "matrix sizes")
	threadsFlag := flag.String("threads", "1,2,4,8", "thread counts")
	slacksFlag := flag.String("slacks", "1us,10us,100us,1ms,10ms", "slack values (us/ms/s suffixes)")
	iters := flag.Int("iters", 20, "loop iterations (0 = paper-faithful 30s sizing)")
	jsonOut := flag.String("json", "", "also save the sweep as JSON (reloadable by slackprof -sweep)")
	flag.Parse()

	sizes, err := parseInts(*sizesFlag)
	if err != nil {
		log.Fatalf("sizes: %v", err)
	}
	threads, err := parseInts(*threadsFlag)
	if err != nil {
		log.Fatalf("threads: %v", err)
	}
	slacks, err := parseDurations(*slacksFlag)
	if err != nil {
		log.Fatalf("slacks: %v", err)
	}

	pts, err := cdi.ProxySweep(sizes, threads, slacks, *iters)
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := cdi.WriteSweep(f, pts); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sweep saved to %s\n", *jsonOut)
	}

	w := csv.NewWriter(os.Stdout)
	write := func(record []string) {
		if err := w.Write(record); err != nil {
			log.Fatal(err)
		}
	}
	write([]string{
		"matrix_size", "threads", "slack_us", "penalty",
		"kernel_time_s", "iters", "loop_time_s", "corrected_time_s", "delayed_calls",
	})
	for _, pt := range pts {
		write([]string{
			strconv.Itoa(pt.MatrixSize),
			strconv.Itoa(pt.Threads),
			fmt.Sprintf("%g", pt.Slack.Micros()),
			fmt.Sprintf("%g", pt.Penalty),
			fmt.Sprintf("%g", pt.Result.KernelTime.Seconds()),
			strconv.Itoa(pt.Result.Iters),
			fmt.Sprintf("%g", pt.Result.LoopTime.Seconds()),
			fmt.Sprintf("%g", pt.Result.CorrectedTime.Seconds()),
			strconv.FormatInt(pt.Result.DelayedCalls, 10),
		})
	}
	w.Flush()
	if err := w.Error(); err != nil {
		log.Fatal(err)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseDurations(s string) ([]cdi.Duration, error) {
	var out []cdi.Duration
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		var unit cdi.Duration
		var trim string
		switch {
		case strings.HasSuffix(f, "us"):
			unit, trim = cdi.Microsecond, strings.TrimSuffix(f, "us")
		case strings.HasSuffix(f, "ms"):
			unit, trim = cdi.Millisecond, strings.TrimSuffix(f, "ms")
		case strings.HasSuffix(f, "s"):
			unit, trim = cdi.Second, strings.TrimSuffix(f, "s")
		default:
			return nil, fmt.Errorf("duration %q needs a us/ms/s suffix", f)
		}
		v, err := strconv.ParseFloat(trim, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, cdi.Duration(v)*unit)
	}
	return out, nil
}
