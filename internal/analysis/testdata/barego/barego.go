// Corpus for the barego analyzer: goroutines outside internal/sim. The
// corpus loads under a synthetic repro/internal/... path so the rule is in
// scope. Lines marked "// want" must produce exactly one finding.
package corpus

import "sync"

func bareGoroutines(ch chan int) {
	go func() { ch <- 1 }() // want
	go helper(ch)           // want
}

func helper(ch chan int) { ch <- 2 }

func suppressedGoroutine(ch chan int) {
	//cdivet:allow barego corpus: demonstrates a justified suppression
	go helper(ch)
}

// closuresAreFine: only the go keyword creates scheduler-owned
// concurrency; plain function values stay on the caller's stack.
func closuresAreFine(ch chan int) {
	f := func() { ch <- 3 }
	f()
}

// structuredPool is the exempt shape: every worker Dones a sync.WaitGroup
// the spawning function Waits on after the go statement, so no goroutine
// outlives the pool.
func structuredPool(ch chan int, work []int) {
	var wg sync.WaitGroup
	for range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch <- 4
		}()
	}
	wg.Wait()
}

// nonDeferredDone also counts: the join is what matters, not how Done is
// reached.
func nonDeferredDone(ch chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		ch <- 5
		wg.Done()
	}()
	wg.Wait()
}

// poolMissingWait: a Done with no Wait is not a join — the goroutine can
// outlive the function.
func poolMissingWait(ch chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want
		defer wg.Done()
		ch <- 6
	}()
}

// namedFunctionPool: the Done call lives in another function, so the join
// is not locally checkable and the analyzer stays conservative.
func namedFunctionPool(ch chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go poolWorker(&wg, ch) // want
	wg.Wait()
}

func poolWorker(wg *sync.WaitGroup, ch chan int) {
	defer wg.Done()
	ch <- 7
}

// wrongWaitGroup: Done and Wait on different WaitGroups join nothing.
func wrongWaitGroup(ch chan int) {
	var producers, consumers sync.WaitGroup
	producers.Add(1)
	go func() { // want
		defer producers.Done()
		ch <- 8
	}()
	consumers.Wait()
}

// simWaitGroupIsNotAJoin: a same-named type from another package must not
// satisfy the exemption — only package sync's WaitGroup really blocks the
// spawning OS thread until the worker finishes.
type localWaitGroup struct{}

func (localWaitGroup) Add(int) {}
func (localWaitGroup) Done()   {}
func (localWaitGroup) Wait()   {}

func simWaitGroupIsNotAJoin(ch chan int) {
	var wg localWaitGroup
	wg.Add(1)
	go func() { // want
		defer wg.Done()
		ch <- 9
	}()
	wg.Wait()
}
