// Package producer manufactures values whose content depends on map
// iteration order without ever emitting them. No per-file rule can flag
// these functions — nothing here prints, appends to output, or schedules —
// so catching a consumer that publishes the returned values takes the
// module-wide taint analysis.
package producer

import "sort"

// ArbitraryKey returns whichever key Go's randomized map walk yields first.
// maporder's order-dependent-effect list (append/print/send/spawn) has
// nothing to match in this body: the nondeterminism escapes via return.
func ArbitraryKey(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

// FloatSum accumulates float64 in map order. Float addition does not
// associate, so the low bits of the result change with the walk order.
func FloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// SortedKeys launders iteration order through an in-place sort; callers
// receive a deterministic slice.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //cdivet:allow maporder keys are collected unordered and sorted on the next line
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Count accumulates an integer: commutative, so order-independent.
func Count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
