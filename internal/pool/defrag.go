package pool

import "repro/internal/sim"

// The defragmenter. Churn shatters whole-server free blocks into
// sub-gang fragments; the sweep picks the emptiest migratable server and
// consolidates its allocations onto stranded fragments elsewhere, paying
// real migration cost (handle-table bytes replayed over the crossed
// fabric tier) to mint a whole-server hole. Sweeps are planned against a
// scratch copy of the free list and executed only when the plan strictly
// reduces stranded capacity (or provably unblocks the queue), so a
// well-packed pool — the zero-churn arm — never migrates at all.

// maybeDefrag arms a consolidation sweep when enabled, idle, due, and
// worthwhile.
func (s *Scheduler) maybeDefrag(now sim.Time) {
	if !s.cfg.Defrag || s.defragBusy || now.Sub(s.nextDefrag) < 0 {
		return
	}
	if len(s.queue) == 0 && s.stranded < s.cfg.StrandedTrigger {
		return
	}
	if s.sweep(now) {
		s.nextDefrag = now.Add(s.cfg.DefragEvery)
	}
}

// move is one planned migration.
type move struct {
	id   int
	from int
	to   int
}

// sweep picks a victim server, plans best-fit single-server targets for
// its allocations against a scratch free list, and — if the plan
// strictly reduces stranded capacity or unblocks a queued gang — commits
// the capacity swap and spawns the copy processes. Reports whether a
// sweep ran.
func (s *Scheduler) sweep(now sim.Time) bool {
	v := s.pickVictim()
	if v < 0 {
		return false
	}
	moves, ok := s.planSweep(v)
	if !ok {
		return false
	}
	for _, mv := range moves {
		s.executeMove(now, mv)
	}
	if s.sweepOutstanding > 0 {
		s.defragBusy = true
	}
	return true
}

// pickVictim returns the live, unpinned server with the smallest nonzero
// batch occupancy whose every allocation is single-server (multi-server
// gangs and serving replicas do not migrate), or -1.
func (s *Scheduler) pickVictim() int {
	best, bestOcc := -1, 0
	for sv := range s.free {
		if !s.live[sv] || s.pinned[sv] > 0 {
			continue
		}
		occ := s.topo.GPUsPerServer - s.free[sv]
		if occ <= 0 || (best >= 0 && occ >= bestOcc) {
			continue
		}
		movable := true
		for _, id := range s.jobsOn[sv] {
			if len(s.allocs[id].slices) != 1 {
				movable = false
				break
			}
		}
		if movable {
			best, bestOcc = sv, occ
		}
	}
	return best
}

// planSweep assigns each of the victim's jobs a best-fit target against a
// scratch free list: prefer stranded fragments (free < refGang), then the
// tightest leftover, then the lowest index. The plan only stands if the
// exact stranded-capacity delta is negative, or the queue is nonempty and
// the minted whole-server hole beats today's largest block.
func (s *Scheduler) planSweep(v int) ([]move, bool) {
	plan := append(s.planFree[:0], s.free...)
	s.planFree = plan
	moves := s.scratchMoves[:0]
	for _, id := range s.jobsOn[v] {
		g := s.jobs[id].Gang
		best, bestScore := -1, 0
		for sv, f := range plan {
			if sv == v || !s.live[sv] || f < g {
				continue
			}
			// Stranded donors sort ahead of whole blocks; within a class,
			// tighter leftover wins; ties go to the lower index.
			score := (f - g) * 2
			if f >= s.refGang {
				score++
			}
			if best < 0 || score < bestScore {
				best, bestScore = sv, score
			}
		}
		if best < 0 {
			s.scratchMoves = moves
			return nil, false
		}
		plan[best] -= g
		moves = append(moves, move{id: id, from: v, to: best})
	}
	s.scratchMoves = moves

	// The victim ends fully free (never stranded); targets re-price at
	// their planned fragments.
	delta := -strandedContrib(s.free[v], s.capEff(v), s.refGang)
	for sv, f := range plan {
		if sv != v && f != s.free[sv] {
			capEff := s.capEff(sv)
			delta += strandedContrib(f, capEff, s.refGang) - strandedContrib(s.free[sv], capEff, s.refGang)
		}
	}
	if delta < 0 {
		return moves, true
	}
	if len(s.queue) > 0 && s.topo.GPUsPerServer > s.largest() {
		return moves, true
	}
	return nil, false
}

// executeMove commits one migration: the capacity swap is atomic at copy
// start (pre-copy live migration — the source keeps running until the
// replay lands, so goodput sees no gap), the handle-table bytes are
// charged at the crossed tier, and the copy process on the target's rack
// shard reports back when the replay completes.
func (s *Scheduler) executeMove(now sim.Time, mv move) {
	a := &s.allocs[mv.id]
	j := s.jobs[mv.id]
	s.unclaim(mv.from, j.Gang)
	s.claim(mv.to, j.Gang)
	s.removeJobFrom(mv.from, mv.id)
	s.jobsOn[mv.to] = append(s.jobsOn[mv.to], mv.id)
	a.slices[0] = slice{server: mv.to, gpus: j.Gang}

	cross := s.topo.CrossingScale(mv.from, mv.to)
	cost := s.cfg.MigratePenalty + s.migCost[j.Shape][gangIdx(j.Gang)][cross]
	s.stats.Migrations++
	s.stats.MigrationBytes += int64(j.Gang) * j.Shape.BytesPerGPU()
	s.sweepOutstanding++
	id := mv.id
	s.racks[s.topo.RackOf(mv.to)].SpawnAt(cost, "pool-migrate", func(mp *sim.Proc) {
		s.post(msgMigrated, id)
	})
}
