package gpu

import (
	"fmt"
	"strconv"

	"repro/internal/sim"
)

// Direction labels a memory transfer's endpoints.
type Direction int

const (
	// H2D is host-to-device.
	H2D Direction = iota
	// D2H is device-to-host.
	D2H
	// D2D is device-to-device (within one GPU's memory).
	D2D
)

// String names the direction as CUDA does.
func (d Direction) String() string {
	switch d {
	case H2D:
		return "HtoD"
	case D2H:
		return "DtoH"
	case D2D:
		return "DtoD"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// KernelEvent describes one completed kernel execution.
type KernelEvent struct {
	Device  string
	Stream  int
	Name    string
	Enqueue sim.Time
	Start   sim.Time
	End     sim.Time
	// Warmup is the extra execution time charged by the starvation model
	// because the compute engine was idle when this kernel started.
	Warmup sim.Duration
	// IdleGap is the compute-engine idle time that preceded this kernel
	// (zero when the device was already busy).
	IdleGap sim.Duration
	// CtxSwitch is the context-switch delay paid before Start because the
	// previous kernel came from a different stream. It is not part of
	// Duration: traces report pure kernel execution time, as NSys does.
	CtxSwitch sim.Duration
}

// Duration returns the kernel's execution time.
func (e KernelEvent) Duration() sim.Duration { return e.End.Sub(e.Start) }

// CopyEvent describes one completed memory transfer.
type CopyEvent struct {
	Device  string
	Stream  int
	Dir     Direction
	Bytes   int64
	Enqueue sim.Time
	Start   sim.Time
	End     sim.Time
}

// Duration returns the transfer's execution time.
func (e CopyEvent) Duration() sim.Duration { return e.End.Sub(e.Start) }

// Listener receives completion events; the trace package implements it.
type Listener interface {
	OnKernel(ev KernelEvent)
	OnCopy(ev CopyEvent)
}

// Counters aggregates device activity.
type Counters struct {
	Kernels     int64
	CopiesH2D   int64
	CopiesD2H   int64
	CopiesD2D   int64
	BytesH2D    int64
	BytesD2H    int64
	BytesD2D    int64
	ComputeBusy sim.Duration // total kernel execution time, warm-up included
	CopyBusy    sim.Duration // total DMA engine occupancy
	WarmupTotal sim.Duration // total starvation penalty charged
	IdleEvents  int64        // kernels that started on an idle compute engine
	CtxSwitches int64        // stream-to-stream kernel transitions charged
	CtxTotal    sim.Duration // total context-switch time charged
}

// Device is one simulated GPU.
type Device struct {
	env *sim.Env
	// shard is the event domain for the device's stream runners.
	//cdivet:shard(gpu.device)
	shard *sim.Shard
	spec  Spec
	mem   *allocator

	compute *sim.Resource // kernel execution serializes on the device
	dma     *sim.Resource

	// Execution-history state, written only by the device's own stream
	// runners (execKernel/execCopy).
	//cdivet:shard(gpu.device)
	lastComputeEnd sim.Time
	//cdivet:shard(gpu.device)
	lastStream int
	//cdivet:shard(gpu.device)
	everComputed bool

	//cdivet:shard(gpu.device)
	counters  Counters
	listeners []Listener

	streams      []*Stream
	nextStreamID int
	allIdle      *sim.WaitGroup // counts outstanding ops device-wide

	// opSlab hands out Ops in 64-op chunks: enqueue paths are the hottest
	// allocation sites in the serving and proxy benchmarks, and callers
	// keep op pointers for arbitrarily long (events, deferred waits), so
	// ops are never recycled — just batch-allocated.
	opSlab []Op

	lost bool // the physical device disappeared (server crash, failover)
}

// newOp returns a zeroed Op from the device's slab.
func (d *Device) newOp() *Op {
	if len(d.opSlab) == 0 {
		//cdivet:allow escape slab refill: one amortized allocation per 64 ops
		d.opSlab = make([]Op, 64)
	}
	o := &d.opSlab[0]
	d.opSlab = d.opSlab[1:]
	return o
}

// NewDevice creates a device with the given spec on env.
func NewDevice(env *sim.Env, spec Spec) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	//cdivet:allow escape constructed once per simulated GPU at setup, not per iteration
	return &Device{
		env:     env,
		shard:   env.NewShard(),
		spec:    spec,
		mem:     newAllocator(spec.MemoryBytes),
		compute: sim.NewResource(env, 1),
		dma:     sim.NewResource(env, spec.DMAEngines),
		allIdle: sim.NewWaitGroup(env),
	}, nil
}

// Env returns the simulation environment the device lives on.
func (d *Device) Env() *sim.Env { return d.env }

// Shard returns the device's event domain. Processes that act on behalf of
// this device (server-side executors, per-device drivers) should be spawned
// on it so their wake-ups share the device's queue.
func (d *Device) Shard() *sim.Shard { return d.shard }

// Spec returns the device specification.
func (d *Device) Spec() Spec { return d.spec }

// Counters returns a snapshot of activity counters.
func (d *Device) Counters() Counters { return d.counters }

// Listen registers a completion-event listener.
func (d *Device) Listen(l Listener) { d.listeners = append(d.listeners, l) }

// MarkLost records that the physical device is gone — the GPU server
// crashed or a failover abandoned it. The device keeps its simulated
// state (the allocator bookkeeping survives for inspection), but API
// layers refuse new work against it; see cuda.ErrDeviceLost.
func (d *Device) MarkLost() { d.lost = true }

// Lost reports whether the device has been marked lost.
func (d *Device) Lost() bool { return d.lost }

// Malloc reserves n bytes of device memory.
func (d *Device) Malloc(n int64) (Ptr, error) { return d.mem.malloc(n) }

// Free releases a device allocation.
func (d *Device) Free(p Ptr) error { return d.mem.free(p) }

// AllocSize returns the size of an allocation.
func (d *Device) AllocSize(p Ptr) (int64, error) { return d.mem.size(p) }

// MemUsed returns the bytes currently allocated.
func (d *Device) MemUsed() int64 { return d.mem.used }

// MemCapacity returns the device memory capacity.
func (d *Device) MemCapacity() int64 { return d.spec.MemoryBytes }

// Utilization returns the fraction of [0, now] the compute engine was busy.
func (d *Device) Utilization() float64 {
	now := d.env.Now()
	if now == 0 {
		return 0
	}
	return float64(d.counters.ComputeBusy) / float64(now)
}

// opKind discriminates stream operations.
type opKind int

const (
	opKernel opKind = iota
	opCopy
	opMark
)

// Op is one enqueued stream operation; callers wait on it for fine-grained
// synchronization (cudaEventSynchronize-style).
type Op struct {
	kind    opKind
	kernel  Kernel
	dir     Direction
	bytes   int64
	enqueue sim.Time
	// done flips exactly once, on the device domain, just before doneSig
	// fires — host-side Op.Wait re-checks it in the guard loop.
	//cdivet:shard(gpu.device)
	done bool
	// doneSig is this op's private completion signal, embedded so the slab
	// allocation covers it. A per-op signal (rather than one broadcast
	// signal shared by every op on the stream) means completing an op wakes
	// only the processes synchronizing on *that* op: with a shared signal,
	// k host threads blocked on distinct ops all woke on every completion
	// and re-parked, turning one completion into k events — the superlinear
	// term the threads ablation measured.
	doneSig sim.Signal
}

// Done reports whether the operation has completed.
func (o *Op) Done() bool { return o.done }

// Wait parks the calling process until the operation completes.
func (o *Op) Wait(p *sim.Proc) {
	for !o.done {
		o.doneSig.Wait(p)
	}
}

// Stream is an in-order execution queue on a device, the unit of
// concurrency a host thread submits work through.
type Stream struct {
	id  int
	dev *Device
	// The queue triple is owned by the device domain; the host-side enqueue
	// path appends under the mutate-then-fire handoff (arrive.Fire below the
	// writes), recorded as explicit suppressions there.
	//cdivet:shard(gpu.device)
	queue []*Op
	// head: queue[:head] is consumed; the array is reused once drained.
	//cdivet:shard(gpu.device)
	head int
	// pending counts queued + executing ops.
	//cdivet:shard(gpu.device)
	pending int
	arrive  *sim.Signal
	drained *sim.Signal
	closed  bool
}

// NewStream creates a stream and starts its runner process.
func (d *Device) NewStream() *Stream {
	//cdivet:allow escape streams are created per host thread at setup, not per iteration
	s := &Stream{
		id:      d.nextStreamID,
		dev:     d,
		arrive:  sim.NewSignal(d.env),
		drained: sim.NewSignal(d.env),
	}
	d.nextStreamID++
	d.streams = append(d.streams, s)
	//cdivet:allow hotpath the runner name is built once per stream creation
	d.shard.Spawn(d.spec.Name+"/stream"+strconv.Itoa(s.id), s.run)
	return s
}

// ID returns the stream's identifier on its device.
func (s *Stream) ID() int { return s.id }

// Destroy stops the stream's runner once its queue drains; further
// enqueues panic.
func (s *Stream) Destroy() {
	s.closed = true
	s.arrive.Fire()
}

// enqueue adds an op and wakes the runner.
func (s *Stream) enqueue(o *Op) *Op {
	if s.closed {
		panic("gpu: enqueue on destroyed stream")
	}
	o.enqueue = s.dev.env.Now()
	o.doneSig.Bind(s.dev.env)
	//cdivet:allow shardsafety cross-shard handoff: the write is published to the owning domain by the Signal fire below
	s.queue = append(s.queue, o)
	//cdivet:allow shardsafety cross-shard handoff: the write is published to the owning domain by the Signal fire below
	s.pending++
	s.dev.allIdle.Add(1)
	s.arrive.Fire()
	return o
}

// EnqueueKernel submits a kernel launch and returns immediately (the
// asynchronous CUDA semantics; the cuda layer adds host-side launch cost).
func (s *Stream) EnqueueKernel(k Kernel) *Op {
	o := s.dev.newOp()
	o.kind, o.kernel = opKernel, k
	return s.enqueue(o)
}

// EnqueueCopy submits a memory transfer of n bytes.
func (s *Stream) EnqueueCopy(dir Direction, n int64) *Op {
	if n < 0 {
		panic("gpu: negative copy size")
	}
	o := s.dev.newOp()
	o.kind, o.dir, o.bytes = opCopy, dir, n
	return s.enqueue(o)
}

// EnqueueMarker submits a zero-cost ordering marker; the returned Op
// completes when all previously enqueued work on the stream has completed.
// It is the device half of cudaEventRecord.
func (s *Stream) EnqueueMarker() *Op {
	o := s.dev.newOp()
	o.kind = opMark
	return s.enqueue(o)
}

// Pending returns the number of queued-plus-executing operations.
func (s *Stream) Pending() int { return s.pending }

// Sync parks the calling process until every operation enqueued so far has
// completed.
func (s *Stream) Sync(p *sim.Proc) {
	for s.pending > 0 {
		s.drained.Wait(p)
	}
}

// Sync parks the calling process until every stream on the device drains —
// cudaDeviceSynchronize.
func (d *Device) Sync(p *sim.Proc) {
	d.allIdle.Wait(p)
}

// run is the stream's device-side execution loop.
func (s *Stream) run(p *sim.Proc) {
	d := s.dev
	for {
		for s.head == len(s.queue) {
			// Drained: rewind onto the same backing array so steady-state
			// enqueue traffic stops growing it.
			s.queue = s.queue[:0]
			s.head = 0
			if s.closed {
				return
			}
			s.arrive.Wait(p)
		}
		o := s.queue[s.head]
		s.queue[s.head] = nil
		s.head++
		switch o.kind {
		case opKernel:
			s.execKernel(p, o)
		case opCopy:
			s.execCopy(p, o)
		case opMark:
			// Zero-cost ordering marker (CUDA event record).
		}
		o.done = true
		s.pending--
		d.allIdle.Done()
		o.doneSig.Fire()
		if s.pending == 0 {
			s.drained.Fire()
		}
	}
}

// execKernel runs a kernel on the (exclusive) compute engine, charging the
// starvation warm-up when the engine had gone idle.
func (s *Stream) execKernel(p *sim.Proc, o *Op) {
	d := s.dev
	d.compute.Acquire(p)
	var ctxSwitch sim.Duration
	if d.everComputed && d.lastStream != s.id && d.spec.ContextSwitch > 0 {
		ctxSwitch = d.spec.ContextSwitch
		p.Sleep(ctxSwitch)
		d.counters.CtxSwitches++
		d.counters.CtxTotal += ctxSwitch
	}
	start := p.Now()
	var gap sim.Duration
	if d.everComputed {
		gap = start.Sub(d.lastComputeEnd)
		if gap < 0 {
			gap = 0
		}
	}
	base := o.kernel.baseDuration(d.spec)
	var warmup sim.Duration
	if gap > 0 {
		g := gap
		if g > d.spec.WarmupSaturation {
			g = d.spec.WarmupSaturation
		}
		warmup = sim.Duration(d.spec.WarmupRate) * g
		d.counters.IdleEvents++
	}
	dur := base + warmup
	p.Sleep(dur)
	end := p.Now()
	d.lastComputeEnd = end
	d.lastStream = s.id
	d.everComputed = true
	d.counters.Kernels++
	d.counters.ComputeBusy += dur
	d.counters.WarmupTotal += warmup
	d.compute.Release()

	ev := KernelEvent{
		Device:    d.spec.Name,
		Stream:    s.id,
		Name:      o.kernel.Name,
		Enqueue:   o.enqueue,
		Start:     start,
		End:       end,
		Warmup:    warmup,
		IdleGap:   gap,
		CtxSwitch: ctxSwitch,
	}
	for _, l := range d.listeners {
		l.OnKernel(ev)
	}
}

// execCopy runs a transfer on a DMA engine.
func (s *Stream) execCopy(p *sim.Proc, o *Op) {
	d := s.dev
	d.dma.Acquire(p)
	start := p.Now()
	var bw float64
	switch o.dir {
	case H2D:
		bw = d.spec.H2DBandwidth
	case D2H:
		bw = d.spec.D2HBandwidth
	case D2D:
		// On-package copy: both a read and a write against HBM.
		bw = d.spec.MemoryBandwidth / 2
	default:
		panic(fmt.Sprintf("gpu: unknown copy direction %v", o.dir))
	}
	dur := d.spec.CopyLatency + sim.Duration(float64(o.bytes)/bw)
	p.Sleep(dur)
	end := p.Now()
	switch o.dir {
	case H2D:
		d.counters.CopiesH2D++
		d.counters.BytesH2D += o.bytes
	case D2H:
		d.counters.CopiesD2H++
		d.counters.BytesD2H += o.bytes
	case D2D:
		d.counters.CopiesD2D++
		d.counters.BytesD2D += o.bytes
	}
	d.counters.CopyBusy += dur
	d.dma.Release()

	ev := CopyEvent{
		Device:  d.spec.Name,
		Stream:  s.id,
		Dir:     o.dir,
		Bytes:   o.bytes,
		Enqueue: o.enqueue,
		Start:   start,
		End:     end,
	}
	for _, l := range d.listeners {
		l.OnCopy(ev)
	}
}
