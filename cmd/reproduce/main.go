// Command reproduce regenerates the paper's tables and figures from the
// simulated stack and prints them with the paper's reference values.
//
//	reproduce -exp all            # everything, quick parameters
//	reproduce -exp table4         # one experiment
//	reproduce -exp figure2 -paper # paper-faithful parameters (slow)
//	reproduce -exp all -j 8       # eight sweep workers; output is
//	                              # byte-identical for every -j value
//
// Paper experiments: table1 figure2 threads cfcpu table2 figure3 figure4
// figure5 table3 table4 validate compose.
// Extensions: appvalidate congestion remoting resilience weak reach throughput coupling preload scales serving churn.
// "all" runs everything.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"repro/internal/experiments"
)

// experimentIDs lists every id -exp accepts, in presentation order.
var experimentIDs = []string{
	"table1", "figure2", "threads", "cfcpu", "table2", "figure3",
	"figure4", "figure5", "table3", "table4", "validate", "compose",
	"appvalidate", "scales", "preload", "congestion", "remoting",
	"resilience", "weak", "coupling", "throughput", "reach", "serving",
	"churn", "pool",
}

func main() {
	exp := flag.String("exp", "all", "experiment id (or comma list)")
	paper := flag.Bool("paper", false, "paper-faithful parameters (slow: full 5000-step runs, 30s proxy loops)")
	jobs := flag.Int("j", 0, "worker pool size for sweeps (0 = GOMAXPROCS, 1 = serial); output is byte-identical for every value")
	traceOut := flag.String("trace", "", "write a Chrome trace of one serving (or churn) window to this file (requires -exp serving or churn)")
	faultLog := flag.Bool("faultlog", false, "dump the deterministic outage schedule the churn experiment draws (requires -exp churn)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			check(f.Close())
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			check(err)
			runtime.GC() // flush recent frees so the profile shows live data
			check(pprof.WriteHeapProfile(f))
			check(f.Close())
		}()
	}

	opts := experiments.Quick()
	if *paper {
		opts = experiments.Paper()
	}
	opts.Jobs = *jobs

	known := map[string]bool{"all": true}
	for _, id := range experimentIDs {
		known[id] = true
	}
	want := map[string]bool{}
	var unknown []string
	for _, e := range strings.Split(*exp, ",") {
		e = strings.TrimSpace(e)
		if !known[e] {
			unknown = append(unknown, e)
			continue
		}
		want[e] = true
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "unknown experiment id(s): %s\n", strings.Join(unknown, ", "))
		fmt.Fprintf(os.Stderr, "valid ids: all, %s\n", strings.Join(experimentIDs, ", "))
		os.Exit(2)
	}
	if *traceOut != "" && !(want["all"] || want["serving"] || want["churn"]) {
		fmt.Fprintf(os.Stderr, "-trace requires -exp serving or -exp churn\n")
		os.Exit(2)
	}
	if *faultLog && !(want["all"] || want["churn"]) {
		fmt.Fprintf(os.Stderr, "-faultlog requires -exp churn\n")
		os.Exit(2)
	}
	all := want["all"]
	ran := 0

	section := func(id string) bool {
		if all || want[id] {
			fmt.Printf("\n======== %s ========\n", id)
			ran++
			return true
		}
		return false
	}

	if section("table1") {
		rows, err := experiments.Table1(opts)
		check(err)
		fmt.Print(experiments.RenderTable1(rows))
	}
	if section("figure2") {
		series, err := experiments.Figure2(opts)
		check(err)
		fmt.Print(experiments.RenderFigure2(series))
	}
	if section("threads") {
		rows, err := experiments.ThreadScaling(opts)
		check(err)
		fmt.Print(experiments.RenderThreadScaling(rows))
	}
	if section("cfcpu") {
		rows, err := experiments.CosmoFlowCPU(opts)
		check(err)
		fmt.Print(experiments.RenderCosmoFlowCPU(rows))
	}
	if section("table2") {
		rows, err := experiments.Table2(opts)
		check(err)
		fmt.Print(experiments.RenderTable2(rows))
	}
	if section("figure3") {
		pts, err := experiments.Figure3(opts, nil)
		check(err)
		fmt.Print(experiments.RenderFigure3(pts))
	}
	if all || want["figure4"] || want["figure5"] || want["table3"] || want["table4"] {
		traces, err := experiments.CollectTraces(opts)
		check(err)
		if section("figure4") {
			fmt.Print(experiments.RenderFigure4(traces))
		}
		if section("figure5") {
			fmt.Print(experiments.RenderFigure5(traces))
		}
		if all || want["table3"] || want["table4"] {
			blocks, surface, err := experiments.Table4(opts, traces)
			check(err)
			if section("table3") {
				rows := experiments.Table3(traces, surface)
				fmt.Print(experiments.RenderTable3(rows, surface))
			}
			if section("table4") {
				fmt.Print(experiments.RenderTable4(blocks))
			}
		}
	}
	if section("validate") {
		v, err := experiments.Validate(opts)
		check(err)
		fmt.Print(experiments.RenderValidation(v))
	}
	if section("compose") {
		c, err := experiments.Compose()
		check(err)
		fmt.Print(experiments.RenderCompose(c))
	}
	if section("appvalidate") {
		rows, err := experiments.AppSlackValidation(opts, nil)
		check(err)
		fmt.Print(experiments.RenderAppValidation(rows))
	}
	if section("scales") {
		rows, err := experiments.DeploymentScales(opts)
		check(err)
		fmt.Print(experiments.RenderDeploymentScales(rows))
	}
	if section("preload") {
		rows, err := experiments.PreloadComparison(opts)
		check(err)
		fmt.Print(experiments.RenderPreload(rows))
	}
	if section("congestion") {
		pts, err := experiments.Congestion(opts)
		check(err)
		fmt.Print(experiments.RenderCongestion(pts))
	}
	if section("remoting") {
		results, err := experiments.RemotingComparison(opts)
		check(err)
		fmt.Print(experiments.RenderRemoting(results))
	}
	if section("resilience") {
		rows, err := experiments.Resilience(opts)
		check(err)
		fmt.Print(experiments.RenderResilience(rows))
	}
	if section("weak") {
		rows, err := experiments.WeakScaling(opts)
		check(err)
		fmt.Print(experiments.RenderWeakScaling(rows))
	}
	if section("coupling") {
		rows, err := experiments.ChassisCoupling(opts)
		check(err)
		fmt.Print(experiments.RenderChassisCoupling(rows))
	}
	if section("throughput") {
		rows, err := experiments.Throughput(opts)
		check(err)
		fmt.Print(experiments.RenderThroughput(rows))
	}
	if section("reach") {
		traces, err := experiments.CollectTraces(opts)
		check(err)
		rows, err := experiments.Reach(opts, traces)
		check(err)
		fmt.Print(experiments.RenderReach(rows))
	}
	if section("serving") {
		rows, err := experiments.Serving(opts)
		check(err)
		fmt.Print(experiments.RenderServing(rows))
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			check(err)
			check(experiments.WriteServingTrace(opts, f))
			check(f.Close())
			fmt.Printf("wrote serving trace to %s\n", *traceOut)
		}
	}
	if section("churn") {
		rows, err := experiments.Churn(opts)
		check(err)
		fmt.Print(experiments.RenderChurn(rows))
		if *faultLog {
			fmt.Print(experiments.ChurnFaultLog(opts))
		}
		if *traceOut != "" {
			// When the serving section already claimed the path, the churn
			// trace goes alongside it.
			out := *traceOut
			if all || want["serving"] {
				out += ".churn"
			}
			f, err := os.Create(out)
			check(err)
			check(experiments.WriteChurnTrace(opts, f))
			check(f.Close())
			fmt.Printf("wrote churn trace to %s\n", out)
		}
	}

	if section("pool") {
		rows, err := experiments.Pool(opts)
		check(err)
		fmt.Print(experiments.RenderPool(rows))
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments selected by %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
