package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// This file builds the shard-affinity context shared by the shardsafety and
// waitgraph analyzers: which procs run on which event domain, and how
// affinity flows through closures and cross-package calls.
//
// PR 7's sharded engine made "which shard does this code run on" a real
// property of every process: sim.Shard is a spawn-time domain key, and the
// determinism argument (one global (time, seq) order, per-shard queues as a
// pure data-structure change) only survives if shard-owned state is mutated
// from its own domain or across an explicit Signal happens-before edge.
// Ownership is declared in source with an annotation on a struct field:
//
//	//cdivet:shard(<domain>)
//
// On a field of type *sim.Shard (or a slice/array of them) the annotation
// names the field a domain *binder*: procs spawned through it carry that
// domain. On any other field it marks shard-owned *state* of that domain.
// The same annotation on the line of (or directly above) a Shard.Spawn/
// SpawnAt call or a `x := env.NewShard()` assignment names the domain of an
// anonymous local shard.
//
// Affinity inference is a may-analysis over the static call graph: a spawned
// function literal or method value seeds its region with the spawn site's
// domain, and the set propagates through direct calls, lexically nested
// closures, and cross-package edges to fixpoint. Calls through interfaces or
// function values contribute no edge, so regions only reachable dynamically
// stay unchecked (empty affinity) rather than wrongly accused.

// shardDirectivePrefix introduces an ownership annotation. suppress.go's
// //cdivet:allow parser requires whitespace after its own prefix, so the two
// directive families never collide.
const shardDirectivePrefix = "//cdivet:shard("

// domainUnknown is the affinity element recorded when a spawn site's shard
// expression cannot be resolved to a declared domain.
const domainUnknown = "?"

// domainDefault is the environment's default domain (shard 0): procs spawned
// via Env.Spawn/Env.SpawnAt.
const domainDefault = "default"

// shardFieldInfo is one annotated struct field.
type shardFieldInfo struct {
	domain string
	owner  string // short description, e.g. "serve.(Engine).queue"
	binder bool   // field is a *sim.Shard (or slice/array of them)
}

// shardAnnotations is the module-wide annotation table.
type shardAnnotations struct {
	fields map[*types.Var]*shardFieldInfo
	// lines maps "filename:line" to the shard directive on that line, for
	// spawn-site and local-NewShard annotations.
	lines map[string]shardLineAnn
	// bad collects malformed annotations for shardsafety to report.
	bad []badShardAnn
}

// shardLineAnn is one line-level shard directive. ownLine distinguishes a
// directive on its own comment line (which also annotates the line below)
// from one trailing code (which annotates only its own line — a trailing
// directive on `shard := env.NewShard()` must not leak onto whatever
// statement happens to sit directly beneath it).
type shardLineAnn struct {
	domain  string
	ownLine bool
}

type badShardAnn struct {
	pos token.Pos
	msg string
}

// shardRegion is one affinity-tracking unit: a declared function's body or a
// function literal's body (nested literals are their own regions).
type shardRegion struct {
	node *funcNode    // non-nil for declared functions
	lit  *ast.FuncLit // non-nil for literals
	encl *shardRegion // lexically enclosing region, nil for declared functions
	pkg  *Package
	body *ast.BlockStmt

	affinity map[string]bool

	// Propagation edges, precomputed so the fixpoint loop stays cheap and
	// deterministic: direct callees (excluding calls inside nested literals),
	// lexically nested literal regions that are not spawn arguments (they may
	// run on the enclosing proc), and spawnees of p.Shard().Spawn sites
	// (which inherit the spawner's affinity).
	callees    []*shardRegion
	children   []*shardRegion
	inheritees []*shardRegion
}

// describe renders the region for messages: a declared function as
// pkg.(Recv).Name, a literal by the enclosing function it is defined in.
func (r *shardRegion) describe() string {
	if r.node != nil {
		return describeFunc(r.node)
	}
	root := r.encl
	for root != nil && root.node == nil {
		root = root.encl
	}
	if root != nil {
		return "func literal in " + describeFunc(root.node)
	}
	return "func literal"
}

// spawnSite is one resolved Spawn/SpawnAt call.
type spawnSite struct {
	region  *shardRegion // region containing the call
	call    *ast.CallExpr
	domain  string       // "", when inherit
	inherit bool         // p.Shard().Spawn: spawnee inherits spawner affinity
	spawnee *shardRegion // nil when the fn argument is not statically known
}

// shardContext is the computed affinity model for one module.
type shardContext struct {
	module  *Module
	g       *callGraph
	ann     *shardAnnotations
	regions []*shardRegion
	byNode  map[*funcNode]*shardRegion
	byLit   map[*ast.FuncLit]*shardRegion
	spawns  []spawnSite
}

// shardContextFor returns the module's shard context, built once and
// shared by shardsafety and waitgraph.
func shardContextFor(m *Module) *shardContext {
	if m.shardCtx == nil {
		m.shardCtx = buildShardContext(m)
	}
	return m.shardCtx
}

// buildShardContext parses annotations, builds regions over the call graph,
// resolves spawn sites, and propagates affinity to fixpoint.
func buildShardContext(m *Module) *shardContext {
	sc := &shardContext{
		module: m,
		g:      callGraphFor(m),
		ann:    parseShardAnnotations(m),
		byNode: map[*funcNode]*shardRegion{},
		byLit:  map[*ast.FuncLit]*shardRegion{},
	}

	for _, n := range sc.g.nodes {
		r := &shardRegion{node: n, pkg: n.pkg, body: n.decl.Body, affinity: map[string]bool{}}
		sc.regions = append(sc.regions, r)
		sc.byNode[n] = r
		sc.buildLitRegions(r, n.decl.Body)
	}

	spawnArg := map[*ast.FuncLit]bool{}
	for _, r := range sc.regions {
		sc.resolveSpawns(r, spawnArg)
	}
	for _, r := range sc.regions {
		sc.linkEdges(r, spawnArg)
	}
	sc.propagate()
	return sc
}

// buildLitRegions creates a region for every function literal nested in
// body, excluding literals inside deeper literals (those belong to their own
// parent region, built recursively).
func (sc *shardContext) buildLitRegions(parent *shardRegion, body *ast.BlockStmt) {
	inspectRegion(body, func(node ast.Node) bool {
		lit, ok := node.(*ast.FuncLit)
		if !ok {
			return true
		}
		r := &shardRegion{lit: lit, encl: parent, pkg: parent.pkg, body: lit.Body, affinity: map[string]bool{}}
		sc.regions = append(sc.regions, r)
		sc.byLit[lit] = r
		sc.buildLitRegions(r, lit.Body)
		return false
	})
}

// inspectRegion walks the statements a region directly owns: the traversal
// descends into everything except nested function literals, which fn may
// observe (it is called on the literal) but whose bodies are skipped.
func inspectRegion(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(node ast.Node) bool {
		if !fn(node) {
			return false
		}
		if _, isLit := node.(*ast.FuncLit); isLit {
			return false
		}
		return true
	})
}

// parseShardAnnotations scans every base file for //cdivet:shard(...)
// comments, resolving field annotations to their types.Var objects.
func parseShardAnnotations(m *Module) *shardAnnotations {
	ann := &shardAnnotations{fields: map[*types.Var]*shardFieldInfo{}, lines: map[string]shardLineAnn{}}
	for _, p := range m.Packages {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			code := codeLines(m.Fset, f)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					ann.recordComment(m.Fset, c, code)
				}
			}
			ann.recordFields(m.Fset, p, f)
		}
	}
	return ann
}

// codeLines marks every line of f that holds a non-comment token, so a
// trailing directive can be told apart from one on its own line.
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil:
			return false
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()-1).Line] = true
		return true
	})
	return lines
}

// recordComment parses one comment as a shard directive, filling the
// line-annotation table (field annotations additionally resolve through
// recordFields).
func (a *shardAnnotations) recordComment(fset *token.FileSet, c *ast.Comment, code map[int]bool) {
	text := strings.TrimSpace(c.Text)
	if !strings.HasPrefix(text, shardDirectivePrefix) {
		return
	}
	domain, ok := parseShardDomain(text)
	if !ok {
		a.bad = append(a.bad, badShardAnn{pos: c.Pos(), msg: "malformed shard annotation " + text + ": want //cdivet:shard(<domain>) with a non-empty, space-free domain name"})
		return
	}
	pos := fset.Position(c.Pos())
	a.lines[posKey(pos.Filename, pos.Line)] = shardLineAnn{domain: domain, ownLine: !code[pos.Line]}
}

// parseShardDomain extracts the domain name from a shard directive comment.
func parseShardDomain(text string) (string, bool) {
	if !strings.HasPrefix(text, shardDirectivePrefix) {
		return "", false
	}
	rest := text[len(shardDirectivePrefix):]
	close := strings.IndexByte(rest, ')')
	if close < 0 {
		return "", false
	}
	domain := rest[:close]
	if domain == "" || strings.ContainsAny(domain, " \t()") {
		return "", false
	}
	return domain, true
}

// recordFields attaches shard annotations written on (or above) struct
// fields to the fields' objects.
func (a *shardAnnotations) recordFields(fset *token.FileSet, p *Package, f *ast.File) {
	ast.Inspect(f, func(node ast.Node) bool {
		ts, ok := node.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			domain := fieldShardDomain(field)
			if domain == "" {
				continue
			}
			for _, name := range field.Names {
				v, ok := p.Info.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				a.fields[v] = &shardFieldInfo{
					domain: domain,
					owner:  p.Name + ".(" + ts.Name.Name + ")." + name.Name,
					binder: isShardBinderType(v.Type()),
				}
			}
		}
		return true
	})
}

// fieldShardDomain returns the domain named by a shard directive in the
// field's doc comment or trailing comment, or "".
func fieldShardDomain(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if d, ok := parseShardDomain(strings.TrimSpace(c.Text)); ok {
				return d
			}
		}
	}
	return ""
}

// isShardBinderType reports whether t is *sim.Shard or a slice/array of it.
func isShardBinderType(t types.Type) bool {
	switch t := t.(type) {
	case *types.Slice:
		return isShardBinderType(t.Elem())
	case *types.Array:
		return isShardBinderType(t.Elem())
	case *types.Pointer:
		return isSimType(t.Elem(), "Shard")
	}
	return false
}

// isSimType reports whether t is the named type internal/sim.<name>.
func isSimType(t types.Type, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "/internal/sim")
}

// simMethod resolves call to a method of internal/sim with the given
// receiver type name, returning the method name and receiver expression.
func simMethod(info *types.Info, call *ast.CallExpr, recvName string) (string, ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", nil, false
	}
	if pkg := fn.Pkg(); pkg == nil || !strings.HasSuffix(pkg.Path(), "/internal/sim") {
		return "", nil, false
	}
	if recvTypeName(sig.Recv().Type()) != recvName {
		return "", nil, false
	}
	return fn.Name(), sel.X, true
}

// resolveSpawns finds the Spawn/SpawnAt calls a region directly owns and
// resolves each one's domain and spawnee.
func (sc *shardContext) resolveSpawns(r *shardRegion, spawnArg map[*ast.FuncLit]bool) {
	info := r.pkg.Info
	inspectRegion(r.body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		var site spawnSite
		if name, recv, ok := simMethod(info, call, "Shard"); ok && (name == "Spawn" || name == "SpawnAt") {
			site = spawnSite{region: r, call: call}
			site.domain, site.inherit = sc.resolveShardExpr(r, recv)
			site.spawnee = sc.spawnedRegion(r, call, name)
		} else if name, _, ok := simMethod(info, call, "Env"); ok && (name == "Spawn" || name == "SpawnAt") {
			site = spawnSite{region: r, call: call, domain: domainDefault}
			site.spawnee = sc.spawnedRegion(r, call, name)
		} else {
			return true
		}
		// A shard directive on the call's line (or the line above) names the
		// domain outright, overriding inference.
		if d, ok := sc.lineDomain(call.Pos()); ok {
			site.domain, site.inherit = d, false
		}
		if site.spawnee != nil {
			if lit := site.spawnee.lit; lit != nil {
				spawnArg[lit] = true
			}
		}
		sc.spawns = append(sc.spawns, site)
		return true
	})
}

// lineDomain looks up a line annotation for the line of pos or the line
// directly above it.
func (sc *shardContext) lineDomain(pos token.Pos) (string, bool) {
	p := sc.module.Fset.Position(pos)
	if a, ok := sc.ann.lines[posKey(p.Filename, p.Line)]; ok {
		return a.domain, true
	}
	if a, ok := sc.ann.lines[posKey(p.Filename, p.Line-1)]; ok && a.ownLine {
		return a.domain, true
	}
	return "", false
}

func posKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// spawnedRegion resolves the fn argument of a spawn call to its region: a
// function literal's own region, or the region of a statically named
// function or method value.
func (sc *shardContext) spawnedRegion(r *shardRegion, call *ast.CallExpr, method string) *shardRegion {
	idx := 1
	if method == "SpawnAt" {
		idx = 2
	}
	if len(call.Args) <= idx {
		return nil
	}
	arg := ast.Unparen(call.Args[idx])
	if lit, ok := arg.(*ast.FuncLit); ok {
		return sc.byLit[lit]
	}
	var obj types.Object
	switch arg := arg.(type) {
	case *ast.Ident:
		obj = r.pkg.Info.Uses[arg]
	case *ast.SelectorExpr:
		obj = r.pkg.Info.Uses[arg.Sel]
	}
	if fn, ok := obj.(*types.Func); ok {
		if n := sc.g.byObj[fn]; n != nil {
			return sc.byNode[n]
		}
	}
	return nil
}

// resolveShardExpr maps the receiver of a Shard.Spawn call to a domain.
// inherit=true means the spawnee runs on the spawner's own domain
// (p.Shard().Spawn — the proc re-spawns onto its own shard).
func (sc *shardContext) resolveShardExpr(r *shardRegion, e ast.Expr) (domain string, inherit bool) {
	info := r.pkg.Info
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok {
			if v, ok := s.Obj().(*types.Var); ok {
				if fi := sc.ann.fields[v]; fi != nil && fi.binder {
					return fi.domain, false
				}
			}
		}
		return domainUnknown, false
	case *ast.IndexExpr:
		return sc.resolveShardExpr(r, e.X)
	case *ast.StarExpr:
		return sc.resolveShardExpr(r, e.X)
	case *ast.Ident:
		return sc.resolveShardLocal(r, e)
	case *ast.CallExpr:
		return sc.resolveShardCall(r, e)
	}
	return domainUnknown, false
}

// resolveShardCall handles a call in shard position: p.Shard() inherits the
// spawner's domain, env.NewShard() is an anonymous local domain, and a
// single-return accessor (func (d *Device) Shard() *sim.Shard { return
// d.shard }) resolves through to the field it returns.
func (sc *shardContext) resolveShardCall(r *shardRegion, call *ast.CallExpr) (string, bool) {
	info := r.pkg.Info
	if name, _, ok := simMethod(info, call, "Proc"); ok && name == "Shard" {
		return "", true
	}
	if name, _, ok := simMethod(info, call, "Env"); ok && name == "NewShard" {
		if d, ok := sc.lineDomain(call.Pos()); ok {
			return d, false
		}
		return sc.anonDomain(r), false
	}
	if callee := sc.g.calleeOf(info, call); callee != nil {
		if ret := singleReturnExpr(callee.decl); ret != nil {
			calleeRegion := sc.byNode[callee]
			return sc.resolveShardExpr(calleeRegion, ret)
		}
	}
	return domainUnknown, false
}

// singleReturnExpr returns the expression of a one-statement
// `return <expr>` body, or nil.
func singleReturnExpr(decl *ast.FuncDecl) ast.Expr {
	if decl.Body == nil || len(decl.Body.List) != 1 {
		return nil
	}
	ret, ok := decl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	return ret.Results[0]
}

// resolveShardLocal resolves a plain identifier in shard position: a local
// assigned once from env.NewShard() takes a line annotation on (or above)
// that assignment, falling back to an anonymous per-function domain.
// Parameters and anything else stay unknown.
func (sc *shardContext) resolveShardLocal(r *shardRegion, id *ast.Ident) (string, bool) {
	info := r.pkg.Info
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return domainUnknown, false
	}
	if fi := sc.ann.fields[v]; fi != nil && fi.binder {
		return fi.domain, false
	}
	// Search the whole enclosing declared function (the variable may be
	// assigned in the parent region and captured by a literal).
	root := r
	for root.encl != nil {
		root = root.encl
	}
	var domain string
	found := false
	ast.Inspect(root.body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok || found {
			return !found
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			lobj := info.Defs[lid]
			if lobj == nil {
				lobj = info.Uses[lid]
			}
			if lobj != v {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok {
				continue
			}
			if name, _, ok := simMethod(info, call, "Env"); ok && name == "NewShard" {
				if d, ok := sc.lineDomain(as.Pos()); ok {
					domain = d
				} else {
					domain = sc.anonDomain(r)
				}
				found = true
				return false
			}
		}
		return true
	})
	if found {
		return domain, false
	}
	return domainUnknown, false
}

// anonDomain names the domain of an unannotated local shard after the
// enclosing declared function, which is stable across unrelated edits.
func (sc *shardContext) anonDomain(r *shardRegion) string {
	root := r
	for root.encl != nil {
		root = root.encl
	}
	if root.node != nil {
		return "anon(" + describeFunc(root.node) + ")"
	}
	return domainUnknown
}

// linkEdges precomputes a region's propagation edges and seeds spawnee
// affinity from resolved spawn sites.
func (sc *shardContext) linkEdges(r *shardRegion, spawnArg map[*ast.FuncLit]bool) {
	info := r.pkg.Info
	seen := map[*shardRegion]bool{}
	inspectRegion(r.body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			if callee := sc.g.calleeOf(info, node); callee != nil {
				if cr := sc.byNode[callee]; cr != nil && !seen[cr] {
					seen[cr] = true
					r.callees = append(r.callees, cr)
				}
			}
		case *ast.FuncLit:
			if cr := sc.byLit[node]; cr != nil && !spawnArg[node] {
				r.children = append(r.children, cr)
			}
		}
		return true
	})
	for i := range sc.spawns {
		s := &sc.spawns[i]
		if s.region != r || s.spawnee == nil {
			continue
		}
		if s.inherit {
			r.inheritees = append(r.inheritees, s.spawnee)
		} else {
			s.spawnee.affinity[s.domain] = true
		}
	}
}

// propagate runs the affinity fixpoint over the precomputed edges.
func (sc *shardContext) propagate() {
	merge := func(dst, src *shardRegion) bool {
		changed := false
		for d := range src.affinity {
			if !dst.affinity[d] {
				dst.affinity[d] = true
				changed = true
			}
		}
		return changed
	}
	for changed := true; changed; {
		changed = false
		for _, r := range sc.regions {
			if len(r.affinity) == 0 {
				continue
			}
			for _, e := range r.callees {
				if merge(e, r) {
					changed = true
				}
			}
			for _, e := range r.children {
				if merge(e, r) {
					changed = true
				}
			}
			for _, e := range r.inheritees {
				if merge(e, r) {
					changed = true
				}
			}
		}
	}
}

// affinityLabel renders a region's affinity set for messages: sorted,
// comma-joined, with the unknown marker spelled out.
func affinityLabel(aff map[string]bool) string {
	if len(aff) == 0 {
		return "none"
	}
	keys := make([]string, 0, len(aff))
	for d := range aff { //cdivet:allow maporder keys are collected unordered and sorted on the next line
		keys = append(keys, d)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if k == domainUnknown {
			keys[i] = "unknown"
		}
	}
	return strings.Join(keys, ", ")
}

// inSimPackage reports whether the region belongs to internal/sim itself,
// which implements the machinery the rules reason about.
func (r *shardRegion) inSimPackage() bool {
	return strings.HasSuffix(r.pkg.Path, "/internal/sim")
}
