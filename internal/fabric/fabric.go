// Package fabric models the interconnect between hosts and disaggregated
// GPU chassis: NICs, switches, and fibre spans. It supplies the "slack"
// magnitudes the paper injects (the extra CPU-to-GPU latency introduced by
// crossing a network instead of a local PCIe bus) and the
// distance-to-latency conversions behind the paper's "100 µs ≈ 20 km of
// fibre" headline.
package fabric

import (
	"fmt"

	"repro/internal/sim"
)

// Speed of light in fibre. The paper's conversion (100 µs ⇒ 20 km) implies
// 200 000 km/s, i.e. refractive index ≈ 1.5; we adopt the same constant so
// the headline numbers reproduce exactly.
const FibreKmPerSecond = 200_000.0

// PropagationDelay returns the one-way propagation time over km kilometres
// of fibre. It is total: negative distances clamp to zero. Validation
// belongs to the constructor path (NewPath, NewSharedLink, PathForSlack),
// which returns errors callers can recover from.
func PropagationDelay(km float64) sim.Duration {
	if km < 0 {
		km = 0
	}
	return sim.Duration(km / FibreKmPerSecond)
}

// DistanceForDelay inverts PropagationDelay: the fibre length whose one-way
// propagation time equals d. Negative delays clamp to zero.
func DistanceForDelay(d sim.Duration) float64 {
	if d < 0 {
		d = 0
	}
	return float64(d) * FibreKmPerSecond
}

// Hop is one element on the path between a host and a disaggregated device.
type Hop struct {
	Name    string
	Latency sim.Duration // fixed traversal latency (port-to-port, NIC pipeline, ...)
	// Bandwidth in bytes/second for serialization of payload bytes;
	// zero means the hop adds latency only (no serialization term).
	Bandwidth float64
}

// Validate reports the first invalid field of the hop.
func (h Hop) Validate() error {
	if h.Latency < 0 {
		return fmt.Errorf("fabric: hop %q has negative latency %v", h.Name, h.Latency)
	}
	if h.Bandwidth < 0 {
		return fmt.Errorf("fabric: hop %q has negative bandwidth %g B/s", h.Name, h.Bandwidth)
	}
	return nil
}

// Path is an ordered sequence of hops. A CPU→GPU message traverses every
// hop once; a synchronous API call traverses the path twice (request and
// completion).
type Path struct {
	Hops []Hop
}

// NewPath is the validated constructor: it rejects hops with negative
// latency or bandwidth, so downstream arithmetic (Latency, TransferTime)
// can stay total and panic-free.
func NewPath(hops ...Hop) (Path, error) {
	p := Path{Hops: hops}
	return p, p.Validate()
}

// Validate reports the first invalid hop.
func (p Path) Validate() error {
	for _, h := range p.Hops {
		if err := h.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Latency returns the one-way zero-payload latency of the path: the sum of
// all hop latencies. This is the paper's "slack" for a single crossing.
func (p Path) Latency() sim.Duration {
	var d sim.Duration
	for _, h := range p.Hops {
		d += h.Latency
	}
	return d
}

// TransferTime returns the one-way time for a message of n payload bytes:
// hop latencies plus serialization on every bandwidth-limited hop (a
// store-and-forward model, the pessimistic case the paper favours).
// Negative payload sizes clamp to zero (see NewPath for validation).
func (p Path) TransferTime(n int64) sim.Duration {
	if n < 0 {
		n = 0
	}
	d := p.Latency()
	for _, h := range p.Hops {
		if h.Bandwidth > 0 {
			d += sim.Duration(float64(n) / h.Bandwidth)
		}
	}
	return d
}

// RoundTrip returns twice the one-way latency — the full cost a synchronous
// call pays before the host observes completion.
func (p Path) RoundTrip() sim.Duration { return 2 * p.Latency() }

// String lists the hops.
func (p Path) String() string {
	s := "path["
	for i, h := range p.Hops {
		if i > 0 {
			s += " → "
		}
		s += h.Name
	}
	return s + "]"
}

// Scale identifies the composition scale of a CDI deployment.
type Scale int

const (
	// NodeLocal is the traditional architecture: GPU on the host PCIe bus.
	NodeLocal Scale = iota
	// RackScale is vendor CDI today (Liqid, GigaIO): a PCIe-switch chassis
	// serving a single rack, same PCIe domain.
	RackScale
	// RowScale is the paper's subject: a chassis serving multiple racks in
	// a row, reached across a network.
	RowScale
	// ClusterScale extends the chassis reach to the full machine room or
	// beyond (the paper's 20 km speculation).
	ClusterScale
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case NodeLocal:
		return "node-local"
	case RackScale:
		return "rack-scale"
	case RowScale:
		return "row-scale"
	case ClusterScale:
		return "cluster-scale"
	default:
		//cdivet:allow hotpath defensive fallback, unreachable for valid scales
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// Typical component latencies used by the presets. NIC and switch numbers
// follow the HPC interconnect measurements the paper cites (InfiniBand and
// Slingshot half-round-trip ≈ 1 µs).
const (
	pcieSwitchLatency = 110 * sim.Nanosecond // single PCIe switch traversal
	nicLatency        = 350 * sim.Nanosecond // NIC pipeline, each direction
	switchLatency     = 200 * sim.Nanosecond // HPC switch port-to-port
	pcieGen4x16       = 26.0e9               // bytes/s usable on a Gen4 x16 link
	hdr200Bandwidth   = 23.0e9               // bytes/s usable on 200 Gb/s HDR-class link
)

// Preset returns a representative Path for the given scale and fibre
// distance in km (ignored for NodeLocal). The presets are:
//
//	NodeLocal:    direct PCIe attach (no extra hops, zero slack)
//	RackScale:    two PCIe switch traversals within a rack (cable ≤ 3 m)
//	RowScale:     NIC → switch → NIC plus fibre distance (default 50 m)
//	ClusterScale: NIC → 3 switches → NIC plus fibre distance (default 500 m)
func Preset(s Scale, km float64) Path {
	switch s {
	case NodeLocal:
		return Path{}
	case RackScale:
		if km == 0 {
			km = 0.003
		}
		return Path{Hops: []Hop{
			{Name: "pcie-sw-host", Latency: pcieSwitchLatency, Bandwidth: pcieGen4x16},
			{Name: "fibre", Latency: PropagationDelay(km)},
			{Name: "pcie-sw-chassis", Latency: pcieSwitchLatency},
		}}
	case RowScale:
		if km == 0 {
			km = 0.05
		}
		return Path{Hops: []Hop{
			{Name: "nic-host", Latency: nicLatency, Bandwidth: hdr200Bandwidth},
			{Name: "switch", Latency: switchLatency},
			{Name: "fibre", Latency: PropagationDelay(km)},
			{Name: "nic-chassis", Latency: nicLatency},
		}}
	case ClusterScale:
		if km == 0 {
			km = 0.5
		}
		return Path{Hops: []Hop{
			{Name: "nic-host", Latency: nicLatency, Bandwidth: hdr200Bandwidth},
			{Name: "switch-leaf", Latency: switchLatency},
			{Name: "switch-spine", Latency: switchLatency},
			{Name: "switch-leaf2", Latency: switchLatency},
			{Name: "fibre", Latency: PropagationDelay(km)},
			{Name: "nic-chassis", Latency: nicLatency},
		}}
	default:
		panic(fmt.Sprintf("fabric: unknown scale %v", s))
	}
}

// SlackForPath returns the per-CUDA-call slack a path induces: the one-way
// latency, matching the paper's definition of slack as the time added by
// passing through the NICs and traversing the network (Figure 1).
func SlackForPath(p Path) sim.Duration { return p.Latency() }

// PathForSlack builds a synthetic path whose one-way latency equals the
// requested slack — the software analogue of the paper's sleep-based
// injection, useful for sweeping slack without constructing topologies.
// Like the other constructors it returns an error (not a panic) on
// invalid input, so sweeps over computed slacks fail a point, not the
// process.
func PathForSlack(slack sim.Duration) (Path, error) {
	if slack < 0 {
		return Path{}, fmt.Errorf("fabric: negative slack %v", slack)
	}
	if slack == 0 {
		return Path{}, nil
	}
	return NewPath(Hop{Name: "injected-slack", Latency: slack})
}
