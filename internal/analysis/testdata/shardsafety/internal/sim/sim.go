// Package sim is a corpus stand-in exposing the shard and signal surface
// the shardsafety rule reasons about. The package itself is exempt — it
// implements the machinery.
package sim

// Duration is a span of virtual time.
type Duration float64

// Env is a minimal event environment.
type Env struct{}

// NewEnv builds an environment.
func NewEnv() *Env { return &Env{} }

// NewShard opens a new event domain.
func (e *Env) NewShard() *Shard { return &Shard{} }

// Spawn starts fn on the default domain.
func (e *Env) Spawn(name string, fn func(p *Proc)) {}

// SpawnAt starts fn on the default domain after delay.
func (e *Env) SpawnAt(delay Duration, name string, fn func(p *Proc)) {}

// Shard is a spawn-time domain key.
type Shard struct{}

// Spawn starts fn on the shard's domain.
func (s *Shard) Spawn(name string, fn func(p *Proc)) {}

// SpawnAt starts fn on the shard's domain after delay.
func (s *Shard) SpawnAt(delay Duration, name string, fn func(p *Proc)) {}

// Proc is a process handle.
type Proc struct{}

// Shard returns the domain the process runs on.
func (p *Proc) Shard() *Shard { return &Shard{} }

// Sleep parks the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {}

// Signal is a broadcast primitive.
type Signal struct{ env *Env }

// NewSignal builds a signal bound to e.
func NewSignal(e *Env) *Signal { return &Signal{env: e} }

// Bind attaches a value-declared signal to its environment.
func (s *Signal) Bind(e *Env) { s.env = e }

// Wait parks the process until the signal fires.
func (s *Signal) Wait(p *Proc) {}

// WaitTimeout parks until the signal fires or d elapses.
func (s *Signal) WaitTimeout(p *Proc, d Duration) bool { return true }

// Fire wakes every waiter.
func (s *Signal) Fire() {}

// FireOne wakes one waiter.
func (s *Signal) FireOne() {}
