package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a set of counts over contiguous bins defined by Edges:
// bin i covers [Edges[i], Edges[i+1]), with the final bin closed on the
// right so the maximum lands inside it.
type Histogram struct {
	Edges  []float64
	Counts []int
	// Under and Over count samples falling outside the edge range.
	Under, Over int
}

// NewHistogram builds a histogram of xs over the given edges, which must be
// strictly increasing and contain at least two values.
func NewHistogram(xs []float64, edges []float64) *Histogram {
	if len(edges) < 2 {
		panic("stats: histogram needs at least two edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("stats: histogram edges must be strictly increasing")
		}
	}
	h := &Histogram{Edges: edges, Counts: make([]int, len(edges)-1)}
	for _, x := range xs {
		h.Add(x)
	}
	return h
}

// LinearEdges returns n+1 evenly spaced edges covering [lo, hi].
func LinearEdges(lo, hi float64, n int) []float64 {
	if n < 1 || hi <= lo {
		panic("stats: invalid LinearEdges parameters")
	}
	edges := make([]float64, n+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	return edges
}

// LogEdges returns n+1 logarithmically spaced edges covering [lo, hi];
// lo must be positive.
func LogEdges(lo, hi float64, n int) []float64 {
	if n < 1 || lo <= 0 || hi <= lo {
		panic("stats: invalid LogEdges parameters")
	}
	ll, lh := math.Log(lo), math.Log(hi)
	edges := make([]float64, n+1)
	for i := range edges {
		edges[i] = math.Exp(ll + (lh-ll)*float64(i)/float64(n))
	}
	return edges
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	switch {
	case x < h.Edges[0]:
		h.Under++
	case x > h.Edges[n]:
		h.Over++
	case x == h.Edges[n]:
		h.Counts[n-1]++
	default:
		// Binary search for the bin with Edges[i] <= x < Edges[i+1].
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if x >= h.Edges[mid+1] {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		h.Counts[lo]++
	}
}

// Total returns the number of in-range samples.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// String renders a compact ASCII bar chart, useful in example output.
func (h *Histogram) String() string {
	var b strings.Builder
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.Counts {
		bar := ""
		if maxC > 0 {
			bar = strings.Repeat("#", c*40/maxC)
		}
		fmt.Fprintf(&b, "[%10.4g, %10.4g) %6d %s\n", h.Edges[i], h.Edges[i+1], c, bar)
	}
	return b.String()
}

// BinByThresholds assigns each sample to the first threshold bin that can
// hold it, reproducing the paper's Table III binning: a sample x goes to
// bin i when x <= thresholds[i] (thresholds ascending); samples larger than
// every threshold go to the final overflow bin. The returned slice has
// len(thresholds)+1 entries.
func BinByThresholds(xs, thresholds []float64) []int {
	for i := 1; i < len(thresholds); i++ {
		if thresholds[i] <= thresholds[i-1] {
			panic("stats: thresholds must be strictly increasing")
		}
	}
	counts := make([]int, len(thresholds)+1)
	for _, x := range xs {
		placed := false
		for i, th := range thresholds {
			if x <= th {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(thresholds)]++
		}
	}
	return counts
}
