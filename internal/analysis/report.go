package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteText prints one finding per line in file:line:col form.
func WriteText(w io.Writer, findings []Finding) error {
	for _, f := range findings {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the findings as an indented JSON array (an empty slice
// encodes as [] so consumers never see null).
func WriteJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}
