package cdi

// Tests for the scripts/bench.sh --gate regression gate. The gate is plain
// bash+awk over the BENCH_<n>.json files this same script records, so the
// tests drive it as a subprocess on synthetic recordings: one pair that must
// pass, one with an injected regression that must fail. This keeps the gate
// honest in both directions — a gate that never fires is worse than none.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// benchJSON renders a minimal recording in the exact shape bench.sh writes.
func benchJSON(t *testing.T, dir, name string, rows []string) string {
	t.Helper()
	body := "{\n  \"date\": \"2026-01-01T00:00:00Z\",\n  \"goos\": \"linux\",\n  \"goarch\": \"amd64\",\n  \"benchmarks\": [\n    " +
		strings.Join(rows, ",\n    ") + "\n  ]\n}\n"
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runGate(t *testing.T, env []string, newFile, oldFile string) (string, int) {
	t.Helper()
	cmd := exec.Command("bash", "scripts/bench.sh", "--gate", newFile, oldFile)
	cmd.Env = append(os.Environ(), env...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("gate did not run: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

func TestBenchGatePassesOnImprovement(t *testing.T) {
	dir := t.TempDir()
	old := benchJSON(t, dir, "old.json", []string{
		`{"name": "BenchmarkA", "ns_per_op": 1000, "bytes_per_op": 64, "allocs_per_op": 100}`,
		`{"name": "BenchmarkB", "ns_per_op": 500, "bytes_per_op": 0, "allocs_per_op": 0}`,
	})
	// A improves, B is unchanged, C is new: all fine.
	now := benchJSON(t, dir, "new.json", []string{
		`{"name": "BenchmarkA", "ns_per_op": 900, "bytes_per_op": 32, "allocs_per_op": 40}`,
		`{"name": "BenchmarkB", "ns_per_op": 500, "bytes_per_op": 0, "allocs_per_op": 0}`,
		`{"name": "BenchmarkC", "ns_per_op": 10, "bytes_per_op": 0, "allocs_per_op": 1}`,
	})
	report := filepath.Join(dir, "gate.txt")
	out, code := runGate(t, []string{"GATE_REPORT=" + report}, now, old)
	if code != 0 {
		t.Fatalf("gate failed on an improvement (exit %d):\n%s", code, out)
	}
	if !strings.Contains(out, "new in") {
		t.Errorf("gate did not note the new benchmark:\n%s", out)
	}
	if b, err := os.ReadFile(report); err != nil || !strings.Contains(string(b), "BenchmarkA") {
		t.Errorf("GATE_REPORT not written (err=%v):\n%s", err, b)
	}
}

func TestBenchGateFailsOnInjectedRegression(t *testing.T) {
	dir := t.TempDir()
	old := benchJSON(t, dir, "old.json", []string{
		`{"name": "BenchmarkA", "ns_per_op": 1000, "bytes_per_op": 64, "allocs_per_op": 100}`,
		`{"name": "BenchmarkB", "ns_per_op": 1000, "bytes_per_op": 64, "allocs_per_op": 1000}`,
	})
	// A slips past the ns tolerance, B past the allocs tolerance+slack.
	now := benchJSON(t, dir, "new.json", []string{
		`{"name": "BenchmarkA", "ns_per_op": 2000, "bytes_per_op": 64, "allocs_per_op": 100}`,
		`{"name": "BenchmarkB", "ns_per_op": 1000, "bytes_per_op": 64, "allocs_per_op": 1500}`,
	})
	out, code := runGate(t, nil, now, old)
	if code != 1 {
		t.Fatalf("gate exit = %d, want 1 on injected regression:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION(ns/op)") {
		t.Errorf("ns/op regression not flagged:\n%s", out)
	}
	if !strings.Contains(out, "REGRESSION(allocs/op)") {
		t.Errorf("allocs/op regression not flagged:\n%s", out)
	}
}

func TestBenchGateToleranceAndSkips(t *testing.T) {
	dir := t.TempDir()
	old := benchJSON(t, dir, "old.json", []string{
		`{"name": "BenchmarkTiny", "ns_per_op": 100, "bytes_per_op": 0, "allocs_per_op": 3}`,
		`{"name": "BenchmarkCdivetModule", "ns_per_op": 1000, "bytes_per_op": 0, "allocs_per_op": 1000}`,
		`{"name": "BenchmarkGone", "ns_per_op": 50, "bytes_per_op": 0, "allocs_per_op": 1}`,
	})
	// Tiny grows 3->5 allocs (inside the absolute slack); the lint-suite
	// self-benchmark doubles its allocs (ungated by default because the repo
	// it analyzes grows every PR); Gone was dropped (warning, not failure).
	now := benchJSON(t, dir, "new.json", []string{
		`{"name": "BenchmarkTiny", "ns_per_op": 100, "bytes_per_op": 0, "allocs_per_op": 5}`,
		`{"name": "BenchmarkCdivetModule", "ns_per_op": 1000, "bytes_per_op": 0, "allocs_per_op": 2000}`,
	})
	out, code := runGate(t, nil, now, old)
	if code != 0 {
		t.Fatalf("gate exit = %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "allocs ungated") {
		t.Errorf("GATE_ALLOC_SKIP default not applied:\n%s", out)
	}
	if !strings.Contains(out, "WARNING") || !strings.Contains(out, "BenchmarkGone") {
		t.Errorf("dropped benchmark not warned about:\n%s", out)
	}

	// The same skip defeated: point GATE_ALLOC_SKIP elsewhere and the
	// doubled allocs must fail.
	out, code = runGate(t, []string{"GATE_ALLOC_SKIP=^$"}, now, old)
	if code != 1 || !strings.Contains(out, "REGRESSION(allocs/op)") {
		t.Errorf("gate exit = %d with skip disabled, want 1 and an allocs/op flag:\n%s", code, out)
	}
}

func TestBenchGateWaiver(t *testing.T) {
	dir := t.TempDir()
	old := benchJSON(t, dir, "old.json", []string{
		`{"name": "BenchmarkStep", "ns_per_op": 1000, "bytes_per_op": 64, "allocs_per_op": 100}`,
	})
	// A deliberate step: both axes regress well past tolerance.
	now := benchJSON(t, dir, "new.json", []string{
		`{"name": "BenchmarkStep", "ns_per_op": 2000, "bytes_per_op": 64, "allocs_per_op": 300}`,
	})

	// Waiver pinned to this benchmark and this recording: reported, not fatal.
	out, code := runGate(t, []string{`GATE_WAIVE=^BenchmarkStep@new\.json$`}, now, old)
	if code != 0 {
		t.Fatalf("gate exit = %d with matching waiver, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "waived(GATE_WAIVE)") || !strings.Contains(out, "REGRESSION(ns/op,allocs/op)") {
		t.Errorf("waived step not reported as an acknowledged regression:\n%s", out)
	}

	// Self-expiry: the same waiver pinned to a recording that is no longer
	// the gate's NEW side must not suppress anything.
	out, code = runGate(t, []string{`GATE_WAIVE=^BenchmarkStep@older\.json$`}, now, old)
	if code != 1 || !strings.Contains(out, "REGRESSION(ns/op,allocs/op)") {
		t.Errorf("gate exit = %d with expired waiver, want 1 and a flag:\n%s", code, out)
	}
}
