package trace

import (
	"sort"

	"repro/internal/sim"
)

// Span is a half-open busy interval on a device engine.
type Span struct {
	Start sim.Time
	End   sim.Time
}

// Duration returns the span length.
func (s Span) Duration() sim.Duration { return s.End.Sub(s.Start) }

// mergeSpans coalesces overlapping or touching spans (input need not be
// sorted).
func mergeSpans(spans []Span) []Span {
	if len(spans) == 0 {
		return nil
	}
	s := append([]Span(nil), spans...)
	sort.Slice(s, func(i, j int) bool { return s[i].Start < s[j].Start })
	out := s[:1]
	for _, sp := range s[1:] {
		last := &out[len(out)-1]
		if sp.Start <= last.End {
			if sp.End > last.End {
				last.End = sp.End
			}
			continue
		}
		out = append(out, sp)
	}
	return out
}

// ComputeSpans returns the merged busy intervals of the compute engine.
func (t *Trace) ComputeSpans() []Span {
	spans := make([]Span, 0, len(t.Kernels))
	for _, k := range t.Kernels {
		spans = append(spans, Span{Start: k.Start, End: k.End})
	}
	return mergeSpans(spans)
}

// ComputeGaps returns the idle intervals of the compute engine between the
// recording bounds — the gaps whose growth under slack is precisely the
// GPU starvation the paper studies.
func (t *Trace) ComputeGaps() []Span {
	busy := t.ComputeSpans()
	var gaps []Span
	cursor := t.Started
	for _, b := range busy {
		if b.Start > cursor {
			gaps = append(gaps, Span{Start: cursor, End: b.Start})
		}
		if b.End > cursor {
			cursor = b.End
		}
	}
	if t.Ended > cursor {
		gaps = append(gaps, Span{Start: cursor, End: t.Ended})
	}
	return gaps
}

// GapDurations returns the idle-gap lengths in seconds, ready for the
// stats package.
func (t *Trace) GapDurations() []float64 {
	gaps := t.ComputeGaps()
	out := make([]float64, len(gaps))
	for i, g := range gaps {
		out[i] = float64(g.Duration())
	}
	return out
}

// ComputeUtilization returns busy time over the recorded runtime for the
// compute engine (exact: overlapping kernels cannot exist, and spans are
// merged anyway).
func (t *Trace) ComputeUtilization() float64 {
	rt := t.Runtime()
	if rt <= 0 {
		return 0
	}
	var busy sim.Duration
	for _, s := range t.ComputeSpans() {
		busy += s.Duration()
	}
	return float64(busy) / float64(rt)
}

// WarmupTotal sums the starvation penalty recorded across all kernels —
// the device-side cost the slack model predicts.
func (t *Trace) WarmupTotal() sim.Duration {
	var total sim.Duration
	for _, k := range t.Kernels {
		total += k.Warmup
	}
	return total
}

// LongestGap returns the largest compute idle gap (zero Span when the
// trace has no gaps).
func (t *Trace) LongestGap() Span {
	var best Span
	for _, g := range t.ComputeGaps() {
		if g.Duration() > best.Duration() {
			best = g
		}
	}
	return best
}
