// Package mpi provides a miniature message-passing runtime over the
// discrete-event simulator: ranks as simulated processes, point-to-point
// send/receive with a latency/bandwidth cost model, and the collectives the
// workloads need (Barrier, Bcast, Allreduce, Gather).
//
// The LAMMPS mini-app uses it for domain-decomposition halo exchange; the
// Horovod layer builds gradient averaging on Allreduce. Costs follow the
// classic alpha-beta model with ring algorithms for the dense collectives.
package mpi

import (
	"fmt"
	"strconv"

	"repro/internal/sim"
)

// CostModel is the alpha-beta communication model: each message costs
// Alpha + bytes/Beta on the critical path.
type CostModel struct {
	// Alpha is the per-message latency.
	Alpha sim.Duration
	// Beta is the link bandwidth in bytes/second.
	Beta float64
}

// IntraNode returns the cost model for ranks on one node (shared-memory
// transport): sub-microsecond latency, memory-bus bandwidth.
func IntraNode() CostModel {
	return CostModel{Alpha: 400 * sim.Nanosecond, Beta: 40e9}
}

// InterNode returns the cost model for ranks across an HPC network
// (the ~1 µs half-round-trip regime the paper cites).
func InterNode() CostModel {
	return CostModel{Alpha: 1 * sim.Microsecond, Beta: 23e9}
}

// NVLink returns the cost model for GPUs coupled inside one chassis with
// NVLink-class links — the tight GPU-to-GPU coupling the paper's
// Discussion credits CDI chassis with enabling for collectives.
func NVLink() CostModel {
	return CostModel{Alpha: 150 * sim.Nanosecond, Beta: 150e9}
}

// transferTime returns the cost of moving n bytes point-to-point.
func (c CostModel) transferTime(n int64) sim.Duration {
	if n < 0 {
		panic("mpi: negative message size")
	}
	t := c.Alpha
	if c.Beta > 0 {
		t += sim.Duration(float64(n) / c.Beta)
	}
	return t
}

// message is one in-flight point-to-point payload.
type message struct {
	src, tag int
	bytes    int64
	payload  any
}

// World is a communicator: a fixed set of ranks over one environment.
//
// The shard annotations use one domain name for every rank: affinity is
// tracked at the domain-name level, so rank-to-rank traffic (a send into
// another rank's inbox) is in-domain by construction — the invariant the
// annotations encode is "only rank procs touch communicator state", not
// "only rank i touches rank i's inbox".
type World struct {
	env  *sim.Env
	size int
	cost CostModel
	// inbox holds in-flight messages per destination rank.
	//cdivet:shard(mpi.rank)
	inbox [][]*message
	avail []*sim.Signal
	// shards is the binder: one event domain per rank.
	//cdivet:shard(mpi.rank)
	shards []*sim.Shard

	//cdivet:shard(mpi.rank)
	collSeq []int
	//cdivet:shard(mpi.rank)
	colls map[int]*collective
	//cdivet:shard(mpi.rank)
	bytesP2P int64
	//cdivet:shard(mpi.rank)
	msgsP2P int64
}

// collective is the rendezvous state for one collective call site.
type collective struct {
	arrived  int
	picked   int
	payloads []any
	result   any
	done     *sim.Signal
	kind     string
}

// NewWorld creates a communicator of the given size on env. Spawn rank
// processes with Spawn, then drive env.Run.
func NewWorld(env *sim.Env, size int, cost CostModel) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	w := &World{
		env:     env,
		size:    size,
		cost:    cost,
		inbox:   make([][]*message, size),
		avail:   make([]*sim.Signal, size),
		shards:  make([]*sim.Shard, size),
		collSeq: make([]int, size),
		colls:   make(map[int]*collective),
	}
	for i := range w.avail {
		w.avail[i] = sim.NewSignal(env)
		// One event domain per rank: each rank's compute sleeps and message
		// waits live in their own queue, mirroring the per-node hardware.
		w.shards[i] = env.NewShard()
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Cost returns the communicator's cost model.
func (w *World) Cost() CostModel { return w.cost }

// MessagesSent returns the number of point-to-point messages delivered.
func (w *World) MessagesSent() int64 { return w.msgsP2P }

// BytesSent returns the point-to-point payload bytes delivered.
func (w *World) BytesSent() int64 { return w.bytesP2P }

// Rank is one process's endpoint in a World.
type Rank struct {
	w    *World
	rank int
	p    *sim.Proc
}

// Spawn starts fn as the body of the given rank. Each rank of the world
// must be spawned exactly once.
func (w *World) Spawn(rank int, fn func(r *Rank)) {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of world size %d", rank, w.size))
	}
	w.shards[rank].Spawn("rank"+strconv.Itoa(rank), func(p *sim.Proc) {
		fn(&Rank{w: w, rank: rank, p: p})
	})
}

// SpawnAll starts fn on every rank.
func (w *World) SpawnAll(fn func(r *Rank)) {
	for i := 0; i < w.size; i++ {
		w.Spawn(i, fn)
	}
}

// Rank returns this endpoint's rank index.
func (r *Rank) Rank() int { return r.rank }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.size }

// Proc returns the simulated process executing this rank.
func (r *Rank) Proc() *sim.Proc { return r.p }

// Send transmits payload (with an explicit wire size in bytes) to rank dst
// with the given tag. The sender blocks for the transfer cost; the message
// becomes receivable when Send returns (a rendezvous-free eager model whose
// cost lands on the sender, the pessimistic accounting).
func (r *Rank) Send(dst, tag int, bytes int64, payload any) {
	if dst < 0 || dst >= r.w.size {
		panic(fmt.Sprintf("mpi: send to rank %d of %d", dst, r.w.size))
	}
	r.p.Sleep(r.w.cost.transferTime(bytes))
	r.w.inbox[dst] = append(r.w.inbox[dst], &message{src: r.rank, tag: tag, bytes: bytes, payload: payload})
	r.w.msgsP2P++
	r.w.bytesP2P += bytes
	r.w.avail[dst].Fire()
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload and size.
func (r *Rank) Recv(src, tag int) (any, int64) {
	for {
		box := r.w.inbox[r.rank]
		for i, m := range box {
			if m.src == src && m.tag == tag {
				r.w.inbox[r.rank] = append(box[:i], box[i+1:]...)
				return m.payload, m.bytes
			}
		}
		r.w.avail[r.rank].Wait(r.p)
	}
}

// Sendrecv exchanges messages with a partner rank without deadlocking:
// both sides' sends complete before either receive is required.
func (r *Rank) Sendrecv(dst, sendTag int, bytes int64, payload any, src, recvTag int) (any, int64) {
	r.Send(dst, sendTag, bytes, payload)
	return r.Recv(src, recvTag)
}

// enterCollective synchronizes all ranks at one collective call site. The
// reduce function runs once, on the last-arriving rank, over all payloads
// in rank order. Every rank then pays cost before proceeding.
func (r *Rank) enterCollective(kind string, payload any, cost sim.Duration, reduce func(payloads []any) any) any {
	w := r.w
	seq := w.collSeq[r.rank]
	w.collSeq[r.rank]++
	st, ok := w.colls[seq]
	if !ok {
		st = &collective{
			payloads: make([]any, w.size),
			done:     sim.NewSignal(w.env),
			kind:     kind,
		}
		w.colls[seq] = st
	}
	if st.kind != kind {
		panic(fmt.Sprintf("mpi: collective mismatch at sequence %d: %s vs %s (ranks diverged)", seq, st.kind, kind))
	}
	st.payloads[r.rank] = payload
	st.arrived++
	if st.arrived == w.size {
		if reduce != nil {
			st.result = reduce(st.payloads)
		}
		st.done.Fire()
	} else {
		st.done.Wait(r.p)
	}
	res := st.result
	st.picked++
	if st.picked == w.size {
		delete(w.colls, seq)
	}
	r.p.Sleep(cost)
	return res
}

// Barrier blocks until every rank reaches it; cost is a log-depth
// latency tree.
func (r *Rank) Barrier() {
	cost := r.w.cost.Alpha * sim.Duration(log2ceil(r.w.size))
	r.enterCollective("barrier", nil, cost, nil)
}

// Op is a reduction operator for Allreduce.
type Op int

const (
	// OpSum element-wise adds.
	OpSum Op = iota
	// OpMax takes the element-wise maximum.
	OpMax
	// OpMin takes the element-wise minimum.
	OpMin
)

// Allreduce combines each rank's vector element-wise with op and returns
// the combined vector to every rank. The cost follows the ring algorithm:
// 2(P-1) steps, each moving bytes/P.
func (r *Rank) Allreduce(values []float64, op Op) []float64 {
	bytes := int64(len(values) * 8)
	cost := r.ringCost(bytes)
	res := r.enterCollective("allreduce", values, cost, func(payloads []any) any {
		if len(payloads) == 0 {
			return []float64(nil)
		}
		first := payloads[0].([]float64)
		out := append([]float64(nil), first...)
		for _, pl := range payloads[1:] {
			vec := pl.([]float64)
			if len(vec) != len(out) {
				panic(fmt.Sprintf("mpi: allreduce length mismatch: %d vs %d", len(vec), len(out)))
			}
			for i, v := range vec {
				switch op {
				case OpSum:
					out[i] += v
				case OpMax:
					if v > out[i] {
						out[i] = v
					}
				case OpMin:
					if v < out[i] {
						out[i] = v
					}
				default:
					panic(fmt.Sprintf("mpi: unknown op %d", op))
				}
			}
		}
		return out
	})
	return res.([]float64)
}

// ringCost is the ring-allreduce critical path for n payload bytes.
func (r *Rank) ringCost(n int64) sim.Duration {
	p := r.w.size
	if p == 1 {
		return 0
	}
	steps := sim.Duration(2 * (p - 1))
	chunk := float64(n) / float64(p)
	per := r.w.cost.Alpha
	if r.w.cost.Beta > 0 {
		per += sim.Duration(chunk / r.w.cost.Beta)
	}
	return steps * per
}

// Bcast distributes root's vector to every rank (binomial-tree cost).
func (r *Rank) Bcast(values []float64, root int) []float64 {
	if root < 0 || root >= r.w.size {
		panic(fmt.Sprintf("mpi: bcast root %d of %d", root, r.w.size))
	}
	bytes := int64(len(values) * 8)
	cost := sim.Duration(log2ceil(r.w.size)) * r.w.cost.transferTime(bytes)
	var payload any
	if r.rank == root {
		payload = values
	}
	res := r.enterCollective("bcast", payload, cost, func(payloads []any) any {
		return payloads[root]
	})
	if res == nil {
		return nil
	}
	return append([]float64(nil), res.([]float64)...)
}

// Gather collects every rank's vector at root (returned in rank order);
// non-root ranks receive nil.
func (r *Rank) Gather(values []float64, root int) [][]float64 {
	if root < 0 || root >= r.w.size {
		panic(fmt.Sprintf("mpi: gather root %d of %d", root, r.w.size))
	}
	bytes := int64(len(values) * 8)
	// Root receives P-1 messages serialized at its NIC.
	cost := sim.Duration(r.w.size-1) * r.w.cost.transferTime(bytes)
	res := r.enterCollective("gather", values, cost, func(payloads []any) any {
		out := make([][]float64, len(payloads))
		for i, pl := range payloads {
			if pl != nil {
				out[i] = pl.([]float64)
			}
		}
		return out
	})
	if r.rank != root {
		return nil
	}
	return res.([][]float64)
}

// AllreduceBytes synchronizes all ranks and charges the ring-allreduce
// cost for n payload bytes without moving data — the cost-model path used
// by performance-mode workloads whose gradient buffers would be wasteful
// to materialize.
func (r *Rank) AllreduceBytes(n int64) {
	if n < 0 {
		panic("mpi: negative allreduce size")
	}
	r.enterCollective("allreduce-bytes", nil, r.ringCost(n), nil)
}

// AllreduceScalar is Allreduce for a single value.
func (r *Rank) AllreduceScalar(v float64, op Op) float64 {
	return r.Allreduce([]float64{v}, op)[0]
}

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	return k
}
