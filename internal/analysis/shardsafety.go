package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"strings"
)

// ShardSafety reports writes to shard-owned state from processes whose
// inferred shard affinity is different from (or wider than) the owning
// domain, unless the write is ordered after a sim.Signal wait point.
//
// The sharded engine keeps one global (time, seq) delivery order, so
// cross-shard mutation is not a data race in the Go sense — it is a
// determinism hazard: state owned by one domain's procs observed or mutated
// mid-quantum by another domain's procs couples results to scheduling
// details the shard layout is supposed to make irrelevant. The rule enforces
// the discipline DESIGN.md's "Shard affinity invariants" section states:
// shard-owned state is written by its own domain, or the writer first parks
// on a Signal (Wait/WaitTimeout), making the ordering an explicit
// happens-before edge in the event graph.
//
// A write that is immediately published back to the owning domain by a
// Signal Fire/FireOne later in the same body (the mutate-then-fire handoff
// idiom) is still reported, but carries an autofix inserting the suppression
// directive, because the fire makes the ordering explicit and reviewable.
var ShardSafety = &Analyzer{
	Name:      "shardsafety",
	Doc:       "write to shard-owned state from a proc with different or unknown shard affinity",
	RunModule: runShardSafety,
}

func runShardSafety(mp *ModulePass) {
	sc := shardContextFor(mp.Module)
	for _, bad := range sc.ann.bad {
		mp.Reportf(bad.pos, "%s", bad.msg)
	}
	for _, r := range sc.regions {
		if r.inSimPackage() || len(r.affinity) == 0 {
			continue
		}
		checkRegionWrites(mp, sc, r)
	}
}

// checkRegionWrites scans one region's own statements for writes to
// annotated state fields and reports the cross-domain ones.
func checkRegionWrites(mp *ModulePass, sc *shardContext, r *shardRegion) {
	info := r.pkg.Info

	// Signal wait and fire positions in this region, in source order. A wait
	// earlier in the body is a happens-before edge covering later writes; a
	// fire later in the body marks the mutate-then-fire handoff that makes a
	// finding autofixable.
	var waits, fires []token.Pos
	inspectRegion(r.body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, _, ok := simMethod(info, call, "Signal"); ok {
			switch name {
			case "Wait", "WaitTimeout":
				waits = append(waits, call.Pos())
			case "Fire", "FireOne":
				fires = append(fires, call.Pos())
			}
		}
		return true
	})

	report := func(stmt ast.Stmt, target ast.Expr) {
		fi := annotatedStateField(sc, info, target)
		if fi == nil {
			return
		}
		if len(r.affinity) == 1 && r.affinity[fi.domain] {
			return
		}
		pos := target.Pos()
		for _, w := range waits {
			if w < pos {
				return // ordered after an explicit wait point
			}
		}
		var fix *Fix
		for _, f := range fires {
			if f > pos {
				fix = shardAllowFix(mp.Module.Fset, stmt)
				break
			}
		}
		mp.ReportFixf(pos, fix,
			"write to %s (owned by shard domain %s) from %s with shard affinity %s; run the writer on the owning domain or order the write after a sim.Signal wait point",
			fi.owner, fi.domain, r.describe(), affinityLabel(r.affinity))
	}

	inspectRegion(r.body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				report(node, lhs)
			}
		case *ast.IncDecStmt:
			report(node, node.X)
		}
		return true
	})
}

// annotatedStateField walks a write target's selector chain outward and
// returns the first annotated state field it crosses: d.counters.Kernels++
// is a write to the annotated counters field even though Kernels itself
// carries no annotation. Binder fields never match — reassigning a *Shard
// pointer is a topology change, not a state write.
func annotatedStateField(sc *shardContext, info *types.Info, e ast.Expr) *shardFieldInfo {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if s, ok := info.Selections[x]; ok {
				if v, ok := s.Obj().(*types.Var); ok {
					if fi := sc.ann.fields[v]; fi != nil && !fi.binder {
						return fi
					}
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// shardAllowFix builds the directive-insertion fix for a mutate-then-fire
// handoff site: a suppression line above the write, matching its
// indentation. Writes sharing a line with other code get no fix.
func shardAllowFix(fset *token.FileSet, stmt ast.Stmt) *Fix {
	pos := fset.Position(stmt.Pos())
	src, err := os.ReadFile(pos.Filename)
	if err != nil {
		return nil
	}
	tf := fset.File(stmt.Pos())
	lineStart := tf.Offset(tf.LineStart(pos.Line))
	if lineStart < 0 || pos.Offset > len(src) {
		return nil
	}
	indent := string(src[lineStart:pos.Offset])
	if strings.TrimSpace(indent) != "" {
		return nil
	}
	return &Fix{
		Message: "record the mutate-then-fire handoff as an explicit suppression",
		Edits: []TextEdit{{
			File:   pos.Filename,
			Offset: lineStart,
			End:    lineStart,
			Text:   indent + "//cdivet:allow shardsafety cross-shard handoff: the write is published to the owning domain by the Signal fire below\n",
		}},
	}
}
