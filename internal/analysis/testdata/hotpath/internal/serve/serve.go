// Package serve mirrors the real internal/serve shape: Engine.batcher is a
// configured hot root (matched by package-path suffix), so corpus findings
// prove the root config works without a directive.
package serve

// Engine is a minimal stand-in for the serving engine.
type Engine struct {
	queue []string
	log   []string
}

// batcher is the configured steady-state root.
func (e *Engine) batcher() {
	for _, q := range e.queue {
		e.log = append(e.log, "q:"+q) // want
	}
}
