package serve

import (
	"testing"

	"repro/internal/cuda"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/sim"
)

// stubSignal is a fixed CapacitySignal.
type stubSignal bool

func (s stubSignal) Degraded() bool { return bool(s) }

// runAdmission serves a hand-built schedule on a node-local A100 under
// the given admission config and returns the engine.
func runAdmission(t *testing.T, policy Policy, tenants []Tenant, adm Admission, reqs []Request) *Engine {
	t.Helper()
	return runAdmissionCfg(t, Config{Policy: policy, Tenants: tenants, Admission: adm}, reqs)
}

func runAdmissionCfg(t *testing.T, cfg Config, reqs []Request) *Engine {
	t.Helper()
	env := sim.NewEnv()
	defer env.Close()
	dev, err := gpu.NewDevice(env, gpu.A100())
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	e, err := Start(env, NewLocal(cuda.NewContext(dev, cuda.Config{})), cfg, reqs)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	env.Run()
	if e.Err() != nil {
		t.Fatalf("engine error: %v", e.Err())
	}
	return e
}

func TestShedExpiredRequests(t *testing.T) {
	// One long request holds the device while four more queue up; their
	// 1 ms SLO expires in the queue, so an armed gate sheds all four —
	// counted shed, not failed, and none bills device time.
	tenants := []Tenant{{Name: "tight", Rate: 1, MeanPromptTokens: 8, MeanOutputTokens: 8, SLO: sim.Millisecond}}
	reqs := []Request{
		{ID: 0, Arrival: 0, PromptTokens: 8, OutputTokens: 500},
	}
	for i := 1; i < 5; i++ {
		reqs = append(reqs, Request{ID: i, Arrival: sim.Time(0).Add(100 * sim.Microsecond), PromptTokens: 8, OutputTokens: 1})
	}
	e := runAdmission(t, NoBatch, tenants, Admission{ShedExpired: true}, reqs)
	m := e.Metrics()
	if m.Completed != 1 || m.Shed != 4 {
		t.Fatalf("completed/shed = %d/%d, want 1/4", m.Completed, m.Shed)
	}
	if got := m.ShedByTenant[0]; got != 4 {
		t.Errorf("ShedByTenant[0] = %d, want 4", got)
	}
	rep := m.Report(testWindow)
	if rep.Failed != 0 {
		t.Errorf("report counts %d failed; shed requests are not failures", rep.Failed)
	}
	if rep.Shed != 4 || rep.ShedRate != 0.8 {
		t.Errorf("report shed/rate = %d/%g, want 4/0.8", rep.Shed, rep.ShedRate)
	}
}

func TestShedDisarmedWithoutDegradation(t *testing.T) {
	// The same overload with a healthy capacity signal sheds nothing: the
	// gate is armed only while the pool is degraded.
	tenants := []Tenant{{Name: "tight", Rate: 1, MeanPromptTokens: 8, MeanOutputTokens: 8, SLO: sim.Millisecond}}
	reqs := []Request{{ID: 0, Arrival: 0, PromptTokens: 8, OutputTokens: 500}}
	for i := 1; i < 5; i++ {
		reqs = append(reqs, Request{ID: i, Arrival: sim.Time(0).Add(100 * sim.Microsecond), PromptTokens: 8, OutputTokens: 1})
	}
	e := runAdmission(t, NoBatch, tenants,
		Admission{ShedExpired: true, MaxQueue: 2, Capacity: stubSignal(false)}, reqs)
	m := e.Metrics()
	if m.Completed != 5 || m.Shed != 0 {
		t.Fatalf("completed/shed = %d/%d, want 5/0", m.Completed, m.Shed)
	}
}

func TestBackpressureShedsLowestPriorityFirst(t *testing.T) {
	// Queue cap 2 while a long request occupies the device. Arrival order:
	// A1, B1 fill the queue; A2 overflows it and evicts B1 (priority 1 >
	// priority 0, latest such arrival); B2 overflows and sheds itself
	// (nothing queued ranks below priority 1). The protected tenant A
	// loses nothing.
	tenants := []Tenant{
		{Name: "protected", Rate: 1, MeanPromptTokens: 8, MeanOutputTokens: 8, SLO: sim.Second, Priority: 0},
		{Name: "besteffort", Rate: 1, MeanPromptTokens: 8, MeanOutputTokens: 8, SLO: sim.Second, Priority: 1},
	}
	at := func(us int) sim.Time { return sim.Time(0).Add(sim.Duration(us) * sim.Microsecond) }
	reqs := []Request{
		{ID: 0, Tenant: 0, Arrival: 0, PromptTokens: 8, OutputTokens: 200},
		{ID: 1, Tenant: 0, Arrival: at(100), PromptTokens: 8, OutputTokens: 1}, // A1
		{ID: 2, Tenant: 1, Arrival: at(110), PromptTokens: 8, OutputTokens: 1}, // B1: evicted
		{ID: 3, Tenant: 0, Arrival: at(120), PromptTokens: 8, OutputTokens: 1}, // A2
		{ID: 4, Tenant: 1, Arrival: at(130), PromptTokens: 8, OutputTokens: 1}, // B2: self-shed
	}
	e := runAdmission(t, NoBatch, tenants, Admission{MaxQueue: 2}, reqs)
	m := e.Metrics()
	if m.Completed != 3 || m.Shed != 2 {
		t.Fatalf("completed/shed = %d/%d, want 3/2", m.Completed, m.Shed)
	}
	if m.ShedByTenant[0] != 0 || m.ShedByTenant[1] != 2 {
		t.Errorf("shed by tenant = %v, want [0 2]", m.ShedByTenant)
	}
}

func TestBackpressureTieShedsIncoming(t *testing.T) {
	// With only equal-priority requests queued, the incoming request
	// sheds itself: queued work is older and closer to its deadline, so
	// displacing it would waste the wait already paid.
	tenants := []Tenant{{Name: "only", Rate: 1, MeanPromptTokens: 8, MeanOutputTokens: 8, SLO: sim.Second}}
	at := func(us int) sim.Time { return sim.Time(0).Add(sim.Duration(us) * sim.Microsecond) }
	reqs := []Request{
		{ID: 0, Arrival: 0, PromptTokens: 8, OutputTokens: 200},
		{ID: 1, Arrival: at(100), PromptTokens: 8, OutputTokens: 1},
		{ID: 2, Arrival: at(110), PromptTokens: 8, OutputTokens: 1},
		{ID: 3, Arrival: at(120), PromptTokens: 8, OutputTokens: 1}, // self-shed
	}
	e := runAdmission(t, NoBatch, tenants, Admission{MaxQueue: 2}, reqs)
	m := e.Metrics()
	if m.Completed != 3 || m.Shed != 1 {
		t.Fatalf("completed/shed = %d/%d, want 3/1", m.Completed, m.Shed)
	}
	// The completed set is exactly {0,1,2}: three latencies recorded.
	if len(m.Latencies) != 3 {
		t.Errorf("recorded %d latencies, want 3", len(m.Latencies))
	}
}

func TestShedEverythingStillTerminates(t *testing.T) {
	// Every queued request expires while one long request runs, including
	// the final arrival — the engine must notice completion via the shed
	// count, not hang waiting for more work.
	tenants := []Tenant{{Name: "tight", Rate: 1, MeanPromptTokens: 8, MeanOutputTokens: 8, SLO: sim.Millisecond}}
	reqs := []Request{{ID: 0, Arrival: 0, PromptTokens: 8, OutputTokens: 500}}
	for i := 1; i < 4; i++ {
		reqs = append(reqs, Request{ID: i, Arrival: sim.Time(0).Add(sim.Duration(i) * sim.Millisecond), PromptTokens: 8, OutputTokens: 1})
	}
	for _, policy := range []Policy{NoBatch, FixedBatch, Continuous} {
		// MaxBatch 1 keeps continuous batching from absorbing the queue
		// into the active batch before the waits expire.
		e := runAdmissionCfg(t, Config{Policy: policy, MaxBatch: 1, Tenants: tenants,
			Admission: Admission{ShedExpired: true}}, reqs)
		m := e.Metrics()
		if m.Completed+m.Shed != len(reqs) {
			t.Errorf("%v: completed %d + shed %d != %d offered", policy, m.Completed, m.Shed, len(reqs))
		}
		if m.Shed == 0 {
			t.Errorf("%v: expected expired requests to be shed", policy)
		}
	}
}

func TestAdmissionMergeAndPriorityValidation(t *testing.T) {
	a := newMetrics()
	b := newMetrics()
	a.shed(0)
	b.shed(2)
	b.shed(2)
	a.Merge(b)
	if a.Shed != 3 {
		t.Errorf("merged shed = %d, want 3", a.Shed)
	}
	want := []int{1, 0, 2}
	for i, n := range want {
		if a.ShedByTenant[i] != n {
			t.Errorf("merged ShedByTenant = %v, want %v", a.ShedByTenant, want)
			break
		}
	}
	bad := Tenant{Name: "x", Rate: 1, MeanPromptTokens: 1, MeanOutputTokens: 1, SLO: sim.Second, Priority: -1}
	if err := bad.validate(); err == nil {
		t.Error("negative tenant priority accepted")
	}
}

func TestRebalanceRedealsAndRestores(t *testing.T) {
	tenants := testTenants()
	tiers := []Tier{{Scale: fabric.RackScale, GPUs: 2}, {Scale: fabric.RowScale, GPUs: 1}}
	replicas, err := Place(tenants, tiers)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	original := make([][]int, len(replicas))
	for i, r := range replicas {
		original[i] = append([]int(nil), r.Tenants...)
	}
	// Replica 0 (lowest slack) drains: its tenants must re-deal onto the
	// survivors, preserving the slack/SLO discipline.
	if err := Rebalance(replicas, tenants, func(i int) bool { return i != 0 }); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if len(replicas[0].Tenants) != 0 {
		t.Errorf("drained replica still owns tenants %v", replicas[0].Tenants)
	}
	seen := 0
	for _, r := range replicas[1:] {
		seen += len(r.Tenants)
	}
	if seen != len(tenants) {
		t.Errorf("%d of %d tenants placed on survivors", seen, len(tenants))
	}
	// Nothing up is an error.
	if err := Rebalance(replicas, tenants, func(int) bool { return false }); err == nil {
		t.Error("rebalance with no live replicas succeeded")
	}
	// Everything back up restores the original placement exactly.
	if err := Rebalance(replicas, tenants, func(int) bool { return true }); err != nil {
		t.Fatalf("Rebalance (restore): %v", err)
	}
	for i, r := range replicas {
		if len(r.Tenants) != len(original[i]) {
			t.Fatalf("replica %d: restored %v, want %v", i, r.Tenants, original[i])
		}
		for k := range r.Tenants {
			if r.Tenants[k] != original[i][k] {
				t.Fatalf("replica %d: restored %v, want %v", i, r.Tenants, original[i])
			}
		}
	}
}
