package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// SimUnits type-checks the units of sim.Duration arithmetic. sim.Duration
// is float64 *seconds*; the paper's claims live at microsecond scale, so
// the two classic slips are (a) a raw numeric literal used as a Duration —
// `p.Sleep(5)` is five SECONDS, almost never what a µs-scale model means —
// and (b) re-wrapping a unit-projected float, `sim.Duration(d.Micros())`,
// which silently reinterprets a microsecond count as seconds (a 1e6×
// error on a scheduling path).
//
// Legal forms: a literal times a unit constant (100 * sim.Microsecond), any
// named Duration constant, the zero literal, and constants used as scalar
// factors (d * 2, d / 10 — the other operand carries the unit). Test files
// are exempt (they assert on raw values), and internal/sim itself is exempt
// as the package that defines the unit constants from raw literals.
var SimUnits = &Analyzer{
	Name: "simunits",
	Doc:  "raw numeric literal as sim.Duration (seconds!) or float64 unit round-trip (sim.Duration(d.Micros())) on a scheduling path",
	Run:  runSimUnits,
}

func runSimUnits(pass *Pass) {
	if strings.HasSuffix(pass.Path, "/internal/sim") {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		runSimUnitsFile(pass, f)
	}
}

func runSimUnitsFile(pass *Pass, f *ast.File) {
	// Round-trip check: sim.Duration(x) where x projects a Duration into a
	// scaled float64.
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if unit := roundTripUnit(pass.Info, call); unit != "" {
				pass.Reportf(call.Pos(), "sim.Duration(x.%s()) reinterprets a %s count as seconds; keep the value a sim.Duration (or divide by the unit explicitly)", unit, unitName(unit))
			}
		}
		return true
	})

	// Raw-literal check: flag maximal constant sim.Duration expressions
	// whose syntax carries no unit identifier.
	for _, decl := range f.Decls {
		checkRawLiterals(pass, decl)
	}
}

// checkRawLiterals walks one declaration flagging constant Duration
// expressions built purely from literals.
func checkRawLiterals(pass *Pass, root ast.Node) {
	var walk func(e ast.Node, scalarOperand bool)
	walk = func(n ast.Node, scalarOperand bool) {
		if n == nil {
			return
		}
		if e, ok := n.(ast.Expr); ok {
			if isConstDuration(pass.Info, e) {
				if !scalarOperand && !mentionsDurationConst(pass.Info, e) && !isZeroConst(pass.Info, e) {
					pass.Reportf(e.Pos(), "raw numeric literal used as sim.Duration is interpreted as SECONDS; write it with an explicit unit (e.g. 100*sim.Microsecond)")
				}
				return // don't descend into a constant subtree
			}
			if bin, ok := e.(*ast.BinaryExpr); ok && (bin.Op == token.MUL || bin.Op == token.QUO) {
				walk(bin.X, true)
				walk(bin.Y, true)
				return
			}
		}
		// Generic descent in source order.
		var children []ast.Node
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			if c != nil {
				children = append(children, c)
			}
			return false
		})
		for _, c := range children {
			walk(c, false)
		}
	}
	walk(root, false)
}

// isConstDuration reports whether e is a compile-time constant whose type
// is sim.Duration.
func isConstDuration(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() == constant.Unknown {
		return false
	}
	return isSimDuration(tv.Type)
}

func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, _ := constant.Float64Val(constant.ToFloat(tv.Value))
	return v == 0
}

// mentionsDurationConst reports whether the expression's syntax references
// any named constant of type sim.Duration — a unit (sim.Microsecond) or a
// derived named span (lammps.CtxSwitch). Such expressions carry their unit
// in the source.
func mentionsDurationConst(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if c, ok := obj.(*types.Const); ok && isSimDuration(c.Type()) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isSimDuration matches the named type Duration from any .../internal/sim
// package (the corpus uses a synthetic module path).
func isSimDuration(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Duration" || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), "/internal/sim")
}

// roundTripUnit detects sim.Duration(expr-containing-d.Micros()/d.Millis())
// and returns the projecting method name.
func roundTripUnit(info *types.Info, call *ast.CallExpr) string {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || !isSimDuration(tv.Type) || len(call.Args) != 1 {
		return ""
	}
	unit := ""
	ast.Inspect(call.Args[0], func(n ast.Node) bool {
		if unit != "" {
			return false
		}
		inner, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || !isSimDuration(sig.Recv().Type()) {
			return true
		}
		if fn.Name() == "Micros" || fn.Name() == "Millis" {
			unit = fn.Name()
			return false
		}
		return true
	})
	return unit
}

func unitName(method string) string {
	switch method {
	case "Micros":
		return "microsecond"
	case "Millis":
		return "millisecond"
	}
	return method
}
