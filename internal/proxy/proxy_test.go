package proxy

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/sim"
)

func TestPaperSizes(t *testing.T) {
	want := []int{512, 2048, 8192, 32768}
	got := PaperSizes()
	if len(got) != len(want) {
		t.Fatalf("sizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", got, want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{MatrixSize: 0}); err == nil {
		t.Error("zero matrix size accepted")
	}
	if _, err := Run(Config{MatrixSize: 512, Threads: -1}); err == nil {
		t.Error("negative threads accepted")
	}
	if _, err := Run(Config{MatrixSize: 512, Slack: -1}); err == nil {
		t.Error("negative slack accepted")
	}
}

func TestMatrixMemoryGate(t *testing.T) {
	// 3 × 4 GiB × 4 threads > 40 GiB: the paper's excluded configuration.
	_, err := Run(Config{MatrixSize: 1 << 15, Threads: 4, Iters: 1})
	if !errors.Is(err, ErrDoesNotFit) {
		t.Fatalf("2^15 × 4 threads err = %v, want ErrDoesNotFit", err)
	}
	// 2 threads fit (24 GiB).
	if _, err := Run(Config{MatrixSize: 1 << 15, Threads: 2, Iters: 1}); err != nil {
		t.Fatalf("2^15 × 2 threads err = %v", err)
	}
}

func TestIterationSizing(t *testing.T) {
	// 2^9 kernel is far under 30ms ⇒ N clamps at the 1000 ceiling.
	small, err := Run(Config{MatrixSize: 1 << 9, Iters: 0})
	if err != nil {
		t.Fatal(err)
	}
	if small.Iters != MaxIters {
		t.Errorf("2^9 iters = %d, want ceiling %d", small.Iters, MaxIters)
	}
	// 2^15 kernel takes seconds ⇒ N clamps at the 5 floor.
	big, err := Run(Config{MatrixSize: 1 << 15, Iters: 0})
	if err != nil {
		t.Fatal(err)
	}
	if big.Iters != MinIters {
		t.Errorf("2^15 iters = %d, want floor %d", big.Iters, MinIters)
	}
	// 2^13 lands between the clamps, at roughly 30s/kernel.
	mid, err := Run(Config{MatrixSize: 1 << 13, Iters: 0})
	if err != nil {
		t.Fatal(err)
	}
	if mid.Iters <= MinIters || mid.Iters >= MaxIters {
		t.Errorf("2^13 iters = %d, want strictly inside [%d, %d]", mid.Iters, MinIters, MaxIters)
	}
	approx := float64(TargetComputeTime) / float64(mid.KernelTime)
	if math.Abs(float64(mid.Iters)-approx) > 1 {
		t.Errorf("2^13 iters = %d, want ≈ %.1f", mid.Iters, approx)
	}
}

func TestKernelTimeGrowsWithSize(t *testing.T) {
	var prev sim.Duration
	for _, n := range PaperSizes() {
		r, err := Run(Config{MatrixSize: n, Iters: 1})
		if err != nil {
			t.Fatal(err)
		}
		if r.KernelTime <= prev {
			t.Fatalf("kernel time for %d = %v, not larger than %v", n, r.KernelTime, prev)
		}
		prev = r.KernelTime
	}
}

func TestZeroSlackCorrectionIsIdentity(t *testing.T) {
	r, err := Run(Config{MatrixSize: 1 << 11, Iters: 20})
	if err != nil {
		t.Fatal(err)
	}
	if r.CorrectedTime != r.LoopTime {
		t.Errorf("corrected %v != loop %v at zero slack", r.CorrectedTime, r.LoopTime)
	}
	if r.DelayedCalls != 0 {
		t.Errorf("delayed calls = %d at zero slack", r.DelayedCalls)
	}
}

func TestDelayedCallCountsFivePerIteration(t *testing.T) {
	r, err := Run(Config{MatrixSize: 1 << 11, Threads: 2, Iters: 10, Slack: 1 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(CallsPerIteration * 10 * 2)
	if r.DelayedCalls != want {
		t.Errorf("delayed calls = %d, want %d", r.DelayedCalls, want)
	}
}

func TestEquationOneRemovesDirectDelay(t *testing.T) {
	base, err := Run(Config{MatrixSize: 1 << 13, Iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Small slack (well under the warm-up regime's bite at this size):
	// the corrected time must land almost exactly on the baseline.
	r, err := Run(Config{MatrixSize: 1 << 13, Iters: 10, Slack: 10 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	direct := sim.Duration(CallsPerIteration*10) * 10 * sim.Microsecond
	if got := r.LoopTime - r.CorrectedTime; math.Abs(float64(got-direct)) > 1e-12 {
		t.Errorf("correction removed %v, want %v", got, direct)
	}
	if p := Penalty(base, r); p < 0 || p > 0.01 {
		t.Errorf("penalty at 10µs on 2^13 = %v, want ≈ 0", p)
	}
}

func TestPenaltyGrowsWithSlack(t *testing.T) {
	base, err := Run(Config{MatrixSize: 1 << 11, Iters: 30})
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = -1
	for _, s := range []sim.Duration{10 * sim.Microsecond, 100 * sim.Microsecond, 1 * sim.Millisecond, 10 * sim.Millisecond} {
		r, err := Run(Config{MatrixSize: 1 << 11, Iters: 30, Slack: s})
		if err != nil {
			t.Fatal(err)
		}
		p := Penalty(base, r)
		if p < prev-1e-9 {
			t.Errorf("penalty decreased: %v at %v (prev %v)", p, s, prev)
		}
		prev = p
	}
	if prev < 0.05 {
		t.Errorf("penalty at 10ms on 2^11 = %v, want substantial (>5%%)", prev)
	}
}

func TestLargerKernelsMoreResilient(t *testing.T) {
	// Paper trend 1: longer-running kernels tolerate more slack.
	s := 1 * sim.Millisecond
	penaltyAt := func(n int) float64 {
		base, err := Run(Config{MatrixSize: n, Iters: 10})
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(Config{MatrixSize: n, Iters: 10, Slack: s})
		if err != nil {
			t.Fatal(err)
		}
		return Penalty(base, r)
	}
	small := penaltyAt(1 << 9)
	big := penaltyAt(1 << 13)
	if big >= small {
		t.Errorf("penalty 2^13 (%v) >= 2^9 (%v) at %v slack", big, small, s)
	}
}

func TestMoreThreadsMoreTolerant(t *testing.T) {
	// Paper trend 2: parallel kernel submission raises slack tolerance.
	s := 200 * sim.Microsecond
	penaltyAt := func(threads int) float64 {
		base, err := Run(Config{MatrixSize: 1 << 9, Threads: threads, Iters: 50})
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(Config{MatrixSize: 1 << 9, Threads: threads, Iters: 50, Slack: s})
		if err != nil {
			t.Fatal(err)
		}
		return Penalty(base, r)
	}
	p1 := penaltyAt(1)
	p8 := penaltyAt(8)
	if p8 >= p1 {
		t.Errorf("8-thread penalty %v >= 1-thread %v at %v slack", p8, p1, s)
	}
}

func TestPaperCalibrationPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("full-length calibration run")
	}
	// §IV-B anchors: 2^13 sees its first substantial penalty (~10%) at
	// 10 ms slack, and 2^15 stays under 1% up to 1 s.
	base13, err := Run(Config{MatrixSize: 1 << 13})
	if err != nil {
		t.Fatal(err)
	}
	r13, err := Run(Config{MatrixSize: 1 << 13, Slack: 10 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	p13 := Penalty(base13, r13)
	if p13 < 0.03 || p13 > 0.25 {
		t.Errorf("2^13 penalty at 10ms = %v, want ≈ 0.10 (paper)", p13)
	}
	r13mid, err := Run(Config{MatrixSize: 1 << 13, Slack: 1 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if p := Penalty(base13, r13mid); p > 0.012 {
		t.Errorf("2^13 penalty at 1ms = %v, want ≤ ~1%% (first effect is at 10ms)", p)
	}

	base15, err := Run(Config{MatrixSize: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	r15, err := Run(Config{MatrixSize: 1 << 15, Slack: 1 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if p := Penalty(base15, r15); p > 0.01 {
		t.Errorf("2^15 penalty at 1s = %v, want < 1%% (paper found none)", p)
	}
}

func TestRecordProducesTrace(t *testing.T) {
	r, err := Run(Config{MatrixSize: 1 << 9, Iters: 5, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace == nil {
		t.Fatal("no trace recorded")
	}
	if got := len(r.Trace.Kernels); got != 5 {
		t.Errorf("traced kernels = %d, want 5", got)
	}
	if got := len(r.Trace.Copies); got != 15 {
		t.Errorf("traced copies = %d, want 15 (3 per iteration)", got)
	}
	if got := r.Trace.LinkCrossingCalls(); got != 25 {
		t.Errorf("link-crossing calls = %d, want 25", got)
	}
	if r.MatrixBytes() != 512*512*4 {
		t.Errorf("MatrixBytes = %d", r.MatrixBytes())
	}
}

func TestSweepSkipsOversizedConfigs(t *testing.T) {
	pts, err := Sweep([]int{1 << 15}, []int{2, 4}, []sim.Duration{1 * sim.Microsecond}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Only the 2-thread config fits.
	if len(pts) != 1 || pts[0].Threads != 2 {
		t.Fatalf("sweep points = %+v", pts)
	}
}

func TestSweepGridComplete(t *testing.T) {
	slacks := []sim.Duration{1 * sim.Microsecond, 1 * sim.Millisecond}
	pts, err := Sweep([]int{1 << 9, 1 << 11}, []int{1, 2}, slacks, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2*2*2 {
		t.Fatalf("sweep points = %d, want 8", len(pts))
	}
	for _, pt := range pts {
		if pt.Result.Iters != 5 {
			t.Errorf("point %+v iters = %d", pt, pt.Result.Iters)
		}
		if pt.Penalty < -0.01 {
			t.Errorf("negative penalty %v at %+v", pt.Penalty, pt)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Result {
		r, err := Run(Config{MatrixSize: 1 << 11, Threads: 2, Iters: 10, Slack: 50 * sim.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.LoopTime != b.LoopTime || a.CorrectedTime != b.CorrectedTime || a.KernelTime != b.KernelTime {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestThreadOffsetNoCorrelation(t *testing.T) {
	// §IV-B: "offsetting the time between each thread's launch ... showed
	// no correlation to the slack performance penalty."
	penalty := func(offset sim.Duration) float64 {
		base, err := Run(Config{MatrixSize: 1 << 11, Threads: 4, Iters: 20, ThreadOffset: offset})
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(Config{MatrixSize: 1 << 11, Threads: 4, Iters: 20, ThreadOffset: offset, Slack: 1 * sim.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		return Penalty(base, r)
	}
	p0 := penalty(0)
	p1 := penalty(500 * sim.Microsecond)
	if diff := p1 - p0; diff > 0.03 || diff < -0.03 {
		t.Errorf("thread offset changed penalty: %v vs %v", p0, p1)
	}
}

func TestIterSpacingNoCorrelation(t *testing.T) {
	// §IV-B: "increasing the spacing between iterations of the main
	// compute loop ... showed no correlation." The invariant is the
	// absolute starvation cost (corrected − baseline): spacing shifts
	// both runs' idle gaps equally, so the slack-attributable extra time
	// stays put even though the baseline itself slows down.
	extra := func(spacing sim.Duration) sim.Duration {
		base, err := Run(Config{MatrixSize: 1 << 11, Iters: 20, IterSpacing: spacing})
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(Config{MatrixSize: 1 << 11, Iters: 20, IterSpacing: spacing, Slack: 1 * sim.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		return r.CorrectedTime - base.LoopTime
	}
	e0 := extra(0)
	e1 := extra(2 * sim.Millisecond)
	if e0 <= 0 {
		t.Fatalf("no starvation cost at 1ms slack: %v", e0)
	}
	rel := float64(e1-e0) / float64(e0)
	if rel > 0.1 || rel < -0.1 {
		t.Errorf("iteration spacing changed the starvation cost: %v vs %v", e0, e1)
	}
}

func TestNegativeOffsetSpacingRejected(t *testing.T) {
	if _, err := Run(Config{MatrixSize: 512, ThreadOffset: -1}); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := Run(Config{MatrixSize: 512, IterSpacing: -1}); err == nil {
		t.Error("negative spacing accepted")
	}
}

func TestSweepJSONRoundTrip(t *testing.T) {
	pts, err := Sweep([]int{1 << 9}, []int{1}, []sim.Duration{1 * sim.Microsecond, 1 * sim.Millisecond}, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSweepJSON(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSweepJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("round trip lost points: %d vs %d", len(got), len(pts))
	}
	for i := range pts {
		if got[i].Penalty != pts[i].Penalty || got[i].Slack != pts[i].Slack ||
			got[i].Result.KernelTime != pts[i].Result.KernelTime {
			t.Fatalf("point %d mismatch: %+v vs %+v", i, got[i], pts[i])
		}
	}
}

func TestReadSweepJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadSweepJSON(bytes.NewBufferString("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadSweepJSON(bytes.NewBufferString(`[{"MatrixSize":0}]`)); err == nil {
		t.Error("invalid point accepted")
	}
}
