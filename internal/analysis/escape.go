package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Escape flags heap allocations proper — make, new, slice/map composite
// literals, &struct literals — on hot paths, but only when the allocated
// value actually escapes its function by the package's heuristic
// intraprocedural escape analysis: returned, stored to a heap-reachable
// location, captured by an outliving closure, passed to an interface
// parameter, sent on a channel, or passed to a call that may retain it.
// Stack-allocatable sites are suppressed — that is the rule's value over a
// naive "allocation in loop" check — and every finding names its escape
// reason. TestEscapeGcflagsCrossValidation keeps the heuristic honest
// against the real compiler's -gcflags=-m=2 verdicts on a fixed corpus.
//
// Known gaps (heuristic, not the compiler's analysis): classification is
// intraprocedural, so any call argument is conservatively "may retain it"
// unless the callee is a recognized builtin; field stores are tracked one
// level (x.f = v escapes v regardless of x's own fate); dereference and
// field reads — including method-call receivers — are treated as value
// copies that never escape the allocation; a value reaching a tracked
// local is followed through := aliases but not through control-flow
// merges.
var Escape = &Analyzer{
	Name:      "escape",
	Doc:       "escaping heap allocations (make/new/composite literals) in benchmark-reachable loops, with escape reasons",
	RunModule: runEscape,
}

func runEscape(mp *ModulePass) {
	g := callGraphFor(mp.Module)
	h := computeHotness(g)
	for _, n := range g.nodes {
		hf := h.fns[n]
		if hf == nil || analysisExempt(n) {
			continue
		}
		sites := allocSites(n)
		if len(sites) == 0 {
			continue
		}
		panics := panicArgRanges(n.pkg.Info, n.decl.Body)
		ec := newEscapeContext(n)
		for _, s := range sites {
			if !hf.looped && !inLoop(hf.loops, s.expr.Pos()) {
				continue
			}
			if inRanges(panics, s.expr.Pos()) {
				continue // a value built for a panic is not steady-state work
			}
			reason, escapes := ec.classify(s)
			if !escapes {
				continue
			}
			mp.Reportf(s.expr.Pos(),
				"%s allocates on the heap every iteration (%s) on a hot path (%s); hoist it out of the loop or reuse a pooled/preallocated object",
				s.desc, reason, hf.root)
		}
	}
}

// allocSite is one heap-allocation candidate expression.
type allocSite struct {
	expr ast.Expr // the allocating expression (make/new call, lit, &lit)
	desc string
	kind string // "make-slice", "make-map", "make-chan", "new", "lit", "ptr-lit"
}

// allocSites collects the outermost allocation expressions in a function
// body. Nested composite literals share the fate of their outermost
// enclosing literal and are not reported separately. Plain struct literals
// are values, not allocations, and are skipped (boxing is hotpath's job).
func allocSites(n *funcNode) []allocSite {
	info := n.pkg.Info
	var sites []allocSite
	skip := map[ast.Node]bool{}
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		if skip[node] {
			return true
		}
		switch node := node.(type) {
		case *ast.CallExpr:
			id, ok := ast.Unparen(node.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			bi, ok := info.Uses[id].(*types.Builtin)
			if !ok {
				return true
			}
			switch bi.Name() {
			case "make":
				tv, ok := info.Types[node]
				if !ok {
					return true
				}
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					sites = append(sites, allocSite{node, "make of " + typeShort(tv.Type), "make-slice"})
				case *types.Map:
					sites = append(sites, allocSite{node, "make of " + typeShort(tv.Type), "make-map"})
				case *types.Chan:
					sites = append(sites, allocSite{node, "make of " + typeShort(tv.Type), "make-chan"})
				}
			case "new":
				sites = append(sites, allocSite{node, "new(...)", "new"})
			}
		case *ast.UnaryExpr:
			if node.Op != token.AND {
				return true
			}
			if lit, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
				sites = append(sites, allocSite{node, "&" + litName(info, lit) + " literal", "ptr-lit"})
				markNestedLits(lit, skip)
				skip[lit] = true
			}
		case *ast.CompositeLit:
			tv, ok := info.Types[node]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				sites = append(sites, allocSite{node, typeShort(tv.Type) + " literal", "lit"})
				markNestedLits(node, skip)
			}
		}
		return true
	})
	return sites
}

// markNestedLits marks composite literals nested inside lit so they are not
// collected as independent sites.
func markNestedLits(lit *ast.CompositeLit, skip map[ast.Node]bool) {
	ast.Inspect(lit, func(node ast.Node) bool {
		if inner, ok := node.(*ast.CompositeLit); ok && inner != lit {
			skip[inner] = true
		}
		if u, ok := node.(*ast.UnaryExpr); ok && u.Op == token.AND {
			skip[u] = true
		}
		return true
	})
}

// litName renders a composite literal's type name for messages.
func litName(info *types.Info, lit *ast.CompositeLit) string {
	if tv, ok := info.Types[lit]; ok {
		return typeShort(tv.Type)
	}
	return "composite"
}

// typeShort renders a type with base package names only.
func typeShort(t types.Type) string { return types.TypeString(t, shortQualifier) }

// escapeContext classifies how values escape one function body.
type escapeContext struct {
	n       *funcNode
	info    *types.Info
	parents map[ast.Node]ast.Node
}

func newEscapeContext(n *funcNode) *escapeContext {
	ec := &escapeContext{n: n, info: n.pkg.Info, parents: map[ast.Node]ast.Node{}}
	var stack []ast.Node
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			ec.parents[node] = stack[len(stack)-1]
		}
		stack = append(stack, node)
		return true
	})
	return ec
}

// classify reports whether the allocated value escapes the function and
// why. Channel buffers are always heap-allocated regardless of use.
func (ec *escapeContext) classify(s allocSite) (string, bool) {
	if s.kind == "make-chan" {
		return "channel buffers always live on the heap", true
	}
	return ec.valueEscapes(s.expr, map[types.Object]bool{}, 0)
}

const maxEscapeDepth = 32

// valueEscapes walks upward from an expression to the statement that
// consumes it and classifies the consumption.
func (ec *escapeContext) valueEscapes(e ast.Expr, seen map[types.Object]bool, depth int) (string, bool) {
	if depth > maxEscapeDepth {
		return "analysis depth exceeded (conservative)", true
	}
	var cur ast.Node = e
	for {
		p := ec.parents[cur]
		if p == nil {
			return "", false
		}
		switch p := p.(type) {
		case *ast.ParenExpr, *ast.KeyValueExpr, *ast.CompositeLit:
			// Fate of the enclosing literal/paren is the value's fate.
			cur = p
			continue
		case *ast.UnaryExpr:
			if p.Op == token.AND || p.Op == token.ARROW {
				cur = p
				continue
			}
			return "", false
		case *ast.TypeAssertExpr:
			cur = p
			continue
		case *ast.StarExpr, *ast.SelectorExpr:
			// Dereferencing or selecting a field copies the value out; the
			// allocation itself stays put. (Method-call receivers also land
			// here — a deliberate non-conservative gap, documented above.)
			return "", false
		case *ast.SliceExpr:
			if p.X == cur {
				cur = p // a slice of the value aliases its backing array
				continue
			}
			return "", false
		case *ast.ReturnStmt:
			return "returned to the caller", true
		case *ast.SendStmt:
			if p.Value == cur {
				return "sent on a channel", true
			}
			return "", false
		case *ast.GoStmt, *ast.DeferStmt:
			return "captured by a go/defer statement", true
		case *ast.AssignStmt:
			return ec.assignEscapes(p, cur, seen, depth)
		case *ast.ValueSpec:
			for i, v := range p.Values {
				if v == cur && i < len(p.Names) {
					return ec.identEscapes(p.Names[i], seen, depth)
				}
			}
			return "", false
		case *ast.CallExpr:
			if p.Fun == cur {
				return "", false
			}
			return ec.callArgEscapes(p, cur.(ast.Expr), seen, depth)
		case *ast.IndexExpr, *ast.BinaryExpr, *ast.ExprStmt, *ast.RangeStmt,
			*ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt,
			*ast.CaseClause, *ast.IncDecStmt, *ast.BlockStmt:
			return "", false
		default:
			// Unmodeled consumer: err on the conservative side.
			return "reaches an unmodeled consumer (conservative)", true
		}
	}
}

// assignEscapes classifies the LHS an RHS value lands in.
func (ec *escapeContext) assignEscapes(as *ast.AssignStmt, rhs ast.Node, seen map[types.Object]bool, depth int) (string, bool) {
	// Appearing on the LHS means the value is being overwritten, not
	// consumed.
	for _, l := range as.Lhs {
		if l == rhs {
			return "", false
		}
	}
	idx := -1
	for i, r := range as.Rhs {
		if r == rhs {
			idx = i
			break
		}
	}
	if idx == -1 || len(as.Lhs) != len(as.Rhs) {
		// Multi-value or unrecognized shape: conservative.
		return "assigned through an unmodeled multi-value shape (conservative)", true
	}
	lhs := ast.Unparen(as.Lhs[idx])
	switch lhs := lhs.(type) {
	case *ast.Ident:
		return ec.identEscapes(lhs, seen, depth)
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return "stored to a heap-reachable location", true
	}
	return "stored to an unmodeled location (conservative)", true
}

// identEscapes classifies a value bound to an identifier: blank and
// function-local variables delegate to variable tracking; anything else
// (package-level vars, fields) is heap-reachable.
func (ec *escapeContext) identEscapes(id *ast.Ident, seen map[types.Object]bool, depth int) (string, bool) {
	if id.Name == "_" {
		return "", false
	}
	obj := ec.info.Defs[id]
	if obj == nil {
		obj = ec.info.Uses[id]
	}
	if obj == nil {
		return "bound to an unresolved identifier (conservative)", true
	}
	if v, ok := obj.(*types.Var); ok {
		if v.Parent() != nil && v.Parent() != v.Pkg().Scope() && !v.IsField() {
			return ec.varEscapes(v, seen, depth)
		}
		return "stored to a global", true
	}
	return "stored outside the function (conservative)", true
}

// varEscapes scans the function body for uses of a local variable and
// classifies each; := aliases are followed transitively.
func (ec *escapeContext) varEscapes(obj *types.Var, seen map[types.Object]bool, depth int) (string, bool) {
	if seen[obj] {
		return "", false
	}
	seen[obj] = true
	var reason string
	escapes := false
	ast.Inspect(ec.n.decl.Body, func(node ast.Node) bool {
		if escapes {
			return false
		}
		id, ok := node.(*ast.Ident)
		if !ok || ec.info.Uses[id] != obj {
			return true
		}
		if ec.capturedByClosure(id) {
			reason, escapes = "captured by a closure that outlives the iteration", true
			return false
		}
		if r, esc := ec.valueEscapes(id, seen, depth+1); esc {
			reason, escapes = r, true
			return false
		}
		return true
	})
	return reason, escapes
}

// capturedByClosure reports whether an identifier use sits inside a
// function literal (other than the variable's own declaring function) that
// is not immediately invoked — such a closure can outlive the enclosing
// frame, forcing captured variables to the heap.
func (ec *escapeContext) capturedByClosure(id *ast.Ident) bool {
	for cur := ec.parents[ast.Node(id)]; cur != nil; cur = ec.parents[cur] {
		fl, ok := cur.(*ast.FuncLit)
		if !ok {
			continue
		}
		// Immediately invoked: the literal is the Fun of a CallExpr.
		if call, ok := ec.parents[fl].(*ast.CallExpr); ok && call.Fun == fl {
			continue
		}
		return true
	}
	return false
}

// callArgEscapes classifies a value passed as a call argument.
func (ec *escapeContext) callArgEscapes(call *ast.CallExpr, arg ast.Expr, seen map[types.Object]bool, depth int) (string, bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if bi, ok := ec.info.Uses[id].(*types.Builtin); ok {
			switch bi.Name() {
			case "len", "cap", "copy", "delete", "clear", "min", "max", "print", "println":
				return "", false
			case "append":
				if len(call.Args) > 0 && call.Args[0] == arg {
					// The result aliases the first argument's backing array.
					return ec.valueEscapes(call, seen, depth+1)
				}
				// An appended element lands in a backing array whose own
				// fate is unknown here; pointer-like elements escape with
				// it, value elements are copied.
				if tv, ok := ec.info.Types[arg]; ok && !hasPointers(tv.Type) {
					return "", false
				}
				return "appended into a slice that may outlive the frame", true
			case "panic":
				return "passed to panic", true
			}
		}
		if tv, ok := ec.info.Types[id]; ok && tv.IsType() {
			// Conversion: the fate of the converted value is the fate of
			// the conversion result.
			if types.IsInterface(tv.Type) {
				return "converted to an interface", true
			}
			return ec.valueEscapes(call, seen, depth+1)
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := ec.info.Types[sel]; ok && tv.IsType() {
			if types.IsInterface(tv.Type) {
				return "converted to an interface", true
			}
			return ec.valueEscapes(call, seen, depth+1)
		}
	}
	if fn, ok := calledFunc(ec.info, call); ok {
		if sig, ok := fn.Type().(*types.Signature); ok {
			if pt := paramTypeFor(sig, call, arg); pt != nil && types.IsInterface(pt) {
				return "passed to an interface parameter of " + fn.Name(), true
			}
		}
		return "passed to " + fn.Name() + ", which may retain it", true
	}
	return "passed to a dynamic call that may retain it", true
}

// paramTypeFor resolves the parameter type an argument binds to, unrolling
// variadic tails.
func paramTypeFor(sig *types.Signature, call *ast.CallExpr, arg ast.Expr) types.Type {
	idx := -1
	for i, a := range call.Args {
		if a == arg {
			idx = i
			break
		}
	}
	if idx == -1 || sig.Params().Len() == 0 {
		return nil
	}
	if sig.Variadic() && idx >= sig.Params().Len()-1 {
		last := sig.Params().At(sig.Params().Len() - 1).Type()
		if call.Ellipsis != token.NoPos {
			return last
		}
		if s, ok := last.(*types.Slice); ok {
			return s.Elem()
		}
		return last
	}
	if idx >= sig.Params().Len() {
		return nil
	}
	return sig.Params().At(idx).Type()
}

// hasPointers reports whether values of t contain pointers (so copying one
// into an escaping container drags heap references along).
func hasPointers(t types.Type) bool {
	switch t := t.Underlying().(type) {
	case *types.Basic:
		return t.Info()&types.IsString != 0 || t.Kind() == types.UnsafePointer
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Array:
		return hasPointers(t.Elem())
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if hasPointers(t.Field(i).Type()) {
				return true
			}
		}
		return false
	}
	return true
}

// moduleEscapeSite is one classified allocation site, hot or not — the
// surface the gcflags=-m cross-validation test compares against the real
// compiler.
type moduleEscapeSite struct {
	file    string
	line    int
	desc    string
	kind    string
	reason  string
	escapes bool
}

// escapeSitesInModule classifies every allocation site in every base
// function of the module, regardless of hotness.
func escapeSitesInModule(m *Module) []moduleEscapeSite {
	g := callGraphFor(m)
	var out []moduleEscapeSite
	for _, n := range g.nodes {
		sites := allocSites(n)
		if len(sites) == 0 {
			continue
		}
		ec := newEscapeContext(n)
		for _, s := range sites {
			reason, escapes := ec.classify(s)
			pos := m.Fset.Position(s.expr.Pos())
			out = append(out, moduleEscapeSite{
				file:    pos.Filename,
				line:    pos.Line,
				desc:    s.desc,
				kind:    s.kind,
				reason:  reason,
				escapes: escapes,
			})
		}
	}
	return out
}
