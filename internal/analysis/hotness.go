package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file computes the hot-function set shared by the hotpath and escape
// analyzers: every function transitively reachable from a hot root. Roots
// are (a) Benchmark* functions in test files, (b) the per-iteration methods
// named in hotRootConfig — the steady-state loops the roadmap benchmarks
// measure — and (c) any function carrying a //cdivet:hotpath directive in
// its doc comment.
//
// Besides reachability the propagation tracks a per-function "looped" bit:
// whether the function can be entered from inside an application-level loop
// (a call site lexically inside a for/range statement, or a caller that is
// itself looped). Allocation findings require loop context — either the
// site sits in a lexical loop of its own function, or the whole function is
// looped — so one-time setup reachable from a benchmark stays silent.
// Benchmark harness loops (`for i := 0; i < b.N; i++`, `for b.Loop()`) are
// deliberately NOT loop context: every benchmark wraps a complete run in
// one, and treating it as a loop would mark the entire module hot+looped.

// hotRootConfig names the per-iteration methods that anchor the hot set,
// matched by package-path suffix so corpus packages loaded under a
// synthetic path (testdata/hotpath/internal/serve -> ".../internal/serve")
// resolve the same roots as the real module. recv is the receiver type
// name ("" for plain functions).
var hotRootConfig = []struct {
	pkgSuffix string
	recv      string
	name      string
}{
	{"internal/serve", "Engine", "batcher"},
	{"internal/proxy", "", "threadLoop"},
	{"internal/lammps", "", "RunPerf"},
	{"internal/cosmoflow", "", "RunPerf"},
	{"internal/sim", "Env", "RunUntil"},
	// The sharded engine's per-event core: the baton dispatch a yielding
	// process runs, the yield that enters it, and the schedule path that
	// feeds the timing wheels. Rooting them keeps the merge tree, wheel,
	// and handoff allocation-clean even if a future caller stops being a
	// root itself.
	{"internal/sim", "Env", "dispatch"},
	{"internal/sim", "Env", "schedule"},
	{"internal/sim", "Proc", "yield"},
}

// hotpathDirective marks a function as an extra hot root when it appears in
// the FuncDecl's doc comment. (suppress.go's //cdivet:allow parser requires
// a space after the prefix, so this directive never collides with it.)
const hotpathDirective = "//cdivet:hotpath"

// loopInfo is one application-level loop statement in a function body.
type loopInfo struct {
	node ast.Node // *ast.ForStmt or *ast.RangeStmt
	body *ast.BlockStmt
}

// hotFunc is the hotness record for one call-graph node.
type hotFunc struct {
	root   string // which root made it hot (for finding attribution)
	looped bool   // reachable via a call site inside an application loop
	loops  []loopInfo
}

// hotness is the computed hot set over a call graph.
type hotness struct {
	g   *callGraph
	fns map[*funcNode]*hotFunc
}

// funcKey is a pointer-free identity for a function: package path, receiver
// type name, function name. Test variants of a package re-type-check base
// files into fresh *types.Func objects, so benchmark-root resolution must
// go through this key rather than object identity.
func funcKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = strings.TrimSuffix(fn.Pkg().Path(), "_test")
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = recvTypeName(sig.Recv().Type())
	}
	return pkg + "|" + recv + "|" + fn.Name()
}

// recvTypeName extracts the bare receiver type name from a receiver type,
// unwrapping pointers.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// matchRoot reports whether node matches a hotRootConfig entry, returning
// the root label.
func matchRoot(n *funcNode) (string, bool) {
	name := n.obj.Name()
	recv := ""
	if sig, ok := n.obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = recvTypeName(sig.Recv().Type())
	}
	pkgPath := n.pkg.Path
	for _, r := range hotRootConfig {
		if r.name != name || r.recv != recv {
			continue
		}
		if pkgPath == r.pkgSuffix || strings.HasSuffix(pkgPath, "/"+r.pkgSuffix) {
			return describeFunc(n), true
		}
	}
	return "", false
}

// hasHotpathDirective reports whether the declaration's doc comment carries
// //cdivet:hotpath.
func hasHotpathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == hotpathDirective || strings.HasPrefix(text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

// describeFunc renders a node as pkg.Func or pkg.(Recv).Func for messages.
func describeFunc(n *funcNode) string {
	short := n.pkg.Path
	if i := strings.LastIndexByte(short, '/'); i >= 0 {
		short = short[i+1:]
	}
	if sig, ok := n.obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		return short + ".(" + recvTypeName(sig.Recv().Type()) + ")." + n.obj.Name()
	}
	return short + "." + n.obj.Name()
}

// computeHotness builds the hot set: seeds config/directive roots, walks
// benchmark bodies in test files, then propagates reachability and the
// looped bit over static call edges to fixpoint.
func computeHotness(g *callGraph) *hotness {
	h := &hotness{g: g, fns: map[*funcNode]*hotFunc{}}
	byKey := map[string]*funcNode{}
	for _, n := range g.nodes {
		byKey[funcKey(n.obj)] = n
	}

	// Worklist entries: a node becoming hot, or becoming looped.
	type workItem struct {
		n      *funcNode
		root   string
		looped bool
	}
	var work []workItem
	add := func(n *funcNode, root string, looped bool) {
		work = append(work, workItem{n, root, looped})
	}

	// Config and directive roots first so attribution prefers the named
	// steady-state loop over "reachable from BenchmarkX".
	for _, n := range g.nodes {
		if root, ok := matchRoot(n); ok {
			add(n, root, false)
		} else if hasHotpathDirective(n.decl) {
			add(n, describeFunc(n)+" (//cdivet:hotpath)", false)
		}
	}

	// Benchmark roots: scan test files, resolve called functions back into
	// the base graph by funcKey, walking test-file helper bodies
	// transitively (the helpers themselves are not graph nodes).
	for _, p := range g.module.Packages {
		for _, variant := range []struct {
			files []*ast.File
			info  *types.Info
		}{
			{p.TestFiles, p.TestInfo},
			{p.XTestFiles, p.XInfo},
		} {
			if variant.info == nil {
				continue
			}
			helpers := map[*types.Func]*ast.FuncDecl{}
			var benches []*ast.FuncDecl
			for _, f := range variant.files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					if obj, ok := variant.info.Defs[fd.Name].(*types.Func); ok {
						helpers[obj] = fd
					}
					if isBenchmark(fd, variant.info) {
						benches = append(benches, fd)
					}
				}
			}
			for _, fd := range benches {
				root := "Benchmark root " + fd.Name.Name
				visited := map[*ast.FuncDecl]bool{}
				markBenchCallees(fd, root, variant.info, byKey, helpers, visited, add)
			}
		}
	}

	// Fixpoint: a callee inherits hotness; looped |= caller.looped or a
	// call site lexically inside one of the caller's application loops.
	for len(work) > 0 {
		item := work[0]
		work = work[1:]
		hf := h.fns[item.n]
		if hf == nil {
			hf = &hotFunc{root: item.root}
			hf.loops = collectLoops(harnessFor(item.n), item.n.decl.Body)
			h.fns[item.n] = hf
		} else if hf.looped || !item.looped {
			continue // nothing new
		}
		if item.looped {
			hf.looped = true
		}
		// Propagate to callees with the loop context of each call site.
		info := item.n.pkg.Info
		ast.Inspect(item.n.decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := h.g.calleeOf(info, call)
			if callee == nil {
				return true
			}
			looped := hf.looped || inLoop(hf.loops, call.Pos())
			if cur := h.fns[callee]; cur == nil || (looped && !cur.looped) {
				add(callee, hf.root, looped)
			}
			return true
		})
	}
	return h
}

// markBenchCallees marks the base-graph functions a benchmark body calls as
// hot, walking test-file helper bodies transitively. Calls resolved into
// the base graph enter with looped=false unless the call site sits inside a
// genuine application loop of the benchmark (harness b.N / b.Loop() loops
// are excluded).
func markBenchCallees(fd *ast.FuncDecl, root string, info *types.Info,
	byKey map[string]*funcNode, helpers map[*types.Func]*ast.FuncDecl,
	visited map[*ast.FuncDecl]bool, add func(*funcNode, string, bool)) {
	if visited[fd] {
		return
	}
	visited[fd] = true
	loops := collectLoops(info, fd.Body)
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		var obj types.Object
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			obj = info.Uses[fun]
		case *ast.SelectorExpr:
			obj = info.Uses[fun.Sel]
		}
		fn, ok := obj.(*types.Func)
		if !ok {
			return true
		}
		looped := inLoop(loops, call.Pos())
		if n := byKey[funcKey(fn)]; n != nil {
			add(n, root, looped)
			return true
		}
		if helper, ok := helpers[fn]; ok && helper.Body != nil {
			markBenchCallees(helper, root, info, byKey, helpers, visited, add)
		}
		return true
	})
}

// harnessFor returns the type info used to recognize benchmark harness
// loops in a node's body; base-graph functions never contain harness loops
// but test-aware corpora might, so this stays info-driven.
func harnessFor(n *funcNode) *types.Info { return n.pkg.Info }

// collectLoops returns the application-level loop statements in body,
// excluding benchmark harness loops when info is available to identify
// them.
func collectLoops(info *types.Info, body *ast.BlockStmt) []loopInfo {
	var loops []loopInfo
	ast.Inspect(body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.ForStmt:
			if !benchHarnessLoop(info, node) {
				loops = append(loops, loopInfo{node: node, body: node.Body})
			}
		case *ast.RangeStmt:
			loops = append(loops, loopInfo{node: node, body: node.Body})
		case *ast.FuncLit:
			return false // closure bodies get their own loop context
		}
		return true
	})
	return loops
}

// inLoop reports whether pos falls inside the body of any collected loop.
func inLoop(loops []loopInfo, pos token.Pos) bool {
	for _, l := range loops {
		if l.body.Pos() <= pos && pos <= l.body.End() {
			return true
		}
	}
	return false
}

// benchHarnessLoop recognizes the two benchmark harness loop shapes —
// `for i := 0; i < b.N; i++` and `for b.Loop()` — where b is a *testing.B.
func benchHarnessLoop(info *types.Info, f *ast.ForStmt) bool {
	if info == nil || f.Cond == nil {
		return false
	}
	found := false
	ast.Inspect(f.Cond, func(node ast.Node) bool {
		sel, ok := node.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "N" && sel.Sel.Name != "Loop" {
			return true
		}
		if tv, ok := info.Types[sel.X]; ok && isTestingBPtr(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isTestingBPtr reports whether t is *testing.B.
func isTestingBPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "B" && obj.Pkg() != nil && obj.Pkg().Path() == "testing"
}

// posRange is a half-open source span used for cold-zone suppression.
type posRange struct{ lo, hi token.Pos }

func inRanges(rs []posRange, pos token.Pos) bool {
	for _, r := range rs {
		if r.lo <= pos && pos <= r.hi {
			return true
		}
	}
	return false
}

// returnRanges collects the spans of return statements: an allocation that
// only happens on the way out of a function (a `return fmt.Errorf(...)`
// failure path) is not steady-state work.
func returnRanges(body *ast.BlockStmt) []posRange {
	var rs []posRange
	ast.Inspect(body, func(node ast.Node) bool {
		if ret, ok := node.(*ast.ReturnStmt); ok {
			rs = append(rs, posRange{ret.Pos(), ret.End()})
		}
		return true
	})
	return rs
}

// panicArgRanges collects the argument spans of panic calls: a message
// built for a panic never runs in steady state.
func panicArgRanges(info *types.Info, body *ast.BlockStmt) []posRange {
	var rs []posRange
	ast.Inspect(body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if bi, ok := info.Uses[id].(*types.Builtin); ok && bi.Name() == "panic" {
			rs = append(rs, posRange{call.Args[0].Pos(), call.Args[len(call.Args)-1].End()})
		}
		return true
	})
	return rs
}

// analysisExempt reports whether a node belongs to the analysis package
// itself. cdivet is a batch tool — its loader and driver run once per
// invocation, and BenchmarkCdivetModule measures whole-suite latency, not a
// steady-state iteration — so per-iteration allocation discipline does not
// apply (mirroring waitlock's internal/sim exemption).
func analysisExempt(n *funcNode) bool {
	return strings.HasSuffix(n.pkg.Path, "internal/analysis")
}

// isBenchmark reports whether fd is a Benchmark* function taking *testing.B.
func isBenchmark(fd *ast.FuncDecl, info *types.Info) bool {
	if fd.Recv != nil || !strings.HasPrefix(fd.Name.Name, "Benchmark") {
		return false
	}
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	return sig.Params().Len() == 1 && isTestingBPtr(sig.Params().At(0).Type())
}
