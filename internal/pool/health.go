package pool

import "repro/internal/sim"

// health.Pool implementation. The heartbeat control plane runs on its
// own shard; its verdicts cross into the scheduler's domain through the
// mailbox, exactly like job completions and migration copies, so a dead
// server's allocations re-place through the same machinery a defrag
// sweep uses.

// Servers returns the pool's server count.
func (s *Scheduler) Servers() int { return s.topo.Servers() }

// ActiveServer satisfies health.Pool; a pool scheduler has no single
// active primary, so the detector anchors on server 0.
func (s *Scheduler) ActiveServer() int { return 0 }

// Live reports whether a server is in rotation. It samples the published
// rotation view from the health plane's domain; the scheduler is the
// only writer.
func (s *Scheduler) Live(i int) bool {
	return i >= 0 && i < len(s.live) && s.live[i]
}

// Drain posts the control plane's verdict to the scheduler, which
// re-places (or kills) every allocation on the server.
func (s *Scheduler) Drain(p *sim.Proc, server int) error {
	s.post(msgDrain, server)
	return nil
}

// Readmit posts a recovered server back into rotation, blank.
func (s *Scheduler) Readmit(server int) error {
	s.post(msgReadmit, server)
	return nil
}
