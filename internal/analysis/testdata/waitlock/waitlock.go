// Package corpus exercises the wait-point lock rule: a real sync lock held
// while the process parks in virtual time starves the scheduler.
package corpus

import (
	"sync"

	sim "repro/internal/corpus/internal/sim"
)

type shared struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// SleepUnderLock parks while holding the mutex: the classic deadlock.
func SleepUnderLock(s *shared, p *sim.Proc, d sim.Duration) {
	s.mu.Lock()
	s.n++
	p.Sleep(d) // want
	s.mu.Unlock()
}

// SleepUnderDeferredUnlock holds to the end of the function, so the park is
// still inside the critical section.
func SleepUnderDeferredUnlock(s *shared, p *sim.Proc, d sim.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p.Sleep(d) // want
}

// WaitUnderRLock parks on a signal while holding a read lock.
func WaitUnderRLock(s *shared, p *sim.Proc, sig *sim.Signal) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	sig.Wait(p) // want
}

// ReceiveUnderLock blocks on a channel handoff inside the critical section.
func ReceiveUnderLock(s *shared, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = <-ch // want
}

// SendUnderLock blocks on the other side of the handoff.
func SendUnderLock(s *shared, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- s.n // want
}

// CallWaiterUnderLock reaches a wait point only transitively, through the
// call graph.
func CallWaiterUnderLock(s *shared, p *sim.Proc, d sim.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pause(p, d) // want
}

// pause is the transitive waiter: clean by itself (no lock held here).
func pause(p *sim.Proc, d sim.Duration) {
	p.Sleep(d)
}

// ReleaseBeforeSleep is the correct shape: the lock is dropped before the
// park.
func ReleaseBeforeSleep(s *shared, p *sim.Proc, d sim.Duration) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	p.Sleep(d)
}

// PureCritical never waits inside the critical section.
func PureCritical(s *shared) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return s.n
}

// SpawnedLiteral is clean at this body: the literal's channel receive runs
// on another process, not under this stack's lock.
func SpawnedLiteral(s *shared, ch chan int) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return func() { s.n = <-ch }
}
