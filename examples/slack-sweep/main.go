// Slack sweep: reproduce the shape of the paper's Figure 3 — the proxy's
// Equation-1-corrected normalized runtime as injected slack grows, per
// matrix size and OpenMP thread count.
//
//	go run ./examples/slack-sweep [-iters 20] [-threads 1,2,8]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	cdi "repro"
)

func main() {
	iters := flag.Int("iters", 20, "proxy loop iterations (0 = paper-faithful sizing; slow)")
	threadsFlag := flag.String("threads", "1,2,8", "thread counts (Figure 3a-c)")
	flag.Parse()

	var threads []int
	for _, f := range strings.Split(*threadsFlag, ",") {
		t, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatalf("bad thread count %q: %v", f, err)
		}
		threads = append(threads, t)
	}

	sizes := []int{1 << 9, 1 << 11, 1 << 13}
	slacks := []cdi.Duration{
		1 * cdi.Microsecond, 10 * cdi.Microsecond, 100 * cdi.Microsecond,
		1 * cdi.Millisecond, 10 * cdi.Millisecond,
	}
	pts, err := cdi.ProxySweep(sizes, threads, slacks, *iters)
	if err != nil {
		log.Fatal(err)
	}

	for _, th := range threads {
		fmt.Printf("== Figure 3, %d OpenMP thread(s): normalized corrected runtime ==\n", th)
		fmt.Printf("%-10s", "slack")
		for _, n := range sizes {
			fmt.Printf("%12s", fmt.Sprintf("2^%d", log2(n)))
		}
		fmt.Println()
		for _, sl := range slacks {
			fmt.Printf("%-10v", sl)
			for _, n := range sizes {
				for _, pt := range pts {
					//cdivet:allow floateq pt.Slack is a verbatim copy of this sweep slice's sl, so the match is exact by construction
					if pt.MatrixSize == n && pt.Threads == th && pt.Slack == sl {
						fmt.Printf("%12.4f", 1+pt.Penalty)
					}
				}
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("trends: longer kernels resist slack; more submitter threads raise tolerance;")
	fmt.Println("the drop-off sharpens as slack grows — the paper's three Figure-3 findings.")
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}
