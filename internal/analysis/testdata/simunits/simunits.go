// Package corpus exercises the sim-time unit checker: sim.Duration is
// float64 SECONDS, so a raw literal Duration is almost always a µs-scale
// value off by 1e6, and re-wrapping a projected float (sim.Duration of
// d.Micros()) is the same bug in reverse.
package corpus

import sim "repro/internal/corpus/internal/sim"

// NamedSpan carries its unit in the source: legal.
const NamedSpan = 250 * sim.Microsecond

// RawConst is a raw literal Duration: five SECONDS, not five of anything
// micro.
const RawConst sim.Duration = 5 // want

func Sleeps(p *sim.Proc, d sim.Duration) {
	p.Sleep(5)                     // want
	p.Sleep(100 * sim.Microsecond) // explicit unit: legal
	p.Sleep(NamedSpan)             // named Duration constant: legal
	p.Sleep(0)                     // zero has no unit: legal
	p.Sleep(d * 2)                 // scalar factor: d carries the unit
	p.Sleep(d / 10)                // scalar divisor: likewise
	p.Sleep(2 * sim.Millisecond / 4)
}

// RoundTrip re-wraps a microsecond count as seconds: a 1e6x error.
func RoundTrip(d sim.Duration) sim.Duration {
	return sim.Duration(d.Micros()) // want
}

// RoundTripMillis is the millisecond variant.
func RoundTripMillis(d sim.Duration) sim.Duration {
	half := sim.Duration(d.Millis() / 2) // want
	return half
}

// ScaleSeconds converts a genuine seconds quantity: legal, no projection in
// the operand.
func ScaleSeconds(seconds float64) sim.Duration {
	return sim.Duration(seconds)
}

// Arithmetic on existing durations carries units implicitly: legal.
func Mean(a, b sim.Duration) sim.Duration {
	return (a + b) / 2
}
