package corpus

import "sort"

// Clean has a leftover directive: the call it suppressed is gone, so the
// fixer deletes the line.
func Clean() int {
	//cdivet:allow seededrand this call was removed
	return 4
}

// Looped has a justified suppression written with sloppy spacing: the fixer
// normalizes it in place.
func Looped(m map[int]int) []int {
	var out []int
	for k := range m { //cdivet:allow   maporder   collected then sorted below
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
