package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output, the interchange format GitHub code scanning and most
// editors ingest. The structures cover exactly the subset cdivet emits;
// field order follows the struct definitions, so output is deterministic.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	Fixes     []sarifFix      `json:"fixes,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifFix struct {
	Description     sarifMessage          `json:"description"`
	ArtifactChanges []sarifArtifactChange `json:"artifactChanges"`
}

type sarifArtifactChange struct {
	ArtifactLocation sarifArtifact      `json:"artifactLocation"`
	Replacements     []sarifReplacement `json:"replacements"`
}

type sarifReplacement struct {
	DeletedRegion   sarifCharRegion `json:"deletedRegion"`
	InsertedContent sarifMessage    `json:"insertedContent"`
}

type sarifCharRegion struct {
	CharOffset int `json:"charOffset"`
	CharLength int `json:"charLength"`
}

// WriteSARIF emits the findings as a SARIF 2.1.0 log. File URIs (and fix
// artifact locations) are made relative to root so the log is stable across
// checkouts; findings outside root keep their absolute path.
func WriteSARIF(w io.Writer, findings []Finding, root string) error {
	rules := []sarifRule{}
	seen := map[string]bool{}
	for _, a := range All() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
		seen[a.Name] = true
	}
	if !seen[DirectiveRule] {
		rules = append(rules, sarifRule{ID: DirectiveRule, ShortDescription: sarifMessage{Text: "problems with //cdivet:allow suppression directives"}})
	}

	results := []sarifResult{}
	for _, f := range findings {
		r := sarifResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relURI(root, f.File)},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		}
		if f.Fix != nil && len(f.Fix.Edits) > 0 {
			byFile := map[string][]sarifReplacement{}
			var order []string
			for _, e := range f.Fix.Edits {
				uri := relURI(root, e.File)
				if _, ok := byFile[uri]; !ok {
					order = append(order, uri)
				}
				byFile[uri] = append(byFile[uri], sarifReplacement{
					DeletedRegion:   sarifCharRegion{CharOffset: e.Offset, CharLength: e.End - e.Offset},
					InsertedContent: sarifMessage{Text: e.Text},
				})
			}
			fix := sarifFix{Description: sarifMessage{Text: f.Fix.Message}}
			for _, uri := range order {
				fix.ArtifactChanges = append(fix.ArtifactChanges, sarifArtifactChange{
					ArtifactLocation: sarifArtifact{URI: uri},
					Replacements:     byFile[uri],
				})
			}
			r.Fixes = []sarifFix{fix}
		}
		results = append(results, r)
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "cdivet", InformationURI: "https://example.invalid/repro/cdivet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relURI renders path relative to root with forward slashes.
func relURI(root, path string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(path)
}
