package analysis

import (
	"go/ast"
	"strings"
)

// BareGo flags go statements in simulation packages outside internal/sim.
// The engine's determinism rests on single-owner handoff: exactly one
// process runs at a time, and only the sim scheduler may create goroutines
// (sim.Env.SpawnAt) because only it sequences their wake-ups through the
// event heap. A bare goroutine anywhere else in the model reintroduces real
// concurrency — and with it scheduling nondeterminism — behind the
// engine's back. Package main and test files may use goroutines; they sit
// outside the simulated world.
var BareGo = &Analyzer{
	Name: "barego",
	Doc:  "go statement in a simulation package outside internal/sim breaks single-owner handoff",
	Run:  runBareGo,
}

func runBareGo(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return
	}
	if pass.Path == "repro/internal/sim" || strings.HasSuffix(pass.Path, "/internal/sim") {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "bare goroutine outside internal/sim; spawn simulated processes via sim.Env so the scheduler owns all concurrency")
			}
			return true
		})
	}
}
