package serve

// CapacitySignal tells the admission gate whether pool capacity is
// currently degraded. The health control plane's registry satisfies it;
// the engine samples it at arrival and dequeue time. Sampling is a
// read-only cross-domain observation: the signal owner mutates it on its
// own shard, and the global event order makes every sample
// deterministic.
type CapacitySignal interface {
	Degraded() bool
}

// Admission tunes deadline-aware load shedding. The zero value disables
// shedding entirely — the engine then behaves byte-identically to one
// built before admission control existed.
type Admission struct {
	// ShedExpired sheds queued requests whose queue wait alone already
	// exceeds their tenant's SLO: even an instant execution could not
	// meet the objective, so serving them is pure queue poison. Shed
	// requests count as shed, not failed, and spend no device time.
	ShedExpired bool
	// MaxQueue caps the live admission-queue depth. An arrival that finds
	// the queue full sheds the lowest-priority queued request (ties:
	// latest arrival) — or itself, if nothing queued is lower-priority.
	// Zero means unbounded.
	MaxQueue int
	// Capacity gates both mechanisms: shedding is armed only while
	// Capacity reports degraded. A nil Capacity arms them permanently.
	Capacity CapacitySignal
}

// enabled reports whether any shedding mechanism is configured.
func (a Admission) enabled() bool { return a.ShedExpired || a.MaxQueue > 0 }

// armed reports whether shedding applies right now.
func (a Admission) armed() bool {
	return a.enabled() && (a.Capacity == nil || a.Capacity.Degraded())
}
