package sim

import "testing"

// When Fire lands at the exact instant the deadline expires, the outcome
// must be deterministic regardless of which process was spawned (and thus
// scheduled) first: the waiter's timer event always carries the earlier
// sequence number, so the deadline wins the tie in both orders.
func TestWaitTimeoutExactInstantTieIsDeterministic(t *testing.T) {
	for _, firerFirst := range []bool{true, false} {
		env := NewEnv()
		sig := NewSignal(env)
		var err error
		var wokeAt Time
		waiter := func(p *Proc) {
			err = sig.WaitTimeout(p, 10*Microsecond)
			wokeAt = p.Now()
		}
		firer := func(p *Proc) {
			p.Sleep(10 * Microsecond)
			sig.Fire()
		}
		if firerFirst {
			env.Spawn("firer", firer)
			env.Spawn("waiter", waiter)
		} else {
			env.Spawn("waiter", waiter)
			env.Spawn("firer", firer)
		}
		env.Run()
		env.Close()
		if err != ErrTimeout {
			t.Errorf("firerFirst=%v: err = %v, want ErrTimeout", firerFirst, err)
		}
		if wokeAt != Time(0).Add(10*Microsecond) {
			t.Errorf("firerFirst=%v: woke at %v, want 10µs", firerFirst, wokeAt)
		}
		if n := sig.Waiters(); n != 0 {
			t.Errorf("firerFirst=%v: %d waiters left on the list", firerFirst, n)
		}
	}
}

// A Fire arriving after a waiter already timed out must not wake it a
// second time or disturb whatever it is blocked on next.
func TestWaitTimeoutFireAfterTimeoutDoesNotDoubleWake(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	sig := NewSignal(env)
	next := NewSignal(env)
	wakes := 0
	var timeoutErr, nextErr error
	env.Spawn("waiter", func(p *Proc) {
		timeoutErr = sig.WaitTimeout(p, 5*Microsecond)
		wakes++
		// Immediately block on a different signal; a stray second wake-up
		// from the stale Fire would surface here as a spurious return.
		nextErr = next.WaitTimeout(p, 100*Microsecond)
		wakes++
	})
	env.Spawn("firer", func(p *Proc) {
		p.Sleep(20 * Microsecond)
		sig.Fire() // waiter timed out 15µs ago; must be a no-op
		p.Sleep(10 * Microsecond)
		next.Fire()
	})
	env.Run()
	if timeoutErr != ErrTimeout {
		t.Errorf("first wait err = %v, want ErrTimeout", timeoutErr)
	}
	if nextErr != nil {
		t.Errorf("second wait err = %v, want nil (fired at 30µs, deadline 105µs)", nextErr)
	}
	if wakes != 2 {
		t.Errorf("waiter woke %d times, want exactly 2", wakes)
	}
	if sig.Waiters() != 0 || next.Waiters() != 0 {
		t.Errorf("waiter lists not drained: %d, %d", sig.Waiters(), next.Waiters())
	}
}

// Interleaved timeouts must splice the right processes out of the waiter
// list: A and C (with deadlines) time out at 5µs, B (plain Wait between
// them in the list) must remain and be the only process a later Fire
// releases.
func TestWaitTimeoutInterleavedRemovalKeepsListConsistent(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	sig := NewSignal(env)
	var errA, errC error
	var bWokeAt Time
	env.Spawn("a", func(p *Proc) { errA = sig.WaitTimeout(p, 5*Microsecond) })
	env.Spawn("b", func(p *Proc) { sig.Wait(p); bWokeAt = p.Now() })
	env.Spawn("c", func(p *Proc) { errC = sig.WaitTimeout(p, 5*Microsecond) })
	env.Spawn("observer", func(p *Proc) {
		p.Yield() // let all three enqueue
		if n := sig.Waiters(); n != 3 {
			t.Errorf("waiters after enqueue = %d, want 3", n)
		}
		p.Sleep(10 * Microsecond) // past both deadlines
		if n := sig.Waiters(); n != 1 {
			t.Errorf("waiters after timeouts = %d, want 1 (only b)", n)
		}
		sig.Fire()
	})
	env.Run()
	if errA != ErrTimeout || errC != ErrTimeout {
		t.Errorf("timed waiters: a=%v c=%v, want ErrTimeout for both", errA, errC)
	}
	if bWokeAt != Time(0).Add(10*Microsecond) {
		t.Errorf("b woke at %v, want 10µs", bWokeAt)
	}
	if sig.Waiters() != 0 {
		t.Errorf("%d waiters left after Fire", sig.Waiters())
	}
}

// A process whose signal fires before the deadline must not be woken
// again when the abandoned timer expires (the sibling wake-up is
// cancelled on delivery).
func TestWaitTimeoutSignalWinsCancelsTimer(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	sig := NewSignal(env)
	var err error
	var resumedAt, doneAt Time
	env.Spawn("waiter", func(p *Proc) {
		err = sig.WaitTimeout(p, 50*Microsecond)
		resumedAt = p.Now()
		p.Sleep(100 * Microsecond) // crosses the stale 50µs deadline
		doneAt = p.Now()
	})
	env.Spawn("firer", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		sig.Fire()
	})
	env.Run()
	if err != nil {
		t.Errorf("err = %v, want nil", err)
	}
	if resumedAt != Time(0).Add(5*Microsecond) {
		t.Errorf("resumed at %v, want 5µs", resumedAt)
	}
	if doneAt != Time(0).Add(105*Microsecond) {
		t.Errorf("finished at %v, want 105µs (stale timer must not cut the sleep short)", doneAt)
	}
}
