package experiments

import (
	"strings"
	"testing"
)

func renderResilienceOnce(t *testing.T, jobs int) string {
	t.Helper()
	o := tiny()
	o.Jobs = jobs
	rows, err := Resilience(o)
	if err != nil {
		t.Fatal(err)
	}
	return RenderResilience(rows)
}

// Same seed twice, and serial vs 8 workers, must render byte-identically:
// every fault is drawn from a seeded schedule owned by its grid cell.
func TestResilienceByteIdenticalAcrossRunsAndWorkers(t *testing.T) {
	serial := renderResilienceOnce(t, 1)
	again := renderResilienceOnce(t, 1)
	if serial != again {
		t.Fatalf("two identically seeded resilience runs diverged\nfirst:\n%s\nsecond:\n%s", serial, again)
	}
	wide := renderResilienceOnce(t, 8)
	if serial != wide {
		t.Fatalf("-j 1 and -j 8 resilience runs diverged\nserial:\n%s\nwide:\n%s", serial, wide)
	}
	if serial == "" || !strings.Contains(serial, "proxy") {
		t.Fatalf("resilience rendered unexpectedly:\n%s", serial)
	}
}

func TestResilienceZeroIntensityMatchesFaultFree(t *testing.T) {
	rows, err := Resilience(tiny())
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 3 * len(resilienceSlacks) * len(resilienceIntensities)
	if len(rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(rows), wantRows)
	}
	for _, r := range rows {
		if r.Intensity == 0 {
			// Zero intensity IS the fault-free run: identical computation,
			// so exact equality is required, and no policy action fires.
			if r.Penalty != r.FaultFree {
				t.Errorf("%s @ %v: zero-intensity penalty %v != fault-free %v",
					r.App, r.Slack, r.Penalty, r.FaultFree)
			}
			if r.Retries != 0 || r.Timeouts != 0 || r.Failovers != 0 || r.Degraded {
				t.Errorf("%s @ %v: zero-intensity run recorded policy actions: %+v", r.App, r.Slack, r)
			}
		}
		if r.Penalty < 0 {
			t.Errorf("%s @ %v ×%g: negative penalty %v", r.App, r.Slack, r.Intensity, r.Penalty)
		}
	}
	// The aggressive schedule must actually exercise the machinery
	// somewhere in the grid.
	var acted bool
	for _, r := range rows {
		if r.Intensity == 4 && (r.Retries > 0 || r.Timeouts > 0 || r.Failovers > 0) {
			acted = true
		}
	}
	if !acted {
		t.Error("intensity-4 schedule produced no retries/timeouts/failovers anywhere")
	}
}
