// Package cuda provides a CUDA-runtime-like host API over the simulated
// GPU device: contexts, memory management, synchronous and asynchronous
// memcpy, kernel launch, streams, events, and device synchronization.
//
// Every public call is routed through an interposition point so that the
// slack injector (package slack) and the tracer (package trace) can observe
// it — the same seam the paper exploits with its sleep-after-every-call
// method, without requiring LD_PRELOAD or source edits.
package cuda

import (
	"errors"
	"fmt"

	"repro/internal/gpu"
	"repro/internal/sim"
)

// CallClass categorizes API calls for interposers. The paper delays calls
// that cross the host↔device link: transfers, launches, synchronizations.
type CallClass int

const (
	// ClassMemcpyH2D is a host-to-device transfer call.
	ClassMemcpyH2D CallClass = iota
	// ClassMemcpyD2H is a device-to-host transfer call.
	ClassMemcpyD2H
	// ClassMemcpyD2D is a device-to-device transfer call.
	ClassMemcpyD2D
	// ClassLaunch is a kernel launch.
	ClassLaunch
	// ClassSync is a stream/device/event synchronization.
	ClassSync
	// ClassMemory is memory management (malloc/free).
	ClassMemory
	// ClassMisc is everything else (stream/event create and destroy).
	ClassMisc
)

// String names the class.
func (c CallClass) String() string {
	switch c {
	case ClassMemcpyH2D:
		return "memcpy-h2d"
	case ClassMemcpyD2H:
		return "memcpy-d2h"
	case ClassMemcpyD2D:
		return "memcpy-d2d"
	case ClassLaunch:
		return "launch"
	case ClassSync:
		return "sync"
	case ClassMemory:
		return "memory"
	case ClassMisc:
		return "misc"
	default:
		return fmt.Sprintf("CallClass(%d)", int(c))
	}
}

// CrossesLink reports whether a call of this class requires host↔device
// communication — the calls the paper's method injects slack on.
func (c CallClass) CrossesLink() bool {
	switch c {
	case ClassMemcpyH2D, ClassMemcpyD2H, ClassLaunch, ClassSync:
		return true
	default:
		return false
	}
}

// CallInfo describes one API invocation to interposers.
type CallInfo struct {
	Name  string
	Class CallClass
	Bytes int64 // payload size for transfers, 0 otherwise
}

// Interposer observes API calls. Before runs before the call body, After
// immediately after it returns; both run on the calling host process and
// may sleep (this is how slack is injected).
type Interposer interface {
	Before(p *sim.Proc, info CallInfo)
	After(p *sim.Proc, info CallInfo)
}

// Config tunes host-side API behaviour.
type Config struct {
	// CallOverhead is the driver/runtime cost charged on the host for
	// every API call. Zero selects the default (1.5 µs, a typical
	// cudart dispatch cost); negative disables the charge.
	CallOverhead sim.Duration
}

// DefaultCallOverhead is the per-call driver cost used when Config leaves
// CallOverhead zero.
const DefaultCallOverhead = 1500 * sim.Nanosecond

// Context binds host processes to one device, exposing the runtime API.
// A Context may be shared by many host processes (OpenMP threads), each
// typically owning its own Stream.
type Context struct {
	dev          *gpu.Device
	callOverhead sim.Duration
	interposers  []Interposer
	defaultStrm  *gpu.Stream

	// launchNames caches the "cudaLaunchKernel:<name>" /
	// "cudaLaunchKernelSync:<name>" CallInfo strings: kernel names come
	// from a small fixed set per workload, and rebuilding the
	// concatenation on every launch is a per-iteration allocation on the
	// hottest path in the module. Interposers (slack.WithSymbols) key on
	// these exact strings, so the cached values must match what the
	// concatenation produced.
	launchNames     map[string]string
	launchSyncNames map[string]string

	// eventSlab batch-allocates Events: the proxy records one per timed
	// iteration, and callers keep the pointers, so events are handed out
	// in chunks and never recycled.
	eventSlab []Event
}

// newEvent hands out an Event from the context's slab.
func (c *Context) newEvent(op *gpu.Op) *Event {
	if len(c.eventSlab) == 0 {
		//cdivet:allow escape slab refill: one amortized allocation per 64 events
		c.eventSlab = make([]Event, 64)
	}
	e := &c.eventSlab[0]
	c.eventSlab = c.eventSlab[1:]
	e.op, e.at = op, 0
	return e
}

// launchName returns prefix+kernel, cached in m.
func launchName(m map[string]string, prefix, kernel string) string {
	if s, ok := m[kernel]; ok {
		return s
	}
	//cdivet:allow hotpath cache miss: the concatenation runs once per distinct kernel name
	s := prefix + kernel
	m[kernel] = s
	return s
}

// ErrInvalidValue mirrors cudaErrorInvalidValue for size/pointer misuse.
var ErrInvalidValue = errors.New("cuda: invalid value")

// ErrDeviceLost mirrors cudaErrorDeviceLost: the physical device behind
// the context disappeared (GPU-server crash, failover abandoning the old
// chassis). Every error-returning call on a lost context reports it.
var ErrDeviceLost = errors.New("cuda: device lost")

// NewContext creates a context on dev with the given config.
func NewContext(dev *gpu.Device, cfg Config) *Context {
	ov := cfg.CallOverhead
	if ov == 0 {
		ov = DefaultCallOverhead
	}
	if ov < 0 {
		ov = 0
	}
	//cdivet:allow escape constructed once per host context at setup, not per iteration
	return &Context{
		dev:             dev,
		callOverhead:    ov,
		launchNames:     map[string]string{},
		launchSyncNames: map[string]string{},
	}
}

// Device returns the underlying device.
func (c *Context) Device() *gpu.Device { return c.dev }

// Interpose registers an interposer; registration order is Before order
// (After runs in reverse, like deferred unwinding).
func (c *Context) Interpose(i Interposer) { c.interposers = append(c.interposers, i) }

// call wraps an API body with overhead accounting and interposition.
func (c *Context) call(p *sim.Proc, info CallInfo, body func()) {
	for _, i := range c.interposers {
		i.Before(p, info)
	}
	if c.callOverhead > 0 {
		p.Sleep(c.callOverhead)
	}
	body()
	for i := len(c.interposers) - 1; i >= 0; i-- {
		c.interposers[i].After(p, info)
	}
}

// defaultStream lazily creates the context's default stream (stream 0).
func (c *Context) defaultStream() *gpu.Stream {
	if c.defaultStrm == nil {
		c.defaultStrm = c.dev.NewStream()
	}
	return c.defaultStrm
}

// checkLost fails calls against a device that has been marked lost.
func (c *Context) checkLost() error {
	if c.dev.Lost() {
		return fmt.Errorf("%w: device %s", ErrDeviceLost, c.dev.Spec().Name)
	}
	return nil
}

// Malloc reserves n bytes of device memory.
func (c *Context) Malloc(p *sim.Proc, n int64) (gpu.Ptr, error) {
	if err := c.checkLost(); err != nil {
		return 0, err
	}
	var ptr gpu.Ptr
	var err error
	c.call(p, CallInfo{Name: "cudaMalloc", Class: ClassMemory, Bytes: n}, func() {
		ptr, err = c.dev.Malloc(n)
	})
	return ptr, err
}

// Free releases device memory.
func (c *Context) Free(p *sim.Proc, ptr gpu.Ptr) error {
	if err := c.checkLost(); err != nil {
		return err
	}
	var err error
	c.call(p, CallInfo{Name: "cudaFree", Class: ClassMemory}, func() {
		err = c.dev.Free(ptr)
	})
	return err
}

// MustFree releases device memory and panics on failure. It is the
// teardown form of Free for workload models: a free that fails mid-model
// means the model double-freed or fabricated a pointer, which is a bug in
// the simulation itself, not a runtime condition to recover from.
func (c *Context) MustFree(p *sim.Proc, ptr gpu.Ptr) {
	if err := c.Free(p, ptr); err != nil {
		panic(fmt.Sprintf("cuda: MustFree: %v", err))
	}
}

// checkCopy validates a transfer against the allocation it targets.
func (c *Context) checkCopy(ptr gpu.Ptr, n int64) error {
	if err := c.checkLost(); err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("%w: negative copy size %d", ErrInvalidValue, n)
	}
	size, err := c.dev.AllocSize(ptr)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidValue, err)
	}
	if n > size {
		return fmt.Errorf("%w: copy of %d bytes into %d-byte allocation", ErrInvalidValue, n, size)
	}
	return nil
}

// MemcpyH2D synchronously copies n bytes from the host into dst.
func (c *Context) MemcpyH2D(p *sim.Proc, dst gpu.Ptr, n int64) error {
	return c.memcpy(p, "cudaMemcpy(HtoD)", ClassMemcpyH2D, gpu.H2D, dst, n)
}

// MemcpyD2H synchronously copies n bytes from src to the host.
func (c *Context) MemcpyD2H(p *sim.Proc, src gpu.Ptr, n int64) error {
	return c.memcpy(p, "cudaMemcpy(DtoH)", ClassMemcpyD2H, gpu.D2H, src, n)
}

// MemcpyD2D synchronously copies n bytes between device allocations (src
// governs the bounds check; the study only tracks sizes).
func (c *Context) MemcpyD2D(p *sim.Proc, src gpu.Ptr, n int64) error {
	return c.memcpy(p, "cudaMemcpy(DtoD)", ClassMemcpyD2D, gpu.D2D, src, n)
}

// MemcpyH2DAsync enqueues a host-to-device copy on stream s (nil selects
// the default stream) and returns the in-flight operation.
func (c *Context) MemcpyH2DAsync(p *sim.Proc, dst gpu.Ptr, n int64, s *gpu.Stream) (*gpu.Op, error) {
	return c.memcpyAsync(p, "cudaMemcpyAsync(HtoD)", ClassMemcpyH2D, gpu.H2D, dst, n, s)
}

// MemcpyD2HAsync enqueues a device-to-host copy on stream s (nil selects
// the default stream) and returns the in-flight operation.
func (c *Context) MemcpyD2HAsync(p *sim.Proc, src gpu.Ptr, n int64, s *gpu.Stream) (*gpu.Op, error) {
	return c.memcpyAsync(p, "cudaMemcpyAsync(DtoH)", ClassMemcpyD2H, gpu.D2H, src, n, s)
}

// memcpy implements the synchronous path: validate, enqueue on the default
// stream, wait for the operation (which, in stream order, also waits for
// all previously enqueued default-stream work — the legacy-stream
// serialization real CUDA exhibits).
func (c *Context) memcpy(p *sim.Proc, name string, class CallClass, dir gpu.Direction, ptr gpu.Ptr, n int64) error {
	if err := c.checkCopy(ptr, n); err != nil {
		return err
	}
	c.call(p, CallInfo{Name: name, Class: class, Bytes: n}, func() {
		op := c.defaultStream().EnqueueCopy(dir, n)
		op.Wait(p)
	})
	return nil
}

// memcpyAsync implements the asynchronous path.
func (c *Context) memcpyAsync(p *sim.Proc, name string, class CallClass, dir gpu.Direction, ptr gpu.Ptr, n int64, s *gpu.Stream) (*gpu.Op, error) {
	if err := c.checkCopy(ptr, n); err != nil {
		return nil, err
	}
	var op *gpu.Op
	c.call(p, CallInfo{Name: name, Class: class, Bytes: n}, func() {
		if s == nil {
			s = c.defaultStream()
		}
		op = s.EnqueueCopy(dir, n)
	})
	return op, nil
}

// Launch asynchronously submits kernel k on stream s (nil selects the
// default stream). The host returns after the driver dispatch cost; the
// kernel executes in stream order.
func (c *Context) Launch(p *sim.Proc, k gpu.Kernel, s *gpu.Stream) *gpu.Op {
	var op *gpu.Op
	c.call(p, CallInfo{Name: launchName(c.launchNames, "cudaLaunchKernel:", k.Name), Class: ClassLaunch}, func() {
		if s == nil {
			s = c.defaultStream()
		}
		// The driver's launch cost is charged on the host in addition to
		// CallOverhead; when the device is busy it stays hidden from the
		// device timeline because the stream queue already holds work.
		if lo := c.dev.Spec().LaunchOverhead; lo > 0 {
			p.Sleep(lo)
		}
		op = s.EnqueueKernel(k)
	})
	return op
}

// LaunchSync submits kernel k on stream s (nil selects the default stream)
// and blocks until it completes — the fully synchronous dispatch the
// paper's proxy uses "to capture the pessimistic case": no host/device
// overlap hides injected slack.
func (c *Context) LaunchSync(p *sim.Proc, k gpu.Kernel, s *gpu.Stream) {
	c.call(p, CallInfo{Name: launchName(c.launchSyncNames, "cudaLaunchKernelSync:", k.Name), Class: ClassLaunch}, func() {
		if s == nil {
			s = c.defaultStream()
		}
		if lo := c.dev.Spec().LaunchOverhead; lo > 0 {
			p.Sleep(lo)
		}
		op := s.EnqueueKernel(k)
		op.Wait(p)
	})
}

// StreamCreate returns a new stream.
func (c *Context) StreamCreate(p *sim.Proc) *gpu.Stream {
	var s *gpu.Stream
	c.call(p, CallInfo{Name: "cudaStreamCreate", Class: ClassMisc}, func() {
		s = c.dev.NewStream()
	})
	return s
}

// StreamDestroy destroys a stream created with StreamCreate.
func (c *Context) StreamDestroy(p *sim.Proc, s *gpu.Stream) {
	c.call(p, CallInfo{Name: "cudaStreamDestroy", Class: ClassMisc}, func() {
		s.Destroy()
	})
}

// StreamSynchronize blocks until every operation enqueued on s completes.
func (c *Context) StreamSynchronize(p *sim.Proc, s *gpu.Stream) {
	c.call(p, CallInfo{Name: "cudaStreamSynchronize", Class: ClassSync}, func() {
		if s == nil {
			s = c.defaultStream()
		}
		s.Sync(p)
	})
}

// DeviceSynchronize blocks until every stream on the device drains.
func (c *Context) DeviceSynchronize(p *sim.Proc) {
	c.call(p, CallInfo{Name: "cudaDeviceSynchronize", Class: ClassSync}, func() {
		c.dev.Sync(p)
	})
}

// Event is a recorded position in a stream, as cudaEvent_t.
type Event struct {
	op *gpu.Op
	at sim.Time // completion time, valid once Done
}

// EventRecord records an event at the current tail of stream s.
func (c *Context) EventRecord(p *sim.Proc, s *gpu.Stream) *Event {
	var e *Event
	c.call(p, CallInfo{Name: "cudaEventRecord", Class: ClassMisc}, func() {
		if s == nil {
			s = c.defaultStream()
		}
		e = c.newEvent(s.EnqueueMarker())
	})
	return e
}

// EventSynchronize blocks until the event's position in its stream has
// been reached, and returns the virtual time at which that happened.
func (c *Context) EventSynchronize(p *sim.Proc, e *Event) sim.Time {
	c.call(p, CallInfo{Name: "cudaEventSynchronize", Class: ClassSync}, func() {
		e.op.Wait(p)
		if e.at == 0 {
			e.at = p.Now()
		}
	})
	return e.at
}

// ElapsedTime returns the virtual time between two synchronized events,
// the GPU-side timing mechanism the proxy uses.
func ElapsedTime(start, end *Event) (sim.Duration, error) {
	if start == nil || end == nil || !start.op.Done() || !end.op.Done() {
		return 0, fmt.Errorf("%w: ElapsedTime on unsynchronized events", ErrInvalidValue)
	}
	return end.at.Sub(start.at), nil
}
