// Package compose models the resource-composition side of CDI: a system
// is either a set of traditional heterogeneous nodes (CPUs and GPUs bolted
// together, allocated at node granularity) or a composable one (CPU nodes
// plus GPU chassis, matched to each job's exact ratio). It implements the
// allocation arithmetic behind the paper's introduction and Discussion
// (§V): trapped resources, utilization, idle-GPU power, and the
// 40-GPU/20-CPU-node scheduling example.
package compose

import (
	"errors"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// ErrInsufficient reports that a request cannot be satisfied.
var ErrInsufficient = errors.New("compose: insufficient resources")

// Architecture selects the system style.
type Architecture int

const (
	// Traditional is the node-based architecture: CPUs and GPUs are
	// allocated together in fixed per-node bundles.
	Traditional Architecture = iota
	// CDI is the composable architecture: CPU nodes and disaggregated GPU
	// chassis allocated independently.
	CDI
)

// String names the architecture.
func (a Architecture) String() string {
	switch a {
	case Traditional:
		return "traditional"
	case CDI:
		return "cdi"
	default:
		return fmt.Sprintf("Architecture(%d)", int(a))
	}
}

// Request is one job's resource ask.
type Request struct {
	Name  string
	Cores int
	GPUs  int
	// FlexCores marks the core count as a preference rather than a
	// requirement: if the full ask does not fit, the job accepts whatever
	// cores come with the nodes its GPU demand implies — how GPU jobs are
	// actually submitted on node-granular machines.
	FlexCores bool
}

func (r Request) validate() error {
	if r.Cores < 0 || r.GPUs < 0 || (r.Cores == 0 && r.GPUs == 0) {
		return fmt.Errorf("compose: invalid request %+v", r)
	}
	return nil
}

// Allocation is a granted request.
type Allocation struct {
	Request
	// NodesUsed is the number of CPU (or heterogeneous) nodes claimed.
	NodesUsed int
	// GPUsGranted counts granted GPUs; under Traditional it includes the
	// whole nodes' complement, of which TrappedGPUs are unused by the job.
	GPUsGranted int
	// TrappedGPUs are GPUs locked into the allocation that the job will
	// not use (zero under CDI).
	TrappedGPUs int
	// TrappedCores are cores locked but unused.
	TrappedCores int
	// Slack is the CPU-to-GPU slack this composition experiences: zero on
	// a traditional node, the fabric latency under CDI.
	Slack sim.Duration
}

// System is a schedulable machine.
type System struct {
	arch Architecture

	// Traditional shape.
	nodes        int
	coresPerNode int
	gpusPerNode  int

	// CDI shape.
	chassis        int
	gpusPerChassis int
	path           fabric.Path

	freeNodes int
	freeGPUs  int // CDI chassis pool

	allocs map[string]*Allocation
}

// NewTraditional builds a node-based system: nodes × (coresPerNode CPUs +
// gpusPerNode GPUs).
func NewTraditional(nodes, coresPerNode, gpusPerNode int) (*System, error) {
	if nodes <= 0 || coresPerNode <= 0 || gpusPerNode < 0 {
		return nil, fmt.Errorf("compose: invalid traditional shape %d×(%d cores, %d gpus)",
			nodes, coresPerNode, gpusPerNode)
	}
	return &System{
		arch:         Traditional,
		nodes:        nodes,
		coresPerNode: coresPerNode,
		gpusPerNode:  gpusPerNode,
		freeNodes:    nodes,
		allocs:       map[string]*Allocation{},
	}, nil
}

// NewCDI builds a composable system: cpuNodes CPU-only nodes plus chassis
// × gpusPerChassis disaggregated GPUs reached over path (use
// fabric.Preset(fabric.RowScale, km) for the paper's subject).
func NewCDI(cpuNodes, coresPerNode, chassis, gpusPerChassis int, path fabric.Path) (*System, error) {
	if cpuNodes <= 0 || coresPerNode <= 0 || chassis < 0 || gpusPerChassis < 0 {
		return nil, fmt.Errorf("compose: invalid CDI shape %d nodes, %d chassis", cpuNodes, chassis)
	}
	return &System{
		arch:           CDI,
		nodes:          cpuNodes,
		coresPerNode:   coresPerNode,
		chassis:        chassis,
		gpusPerChassis: gpusPerChassis,
		path:           path,
		freeNodes:      cpuNodes,
		freeGPUs:       chassis * gpusPerChassis,
		allocs:         map[string]*Allocation{},
	}, nil
}

// Architecture returns the system style.
func (s *System) Architecture() Architecture { return s.arch }

// TotalCores returns the system's core count.
func (s *System) TotalCores() int { return s.nodes * s.coresPerNode }

// TotalGPUs returns the system's GPU count.
func (s *System) TotalGPUs() int {
	if s.arch == Traditional {
		return s.nodes * s.gpusPerNode
	}
	return s.chassis * s.gpusPerChassis
}

// FreeGPUs returns the unallocated GPU count.
func (s *System) FreeGPUs() int {
	if s.arch == Traditional {
		return s.freeNodes * s.gpusPerNode
	}
	return s.freeGPUs
}

// FreeCores returns the unallocated core count.
func (s *System) FreeCores() int { return s.freeNodes * s.coresPerNode }

// ceilDiv returns ⌈a/b⌉.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Alloc grants a request or returns ErrInsufficient. Allocation names must
// be unique among live allocations.
func (s *System) Alloc(req Request) (*Allocation, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	if _, dup := s.allocs[req.Name]; dup {
		return nil, fmt.Errorf("compose: allocation %q already live", req.Name)
	}
	a := &Allocation{Request: req}
	switch s.arch {
	case Traditional:
		// Node granularity: enough nodes to cover both the core and the
		// GPU ask; everything on those nodes is locked in.
		var byGPU int
		if s.gpusPerNode > 0 {
			byGPU = ceilDiv(req.GPUs, s.gpusPerNode)
		} else if req.GPUs > 0 {
			return nil, fmt.Errorf("%w: no GPUs in this system", ErrInsufficient)
		}
		need := ceilDiv(req.Cores, s.coresPerNode)
		if byGPU > need {
			need = byGPU
		}
		if need > s.freeNodes && req.FlexCores && byGPU <= s.freeNodes {
			// Best-effort cores: settle for the GPU-implied node count.
			need = byGPU
		}
		if need > s.freeNodes {
			return nil, fmt.Errorf("%w: need %d nodes, free %d", ErrInsufficient, need, s.freeNodes)
		}
		s.freeNodes -= need
		a.NodesUsed = need
		a.GPUsGranted = need * s.gpusPerNode
		a.TrappedGPUs = a.GPUsGranted - req.GPUs
		usedCores := req.Cores
		if usedCores > need*s.coresPerNode {
			usedCores = need * s.coresPerNode
		}
		a.TrappedCores = need*s.coresPerNode - usedCores
		a.Slack = 0
	case CDI:
		need := ceilDiv(req.Cores, s.coresPerNode)
		if need > s.freeNodes {
			return nil, fmt.Errorf("%w: need %d CPU nodes, free %d", ErrInsufficient, need, s.freeNodes)
		}
		if req.GPUs > s.freeGPUs {
			return nil, fmt.Errorf("%w: need %d GPUs, free %d", ErrInsufficient, req.GPUs, s.freeGPUs)
		}
		s.freeNodes -= need
		s.freeGPUs -= req.GPUs
		a.NodesUsed = need
		a.GPUsGranted = req.GPUs
		a.TrappedCores = need*s.coresPerNode - req.Cores
		a.TrappedGPUs = 0
		if req.GPUs > 0 {
			a.Slack = fabric.SlackForPath(s.path)
		}
	}
	s.allocs[req.Name] = a
	return a, nil
}

// Release returns an allocation's resources.
func (s *System) Release(name string) error {
	a, ok := s.allocs[name]
	if !ok {
		return fmt.Errorf("compose: no live allocation %q", name)
	}
	delete(s.allocs, name)
	s.freeNodes += a.NodesUsed
	if s.arch == CDI {
		s.freeGPUs += a.GPUsGranted
	}
	return nil
}

// Live returns the number of live allocations.
func (s *System) Live() int { return len(s.allocs) }

// Trapped sums trapped cores and GPUs across live allocations — the
// resources the paper calls "trapped" idle devices that cannot be
// scheduled for other jobs or powered down.
func (s *System) Trapped() (cores, gpus int) {
	for _, a := range s.allocs {
		cores += a.TrappedCores
		gpus += a.TrappedGPUs
	}
	return cores, gpus
}

// GPUUtilization returns used GPUs over powered GPUs. Under Traditional,
// trapped and free GPUs still draw power; under CDI, unallocated GPUs are
// powered down and leave the denominator.
func (s *System) GPUUtilization() float64 {
	used := 0
	for _, a := range s.allocs {
		used += a.GPUs
	}
	var powered int
	if s.arch == Traditional {
		powered = s.TotalGPUs()
	} else {
		powered = used // composable: only composed GPUs are on
		for _, a := range s.allocs {
			powered += a.TrappedGPUs // always zero, kept for symmetry
		}
	}
	if powered == 0 {
		return 0
	}
	return float64(used) / float64(powered)
}

// PowerModel holds the wattage constants for IdleGPUWatts accounting.
type PowerModel struct {
	GPUIdle float64 // W per powered-but-unused GPU
	GPUBusy float64 // W per busy GPU
}

// DefaultPower returns A100-class wattages.
func DefaultPower() PowerModel { return PowerModel{GPUIdle: 55, GPUBusy: 400} }

// StrandedDraw returns the idle wattage burned by stranded capacity: GPUs
// that are powered and free but unreachable for the workload that wants
// them (fragmented pool state, not the paper's per-allocation trapping).
// The count may be a time average, hence float64; negative counts clamp
// to zero.
func (pm PowerModel) StrandedDraw(gpus float64) float64 {
	if gpus < 0 {
		gpus = 0
	}
	return gpus * pm.GPUIdle
}

// GPUPowerDraw returns the current GPU power draw in watts. Traditional
// systems pay idle power on trapped and free GPUs; CDI powers them off.
func (s *System) GPUPowerDraw(pm PowerModel) float64 {
	used := 0
	for _, a := range s.allocs {
		used += a.GPUs
	}
	busy := float64(used) * pm.GPUBusy
	if s.arch == Traditional {
		idle := float64(s.TotalGPUs()-used) * pm.GPUIdle
		return busy + idle
	}
	return busy
}
