// Corpus for the walltime analyzer: wall-clock reads in simulated code.
// Lines marked "// want" must produce exactly one finding.
package corpus

import "time"

func wallClock() time.Duration {
	start := time.Now()          // want
	time.Sleep(time.Millisecond) // want
	ch := time.After(time.Hour)  // want
	<-ch
	return time.Since(start) // want
}

func suppressedWallClock() time.Time {
	//cdivet:allow walltime corpus: demonstrates a justified suppression
	return time.Now()
}

// conversionsAreFine uses only time's types and constants, which never read
// the host clock.
func conversionsAreFine(n int) time.Duration {
	d := time.Duration(n) * time.Millisecond
	return d.Round(time.Microsecond)
}
