// Package sched simulates batch scheduling on composable and traditional
// machines: jobs arrive over time, wait for resources, run, and release.
// It quantifies the system-level claims the paper's introduction makes for
// CDI — higher job throughput, shorter time to solution, and less energy
// burned by trapped idle GPUs — on the same job mix and identical total
// hardware.
package sched

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/compose"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// workloadSalt is this package's substream salt for WorkloadMix draws
// (faults reserves everything below 0x10000; remoting holds
// 0x10000–0x10002, slack 0x10010, serve the 0x20000 block).
const workloadSalt uint64 = 0x10020

// composeRowPath returns the row-scale fabric path CDI machines use.
func composeRowPath() fabric.Path { return fabric.Preset(fabric.RowScale, 0) }

// Job is one batch submission.
type Job struct {
	Name string
	// Arrival is when the job enters the queue.
	Arrival sim.Time
	// Duration is the service time once started.
	Duration sim.Duration
	// Req is the resource ask.
	Req compose.Request
}

func (j Job) validate() error {
	if j.Duration <= 0 {
		return fmt.Errorf("sched: job %q duration %v", j.Name, j.Duration)
	}
	if j.Arrival < 0 {
		return fmt.Errorf("sched: job %q negative arrival", j.Name)
	}
	return nil
}

// JobStats reports one job's fate.
type JobStats struct {
	Job
	Started  sim.Time
	Finished sim.Time
	// Wait is Started − Arrival.
	Wait sim.Duration
	// Rejected is set when the job can never fit on the machine.
	Rejected bool
}

// Result summarizes a schedule.
type Result struct {
	Jobs     []JobStats
	Makespan sim.Duration
	MeanWait sim.Duration
	MaxWait  sim.Duration
	Rejected int
	// GPUEnergyWh integrates GPU power (busy + idle-but-powered) over the
	// makespan.
	GPUEnergyWh float64
}

// Policy selects queue discipline.
type Policy int

const (
	// FCFS starts jobs strictly in queue order; the head blocks the rest.
	FCFS Policy = iota
	// Backfill lets later jobs start when the head does not fit —
	// conservative backfilling without reservations.
	Backfill
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case Backfill:
		return "backfill"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Run schedules jobs on the system under the policy and returns the
// outcome. The system must be freshly built (no live allocations).
func Run(system *compose.System, jobs []Job, policy Policy) (Result, error) {
	for _, j := range jobs {
		if err := j.validate(); err != nil {
			return Result{}, err
		}
	}
	env := sim.NewEnv()
	defer env.Close()

	// Sort a copy by arrival for deterministic queue order.
	pending := append([]Job(nil), jobs...)
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].Arrival < pending[j].Arrival })

	stats := map[string]*JobStats{}
	var queue []*JobStats
	poke := sim.NewSignal(env)
	running := 0
	arrivalsLeft := len(pending)

	pm := compose.DefaultPower()
	var energyWs float64 // watt-seconds
	lastPowerAt := sim.Time(0)
	accrue := func(now sim.Time) {
		energyWs += system.GPUPowerDraw(pm) * float64(now.Sub(lastPowerAt))
		lastPowerAt = now
	}

	// rejectable reports whether the request could ever fit on an empty
	// machine (otherwise it would wedge the FCFS queue forever).
	fitsEmpty := func(r compose.Request) bool {
		if r.Cores > system.TotalCores() || r.GPUs > system.TotalGPUs() {
			return false
		}
		return true
	}

	tryStart := func(p *sim.Proc) {
		for i := 0; i < len(queue); {
			js := queue[i]
			// Close the current power interval before the draw changes.
			accrue(p.Now())
			_, err := system.Alloc(js.Req)
			if err != nil {
				if policy == FCFS {
					break
				}
				i++
				continue
			}
			js.Started = p.Now()
			js.Wait = js.Started.Sub(js.Arrival)
			queue = append(queue[:i], queue[i+1:]...)
			running++
			job := js
			env.Spawn("job:"+job.Name, func(jp *sim.Proc) {
				jp.Sleep(job.Duration)
				accrue(jp.Now())
				if err := system.Release(job.Name); err != nil {
					panic(err)
				}
				job.Finished = jp.Now()
				running--
				poke.Fire()
			})
		}
	}

	for _, j := range pending {
		j := j
		env.SpawnAt(sim.Duration(j.Arrival), "arrival:"+j.Name, func(p *sim.Proc) {
			js := &JobStats{Job: j}
			stats[j.Name] = js
			arrivalsLeft--
			if !fitsEmpty(j.Req) {
				js.Rejected = true
				poke.Fire()
				return
			}
			queue = append(queue, js)
			poke.Fire()
		})
	}

	env.Spawn("scheduler", func(p *sim.Proc) {
		for arrivalsLeft > 0 || len(queue) > 0 || running > 0 {
			tryStart(p)
			if arrivalsLeft == 0 && len(queue) == 0 && running == 0 {
				break
			}
			poke.Wait(p)
		}
	})

	end := env.Run()
	if blocked := env.Blocked(); len(blocked) > 0 {
		return Result{}, fmt.Errorf("sched: deadlock, blocked: %v", blocked)
	}
	accrueFinal := system.GPUPowerDraw(pm) * float64(end.Sub(lastPowerAt))
	energyWs += accrueFinal

	res := Result{Makespan: end.Sub(0), GPUEnergyWh: energyWs / 3600}
	var totalWait sim.Duration
	started := 0
	for _, j := range jobs {
		js := stats[j.Name]
		if js == nil {
			return Result{}, fmt.Errorf("sched: job %q lost", j.Name)
		}
		res.Jobs = append(res.Jobs, *js)
		if js.Rejected {
			res.Rejected++
			continue
		}
		started++
		totalWait += js.Wait
		if js.Wait > res.MaxWait {
			res.MaxWait = js.Wait
		}
	}
	if started > 0 {
		res.MeanWait = totalWait / sim.Duration(started)
	}
	return res, nil
}

// WorkloadMix synthesizes a deterministic job stream resembling the
// paper's framing: CPU-dominant jobs that would trap GPUs, GPU-dominant
// jobs that starve for them, and balanced jobs.
func WorkloadMix(n int, coresPerNode int, seed int64) []Job {
	if n <= 0 {
		panic("sched: non-positive job count")
	}
	rng := rand.New(rand.NewPCG(uint64(seed), workloadSalt))
	var jobs []Job
	var t sim.Time
	for i := 0; i < n; i++ {
		t = t.Add(sim.Duration(rng.Float64()*20) * sim.Minute / 20)
		dur := sim.Duration(10+rng.Float64()*50) * sim.Minute / 10
		var req compose.Request
		switch i % 3 {
		case 0: // CPU-dominant (LAMMPS-like): many cores, 1 GPU
			req = compose.Request{Cores: coresPerNode * (1 + rng.IntN(3)), GPUs: 1}
		case 1: // GPU-dominant (CosmoFlow-like): few cores, several GPUs
			req = compose.Request{Cores: 2 + rng.IntN(4), GPUs: 2 + rng.IntN(6)}
		default: // balanced
			req = compose.Request{Cores: coresPerNode, GPUs: 1 + rng.IntN(2)}
		}
		req.Name = fmt.Sprintf("job%03d", i)
		req.FlexCores = true
		jobs = append(jobs, Job{Name: req.Name, Arrival: t, Duration: dur, Req: req})
	}
	return jobs
}

// Comparison contrasts the same workload on both architectures.
type Comparison struct {
	Traditional Result
	CDI         Result
}

// Compare schedules the mix on a traditional machine (nodes ×
// coresPerNode, gpusPerNode) and an equal-hardware CDI machine.
func Compare(jobs []Job, nodes, coresPerNode, gpusPerNode int, policy Policy) (Comparison, error) {
	trad, err := compose.NewTraditional(nodes, coresPerNode, gpusPerNode)
	if err != nil {
		return Comparison{}, err
	}
	totalGPUs := nodes * gpusPerNode
	cdi, err := compose.NewCDI(nodes, coresPerNode, 1, totalGPUs, composeRowPath())
	if err != nil {
		return Comparison{}, err
	}
	rt, err := Run(trad, jobs, policy)
	if err != nil {
		return Comparison{}, fmt.Errorf("sched: traditional: %w", err)
	}
	rc, err := Run(cdi, jobs, policy)
	if err != nil {
		return Comparison{}, fmt.Errorf("sched: cdi: %w", err)
	}
	return Comparison{Traditional: rt, CDI: rc}, nil
}
