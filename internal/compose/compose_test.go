package compose

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fabric"
)

func TestTraditionalNodeGranularity(t *testing.T) {
	s, err := NewTraditional(4, 12, 1) // the paper's 12 cores/GPU Narval ratio
	if err != nil {
		t.Fatal(err)
	}
	// 48-core CPU-heavy job with 1 GPU: needs all 4 nodes, trapping 3 GPUs.
	a, err := s.Alloc(Request{Name: "lammps", Cores: 48, GPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.NodesUsed != 4 || a.GPUsGranted != 4 || a.TrappedGPUs != 3 {
		t.Errorf("allocation = %+v", a)
	}
	if a.Slack != 0 {
		t.Errorf("traditional slack = %v, want 0", a.Slack)
	}
	if _, gpus := s.Trapped(); gpus != 3 {
		t.Errorf("trapped gpus = %d", gpus)
	}
	if s.FreeCores() != 0 || s.FreeGPUs() != 0 {
		t.Errorf("free = %d cores, %d gpus", s.FreeCores(), s.FreeGPUs())
	}
}

func TestCDIMatchesExactRatio(t *testing.T) {
	s, err := NewCDI(4, 12, 1, 4, fabric.Preset(fabric.RowScale, 0))
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Alloc(Request{Name: "lammps", Cores: 48, GPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.NodesUsed != 4 || a.GPUsGranted != 1 || a.TrappedGPUs != 0 {
		t.Errorf("allocation = %+v", a)
	}
	if a.Slack <= 0 {
		t.Error("CDI composition has no slack")
	}
	if s.FreeGPUs() != 3 {
		t.Errorf("free GPUs = %d, want 3 (not trapped)", s.FreeGPUs())
	}
}

func TestCDICPUOnlyJobHasNoSlack(t *testing.T) {
	s, _ := NewCDI(2, 24, 1, 4, fabric.Preset(fabric.RowScale, 0))
	a, err := s.Alloc(Request{Name: "cpu-only", Cores: 24})
	if err != nil {
		t.Fatal(err)
	}
	if a.Slack != 0 {
		t.Errorf("CPU-only job slack = %v", a.Slack)
	}
}

func TestAllocValidationAndExhaustion(t *testing.T) {
	s, _ := NewTraditional(2, 8, 1)
	if _, err := s.Alloc(Request{Name: "bad"}); err == nil {
		t.Error("empty request accepted")
	}
	if _, err := s.Alloc(Request{Name: "bad", Cores: -1}); err == nil {
		t.Error("negative request accepted")
	}
	if _, err := s.Alloc(Request{Name: "a", Cores: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(Request{Name: "a", Cores: 1}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := s.Alloc(Request{Name: "b", Cores: 1}); !errors.Is(err, ErrInsufficient) {
		t.Errorf("exhaustion error = %v", err)
	}
	if err := s.Release("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Release("a"); err == nil {
		t.Error("double release accepted")
	}
	if _, err := s.Alloc(Request{Name: "b", Cores: 1}); err != nil {
		t.Errorf("allocation after release failed: %v", err)
	}
}

func TestCDIGPUExhaustion(t *testing.T) {
	s, _ := NewCDI(4, 8, 1, 2, fabric.Path{})
	if _, err := s.Alloc(Request{Name: "a", Cores: 1, GPUs: 3}); !errors.Is(err, ErrInsufficient) {
		t.Errorf("GPU overcommit error = %v", err)
	}
}

func TestTraditionalWithoutGPUsRejectsGPURequest(t *testing.T) {
	s, _ := NewTraditional(2, 8, 0)
	if _, err := s.Alloc(Request{Name: "a", Cores: 1, GPUs: 1}); !errors.Is(err, ErrInsufficient) {
		t.Errorf("error = %v", err)
	}
}

func TestGPUUtilizationAndPower(t *testing.T) {
	pm := DefaultPower()
	trad, _ := NewTraditional(4, 12, 2) // 8 GPUs
	trad.Alloc(Request{Name: "j", Cores: 48, GPUs: 2})
	if got := trad.GPUUtilization(); got != 0.25 {
		t.Errorf("traditional utilization = %v, want 0.25 (2 of 8 powered)", got)
	}
	wantW := 2*pm.GPUBusy + 6*pm.GPUIdle
	if got := trad.GPUPowerDraw(pm); got != wantW {
		t.Errorf("traditional power = %v, want %v", got, wantW)
	}

	cdi, _ := NewCDI(4, 12, 1, 8, fabric.Path{})
	cdi.Alloc(Request{Name: "j", Cores: 48, GPUs: 2})
	if got := cdi.GPUUtilization(); got != 1.0 {
		t.Errorf("CDI utilization = %v, want 1.0 (unused GPUs off)", got)
	}
	if got := cdi.GPUPowerDraw(pm); got != 2*pm.GPUBusy {
		t.Errorf("CDI power = %v, want %v", got, 2*pm.GPUBusy)
	}
}

func TestArchitectureString(t *testing.T) {
	if Traditional.String() != "traditional" || CDI.String() != "cdi" {
		t.Error("architecture names wrong")
	}
	if Architecture(9).String() == "" {
		t.Error("unknown architecture name empty")
	}
}

func TestPaperScenario(t *testing.T) {
	cmp, err := PaperScenario()
	if err != nil {
		t.Fatal(err)
	}
	// Traditional: CosmoFlow's 20 GPUs need 10 of the 20 2-GPU nodes,
	// wasting 236 of their cores; LAMMPS then has only 10 nodes = 240
	// cores for its 20 GPUs (12 cores/GPU).
	cf := cmp.Traditional[0]
	lm := cmp.Traditional[1]
	if !cf.Granted || cf.Allocation.NodesUsed != 10 {
		t.Fatalf("traditional cosmoflow: %+v", cf)
	}
	if !lm.Granted || lm.Allocation.NodesUsed != 10 {
		t.Fatalf("traditional lammps: %+v", lm)
	}
	if lm.CoreToGPU != 12 {
		t.Errorf("traditional lammps cores/gpu = %v, want 12", lm.CoreToGPU)
	}

	// CDI: CosmoFlow takes 1 node (4 cores of it) + 20 chassis GPUs,
	// leaving LAMMPS 16 nodes for its 20 GPUs — 19.2 cores/GPU, the
	// paper's much healthier ratio.
	cfC := cmp.CDI[0]
	lmC := cmp.CDI[1]
	if !cfC.Granted || cfC.Allocation.NodesUsed != 1 {
		t.Fatalf("cdi cosmoflow: %+v", cfC)
	}
	if !lmC.Granted || lmC.Allocation.NodesUsed != 16 {
		t.Fatalf("cdi lammps: %+v", lmC)
	}
	if lmC.CoreToGPU <= lm.CoreToGPU {
		t.Errorf("CDI did not improve LAMMPS cores/gpu: %v vs %v", lmC.CoreToGPU, lm.CoreToGPU)
	}
	if cmp.CDITrappedGPUs != 0 {
		t.Errorf("CDI trapped GPUs = %d", cmp.CDITrappedGPUs)
	}
	// Every GPU is busy in this fully subscribed scenario, so power is
	// equal; CDI must never draw more.
	if cmp.CDIPowerW > cmp.TraditionalPowerW {
		t.Errorf("CDI power %v above traditional %v", cmp.CDIPowerW, cmp.TraditionalPowerW)
	}
	if cmp.Render() == "" {
		t.Error("empty Render")
	}
}

func TestCompareArchitecturesOversubscription(t *testing.T) {
	// Three jobs that fit under CDI but not traditionally: GPU demand
	// equals supply, but node-granularity wastes GPUs.
	jobs := []Request{
		{Name: "a", Cores: 36, GPUs: 1},
		{Name: "b", Cores: 36, GPUs: 1},
		{Name: "c", Cores: 4, GPUs: 6},
	}
	cmp, err := CompareArchitectures(jobs, 8, 12, 1, 8, fabric.RowScale)
	if err != nil {
		t.Fatal(err)
	}
	tradGranted, cdiGranted := 0, 0
	for i := range jobs {
		if cmp.Traditional[i].Granted {
			tradGranted++
		}
		if cmp.CDI[i].Granted {
			cdiGranted++
		}
	}
	if cdiGranted <= tradGranted {
		t.Errorf("CDI granted %d jobs vs traditional %d; composability should win", cdiGranted, tradGranted)
	}
}

// Property: any sequence of allocations and releases conserves resources —
// free counts never go negative or exceed totals, and releasing everything
// restores the empty machine.
func TestPropertyAllocReleaseConservation(t *testing.T) {
	f := func(seed int64, cdi bool) bool {
		rng := rand.New(rand.NewSource(seed))
		var s *System
		var err error
		if cdi {
			s, err = NewCDI(6, 12, 2, 8, fabric.Preset(fabric.RowScale, 0))
		} else {
			s, err = NewTraditional(6, 12, 2)
		}
		if err != nil {
			return false
		}
		totalCores, totalGPUs := s.TotalCores(), s.TotalGPUs()
		live := map[string]bool{}
		for i := 0; i < 60; i++ {
			if rng.Intn(2) == 0 {
				name := fmt.Sprintf("j%d", i)
				req := Request{
					Name:  name,
					Cores: rng.Intn(totalCores + 10),
					GPUs:  rng.Intn(totalGPUs + 4),
				}
				if req.Cores == 0 && req.GPUs == 0 {
					req.Cores = 1
				}
				if _, err := s.Alloc(req); err == nil {
					live[name] = true
				}
			} else {
				for name := range live {
					if err := s.Release(name); err != nil {
						return false
					}
					delete(live, name)
					break
				}
			}
			if s.FreeCores() < 0 || s.FreeCores() > totalCores {
				return false
			}
			if s.FreeGPUs() < 0 || s.FreeGPUs() > totalGPUs {
				return false
			}
		}
		for name := range live {
			if err := s.Release(name); err != nil {
				return false
			}
		}
		return s.FreeCores() == totalCores && s.FreeGPUs() == totalGPUs && s.Live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
