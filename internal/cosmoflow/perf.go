package cosmoflow

import (
	"fmt"

	"repro/internal/cuda"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/horovod"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/slack"
	"repro/internal/trace"
)

// Performance-mode constants. The paper ran CosmoFlow's "mini" dataset
// (1024 training + 1024 validation samples) for 5 epochs at batch size 4,
// measuring 705 s on a Narval node; the loader and framework-overhead
// constants below put the simulated run in the same regime.
const (
	// DefaultInputSide is the cubic volume edge (voxels).
	DefaultInputSide = 128
	// DefaultChannels is the input channel count (redshift bins).
	DefaultChannels = 4
	// DefaultBatch is the paper's profiling batch size.
	DefaultBatch = 4
	// DefaultEpochs matches the paper's runs.
	DefaultEpochs = 5
	// MiniSamples is the size of each split of the "mini" dataset.
	MiniSamples = 1024

	// LoadPerSample is the host cost to read and augment one volume.
	LoadPerSample = 50 * sim.Millisecond
	// LoaderCores is the host-core count the input pipeline saturates —
	// the paper found CosmoFlow needs exactly 2 cores and gains nothing
	// beyond them.
	LoaderCores = 2
	// StepOverhead is the framework (TensorFlow session/dispatch) cost
	// per training step, replicated on the host.
	StepOverhead = 100 * sim.Millisecond
	// ConvEfficiency is the fraction of device peak the framework's 3-D
	// convolutions achieve (TF conv3d kernels are far from peak).
	ConvEfficiency = 0.05
)

// PerfConfig describes one performance-mode training run.
type PerfConfig struct {
	// GPUs is the number of data-parallel workers (devices).
	GPUs int
	// BatchSize is the per-worker batch size.
	BatchSize int
	// Epochs is the number of passes over the training split.
	Epochs int
	// TrainSamples and ValSamples size the dataset (0 = mini: 1024 each).
	TrainSamples int
	ValSamples   int
	// Cores is the host core count available to each worker.
	Cores int
	// InputSide and Channels shape the input volumes.
	InputSide int
	Channels  int
	// Spec selects the device type (zero value = gpu.A100()).
	Spec gpu.Spec
	// Slack is injected after every link-crossing CUDA call (0 = none).
	Slack sim.Duration
	// Faults, when non-nil, charges deterministic fault-recovery delays
	// (timeouts, retries, failover) after link-crossing calls on every
	// worker; the caller keeps the pointer and reads its Stats afterwards.
	Faults *faults.CallInjector
	// Record attaches an NSys-style recorder (worker 0's device).
	Record bool
	// Interconnect is the GPU-to-GPU cost model for gradient allreduce.
	// The zero value selects mpi.IntraNode(); mpi.NVLink() models GPUs
	// composed into one chassis (the Discussion's tight-coupling benefit),
	// mpi.InterNode() GPUs dispersed across nodes.
	Interconnect mpi.CostModel
}

func (c PerfConfig) withDefaults() PerfConfig {
	if c.GPUs == 0 {
		c.GPUs = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = DefaultBatch
	}
	if c.Epochs == 0 {
		c.Epochs = DefaultEpochs
	}
	if c.TrainSamples == 0 {
		c.TrainSamples = MiniSamples
	}
	if c.ValSamples == 0 {
		c.ValSamples = MiniSamples
	}
	if c.Cores == 0 {
		c.Cores = 8
	}
	if c.InputSide == 0 {
		c.InputSide = DefaultInputSide
	}
	if c.Channels == 0 {
		c.Channels = DefaultChannels
	}
	if c.Spec.Name == "" {
		c.Spec = gpu.A100()
	}
	return c
}

func (c PerfConfig) validate() error {
	if c.GPUs < 1 || c.BatchSize < 1 || c.Epochs < 1 || c.Cores < 1 {
		return fmt.Errorf("cosmoflow: invalid run shape gpus=%d batch=%d epochs=%d cores=%d",
			c.GPUs, c.BatchSize, c.Epochs, c.Cores)
	}
	if c.InputSide < 8 || c.InputSide&(c.InputSide-1) != 0 {
		return fmt.Errorf("cosmoflow: input side %d must be a power of two ≥ 8", c.InputSide)
	}
	if c.Slack < 0 {
		return fmt.Errorf("cosmoflow: negative slack %v", c.Slack)
	}
	return nil
}

// convBlock describes one conv/pool stage of the cost model, mirroring
// NewNetwork's architecture.
type convBlock struct {
	cin, cout, out int // out is the conv output extent (pre-pool)
}

// blocks enumerates the conv stages for an input side.
func blocks(side, channels int) []convBlock {
	var out []convBlock
	cin := channels
	cout := 16
	for s := side; s > 4; s /= 2 {
		out = append(out, convBlock{cin: cin, cout: cout, out: s})
		cin = cout
		if cout < 256 {
			cout *= 2
		}
	}
	return out
}

// paramBytes returns the model's parameter footprint (float32).
func paramBytes(side, channels int) int64 {
	var params int64
	bs := blocks(side, channels)
	for _, b := range bs {
		params += int64(b.cin)*int64(b.cout)*27 + int64(b.cout)
	}
	last := bs[len(bs)-1].cout
	flat := int64(last) * 4 * 4 * 4
	params += flat*64 + 64 + 64*4 + 4
	return params * 4
}

// PerfResult reports one performance-mode run.
type PerfResult struct {
	GPUs      int
	BatchSize int
	Epochs    int
	// TrainSteps is the per-worker training step count executed.
	TrainSteps int
	// Runtime is the full training wall (virtual) time.
	Runtime sim.Duration
	// StepTime is the average training-step time (loader-pipelined).
	StepTime sim.Duration
	// ParamBytes is the gradient payload synchronized per step.
	ParamBytes int64
	// GPUUtilization is worker 0's compute busy fraction.
	GPUUtilization float64
	// DelayedCalls counts slack-delayed CUDA calls across workers.
	DelayedCalls int64
	// Trace is worker 0's recording when Record was set.
	Trace *trace.Trace
}

// RunPerf executes one CosmoFlow performance-mode training run.
func RunPerf(cfg PerfConfig) (PerfResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return PerfResult{}, err
	}
	perWorker := cfg.TrainSamples / cfg.GPUs
	steps := perWorker / cfg.BatchSize
	if steps < 1 {
		return PerfResult{}, fmt.Errorf("cosmoflow: %d samples insufficient for %d GPUs × batch %d",
			cfg.TrainSamples, cfg.GPUs, cfg.BatchSize)
	}
	valSteps := cfg.ValSamples / cfg.GPUs / cfg.BatchSize

	env := sim.NewEnv()
	defer env.Close()

	devs := make([]*gpu.Device, cfg.GPUs)
	ctxs := make([]*cuda.Context, cfg.GPUs)
	injs := make([]*slack.Injector, cfg.GPUs)
	var rec *trace.Recorder
	if cfg.Record {
		rec = trace.NewRecorder(fmt.Sprintf("cosmoflow-bs%d-g%d", cfg.BatchSize, cfg.GPUs))
	}
	for i := range devs {
		dev, err := gpu.NewDevice(env, cfg.Spec)
		if err != nil {
			return PerfResult{}, err
		}
		devs[i] = dev
		ctxs[i] = cuda.NewContext(dev, cuda.Config{})
		injs[i] = slack.New(cfg.Slack)
		if rec != nil && i == 0 {
			dev.Listen(rec)
			ctxs[i].Interpose(rec)
		}
		ctxs[i].Interpose(injs[i])
		if cfg.Faults != nil {
			ctxs[i].Interpose(cfg.Faults)
		}
	}

	interconnect := cfg.Interconnect
	if interconnect == (mpi.CostModel{}) {
		interconnect = mpi.IntraNode()
	}
	world := mpi.NewWorld(env, cfg.GPUs, interconnect)
	inputBytes := int64(cfg.BatchSize) * int64(cfg.InputSide*cfg.InputSide*cfg.InputSide) * int64(cfg.Channels) * 4
	pBytes := paramBytes(cfg.InputSide, cfg.Channels)
	bs := blocks(cfg.InputSide, cfg.Channels)

	// Input pipeline: loading one batch occupies min(Cores, LoaderCores)
	// cores; fewer cores serialize the work. Beyond LoaderCores there is
	// nothing left to parallelize — the paper's "needs exactly 2 cores".
	loaderPar := cfg.Cores
	if loaderPar > LoaderCores {
		loaderPar = LoaderCores
	}
	loadTime := sim.Duration(float64(LoadPerSample) * float64(cfg.BatchSize) / float64(loaderPar))

	var workerErr error
	world.SpawnAll(func(r *mpi.Rank) {
		p := r.Proc()
		ctx := ctxs[r.Rank()]
		hvd := horovod.New(r, horovod.Config{})

		dIn, err := ctx.Malloc(p, inputBytes)
		if err != nil {
			workerErr = err
			return
		}
		dParams, err := ctx.Malloc(p, pBytes*3) // weights + grads + momentum
		if err != nil {
			workerErr = err
			return
		}
		dLoss, err := ctx.Malloc(p, 4096)
		if err != nil {
			workerErr = err
			return
		}
		// Initial weight upload: one mid-sized transfer at session start.
		if err := ctx.MemcpyH2D(p, dParams, pBytes); err != nil {
			workerErr = err
			return
		}

		// Pipelined loader: a producer process prepares batches into a
		// bounded queue so loading overlaps the previous step's GPU work.
		const depth = 2
		ready := sim.NewSignal(p.Env())
		space := sim.NewSignal(p.Env())
		queued := 0
		totalBatches := cfg.Epochs * (steps + valSteps)
		// The loader serves exactly this rank, so it shares the rank's shard.
		p.Shard().Spawn(fmt.Sprintf("loader%d", r.Rank()), func(lp *sim.Proc) {
			for b := 0; b < totalBatches; b++ {
				lp.Sleep(loadTime)
				for queued >= depth {
					space.Wait(lp)
				}
				queued++
				ready.Fire()
			}
		})
		nextBatch := func() {
			for queued == 0 {
				ready.Wait(p)
			}
			queued--
			space.Fire()
		}

		forward := func() {
			for _, b := range bs {
				k := gpu.Conv3D(cfg.BatchSize, b.cin, b.cout, 3, b.out)
				k.Efficiency = ConvEfficiency
				ctx.Launch(p, k, nil)
				n := cfg.BatchSize * b.cout * b.out * b.out * b.out
				ctx.Launch(p, gpu.Elementwise("bias_relu", n), nil)
				ctx.Launch(p, gpu.Pool3D(cfg.BatchSize, b.cout, b.out/2), nil)
			}
			last := bs[len(bs)-1].cout
			flat := last * 4 * 4 * 4
			ctx.Launch(p, gpu.Dense(cfg.BatchSize, flat, 64), nil)
			ctx.Launch(p, gpu.Elementwise("relu", cfg.BatchSize*64), nil)
			ctx.Launch(p, gpu.Dense(cfg.BatchSize, 64, 4), nil)
		}
		backward := func() {
			last := bs[len(bs)-1].cout
			flat := last * 4 * 4 * 4
			ctx.Launch(p, gpu.Dense(cfg.BatchSize, 64, 4), nil)
			ctx.Launch(p, gpu.Dense(cfg.BatchSize, flat, 64), nil)
			for i := len(bs) - 1; i >= 0; i-- {
				b := bs[i]
				for _, suffix := range []string{"_dgrad", "_wgrad"} {
					k := gpu.Conv3D(cfg.BatchSize, b.cin, b.cout, 3, b.out)
					k.Name += suffix
					k.Efficiency = ConvEfficiency
					ctx.Launch(p, k, nil)
				}
				n := cfg.BatchSize * b.cout * b.out * b.out * b.out
				ctx.Launch(p, gpu.Elementwise("pool_relu_bwd", n), nil)
			}
			ctx.Launch(p, gpu.Elementwise("sgd_update", int(pBytes/4)), nil)
		}

		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			for s := 0; s < steps; s++ {
				nextBatch()
				p.Sleep(StepOverhead)
				if err := ctx.MemcpyH2D(p, dIn, inputBytes); err != nil {
					workerErr = err
					return
				}
				// Per-step control traffic: learning-rate/step counters in,
				// metrics out — the population of tiny transfers dominating
				// CosmoFlow's Figure 5 distribution.
				if err := ctx.MemcpyH2D(p, dLoss, 4096); err != nil {
					workerErr = err
					return
				}
				forward()
				backward()
				ctx.DeviceSynchronize(p)
				if err := ctx.MemcpyD2H(p, dLoss, 16); err != nil {
					workerErr = err
					return
				}
				if err := ctx.MemcpyD2H(p, dLoss, 1024); err != nil {
					workerErr = err
					return
				}
				if r.Size() > 1 {
					hvd.SyncBytes(pBytes)
				}
			}
			// Validation pass: forward only, smaller host overhead.
			for s := 0; s < valSteps; s++ {
				nextBatch()
				p.Sleep(StepOverhead / 2)
				if err := ctx.MemcpyH2D(p, dIn, inputBytes); err != nil {
					workerErr = err
					return
				}
				forward()
				ctx.DeviceSynchronize(p)
				if err := ctx.MemcpyD2H(p, dLoss, 16); err != nil {
					workerErr = err
					return
				}
			}
		}
		ctx.MustFree(p, dIn)
		ctx.MustFree(p, dParams)
		ctx.MustFree(p, dLoss)
	})

	if rec != nil {
		rec.Start(env)
	}
	start := env.Now()
	env.Run()
	if workerErr != nil {
		return PerfResult{}, workerErr
	}
	runtime := env.Now().Sub(start)
	if rec != nil {
		rec.Stop(env)
	}

	res := PerfResult{
		GPUs:           cfg.GPUs,
		BatchSize:      cfg.BatchSize,
		Epochs:         cfg.Epochs,
		TrainSteps:     cfg.Epochs * steps,
		Runtime:        runtime,
		StepTime:       runtime / sim.Duration(cfg.Epochs*(steps+valSteps)),
		ParamBytes:     pBytes,
		GPUUtilization: devs[0].Utilization(),
		Trace:          nil,
	}
	for _, in := range injs {
		res.DelayedCalls += in.DelayedCalls()
	}
	if rec != nil {
		res.Trace = rec.Trace()
	}
	return res, nil
}
