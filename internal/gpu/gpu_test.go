package gpu

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// fastSpec is a small, round-numbered spec that makes expected durations
// easy to compute by hand.
func fastSpec() Spec {
	return Spec{
		Name:             "test-gpu",
		MemoryBytes:      1 << 30,
		MemoryBandwidth:  1e12,
		PeakFLOPS:        1e12,
		H2DBandwidth:     1e9,
		D2HBandwidth:     1e9,
		CopyLatency:      0,
		LaunchOverhead:   0,
		MinKernelTime:    0,
		WarmupRate:       0,
		WarmupSaturation: 0,
		DMAEngines:       2,
	}
}

func TestSpecValidate(t *testing.T) {
	if err := A100().Validate(); err != nil {
		t.Fatalf("A100 spec invalid: %v", err)
	}
	bad := A100()
	bad.MemoryBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero memory accepted")
	}
	bad = A100()
	bad.DMAEngines = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero DMA engines accepted")
	}
	bad = A100()
	bad.WarmupRate = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative warmup accepted")
	}
}

func TestNewDeviceRejectsBadSpec(t *testing.T) {
	if _, err := NewDevice(sim.NewEnv(), Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestAllocator(t *testing.T) {
	env := sim.NewEnv()
	d, err := NewDevice(env, fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	p1, err := d.Malloc(1 << 29)
	if err != nil {
		t.Fatal(err)
	}
	if d.MemUsed() != 1<<29 {
		t.Errorf("MemUsed = %d", d.MemUsed())
	}
	if n, err := d.AllocSize(p1); err != nil || n != 1<<29 {
		t.Errorf("AllocSize = %d, %v", n, err)
	}
	if _, err := d.Malloc(1 << 30); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("overcommit error = %v, want ErrOutOfMemory", err)
	}
	p2, err := d.Malloc(1 << 29)
	if err != nil {
		t.Fatalf("exact-fit alloc failed: %v", err)
	}
	if err := d.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(p1); !errors.Is(err, ErrBadPointer) {
		t.Errorf("double free error = %v, want ErrBadPointer", err)
	}
	if err := d.Free(p2); err != nil {
		t.Fatal(err)
	}
	if d.MemUsed() != 0 {
		t.Errorf("MemUsed after frees = %d", d.MemUsed())
	}
	if _, err := d.Malloc(0); err == nil {
		t.Error("zero-byte Malloc accepted")
	}
	if _, err := d.AllocSize(Ptr(999)); !errors.Is(err, ErrBadPointer) {
		t.Errorf("AllocSize of bogus ptr = %v", err)
	}
}

func TestKernelBaseDurationComputeBound(t *testing.T) {
	spec := fastSpec()
	k := Kernel{Name: "k", FLOPs: 1e9, Efficiency: 0.5} // 1e9/(1e12*0.5) = 2ms
	if got := k.baseDuration(spec); math.Abs(float64(got-2*sim.Millisecond)) > 1e-12 {
		t.Errorf("duration = %v, want 2ms", got)
	}
}

func TestKernelBaseDurationMemoryBound(t *testing.T) {
	spec := fastSpec()
	k := Kernel{Name: "k", FLOPs: 1, Efficiency: 1, MemBytes: 1e9} // 1ms at 1TB/s
	if got := k.baseDuration(spec); math.Abs(float64(got-1*sim.Millisecond)) > 1e-12 {
		t.Errorf("duration = %v, want 1ms", got)
	}
}

func TestKernelMinTimeFloor(t *testing.T) {
	spec := fastSpec()
	spec.MinKernelTime = 3 * sim.Microsecond
	k := Kernel{Name: "tiny", FLOPs: 1, Efficiency: 1}
	if got := k.baseDuration(spec); got != 3*sim.Microsecond {
		t.Errorf("duration = %v, want floor 3µs", got)
	}
}

func TestKernelFixedTime(t *testing.T) {
	k := Fixed("replay", 7*sim.Millisecond)
	if got := k.baseDuration(A100()); got != 7*sim.Millisecond {
		t.Errorf("duration = %v, want 7ms", got)
	}
	if k.String() == "" {
		t.Error("empty String")
	}
}

func TestKernelInvalidEfficiencyTreatedAsFull(t *testing.T) {
	spec := fastSpec()
	k := Kernel{Name: "k", FLOPs: 1e9, Efficiency: 0} // treated as 1.0
	if got := k.baseDuration(spec); math.Abs(float64(got-1*sim.Millisecond)) > 1e-12 {
		t.Errorf("duration = %v, want 1ms", got)
	}
}

func TestMatMulScaling(t *testing.T) {
	// Durations must grow strictly with n and super-linearly (n^3 work).
	spec := A100()
	var prev sim.Duration
	for _, n := range []int{512, 2048, 8192, 32768} {
		d := MatMul(n).baseDuration(spec)
		if d <= prev {
			t.Fatalf("MatMul(%d) = %v not increasing (prev %v)", n, d, prev)
		}
		prev = d
	}
	// Regime check driving Table II's N clamps: the 512 multiply is
	// sub-millisecond (N pegs at the 1000 ceiling: 30s/kernel > 1000) and
	// the 32768 multiply takes seconds (N pegs at the 5 floor).
	if d := MatMul(512).baseDuration(spec); d > 1*sim.Millisecond {
		t.Errorf("MatMul(512) = %v, want < 1ms", d)
	}
	if d := MatMul(32768).baseDuration(spec); d < 2*sim.Second {
		t.Errorf("MatMul(32768) = %v, want multiple seconds", d)
	}
}

func TestMatrixBytes(t *testing.T) {
	// 2^15 squared floats = 4 GiB — the paper's "3 matrices don't fit with
	// 4 threads" arithmetic depends on this.
	if got := MatrixBytes(32768); got != 4*(1<<30) {
		t.Errorf("MatrixBytes(32768) = %d, want 4GiB", got)
	}
	if got := MatrixBytes(512); got != 1<<20 {
		t.Errorf("MatrixBytes(512) = %d, want 1MiB", got)
	}
}

func TestKernelConstructorsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"MatMul":  func() { MatMul(0) },
		"LJForce": func() { LJForce(0, 1) },
		"Conv3D":  func() { Conv3D(0, 1, 1, 1, 1) },
		"Dense":   func() { Dense(0, 1, 1) },
		"Fixed":   func() { Fixed("x", 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with invalid args did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWorkloadKernelsHaveDistinctNames(t *testing.T) {
	names := map[string]bool{}
	for _, k := range []Kernel{
		MatMul(512), LJForce(1000, 30), NeighborBuild(1000, 30),
		Conv3D(1, 4, 16, 3, 64), Dense(1, 128, 64), Pool3D(1, 16, 32),
		Elementwise("relu", 100),
	} {
		if k.Name == "" {
			t.Errorf("kernel with empty name: %v", k)
		}
		names[k.Name] = true
	}
	if len(names) < 7 {
		t.Errorf("expected 7 distinct kernel names, got %d", len(names))
	}
}

func TestStreamExecutesInOrder(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	d, _ := NewDevice(env, fastSpec())
	var events []KernelEvent
	d.Listen(listenerFunc{onKernel: func(ev KernelEvent) { events = append(events, ev) }})
	s := d.NewStream()
	env.Spawn("host", func(p *sim.Proc) {
		s.EnqueueKernel(Fixed("k1", 1*sim.Millisecond))
		s.EnqueueKernel(Fixed("k2", 2*sim.Millisecond))
		s.Sync(p)
	})
	env.Run()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].Name != "k1" || events[1].Name != "k2" {
		t.Errorf("order: %s, %s", events[0].Name, events[1].Name)
	}
	if events[1].Start != events[0].End {
		t.Errorf("k2 start %v != k1 end %v (in-order back-to-back)", events[1].Start, events[0].End)
	}
}

func TestCopyDuration(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	spec := fastSpec() // 1 GB/s copy bandwidth
	d, _ := NewDevice(env, spec)
	var ev CopyEvent
	d.Listen(listenerFunc{onCopy: func(e CopyEvent) { ev = e }})
	s := d.NewStream()
	env.Spawn("host", func(p *sim.Proc) {
		s.EnqueueCopy(H2D, 1_000_000) // 1 MB at 1 GB/s = 1 ms
		s.Sync(p)
	})
	env.Run()
	if got := ev.Duration(); math.Abs(float64(got-1*sim.Millisecond)) > 1e-12 {
		t.Errorf("copy duration = %v, want 1ms", got)
	}
	c := d.Counters()
	if c.CopiesH2D != 1 || c.BytesH2D != 1_000_000 {
		t.Errorf("counters = %+v", c)
	}
}

func TestCopyDirectionsCounted(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	d, _ := NewDevice(env, fastSpec())
	s := d.NewStream()
	env.Spawn("host", func(p *sim.Proc) {
		s.EnqueueCopy(H2D, 100)
		s.EnqueueCopy(D2H, 200)
		s.EnqueueCopy(D2D, 300)
		s.Sync(p)
	})
	env.Run()
	c := d.Counters()
	if c.CopiesH2D != 1 || c.CopiesD2H != 1 || c.CopiesD2D != 1 {
		t.Errorf("copy counts = %+v", c)
	}
	if c.BytesH2D != 100 || c.BytesD2H != 200 || c.BytesD2D != 300 {
		t.Errorf("copy bytes = %+v", c)
	}
}

func TestKernelsFromTwoStreamsSerializeOnCompute(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	d, _ := NewDevice(env, fastSpec())
	s1, s2 := d.NewStream(), d.NewStream()
	env.Spawn("host", func(p *sim.Proc) {
		s1.EnqueueKernel(Fixed("a", 1*sim.Millisecond))
		s2.EnqueueKernel(Fixed("b", 1*sim.Millisecond))
		d.Sync(p)
	})
	end := env.Run()
	if math.Abs(float64(end)-2e-3) > 1e-12 {
		t.Errorf("two 1ms kernels finished at %v, want 2ms (serialized)", end)
	}
}

func TestCopiesOverlapOnSeparateEngines(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	d, _ := NewDevice(env, fastSpec()) // 2 DMA engines
	s1, s2 := d.NewStream(), d.NewStream()
	env.Spawn("host", func(p *sim.Proc) {
		s1.EnqueueCopy(H2D, 1_000_000)
		s2.EnqueueCopy(D2H, 1_000_000)
		d.Sync(p)
	})
	end := env.Run()
	if math.Abs(float64(end)-1e-3) > 1e-12 {
		t.Errorf("overlapped copies finished at %v, want 1ms", end)
	}
}

func TestCopyOverlapsKernel(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	d, _ := NewDevice(env, fastSpec())
	s1, s2 := d.NewStream(), d.NewStream()
	env.Spawn("host", func(p *sim.Proc) {
		s1.EnqueueKernel(Fixed("k", 1*sim.Millisecond))
		s2.EnqueueCopy(H2D, 1_000_000)
		d.Sync(p)
	})
	end := env.Run()
	if math.Abs(float64(end)-1e-3) > 1e-12 {
		t.Errorf("kernel+copy finished at %v, want 1ms (overlap)", end)
	}
}

func TestWarmupChargedAfterIdleGap(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	spec := fastSpec()
	spec.WarmupRate = 0.5
	spec.WarmupSaturation = 1 * sim.Second
	d, _ := NewDevice(env, spec)
	var events []KernelEvent
	d.Listen(listenerFunc{onKernel: func(ev KernelEvent) { events = append(events, ev) }})
	s := d.NewStream()
	env.Spawn("host", func(p *sim.Proc) {
		s.EnqueueKernel(Fixed("k1", 1*sim.Millisecond))
		s.Sync(p)
		p.Sleep(10 * sim.Millisecond) // starve the device
		s.EnqueueKernel(Fixed("k2", 1*sim.Millisecond))
		s.Sync(p)
	})
	env.Run()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Warmup != 0 {
		t.Errorf("first kernel warmup = %v, want 0 (cold device starts clean)", events[0].Warmup)
	}
	want := 5 * sim.Millisecond // 0.5 × 10ms gap
	if math.Abs(float64(events[1].Warmup-want)) > 1e-12 {
		t.Errorf("warmup = %v, want %v", events[1].Warmup, want)
	}
	if math.Abs(float64(events[1].IdleGap-10*sim.Millisecond)) > 1e-12 {
		t.Errorf("idle gap = %v, want 10ms", events[1].IdleGap)
	}
	if got := events[1].Duration(); math.Abs(float64(got-6*sim.Millisecond)) > 1e-12 {
		t.Errorf("stretched duration = %v, want 6ms", got)
	}
	c := d.Counters()
	if c.IdleEvents != 1 || math.Abs(float64(c.WarmupTotal-want)) > 1e-12 {
		t.Errorf("counters = %+v", c)
	}
}

func TestWarmupSaturates(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	spec := fastSpec()
	spec.WarmupRate = 0.5
	spec.WarmupSaturation = 5 * sim.Millisecond
	d, _ := NewDevice(env, spec)
	var last KernelEvent
	d.Listen(listenerFunc{onKernel: func(ev KernelEvent) { last = ev }})
	s := d.NewStream()
	env.Spawn("host", func(p *sim.Proc) {
		s.EnqueueKernel(Fixed("k1", 1*sim.Millisecond))
		s.Sync(p)
		p.Sleep(1 * sim.Second) // far beyond saturation
		s.EnqueueKernel(Fixed("k2", 1*sim.Millisecond))
		s.Sync(p)
	})
	env.Run()
	want := sim.Duration(0.5) * 5 * sim.Millisecond
	if math.Abs(float64(last.Warmup-want)) > 1e-12 {
		t.Errorf("saturated warmup = %v, want %v", last.Warmup, want)
	}
}

func TestBackToBackKernelsPayNoWarmup(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	spec := fastSpec()
	spec.WarmupRate = 0.5
	spec.WarmupSaturation = 1 * sim.Second
	d, _ := NewDevice(env, spec)
	var total sim.Duration
	d.Listen(listenerFunc{onKernel: func(ev KernelEvent) { total += ev.Warmup }})
	s := d.NewStream()
	env.Spawn("host", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			s.EnqueueKernel(Fixed("k", 1*sim.Millisecond))
		}
		s.Sync(p)
	})
	env.Run()
	if total != 0 {
		t.Errorf("queued kernels paid %v of warmup, want 0", total)
	}
}

func TestSecondStreamFillsIdleGap(t *testing.T) {
	// A second submitter's kernels keep the device warm: the paper's
	// "number of kernels given to the GPU in parallel is proportional to
	// slack tolerance" mechanism.
	run := func(parallel bool) sim.Duration {
		env := sim.NewEnv()
		defer env.Close()
		spec := fastSpec()
		spec.WarmupRate = 0.5
		spec.WarmupSaturation = 1 * sim.Second
		d, _ := NewDevice(env, spec)
		var total sim.Duration
		d.Listen(listenerFunc{onKernel: func(ev KernelEvent) { total += ev.Warmup }})
		s1 := d.NewStream()
		env.Spawn("host1", func(p *sim.Proc) {
			for i := 0; i < 5; i++ {
				op := s1.EnqueueKernel(Fixed("k", 1*sim.Millisecond))
				op.Wait(p)
				p.Sleep(4 * sim.Millisecond) // slack-like host delay
			}
		})
		if parallel {
			s2 := d.NewStream()
			env.SpawnAt(2*sim.Millisecond, "host2", func(p *sim.Proc) {
				for i := 0; i < 5; i++ {
					op := s2.EnqueueKernel(Fixed("k", 1*sim.Millisecond))
					op.Wait(p)
					p.Sleep(4 * sim.Millisecond)
				}
			})
		}
		env.Run()
		return total
	}
	solo := run(false)
	dual := run(true)
	if solo <= 0 {
		t.Fatalf("solo warmup = %v, want positive", solo)
	}
	if dual >= solo {
		t.Errorf("parallel submitters warmup %v >= solo %v; gaps should shrink", dual, solo)
	}
}

func TestOpWaitAndDone(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	d, _ := NewDevice(env, fastSpec())
	s := d.NewStream()
	var doneAt sim.Time
	env.Spawn("host", func(p *sim.Proc) {
		op := s.EnqueueKernel(Fixed("k", 2*sim.Millisecond))
		if op.Done() {
			t.Error("op done immediately after enqueue")
		}
		op.Wait(p)
		if !op.Done() {
			t.Error("op not done after Wait")
		}
		doneAt = p.Now()
		op.Wait(p) // waiting on a done op must not block
	})
	env.Run()
	if math.Abs(float64(doneAt)-2e-3) > 1e-12 {
		t.Errorf("op completed at %v, want 2ms", doneAt)
	}
}

func TestDeviceSyncWaitsAllStreams(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	d, _ := NewDevice(env, fastSpec())
	s1, s2 := d.NewStream(), d.NewStream()
	var syncAt sim.Time
	env.Spawn("host", func(p *sim.Proc) {
		s1.EnqueueKernel(Fixed("a", 1*sim.Millisecond))
		s2.EnqueueCopy(H2D, 3_000_000) // 3ms
		d.Sync(p)
		syncAt = p.Now()
	})
	env.Run()
	if math.Abs(float64(syncAt)-3e-3) > 1e-12 {
		t.Errorf("device sync at %v, want 3ms", syncAt)
	}
}

func TestStreamDestroy(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	d, _ := NewDevice(env, fastSpec())
	s := d.NewStream()
	env.Spawn("host", func(p *sim.Proc) {
		s.EnqueueKernel(Fixed("k", 1*sim.Millisecond))
		s.Sync(p)
		s.Destroy()
	})
	env.Run()
	if got := env.Blocked(); len(got) != 0 {
		t.Errorf("destroyed stream left blocked procs: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("enqueue on destroyed stream did not panic")
		}
	}()
	s.EnqueueKernel(Fixed("k", 1*sim.Millisecond))
}

func TestUtilization(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	d, _ := NewDevice(env, fastSpec())
	if d.Utilization() != 0 {
		t.Error("utilization nonzero before any work")
	}
	s := d.NewStream()
	env.Spawn("host", func(p *sim.Proc) {
		s.EnqueueKernel(Fixed("k", 1*sim.Millisecond))
		s.Sync(p)
		p.Sleep(1 * sim.Millisecond)
	})
	env.Run()
	if u := d.Utilization(); math.Abs(u-0.5) > 1e-9 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
}

func TestDirectionString(t *testing.T) {
	if H2D.String() != "HtoD" || D2H.String() != "DtoH" || D2D.String() != "DtoD" {
		t.Error("direction names wrong")
	}
	if Direction(9).String() == "" {
		t.Error("unknown direction empty")
	}
}

// Property: total compute-busy time equals the sum of kernel durations
// regardless of stream layout.
func TestPropertyComputeBusyConservation(t *testing.T) {
	f := func(durs []uint8, streams uint8) bool {
		if len(durs) == 0 {
			return true
		}
		if len(durs) > 30 {
			durs = durs[:30]
		}
		ns := int(streams%4) + 1
		env := sim.NewEnv()
		defer env.Close()
		d, _ := NewDevice(env, fastSpec())
		var want sim.Duration
		ss := make([]*Stream, ns)
		for i := range ss {
			ss[i] = d.NewStream()
		}
		env.Spawn("host", func(p *sim.Proc) {
			for i, u := range durs {
				dur := sim.Duration(int(u)+1) * sim.Microsecond
				want += dur
				ss[i%ns].EnqueueKernel(Fixed("k", dur))
			}
			d.Sync(p)
		})
		env.Run()
		got := d.Counters().ComputeBusy
		return math.Abs(float64(got-want)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// listenerFunc adapts closures to the Listener interface.
type listenerFunc struct {
	onKernel func(KernelEvent)
	onCopy   func(CopyEvent)
}

func (l listenerFunc) OnKernel(ev KernelEvent) {
	if l.onKernel != nil {
		l.onKernel(ev)
	}
}
func (l listenerFunc) OnCopy(ev CopyEvent) {
	if l.onCopy != nil {
		l.onCopy(ev)
	}
}

func TestContextSwitchChargedBetweenStreams(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	spec := fastSpec()
	spec.ContextSwitch = 500 * sim.Microsecond
	d, _ := NewDevice(env, spec)
	var events []KernelEvent
	d.Listen(listenerFunc{onKernel: func(ev KernelEvent) { events = append(events, ev) }})
	s1, s2 := d.NewStream(), d.NewStream()
	env.Spawn("host", func(p *sim.Proc) {
		s1.EnqueueKernel(Fixed("a", 1*sim.Millisecond))
		s1.EnqueueKernel(Fixed("a2", 1*sim.Millisecond))
		s2.EnqueueKernel(Fixed("b", 1*sim.Millisecond))
		d.Sync(p)
	})
	env.Run()
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	// Same-stream back-to-back: no switch. Cross-stream: one switch.
	var switches int
	var total sim.Duration
	for _, ev := range events {
		if ev.CtxSwitch > 0 {
			switches++
			total += ev.CtxSwitch
		}
		// Reported duration stays the pure kernel time.
		if math.Abs(float64(ev.Duration()-1*sim.Millisecond)) > 1e-12 {
			t.Errorf("kernel %s duration %v includes switch cost", ev.Name, ev.Duration())
		}
	}
	if switches != 1 || total != 500*sim.Microsecond {
		t.Errorf("switches=%d total=%v, want 1 and 500µs", switches, total)
	}
	c := d.Counters()
	if c.CtxSwitches != 1 || c.CtxTotal != 500*sim.Microsecond {
		t.Errorf("counters = %+v", c)
	}
}

func TestNoContextSwitchWhenDisabled(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	d, _ := NewDevice(env, fastSpec()) // ContextSwitch zero
	s1, s2 := d.NewStream(), d.NewStream()
	env.Spawn("host", func(p *sim.Proc) {
		s1.EnqueueKernel(Fixed("a", 1*sim.Millisecond))
		s2.EnqueueKernel(Fixed("b", 1*sim.Millisecond))
		d.Sync(p)
	})
	end := env.Run()
	if math.Abs(float64(end)-2e-3) > 1e-12 {
		t.Errorf("end = %v, want 2ms without switch cost", end)
	}
	if d.Counters().CtxSwitches != 0 {
		t.Errorf("CtxSwitches = %d", d.Counters().CtxSwitches)
	}
}

// Property: the allocator conserves memory across arbitrary malloc/free
// sequences and never overcommits.
func TestPropertyAllocatorConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := sim.NewEnv()
		d, err := NewDevice(env, fastSpec()) // 1 GiB
		if err != nil {
			return false
		}
		type alloc struct {
			ptr  Ptr
			size int64
		}
		var live []alloc
		var used int64
		for i := 0; i < 100; i++ {
			if rng.Intn(2) == 0 {
				size := int64(rng.Intn(1<<28) + 1)
				ptr, err := d.Malloc(size)
				if err == nil {
					live = append(live, alloc{ptr, size})
					used += size
				} else if used+size <= d.MemCapacity() {
					return false // spurious OOM
				}
			} else if len(live) > 0 {
				i := rng.Intn(len(live))
				if err := d.Free(live[i].ptr); err != nil {
					return false
				}
				used -= live[i].size
				live = append(live[:i], live[i+1:]...)
			}
			if d.MemUsed() != used || used > d.MemCapacity() {
				return false
			}
		}
		for _, a := range live {
			if err := d.Free(a.ptr); err != nil {
				return false
			}
		}
		return d.MemUsed() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
