package stats

import (
	"fmt"
	"math"
	"strings"
)

// Violin is the textual equivalent of the violin plots in Figures 4 and 5:
// a five-number summary plus a kernel-density profile sampled on a grid.
type Violin struct {
	Summary Summary
	// Grid holds the positions at which the density was evaluated and
	// Density the corresponding KDE values (unnormalized shape).
	Grid    []float64
	Density []float64
	// LogScale records whether the density was estimated in log10 space,
	// which is how long-tailed duration and size distributions are shown.
	LogScale bool
}

// KDEBandwidth returns Silverman's rule-of-thumb bandwidth for xs.
func KDEBandwidth(xs []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 1
	}
	sd := Stddev(xs)
	iqr := Percentile(xs, 75) - Percentile(xs, 25)
	a := sd
	if iqr > 0 && iqr/1.34 < a {
		a = iqr / 1.34
	}
	if a == 0 {
		a = sd
	}
	if a == 0 {
		return 1
	}
	return 0.9 * a * math.Pow(n, -0.2)
}

// KDE evaluates a Gaussian kernel density estimate of xs at each grid
// point using bandwidth h (h <= 0 selects Silverman's rule).
func KDE(xs, grid []float64, h float64) []float64 {
	if h <= 0 {
		h = KDEBandwidth(xs)
	}
	out := make([]float64, len(grid))
	if len(xs) == 0 {
		return out
	}
	norm := 1 / (float64(len(xs)) * h * math.Sqrt(2*math.Pi))
	for i, g := range grid {
		s := 0.0
		for _, x := range xs {
			u := (g - x) / h
			s += math.Exp(-0.5 * u * u)
		}
		out[i] = s * norm
	}
	return out
}

// NewViolin builds a violin summary of xs with points density samples.
// When logScale is true (recommended for durations and byte sizes spanning
// orders of magnitude) the KDE runs on log10(xs), ignoring non-positive
// samples for the density while keeping them in the summary.
func NewViolin(xs []float64, points int, logScale bool) Violin {
	v := Violin{Summary: Summarize(xs), LogScale: logScale}
	if len(xs) == 0 || points < 2 {
		return v
	}
	data := xs
	if logScale {
		data = make([]float64, 0, len(xs))
		for _, x := range xs {
			if x > 0 {
				data = append(data, math.Log10(x))
			}
		}
		if len(data) == 0 {
			return v
		}
	}
	lo, hi := Min(data), Max(data)
	if lo == hi {
		// Degenerate distribution: a single spike.
		v.Grid = []float64{lo}
		v.Density = []float64{1}
		return v
	}
	pad := (hi - lo) * 0.05
	grid := LinearEdges(lo-pad, hi+pad, points-1)
	v.Grid = grid
	v.Density = KDE(data, grid, 0)
	return v
}

// Render draws the violin sideways as ASCII art, one row per grid point,
// labelled in original units. Width is the maximum bar width in columns.
func (v Violin) Render(width int) string {
	if len(v.Grid) == 0 {
		return "(empty)\n"
	}
	maxD := Max(v.Density)
	var b strings.Builder
	for i, g := range v.Grid {
		val := g
		if v.LogScale {
			val = math.Pow(10, g)
		}
		w := 0
		if maxD > 0 {
			w = int(v.Density[i] / maxD * float64(width))
		}
		fmt.Fprintf(&b, "%12.4g |%s\n", val, strings.Repeat("*", w))
	}
	return b.String()
}
