// Package remoting implements a GPU API-remoting layer in the style of
// rCUDA (Duato et al., cited by the paper as related work): every CUDA
// call is forwarded from the host to a remote GPU server across the
// network fabric as a request/response exchange.
//
// The paper rejects remoting as an instrument for slack studies because it
// "doesn't allow for a granular level of control over the network delays
// experienced": the delay per call depends on hop counts, payload
// serialization, and uncontrollable network noise. This package exists to
// demonstrate exactly that — a Remote context genuinely routes every call
// through a fabric path (with optional noise), so experiments can compare
// its *measured* behaviour against the slack injector's *controlled*
// behaviour and quantify the variance the paper worried about.
package remoting

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/cuda"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/slack"
)

// Config shapes the remoting transport.
type Config struct {
	// Path is the network between host and GPU server.
	Path fabric.Path
	// NoiseFraction adds uniform ±fraction jitter to every network
	// traversal (background traffic, OS noise). Zero disables it.
	NoiseFraction float64
	// Seed makes the noise deterministic.
	Seed int64
	// ServerOverhead is the per-call processing cost on the GPU server
	// (request decode, API dispatch).
	ServerOverhead sim.Duration
}

// Remote is a CUDA-like context whose every call crosses the network. It
// deliberately mirrors the cuda.Context API surface used by the proxy so
// workloads can run unmodified against either.
type Remote struct {
	ctx *cuda.Context
	cfg Config
	rng *rand.Rand

	calls        int64
	networkTime  sim.Duration
	requestBytes int64
}

// New wraps a device with a remoting transport.
func New(dev *gpu.Device, cfg Config) *Remote {
	if cfg.NoiseFraction < 0 || cfg.NoiseFraction >= 1 {
		panic("remoting: noise fraction must be in [0, 1)")
	}
	if cfg.ServerOverhead == 0 {
		cfg.ServerOverhead = 2 * sim.Microsecond
	}
	return &Remote{
		// The server-side context dispatches locally at the chassis; its
		// own driver overhead still applies. The noise stream is a salted
		// substream of the seed, so other seed consumers (the injected arm
		// of Compare, the fault schedule) can never perturb it.
		ctx: cuda.NewContext(dev, cuda.Config{}),
		cfg: cfg,
		rng: faults.Substream(cfg.Seed, saltNoise),
	}
}

// Context returns the server-side CUDA context (for attaching tracers).
func (r *Remote) Context() *cuda.Context { return r.ctx }

// Calls returns the number of remoted API calls.
func (r *Remote) Calls() int64 { return r.calls }

// NetworkTime returns the cumulative time spent traversing the fabric.
func (r *Remote) NetworkTime() sim.Duration { return r.networkTime }

// MeanCallDelay returns the average network delay added per call — the
// quantity the slack injector controls exactly and remoting only
// approximates.
func (r *Remote) MeanCallDelay() sim.Duration {
	if r.calls == 0 {
		return 0
	}
	return r.networkTime / sim.Duration(r.calls)
}

// traverse charges one network crossing carrying n payload bytes.
func (r *Remote) traverse(p *sim.Proc, n int64) {
	d := r.cfg.Path.TransferTime(n)
	if r.cfg.NoiseFraction > 0 {
		u := 1 + r.cfg.NoiseFraction*(2*r.rng.Float64()-1)
		d = sim.Duration(float64(d) * u)
	}
	p.Sleep(d)
	r.networkTime += d
	r.requestBytes += n
}

// roundTrip wraps an API call body with request and response crossings.
// Requests carry the payload (H2D data rides the request; D2H data rides
// the response).
func (r *Remote) roundTrip(p *sim.Proc, reqBytes, respBytes int64, body func()) {
	r.traverse(p, reqBytes)
	if r.cfg.ServerOverhead > 0 {
		p.Sleep(r.cfg.ServerOverhead)
	}
	body()
	r.traverse(p, respBytes)
	r.calls++
}

// Malloc forwards cudaMalloc.
func (r *Remote) Malloc(p *sim.Proc, n int64) (gpu.Ptr, error) {
	var ptr gpu.Ptr
	var err error
	r.roundTrip(p, 64, 64, func() { ptr, err = r.ctx.Malloc(p, n) })
	return ptr, err
}

// Free forwards cudaFree.
func (r *Remote) Free(p *sim.Proc, ptr gpu.Ptr) error {
	var err error
	r.roundTrip(p, 64, 64, func() { err = r.ctx.Free(p, ptr) })
	return err
}

// MemcpyH2D forwards a synchronous host-to-device copy; the payload
// crosses the network in the request.
func (r *Remote) MemcpyH2D(p *sim.Proc, dst gpu.Ptr, n int64) error {
	var err error
	r.roundTrip(p, 64+n, 64, func() { err = r.ctx.MemcpyH2D(p, dst, n) })
	return err
}

// MemcpyD2H forwards a synchronous device-to-host copy; the payload
// crosses in the response.
func (r *Remote) MemcpyD2H(p *sim.Proc, src gpu.Ptr, n int64) error {
	var err error
	r.roundTrip(p, 64, 64+n, func() { err = r.ctx.MemcpyD2H(p, src, n) })
	return err
}

// LaunchSync forwards a blocking kernel launch.
func (r *Remote) LaunchSync(p *sim.Proc, k gpu.Kernel) {
	r.roundTrip(p, 256, 64, func() { r.ctx.LaunchSync(p, k, nil) })
}

// DeviceSynchronize forwards cudaDeviceSynchronize.
func (r *Remote) DeviceSynchronize(p *sim.Proc) {
	r.roundTrip(p, 64, 64, func() { r.ctx.DeviceSynchronize(p) })
}

// RunProxyIteration executes one proxy-style compute iteration (copy A,
// copy B, kernel, sync, copy C) against the remote GPU and returns the
// host-observed duration — the building block of the comparison
// experiment.
func (r *Remote) RunProxyIteration(p *sim.Proc, a, bm, c gpu.Ptr, matBytes int64, k gpu.Kernel) (sim.Duration, error) {
	start := p.Now()
	if err := r.MemcpyH2D(p, a, matBytes); err != nil {
		return 0, err
	}
	if err := r.MemcpyH2D(p, bm, matBytes); err != nil {
		return 0, err
	}
	r.LaunchSync(p, k)
	r.DeviceSynchronize(p)
	if err := r.MemcpyD2H(p, c, matBytes); err != nil {
		return 0, err
	}
	return p.Now().Sub(start), nil
}

// CompareResult contrasts remoting against controlled injection for the
// same nominal slack.
type CompareResult struct {
	MatrixSize int
	Iterations int
	// NominalSlack is the path's zero-payload one-way latency — what the
	// injector would add per call.
	NominalSlack sim.Duration
	// RemotedMean and RemotedStddev describe the per-iteration durations
	// measured through the remoting layer.
	RemotedMean   sim.Duration
	RemotedStddev sim.Duration
	// InjectedMean and InjectedStddev describe the same loop run under
	// controlled slack injection of NominalSlack per call (with the same
	// jitter fraction), the paper's preferred instrument.
	InjectedMean   sim.Duration
	InjectedStddev sim.Duration
	// MeanCallDelay is the network time remoting actually added per call.
	MeanCallDelay sim.Duration
}

// Compare runs n proxy iterations over a remote GPU and over a local GPU
// with controlled slack injection of the same nominal delay, and reports
// how far the remoted per-call delay drifts from the nominal slack — the
// paper's argument for controlled injection, quantified. Each arm draws
// its jitter from its own seed-derived substream, so adding calls to one
// arm cannot perturb the other's sequence.
func Compare(matrixSize, n int, cfg Config) (CompareResult, error) {
	if matrixSize <= 0 || n <= 0 {
		return CompareResult{}, fmt.Errorf("remoting: invalid comparison shape %d×%d", matrixSize, n)
	}
	matBytes := gpu.MatrixBytes(matrixSize)
	kernel := gpu.MatMul(matrixSize)

	// Arm 1: genuine remoting across the fabric.
	env := sim.NewEnv()
	defer env.Close()
	dev, err := gpu.NewDevice(env, gpu.A100())
	if err != nil {
		return CompareResult{}, err
	}
	r := New(dev, cfg)
	remoted, err := proxyLoop(env, n, matBytes, r.Malloc, func(p *sim.Proc, a, bm, c gpu.Ptr) (sim.Duration, error) {
		return r.RunProxyIteration(p, a, bm, c, matBytes, kernel)
	})
	if err != nil {
		return CompareResult{}, err
	}

	// Arm 2: node-local execution with the injector adding the path's
	// one-way latency (and the same jitter fraction) per call.
	ienv := sim.NewEnv()
	defer ienv.Close()
	idev, err := gpu.NewDevice(ienv, gpu.A100())
	if err != nil {
		return CompareResult{}, err
	}
	ictx := cuda.NewContext(idev, cuda.Config{})
	var opts []slack.Option
	if cfg.NoiseFraction > 0 {
		opts = append(opts, slack.WithJitter(cfg.NoiseFraction, faults.SubSeed(cfg.Seed, saltInjectedArm)))
	}
	ictx.Interpose(slack.FromPath(cfg.Path, opts...))
	injected, err := proxyLoop(ienv, n, matBytes,
		func(p *sim.Proc, sz int64) (gpu.Ptr, error) { return ictx.Malloc(p, sz) },
		func(p *sim.Proc, a, bm, c gpu.Ptr) (sim.Duration, error) {
			start := p.Now()
			if err := ictx.MemcpyH2D(p, a, matBytes); err != nil {
				return 0, err
			}
			if err := ictx.MemcpyH2D(p, bm, matBytes); err != nil {
				return 0, err
			}
			ictx.LaunchSync(p, kernel, nil)
			ictx.DeviceSynchronize(p)
			if err := ictx.MemcpyD2H(p, c, matBytes); err != nil {
				return 0, err
			}
			return p.Now().Sub(start), nil
		})
	if err != nil {
		return CompareResult{}, err
	}

	rMean, rSD := meanStddev(remoted)
	iMean, iSD := meanStddev(injected)
	return CompareResult{
		MatrixSize:     matrixSize,
		Iterations:     n,
		NominalSlack:   cfg.Path.Latency(),
		RemotedMean:    sim.Duration(rMean),
		RemotedStddev:  sim.Duration(rSD),
		InjectedMean:   sim.Duration(iMean),
		InjectedStddev: sim.Duration(iSD),
		MeanCallDelay:  r.MeanCallDelay(),
	}, nil
}

// proxyLoop allocates three matrices via malloc and times n iterations of
// iter inside env, returning the per-iteration durations.
func proxyLoop(env *sim.Env, n int, matBytes int64,
	malloc func(*sim.Proc, int64) (gpu.Ptr, error),
	iter func(p *sim.Proc, a, bm, c gpu.Ptr) (sim.Duration, error)) ([]float64, error) {
	var durs []float64
	var runErr error
	env.Spawn("host", func(p *sim.Proc) {
		var bufs [3]gpu.Ptr
		for i := range bufs {
			ptr, err := malloc(p, matBytes)
			if err != nil {
				runErr = err
				return
			}
			bufs[i] = ptr
		}
		for i := 0; i < n; i++ {
			d, err := iter(p, bufs[0], bufs[1], bufs[2])
			if err != nil {
				runErr = err
				return
			}
			durs = append(durs, float64(d))
		}
	})
	env.Run()
	if runErr != nil {
		return nil, runErr
	}
	return durs, nil
}

func meanStddev(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var s2 float64
	for _, x := range xs {
		d := x - mean
		s2 += d * d
	}
	return mean, math.Sqrt(s2 / float64(len(xs)-1))
}
