// Package health is the pool control plane for GPU-server churn: a
// phi-accrual failure detector fed by simulated heartbeats, a server
// state registry, and a controller that drains suspected servers onto
// healthy peers over the remoting DMA-replay path and readmits them when
// their heartbeats resume. Everything runs inside the deterministic
// simulation — heartbeats are sim processes, suspicion thresholds are
// evaluated at sim time, and all randomness (beat jitter, beat loss)
// comes from seeded substreams — so a churn run is byte-identical across
// repetitions and worker counts, and a zero-fault run with the control
// plane enabled reproduces the control-plane-off run exactly: no fault
// windows means no missed beats, no suspicion, and no control action.
package health

import (
	"math"

	"repro/internal/sim"
)

// Detector is a phi-accrual failure detector for one server
// (Hayashibara et al., "The φ accrual failure detector", SRDS 2004). It
// keeps a ring of recent heartbeat inter-arrival intervals; Phi reports
// the suspicion level −log10 P(silence this long | history) under an
// exponential inter-arrival model: φ = 1 means the current silence had a
// 10% chance of being benign, φ = 2 means 1%, and so on. Suspicion is a
// continuous score, so one policy knob (the φ threshold) trades
// detection latency against false positives instead of a brittle fixed
// timeout.
//
// Observe and Phi are allocation-free: the controller calls them on
// every beat and every evaluator tick, and the steady-state benchmark
// holds them to zero allocs/op.
type Detector struct {
	prior  sim.Duration   // assumed mean interval until samples arrive
	buf    []sim.Duration // ring of recent inter-arrival intervals
	n      int            // live samples in buf
	idx    int            // next write position
	sum    sim.Duration   // running sum of the live samples
	last   sim.Time       // arrival time of the most recent beat
	primed bool           // first beat seen (intervals exist only after it)
}

// NewDetector builds a detector with the given sliding-window size and
// prior mean interval. The prior stands in for the empirical mean until
// real samples accumulate, so the very first silence is judged against
// the configured heartbeat period rather than garbage. window values
// below 1 are clamped to 1.
func NewDetector(window int, prior sim.Duration) *Detector {
	if window < 1 {
		window = 1
	}
	return &Detector{prior: prior, buf: make([]sim.Duration, window)} //cdivet:allow escape constructor runs once per monitored server at startup; Observe and Phi are the alloc-free hot path
}

// Observe records a heartbeat arrival at time t. The first observation
// only primes the clock; intervals are recorded from the second beat on.
// Out-of-order or duplicate timestamps (t not after the last beat) are
// ignored rather than recorded as zero-length intervals.
func (d *Detector) Observe(t sim.Time) {
	if !d.primed {
		d.primed = true
		d.last = t
		return
	}
	iv := t.Sub(d.last)
	if iv <= 0 {
		return
	}
	d.last = t
	if d.n == len(d.buf) {
		d.sum -= d.buf[d.idx]
	} else {
		d.n++
	}
	d.buf[d.idx] = iv
	d.sum += iv
	d.idx++
	if d.idx == len(d.buf) {
		d.idx = 0
	}
}

// Mean returns the windowed mean inter-arrival interval, or the prior
// when no intervals have been observed yet.
func (d *Detector) Mean() sim.Duration {
	if d.n == 0 {
		return d.prior
	}
	return d.sum / sim.Duration(d.n)
}

// Phi returns the suspicion level at time now: the negative decimal log
// of the probability that a beat gap of now−last arises from the
// observed exponential inter-arrival distribution, i.e.
// Δ / (mean · ln 10). It is 0 before any beat has been seen and 0 for
// non-positive gaps, and grows without bound as the silence stretches.
func (d *Detector) Phi(now sim.Time) float64 {
	if !d.primed {
		return 0
	}
	delta := now.Sub(d.last)
	if delta <= 0 {
		return 0
	}
	m := d.Mean()
	if m <= 0 {
		return math.Inf(1)
	}
	return float64(delta) / (float64(m) * math.Ln10)
}

// Last returns the arrival time of the most recent beat and whether any
// beat has been observed.
func (d *Detector) Last() (sim.Time, bool) { return d.last, d.primed }

// Reset forgets all history. The controller calls it when a server is
// declared dead, so the post-reboot detector judges the fresh beat
// stream against the prior instead of pre-crash intervals.
func (d *Detector) Reset() {
	d.n, d.idx, d.sum = 0, 0, 0
	d.primed = false
	d.last = sim.Time(0)
}
