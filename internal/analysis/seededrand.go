package analysis

import (
	"go/ast"
)

// seededRandAllowed are the math/rand package-level names that construct
// explicit streams — the only sanctioned way to get randomness here, e.g.
// internal/sched/sched.go and internal/fabric/congestion.go's
// rand.New(rand.NewSource(seed)) idiom.
var seededRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// SeededRand flags the global math/rand functions (rand.Intn, rand.Float64,
// rand.Seed, ...). They draw from a process-wide shared source, so any two
// call sites — or any change in call order — perturb each other's streams
// and every seeded run stops being reproducible. Methods on an explicit
// *rand.Rand are fine everywhere, including tests.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "global math/rand state; use an explicit rand.New(rand.NewSource(seed)) stream",
	Run:  runSeededRand,
}

func runSeededRand(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := pkgLevelFunc(pass.Info, sel)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if !seededRandAllowed[fn.Name()] {
				pass.Reportf(sel.Pos(), "global rand.%s shares hidden state across call sites; use an explicit rand.New(rand.NewSource(seed)) stream", fn.Name())
			}
			return true
		})
	}
}
