// Batch: schedule a mixed job queue (CPU-dominant, GPU-dominant, and
// balanced jobs) on a traditional node architecture and an equal-hardware
// CDI machine — the system-efficiency story behind the paper's
// introduction, quantified as makespan, queueing, and GPU energy.
//
//	go run ./examples/batch [-jobs 40] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	cdi "repro"
)

func main() {
	njobs := flag.Int("jobs", 40, "jobs in the queue")
	seed := flag.Int64("seed", 1, "workload seed")
	nodes := flag.Int("nodes", 8, "nodes (24 cores, 2 GPUs each traditionally)")
	flag.Parse()

	jobs := cdi.WorkloadMix(*njobs, 24, *seed)
	cmp, err := cdi.CompareBatch(jobs, *nodes, 24, 2, cdi.Backfill)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== %d mixed jobs on %d nodes (%d cores, %d GPUs total) ==\n",
		*njobs, *nodes, *nodes*24, *nodes*2)
	print := func(name string, r cdi.BatchResult) {
		fmt.Printf("%-13s makespan %-10v mean wait %-10v max wait %-10v GPU energy %.1f Wh\n",
			name, r.Makespan, r.MeanWait, r.MaxWait, r.GPUEnergyWh)
	}
	print("traditional:", cmp.Traditional)
	print("cdi:", cmp.CDI)

	speedup := float64(cmp.Traditional.Makespan) / float64(cmp.CDI.Makespan)
	fmt.Printf("\nCDI finishes the queue %.2f× sooner", speedup)
	if cmp.Traditional.GPUEnergyWh > 0 {
		saved := 1 - cmp.CDI.GPUEnergyWh/cmp.Traditional.GPUEnergyWh
		fmt.Printf(" and saves %.1f%% of GPU energy", saved*100)
	}
	fmt.Println(" — trapped GPUs power off and recompose.")
}
