package analysis

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// -update regenerates the committed golden files from current output.
var update = flag.Bool("update", false, "rewrite golden files")

// TestCrossPackageMiss is the existence proof for the module-wide layer:
// the taint corpus's producer package leaks map iteration order through a
// return value, which the per-file maporder rule provably misses (zero
// findings), while taint reports it at the emitting sink one package away.
func TestCrossPackageMiss(t *testing.T) {
	m, err := LoadDirAs(filepath.Join("testdata", "taint"), corpusPath)
	if err != nil {
		t.Fatal(err)
	}
	perFile, err := RunModule(m, Config{Analyzers: []*Analyzer{MapOrder}})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range perFile {
		// The corpus root deliberately holds a local (same-file) positive;
		// the proof is that the producer package — where the nondeterminism
		// is minted — shows nothing to the per-file rule.
		if strings.Contains(f.File, "producer") {
			t.Errorf("per-file maporder unexpectedly found: %s", f)
		}
	}

	crossPkg, err := RunModule(m, Config{Analyzers: []*Analyzer{Taint}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range crossPkg {
		if strings.Contains(f.Message, "(via producer.ArbitraryKey)") && strings.HasSuffix(f.File, "taint.go") {
			found = true
		}
	}
	if !found {
		t.Errorf("taint did not report the cross-package leak; findings: %v", crossPkg)
	}
}

// copyFixCorpus clones the fixable corpus into a scratch dir so ApplyFixes
// can read (and the test write) real files without touching testdata.
func copyFixCorpus(t *testing.T) string {
	t.Helper()
	src := filepath.Join("testdata", "fix", "src")
	tmp := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(tmp, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return tmp
}

// fixCorpus analyzes the scratch copy under the rules with mechanical
// fixes and computes every fix. (The full suite would also report taint at
// the same loops — correct, but fixless by design: taint cannot know which
// laundering is right.)
func fixCorpus(t *testing.T, dir string) *FixResult {
	t.Helper()
	m, err := LoadDirAs(dir, corpusPath)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunModule(m, Config{Analyzers: []*Analyzer{MapOrder, SeededRand}})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Fix == nil || len(f.Fix.Edits) == 0 {
			t.Errorf("finding in fix corpus carries no fix: %s", f)
		}
	}
	res, err := ApplyFixes(findings)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skipped) > 0 {
		t.Fatalf("fixes skipped as conflicting: %v", res.Skipped)
	}
	return res
}

func sortedFiles(fixed map[string][]byte) []string {
	files := make([]string, 0, len(fixed))
	for f := range fixed { //cdivet:allow maporder keys are collected unordered and sorted on the next line
		files = append(files, f)
	}
	sort.Strings(files)
	return files
}

func compareGolden(t *testing.T, goldenPath string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden:\n%s", goldenPath,
			UnifiedDiff("golden", "got", want, got))
	}
}

// TestFixGolden: cdivet -fix over the corpus must produce byte-identical
// output to the committed goldens, and the fixed files must re-analyze
// completely clean.
func TestFixGolden(t *testing.T) {
	tmp := copyFixCorpus(t)
	res := fixCorpus(t, tmp)
	for _, file := range sortedFiles(res.Fixed) {
		if err := os.WriteFile(file, res.Fixed[file], 0o644); err != nil {
			t.Fatal(err)
		}
		compareGolden(t, filepath.Join("testdata", "fix", "golden", filepath.Base(file)+".golden"), res.Fixed[file])
	}

	m, err := LoadDirAs(tmp, corpusPath)
	if err != nil {
		t.Fatalf("fixed corpus no longer loads: %v", err)
	}
	findings, err := RunModule(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("fixed corpus still reports: %s", f)
	}
}

// TestFixDiffGolden: the -fix -diff rendering is stable.
func TestFixDiffGolden(t *testing.T) {
	tmp := copyFixCorpus(t)
	res := fixCorpus(t, tmp)
	var sb strings.Builder
	for _, file := range sortedFiles(res.Fixed) {
		old, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(UnifiedDiff(filepath.Base(file), filepath.Base(file), old, res.Fixed[file]))
	}
	compareGolden(t, filepath.Join("testdata", "fix", "diff.golden"), []byte(sb.String()))
}

// TestSARIFGolden pins the SARIF 2.1.0 rendering, relative URIs included.
func TestSARIFGolden(t *testing.T) {
	m, err := LoadDirAs(filepath.Join("testdata", "simunits"), corpusPath)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunModule(m, Config{Analyzers: []*Analyzer{SimUnits}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, findings, m.Root); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "sarif.golden"), buf.Bytes())
}

// TestBaselineRoundTrip: a baseline cut from the current findings swallows
// exactly those findings, counts duplicate messages, survives a write/read
// cycle, and reports entries that stop matching as stale.
func TestBaselineRoundTrip(t *testing.T) {
	m, err := LoadDirAs(filepath.Join("testdata", "simunits"), corpusPath)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunModule(m, Config{Analyzers: []*Analyzer{SimUnits}})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("corpus produced no findings to baseline")
	}

	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, NewBaseline(findings, m.Root)); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	kept, suppressed := b.Filter(findings, m.Root)
	if len(kept) != 0 || suppressed != len(findings) {
		t.Errorf("self-filter kept %d findings (suppressed %d of %d)", len(kept), suppressed, len(findings))
	}
	if stale := b.Stale(findings, m.Root); len(stale) != 0 {
		t.Errorf("fresh baseline reports stale entries: %v", stale)
	}

	// A finding beyond the baselined count survives the filter.
	extra := append([]Finding{}, findings...)
	extra = append(extra, findings[0])
	kept, _ = b.Filter(extra, m.Root)
	if len(kept) != 1 {
		t.Errorf("duplicate finding beyond baseline count: kept %d, want 1", len(kept))
	}

	// Entries with no live finding are stale.
	if stale := b.Stale(nil, m.Root); len(stale) != len(b.Entries) {
		t.Errorf("all-gone baseline: %d stale, want %d", len(stale), len(b.Entries))
	}
}

// TestBaselinePrune: Prune drops entries with no live finding, trims counts
// down to the live occurrence count, leaves justified entries alone, and
// the pruned baseline survives a write/read cycle still covering exactly
// the live findings.
func TestBaselinePrune(t *testing.T) {
	m, err := LoadDirAs(filepath.Join("testdata", "simunits"), corpusPath)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunModule(m, Config{Analyzers: []*Analyzer{SimUnits}})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) < 2 {
		t.Fatalf("corpus produced %d findings; need at least 2", len(findings))
	}

	// Cut a baseline from an inflated view of the findings: every finding
	// duplicated (counts of 2), plus a phantom that never occurs.
	inflated := append(append([]Finding{}, findings...), findings...)
	phantom := findings[0]
	phantom.Message = "phantom finding that no longer occurs"
	inflated = append(inflated, phantom)
	b := NewBaseline(inflated, m.Root)

	pruned, removed, trimmed := b.Prune(findings, m.Root)
	if len(removed) != 1 || removed[0].Message != phantom.Message {
		t.Errorf("removed = %v, want just the phantom", removed)
	}
	if len(trimmed) == 0 {
		t.Error("inflated counts were not trimmed")
	}
	for _, e := range trimmed {
		if e.Count <= 0 {
			t.Errorf("trimmed entry reports non-positive cut %d", e.Count)
		}
	}

	// The pruned baseline still swallows the live findings exactly...
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, pruned); err != nil {
		t.Fatal(err)
	}
	pruned, err = ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	kept, suppressed := pruned.Filter(findings, m.Root)
	if len(kept) != 0 || suppressed != len(findings) {
		t.Errorf("pruned baseline kept %d findings (suppressed %d of %d)", len(kept), suppressed, len(findings))
	}
	// ...with no slack left: one extra copy of any finding now fails.
	extra := append(append([]Finding{}, findings...), findings[0])
	if kept, _ := pruned.Filter(extra, m.Root); len(kept) != 1 {
		t.Errorf("pruned baseline left slack: kept %d of the extra copy, want 1", len(kept))
	}

	// Pruning a minimal baseline is the identity.
	again, removed, trimmed := pruned.Prune(findings, m.Root)
	if len(removed) != 0 || len(trimmed) != 0 {
		t.Errorf("pruning a minimal baseline changed it: removed %v trimmed %v", removed, trimmed)
	}
	if len(again.Entries) != len(pruned.Entries) {
		t.Errorf("idempotent prune lost entries: %d -> %d", len(pruned.Entries), len(again.Entries))
	}
}

// TestSelfCheck: the analyzer package itself must pass its own full suite —
// an analysis suite that cannot gate its own source has no business gating
// the model's.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module")
	}
	findings, err := Run(Config{Dir: ".", Patterns: []string{"./internal/analysis"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("self-check: %s", f)
	}
}
