package serve

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/compose"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// Tier is one slice of the disaggregated pool: GPUs reachable at a given
// composition scale.
type Tier struct {
	Scale fabric.Scale
	// Km is the fibre distance for the scale's preset path (0 = preset
	// default).
	Km float64
	// GPUs is how many replicas this tier contributes.
	GPUs int
}

// Replica is one placed GPU serving a set of tenants.
type Replica struct {
	// Name is the compose allocation name.
	Name string
	// Tier and Path describe how the replica is reached; Slack is the
	// per-call slack the composition reports for that path.
	Tier  fabric.Scale
	Path  fabric.Path
	Slack sim.Duration
	// Tenants lists the tenant indices this replica serves.
	Tenants []int
}

// Place maps tenants onto a pool built from the given tiers, slack-aware:
// each tier becomes a compose.System whose GPUs are allocated one per
// replica (the allocation's Slack is the replica's slack), replicas are
// ordered by ascending slack, tenants by ascending SLO, and the
// tightest-SLO tenants are dealt onto the lowest-slack replicas first,
// wrapping round-robin once every replica has a tenant. The whole
// procedure is deterministic: ties break on declaration order.
func Place(tenants []Tenant, tiers []Tier) ([]Replica, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("serve: no tenants to place")
	}
	if len(tiers) == 0 {
		return nil, fmt.Errorf("serve: no pool tiers")
	}
	for _, t := range tenants {
		if err := t.validate(); err != nil {
			return nil, err
		}
	}
	total := 0
	for ti, tier := range tiers {
		if tier.GPUs <= 0 {
			return nil, fmt.Errorf("serve: tier %d (%v) has no GPUs", ti, tier.Scale)
		}
		total += tier.GPUs
	}
	replicas := make([]Replica, 0, total)
	for _, tier := range tiers {
		path := fabric.Preset(tier.Scale, tier.Km)
		sys, err := compose.NewCDI(tier.GPUs, 8, 1, tier.GPUs, path)
		if err != nil {
			return nil, err
		}
		//cdivet:allow hotpath built once per tier, not per replica
		prefix := "serve-" + tier.Scale.String() + "-"
		for g := 0; g < tier.GPUs; g++ {
			// Each replica owns a distinct name; the allocation is the
			// result itself, not transient scratch.
			//cdivet:allow hotpath the string is the replica's stored identity
			name := prefix + strconv.Itoa(g)
			a, err := sys.Alloc(compose.Request{Name: name, Cores: 1, GPUs: 1})
			if err != nil {
				return nil, err
			}
			replicas = append(replicas, Replica{
				Name:  name,
				Tier:  tier.Scale,
				Path:  path,
				Slack: a.Slack,
			})
		}
	}
	// Lowest-slack replicas first; declaration order breaks ties.
	sort.SliceStable(replicas, func(i, j int) bool {
		return replicas[i].Slack < replicas[j].Slack
	})
	// Tightest SLOs first; declaration order breaks ties.
	order := make([]int, len(tenants))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return tenants[order[i]].SLO < tenants[order[j]].SLO
	})
	for k, ti := range order {
		r := &replicas[k%len(replicas)]
		r.Tenants = append(r.Tenants, ti)
	}
	return replicas, nil
}

// Rebalance re-deals tenants over the replicas the predicate reports up,
// in place, preserving Place's discipline: surviving replicas keep their
// slack order, tenants re-sort by ascending SLO, and the tightest SLOs
// land on the lowest-slack survivors first, wrapping round-robin. Down
// replicas keep their identity but lose their tenants, so a later
// Rebalance with every replica back up restores the original placement
// exactly. The control plane calls it when the pool registry drains or
// readmits a server.
func Rebalance(replicas []Replica, tenants []Tenant, up func(i int) bool) error {
	live := make([]int, 0, len(replicas))
	for i := range replicas {
		replicas[i].Tenants = replicas[i].Tenants[:0]
		if up(i) {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return fmt.Errorf("serve: rebalance with no live replicas")
	}
	// live is in slice order; Place already sorted the slice by slack, so
	// slack order survives the filter. Tenants re-sort by SLO as in Place.
	order := make([]int, len(tenants))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return tenants[order[i]].SLO < tenants[order[j]].SLO
	})
	for k, ti := range order {
		r := &replicas[live[k%len(live)]]
		r.Tenants = append(r.Tenants, ti)
	}
	return nil
}

// SplitRequests partitions a generated schedule by replica, preserving
// arrival order within each partition. Requests for tenants a replica does
// not serve go to the replica that does.
func SplitRequests(reqs []Request, replicas []Replica) [][]Request {
	owner := map[int]int{}
	for ri, r := range replicas {
		for _, ti := range r.Tenants {
			owner[ti] = ri
		}
	}
	out := make([][]Request, len(replicas))
	for _, q := range reqs {
		ri := owner[q.Tenant]
		out[ri] = append(out[ri], q)
	}
	return out
}
