package pool

import (
	"fmt"

	"repro/internal/compose"
	"repro/internal/fabric"
	"repro/internal/gpu"
	"repro/internal/remoting"
	"repro/internal/serve"
	"repro/internal/sim"
)

// Config shapes one pool run.
type Config struct {
	Topo     Topology
	Policy   Policy
	Workload Workload
	// Defrag enables the consolidation sweeps; DefragEvery is their
	// minimum cadence (default 10 ms).
	Defrag      bool
	DefragEvery sim.Duration
	// RefGang is the reference gang size fragmentation and stranding are
	// scored against (default min(16, GPUsPerServer)). StrandedTrigger is
	// the stranded-GPU level that arms a consolidation sweep even with an
	// empty queue (default 2×RefGang).
	RefGang         int
	StrandedTrigger int
	// MigratePenalty is the control-plane re-attach charge per migrated
	// allocation, on top of the handle-table replay over the fabric
	// (default 500 µs, mirroring the transport's failover penalty).
	MigratePenalty sim.Duration
	// Serving and ServingGPUs reserve a slice of the pool for serving
	// tenants, placed through the serve placer before any batch job.
	Serving     []serve.Tenant
	ServingGPUs int
}

func (c Config) withDefaults() Config {
	if c.DefragEvery == 0 {
		c.DefragEvery = 10 * sim.Millisecond
	}
	if c.RefGang == 0 {
		c.RefGang = gangSizes[len(gangSizes)-1]
		if c.Topo.GPUsPerServer < c.RefGang {
			c.RefGang = c.Topo.GPUsPerServer
		}
	}
	if c.StrandedTrigger == 0 {
		c.StrandedTrigger = 2 * c.RefGang
	}
	if c.MigratePenalty == 0 {
		c.MigratePenalty = 500 * sim.Microsecond
	}
	return c
}

// Stats is what a finished run reports.
type Stats struct {
	// Jobs is the generated batch job count; Placed ran, Blocked queued
	// at least once before running, Killed could not be re-placed after
	// their server drained.
	Jobs    int
	Placed  int
	Blocked int
	Killed  int
	// PeakConcurrent is the maximum number of simultaneously placed
	// allocations the run sustained.
	PeakConcurrent int
	// Placement latency: arrival to placement, over all placed jobs.
	PlaceLatencyMean sim.Duration
	PlaceLatencyMax  sim.Duration
	// FragAvg and StrandedAvg are time averages over the measurement
	// window; StrandedPowerW prices the stranded average at the compose
	// power model's idle wattage.
	FragAvg        float64
	StrandedAvg    float64
	StrandedPowerW float64
	// Migrations/MigrationBytes count defrag consolidations and the
	// handle-table payload they replayed; DrainMigrations counts jobs
	// re-placed off drained servers (their bytes land in MigrationBytes
	// too).
	Migrations      int64
	MigrationBytes  int64
	DrainMigrations int64
	// Drains and Readmissions count control-plane actions applied.
	Drains       int64
	Readmissions int64
	// Goodput is delivered effective GPU-seconds (gang × efficiency ×
	// placed time inside the window) over the batch capacity's
	// GPU-seconds; GoodputGPUs is the same numerator per second of
	// window.
	Goodput     float64
	GoodputGPUs float64
	// ServingReplicas and ServingSlackMean summarize the serve-placer
	// reservation carved out before batch placement.
	ServingReplicas  int
	ServingSlackMean sim.Duration
}

// message kinds the mailbox carries.
type msgKind uint8

const (
	msgDone     msgKind = iota // arg = job id: lifetime expired
	msgMigrated                // arg = job id: defrag copy finished
	msgDrain                   // arg = server: control plane drains it
	msgReadmit                 // arg = server: control plane readmits it
)

type msg struct {
	kind msgKind
	arg  int
}

// allocState is a job's lifecycle position.
type allocState uint8

const (
	allocPending allocState = iota
	allocQueued
	allocPlaced
	allocDone
	allocKilled
)

// alloc is one batch job's placement record.
type alloc struct {
	state  allocState
	slices []slice
	scale  fabric.Scale
	eff    float64
	// segStart opens the current efficiency segment; effAcc accumulates
	// closed segments as effective GPU-seconds (window-clipped).
	segStart sim.Time
	effAcc   float64
}

// Scheduler is the pool control loop: a single process on its own shard
// owns every placement decision; per-rack shards host job-lifetime and
// migration-copy processes that talk back through the mailbox. It
// implements health.Pool, so the heartbeat control plane can drain and
// readmit pool servers like any other.
type Scheduler struct {
	env    *sim.Env
	cfg    Config
	topo   Topology
	jobs   []Job
	window sim.Duration
	// batchGPUs is the capacity left for batch jobs after the serving
	// reservation.
	batchGPUs int
	refGang   int

	// eff prices each shape at each spread scale; migCost is the
	// handle-table replay time per (shape, gang, crossing scale), built
	// once from remoting's DMA-replay cost model.
	eff     [numShapes][4]float64
	migCost [numShapes][5][4]sim.Duration

	// The scheduler process runs on sched; per-rack shards host job
	// lifetime and migration-copy processes.
	//cdivet:shard(pool.sched)
	sched *sim.Shard
	//cdivet:shard(pool.rack)
	racks []*sim.Shard
	wake  *sim.Signal

	// Free-list state and run bookkeeping, owned by the scheduler
	// process.
	//cdivet:shard(pool.sched)
	free []int
	//cdivet:shard(pool.sched)
	freeRack []int
	//cdivet:shard(pool.sched)
	freeRow []int
	//cdivet:shard(pool.sched)
	freeHist []int
	//cdivet:shard(pool.sched)
	totalFree int
	//cdivet:shard(pool.sched)
	stranded int
	//cdivet:shard(pool.sched)
	pinned []int
	//cdivet:shard(pool.sched)
	allocs []alloc
	//cdivet:shard(pool.sched)
	jobsOn [][]int
	//cdivet:shard(pool.sched)
	queue []int
	//cdivet:shard(pool.sched)
	mail []msg
	//cdivet:shard(pool.sched)
	nextArrival int
	//cdivet:shard(pool.sched)
	runningJobs int
	//cdivet:shard(pool.sched)
	sweepOutstanding int
	//cdivet:shard(pool.sched)
	defragBusy bool
	//cdivet:shard(pool.sched)
	nextDefrag sim.Time
	//cdivet:shard(pool.sched)
	lastAt sim.Time
	//cdivet:shard(pool.sched)
	fragInt float64
	//cdivet:shard(pool.sched)
	strandedInt float64
	//cdivet:shard(pool.sched)
	effGPUSec float64
	//cdivet:shard(pool.sched)
	placeLatTotal sim.Duration
	//cdivet:shard(pool.sched)
	stats Stats

	// live is the published rotation view: written by the scheduler
	// process, sampled read-only from other domains (the health
	// evaluator's Live checks), the same deliberately un-annotated
	// pattern as health.Registry's degraded counter.
	live []bool

	// scratch buffers reused across placements and sweeps.
	scratchSl    []slice
	scratchKeys  []int
	scratchJobs  []int
	scratchMoves []move
	planFree     []int
}

// Start builds the pool, reserves the serving slice, generates the batch
// schedule, and spawns the scheduler. The run completes when env.Run
// drains: every generated job has then completed (or been killed) and
// Stats is final.
func Start(env *sim.Env, cfg Config) (*Scheduler, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Topo.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy < FirstFit || cfg.Policy > TierAware {
		return nil, fmt.Errorf("pool: unknown policy %d", int(cfg.Policy))
	}
	topo := cfg.Topo
	servers, racks, gpus := topo.Servers(), topo.Racks(), topo.GPUs()
	if cfg.ServingGPUs < 0 || cfg.ServingGPUs >= gpus {
		return nil, fmt.Errorf("pool: serving reservation %d outside [0, %d)", cfg.ServingGPUs, gpus)
	}
	s := &Scheduler{
		env:       env,
		cfg:       cfg,
		topo:      topo,
		window:    cfg.Workload.Window,
		batchGPUs: gpus - cfg.ServingGPUs,
		refGang:   cfg.RefGang,
		free:      make([]int, servers),
		freeRack:  make([]int, racks),
		freeRow:   make([]int, topo.Rows),
		freeHist:  make([]int, topo.GPUsPerServer+1),
		pinned:    make([]int, servers),
		jobsOn:    make([][]int, servers),
		live:      make([]bool, servers),
		racks:     make([]*sim.Shard, racks),
	}
	for sv := range s.free {
		s.free[sv] = topo.GPUsPerServer
		s.live[sv] = true
	}
	s.freeHist[topo.GPUsPerServer] = servers
	s.totalFree = gpus
	for r := range s.freeRack {
		s.freeRack[r] = topo.ServersPerRack * topo.GPUsPerServer
	}
	for w := range s.freeRow {
		s.freeRow[w] = topo.RacksPerRow * topo.ServersPerRack * topo.GPUsPerServer
	}
	for sh := Shape(0); sh < numShapes; sh++ {
		for sc := fabric.NodeLocal; sc <= fabric.ClusterScale; sc++ {
			s.eff[sh][sc] = EfficiencyAt(sh, sc)
		}
		for gi, g := range gangSizes {
			t := remoting.NewHandleTable()
			for k := 0; k < g; k++ {
				t.Add(gpu.Ptr(k+1), sh.BytesPerGPU())
			}
			for sc := fabric.RackScale; sc <= fabric.ClusterScale; sc++ {
				s.migCost[sh][gi][sc] = remoting.ReplayTime(fabric.Preset(sc, 0), t)
			}
		}
	}
	if err := s.reserveServing(); err != nil {
		return nil, err
	}
	jobs, err := GenerateJobs(cfg.Workload, s.batchGPUs)
	if err != nil {
		return nil, err
	}
	s.jobs = jobs
	s.allocs = make([]alloc, len(jobs))
	s.mail = make([]msg, 0, 256)
	s.stats.Jobs = len(jobs)

	s.sched = env.NewShard()
	for r := range s.racks {
		s.racks[r] = env.NewShard()
	}
	s.wake = sim.NewSignal(env)
	s.sched.Spawn("pool-sched", s.run)
	return s, nil
}

// reserveServing hands the serving tenants to the serve placer and pins
// their replicas across the pool, one GPU each, stride-spread so the
// reservation does not concentrate in one rack.
func (s *Scheduler) reserveServing() error {
	if s.cfg.ServingGPUs == 0 {
		return nil
	}
	replicas, err := serve.Place(s.cfg.Serving, []serve.Tier{
		{Scale: fabric.RowScale, GPUs: s.cfg.ServingGPUs},
	})
	if err != nil {
		return fmt.Errorf("pool: serving reservation: %w", err)
	}
	servers := len(s.free)
	stride := servers / len(replicas)
	if stride == 0 {
		stride = 1
	}
	var slackSum sim.Duration
	for r, rep := range replicas {
		sv := (r * stride) % servers
		for s.free[sv] == 0 {
			sv = (sv + 1) % servers
		}
		// Pin before claiming so the stranded accounting already prices
		// the server at its reduced effective capacity.
		s.pinned[sv]++
		s.claim(sv, 1)
		slackSum += rep.Slack
	}
	s.stats.ServingReplicas = len(replicas)
	s.stats.ServingSlackMean = slackSum / sim.Duration(len(replicas))
	return nil
}

// Stats returns the run's counters; averages are final once env.Run has
// drained.
func (s *Scheduler) Stats() Stats { return s.stats }

// post delivers a mailbox message to the scheduler from another event
// domain (a rack-shard process or the health plane) and wakes it.
func (s *Scheduler) post(k msgKind, arg int) {
	//cdivet:allow shardsafety cross-shard handoff: the write is published to the owning domain by the Signal fire below
	s.mail = append(s.mail, msg{kind: k, arg: arg})
	s.wake.Fire()
}

// run is the scheduler process: admit arrivals, drain the mailbox, place
// the queue, consolidate, sleep until the next arrival or wake-up.
func (s *Scheduler) run(p *sim.Proc) {
	for {
		now := p.Now()
		s.advance(now)
		s.admitArrivals(now)
		s.drainMail(now)
		s.tryQueue(now)
		s.maybeDefrag(now)
		if s.finished(now) {
			return
		}
		if s.nextArrival < len(s.jobs) {
			if err := s.wake.WaitTimeout(p, s.jobs[s.nextArrival].Arrival.Sub(now)); err != nil {
				continue // the arrival tick; mailbox wake-ups return nil
			}
		} else {
			s.wake.Wait(p)
		}
	}
}

// finished reports (and finalizes) run completion: nothing left to
// arrive, run, copy, or place.
func (s *Scheduler) finished(now sim.Time) bool {
	if s.nextArrival < len(s.jobs) || s.runningJobs > 0 ||
		s.sweepOutstanding > 0 || len(s.mail) > 0 {
		return false
	}
	if len(s.queue) > 0 {
		// No capacity will ever free up again; the remainder is
		// unplaceable (drained servers shrank the pool below its needs).
		for _, id := range s.queue {
			s.allocs[id].state = allocKilled
			s.stats.Killed++
		}
		s.queue = s.queue[:0]
	}
	wEnd := sim.Time(0).Add(s.window)
	if now.Sub(wEnd) < 0 {
		s.advance(wEnd) // freeze the tail of the window under final state
	}
	s.finalize()
	return true
}

// finalize converts integrals into the reported averages.
func (s *Scheduler) finalize() {
	w := s.window.Seconds()
	s.stats.FragAvg = s.fragInt / w
	s.stats.StrandedAvg = s.strandedInt / w
	s.stats.StrandedPowerW = compose.DefaultPower().StrandedDraw(s.stats.StrandedAvg)
	s.stats.GoodputGPUs = s.effGPUSec / w
	s.stats.Goodput = s.effGPUSec / (float64(s.batchGPUs) * w)
	if s.stats.Placed > 0 {
		s.stats.PlaceLatencyMean = s.placeLatTotal / sim.Duration(s.stats.Placed)
	}
}

// advance integrates the fragmentation and stranded metrics up to now,
// clipped to the measurement window.
func (s *Scheduler) advance(now sim.Time) {
	wEnd := sim.Time(0).Add(s.window)
	a, b := s.lastAt, now
	if b > wEnd {
		b = wEnd
	}
	if d := b.Sub(a); d > 0 {
		dt := d.Seconds()
		s.fragInt += Fragmentation(s.totalFree, s.largest(), s.refGang) * dt
		s.strandedInt += float64(s.stranded) * dt
	}
	s.lastAt = now
}

// largest returns the biggest single-server free block among live
// servers.
func (s *Scheduler) largest() int {
	for k := len(s.freeHist) - 1; k >= 1; k-- {
		if s.freeHist[k] > 0 {
			return k
		}
	}
	return 0
}

// claim takes n GPUs from a live server, maintaining every aggregate in
// O(1); unclaim returns them.
func (s *Scheduler) claim(sv, n int) {
	f, capEff := s.free[sv], s.capEff(sv)
	s.freeHist[f]--
	s.freeHist[f-n]++
	s.stranded += strandedContrib(f-n, capEff, s.refGang) - strandedContrib(f, capEff, s.refGang)
	s.free[sv] = f - n
	s.totalFree -= n
	s.freeRack[s.topo.RackOf(sv)] -= n
	s.freeRow[s.topo.RowOf(sv)] -= n
}

func (s *Scheduler) unclaim(sv, n int) { s.claim(sv, -n) }

// capEff is a server's capacity net of its pinned serving replicas.
func (s *Scheduler) capEff(sv int) int { return s.topo.GPUsPerServer - s.pinned[sv] }

// admitArrivals places (or queues) every job whose arrival time has come.
func (s *Scheduler) admitArrivals(now sim.Time) {
	for s.nextArrival < len(s.jobs) && s.jobs[s.nextArrival].Arrival.Sub(now) <= 0 {
		id := s.nextArrival
		s.nextArrival++
		if sl, scale, ok := s.placeJob(s.jobs[id]); ok {
			s.doPlace(now, id, sl, scale, true)
			continue
		}
		s.allocs[id].state = allocQueued
		s.queue = append(s.queue, id)
		s.stats.Blocked++
	}
}

// tryQueue re-attempts every queued job in arrival order, keeping the
// ones that still do not fit.
func (s *Scheduler) tryQueue(now sim.Time) {
	if len(s.queue) == 0 {
		return
	}
	w := 0
	for _, id := range s.queue {
		if sl, scale, ok := s.placeJob(s.jobs[id]); ok {
			s.doPlace(now, id, sl, scale, true)
			continue
		}
		s.queue[w] = id
		w++
	}
	s.queue = s.queue[:w]
}

// doPlace commits a placement. Initial placements start the job's
// lifetime clock on its home rack's shard; re-placements (drain
// recovery) keep the original end time.
func (s *Scheduler) doPlace(now sim.Time, id int, sl []slice, scale fabric.Scale, initial bool) {
	a := &s.allocs[id]
	j := s.jobs[id]
	for _, x := range sl {
		s.claim(x.server, x.gpus)
		s.jobsOn[x.server] = append(s.jobsOn[x.server], id)
	}
	a.state = allocPlaced
	a.slices = sl
	a.scale = scale
	a.eff = s.eff[j.Shape][scale]
	a.segStart = now
	if !initial {
		return
	}
	s.runningJobs++
	if s.runningJobs > s.stats.PeakConcurrent {
		s.stats.PeakConcurrent = s.runningJobs
	}
	s.stats.Placed++
	lat := now.Sub(j.Arrival)
	s.placeLatTotal += lat
	if lat > s.stats.PlaceLatencyMax {
		s.stats.PlaceLatencyMax = lat
	}
	rk := s.racks[s.topo.RackOf(sl[0].server)]
	rk.SpawnAt(j.Lifetime, "pool-job-end", func(jp *sim.Proc) {
		s.post(msgDone, id)
	})
}

// clipSpan returns the seconds of [from, to] inside the window.
func (s *Scheduler) clipSpan(from, to sim.Time) float64 {
	wEnd := sim.Time(0).Add(s.window)
	if to > wEnd {
		to = wEnd
	}
	if from < 0 {
		from = 0
	}
	if d := to.Sub(from); d > 0 {
		return d.Seconds()
	}
	return 0
}

// closeSegment banks the open efficiency segment at now.
func (s *Scheduler) closeSegment(a *alloc, gang int, now sim.Time) {
	a.effAcc += float64(gang) * a.eff * s.clipSpan(a.segStart, now)
	a.segStart = now
}

// drainMail applies every pending mailbox message in arrival order.
func (s *Scheduler) drainMail(now sim.Time) {
	for i := 0; i < len(s.mail); i++ {
		m := s.mail[i]
		switch m.kind {
		case msgDone:
			s.complete(m.arg, now)
		case msgMigrated:
			if s.sweepOutstanding--; s.sweepOutstanding == 0 {
				s.defragBusy = false
			}
		case msgDrain:
			s.drainServer(m.arg, now)
		case msgReadmit:
			s.readmitServer(m.arg)
		}
	}
	s.mail = s.mail[:0]
}

// complete retires a job whose lifetime expired.
func (s *Scheduler) complete(id int, now sim.Time) {
	a := &s.allocs[id]
	if a.state != allocPlaced {
		return // killed while its end timer was in flight
	}
	j := s.jobs[id]
	s.closeSegment(a, j.Gang, now)
	for _, x := range a.slices {
		s.removeJobFrom(x.server, id)
		s.unclaim(x.server, x.gpus)
	}
	a.slices = nil
	a.state = allocDone
	s.runningJobs--
	s.effGPUSec += a.effAcc
}

// removeJobFrom drops id from a server's job list, preserving order.
func (s *Scheduler) removeJobFrom(sv, id int) {
	l := s.jobsOn[sv]
	for i, x := range l {
		if x == id {
			copy(l[i:], l[i+1:])
			s.jobsOn[sv] = l[:len(l)-1]
			return
		}
	}
}

// drainServer takes a server out of rotation: its free capacity leaves
// the books and every allocation touching it re-places through the
// migration machinery (handle-table replay from the host over the new
// spread's path). Jobs with nowhere to go are killed.
func (s *Scheduler) drainServer(v int, now sim.Time) {
	if v < 0 || v >= len(s.free) || !s.live[v] {
		return
	}
	s.stats.Drains++
	s.live[v] = false
	f := s.free[v]
	s.freeHist[f]--
	s.stranded -= strandedContrib(f, s.capEff(v), s.refGang)
	s.totalFree -= f
	s.freeRack[s.topo.RackOf(v)] -= f
	s.freeRow[s.topo.RowOf(v)] -= f
	s.free[v] = 0

	victims := append(s.scratchJobs[:0], s.jobsOn[v]...)
	for _, id := range victims {
		a := &s.allocs[id]
		if a.state != allocPlaced {
			continue
		}
		j := s.jobs[id]
		s.closeSegment(a, j.Gang, now)
		for _, x := range a.slices {
			s.removeJobFrom(x.server, id)
			if x.server != v {
				s.unclaim(x.server, x.gpus)
			}
		}
		a.slices = nil
		sl, scale, ok := s.placeJob(j)
		if !ok {
			a.state = allocKilled
			s.runningJobs--
			s.stats.Killed++
			s.effGPUSec += a.effAcc
			continue
		}
		s.doPlace(now, id, sl, scale, false)
		// The job resumes only after its state replays onto the new
		// spread; the gap costs goodput, the payload costs the fabric.
		cost := s.cfg.MigratePenalty + s.replayCost(j, scale)
		a.segStart = now.Add(cost)
		s.stats.DrainMigrations++
		s.stats.MigrationBytes += int64(j.Gang) * j.Shape.BytesPerGPU()
	}
	s.scratchJobs = victims[:0]
}

// readmitServer returns a drained server to rotation, blank.
func (s *Scheduler) readmitServer(v int) {
	if v < 0 || v >= len(s.free) || s.live[v] {
		return
	}
	s.stats.Readmissions++
	s.live[v] = true
	f := s.capEff(v)
	s.free[v] = f
	s.freeHist[f]++
	s.stranded += strandedContrib(f, f, s.refGang)
	s.totalFree += f
	s.freeRack[s.topo.RackOf(v)] += f
	s.freeRow[s.topo.RowOf(v)] += f
}

// replayCost prices a job's handle-table replay at a spread scale; the
// host-to-server re-upload crosses at least the rack fabric.
func (s *Scheduler) replayCost(j Job, scale fabric.Scale) sim.Duration {
	if scale < fabric.RackScale {
		scale = fabric.RackScale
	}
	return s.migCost[j.Shape][gangIdx(j.Gang)][scale]
}

// gangIdx maps a mixture gang size to its migCost row.
func gangIdx(g int) int {
	for i, size := range gangSizes {
		if size >= g {
			return i
		}
	}
	return len(gangSizes) - 1
}
