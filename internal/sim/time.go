// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine drives "processes" — ordinary Go functions running in their own
// goroutines — through virtual time. At most one process executes at any
// instant: the scheduler hands control to a process, and the process hands
// control back when it blocks on a virtual-time primitive (Sleep, a Signal,
// a Resource, ...). This SimPy-style handoff keeps simulations fully
// deterministic regardless of GOMAXPROCS while letting model code read as
// straight-line imperative Go.
//
// All other substrates in this repository (the GPU device model, the CUDA
// API layer, the MPI runtime, the workload mini-apps) are built on this
// package.
package sim

import (
	"fmt"
	"math"
	"strconv"
)

// Time is an absolute virtual timestamp in seconds since simulation start.
type Time float64

// Duration is a span of virtual time in seconds.
//
// Durations are plain float64 seconds rather than time.Duration because the
// cost models routinely produce sub-nanosecond quantities (for example a
// per-element DMA cost) that would truncate to zero in integer nanoseconds.
type Duration float64

// Convenient duration units.
const (
	Nanosecond  Duration = 1e-9
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
)

// Micros returns d expressed in microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e-6 }

// Millis returns d expressed in milliseconds.
func (d Duration) Millis() float64 { return float64(d) / 1e-3 }

// Seconds returns d expressed in seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// String formats the duration with an SI-scaled unit, e.g. "12.3µs".
// strconv.FormatFloat('g') produces the same bytes as fmt's %g without the
// format-string parse — String sits on trace/report paths that run once per
// recorded kernel.
func (d Duration) String() string {
	abs := math.Abs(float64(d))
	switch {
	case abs == 0:
		return "0s"
	case abs < 1e-6:
		return strconv.FormatFloat(float64(d)/1e-9, 'g', 3, 64) + "ns"
	case abs < 1e-3:
		return strconv.FormatFloat(float64(d)/1e-6, 'g', 3, 64) + "µs"
	case abs < 1:
		return strconv.FormatFloat(float64(d)/1e-3, 'g', 3, 64) + "ms"
	default:
		return strconv.FormatFloat(float64(d), 'g', 4, 64) + "s"
	}
}

// Sub returns the duration t - u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Add returns the time t + d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// String formats the timestamp in seconds.
func (t Time) String() string { return fmt.Sprintf("t=%.9fs", float64(t)) }
