package health

import (
	"math"
	"testing"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/remoting"
	"repro/internal/sim"
)

func TestDetectorPhi(t *testing.T) {
	d := NewDetector(8, 100*sim.Microsecond)
	if phi := d.Phi(sim.Time(0)); phi != 0 {
		t.Errorf("phi before any beat = %g, want 0", phi)
	}
	// Regular 100 µs beats.
	at := sim.Time(0)
	for i := 0; i < 12; i++ {
		d.Observe(at)
		at = at.Add(100 * sim.Microsecond)
	}
	if m := d.Mean(); math.Abs(float64(m)-float64(100*sim.Microsecond)) > 1e-12 {
		t.Errorf("windowed mean = %v, want 100µs", m)
	}
	// φ = Δ/(mean·ln10): one mean of silence is φ≈0.434, ten means φ≈4.34.
	last, _ := d.Last()
	phi1 := d.Phi(last.Add(100 * sim.Microsecond))
	if math.Abs(phi1-1/math.Ln10) > 1e-9 {
		t.Errorf("phi at one mean = %g, want %g", phi1, 1/math.Ln10)
	}
	phi10 := d.Phi(last.Add(1000 * sim.Microsecond))
	if math.Abs(phi10-10/math.Ln10) > 1e-9 {
		t.Errorf("phi at ten means = %g, want %g", phi10, 10/math.Ln10)
	}
	if phi10 <= phi1 {
		t.Error("phi is not increasing in the silence length")
	}
	// Duplicate and out-of-order observations are ignored.
	d.Observe(last)
	d.Observe(last.Add(-50 * sim.Microsecond))
	if m := d.Mean(); math.Abs(float64(m)-float64(100*sim.Microsecond)) > 1e-12 {
		t.Errorf("mean perturbed by non-monotonic observations: %v", m)
	}
	// Reset falls back to the prior and forgets the clock.
	d.Reset()
	if _, ok := d.Last(); ok {
		t.Error("reset detector still remembers a beat")
	}
	if d.Phi(at) != 0 {
		t.Error("reset detector is suspicious with no beats")
	}
	if d.Mean() != 100*sim.Microsecond {
		t.Errorf("reset detector mean = %v, want the prior", d.Mean())
	}
}

func TestDetectorWindowSlides(t *testing.T) {
	d := NewDetector(4, sim.Millisecond)
	at := sim.Time(0)
	d.Observe(at)
	// Four slow beats, then four fast ones: the window must forget the
	// slow regime entirely.
	for i := 0; i < 4; i++ {
		at = at.Add(sim.Millisecond)
		d.Observe(at)
	}
	for i := 0; i < 4; i++ {
		at = at.Add(100 * sim.Microsecond)
		d.Observe(at)
	}
	if m := d.Mean(); math.Abs(float64(m)-float64(100*sim.Microsecond)) > 1e-12 {
		t.Errorf("mean after window slide = %v, want 100µs", m)
	}
}

func testPath(t *testing.T) fabric.Path {
	t.Helper()
	path, err := fabric.PathForSlack(10 * sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// testPool builds a Resilient pool under the given fault schedule, with
// no workload attached — the control plane is the only actor.
func testPool(t *testing.T, env *sim.Env, fc faults.Config, standbys int) *remoting.Resilient {
	t.Helper()
	r, err := remoting.NewResilient(env, gpu.A100(), remoting.ResilientConfig{
		Config:   remoting.Config{Path: testPath(t), Seed: fc.Seed},
		Faults:   fc,
		Standbys: standbys, DisableLocalFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidate(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	pool := testPool(t, env, faults.Config{Seed: 1}, 1)
	bad := []Config{
		{},                                   // no horizon
		{Horizon: sim.Second, Interval: -1},  // negative interval survives defaults
		{Horizon: sim.Second, SuspectPhi: 5}, // suspect above default dead
		{Horizon: sim.Second, RecoverBeats: -1},
		{Horizon: sim.Second, DropProbability: 1},
	}
	for i, cfg := range bad {
		if _, err := Start(env, pool, pool.Injector(), cfg); err == nil {
			t.Errorf("config %d: invalid config accepted", i)
		}
	}
}

func TestZeroFaultNoOp(t *testing.T) {
	// With no fault schedule the control plane observes steady beats and
	// takes no action at all: no suspicion, no drain, no registry churn.
	env := sim.NewEnv()
	defer env.Close()
	pool := testPool(t, env, faults.Config{Seed: 7}, 1)
	c, err := Start(env, pool, pool.Injector(), Config{Seed: 7, Horizon: 50 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	env.Run()
	st := c.Stats()
	if st.Beats == 0 {
		t.Fatal("no heartbeats delivered")
	}
	if st.DroppedBeats != 0 || st.Suspicions != 0 || st.Drains != 0 || st.Deaths != 0 {
		t.Errorf("fault-free run took control action: %+v", st)
	}
	if len(c.Registry().Log()) != 0 {
		t.Errorf("fault-free run logged %d transitions", len(c.Registry().Log()))
	}
	if c.Degraded() {
		t.Error("fault-free pool reports degraded")
	}
	for i := 0; i < pool.Servers(); i++ {
		if c.Registry().StateOf(i) != Healthy || !pool.Live(i) {
			t.Errorf("server %d: state %v live %v after fault-free run",
				i, c.Registry().StateOf(i), pool.Live(i))
		}
	}
}

// churnConfig is a schedule with recurring 5 ms outages every ~20 ms on
// each of the pool's servers.
func churnConfig(seed int64) faults.Config {
	return faults.Config{Seed: seed, CrashAfter: 20 * sim.Millisecond, CrashFor: 5 * sim.Millisecond}
}

func TestDetectsDrainsAndReadmits(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	pool := testPool(t, env, churnConfig(11), 1)
	c, err := Start(env, pool, pool.Injector(), Config{Seed: 11, Horizon: 100 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	env.Run()
	st := c.Stats()
	if st.Suspicions == 0 || st.Deaths == 0 || st.Recoveries == 0 {
		t.Fatalf("churn run saw no full detect/recover cycle: %+v", st)
	}
	if st.DetectionCount == 0 {
		t.Fatal("no true-positive detections scored")
	}
	// φ reaches the suspect threshold after ~1.5·mean·ln10 ≈ 0.9 ms of
	// silence; with evaluator granularity that bounds detection latency
	// well under 2.5 ms.
	if st.MeanDetection() <= 0 || st.MeanDetection() > 2500*sim.Microsecond {
		t.Errorf("mean detection latency %v outside (0, 2.5ms]", st.MeanDetection())
	}
	if st.DetectionMax > 5*sim.Millisecond {
		t.Errorf("max detection latency %v exceeds the outage length", st.DetectionMax)
	}
	if st.Readmissions == 0 {
		t.Error("no server was readmitted after recovery")
	}
	ps := pool.Stats()
	if ps.Migrations == 0 {
		t.Error("no drain migration rode the DMA-replay path")
	}
	// The log must contain a full Healthy→…→Healthy cycle for some server.
	var cycled bool
	for _, tr := range c.Registry().Log() {
		if tr.To == Healthy {
			cycled = true
			break
		}
	}
	if !cycled {
		t.Error("no server completed a recovery cycle back to Healthy")
	}
}

func TestHeartbeatLossTolerance(t *testing.T) {
	// A lossy link drops beats but the detector's windowed mean absorbs
	// the gaps: with p=0.2 a false suspicion needs ~3 consecutive losses
	// right when the window is tight.
	env := sim.NewEnv()
	defer env.Close()
	pool := testPool(t, env, faults.Config{Seed: 3, DropProbability: 0.2}, 1)
	c, err := Start(env, pool, pool.Injector(), Config{Seed: 3, Horizon: 50 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	env.Run()
	st := c.Stats()
	if st.DroppedBeats == 0 {
		t.Fatal("lossy run dropped no beats (drop probability not inherited?)")
	}
	if st.Beats == 0 {
		t.Fatal("lossy run delivered no beats")
	}
	if st.Suspicions != st.FalseSuspicions {
		t.Errorf("suspicions %d != false suspicions %d with no crash schedule",
			st.Suspicions, st.FalseSuspicions)
	}
}

func TestControllerDeterminism(t *testing.T) {
	run := func() (Stats, []Transition) {
		env := sim.NewEnv()
		defer env.Close()
		pool := testPool(t, env, churnConfig(19), 1)
		c, err := Start(env, pool, pool.Injector(), Config{Seed: 19, Horizon: 80 * sim.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		env.Run()
		return c.Stats(), c.Registry().Log()
	}
	s1, l1 := run()
	s2, l2 := run()
	if s1 != s2 {
		t.Errorf("stats differ across identical runs:\n%+v\n%+v", s1, s2)
	}
	if len(l1) != len(l2) {
		t.Fatalf("transition logs differ in length: %d vs %d", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Errorf("transition %d differs: %+v vs %+v", i, l1[i], l2[i])
		}
	}
	if len(l1) == 0 {
		t.Error("churn run produced no transitions at all")
	}
}
