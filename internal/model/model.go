// Package model implements the paper's slack-penalty prediction model:
//
//   - Equation 1 removes the directly injected delay from a measured
//     runtime, isolating the starvation residual;
//   - Equation 3 maps an application's kernel durations and transfer sizes
//     onto the proxy's tested matrix sizes ("matrix-size equivalents") and
//     forms the element-weighted slack penalty, rounded down (lower bound)
//     and up (upper bound);
//   - Equation 2 combines the kernel and memory penalties, weighted by the
//     fraction of application runtime spent in each.
//
// The inputs are a response Surface built from proxy sweeps (§IV-B) and an
// AppProfile extracted from an NSys-style trace (§IV-C); the output is the
// lower/upper total slack penalty of Table IV.
package model

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/gpu"
	"repro/internal/proxy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// NoSlackTime applies Equation 1: measured time minus the delay injected
// directly into the serial path (calls × perCall).
func NoSlackTime(measured sim.Duration, calls int64, perCall sim.Duration) sim.Duration {
	if calls < 0 || perCall < 0 {
		panic("model: negative slack accounting")
	}
	return measured - sim.Duration(calls)*perCall
}

// AvailabilityAdjustedPenalty extends Equation 1 to faulty runs: it
// removes only the nominal per-call slack (calls × perCall) from the
// measured runtime and expresses the remainder as a fractional penalty
// over the fault-free baseline. Timeout waits, retries, backoff and
// failover re-uploads are deliberately NOT subtracted — they are the
// availability cost a real deployment would pay, so they stay inside the
// reported penalty. At zero fault intensity the extra terms vanish and the
// result reduces to the paper's fault-free Equation-1 penalty exactly.
//
// The result is in [0, +Inf]: 0 means the corrected runtime was at or
// below the baseline (the penalty is clamped, never negative), 1 means
// the run took twice the baseline, and a full outage — a run that never
// finished, reported as an effectively unbounded measured time — drives
// it arbitrarily large. A non-positive baseline (zero availability: no
// fault-free run ever completed to calibrate against) yields +Inf rather
// than a divide-by-zero or a panic, so sweep code can aggregate the cell
// instead of crashing.
func AvailabilityAdjustedPenalty(measured sim.Duration, calls int64, perCall sim.Duration, baseline sim.Duration) float64 {
	if baseline <= 0 {
		return math.Inf(1)
	}
	corrected := NoSlackTime(measured, calls, perCall)
	penalty := float64(corrected)/float64(baseline) - 1
	if penalty < 0 {
		return 0
	}
	return penalty
}

// Surface is the proxy's slack response: for every tested (matrix size,
// thread count), penalty as a function of slack, interpolated in log-slack
// space, plus the per-size baseline kernel time and transfer size used to
// bin applications onto matrix-size equivalents (Table II).
type Surface struct {
	sizes       []int // ascending
	threads     []int // ascending
	kernelTimes map[int]sim.Duration
	curves      map[[2]int]*stats.Interpolator
}

// BuildSurface assembles a Surface from proxy sweep points. Every point's
// size must carry its baseline kernel time in its Result (Sweep provides
// this). Zero-slack points are added implicitly (penalty 0 at slack → 0 is
// the interpolators' left clamp).
func BuildSurface(points []proxy.SweepPoint) (*Surface, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("model: no sweep points")
	}
	s := &Surface{
		kernelTimes: map[int]sim.Duration{},
		curves:      map[[2]int]*stats.Interpolator{},
	}
	type seriesKey = [2]int
	xs := map[seriesKey][]float64{}
	ys := map[seriesKey][]float64{}
	sizeSet := map[int]bool{}
	threadSet := map[int]bool{}
	for _, pt := range points {
		if pt.Slack <= 0 {
			return nil, fmt.Errorf("model: sweep point with non-positive slack %v", pt.Slack)
		}
		k := seriesKey{pt.MatrixSize, pt.Threads}
		xs[k] = append(xs[k], float64(pt.Slack))
		ys[k] = append(ys[k], pt.Penalty)
		s.kernelTimes[pt.MatrixSize] = pt.Result.KernelTime
		sizeSet[pt.MatrixSize] = true
		threadSet[pt.Threads] = true
	}
	for k := range xs {
		in, err := stats.NewInterpolator(xs[k], ys[k], true)
		if err != nil {
			return nil, fmt.Errorf("model: building curve for size %d × %d threads: %w", k[0], k[1], err)
		}
		s.curves[k] = in
	}
	//cdivet:allow maporder keys are collected unordered and sorted on the next line
	for size := range sizeSet {
		s.sizes = append(s.sizes, size)
	}
	sort.Ints(s.sizes)
	//cdivet:allow maporder keys are collected unordered and sorted on the next line
	for th := range threadSet {
		s.threads = append(s.threads, th)
	}
	sort.Ints(s.threads)
	return s, nil
}

// Sizes returns the tested matrix sizes, ascending.
func (s *Surface) Sizes() []int { return append([]int(nil), s.sizes...) }

// KernelTime returns the proxy's baseline kernel time for a tested size.
func (s *Surface) KernelTime(size int) (sim.Duration, bool) {
	d, ok := s.kernelTimes[size]
	return d, ok
}

// Penalty evaluates the response surface at (size, threads, slack). The
// thread count snaps down to the nearest tested value (fewer submitters
// tolerate less slack, so rounding down is the pessimistic choice); a size
// missing at that thread count falls back to the largest tested thread
// count below it for that size.
func (s *Surface) Penalty(size, threads int, slack sim.Duration) (float64, error) {
	if _, ok := s.kernelTimes[size]; !ok {
		return 0, fmt.Errorf("model: size %d not in surface", size)
	}
	// Candidate thread counts at or below the request, descending, then
	// anything above as a last resort.
	var candidates []int
	for i := len(s.threads) - 1; i >= 0; i-- {
		if s.threads[i] <= threads {
			candidates = append(candidates, s.threads[i])
		}
	}
	for _, th := range s.threads {
		if th > threads {
			candidates = append(candidates, th)
		}
	}
	for _, th := range candidates {
		if in, ok := s.curves[[2]int{size, th}]; ok {
			p := in.At(float64(slack))
			if p < 0 {
				p = 0
			}
			return p, nil
		}
	}
	return 0, fmt.Errorf("model: no curve for size %d at any thread count", size)
}

// Binned is the outcome of mapping application samples onto matrix-size
// equivalents: per-size element counts with the ambiguity between two
// bracketing sizes resolved both ways (Table III's structure).
//
// Rounding a sample down to the smaller matrix size yields the *higher*
// penalty (small kernels tolerate less slack), so RoundedDown feeds the
// upper (pessimistic) bound and RoundedUp the lower bound — the paper's
// "rounded up or down respectively".
type Binned struct {
	// RoundedDown counts each sample at the bracketing size below it;
	// RoundedUp at the size above.
	RoundedDown map[int]int
	RoundedUp   map[int]int
	Total       int
}

// EquivalenceTolerance is the relative distance within which a sample is
// treated as an exact matrix-size equivalent rather than an ambiguous
// in-between value. In-run kernel durations wander around the proxy's
// preliminary timings (warm-up, clock state), so a hard threshold would
// push exact matches into the bracketing ambiguity and break the model's
// self-validation (§IV-D); the tested sizes sit factors of ~30 apart, so a
// 25 % band is unambiguous.
const EquivalenceTolerance = 0.25

// binBy places each sample between bracketing thresholds: thresholds[i] is
// the characteristic value of sizes[i] (both ascending).
func binBy(samples []float64, sizes []int, thresholds []float64) Binned {
	b := Binned{RoundedDown: map[int]int{}, RoundedUp: map[int]int{}}
	n := len(sizes)
	for _, v := range samples {
		b.Total++
		// Exact equivalent (within tolerance): no rounding ambiguity.
		exact := -1
		for i, th := range thresholds {
			if d := v - th; d <= EquivalenceTolerance*th && d >= -EquivalenceTolerance*th {
				exact = i
				break
			}
		}
		switch {
		case exact >= 0:
			b.RoundedDown[sizes[exact]]++
			b.RoundedUp[sizes[exact]]++
		case v <= thresholds[0]:
			b.RoundedDown[sizes[0]]++
			b.RoundedUp[sizes[0]]++
		case v >= thresholds[n-1]:
			b.RoundedDown[sizes[n-1]]++
			b.RoundedUp[sizes[n-1]]++
		default:
			i := sort.SearchFloat64s(thresholds, v)
			// thresholds[i-1] < v < thresholds[i]
			b.RoundedDown[sizes[i-1]]++
			b.RoundedUp[sizes[i]]++
		}
	}
	return b
}

// BinKernelDurations maps kernel durations (seconds) onto matrix-size
// equivalents by comparing against the proxy's per-size kernel times.
func (s *Surface) BinKernelDurations(durations []float64) Binned {
	th := make([]float64, len(s.sizes))
	for i, size := range s.sizes {
		th[i] = float64(s.kernelTimes[size])
	}
	return binBy(durations, s.sizes, th)
}

// BinTransferSizes maps transfer sizes (bytes) onto matrix-size
// equivalents by matrix footprint (Table III's MiB bins: 1, 16, 256, 4096
// for sizes 2^9..2^15).
func (s *Surface) BinTransferSizes(bytes []float64) Binned {
	th := make([]float64, len(s.sizes))
	for i, size := range s.sizes {
		th[i] = float64(gpu.MatrixBytes(size))
	}
	return binBy(bytes, s.sizes, th)
}

// spComponent applies Equation 3 to one Binned mapping: the element-
// weighted mean of per-size penalties. Sizes rounded up give the lower
// bound, sizes rounded down the (pessimistic) upper bound.
// Both sums run over sorted sizes: float addition is not associative, so
// summing in map order would make the last bits of every published penalty
// depend on Go's randomized iteration order (cdivet's taint rule traces
// exactly this value into the result tables).
func (s *Surface) spComponent(b Binned, threads int, slack sim.Duration) (lower, upper float64, err error) {
	if b.Total == 0 {
		return 0, 0, nil
	}
	for _, size := range sortedSizes(b.RoundedUp) {
		p, err := s.Penalty(size, threads, slack)
		if err != nil {
			return 0, 0, err
		}
		lower += p * float64(b.RoundedUp[size]) / float64(b.Total)
	}
	for _, size := range sortedSizes(b.RoundedDown) {
		p, err := s.Penalty(size, threads, slack)
		if err != nil {
			return 0, 0, err
		}
		upper += p * float64(b.RoundedDown[size]) / float64(b.Total)
	}
	return lower, upper, nil
}

// sortedSizes returns the bin sizes of a Binned mapping in ascending order.
func sortedSizes(m map[int]int) []int {
	sizes := make([]int, 0, len(m))
	for size := range m { //cdivet:allow maporder keys are collected unordered and sorted on the next line
		sizes = append(sizes, size)
	}
	sort.Ints(sizes)
	return sizes
}

// AppProfile is the per-application characterization extracted from a
// trace (§IV-C): what the model needs to evaluate Equations 2 and 3.
type AppProfile struct {
	Label string
	// KernelFraction and MemcpyFraction are the %Runtime terms of Eq. 2.
	KernelFraction float64
	MemcpyFraction float64
	// KernelDurations in seconds and TransferBytes in bytes feed Eq. 3.
	KernelDurations []float64
	TransferBytes   []float64
	// Parallelism is the effective number of parallel kernel submitters:
	// 8 for the profiled LAMMPS configuration (8 ranks), 4 for CosmoFlow
	// (launch takes ~1/7 of each kernel sequence; the paper adopts a
	// pessimistic equivalent parallelism of 4).
	Parallelism int
}

// ProfileFromTrace builds an AppProfile from a recording.
func ProfileFromTrace(tr *trace.Trace, parallelism int) AppProfile {
	if parallelism < 1 {
		parallelism = 1
	}
	return AppProfile{
		Label:           tr.Label,
		KernelFraction:  tr.KernelFraction(),
		MemcpyFraction:  tr.MemcpyFraction(),
		KernelDurations: tr.KernelDurations(),
		TransferBytes:   tr.MemcpySizes(),
		Parallelism:     parallelism,
	}
}

// Prediction is one Table IV entry: the lower and upper total slack
// penalty for an application at one slack value.
type Prediction struct {
	Slack sim.Duration
	// Lower and Upper bound the total penalty (fraction of runtime).
	Lower, Upper float64
	// Kernel and memory components (lower/upper), for diagnostics.
	KernelLower, KernelUpper float64
	MemoryLower, MemoryUpper float64
}

// Predict evaluates Equations 2 and 3 for an application at one slack
// value.
func (s *Surface) Predict(app AppProfile, slack sim.Duration) (Prediction, error) {
	if slack < 0 {
		return Prediction{}, fmt.Errorf("model: negative slack %v", slack)
	}
	kb := s.BinKernelDurations(app.KernelDurations)
	mb := s.BinTransferSizes(app.TransferBytes)
	kl, ku, err := s.spComponent(kb, app.Parallelism, slack)
	if err != nil {
		return Prediction{}, err
	}
	ml, mu, err := s.spComponent(mb, app.Parallelism, slack)
	if err != nil {
		return Prediction{}, err
	}
	return Prediction{
		Slack:       slack,
		Lower:       app.KernelFraction*kl + app.MemcpyFraction*ml,
		Upper:       app.KernelFraction*ku + app.MemcpyFraction*mu,
		KernelLower: kl, KernelUpper: ku,
		MemoryLower: ml, MemoryUpper: mu,
	}, nil
}

// PredictSweep evaluates Predict over several slack values (a Table IV
// row set).
func (s *Surface) PredictSweep(app AppProfile, slacks []sim.Duration) ([]Prediction, error) {
	out := make([]Prediction, 0, len(slacks))
	for _, sl := range slacks {
		p, err := s.Predict(app, sl)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// PaperSlacks returns the slack values Table IV reports.
func PaperSlacks() []sim.Duration {
	return []sim.Duration{
		1 * sim.Microsecond,
		10 * sim.Microsecond,
		100 * sim.Microsecond,
		1 * sim.Millisecond,
		10 * sim.Millisecond,
	}
}

// TableIIIThresholdsMiB returns the paper's transfer-size bin thresholds
// in MiB — the matrix footprints of the tested sizes.
func TableIIIThresholdsMiB(sizes []int) []float64 {
	out := make([]float64, len(sizes))
	for i, n := range sizes {
		out[i] = float64(gpu.MatrixBytes(n)) / (1 << 20)
	}
	return out
}
