// Package proxy implements the paper's slack proxy application (§III-C):
// a matrix-multiplication workload that emulates how applications use CUDA
// so that slack can be injected under controlled conditions.
//
// The proxy multiplies square float32 matrices (A×B=C). Each OpenMP-style
// thread owns private copies of the matrices on the device and runs the
// main compute loop serially: copy A and B to the GPU, compute C, copy C
// back — five slack-delayed CUDA calls per iteration (three transfers, the
// kernel, and a host-device synchronization). A preliminary kernel timing
// sizes the loop to ~30 s of raw GPU compute, clamped to [5, 1000]
// iterations, exactly as the paper describes.
package proxy

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/slack"
	"repro/internal/trace"
)

// Paper parameters (§III-C).
const (
	// TargetComputeTime is the raw GPU compute the iteration count aims for.
	TargetComputeTime = 30 * sim.Second
	// MinIters and MaxIters bound the iteration count; small kernels have
	// proportionally larger runtime variation, hence the ceiling.
	MinIters = 5
	MaxIters = 1000
	// CallsPerIteration is Equation 1's num_CUDAcalls per loop iteration:
	// 3 matrix transfers + kernel + host-device synchronization.
	CallsPerIteration = 5
)

// PaperSizes returns the matrix sizes the paper sweeps: 2^15 down to 2^9
// in multiples of 2^2.
func PaperSizes() []int { return []int{1 << 9, 1 << 11, 1 << 13, 1 << 15} }

// PaperThreads returns the OpenMP thread counts the paper tests.
func PaperThreads() []int { return []int{1, 2, 4, 8} }

// ErrDoesNotFit reports that the requested configuration overflows device
// memory (each thread holds private copies of all three matrices; the
// paper excludes 2^15 at ≥4 threads for this reason: 3×4 GiB×4 > 40 GiB).
var ErrDoesNotFit = errors.New("proxy: matrices do not fit in device memory")

// Config describes one proxy run.
type Config struct {
	// MatrixSize is the square matrix dimension n.
	MatrixSize int
	// Threads is the number of OpenMP-style submitter threads (≥ 1).
	Threads int
	// Slack is the per-CUDA-call delay to inject (0 = baseline).
	Slack sim.Duration
	// Iters overrides the 30-second sizing when positive (tests).
	Iters int
	// Spec selects the device; zero value selects gpu.A100().
	Spec gpu.Spec
	// Record attaches a tracer and returns the trace in the result.
	Record bool
	// ThreadOffset staggers each thread's start by its index × this
	// duration. The paper tested launch offsets and found no correlation
	// with the slack penalty; the knob exists to reproduce that check.
	ThreadOffset sim.Duration
	// IterSpacing inserts an extra host delay between loop iterations —
	// the paper's second no-correlation experiment.
	IterSpacing sim.Duration
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Spec.Name == "" {
		c.Spec = gpu.A100()
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	return c
}

func (c Config) validate() error {
	if c.MatrixSize <= 0 {
		return fmt.Errorf("proxy: matrix size %d", c.MatrixSize)
	}
	if c.Threads < 1 {
		return fmt.Errorf("proxy: thread count %d", c.Threads)
	}
	if c.Slack < 0 {
		return fmt.Errorf("proxy: negative slack %v", c.Slack)
	}
	if c.ThreadOffset < 0 || c.IterSpacing < 0 {
		return fmt.Errorf("proxy: negative offset/spacing")
	}
	return nil
}

// Result reports one proxy run.
type Result struct {
	MatrixSize int
	Threads    int
	Slack      sim.Duration

	// KernelTime is the preliminary single-kernel baseline timing.
	KernelTime sim.Duration
	// Iters is the per-thread main-loop iteration count N.
	Iters int
	// LoopTime is the measured wall time of the main compute loop.
	LoopTime sim.Duration
	// CorrectedTime is Equation 1 applied to LoopTime: the direct injected
	// delay (CallsPerIteration × Iters × Slack on each thread's serial
	// path) removed, leaving only starvation effects.
	CorrectedTime sim.Duration
	// DelayedCalls counts slack-delayed API calls across all threads.
	DelayedCalls int64
	// Trace is the recording, when Config.Record was set.
	Trace *trace.Trace
}

// MatrixBytes returns the per-matrix device footprint.
func (r Result) MatrixBytes() int64 { return gpu.MatrixBytes(r.MatrixSize) }

// Run executes one proxy configuration on a fresh simulated node and
// returns its measurements.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	need := 3 * gpu.MatrixBytes(cfg.MatrixSize) * int64(cfg.Threads)
	if need > cfg.Spec.MemoryBytes {
		return Result{}, fmt.Errorf("%w: need %d bytes for %d threads, have %d",
			ErrDoesNotFit, need, cfg.Threads, cfg.Spec.MemoryBytes)
	}

	env := sim.NewEnv()
	defer env.Close()
	dev, err := gpu.NewDevice(env, cfg.Spec)
	if err != nil {
		return Result{}, err
	}
	ctx := cuda.NewContext(dev, cuda.Config{})

	var rec *trace.Recorder
	if cfg.Record {
		rec = trace.NewRecorder("proxy-n" + strconv.Itoa(cfg.MatrixSize) + "-t" + strconv.Itoa(cfg.Threads))
		dev.Listen(rec)
		ctx.Interpose(rec)
	}
	inj := slack.New(cfg.Slack)
	ctx.Interpose(inj)

	res := Result{MatrixSize: cfg.MatrixSize, Threads: cfg.Threads, Slack: cfg.Slack}
	kernel := gpu.MatMul(cfg.MatrixSize)
	matBytes := gpu.MatrixBytes(cfg.MatrixSize)

	// Phase 1: preliminary kernel timing, slack disabled (it calibrates
	// work, it is not part of the measured loop).
	inj.SetAmount(0)
	var timingErr error
	env.Spawn("prelim", func(p *sim.Proc) {
		a, err := ctx.Malloc(p, matBytes)
		if err != nil {
			timingErr = err
			return
		}
		b, err := ctx.Malloc(p, matBytes)
		if err != nil {
			timingErr = err
			return
		}
		if err := ctx.MemcpyH2D(p, a, matBytes); err != nil {
			timingErr = err
			return
		}
		if err := ctx.MemcpyH2D(p, b, matBytes); err != nil {
			timingErr = err
			return
		}
		s := ctx.StreamCreate(p)
		startEv := ctx.EventRecord(p, s)
		ctx.Launch(p, kernel, s)
		endEv := ctx.EventRecord(p, s)
		ctx.EventSynchronize(p, startEv)
		ctx.EventSynchronize(p, endEv)
		d, err := cuda.ElapsedTime(startEv, endEv)
		if err != nil {
			timingErr = err
			return
		}
		res.KernelTime = d
		ctx.StreamDestroy(p, s)
		ctx.MustFree(p, a)
		ctx.MustFree(p, b)
	})
	env.Run()
	if timingErr != nil {
		return Result{}, timingErr
	}

	// Phase 2: size the loop for ~30 s of raw GPU compute.
	res.Iters = cfg.Iters
	if res.Iters <= 0 {
		n := int(float64(TargetComputeTime) / float64(res.KernelTime))
		if n < MinIters {
			n = MinIters
		}
		if n > MaxIters {
			n = MaxIters
		}
		res.Iters = n
	}

	// Phase 3: the main compute loop, slack enabled, one process per
	// OpenMP thread, each with private device matrices.
	inj.SetAmount(cfg.Slack)
	inj.Reset()
	if rec != nil {
		rec.Start(env)
	}
	loopStart := env.Now()
	//cdivet:allow escape one error collector per Run call, sized at setup
	runErrs := make([]error, 0, cfg.Threads)
	for t := 0; t < cfg.Threads; t++ {
		offset := sim.Duration(t) * cfg.ThreadOffset
		// One shard per OpenMP thread: each thread's sleep/wake traffic
		// stays in its own queue instead of all threads contending on one.
		//cdivet:shard(proxy.omp)
		env.NewShard().SpawnAt(offset, "omp"+strconv.Itoa(t), func(p *sim.Proc) {
			if err := threadLoop(p, ctx, kernel, matBytes, res.Iters, cfg.IterSpacing); err != nil {
				runErrs = append(runErrs, err)
			}
		})
	}
	env.Run()
	if len(runErrs) > 0 {
		return Result{}, runErrs[0]
	}
	res.LoopTime = env.Now().Sub(loopStart)
	if rec != nil {
		rec.Stop(env)
		res.Trace = rec.Trace()
	}
	res.DelayedCalls = inj.DelayedCalls()

	// Equation 1: remove the direct injected delay from the measured
	// runtime. Threads run concurrently, so the serial path carries
	// CallsPerIteration×Iters delays (per thread), not the total count.
	direct := sim.Duration(CallsPerIteration*res.Iters) * cfg.Slack
	res.CorrectedTime = res.LoopTime - direct
	return res, nil
}

// threadLoop is one OpenMP thread's body: allocate private matrices, run
// the serial compute loop, free.
func threadLoop(p *sim.Proc, ctx *cuda.Context, kernel gpu.Kernel, matBytes int64, iters int, spacing sim.Duration) error {
	a, err := ctx.Malloc(p, matBytes)
	if err != nil {
		return err
	}
	b, err := ctx.Malloc(p, matBytes)
	if err != nil {
		return err
	}
	c, err := ctx.Malloc(p, matBytes)
	if err != nil {
		return err
	}
	for i := 0; i < iters; i++ {
		if spacing > 0 && i > 0 {
			p.Sleep(spacing)
		}
		if err := ctx.MemcpyH2D(p, a, matBytes); err != nil {
			return err
		}
		if err := ctx.MemcpyH2D(p, b, matBytes); err != nil {
			return err
		}
		ctx.LaunchSync(p, kernel, nil)
		ctx.DeviceSynchronize(p)
		if err := ctx.MemcpyD2H(p, c, matBytes); err != nil {
			return err
		}
	}
	if err := ctx.Free(p, a); err != nil {
		return err
	}
	if err := ctx.Free(p, b); err != nil {
		return err
	}
	return ctx.Free(p, c)
}

// Penalty is the normalized slack penalty of a run against its zero-slack
// baseline: corrected/baseline − 1 (0 = no starvation effect; the paper's
// Figure 3 plots corrected runtime normalized to the no-slack case).
//
// With multiple threads a saturated device hides part of the injected
// delay behind other threads' work, so Equation 1's per-thread subtraction
// can overshoot and produce a small negative residual; since the study
// reads the residual as a starvation *cost*, Penalty clamps at zero (the
// pessimistic reading).
func Penalty(baseline, run Result) float64 {
	if baseline.LoopTime <= 0 {
		return 0
	}
	p := float64(run.CorrectedTime)/float64(baseline.LoopTime) - 1
	if p < 0 {
		return 0
	}
	return p
}

// SweepPoint is one (size, threads, slack) measurement.
type SweepPoint struct {
	MatrixSize int
	Threads    int
	Slack      sim.Duration
	Result     Result
	// Penalty is the Equation-1-corrected normalized runtime minus 1.
	Penalty float64
}

// Sweep runs the full proxy grid: for each size and thread count, a
// zero-slack baseline plus one run per slack value. Configurations that do
// not fit in device memory are skipped (as the paper excludes 2^15 at ≥4
// threads). Iters, when positive, overrides the 30-second sizing to keep
// test and bench runtimes bounded.
func Sweep(sizes, threads []int, slacks []sim.Duration, iters int) ([]SweepPoint, error) {
	return SweepParallel(sizes, threads, slacks, iters, 0)
}

// SweepParallel is Sweep with an explicit worker bound: the (size,
// threads) combinations fan out across jobs workers (non-positive =
// GOMAXPROCS, 1 = the exact serial path), each combination running its
// baseline and slack series inside a private simulation. Results merge in
// grid order, so output is byte-identical for every jobs value.
func SweepParallel(sizes, threads []int, slacks []sim.Duration, iters, jobs int) ([]SweepPoint, error) {
	type combo struct{ n, t int }
	combos := make([]combo, 0, len(sizes)*len(threads))
	for _, n := range sizes {
		for _, t := range threads {
			combos = append(combos, combo{n, t})
		}
	}
	groups, err := runner.Map(jobs, len(combos), func(i int) ([]SweepPoint, error) {
		n, t := combos[i].n, combos[i].t
		base, err := Run(Config{MatrixSize: n, Threads: t, Iters: iters})
		if errors.Is(err, ErrDoesNotFit) {
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		var pts []SweepPoint
		for _, s := range slacks {
			r, err := Run(Config{MatrixSize: n, Threads: t, Slack: s, Iters: iters})
			if err != nil {
				return nil, err
			}
			pts = append(pts, SweepPoint{
				MatrixSize: n,
				Threads:    t,
				Slack:      s,
				Result:     r,
				Penalty:    Penalty(base, r),
			})
		}
		return pts, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, 0, len(slacks)*len(combos))
	for _, g := range groups {
		out = append(out, g...)
	}
	return out, nil
}
