// Package lammps implements a miniature of the LAMMPS Lennard-Jones (LJ)
// benchmark the paper profiles: the melt/LJ liquid in reduced units
// (fcc lattice at ρ*=0.8442, T*=1.44, r_c=2.5σ — the bench/in.lj defaults).
//
// The package has two modes:
//
//   - Numeric mode (this file): a real molecular-dynamics engine — fcc
//     initialization, cell-list neighbor search, shifted LJ forces,
//     velocity-Verlet integration — used to validate physics invariants
//     (momentum and energy conservation, pair symmetry) at small sizes.
//
//   - Performance mode (perf.go): the same algorithm driven through the
//     simulated CUDA/GPU/MPI substrates with operation-count cost models,
//     reproducing the paper's strong-scaling and trace experiments at
//     production box sizes (millions of atoms) in virtual time.
package lammps

import (
	"fmt"
	"math"
	"math/rand"
)

// Reduced-unit benchmark constants (LAMMPS bench/in.lj).
const (
	// Density is the reduced number density ρ*.
	Density = 0.8442
	// InitialTemp is the reduced initial temperature T*.
	InitialTemp = 1.44
	// Cutoff is the LJ interaction cutoff in σ.
	Cutoff = 2.5
	// DefaultTimestep is the reduced integration step.
	DefaultTimestep = 0.005
	// AtomsPerCell is the fcc basis size: 4 atoms per cubic lattice cell.
	AtomsPerCell = 4
)

// Atoms returns the atom count for a given box size in the paper's units:
// box size b is b³ fcc lattice cells of 4 atoms (box 20 = 32 000 atoms,
// box 120 = 6 912 000; the paper's Table I agrees except for a typo at
// box 60, printed as 288k where 4·60³ = 864k).
func Atoms(boxSize int) int {
	if boxSize <= 0 {
		panic("lammps: box size must be positive")
	}
	return AtomsPerCell * boxSize * boxSize * boxSize
}

// Vec3 is a 3-vector in reduced units.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + u.
func (v Vec3) Add(u Vec3) Vec3 { return Vec3{v.X + u.X, v.Y + u.Y, v.Z + u.Z} }

// Sub returns v − u.
func (v Vec3) Sub(u Vec3) Vec3 { return Vec3{v.X - u.X, v.Y - u.Y, v.Z - u.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns v·u.
func (v Vec3) Dot(u Vec3) float64 { return v.X*u.X + v.Y*u.Y + v.Z*u.Z }

// System is the numeric-mode simulation state.
type System struct {
	// N is the atom count; L the cubic box edge length.
	N int
	L float64

	Pos   []Vec3
	Vel   []Vec3
	Force []Vec3

	// Timestep is the integration step (reduced time units).
	Timestep float64

	cutoff  float64
	cutSq   float64
	eShift  float64 // potential value at the cutoff (shifted LJ)
	cells   [][]int
	nCells  int // per edge
	cellLen float64

	// StepsRun counts completed integration steps.
	StepsRun int
}

// NewSystem builds an fcc lattice of boxSize³ cells at the benchmark
// density and draws velocities for the benchmark temperature using the
// seeded generator (net momentum removed).
func NewSystem(boxSize int, seed int64) *System {
	n := Atoms(boxSize)
	// Lattice constant from density: 4 atoms per a³.
	a := math.Cbrt(AtomsPerCell / Density)
	l := a * float64(boxSize)
	s := &System{
		N:        n,
		L:        l,
		Pos:      make([]Vec3, 0, n),
		Vel:      make([]Vec3, n),
		Force:    make([]Vec3, n),
		Timestep: DefaultTimestep,
		cutoff:   Cutoff,
		cutSq:    Cutoff * Cutoff,
	}
	// Shifted potential: U(r) − U(rc), removing the discontinuity so the
	// conservation tests are clean. (LAMMPS lj/cut truncates without
	// shifting; the dynamics differ only by a constant per pair.)
	rc2 := 1 / s.cutSq
	rc6 := rc2 * rc2 * rc2
	s.eShift = 4 * (rc6*rc6 - rc6)

	// fcc basis at each lattice point.
	basis := []Vec3{{0, 0, 0}, {0.5, 0.5, 0}, {0.5, 0, 0.5}, {0, 0.5, 0.5}}
	for ix := 0; ix < boxSize; ix++ {
		for iy := 0; iy < boxSize; iy++ {
			for iz := 0; iz < boxSize; iz++ {
				for _, b := range basis {
					s.Pos = append(s.Pos, Vec3{
						X: (float64(ix) + b.X) * a,
						Y: (float64(iy) + b.Y) * a,
						Z: (float64(iz) + b.Z) * a,
					})
				}
			}
		}
	}

	// Maxwell velocities at T*, zero total momentum, exact rescale to T*.
	rng := rand.New(rand.NewSource(seed))
	var sum Vec3
	for i := range s.Vel {
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		s.Vel[i] = v
		sum = sum.Add(v)
	}
	mean := sum.Scale(1 / float64(n))
	var ke float64
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Sub(mean)
		ke += s.Vel[i].Dot(s.Vel[i])
	}
	// Kinetic temperature: T = Σ m v² / (3N) in reduced units (m = 1,
	// ignoring the 3 constrained momentum DOF at these sizes LAMMPS uses
	// 3N−3; we match LAMMPS).
	dof := float64(3*n - 3)
	tNow := ke / dof
	scale := math.Sqrt(InitialTemp / tNow)
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Scale(scale)
	}

	s.buildCells()
	s.ComputeForces()
	return s
}

// wrap maps a coordinate into [0, L).
func (s *System) wrap(x float64) float64 {
	x = math.Mod(x, s.L)
	if x < 0 {
		x += s.L
	}
	return x
}

// minImage returns the minimum-image displacement component.
func (s *System) minImage(d float64) float64 {
	if d > s.L/2 {
		d -= s.L
	} else if d < -s.L/2 {
		d += s.L
	}
	return d
}

// buildCells sorts atoms into the linked-cell grid.
func (s *System) buildCells() {
	n := int(s.L / s.cutoff)
	if n < 1 {
		n = 1
	}
	s.nCells = n
	s.cellLen = s.L / float64(n)
	want := n * n * n
	if cap(s.cells) < want {
		s.cells = make([][]int, want)
	}
	s.cells = s.cells[:want]
	for i := range s.cells {
		s.cells[i] = s.cells[i][:0]
	}
	for i, p := range s.Pos {
		s.cells[s.cellIndex(p)] = append(s.cells[s.cellIndex(p)], i)
	}
}

// cellIndex returns the cell holding position p.
func (s *System) cellIndex(p Vec3) int {
	cx := int(s.wrap(p.X) / s.cellLen)
	cy := int(s.wrap(p.Y) / s.cellLen)
	cz := int(s.wrap(p.Z) / s.cellLen)
	if cx >= s.nCells {
		cx = s.nCells - 1
	}
	if cy >= s.nCells {
		cy = s.nCells - 1
	}
	if cz >= s.nCells {
		cz = s.nCells - 1
	}
	return (cx*s.nCells+cy)*s.nCells + cz
}

// pairForce returns the LJ force on atom i from the displacement d = ri−rj
// (force magnitude over r along d) and the shifted pair energy.
func (s *System) pairForce(d Vec3) (Vec3, float64, bool) {
	r2 := d.Dot(d)
	if r2 >= s.cutSq || r2 == 0 {
		return Vec3{}, 0, false
	}
	inv2 := 1 / r2
	inv6 := inv2 * inv2 * inv2
	// U = 4(r⁻¹² − r⁻⁶); F·r̂ = 24(2r⁻¹² − r⁻⁶)/r.
	fOverR := 24 * (2*inv6*inv6 - inv6) * inv2
	e := 4*(inv6*inv6-inv6) - s.eShift
	return d.Scale(fOverR), e, true
}

// ComputeForces recomputes all forces and returns the potential energy.
// This is the work the GPU force kernel performs in production.
func (s *System) ComputeForces() float64 {
	for i := range s.Force {
		s.Force[i] = Vec3{}
	}
	if s.nCells < 3 {
		// Cell offsets alias on grids under 3 cells per edge; fall back to
		// the direct pairwise sum (tiny systems only).
		return s.forcesDirect()
	}
	var pe float64
	nc := s.nCells
	for cx := 0; cx < nc; cx++ {
		for cy := 0; cy < nc; cy++ {
			for cz := 0; cz < nc; cz++ {
				home := (cx*nc+cy)*nc + cz
				for _, i := range s.cells[home] {
					pi := s.Pos[i]
					// Half the neighbor stencil (13 + home) with i<j in
					// the home cell avoids double counting.
					for _, off := range halfStencil {
						ncx := (cx + off[0] + nc) % nc
						ncy := (cy + off[1] + nc) % nc
						ncz := (cz + off[2] + nc) % nc
						other := (ncx*nc+ncy)*nc + ncz
						for _, j := range s.cells[other] {
							if other == home && j <= i {
								continue
							}
							d := Vec3{
								s.minImage(pi.X - s.Pos[j].X),
								s.minImage(pi.Y - s.Pos[j].Y),
								s.minImage(pi.Z - s.Pos[j].Z),
							}
							if f, e, ok := s.pairForce(d); ok {
								s.Force[i] = s.Force[i].Add(f)
								s.Force[j] = s.Force[j].Sub(f)
								pe += e
							}
						}
					}
				}
			}
		}
	}
	return pe
}

// forcesDirect is the O(N²) minimum-image fallback used when the box is
// too small for the cell grid.
func (s *System) forcesDirect() float64 {
	var pe float64
	for i := 0; i < s.N; i++ {
		for j := i + 1; j < s.N; j++ {
			d := Vec3{
				s.minImage(s.Pos[i].X - s.Pos[j].X),
				s.minImage(s.Pos[i].Y - s.Pos[j].Y),
				s.minImage(s.Pos[i].Z - s.Pos[j].Z),
			}
			if f, e, ok := s.pairForce(d); ok {
				s.Force[i] = s.Force[i].Add(f)
				s.Force[j] = s.Force[j].Sub(f)
				pe += e
			}
		}
	}
	return pe
}

// halfStencil is the home cell plus 13 of the 26 neighbors: together with
// the i<j rule in the home cell, each pair is visited exactly once. Valid
// when the cell grid is at least 3 cells per edge; ComputeForces falls
// back to the direct sum on smaller grids.
var halfStencil = [][3]int{
	{0, 0, 0},
	{1, 0, 0}, {1, 1, 0}, {1, -1, 0}, {0, 1, 0},
	{1, 0, 1}, {1, 1, 1}, {1, -1, 1}, {0, 1, 1},
	{1, 0, -1}, {1, 1, -1}, {1, -1, -1}, {0, 1, -1},
	{0, 0, 1},
}

// Step advances the system one velocity-Verlet step and returns the
// potential energy after the step.
func (s *System) Step() float64 {
	dt := s.Timestep
	half := dt / 2
	for i := range s.Pos {
		s.Vel[i] = s.Vel[i].Add(s.Force[i].Scale(half))
		s.Pos[i] = s.Pos[i].Add(s.Vel[i].Scale(dt))
		s.Pos[i] = Vec3{s.wrap(s.Pos[i].X), s.wrap(s.Pos[i].Y), s.wrap(s.Pos[i].Z)}
	}
	s.buildCells()
	pe := s.ComputeForces()
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Add(s.Force[i].Scale(half))
	}
	s.StepsRun++
	return pe
}

// Run advances n steps.
func (s *System) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// KineticEnergy returns Σ ½mv².
func (s *System) KineticEnergy() float64 {
	var ke float64
	for _, v := range s.Vel {
		ke += v.Dot(v)
	}
	return ke / 2
}

// PotentialEnergy recomputes and returns the shifted LJ potential energy.
func (s *System) PotentialEnergy() float64 {
	f := append([]Vec3(nil), s.Force...)
	pe := s.ComputeForces()
	copy(s.Force, f)
	return pe
}

// TotalEnergy returns kinetic + potential energy.
func (s *System) TotalEnergy() float64 { return s.KineticEnergy() + s.PotentialEnergy() }

// Temperature returns the instantaneous reduced temperature.
func (s *System) Temperature() float64 {
	return 2 * s.KineticEnergy() / float64(3*s.N-3)
}

// Momentum returns the total momentum vector.
func (s *System) Momentum() Vec3 {
	var m Vec3
	for _, v := range s.Vel {
		m = m.Add(v)
	}
	return m
}

// AverageNeighbors returns the mean number of atoms within the cutoff of
// each atom — the neighbor count the performance cost model uses. At the
// benchmark density it is ≈ ρ·4πr³/3 ≈ 55 (LAMMPS's half list holds ~27).
func (s *System) AverageNeighbors() float64 {
	pairs := 0
	for i := 0; i < s.N; i++ {
		for j := i + 1; j < s.N; j++ {
			d := Vec3{
				s.minImage(s.Pos[i].X - s.Pos[j].X),
				s.minImage(s.Pos[i].Y - s.Pos[j].Y),
				s.minImage(s.Pos[i].Z - s.Pos[j].Z),
			}
			if d.Dot(d) < s.cutSq {
				pairs++
			}
		}
	}
	return 2 * float64(pairs) / float64(s.N)
}

// String summarizes the system.
func (s *System) String() string {
	return fmt.Sprintf("lammps.System{N: %d, L: %.3f, steps: %d, T: %.3f}",
		s.N, s.L, s.StepsRun, s.Temperature())
}
