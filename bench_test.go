package cdi

// Benchmarks regenerating every table and figure in the paper's evaluation
// section (quick parameters preserving all reported shapes), plus ablation
// benchmarks for the design choices DESIGN.md calls out and microbenchmarks
// of the substrates. Run with:
//
//	go test -bench=. -benchmem
import (
	"runtime"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cosmoflow"
	"repro/internal/cuda"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/health"
	"repro/internal/lammps"
	"repro/internal/mpi"
	"repro/internal/pool"
	"repro/internal/proxy"
	"repro/internal/remoting"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/slack"
)

// --- One benchmark per paper table/figure ---

func BenchmarkTable1LAMMPSBaselines(b *testing.B) {
	opts := experiments.Quick()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFigure2LAMMPSStrongScaling(b *testing.B) {
	opts := experiments.Quick()
	opts.LAMMPSSteps = 20
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure2(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 5 {
			b.Fatalf("series = %d", len(series))
		}
	}
}

func BenchmarkLAMMPSThreadScaling(b *testing.B) {
	opts := experiments.Quick()
	opts.LAMMPSSteps = 20
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ThreadScaling(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCosmoFlowCPUScaling(b *testing.B) {
	opts := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CosmoFlowCPU(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2ProxyBaselines(b *testing.B) {
	opts := experiments.Quick()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFigure3SlackSweep(b *testing.B) {
	opts := experiments.Quick()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure3(opts, []int{1, 8})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("no sweep points")
		}
	}
}

// traceOnce caches the profiling traces: Figures 4-5 and Tables III-IV
// analyze the same recordings, as the paper does.
var cachedTraces *experiments.Traces

func getTraces(b *testing.B) experiments.Traces {
	b.Helper()
	if cachedTraces == nil {
		tr, err := experiments.CollectTraces(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		cachedTraces = &tr
	}
	return *cachedTraces
}

func BenchmarkFigure4KernelDurations(b *testing.B) {
	tr := getTraces(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.RenderFigure4(tr) == "" {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure5MemcpySizes(b *testing.B) {
	tr := getTraces(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.RenderFigure5(tr) == "" {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkTable3TransferBinning(b *testing.B) {
	tr := getTraces(b)
	blocks, surface, err := experiments.Table4(experiments.Quick(), tr)
	if err != nil {
		b.Fatal(err)
	}
	_ = blocks
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(tr, surface)
		if len(rows) != 2 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkTable4SlackPenalty(b *testing.B) {
	tr := getTraces(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blocks, _, err := experiments.Table4(experiments.Quick(), tr)
		if err != nil {
			b.Fatal(err)
		}
		if len(blocks) != 2 {
			b.Fatalf("blocks = %d", len(blocks))
		}
	}
}

func BenchmarkModelSelfValidation(b *testing.B) {
	opts := experiments.Quick()
	for i := 0; i < b.N; i++ {
		v, err := experiments.Validate(opts)
		if err != nil {
			b.Fatal(err)
		}
		if v.Upper < v.Lower {
			b.Fatal("bounds inverted")
		}
	}
}

func BenchmarkComposeScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := experiments.Compose()
		if err != nil {
			b.Fatal(err)
		}
		if len(c.CDI) != 2 {
			b.Fatal("scenario incomplete")
		}
	}
}

// --- Ablations: the design choices behind the reproduction ---

// BenchmarkAblationWarmupModel isolates the GPU starvation model: with
// WarmupRate zeroed, slack produces no residual penalty after Equation 1 —
// demonstrating that the warm-up mechanism is what carries the paper's
// Figure 3 effect.
func BenchmarkAblationWarmupModel(b *testing.B) {
	run := func(b *testing.B, spec gpu.Spec) float64 {
		base, err := proxy.Run(proxy.Config{MatrixSize: 1 << 11, Iters: 20, Spec: spec})
		if err != nil {
			b.Fatal(err)
		}
		r, err := proxy.Run(proxy.Config{MatrixSize: 1 << 11, Iters: 20, Spec: spec, Slack: 10 * sim.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		return proxy.Penalty(base, r)
	}
	b.Run("warmup=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if p := run(b, gpu.A100()); p <= 0.01 {
				b.Fatalf("no penalty with warm-up on: %v", p)
			}
		}
	})
	b.Run("warmup=off", func(b *testing.B) {
		spec := gpu.A100()
		spec.WarmupRate = 0
		for i := 0; i < b.N; i++ {
			if p := run(b, spec); p > 0.01 {
				b.Fatalf("penalty without warm-up: %v", p)
			}
		}
	})
}

// BenchmarkAblationContextSwitch isolates the multi-process context-switch
// cost: without it, small-box LAMMPS stops degrading under many ranks.
func BenchmarkAblationContextSwitch(b *testing.B) {
	run := func(b *testing.B, ctxSwitch sim.Duration) float64 {
		spec := gpu.A100()
		spec.ContextSwitch = ctxSwitch
		base, err := lammps.RunPerf(lammps.PerfConfig{BoxSize: 20, Procs: 1, Steps: 20, Spec: spec})
		if err != nil {
			b.Fatal(err)
		}
		r, err := lammps.RunPerf(lammps.PerfConfig{BoxSize: 20, Procs: 24, Steps: 20, Spec: spec})
		if err != nil {
			b.Fatal(err)
		}
		return float64(r.StepTime) / float64(base.StepTime)
	}
	b.Run("ctxswitch=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if norm := run(b, lammps.CtxSwitch); norm < 5 {
				b.Fatalf("box 20 did not degrade with switching on: %v", norm)
			}
		}
	})
	b.Run("ctxswitch=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if norm := run(b, 0); norm > 5 {
				b.Fatalf("box 20 degraded %vx without switch cost", norm)
			}
		}
	})
}

// BenchmarkAblationThreads shows the latency-hiding effect directly: the
// same slack, radically different penalty depending on submitter count.
func BenchmarkAblationThreads(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(benchName("threads", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base, err := proxy.Run(proxy.Config{MatrixSize: 1 << 9, Threads: threads, Iters: 30})
				if err != nil {
					b.Fatal(err)
				}
				r, err := proxy.Run(proxy.Config{MatrixSize: 1 << 9, Threads: threads, Iters: 30, Slack: 200 * sim.Microsecond})
				if err != nil {
					b.Fatal(err)
				}
				_ = proxy.Penalty(base, r)
			}
		})
	}
}

// --- Substrate microbenchmarks ---

// BenchmarkSimEngineEvents measures the engine's per-event dispatch cost on
// the path every experiment actually runs: one RunUntil spanning b.N timer
// events. A ticker that re-sleeps inside the run exercises the full
// schedule→queue→pop→deliver cycle per event, including the baton handoff's
// self-wake fast path (the Step loop it replaced forced two goroutine
// switches per event, measuring the driver round-trip instead of dispatch).
func BenchmarkSimEngineEvents(b *testing.B) {
	env := sim.NewEnv()
	defer env.Close()
	env.Spawn("ticker", func(p *sim.Proc) {
		for {
			p.Sleep(1 * sim.Microsecond)
		}
	})
	b.ResetTimer()
	env.RunUntil(sim.Time(0).Add(sim.Duration(b.N) * sim.Microsecond))
}

func BenchmarkProxyIteration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := proxy.Run(proxy.Config{MatrixSize: 1 << 9, Iters: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLAMMPSNumericStep(b *testing.B) {
	s := lammps.NewSystem(5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkLAMMPSPerfStep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lammps.RunPerf(lammps.PerfConfig{BoxSize: 60, Procs: 8, Steps: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMPIAllreduce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		w := mpi.NewWorld(env, 8, mpi.IntraNode())
		w.SpawnAll(func(r *mpi.Rank) {
			v := make([]float64, 1024)
			r.Allreduce(v, mpi.OpSum)
		})
		env.Run()
		env.Close()
	}
}

func benchName(prefix string, n int) string {
	const digits = "0123456789"
	if n < 10 {
		return prefix + "=" + digits[n:n+1]
	}
	return prefix + "=" + digits[n/10:n/10+1] + digits[n%10:n%10+1]
}

// --- Extension benchmarks ---

func BenchmarkExtensionAppValidation(b *testing.B) {
	opts := experiments.Quick()
	opts.LAMMPSSteps = 15
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AppSlackValidation(opts, []sim.Duration{100 * sim.Microsecond})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkExtensionCongestion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Congestion(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 6 {
			b.Fatal("incomplete sweep")
		}
	}
}

func BenchmarkExtensionRemoting(b *testing.B) {
	opts := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RemotingComparison(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Throughput(experiments.Quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionCoupling(b *testing.B) {
	opts := experiments.Quick()
	opts.CosmoSamples = 16
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ChassisCoupling(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionPreload(b *testing.B) {
	opts := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PreloadComparison(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLAMMPSHybridStep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lammps.RunHybrid(lammps.HybridConfig{BoxSize: 4, Steps: 5, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCdivetModule measures one full thirteen-analyzer pass — per-file
// rules plus the module-wide dataflow layer (call graph, taint fixpoint,
// wait-point propagation, hot-path allocation and escape analysis, shard
// affinity and the signal wait graph) — over
// the already-loaded module. Parsing and type-checking run once outside the
// timed loop, as cdivet itself amortizes them across analyzers; -benchmem
// makes allocation regressions in the dataflow engine visible.
func BenchmarkCdivetModule(b *testing.B) {
	m, err := analysis.LoadModule(".")
	if err != nil {
		b.Fatal(err)
	}
	baseline, err := analysis.ReadBaseline("cdivet_baseline.json")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		findings, err := analysis.RunModule(m, analysis.Config{})
		if err != nil {
			b.Fatal(err)
		}
		findings, _ = baseline.Filter(findings, m.Root)
		if len(findings) != 0 {
			b.Fatalf("module not clean: %v", findings)
		}
	}
}

func BenchmarkCosmoFlowPerfStep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := cosmoflow.RunPerf(cosmoflow.PerfConfig{
			Epochs: 1, TrainSamples: 16, ValSamples: 8, InputSide: 32,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemotingFaultPath exercises the resilient transport's recovery
// hot path: a lossy fabric forces timeouts, deterministic backoff retries,
// and at least one crash-driven failover with state re-upload per run.
func BenchmarkRemotingFaultPath(b *testing.B) {
	path, err := fabric.PathForSlack(20 * sim.Microsecond)
	if err != nil {
		b.Fatal(err)
	}
	cfg := remoting.ResilientConfig{
		Config:   remoting.Config{Path: path, Seed: 11},
		Faults:   faults.Config{Seed: 11, DropProbability: 0.3, CrashAfter: 20 * sim.Millisecond},
		Standbys: 1,
	}
	matBytes := gpu.MatrixBytes(64)
	kernel := gpu.MatMul(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		r, err := remoting.NewResilient(env, gpu.A100(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		var runErr error
		env.Spawn("host", func(p *sim.Proc) {
			var bufs [3]gpu.Ptr
			for j := range bufs {
				h, err := r.Malloc(p, matBytes)
				if err != nil {
					runErr = err
					return
				}
				bufs[j] = h
			}
			for j := 0; j < 20; j++ {
				if _, err := r.RunProxyIteration(p, bufs[0], bufs[1], bufs[2], matBytes, kernel); err != nil {
					runErr = err
					return
				}
			}
		})
		env.Run()
		env.Close()
		if runErr != nil {
			b.Fatal(runErr)
		}
		if r.Stats().Retries == 0 {
			b.Fatal("fault path not exercised: no retries")
		}
	}
}

// BenchmarkServeSteadyState runs one steady-state multi-tenant serving
// window end to end — open-loop Poisson arrivals, the continuous batcher
// at iteration-level admission, and the paper's 100 µs row-scale slack on
// every link-crossing call — the serving subsystem's hot path.
func BenchmarkServeSteadyState(b *testing.B) {
	tenants := []serve.Tenant{
		{Name: "chat", Rate: 100, MeanPromptTokens: 32, MeanOutputTokens: 8,
			SLO: 25 * sim.Millisecond},
		{Name: "batchapi", Rate: 60, MeanPromptTokens: 64, MeanOutputTokens: 12,
			SLO: 200 * sim.Millisecond},
	}
	const window = 200 * sim.Millisecond
	reqs, err := serve.Generate(tenants, window, 41)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		dev, err := gpu.NewDevice(env, gpu.A100())
		if err != nil {
			b.Fatal(err)
		}
		ctx := cuda.NewContext(dev, cuda.Config{})
		ctx.Interpose(slack.New(100 * sim.Microsecond))
		eng, err := serve.Start(env, serve.NewLocal(ctx),
			serve.Config{Policy: serve.Continuous, Tenants: tenants}, reqs)
		if err != nil {
			b.Fatal(err)
		}
		env.Run()
		env.Close()
		if err := eng.Err(); err != nil {
			b.Fatal(err)
		}
		if eng.Completed() != len(reqs) {
			b.Fatalf("completed %d of %d requests", eng.Completed(), len(reqs))
		}
	}
}

// BenchmarkHealthDetector measures the phi-accrual detector's per-sample
// cost — one heartbeat Observe plus one Phi evaluation per op, the inner
// loop of the pool control plane. Both must stay alloc-free: every
// server in the pool pays this once per heartbeat interval.
func BenchmarkHealthDetector(b *testing.B) {
	det := health.NewDetector(16, 250*sim.Microsecond)
	now := sim.Time(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now = now.Add(250 * sim.Microsecond)
		det.Observe(now)
		if det.Phi(now.Add(100*sim.Microsecond)) < 0 {
			b.Fatal("negative phi")
		}
	}
}

// BenchmarkChurnSteadyState runs one managed churn cell end to end: the
// continuous batcher over a resilient three-server pool under recurring
// crash outages, with the health control plane draining and readmitting
// servers and the admission gate shedding while degraded. This is the
// control plane's full-system hot path.
func BenchmarkChurnSteadyState(b *testing.B) {
	tenants := []serve.Tenant{
		{Name: "chat", Rate: 100, MeanPromptTokens: 32, MeanOutputTokens: 8,
			SLO: 25 * sim.Millisecond},
		{Name: "batchapi", Rate: 60, MeanPromptTokens: 64, MeanOutputTokens: 12,
			SLO: 200 * sim.Millisecond, Priority: 1},
	}
	const window = 200 * sim.Millisecond
	reqs, err := serve.Generate(tenants, window, 41)
	if err != nil {
		b.Fatal(err)
	}
	path, err := fabric.PathForSlack(100 * sim.Microsecond)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		pool, err := remoting.NewResilient(env, gpu.A100(), remoting.ResilientConfig{
			Config: remoting.Config{Path: path, Seed: 7003},
			Faults: faults.Config{Seed: 7003,
				CrashAfter: 60 * sim.Millisecond, CrashFor: 40 * sim.Millisecond},
			Policy: faults.Policy{CallTimeout: 100 * sim.Millisecond, MaxRetries: 2,
				BreakerThreshold: 2, BreakerCooldown: 5 * sim.Millisecond},
			Standbys:             2,
			DisableLocalFallback: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		ctl, err := health.Start(env, pool, pool.Injector(),
			health.Config{Seed: 7003, Horizon: 2 * window, Path: path})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := serve.Start(env, serve.NewRemote(pool), serve.Config{
			Policy:  serve.Continuous,
			Tenants: tenants,
			Admission: serve.Admission{
				ShedExpired: true, MaxQueue: 64, Capacity: ctl,
			},
		}, reqs)
		if err != nil {
			b.Fatal(err)
		}
		env.Run()
		env.Close()
		if err := eng.Err(); err != nil {
			b.Fatal(err)
		}
		if ctl.Stats().Suspicions == 0 {
			b.Fatal("churn path not exercised: no suspicions")
		}
	}
}

// BenchmarkSimEngineFanout is the pool-scale stress: 10k processes spread
// over 16 shards, all parked on shared per-shard Signals, with a driver that
// fires every signal once per simulated microsecond. One benchmark op is one
// fan-out round — 10k signal wake-ups scheduled at the same instant, merged
// across shards in (time, seq) order, plus 10k re-waits.
//
// The benchmark tears its environment down eagerly: Close unwinds the 10k
// parked workers off the timed path and the forced GC releases their
// stacks before the next benchmark starts. Without that, later wake-heavy
// benchmarks in the same process paid a measured 2× ns/op inflation
// (BenchmarkMPIAllreduce 42µs → 83µs) from GC cycles scanning the pooled
// dead goroutines this benchmark left behind.
func BenchmarkSimEngineFanout(b *testing.B) {
	const (
		nprocs  = 10000
		nshards = 16
	)
	env := sim.NewEnv()
	defer env.Close()
	shards := make([]*sim.Shard, nshards)
	sigs := make([]*sim.Signal, nshards)
	for i := range shards {
		shards[i] = env.NewShard()
		sigs[i] = sim.NewSignal(env)
	}
	for i := 0; i < nprocs; i++ {
		sig := sigs[i%nshards]
		shards[i%nshards].Spawn("worker", func(p *sim.Proc) {
			for {
				sig.Wait(p)
			}
		})
	}
	env.Spawn("driver", func(p *sim.Proc) {
		for {
			p.Sleep(1 * sim.Microsecond)
			for _, sig := range sigs {
				sig.Fire()
			}
		}
	})
	b.ResetTimer()
	env.RunUntil(sim.Time(0).Add(sim.Duration(b.N) * sim.Microsecond))
	b.StopTimer()
	env.Close()
	runtime.GC()
}

// benchPoolConfig is the pool benchmarks' shared cell: the failure-cell
// topology (512 GPUs on 64 servers) at full churn, high load, one 100 ms
// window — thousands of gang placements and completions per run.
func benchPoolConfig(defrag bool) pool.Config {
	return pool.Config{
		Topo:   pool.Topology{Rows: 2, RacksPerRow: 4, ServersPerRack: 8, GPUsPerServer: 8},
		Policy: pool.TierAware,
		Workload: pool.Workload{
			Seed: 9001, Window: 100 * sim.Millisecond, Load: 0.95, Intensity: 1,
		},
		Defrag: defrag,
	}
}

// BenchmarkPoolPlacement drives the pool scheduler's placement path: a
// churning window of gang arrivals, completions, and queue scans with the
// defragmenter off.
func BenchmarkPoolPlacement(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		s, err := pool.Start(env, benchPoolConfig(false))
		if err != nil {
			b.Fatal(err)
		}
		env.Run()
		env.Close()
		if st := s.Stats(); st.Placed == 0 {
			b.Fatal("placement path not exercised")
		}
	}
}

// BenchmarkPoolDefragSweep runs the same churning window with the
// defragmenter on, so sweep planning and migration copies ride the
// placement path.
func BenchmarkPoolDefragSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		s, err := pool.Start(env, benchPoolConfig(true))
		if err != nil {
			b.Fatal(err)
		}
		env.Run()
		env.Close()
		if st := s.Stats(); st.Migrations == 0 {
			b.Fatal("defrag path not exercised: no migrations")
		}
	}
}
