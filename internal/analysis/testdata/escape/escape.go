// Package corpus exercises the escape analyzer: heap allocations in hot
// loops are flagged only when the heuristic classifier says the value
// escapes the function, and each finding names the escape reason.
package corpus

type node struct {
	id   int
	next *node
}

var (
	retained  []*node
	results   []int
	sink      chan *node
	callbacks []func() int
)

// consume takes an interface, forcing its concrete argument to escape.
func consume(v any) { _ = v }

// hotAllocs is an explicit hot root; escaping allocations in the loop are
// flagged, locally-consumed ones are not.
//
//cdivet:hotpath
func hotAllocs(items []int) {
	for _, it := range items {
		n := &node{id: it} // want
		retained = append(retained, n)

		scratch := make([]int, 0, 4) // stays local: no finding
		scratch = append(scratch, it)
		results = append(results, scratch[0])

		ch := make(chan *node, 1) // want
		ch <- &node{id: it}       // want
		sink <- <-ch

		box := &node{id: it} // want
		consume(box)
	}
}

// spawnAll preallocates its result outside the loop (no finding there —
// the site is outside loop context) and grows it with hot callee results.
//
//cdivet:hotpath
func spawnAll(items []int) []*node {
	out := make([]*node, 0, len(items))
	for _, it := range items {
		out = append(out, fresh(it))
	}
	return out
}

// fresh is hot via spawnAll's loop; its allocation escapes by return.
func fresh(it int) *node {
	return &node{id: it} // want
}

// registerAll's allocation is captured by a closure that outlives the
// iteration.
//
//cdivet:hotpath
func registerAll(items []int) {
	for _, it := range items {
		c := &node{id: it} // want
		callbacks = append(callbacks, func() int { return c.id })
	}
}

// localOnly allocates per iteration but nothing escapes: dereference reads
// copy the value out, so the classifier keeps it stack-allocatable.
//
//cdivet:hotpath
func localOnly(items []int) int {
	total := 0
	for range items {
		p := new(int)
		*p = total
		total += *p + 1
	}
	return total
}

// suppressedAlloc shows a justified suppression.
//
//cdivet:hotpath
func suppressedAlloc(items []int) {
	for _, it := range items {
		//cdivet:allow escape warmup list is bounded by config size and built once
		retained = append(retained, &node{id: it})
	}
}
