// Package analysis is a stdlib-only static-analysis framework (go/parser +
// go/ast + go/types, no external dependencies) that machine-checks the
// determinism invariants the reproduction rests on.
//
// DESIGN.md's "Numbers vs shapes" argument only holds if every table and
// figure regenerates byte-identically from a seed: the discrete-event engine
// in internal/sim hands control to exactly one process at a time, all
// randomness flows from explicit rand.New(rand.NewSource(seed)) streams, and
// no result-emitting path depends on Go map iteration order. Nothing in the
// compiler enforces any of that — a single time.Now(), global rand.Intn, or
// unsorted map range silently corrupts every regenerated artifact. The six
// analyzers in this package turn those conventions into build-breaking
// checks:
//
//	walltime    wall-clock time in simulated code
//	seededrand  global math/rand instead of an explicit seeded stream
//	barego      go statements outside the sim engine
//	maporder    map iteration with order-dependent effects
//	floateq     exact float ==/!= outside internal/stats helpers
//	errdrop     silently discarded error returns in internal, cmd, examples
//	taint       nondeterministic value reaching a result-emitting sink
//	simunits    unitless literals / float64 round-trips in sim.Duration math
//	waitlock    sync.Mutex held across a simulated wait point
//	hotpath     per-iteration allocation patterns in benchmark-reachable code
//	escape      escaping heap allocations in hot loops, with escape reasons
//	shardsafety cross-shard write to shard-owned state without a wait edge
//	waitgraph   sim.Signal deadlock / lost-wake / unbound-use patterns
//
// The first six are per-file syntactic/type checks. The rest run on a
// module-wide dataflow layer (dataflow.go, callgraph.go, hotness.go): taint
// propagates nondeterminism through assignments, returns, and cross-package
// calls and reports only at sinks, so the sorted-keys idiom stays silent
// while a map-order value laundered through a helper in another package is
// still caught; hotpath and escape work over the set of functions reachable
// from the benchmark call graph and the configured steady-state roots; and
// shardsafety and waitgraph reason over the shard-affinity context
// (shardctx.go) the PR 7 sharded engine introduced — which proc runs on
// which event domain, and how sim.Signal wait/fire edges order them.
//
// Intentional exceptions are suppressed in source with a justified
// directive on, or immediately above, the offending line:
//
//	//cdivet:allow <rule> <reason...>
//
// A directive without a reason, naming an unknown rule, or matching no
// finding is itself reported (rule "directive"), so the suppression
// inventory stays honest.
//
// The suite is exposed two ways: the cdivet command (cmd/cdivet) and a
// repo-wide test gate (analysis_test.go at the module root) that makes
// `go test ./...` fail on any new violation.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation (or directive problem) at a position. A
// finding may carry a machine-applicable Fix (`cdivet -fix`).
type Finding struct {
	Rule    string         `json:"rule"`
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Message string         `json:"message"`
	Fix     *Fix           `json:"fix,omitempty"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Analyzer is one determinism check. Per-package analyzers set Run, which
// inspects the files of one Pass; module-wide analyzers set RunModule
// instead and see every package of the module at once (the dataflow rules
// need cross-package call summaries). Exactly one of the two is non-nil.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// Pass presents one type-checked package variant (base files, in-package
// test files, or external test package) to an analyzer. Findings are only
// reported for positions inside Files — the loader arranges for each source
// file to appear in exactly one pass, so nothing is double-reported.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the files this pass owns for reporting purposes.
	Files []*ast.File
	// Path is the package import path, e.g. "repro/internal/sim". Test
	// variants share the base package's path.
	Path string
	Pkg  *types.Package
	Info *types.Info

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, newFinding(p.Fset, p.Analyzer.Name, pos, nil, format, args...))
}

// ReportFixf records a finding at pos carrying a machine-applicable fix.
func (p *Pass) ReportFixf(pos token.Pos, fix *Fix, format string, args ...any) {
	*p.findings = append(*p.findings, newFinding(p.Fset, p.Analyzer.Name, pos, fix, format, args...))
}

func newFinding(fset *token.FileSet, rule string, pos token.Pos, fix *Fix, format string, args ...any) Finding {
	position := fset.Position(pos)
	return Finding{
		Rule:    rule,
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
		Fix:     fix,
	}
}

// ModulePass presents the whole loaded module to a module-wide analyzer.
// Test files are outside the dataflow rules' scope: summaries and findings
// cover base files only (tests assert on nondeterministic artifacts — their
// own output — by design, and are gated by the determinism regression tests
// instead).
type ModulePass struct {
	Analyzer *Analyzer
	Module   *Module

	findings *[]Finding
}

// Reportf records a finding at pos.
func (mp *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*mp.findings = append(*mp.findings, newFinding(mp.Module.Fset, mp.Analyzer.Name, pos, nil, format, args...))
}

// ReportFixf records a finding at pos carrying a machine-applicable fix.
func (mp *ModulePass) ReportFixf(pos token.Pos, fix *Fix, format string, args ...any) {
	*mp.findings = append(*mp.findings, newFinding(mp.Module.Fset, mp.Analyzer.Name, pos, fix, format, args...))
}

// IsTestFile reports whether f is a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		WallTime,
		SeededRand,
		BareGo,
		MapOrder,
		FloatEq,
		ErrDrop,
		Taint,
		SimUnits,
		WaitLock,
		Hotpath,
		Escape,
		ShardSafety,
		WaitGraph,
	}
}

// ByName resolves a comma-separated rule list against the full suite.
func ByName(names string) ([]*Analyzer, error) {
	index := map[string]*Analyzer{}
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown rule %q", n)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: empty rule list %q", names)
	}
	return out, nil
}

// sortFindings orders findings by file, line, column, rule, message so
// output is stable across runs regardless of analyzer scheduling.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}
