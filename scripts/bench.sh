#!/usr/bin/env bash
# bench.sh — run the table/figure benchmarks with -benchmem and record the
# results as machine-readable JSON, one file per invocation:
#
#   scripts/bench.sh                 # full run -> BENCH_<n>.json (n auto-increments)
#   scripts/bench.sh -bench Sim      # restrict the benchmark pattern
#   scripts/bench.sh --smoke         # 1-iteration sanity pass used by check.sh;
#                                    # validates the pipeline, writes nothing
#   scripts/bench.sh --gate [NEW OLD]  # regression gate: diff two recorded
#                                    # runs (default: newest vs previous),
#                                    # exit 1 on ns/op or allocs/op regression
#
# Each BENCH_<n>.json is an object with host metadata plus one entry per
# benchmark: {name, ns_per_op, bytes_per_op, allocs_per_op}. The sequence of
# files is the repo's perf trajectory: compare allocs_per_op of BenchmarkSim*
# across files to see the effect of engine changes (stdlib toolchain only —
# the parse is plain awk, no external JSON tools).
#
# Gate tolerances (env, all optional):
#   GATE_NS_TOL=0.40      fractional ns/op growth tolerated (timings are noisy
#                         on shared runners, so the default is deliberately
#                         loose — the gate is for order-of-magnitude slips)
#   GATE_ALLOC_TOL=0.10   fractional allocs/op growth tolerated (allocation
#                         counts are deterministic, so this is tight)
#   GATE_ALLOC_SLACK=16   absolute allocs/op grace on top of the fraction, so
#                         a 3->5 allocs/op jitter in a tiny benchmark does not
#                         read as a 66% regression
#   GATE_ALLOC_SKIP=re    benchmarks matching this regex skip the allocs/op
#                         check (ns/op is still gated). Defaults to the lint
#                         suite's self-benchmark: its allocation count scales
#                         with the size of the repo it analyzes, so every PR
#                         that adds source moves it by design
#   GATE_WAIVE=re         one-time acknowledged steps: the regex is matched
#                         against "<benchmark>@<new-recording-basename>", and
#                         matches are reported as "waived" instead of failing.
#                         Pinning the recording name makes the waiver
#                         self-expiring — once the next BENCH_<n>.json becomes
#                         the gate's NEW side the pin no longer matches, and
#                         that comparison starts from the post-step baseline
#                         anyway. Use it when a PR deliberately changes what a
#                         benchmark measures; leave a comment at the call site
#                         saying why the step is intended
#   GATE_REPORT=path      also write the per-benchmark diff table to path
set -euo pipefail
cd "$(dirname "$0")/.."

pattern='.'
benchtime=''
smoke=0
gate=0
gate_new=''
gate_old=''
while [ $# -gt 0 ]; do
    case "$1" in
        --smoke)
            smoke=1
            pattern='BenchmarkSimEngineEvents'
            benchtime='1x'
            ;;
        --gate)
            gate=1
            if [ $# -ge 3 ]; then
                gate_new="$2"
                gate_old="$3"
                shift 2
            elif [ $# -ge 2 ]; then
                echo "bench.sh: --gate takes zero or two file arguments (NEW OLD)" >&2
                exit 2
            fi
            ;;
        -bench)
            shift
            pattern="$1"
            ;;
        -benchtime)
            shift
            benchtime="$1"
            ;;
        *)
            echo "bench.sh: unknown argument $1" >&2
            exit 2
            ;;
    esac
    shift
done

if [ "$gate" = 1 ]; then
    if [ -z "$gate_new" ]; then
        n=1
        while [ -e "BENCH_${n}.json" ]; do
            n=$((n + 1))
        done
        if [ "$n" -lt 3 ]; then
            echo "bench.sh --gate: need at least two BENCH_<n>.json files (run scripts/bench.sh twice)" >&2
            exit 2
        fi
        gate_new="BENCH_$((n - 1)).json"
        gate_old="BENCH_$((n - 2)).json"
    fi
    for f in "$gate_new" "$gate_old"; do
        [ -r "$f" ] || { echo "bench.sh --gate: cannot read $f" >&2; exit 2; }
    done

    report="$(mktemp)"
    trap 'rm -f "$report"' EXIT
    set +e
    awk -v ns_tol="${GATE_NS_TOL:-0.40}" \
        -v alloc_tol="${GATE_ALLOC_TOL:-0.10}" \
        -v alloc_slack="${GATE_ALLOC_SLACK:-16}" \
        -v alloc_skip="${GATE_ALLOC_SKIP:-^BenchmarkCdivetModule$}" \
        -v waive="${GATE_WAIVE:-}" -v newbase="$(basename "$gate_new")" \
        -v newfile="$gate_new" -v oldfile="$gate_old" '
    function field(line, key,    v) {
        # Pull "key": value out of one benchmark object line; the files are
        # produced by this script, so the layout is fixed and a regex parse
        # is safe.
        if (!match(line, "\"" key "\": \"?[^,\"}]+")) return ""
        v = substr(line, RSTART, RLENGTH)
        sub("^\"" key "\": \"?", "", v)
        return v
    }
    /"name":/ {
        name = field($0, "name")
        if (name == "") next
        if (FILENAME == oldfile) {
            ons[name] = field($0, "ns_per_op")
            oal[name] = field($0, "allocs_per_op")
            if (!(name in oseen)) { oseen[name] = 1; onames[++on] = name }
        } else {
            nns[name] = field($0, "ns_per_op")
            nal[name] = field($0, "allocs_per_op")
            if (!(name in nseen)) { nseen[name] = 1; nnames[++nn] = name }
        }
    }
    function pct(old, new) {
        if (old == 0) return (new == 0 ? "+0.0%" : "n/a")
        return sprintf("%+.1f%%", (new - old) * 100.0 / old)
    }
    END {
        printf "bench gate: %s vs %s (ns tol +%.0f%%, allocs tol +%.0f%% or +%d)\n", \
            newfile, oldfile, ns_tol * 100, alloc_tol * 100, alloc_slack
        bad = 0
        for (i = 1; i <= on; i++) {
            name = onames[i]
            if (!(name in nseen)) {
                printf "  WARNING %-52s dropped from %s\n", name, newfile
                continue
            }
            verdict = "ok"
            waived = (waive != "" && (name "@" newbase) ~ waive)
            if (nns[name] + 0 > ons[name] * (1 + ns_tol)) {
                verdict = "REGRESSION(ns/op)"
                if (!waived) bad = 1
            }
            if (alloc_skip != "" && name ~ alloc_skip) {
                verdict = verdict " (allocs ungated: GATE_ALLOC_SKIP)"
            } else if (nal[name] + 0 > oal[name] * (1 + alloc_tol) + alloc_slack) {
                verdict = (verdict == "ok") ? "REGRESSION(allocs/op)" : "REGRESSION(ns/op,allocs/op)"
                if (!waived) bad = 1
            }
            if (waived && verdict != "ok")
                verdict = verdict " -- waived(GATE_WAIVE)"
            printf "  %-52s ns/op %12.0f -> %12.0f (%7s)  allocs/op %6d -> %6d (%7s)  %s\n", \
                name, ons[name], nns[name], pct(ons[name] + 0, nns[name] + 0), \
                oal[name], nal[name], pct(oal[name] + 0, nal[name] + 0), verdict
        }
        for (i = 1; i <= nn; i++) {
            name = nnames[i]
            if (!(name in oseen))
                printf "  %-52s new in %s\n", name, newfile
        }
        if (on == 0) {
            print "bench.sh --gate: no benchmarks parsed from " oldfile > "/dev/stderr"
            exit 2
        }
        exit bad
    }' "$gate_old" "$gate_new" > "$report"
    status=$?
    set -e
    cat "$report"
    if [ -n "${GATE_REPORT:-}" ]; then
        cp "$report" "$GATE_REPORT"
    fi
    if [ "$status" -eq 1 ]; then
        echo "bench.sh --gate: perf regression against $gate_old (see table above)" >&2
    fi
    exit "$status"
fi

raw="$(mktemp)"
if [ "$smoke" = 1 ]; then
    out="$(mktemp)"
    trap 'rm -f "$raw" "$out"' EXIT
else
    trap 'rm -f "$raw"' EXIT
    n=1
    while [ -e "BENCH_${n}.json" ]; do
        n=$((n + 1))
    done
    out="BENCH_${n}.json"
fi

args=(-run '^$' -bench "$pattern" -benchmem)
if [ -n "$benchtime" ]; then
    args+=(-benchtime "$benchtime")
fi
echo "== go test ${args[*]} ." >&2
go test "${args[@]}" . | tee "$raw" >&2

# Benchmark lines look like:
#   BenchmarkSimEngineEvents-4   123456   987 ns/op   0 B/op   0 allocs/op
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v goos="$(go env GOOS)" -v goarch="$(go env GOARCH)" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"benchmarks\": [", date, goos, goarch
    count = 0
}
/^Benchmark/ && /ns\/op/ {
    name = $1
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "B/op")      bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (bytes == "") bytes = 0
    if (allocs == "") allocs = 0
    if (count++) printf ","
    printf "\n    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bytes, allocs
}
END {
    if (count == 0) { print "bench.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf "\n  ]\n}\n"
}' "$raw" > "$out"

if [ "$smoke" = 1 ]; then
    # The smoke pass only proves the run+parse pipeline: the file must be
    # non-empty, syntactically sane, and contain the engine benchmark.
    grep -q '"name": "BenchmarkSimEngineEvents' "$out"
    grep -q '"allocs_per_op":' "$out"
    echo "bench.sh --smoke: pipeline ok" >&2
else
    echo "bench.sh: wrote $out ($(grep -c '"name"' "$out") benchmarks)" >&2
fi
