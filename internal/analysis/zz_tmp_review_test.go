package analysis

import "testing"

func TestReviewWaitlockFuncLit(t *testing.T) {
	m, err := LoadDirAs("/tmp/wl", "corpus")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunModule(m, Config{Patterns: []string{"./..."}, Analyzers: []*Analyzer{WaitLock}})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Logf("%s", f)
	}
	t.Logf("count=%d", len(findings))
}
